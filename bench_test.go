package serretime

// Benchmarks regenerating the paper's evaluation artifacts (DESIGN.md §3):
//
//   - BenchmarkTableI_*: one sub-benchmark per Table I circuit (scaled) for
//     the SER analysis pipeline, the Efficient MinObs baseline and the
//     MinObsWin algorithm — the t_ref / t_new columns. The full-scale rows
//     are printed by cmd/serbench.
//   - BenchmarkFigure1_Tradeoff: the Figure 1 ELW/observability trade-off
//     evaluation.
//   - BenchmarkFigure2_ConstraintDetection: violation detection and repair
//     (the three active-constraint types).
//   - BenchmarkFigure3_BreakTree: the weighted-regular-forest BreakTree /
//     re-link sequence.
//   - BenchmarkAblation_*: design-choice ablations called out in DESIGN.md
//     (check order, engine, batching, literal gains, signature width).

import (
	"fmt"
	"sync"
	"testing"

	"serretime/internal/core"
	"serretime/internal/elw"
	"serretime/internal/forest"
	"serretime/internal/graph"
	"serretime/internal/retime"
	"serretime/internal/ser"
	"serretime/internal/solverstate"
	"serretime/internal/telemetry"
)

// benchCircuits is a representative slice of Table I: a sparse ISCAS
// circuit, a dense ITC one, the combinational-dominated s38417 and one of
// the big b-circuits, scaled to keep one benchmark iteration sub-second.
var benchCircuits = []struct {
	name  string
	scale int
}{
	{"s13207", 4},
	{"s38417", 8},
	{"b14_1_opt", 2},
	{"b17_opt", 8},
}

// prepared caches the expensive per-circuit setup shared by benchmarks.
type preparedProblem struct {
	d     *Design
	base  *graph.Graph
	init  *retime.Init
	gains []int64
	obsI  []int64
}

var (
	prepMu sync.Mutex
	preps  = map[string]*preparedProblem{}
)

func prepare(b *testing.B, name string, scale int) *preparedProblem {
	b.Helper()
	key := fmt.Sprintf("%s/%d", name, scale)
	prepMu.Lock()
	defer prepMu.Unlock()
	if p, ok := preps[key]; ok {
		return p
	}
	d, err := NewTableIDesign(name, scale)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.ensureObs(AnalysisOptions{}); err != nil {
		b.Fatal(err)
	}
	init, err := retime.Initialize(d.g, retime.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	base, err := d.g.Rebase(init.R)
	if err != nil {
		b.Fatal(err)
	}
	gains, obsI, err := core.Gains(base, d.gateObs, d.edgeObs, 256)
	if err != nil {
		b.Fatal(err)
	}
	p := &preparedProblem{d: d, base: base, init: init, gains: gains, obsI: obsI}
	preps[key] = p
	return p
}

func coreOpts(p *preparedProblem, win bool) core.Options {
	return core.Options{
		Phi: p.init.Phi, Ts: 0, Th: 2, Rmin: p.init.Rmin,
		ELWConstraints: win,
	}
}

// BenchmarkTableI_SERAnalysis measures the full eq. (4) evaluation
// (exact ELWs + both terms) of each circuit.
func BenchmarkTableI_SERAnalysis(b *testing.B) {
	for _, c := range benchCircuits {
		b.Run(fmt.Sprintf("%s_div%d", c.name, c.scale), func(b *testing.B) {
			p := prepare(b, c.name, c.scale)
			in := ser.Inputs{
				GateObs: p.d.gateObs, EdgeObs: p.d.edgeObs, GateRate: p.d.rates,
				RegRate: p.d.regRate, Params: elwParams(p.init.Phi),
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ser.Compute(p.base, graph.NewRetiming(p.base), in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableI_MinObs is the t_ref column: the Efficient MinObs run.
func BenchmarkTableI_MinObs(b *testing.B) {
	for _, c := range benchCircuits {
		b.Run(fmt.Sprintf("%s_div%d", c.name, c.scale), func(b *testing.B) {
			p := prepare(b, c.name, c.scale)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Minimize(p.base, p.gains, p.obsI, coreOpts(p, false)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableI_MinObsWin is the t_new column: the full Algorithm 1.
func BenchmarkTableI_MinObsWin(b *testing.B) {
	for _, c := range benchCircuits {
		b.Run(fmt.Sprintf("%s_div%d", c.name, c.scale), func(b *testing.B) {
			p := prepare(b, c.name, c.scale)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Minimize(p.base, p.gains, p.obsI, coreOpts(p, true)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableI_Initialization measures the Section V setup (setup+hold
// min-period retiming and Rmin selection).
func BenchmarkTableI_Initialization(b *testing.B) {
	for _, c := range benchCircuits {
		b.Run(fmt.Sprintf("%s_div%d", c.name, c.scale), func(b *testing.B) {
			p := prepare(b, c.name, c.scale)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := retime.Initialize(p.d.g, retime.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// figure1Graph rebuilds the Figure 1 scenario (see examples/elwdemo).
func figure1Graph() (*graph.Graph, graph.VertexID, ser.Inputs) {
	bb := graph.NewBuilder()
	a := bb.AddVertex("A", 2)
	bv := bb.AddVertex("B", 2)
	f := bb.AddVertex("F", 1)
	g := bb.AddVertex("G", 2)
	bb.AddEdge(graph.Host, a, 0)
	bb.AddEdge(graph.Host, bv, 0)
	bb.AddEdge(a, f, 0)
	bb.AddEdge(bv, f, 0)
	bb.AddEdge(f, g, 1)
	bb.AddEdge(g, graph.Host, 0)
	bb.AddEdge(a, graph.Host, 0)
	bb.AddEdge(bv, graph.Host, 0)
	gr := bb.Build()
	gateObs := []float64{0, 0.7, 0.7, 0.6, 0.4}
	in := ser.Inputs{
		GateObs:  gateObs,
		EdgeObs:  ser.EdgeObsFromVertex(gr, gateObs, 0.5),
		GateRate: []float64{0, 1e-4, 1e-4, 1e-4, 1e-4},
		RegRate:  2e-4,
		Params:   elw.Params{Phi: 8, Ts: 0, Th: 2},
	}
	return gr, g, in
}

// BenchmarkFigure1_Tradeoff evaluates the before/after SER of the
// Figure 1 register move.
func BenchmarkFigure1_Tradeoff(b *testing.B) {
	gr, g, in := figure1Graph()
	r := graph.NewRetiming(gr)
	moved := graph.NewRetiming(gr)
	moved[g] = -1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ser.Compute(gr, r, in); err != nil {
			b.Fatal(err)
		}
		if _, err := ser.Compute(gr, moved, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2_ConstraintDetection runs the optimizer on a structure
// exercising all three active-constraint types per iteration.
func BenchmarkFigure2_ConstraintDetection(b *testing.B) {
	p := prepare(b, "b14_1_opt", 4)
	opt := coreOpts(p, true)
	opt.SingleViolation = true // every constraint individually detected
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Minimize(p.base, p.gains, p.obsI, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3_BreakTree measures the BreakTree/SetWeight/Link
// sequence of the weighted regular forest (the Figure 3 update).
func BenchmarkFigure3_BreakTree(b *testing.B) {
	const n = 1024
	gains := make([]int64, n)
	for i := range gains {
		gains[i] = int64(i%7) - 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := forest.New(n, gains)
		if err != nil {
			b.Fatal(err)
		}
		for v := int32(1); v < n; v++ {
			if err := f.Link(v-1, v); err != nil {
				b.Fatal(err)
			}
		}
		for v := int32(0); v < n; v += 3 {
			f.Break(v)
			if err := f.SetWeight(v, 2); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblation_CheckOrder compares the paper's published check order
// (P2', P0, P1') against the default P0-first order.
func BenchmarkAblation_CheckOrder(b *testing.B) {
	p := prepare(b, "b14_1_opt", 4)
	orders := map[string][]core.Kind{
		"P0_P2_P1_default": {core.KindP0, core.KindP2, core.KindP1},
		"P2_P0_P1_paper":   {core.KindP2, core.KindP0, core.KindP1},
		"P1_P0_P2":         {core.KindP1, core.KindP0, core.KindP2},
	}
	for name, order := range orders {
		b.Run(name, func(b *testing.B) {
			opt := coreOpts(p, true)
			opt.CheckOrder = order
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Minimize(p.base, p.gains, p.obsI, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Engine compares the exact closure engine against the
// paper's weighted regular forest.
func BenchmarkAblation_Engine(b *testing.B) {
	p := prepare(b, "b14_1_opt", 4)
	for _, eng := range []struct {
		name string
		e    core.Engine
	}{{"closure", core.EngineClosure}, {"forest", core.EngineForest}} {
		b.Run(eng.name, func(b *testing.B) {
			opt := coreOpts(p, true)
			opt.Engine = eng.e
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Minimize(p.base, p.gains, p.obsI, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Batching compares batched violation repairs against
// the verbatim one-repair-per-iteration Algorithm 1.
func BenchmarkAblation_Batching(b *testing.B) {
	p := prepare(b, "b14_1_opt", 4)
	for _, mode := range []struct {
		name   string
		single bool
	}{{"batched", false}, {"single", true}} {
		b.Run(mode.name, func(b *testing.B) {
			opt := coreOpts(p, true)
			opt.SingleViolation = mode.single
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Minimize(p.base, p.gains, p.obsI, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_LiteralGains compares the eq.(5)-consistent gain
// formula against the paper's literal b(v) (see DESIGN.md).
func BenchmarkAblation_LiteralGains(b *testing.B) {
	p := prepare(b, "b14_1_opt", 4)
	for _, mode := range []struct {
		name string
		fn   func(*graph.Graph, []float64, []float64, int) ([]int64, []int64, error)
	}{{"eq5_consistent", core.Gains}, {"literal", core.GainsLiteral}} {
		b.Run(mode.name, func(b *testing.B) {
			gains, obsI, err := mode.fn(p.base, p.d.gateObs, p.d.edgeObs, 256)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Minimize(p.base, gains, obsI, coreOpts(p, true)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTelemetry_Overhead measures the instrumentation cost of a full
// MinObsWin run: the always-on no-op recorder (the ≤1% overhead budget of
// DESIGN.md §9) against a live in-memory collector and a nil recorder.
func BenchmarkTelemetry_Overhead(b *testing.B) {
	p := prepare(b, "b14_1_opt", 4)
	for _, mode := range []struct {
		name string
		rec  func() telemetry.Recorder
	}{
		{"nil", func() telemetry.Recorder { return nil }},
		{"nop", func() telemetry.Recorder { return telemetry.Nop }},
		{"collector", func() telemetry.Recorder { return telemetry.NewCollector() }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opt := coreOpts(p, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opt.Recorder = mode.rec()
				if _, err := core.Minimize(p.base, p.gains, p.obsI, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_SignatureWidth measures the observability analysis at
// different signature widths (obs convergence vs cost).
func BenchmarkAblation_SignatureWidth(b *testing.B) {
	for _, words := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("words%d", words), func(b *testing.B) {
			d, err := NewTableIDesign("b14_1_opt", 4)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.gateObs = nil // force recomputation
				if err := d.ensureObs(AnalysisOptions{SignatureWords: words}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// prepareLoaded is prepare for a checked-in testdata netlist.
func prepareLoaded(b *testing.B, path string) *preparedProblem {
	b.Helper()
	prepMu.Lock()
	defer prepMu.Unlock()
	if p, ok := preps[path]; ok {
		return p
	}
	d, err := Load(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.ensureObs(AnalysisOptions{}); err != nil {
		b.Fatal(err)
	}
	init, err := retime.Initialize(d.g, retime.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	base, err := d.g.Rebase(init.R)
	if err != nil {
		b.Fatal(err)
	}
	gains, obsI, err := core.Gains(base, d.gateObs, d.edgeObs, 256)
	if err != nil {
		b.Fatal(err)
	}
	p := &preparedProblem{d: d, base: base, init: init, gains: gains, obsI: obsI}
	preps[path] = p
	return p
}

// BenchmarkSolverLoop_LabelMode is the before/after comparison of the
// incremental-state refactor: the MinObsWin solver loop with dirty-region
// label patching (the default) against the pre-refactor full recompute
// per tentative move (FullLabelRecompute), on the largest testdata
// circuit and two Table I circuits. Results are recorded in
// EXPERIMENTS.md.
func BenchmarkSolverLoop_LabelMode(b *testing.B) {
	probs := []struct {
		name string
		p    *preparedProblem
	}{
		{"pipeline4", prepareLoaded(b, "testdata/pipeline4.bench")},
		{"s13207_div4", prepare(b, "s13207", 4)},
		{"b17_opt_div8", prepare(b, "b17_opt", 8)},
	}
	for _, pr := range probs {
		for _, mode := range []struct {
			name   string
			full   bool
			single bool
		}{
			// Batched repairs (the default loop) and the verbatim
			// Algorithm 1 single-violation loop, which requests labels
			// once per repair and so leans hardest on the label machinery.
			{"incremental", false, false},
			{"full-recompute", true, false},
			{"single/incremental", false, true},
			{"single/full-recompute", true, true},
		} {
			b.Run(pr.name+"/"+mode.name, func(b *testing.B) {
				opt := coreOpts(pr.p, true)
				opt.SeedLabels = pr.p.init.Labels
				opt.FullLabelRecompute = mode.full
				opt.SingleViolation = mode.single
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.Minimize(pr.p.base, pr.p.gains, pr.p.obsI, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLabelPatch microbenchmarks one transactional label update —
// Begin, dirty-region patch, Rollback — against the full-sweep oracle on
// the same move, isolating the per-move saving the solver-loop numbers
// aggregate.
func BenchmarkLabelPatch(b *testing.B) {
	for _, c := range []struct {
		name  string
		scale int
	}{{"s13207", 4}, {"b17_opt", 8}} {
		p := prepare(b, c.name, c.scale)
		params := elw.Params{Phi: p.init.Phi, Ts: 0, Th: 2}
		r0 := graph.NewRetiming(p.base)
		seedLab, err := elw.ComputeLabels(p.base, r0, params)
		if err != nil {
			b.Fatal(err)
		}
		newState := func(b *testing.B, col telemetry.Recorder) *solverstate.State {
			st, err := solverstate.New(p.base, r0, solverstate.Config{
				Params: params, ObsInt: p.obsI, SeedLabels: seedLab, Recorder: col,
			})
			if err != nil {
				b.Fatal(err)
			}
			return st
		}
		// Find a single-vertex move that takes the patch path.
		col := telemetry.NewCollector()
		probe := newState(b, col)
		move := int32(-1)
		for v := int32(1); v < int32(p.base.NumVertices()); v++ {
			before := col.Stats().Counter(telemetry.CounterLabelPatches)
			probe.Begin([]int32{v}, func(int32) int32 { return 1 })
			if _, err := probe.Labels(); err != nil {
				b.Fatal(err)
			}
			patched := col.Stats().Counter(telemetry.CounterLabelPatches) > before
			probe.Rollback()
			if patched {
				move = v
				break
			}
		}
		if move < 0 {
			b.Fatalf("%s: no single-vertex move patches", c.name)
		}
		st := newState(b, nil)
		b.Run(fmt.Sprintf("%s_div%d/patch", c.name, c.scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st.Begin([]int32{move}, func(int32) int32 { return 1 })
				if _, err := st.Labels(); err != nil {
					b.Fatal(err)
				}
				st.Rollback()
			}
		})
		b.Run(fmt.Sprintf("%s_div%d/oracle", c.name, c.scale), func(b *testing.B) {
			r := r0.Clone()
			r[move]--
			for i := 0; i < b.N; i++ {
				if _, err := elw.ComputeLabels(p.base, r, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
