package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildS27ish constructs a small sequential circuit reminiscent of s27:
// 4 PIs, 3 DFFs, a handful of gates, 1 PO.
func buildS27ish(t testing.TB) *Circuit {
	t.Helper()
	c := New("s27ish")
	mk := func(id NodeID, err error) NodeID {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	g0 := mk(c.AddPI("G0"))
	g1 := mk(c.AddPI("G1"))
	g2 := mk(c.AddPI("G2"))
	g3 := mk(c.AddPI("G3"))

	// Forward-declare DFF outputs by building combinational logic that
	// reads them after they exist; here we add DFFs at the end reading
	// gate outputs, and use placeholder order: first gates on PIs.
	n1 := mk(c.AddGate("n1", FnNot, g0))
	n2 := mk(c.AddGate("n2", FnAnd, g1, g2))
	n3 := mk(c.AddGate("n3", FnOr, n1, n2))
	q1 := mk(c.AddDFF("q1", n3))
	n4 := mk(c.AddGate("n4", FnNor, q1, g3))
	q2 := mk(c.AddDFF("q2", n4))
	n5 := mk(c.AddGate("n5", FnNand, q2, n3))
	q3 := mk(c.AddDFF("q3", n5))
	n6 := mk(c.AddGate("n6", FnXor, q3, n4))
	if err := c.MarkPO(n6); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFuncEval(t *testing.T) {
	a, b := uint64(0b1100), uint64(0b1010)
	cases := []struct {
		fn   Func
		in   []uint64
		want uint64
	}{
		{FnBuf, []uint64{a}, a},
		{FnNot, []uint64{a}, ^a},
		{FnAnd, []uint64{a, b}, a & b},
		{FnNand, []uint64{a, b}, ^(a & b)},
		{FnOr, []uint64{a, b}, a | b},
		{FnNor, []uint64{a, b}, ^(a | b)},
		{FnXor, []uint64{a, b}, a ^ b},
		{FnXnor, []uint64{a, b}, ^(a ^ b)},
		{FnConst0, nil, 0},
		{FnConst1, nil, ^uint64(0)},
		{FnAnd, []uint64{a, b, ^uint64(0)}, a & b},
		{FnXor, []uint64{a, b, a}, b},
	}
	for _, tc := range cases {
		if got := tc.fn.Eval(tc.in); got != tc.want {
			t.Errorf("%s.Eval(%x) = %x, want %x", tc.fn, tc.in, got, tc.want)
		}
	}
}

func TestFuncArity(t *testing.T) {
	if FnNot.MinInputs() != 1 || FnNot.MaxInputs() != 1 {
		t.Error("NOT arity wrong")
	}
	if FnAnd.MinInputs() != 2 || FnAnd.MaxInputs() != -1 {
		t.Error("AND arity wrong")
	}
	if FnConst1.MinInputs() != 0 || FnConst1.MaxInputs() != 0 {
		t.Error("CONST1 arity wrong")
	}
}

func TestAddAndLookup(t *testing.T) {
	c := buildS27ish(t)
	id, ok := c.Lookup("n4")
	if !ok {
		t.Fatal("n4 not found")
	}
	if c.Node(id).Fn != FnNor {
		t.Fatalf("n4 Fn = %v", c.Node(id).Fn)
	}
	if _, ok := c.Lookup("nope"); ok {
		t.Fatal("found nonexistent node")
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	c := New("dup")
	if _, err := c.AddPI("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddPI("a"); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := c.AddGate("", FnNot, 0); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestBadFanin(t *testing.T) {
	c := New("bad")
	if _, err := c.AddGate("g", FnNot, 99); err == nil {
		t.Fatal("unknown fanin accepted")
	}
	a, _ := c.AddPI("a")
	if _, err := c.AddGate("g", FnNot, a, a); err == nil {
		t.Fatal("NOT with 2 inputs accepted")
	}
	if _, err := c.AddGate("g", FnAnd, a); err == nil {
		t.Fatal("AND with 1 input accepted")
	}
}

func TestCounts(t *testing.T) {
	c := buildS27ish(t)
	pis, pos, gates, dffs := c.Counts()
	if pis != 4 || pos != 1 || gates != 6 || dffs != 3 {
		t.Fatalf("Counts = %d %d %d %d", pis, pos, gates, dffs)
	}
}

func TestMarkPOIdempotent(t *testing.T) {
	c := buildS27ish(t)
	id, _ := c.Lookup("n6")
	if err := c.MarkPO(id); err != nil {
		t.Fatal(err)
	}
	if len(c.POs()) != 1 {
		t.Fatalf("POs = %v", c.POs())
	}
	if err := c.MarkPO(999); err == nil {
		t.Fatal("MarkPO of unknown node accepted")
	}
}

func TestTopoOrder(t *testing.T) {
	c := buildS27ish(t)
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != c.NumNodes() {
		t.Fatalf("order len = %d, want %d", len(order), c.NumNodes())
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for i := 0; i < c.NumNodes(); i++ {
		nd := c.Node(NodeID(i))
		if nd.Kind != KindGate {
			continue
		}
		for _, f := range nd.Fanin {
			if c.Node(f).Kind == KindGate && pos[f] >= pos[NodeID(i)] {
				t.Fatalf("gate %s before its fanin %s", nd.Name, c.Node(f).Name)
			}
		}
	}
}

func TestTopoOrderMixedFanin(t *testing.T) {
	// Regression: a gate with one PI fanin and one gate fanin must come
	// after the gate fanin even though the PI is popped first.
	c := New("mixed")
	a, _ := c.AddPI("a")
	b, _ := c.AddPI("b")
	g1, _ := c.AddGate("g1", FnNot, b)
	g2, _ := c.AddGate("g2", FnAnd, a, g1)
	_ = g2
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	if pos[g2] < pos[g1] {
		t.Fatal("g2 ordered before its gate fanin g1")
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	c := New("cyc")
	a, _ := c.AddPI("a")
	// Build a cycle by editing fanin directly (the public API cannot
	// create one because fanins must already exist).
	g1, _ := c.AddGate("g1", FnAnd, a, a)
	g2, _ := c.AddGate("g2", FnAnd, g1, a)
	c.Node(g1).Fanin[1] = g2
	c.Node(g2).Fanout = append(c.Node(g2).Fanout, g1)
	if _, err := c.TopoOrder(); err == nil {
		t.Fatal("combinational cycle not detected")
	}
	if err := c.Validate(); err == nil {
		t.Fatal("Validate missed combinational cycle")
	}
}

func TestSequentialLoopAllowed(t *testing.T) {
	// A loop through a DFF is legal.
	c := New("loop")
	a, _ := c.AddPI("a")
	g, _ := c.AddGate("g", FnAnd, a, a) // placeholder second input
	q, _ := c.AddDFF("q", g)
	c.Node(g).Fanin[1] = q
	c.Node(q).Fanout = append(c.Node(q).Fanout, g)
	if _, err := c.TopoOrder(); err != nil {
		t.Fatalf("sequential loop rejected: %v", err)
	}
}

func TestStats(t *testing.T) {
	c := buildS27ish(t)
	s, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Gates != 6 || s.DFFs != 3 || s.PIs != 4 || s.POs != 1 {
		t.Fatalf("Stats = %+v", s)
	}
	// n1/n2 depth 1, n3 depth 2, n4 depth 1 (reads q1, a source),
	// n5 depth 3 (reads n3), n6 depth 2 (reads n4).
	if s.Depth != 3 {
		t.Fatalf("Depth = %d, want 3", s.Depth)
	}
	if s.MaxFanout < 2 {
		t.Fatalf("MaxFanout = %d", s.MaxFanout)
	}
}

func TestClone(t *testing.T) {
	c := buildS27ish(t)
	d := c.Clone()
	if d.NumNodes() != c.NumNodes() {
		t.Fatal("clone size mismatch")
	}
	// Mutating the clone must not affect the original.
	d.Node(0).Name = "mutated"
	if c.Node(0).Name == "mutated" {
		t.Fatal("clone shares node storage")
	}
	if _, err := d.AddPI("extra"); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() == d.NumNodes() {
		t.Fatal("clone shares slice growth")
	}
}

func TestNodesOfKind(t *testing.T) {
	c := buildS27ish(t)
	if got := len(c.NodesOfKind(KindDFF)); got != 3 {
		t.Fatalf("DFF count = %d", got)
	}
	if got := len(c.NodesOfKind(KindPI)); got != 4 {
		t.Fatalf("PI count = %d", got)
	}
}

func TestFanoutDeduplicated(t *testing.T) {
	c := New("dedup")
	a, _ := c.AddPI("a")
	g, _ := c.AddGate("g", FnXor, a, a)
	if n := len(c.Node(a).Fanout); n != 1 {
		t.Fatalf("fanout of a = %d, want 1 (deduplicated)", n)
	}
	if c.Node(a).Fanout[0] != g {
		t.Fatal("fanout wrong target")
	}
}

func TestKindAndFuncStrings(t *testing.T) {
	if KindPI.String() != "PI" || KindDFF.String() != "DFF" || KindGate.String() != "GATE" {
		t.Fatal("Kind strings wrong")
	}
	if FnNand.String() != "NAND" || FnXnor.String() != "XNOR" {
		t.Fatal("Func strings wrong")
	}
}

// randomDAGCircuit builds a random layered sequential circuit.
func randomDAGCircuit(r *rand.Rand, nGates int) *Circuit {
	c := New("rand")
	ids := make([]NodeID, 0, nGates+4)
	for i := 0; i < 4; i++ {
		id, _ := c.AddPI(pick2(r, i))
		ids = append(ids, id)
	}
	fns := []Func{FnAnd, FnOr, FnNand, FnNor, FnXor, FnNot}
	for i := 0; i < nGates; i++ {
		fn := fns[r.Intn(len(fns))]
		var fanin []NodeID
		n := fn.MinInputs()
		if fn.MaxInputs() < 0 {
			n += r.Intn(2)
		}
		for j := 0; j < n; j++ {
			fanin = append(fanin, ids[r.Intn(len(ids))])
		}
		var id NodeID
		if r.Intn(5) == 0 {
			id, _ = c.AddDFF(name("q", i), ids[r.Intn(len(ids))])
		} else {
			id, _ = c.AddGate(name("g", i), fn, fanin...)
		}
		ids = append(ids, id)
	}
	c.MarkPO(ids[len(ids)-1])
	return c
}

func name(p string, i int) string { return p + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+i%1000/100)) + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func pick2(r *rand.Rand, i int) string { return "pi" + itoa(i) }

func TestPropertyRandomCircuitsValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomDAGCircuit(r, 30)
		return c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTopoOrderComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomDAGCircuit(r, 50)
		order, err := c.TopoOrder()
		if err != nil {
			return false
		}
		seen := make(map[NodeID]bool)
		for _, id := range order {
			if seen[id] {
				return false // duplicates
			}
			seen[id] = true
		}
		return len(order) == c.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
