package circuit

// Engineering-change-order mutations. The batch front end only ever
// builds circuits append-only (parsers, Builder); the ECO session path
// (DESIGN.md §17) additionally rewires, removes and re-declares nodes in
// place. Every mutator invalidates the cached CSR view, exactly like the
// append path, so flat-core consumers recompile on next access.

import (
	"fmt"
	"sort"
)

// Rewire replaces the fanin pin list of a gate (or the data input of a
// DFF) and maintains the fanout indexes of the old and new drivers. The
// new pin list is validated against the node's function arity; cycle
// freedom is NOT checked here — callers that may have created a
// combinational cycle run Validate/TopoOrder before using the circuit.
func (c *Circuit) Rewire(id NodeID, fanin []NodeID) error {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return fmt.Errorf("circuit: Rewire of unknown node %d", id)
	}
	n := &c.nodes[id]
	switch n.Kind {
	case KindGate:
		if ln := len(fanin); ln < n.Fn.MinInputs() || (n.Fn.MaxInputs() >= 0 && ln > n.Fn.MaxInputs()) {
			return fmt.Errorf("circuit: rewire %q: %s cannot take %d inputs", n.Name, n.Fn, ln)
		}
	case KindDFF:
		if len(fanin) != 1 {
			return fmt.Errorf("circuit: rewire %q: DFF takes exactly 1 input, got %d", n.Name, len(fanin))
		}
	default:
		return fmt.Errorf("circuit: rewire %q: %v nodes have no fanin", n.Name, n.Kind)
	}
	for _, f := range fanin {
		if int(f) < 0 || int(f) >= len(c.nodes) {
			return fmt.Errorf("circuit: rewire %q references unknown fanin %d", n.Name, f)
		}
	}
	old := n.Fanin
	n.Fanin = append(n.Fanin[:0:0], fanin...)
	for _, f := range old {
		c.dropFanout(f, id)
	}
	for _, f := range n.Fanin {
		c.insertFanout(f, id)
	}
	c.csr = nil
	return nil
}

// UnmarkPO withdraws the primary-output declaration of a node; the node
// itself (and any ordinary fanout) stays. Unknown declarations are a
// no-op, mirroring MarkPO's idempotence.
func (c *Circuit) UnmarkPO(id NodeID) error {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return fmt.Errorf("circuit: UnmarkPO of unknown node %d", id)
	}
	for i, p := range c.pos {
		if p == id {
			c.pos = append(c.pos[:i], c.pos[i+1:]...)
			c.csr = nil
			return nil
		}
	}
	return nil
}

// RemoveNode deletes a node that nothing reads: its fanout must be empty
// and it must not be a primary output (UnmarkPO first). Node IDs above
// the removed one shift down by one; the caller owns any external ID
// maps. Two circuits that were equal and receive the same RemoveNode
// stay equal node for node, which is what keeps ECO clients and the
// session server bit-aligned.
func (c *Circuit) RemoveNode(id NodeID) error {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return fmt.Errorf("circuit: RemoveNode of unknown node %d", id)
	}
	n := &c.nodes[id]
	if len(n.Fanout) != 0 {
		return fmt.Errorf("circuit: RemoveNode %q: %d readers remain", n.Name, len(n.Fanout))
	}
	for _, p := range c.pos {
		if p == id {
			return fmt.Errorf("circuit: RemoveNode %q: still a primary output", n.Name)
		}
	}
	for _, f := range n.Fanin {
		// Unconditional removal: every pin of the dying node releases its
		// driver (dropFanout's still-read check would see the not yet
		// cleared fanin of the node itself).
		fo := c.nodes[f].Fanout
		for i, r := range fo {
			if r == id {
				c.nodes[f].Fanout = append(fo[:i], fo[i+1:]...)
				break
			}
		}
	}
	delete(c.byName, n.Name)
	c.nodes = append(c.nodes[:id], c.nodes[id+1:]...)
	shift := func(v NodeID) NodeID {
		if v > id {
			return v - 1
		}
		return v
	}
	for i := range c.nodes {
		nd := &c.nodes[i]
		for j, f := range nd.Fanin {
			nd.Fanin[j] = shift(f)
		}
		for j, f := range nd.Fanout {
			nd.Fanout[j] = shift(f)
		}
	}
	for name, v := range c.byName {
		c.byName[name] = shift(v)
	}
	out := c.pis[:0]
	for _, p := range c.pis {
		if p != id {
			out = append(out, shift(p))
		}
	}
	c.pis = out
	for i, p := range c.pos {
		c.pos[i] = shift(p)
	}
	c.csr = nil
	return nil
}

// dropFanout removes reader from f's fanout list unless another pin of
// reader still reads f.
func (c *Circuit) dropFanout(f, reader NodeID) {
	for _, pin := range c.nodes[reader].Fanin {
		if pin == f {
			return // still read through another pin
		}
	}
	fo := c.nodes[f].Fanout
	for i, r := range fo {
		if r == reader {
			c.nodes[f].Fanout = append(fo[:i], fo[i+1:]...)
			return
		}
	}
}

// insertFanout records reader in f's fanout, keeping the list
// deduplicated and in ascending ID order (the Node.Fanout contract).
func (c *Circuit) insertFanout(f, reader NodeID) {
	fo := c.nodes[f].Fanout
	i := sort.Search(len(fo), func(i int) bool { return fo[i] >= reader })
	if i < len(fo) && fo[i] == reader {
		return
	}
	fo = append(fo, 0)
	copy(fo[i+1:], fo[i:])
	fo[i] = reader
	c.nodes[f].Fanout = fo
}
