package circuit

import "fmt"

// Builder assembles a Circuit from name-based declarations that may contain
// forward references (a gate may read a net declared later, as is normal in
// netlist files and mandatory for feedback through flip-flops).
type Builder struct {
	name    string
	decls   []decl
	poNames []string
	seen    map[string]int // name -> index in decls
}

type decl struct {
	name   string
	kind   Kind
	fn     Func
	fanins []string
}

// NewBuilder returns an empty builder for a design with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, seen: make(map[string]int)}
}

// SetName replaces the design name (parsers use it when the netlist text
// itself carries a name that overrides the filename-derived fallback).
func (b *Builder) SetName(name string) { b.name = name }

// PI declares a primary input net.
func (b *Builder) PI(name string) *Builder {
	b.decls = append(b.decls, decl{name: name, kind: KindPI})
	return b
}

// Gate declares a combinational gate reading the given nets.
func (b *Builder) Gate(name string, fn Func, fanin ...string) *Builder {
	b.decls = append(b.decls, decl{name: name, kind: KindGate, fn: fn, fanins: append([]string(nil), fanin...)})
	return b
}

// DFF declares a D flip-flop reading net d.
func (b *Builder) DFF(name, d string) *Builder {
	b.decls = append(b.decls, decl{name: name, kind: KindDFF, fanins: []string{d}})
	return b
}

// PO marks a net as a primary output. The net may be declared before or
// after this call.
func (b *Builder) PO(name string) *Builder {
	b.poNames = append(b.poNames, name)
	return b
}

// Build resolves all references and returns a validated Circuit.
func (b *Builder) Build() (*Circuit, error) {
	c := New(b.name)
	// Phase 1: create every node with unresolved fanin so that names exist.
	for _, d := range b.decls {
		if d.name == "" {
			return nil, fmt.Errorf("circuit builder %q: empty net name", b.name)
		}
		if _, dup := c.byName[d.name]; dup {
			return nil, fmt.Errorf("circuit builder %q: duplicate net %q", b.name, d.name)
		}
		id := NodeID(len(c.nodes))
		c.nodes = append(c.nodes, Node{Name: d.name, Kind: d.kind, Fn: d.fn})
		c.byName[d.name] = id
		if d.kind == KindPI {
			c.pis = append(c.pis, id)
		}
	}
	// Phase 2: resolve fanins and build fanouts.
	for i, d := range b.decls {
		id := NodeID(i)
		if len(d.fanins) == 0 {
			continue
		}
		fanin := make([]NodeID, len(d.fanins))
		for j, fn := range d.fanins {
			fid, ok := c.byName[fn]
			if !ok {
				return nil, fmt.Errorf("circuit builder %q: node %q reads undeclared net %q", b.name, d.name, fn)
			}
			fanin[j] = fid
		}
		c.nodes[id].Fanin = fanin
		epoch := c.dedupBegin()
		for _, f := range fanin {
			if c.dedupMark[f] == epoch {
				continue
			}
			c.dedupMark[f] = epoch
			c.nodes[f].Fanout = append(c.nodes[f].Fanout, id)
		}
	}
	// Phase 3: primary outputs.
	for _, po := range b.poNames {
		id, ok := c.byName[po]
		if !ok {
			return nil, fmt.Errorf("circuit builder %q: OUTPUT of undeclared net %q", b.name, po)
		}
		if err := c.MarkPO(id); err != nil {
			return nil, err
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
