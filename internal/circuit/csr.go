package circuit

// CSR is the flat compressed-sparse-row view of a Circuit: every per-node
// attribute lives in a dense parallel slice indexed by NodeID, and the
// jagged Fanin/Fanout adjacency is packed into two contiguous edge arrays
// with offset arrays beside them. The analysis engines (sim, obs) walk
// these arrays instead of chasing *Node pointers: one cache line holds
// eight node kinds or sixteen offsets, and a whole evaluation pass touches
// O(1) allocations instead of O(nodes).
//
// A CSR is immutable and safe for concurrent readers. It is built once per
// Circuit by Circuit.CSR and cached; any mutation of the circuit
// invalidates the cache. Callers must not modify any of the slices.
type CSR struct {
	// N is the node count; every slice below of per-node extent has len N.
	N int

	// Kind and Fn mirror Node.Kind / Node.Fn.
	Kind []Kind
	Fn   []Func

	// Level is the combinational depth: 0 for PIs, DFFs and constants,
	// 1 + max(fanin gate levels) for gates.
	Level []int32

	// Fanin adjacency: node i reads Fanin[FaninStart[i]:FaninStart[i+1]],
	// in input-pin order. FaninStart has N+1 entries.
	FaninStart []int32
	Fanin      []NodeID

	// Fanout adjacency, deduplicated and in ascending reader order,
	// packed the same way.
	FanoutStart []int32
	Fanout      []NodeID

	// Order is the combinational topological order of all nodes (the
	// TopoOrder result); RevOrder is Order reversed (the backward-pass
	// order of the ODC analysis); GateOrder is the KindGate subsequence of
	// Order (the forward evaluation order with source nodes skipped).
	Order     []NodeID
	RevOrder  []NodeID
	GateOrder []NodeID

	// PIs and POs are the primary inputs/outputs in declaration order;
	// IsPO is the PO membership mask.
	PIs, POs []NodeID
	IsPO     []bool
}

// FaninOf returns the fanin IDs of node n as a sub-slice of the packed
// edge array.
func (s *CSR) FaninOf(n NodeID) []NodeID {
	return s.Fanin[s.FaninStart[n]:s.FaninStart[n+1]]
}

// FanoutOf returns the fanout IDs of node n as a sub-slice of the packed
// edge array.
func (s *CSR) FanoutOf(n NodeID) []NodeID {
	return s.Fanout[s.FanoutStart[n]:s.FanoutStart[n+1]]
}

// CSR returns the flat view of the circuit, building and caching it on
// first use. The circuit must be combinationally acyclic (the same error
// TopoOrder reports otherwise). The returned CSR is shared: callers must
// treat it as read-only, and must not call CSR concurrently with circuit
// mutations (the usual rule for any read).
func (c *Circuit) CSR() (*CSR, error) {
	c.csrMu.Lock()
	defer c.csrMu.Unlock()
	if c.csr != nil {
		return c.csr, nil
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := len(c.nodes)
	s := &CSR{
		N:     n,
		Kind:  make([]Kind, n),
		Fn:    make([]Func, n),
		Level: make([]int32, n),
		Order: order,
		IsPO:  make([]bool, n),
		PIs:   append([]NodeID(nil), c.pis...),
		POs:   append([]NodeID(nil), c.pos...),
	}
	var nin, nout int
	for i := range c.nodes {
		nin += len(c.nodes[i].Fanin)
		nout += len(c.nodes[i].Fanout)
	}
	s.FaninStart = make([]int32, n+1)
	s.Fanin = make([]NodeID, 0, nin)
	s.FanoutStart = make([]int32, n+1)
	s.Fanout = make([]NodeID, 0, nout)
	gates := 0
	for i := range c.nodes {
		nd := &c.nodes[i]
		s.Kind[i] = nd.Kind
		s.Fn[i] = nd.Fn
		s.Fanin = append(s.Fanin, nd.Fanin...)
		s.FaninStart[i+1] = int32(len(s.Fanin))
		s.Fanout = append(s.Fanout, nd.Fanout...)
		s.FanoutStart[i+1] = int32(len(s.Fanout))
		if nd.Kind == KindGate {
			gates++
		}
	}
	s.RevOrder = make([]NodeID, n)
	s.GateOrder = make([]NodeID, 0, gates)
	for i, id := range order {
		s.RevOrder[n-1-i] = id
		if s.Kind[id] == KindGate {
			s.GateOrder = append(s.GateOrder, id)
			var lvl int32
			for _, f := range s.FaninOf(id) {
				if s.Kind[f] == KindGate && s.Level[f] >= lvl {
					lvl = s.Level[f]
				}
			}
			s.Level[id] = lvl + 1
		}
	}
	for _, po := range c.pos {
		s.IsPO[po] = true
	}
	c.csr = s
	return s, nil
}
