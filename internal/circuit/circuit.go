// Package circuit models gate-level sequential netlists: combinational
// gates, D flip-flops, primary inputs and primary outputs.
//
// It is the structural substrate for everything else in this module: the
// .bench parser produces a Circuit, the logic simulator evaluates one, the
// retiming graph is extracted from one, and a retimed graph is materialized
// back into one for equivalence checking.
package circuit

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NodeID indexes a node within a Circuit. IDs are dense: 0..len(Nodes)-1.
type NodeID int32

// InvalidNode is the zero-meaning sentinel for "no node".
const InvalidNode NodeID = -1

// Kind classifies a node.
type Kind uint8

const (
	// KindPI is a primary input.
	KindPI Kind = iota
	// KindGate is a combinational gate; its function is Node.Fn.
	KindGate
	// KindDFF is an edge-triggered D flip-flop with a single data input.
	KindDFF
)

func (k Kind) String() string {
	switch k {
	case KindPI:
		return "PI"
	case KindGate:
		return "GATE"
	case KindDFF:
		return "DFF"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Func is a combinational gate function.
type Func uint8

const (
	// FnBuf is the identity function of one input.
	FnBuf Func = iota
	// FnNot is inversion of one input.
	FnNot
	// FnAnd is the conjunction of all inputs.
	FnAnd
	// FnNand is the negated conjunction.
	FnNand
	// FnOr is the disjunction of all inputs.
	FnOr
	// FnNor is the negated disjunction.
	FnNor
	// FnXor is the parity of all inputs.
	FnXor
	// FnXnor is the negated parity.
	FnXnor
	// FnConst0 is the constant 0 (no inputs).
	FnConst0
	// FnConst1 is the constant 1 (no inputs).
	FnConst1
)

var funcNames = [...]string{
	FnBuf: "BUF", FnNot: "NOT", FnAnd: "AND", FnNand: "NAND",
	FnOr: "OR", FnNor: "NOR", FnXor: "XOR", FnXnor: "XNOR",
	FnConst0: "CONST0", FnConst1: "CONST1",
}

func (f Func) String() string {
	if int(f) < len(funcNames) {
		return funcNames[f]
	}
	return fmt.Sprintf("Func(%d)", uint8(f))
}

// ParseFunc resolves a gate function by its canonical name (the String
// form, case-insensitive). Used by the parsers and the ECO delta codec.
func ParseFunc(name string) (Func, bool) {
	for f, n := range funcNames {
		if strings.EqualFold(name, n) {
			return Func(f), true
		}
	}
	return 0, false
}

// MinInputs returns the minimum legal fanin count for the function.
func (f Func) MinInputs() int {
	switch f {
	case FnConst0, FnConst1:
		return 0
	case FnBuf, FnNot:
		return 1
	default:
		return 2
	}
}

// MaxInputs returns the maximum legal fanin count, or -1 for unbounded.
func (f Func) MaxInputs() int {
	switch f {
	case FnConst0, FnConst1:
		return 0
	case FnBuf, FnNot:
		return 1
	default:
		return -1
	}
}

// Eval computes the function over word-parallel input signatures: each
// uint64 carries 64 independent simulation vectors.
func (f Func) Eval(in []uint64) uint64 {
	switch f {
	case FnConst0:
		return 0
	case FnConst1:
		return ^uint64(0)
	case FnBuf:
		return in[0]
	case FnNot:
		return ^in[0]
	case FnAnd, FnNand:
		v := ^uint64(0)
		for _, x := range in {
			v &= x
		}
		if f == FnNand {
			v = ^v
		}
		return v
	case FnOr, FnNor:
		var v uint64
		for _, x := range in {
			v |= x
		}
		if f == FnNor {
			v = ^v
		}
		return v
	case FnXor, FnXnor:
		var v uint64
		for _, x := range in {
			v ^= x
		}
		if f == FnXnor {
			v = ^v
		}
		return v
	}
	panic(fmt.Sprintf("circuit: Eval of unknown function %d", uint8(f)))
}

// EvalFanin computes the function over fanin signatures read directly from
// a node-major value plane: input j is vals[int(fanin[j])*stride+w]. It is
// Eval without the gather copy — the word operations run in the same order
// over the same values, so the result is bit-identical.
func (f Func) EvalFanin(vals []uint64, fanin []NodeID, stride, w int) uint64 {
	switch f {
	case FnConst0:
		return 0
	case FnConst1:
		return ^uint64(0)
	case FnBuf:
		return vals[int(fanin[0])*stride+w]
	case FnNot:
		return ^vals[int(fanin[0])*stride+w]
	case FnAnd, FnNand:
		v := ^uint64(0)
		for _, fid := range fanin {
			v &= vals[int(fid)*stride+w]
		}
		if f == FnNand {
			v = ^v
		}
		return v
	case FnOr, FnNor:
		var v uint64
		for _, fid := range fanin {
			v |= vals[int(fid)*stride+w]
		}
		if f == FnNor {
			v = ^v
		}
		return v
	case FnXor, FnXnor:
		var v uint64
		for _, fid := range fanin {
			v ^= vals[int(fid)*stride+w]
		}
		if f == FnXnor {
			v = ^v
		}
		return v
	}
	panic(fmt.Sprintf("circuit: EvalFanin of unknown function %d", uint8(f)))
}

// Node is one element of a circuit.
type Node struct {
	// Name is the net name of the node's output. Unique within a circuit.
	Name string
	// Kind classifies the node; Fn is meaningful only for KindGate.
	Kind Kind
	Fn   Func
	// Fanin lists driver nodes in input-pin order. Empty for PIs and
	// constants; exactly one entry for DFFs, NOT and BUF.
	Fanin []NodeID
	// Fanout lists reader nodes, deduplicated, in ascending ID order.
	// Maintained by Circuit; a node reading the same net twice appears once.
	Fanout []NodeID
}

// Circuit is a mutable gate-level netlist.
type Circuit struct {
	// Name identifies the design (e.g. the benchmark name).
	Name string

	nodes  []Node
	byName map[string]NodeID
	// pos lists the nodes whose output nets are primary outputs, in
	// declaration order. A node may be a PO and still drive other nodes.
	pos []NodeID
	// pis caches the primary inputs in declaration order.
	pis []NodeID

	// csr is the cached flat view (see csr.go), invalidated by any
	// mutation; csrMu serializes its construction.
	csr   *CSR
	csrMu sync.Mutex

	// dedupMark/dedupEpoch are the fanout-dedup scratch shared by add and
	// Builder.Build: an epoch stamp per node replaces the per-call map the
	// construction path used to allocate, so building an N-gate netlist
	// costs O(1) dedup allocations instead of O(N). Only mutating calls
	// touch the scratch, which are single-goroutine by contract.
	dedupMark  []uint32
	dedupEpoch uint32
}

// dedupBegin sizes the dedup scratch to the current node count and opens
// a fresh epoch. A node f is "seen" this epoch iff dedupMark[f] equals
// the returned epoch.
func (c *Circuit) dedupBegin() uint32 {
	if len(c.dedupMark) < len(c.nodes) {
		c.dedupMark = append(c.dedupMark, make([]uint32, len(c.nodes)-len(c.dedupMark))...)
	}
	c.dedupEpoch++
	if c.dedupEpoch == 0 { // wrapped: stale stamps become ambiguous
		clear(c.dedupMark)
		c.dedupEpoch = 1
	}
	return c.dedupEpoch
}

// New returns an empty circuit with the given design name.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]NodeID)}
}

// NumNodes returns the total node count (PIs + gates + DFFs).
func (c *Circuit) NumNodes() int { return len(c.nodes) }

// Node returns the node with the given ID. The returned pointer stays valid
// until the next Add call.
func (c *Circuit) Node(id NodeID) *Node { return &c.nodes[id] }

// Lookup returns the node ID for a net name.
func (c *Circuit) Lookup(name string) (NodeID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// PIs returns the primary input IDs in declaration order. Callers must not
// modify the returned slice.
func (c *Circuit) PIs() []NodeID { return c.pis }

// POs returns the IDs of nodes whose outputs are primary outputs, in
// declaration order. Callers must not modify the returned slice.
func (c *Circuit) POs() []NodeID { return c.pos }

// AddPI appends a primary input with the given net name.
func (c *Circuit) AddPI(name string) (NodeID, error) {
	id, err := c.add(Node{Name: name, Kind: KindPI})
	if err != nil {
		return InvalidNode, err
	}
	c.pis = append(c.pis, id)
	return id, nil
}

// AddGate appends a combinational gate.
func (c *Circuit) AddGate(name string, fn Func, fanin ...NodeID) (NodeID, error) {
	if n := len(fanin); n < fn.MinInputs() || (fn.MaxInputs() >= 0 && n > fn.MaxInputs()) {
		return InvalidNode, fmt.Errorf("circuit: gate %q: %s cannot take %d inputs", name, fn, len(fanin))
	}
	return c.add(Node{Name: name, Kind: KindGate, Fn: fn, Fanin: append([]NodeID(nil), fanin...)})
}

// AddDFF appends a D flip-flop reading the given data input.
func (c *Circuit) AddDFF(name string, d NodeID) (NodeID, error) {
	return c.add(Node{Name: name, Kind: KindDFF, Fanin: []NodeID{d}})
}

// MarkPO declares the node's output net a primary output.
func (c *Circuit) MarkPO(id NodeID) error {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return fmt.Errorf("circuit: MarkPO of unknown node %d", id)
	}
	for _, p := range c.pos {
		if p == id {
			return nil // already a PO; idempotent
		}
	}
	c.pos = append(c.pos, id)
	c.csr = nil
	return nil
}

func (c *Circuit) add(n Node) (NodeID, error) {
	if n.Name == "" {
		return InvalidNode, fmt.Errorf("circuit: empty node name")
	}
	if _, dup := c.byName[n.Name]; dup {
		return InvalidNode, fmt.Errorf("circuit: duplicate net name %q", n.Name)
	}
	for _, f := range n.Fanin {
		if int(f) < 0 || int(f) >= len(c.nodes) {
			return InvalidNode, fmt.Errorf("circuit: node %q references unknown fanin %d", n.Name, f)
		}
	}
	id := NodeID(len(c.nodes))
	c.nodes = append(c.nodes, n)
	c.byName[n.Name] = id
	c.csr = nil
	epoch := c.dedupBegin()
	for _, f := range n.Fanin {
		if c.dedupMark[f] == epoch {
			continue
		}
		c.dedupMark[f] = epoch
		c.nodes[f].Fanout = append(c.nodes[f].Fanout, id)
	}
	return id, nil
}

// Counts reports the number of PIs, POs, combinational gates and DFFs.
func (c *Circuit) Counts() (pis, pos, gates, dffs int) {
	for i := range c.nodes {
		switch c.nodes[i].Kind {
		case KindPI:
			pis++
		case KindGate:
			gates++
		case KindDFF:
			dffs++
		}
	}
	return pis, len(c.pos), gates, dffs
}

// TopoOrder returns all node IDs in a combinational topological order:
// every gate appears after all of its non-DFF fanins. DFFs and PIs are
// sources (their current-cycle outputs do not depend on current-cycle
// inputs), so they appear before any gate that reads them. An error is
// returned if the combinational subgraph has a cycle.
func (c *Circuit) TopoOrder() ([]NodeID, error) {
	n := len(c.nodes)
	order := make([]NodeID, 0, n)
	indeg := make([]int32, n)
	// mark dedups multi-pin fanins with a per-gate epoch (the gate index
	// itself), one allocation for the whole pass. TopoOrder stays safe for
	// concurrent readers, so it does not borrow the circuit's dedup
	// scratch.
	mark := make([]int32, n)
	for i := range c.nodes {
		nd := &c.nodes[i]
		if nd.Kind != KindGate {
			continue // PIs and DFFs are sources
		}
		// Combinational in-degree counts only distinct gate fanins.
		epoch := int32(i) + 1
		for _, f := range nd.Fanin {
			if mark[f] == epoch {
				continue
			}
			mark[f] = epoch
			if c.nodes[f].Kind == KindGate {
				indeg[i]++
			}
		}
	}
	queue := make([]NodeID, 0, n)
	for i := range c.nodes {
		if c.nodes[i].Kind != KindGate || indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		if c.nodes[id].Kind != KindGate {
			// PI and DFF fanins never counted toward indeg (a DFF's
			// fanout belongs to the *next* cycle), so nothing to release.
			continue
		}
		for _, g := range c.nodes[id].Fanout {
			if c.nodes[g].Kind != KindGate {
				continue
			}
			indeg[g]--
			if indeg[g] == 0 {
				queue = append(queue, g)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("circuit %q: combinational cycle detected (%d of %d nodes ordered)", c.Name, len(order), n)
	}
	return order, nil
}

// Validate checks structural well-formedness: fanin arities, no
// combinational cycles, every non-PI node reachable-driven, and every DFF
// having exactly one data input.
func (c *Circuit) Validate() error {
	for i := range c.nodes {
		nd := &c.nodes[i]
		switch nd.Kind {
		case KindPI:
			if len(nd.Fanin) != 0 {
				return fmt.Errorf("circuit %q: PI %q has fanin", c.Name, nd.Name)
			}
		case KindDFF:
			if len(nd.Fanin) != 1 {
				return fmt.Errorf("circuit %q: DFF %q has %d inputs, want 1", c.Name, nd.Name, len(nd.Fanin))
			}
		case KindGate:
			if n := len(nd.Fanin); n < nd.Fn.MinInputs() || (nd.Fn.MaxInputs() >= 0 && n > nd.Fn.MaxInputs()) {
				return fmt.Errorf("circuit %q: gate %q (%s) has %d inputs", c.Name, nd.Name, nd.Fn, len(nd.Fanin))
			}
		}
	}
	if _, err := c.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Stats summarizes a circuit for reporting.
type Stats struct {
	PIs, POs, Gates, DFFs int
	// Depth is the maximum number of gates on any combinational path.
	Depth int
	// MaxFanout is the largest fanout of any node.
	MaxFanout int
}

// Stats computes summary statistics. The circuit must be valid.
func (c *Circuit) Stats() (Stats, error) {
	var s Stats
	s.PIs, s.POs, s.Gates, s.DFFs = c.Counts()
	order, err := c.TopoOrder()
	if err != nil {
		return Stats{}, err
	}
	depth := make([]int, len(c.nodes))
	for _, id := range order {
		nd := &c.nodes[id]
		if nd.Kind != KindGate {
			continue
		}
		d := 0
		for _, f := range nd.Fanin {
			if c.nodes[f].Kind == KindGate && depth[f] > d {
				d = depth[f]
			}
		}
		depth[id] = d + 1
		if depth[id] > s.Depth {
			s.Depth = depth[id]
		}
	}
	for i := range c.nodes {
		if len(c.nodes[i].Fanout) > s.MaxFanout {
			s.MaxFanout = len(c.nodes[i].Fanout)
		}
	}
	return s, nil
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{
		Name:   c.Name,
		nodes:  make([]Node, len(c.nodes)),
		byName: make(map[string]NodeID, len(c.byName)),
		pos:    append([]NodeID(nil), c.pos...),
		pis:    append([]NodeID(nil), c.pis...),
	}
	for i := range c.nodes {
		n := c.nodes[i]
		n.Fanin = append([]NodeID(nil), n.Fanin...)
		n.Fanout = append([]NodeID(nil), n.Fanout...)
		out.nodes[i] = n
	}
	for k, v := range c.byName {
		out.byName[k] = v
	}
	return out
}

// NodesOfKind returns all node IDs of the given kind in ascending order.
func (c *Circuit) NodesOfKind(k Kind) []NodeID {
	var out []NodeID
	for i := range c.nodes {
		if c.nodes[i].Kind == k {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// SortedNames returns all net names in lexicographic order (for
// deterministic output).
func (c *Circuit) SortedNames() []string {
	names := make([]string, 0, len(c.nodes))
	for i := range c.nodes {
		names = append(names, c.nodes[i].Name)
	}
	sort.Strings(names)
	return names
}
