package circuit

import (
	"reflect"
	"testing"
)

// buildECO returns a small circuit: a, b inputs; g1 = AND(a,b);
// g2 = OR(g1,a); d = DFF(g2); PO g2.
func buildECO(t *testing.T) (*Circuit, map[string]NodeID) {
	t.Helper()
	c := New("eco")
	ids := map[string]NodeID{}
	mk := func(name string, f func() (NodeID, error)) {
		id, err := f()
		if err != nil {
			t.Fatalf("add %s: %v", name, err)
		}
		ids[name] = id
	}
	mk("a", func() (NodeID, error) { return c.AddPI("a") })
	mk("b", func() (NodeID, error) { return c.AddPI("b") })
	mk("g1", func() (NodeID, error) { return c.AddGate("g1", FnAnd, ids["a"], ids["b"]) })
	mk("g2", func() (NodeID, error) { return c.AddGate("g2", FnOr, ids["g1"], ids["a"]) })
	mk("d", func() (NodeID, error) { return c.AddDFF("d", ids["g2"]) })
	if err := c.MarkPO(ids["g2"]); err != nil {
		t.Fatalf("mark PO: %v", err)
	}
	return c, ids
}

func fanoutOf(c *Circuit, id NodeID) []NodeID {
	return append([]NodeID(nil), c.Node(id).Fanout...)
}

func TestRewire(t *testing.T) {
	c, ids := buildECO(t)
	// g2 = OR(g1, a) -> OR(b, a): g1 loses its only reader except d... no,
	// d reads g2. After the rewire g1's fanout must be empty and b's must
	// gain g2, in ascending order.
	if err := c.Rewire(ids["g2"], []NodeID{ids["b"], ids["a"]}); err != nil {
		t.Fatalf("rewire: %v", err)
	}
	if got := fanoutOf(c, ids["g1"]); len(got) != 0 {
		t.Fatalf("old driver g1 still has fanout %v", got)
	}
	if got, want := fanoutOf(c, ids["b"]), []NodeID{ids["g1"], ids["g2"]}; !reflect.DeepEqual(got, want) {
		t.Fatalf("b fanout = %v, want %v", got, want)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("validate after rewire: %v", err)
	}

	// Arity violations and bad kinds must be rejected without mutation.
	if err := c.Rewire(ids["g1"], []NodeID{ids["a"]}); err == nil {
		t.Fatalf("AND with 1 input accepted")
	}
	if err := c.Rewire(ids["d"], []NodeID{ids["a"], ids["b"]}); err == nil {
		t.Fatalf("DFF with 2 inputs accepted")
	}
	if err := c.Rewire(ids["a"], []NodeID{ids["b"]}); err == nil {
		t.Fatalf("rewire of a PI accepted")
	}
	if err := c.Rewire(ids["d"], []NodeID{ids["a"]}); err != nil {
		t.Fatalf("rewire DFF data input: %v", err)
	}
	if got := fanoutOf(c, ids["g2"]); len(got) != 0 {
		t.Fatalf("g2 keeps stale fanout %v after DFF rewire", got)
	}
}

func TestRewireDuplicatePin(t *testing.T) {
	c, ids := buildECO(t)
	// Two pins reading the same net: fanout must stay deduplicated, and a
	// later rewire of one pin must keep the driver's fanout entry alive.
	if err := c.Rewire(ids["g1"], []NodeID{ids["a"], ids["a"]}); err != nil {
		t.Fatalf("rewire to duplicate pins: %v", err)
	}
	if got, want := fanoutOf(c, ids["a"]), []NodeID{ids["g1"], ids["g2"]}; !reflect.DeepEqual(got, want) {
		t.Fatalf("a fanout = %v, want %v", got, want)
	}
	if err := c.Rewire(ids["g1"], []NodeID{ids["a"], ids["b"]}); err != nil {
		t.Fatalf("rewire away one duplicate pin: %v", err)
	}
	if got, want := fanoutOf(c, ids["a"]), []NodeID{ids["g1"], ids["g2"]}; !reflect.DeepEqual(got, want) {
		t.Fatalf("a fanout after dedup rewire = %v, want %v", got, want)
	}
}

func TestUnmarkPO(t *testing.T) {
	c, ids := buildECO(t)
	if err := c.UnmarkPO(ids["g2"]); err != nil {
		t.Fatalf("unmark: %v", err)
	}
	if got := c.POs(); len(got) != 0 {
		t.Fatalf("POs = %v after unmark", got)
	}
	// Idempotent, like MarkPO.
	if err := c.UnmarkPO(ids["g2"]); err != nil {
		t.Fatalf("second unmark: %v", err)
	}
}

func TestRemoveNode(t *testing.T) {
	c, ids := buildECO(t)

	// Guarded: g1 is read by g2; g2 is a PO; d reads g2.
	if err := c.RemoveNode(ids["g1"]); err == nil {
		t.Fatalf("removed a node with readers")
	}
	if err := c.RemoveNode(ids["d"]); err != nil {
		t.Fatalf("remove leaf DFF: %v", err)
	}
	if _, ok := c.Lookup("d"); ok {
		t.Fatalf("d still resolvable after removal")
	}
	if err := c.RemoveNode(ids["g2"]); err == nil {
		t.Fatalf("removed a primary output")
	}
	if err := c.UnmarkPO(ids["g2"]); err != nil {
		t.Fatalf("unmark: %v", err)
	}
	if err := c.RemoveNode(ids["g2"]); err != nil {
		t.Fatalf("remove g2: %v", err)
	}

	// IDs above the removed nodes shifted down; names stay coherent.
	if err := c.Validate(); err != nil {
		t.Fatalf("validate after removals: %v", err)
	}
	g1, ok := c.Lookup("g1")
	if !ok {
		t.Fatalf("g1 lost")
	}
	if got := fanoutOf(c, g1); len(got) != 0 {
		t.Fatalf("g1 keeps stale fanout %v", got)
	}
	if got := c.NumNodes(); got != 3 {
		t.Fatalf("NumNodes = %d, want 3", got)
	}
	for _, name := range []string{"a", "b", "g1"} {
		id, ok := c.Lookup(name)
		if !ok || c.Node(id).Name != name {
			t.Fatalf("name map broken for %q", name)
		}
	}

	// A node reading the same driver through two pins releases it fully.
	g3, err := c.AddGate("g3", FnAnd, g1, g1)
	if err != nil {
		t.Fatalf("add g3: %v", err)
	}
	if err := c.RemoveNode(g3); err != nil {
		t.Fatalf("remove g3: %v", err)
	}
	if got := fanoutOf(c, g1); len(got) != 0 {
		t.Fatalf("double-pin removal left fanout %v on g1", got)
	}
}

// TestRemoveNodeKeepsEqualCircuitsAligned is the ECO bit-alignment
// contract: two equal circuits receiving the same mutation stream stay
// equal node for node.
func TestRemoveNodeKeepsEqualCircuitsAligned(t *testing.T) {
	a, ids := buildECO(t)
	b := a.Clone()
	mutate := func(c *Circuit) {
		d, _ := c.Lookup("d")
		if err := c.RemoveNode(d); err != nil {
			t.Fatalf("remove d: %v", err)
		}
		g1, _ := c.Lookup("g1")
		if err := c.Rewire(g1, []NodeID{ids["b"], ids["a"]}); err != nil {
			t.Fatalf("rewire g1: %v", err)
		}
	}
	mutate(a)
	mutate(b)
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("node counts diverged: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	for i := 0; i < a.NumNodes(); i++ {
		na, nb := a.Node(NodeID(i)), b.Node(NodeID(i))
		if na.Name != nb.Name || na.Kind != nb.Kind ||
			!reflect.DeepEqual(na.Fanin, nb.Fanin) || !reflect.DeepEqual(na.Fanout, nb.Fanout) {
			t.Fatalf("node %d diverged: %+v vs %+v", i, na, nb)
		}
	}
}
