package circuit

import (
	"testing"
)

func csrTestCircuit(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("csr-test")
	b.PI("a")
	b.PI("b")
	b.Gate("g1", FnAnd, "a", "b")
	b.DFF("q", "g1")
	b.Gate("g2", FnXor, "q", "a")
	b.Gate("g3", FnNot, "g2")
	b.PO("g3")
	b.PO("g1")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCSRMirrorsNodes: the packed fanin/fanout arrays, kinds, functions and
// orders of the CSR view must agree exactly with the per-node slices.
func TestCSRMirrorsNodes(t *testing.T) {
	c := csrTestCircuit(t)
	s, err := c.CSR()
	if err != nil {
		t.Fatal(err)
	}
	if s.N != c.NumNodes() {
		t.Fatalf("N = %d, want %d", s.N, c.NumNodes())
	}
	for id := 0; id < s.N; id++ {
		n := NodeID(id)
		nd := c.Node(n)
		if s.Kind[id] != nd.Kind || s.Fn[id] != nd.Fn {
			t.Fatalf("node %d: kind/fn mismatch", id)
		}
		fin := s.FaninOf(n)
		if len(fin) != len(nd.Fanin) {
			t.Fatalf("node %d: %d fanins, want %d", id, len(fin), len(nd.Fanin))
		}
		for i := range fin {
			if fin[i] != nd.Fanin[i] {
				t.Fatalf("node %d fanin %d: %d != %d", id, i, fin[i], nd.Fanin[i])
			}
		}
		fout := s.FanoutOf(n)
		if len(fout) != len(nd.Fanout) {
			t.Fatalf("node %d: %d fanouts, want %d", id, len(fout), len(nd.Fanout))
		}
		for i := range fout {
			if fout[i] != nd.Fanout[i] {
				t.Fatalf("node %d fanout %d: %d != %d", id, i, fout[i], nd.Fanout[i])
			}
		}
	}
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Order) != len(order) {
		t.Fatalf("order length %d, want %d", len(s.Order), len(order))
	}
	gates := 0
	for i, id := range order {
		if s.Order[i] != id {
			t.Fatalf("order[%d] = %d, want %d", i, s.Order[i], id)
		}
		if s.RevOrder[len(order)-1-i] != id {
			t.Fatalf("rev order mismatch at %d", i)
		}
		if s.Kind[id] == KindGate {
			if s.GateOrder[gates] != id {
				t.Fatalf("gate order[%d] = %d, want %d", gates, s.GateOrder[gates], id)
			}
			gates++
		}
	}
	if gates != len(s.GateOrder) {
		t.Fatalf("gate order has %d entries, want %d", len(s.GateOrder), gates)
	}
	for _, po := range c.POs() {
		if !s.IsPO[po] {
			t.Fatalf("PO %d not flagged", po)
		}
	}
}

// TestCSRLevels: sources at level 0, gates one above their deepest fanin.
func TestCSRLevels(t *testing.T) {
	c := csrTestCircuit(t)
	s, err := c.CSR()
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < s.N; id++ {
		if s.Kind[id] != KindGate {
			if s.Level[id] != 0 {
				t.Fatalf("source %d at level %d", id, s.Level[id])
			}
			continue
		}
		want := int32(0)
		for _, f := range s.FaninOf(NodeID(id)) {
			if s.Level[f] > want {
				want = s.Level[f]
			}
		}
		want++
		if s.Level[id] != want {
			t.Fatalf("gate %d at level %d, want %d", id, s.Level[id], want)
		}
	}
}

// TestCSRCachedAndInvalidated: repeated calls share the view; MarkPO
// invalidates it.
func TestCSRCachedAndInvalidated(t *testing.T) {
	c := csrTestCircuit(t)
	s1, err := c.CSR()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.CSR()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("CSR not cached across calls")
	}
	if err := c.MarkPO(s1.Order[0]); err != nil {
		t.Fatal(err)
	}
	s3, err := c.CSR()
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatal("CSR not invalidated by MarkPO")
	}
}

// TestEvalFaninMatchesEval: EvalFanin over a node-major plane must equal
// Eval over the gathered inputs for every function.
func TestEvalFaninMatchesEval(t *testing.T) {
	const stride = 3
	vals := []uint64{
		0xDEADBEEF00112233, 5, 9,
		0x0F0F0F0F0F0F0F0F, 7, 2,
		0xFFFF0000FFFF0000, 1, 8,
	}
	fanin := []NodeID{2, 0, 1}
	fns := []Func{FnConst0, FnConst1, FnBuf, FnNot, FnAnd, FnNand, FnOr, FnNor, FnXor, FnXnor}
	for _, fn := range fns {
		for w := 0; w < stride; w++ {
			var in []uint64
			for _, f := range fanin {
				in = append(in, vals[int(f)*stride+w])
			}
			want := fn.Eval(in)
			got := fn.EvalFanin(vals, fanin, stride, w)
			if got != want {
				t.Fatalf("fn %v word %d: EvalFanin %x != Eval %x", fn, w, got, want)
			}
		}
	}
}
