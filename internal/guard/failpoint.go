package guard

import (
	"fmt"
	"sync"
)

// Failpoints are named crash sites for fault-injection testing: production
// code plants Failpoint("pkg.site") calls at interesting spots; a test (or
// a diagnostic flag like serbench -faultinject) arms a name, and the next
// visit panics. The panic is expected to be caught by a surrounding
// guard.Run and surface as ErrInternal — which is exactly the path the
// injection exercises.
var failpoints = struct {
	sync.Mutex
	// armed counts remaining firings per name: < 0 = fire forever.
	armed map[string]int
}{armed: map[string]int{}}

// ArmFailpoint makes the named failpoint panic on every visit until
// disarmed.
func ArmFailpoint(name string) {
	failpoints.Lock()
	defer failpoints.Unlock()
	failpoints.armed[name] = -1
}

// ArmFailpointCount makes the named failpoint panic on its next n visits
// and then disarm itself — a transient fault. n <= 0 disarms.
func ArmFailpointCount(name string, n int) {
	failpoints.Lock()
	defer failpoints.Unlock()
	if n <= 0 {
		delete(failpoints.armed, name)
		return
	}
	failpoints.armed[name] = n
}

// DisarmFailpoint disables the named failpoint.
func DisarmFailpoint(name string) {
	failpoints.Lock()
	defer failpoints.Unlock()
	delete(failpoints.armed, name)
}

// Failpoint panics with a recognizable value if name is armed. It is a
// no-op (one cheap map read) otherwise.
func Failpoint(name string) {
	failpoints.Lock()
	n, armed := failpoints.armed[name]
	if armed && n > 0 {
		n--
		if n == 0 {
			delete(failpoints.armed, name)
		} else {
			failpoints.armed[name] = n
		}
	}
	failpoints.Unlock()
	if armed {
		panic(fmt.Sprintf("guard: injected fault at %q", name))
	}
}
