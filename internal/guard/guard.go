// Package guard is the fault-tolerance substrate of the toolkit: a typed
// error taxonomy shared by every entry point, panic isolation with stack
// capture, cooperative cancellation checkpoints, a progress watchdog for
// the iterative optimizers, and named failpoints for fault-injection
// testing.
//
// The taxonomy is deliberately small. Every failure a caller can observe
// from the public API unwraps to exactly one of the five sentinels, so
// callers dispatch with errors.Is and never need to match message text:
//
//	ErrParse      malformed input (netlist syntax, unmappable covers)
//	ErrInfeasible a well-formed problem with no solution under the
//	              requested constraints (wedged ELW budget, period too
//	              tight)
//	ErrTimeout    a context deadline or cancellation was observed
//	ErrStalled    the optimizer's watchdog fired: the objective stopped
//	              improving within the configured step budget
//	ErrInternal   a recovered panic (with the captured stack) — a bug,
//	              not a user error, but one that must not crash a server
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// Sentinel errors of the taxonomy. Concrete error types below unwrap to
// these, so errors.Is(err, guard.ErrParse) etc. classifies any error
// produced by the toolkit.
var (
	ErrParse      = errors.New("parse error")
	ErrInfeasible = errors.New("infeasible")
	ErrTimeout    = errors.New("timeout")
	ErrStalled    = errors.New("stalled")
	ErrInternal   = errors.New("internal fault")
	// ErrStore marks a persistence-layer failure (WAL append, payload
	// write, recovery replay). A store fault is environmental, not a user
	// error and not a solver bug: the service reacts by degrading to
	// memory-only operation, never by failing the solve.
	ErrStore = errors.New("store fault")
)

// ParseError reports malformed input with its position. Line and Col are
// 1-based; Col 0 means the column is unknown.
type ParseError struct {
	// Format names the input language ("bench", "blif", "verilog").
	Format string
	Line   int
	Col    int
	Msg    string
}

func (e *ParseError) Error() string {
	f := e.Format
	if f == "" {
		f = "parse"
	}
	switch {
	case e.Line > 0 && e.Col > 0:
		return fmt.Sprintf("%s: line %d, col %d: %s", f, e.Line, e.Col, e.Msg)
	case e.Line > 0:
		return fmt.Sprintf("%s: line %d: %s", f, e.Line, e.Msg)
	}
	return fmt.Sprintf("%s: %s", f, e.Msg)
}

func (e *ParseError) Unwrap() error { return ErrParse }

// Parsef builds a *ParseError with a formatted message.
func Parsef(format string, line, col int, msgf string, args ...any) *ParseError {
	return &ParseError{Format: format, Line: line, Col: col, Msg: fmt.Sprintf(msgf, args...)}
}

// RecoverParse converts a panic escaping a parser into a returned
// *ParseError located at *line (the line the parser was processing when
// it fell over). Use as:
//
//	defer guard.RecoverParse("bench", &lineNo, &err)
//
// Malformed input must produce an error, never a crash — this is the
// parser's last line of defense when an input shape its validation did
// not anticipate trips an internal invariant.
func RecoverParse(format string, line *int, err *error) {
	if r := recover(); r != nil {
		*err = &ParseError{Format: format, Line: *line, Msg: fmt.Sprintf("internal parser fault: %v", r)}
	}
}

// OptionError reports an invalid option value handed to a public entry
// point (a NaN clock parameter, an unrecognized netlist extension, a
// negative queue bound). Options are caller input just like netlist text,
// so OptionError unwraps to ErrParse and callers classify it with the
// same errors.Is dispatch as any malformed input.
type OptionError struct {
	// Op names the entry point that rejected the option.
	Op string
	// Option names the offending field or flag.
	Option string
	// Msg describes what was wrong with the value.
	Msg string
}

func (e *OptionError) Error() string {
	if e.Op != "" {
		return fmt.Sprintf("%s: invalid option %s: %s", e.Op, e.Option, e.Msg)
	}
	return fmt.Sprintf("invalid option %s: %s", e.Option, e.Msg)
}

func (e *OptionError) Unwrap() error { return ErrParse }

// Optionf builds a *OptionError with a formatted message.
func Optionf(op, option, msgf string, args ...any) *OptionError {
	return &OptionError{Op: op, Option: option, Msg: fmt.Sprintf(msgf, args...)}
}

// Classify names the taxonomy sentinel err unwraps to ("parse",
// "infeasible", "timeout", "stalled", "internal"), or "other" for errors
// from outside the taxonomy and "" for nil. The names are stable: they
// key metrics labels and appear in service responses.
func Classify(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrParse):
		return "parse"
	case errors.Is(err, ErrInfeasible):
		return "infeasible"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrStalled):
		return "stalled"
	case errors.Is(err, ErrInternal):
		return "internal"
	case errors.Is(err, ErrStore):
		return "store"
	}
	return "other"
}

// StoreError reports a failed persistence operation: Op names the store
// operation ("wal.append", "result.put", "recover"), Path the file
// involved when known, and Err the underlying cause. It unwraps to both
// ErrStore (for Classify and metrics labels) and the cause (so callers
// can still errors.Is for os-level sentinels).
type StoreError struct {
	Op   string
	Path string
	Err  error
}

func (e *StoreError) Error() string {
	switch {
	case e.Path != "" && e.Err != nil:
		return fmt.Sprintf("store: %s %s: %v", e.Op, e.Path, e.Err)
	case e.Err != nil:
		return fmt.Sprintf("store: %s: %v", e.Op, e.Err)
	case e.Path != "":
		return fmt.Sprintf("store: %s %s", e.Op, e.Path)
	}
	return fmt.Sprintf("store: %s", e.Op)
}

func (e *StoreError) Unwrap() []error {
	if e.Err == nil {
		return []error{ErrStore}
	}
	return []error{ErrStore, e.Err}
}

// Storef wraps err as a *StoreError unless it already is one (so layered
// store code does not stack prefixes). A nil err returns nil.
func Storef(op, path string, err error) error {
	if err == nil {
		return nil
	}
	var se *StoreError
	if errors.As(err, &se) {
		return err
	}
	return &StoreError{Op: op, Path: path, Err: err}
}

// InternalError wraps a recovered panic. Value is the recovered value and
// Stack the goroutine stack captured at the recovery point.
type InternalError struct {
	Op    string // the operation that panicked, for diagnostics
	Value any
	Stack []byte
}

func (e *InternalError) Error() string {
	if e.Op != "" {
		return fmt.Sprintf("internal fault in %s: %v", e.Op, e.Value)
	}
	return fmt.Sprintf("internal fault: %v", e.Value)
}

func (e *InternalError) Unwrap() error { return ErrInternal }

// InfeasibleError reports a well-formed problem with no solution under the
// requested constraints.
type InfeasibleError struct {
	Op     string
	Reason string
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("%s: infeasible: %s", e.Op, e.Reason)
}

func (e *InfeasibleError) Unwrap() error { return ErrInfeasible }

// StallError reports that the optimizer's watchdog fired: Steps iterations
// elapsed with the objective pinned at Objective. Phase, when known, names
// the solver phase that was executing when the run died (matching the
// telemetry trace's phase taxonomy), so error text and traces agree.
type StallError struct {
	Op        string
	Phase     string
	Steps     int
	Objective int64
}

func (e *StallError) Error() string {
	if e.Phase != "" {
		return fmt.Sprintf("%s: stalled in %s: no objective improvement in %d steps (objective %d)",
			e.Op, e.Phase, e.Steps, e.Objective)
	}
	return fmt.Sprintf("%s: stalled: no objective improvement in %d steps (objective %d)",
		e.Op, e.Steps, e.Objective)
}

func (e *StallError) Unwrap() error { return ErrStalled }

// TimeoutError reports an observed context cancellation or deadline, with
// the context's cause preserved for errors.Is/As chains. Phase, when
// known, names the solver phase that was executing when the deadline was
// observed (matching the telemetry trace's phase taxonomy).
type TimeoutError struct {
	Op    string
	Phase string
	Cause error
}

func (e *TimeoutError) Error() string {
	switch {
	case e.Op != "" && e.Phase != "":
		return fmt.Sprintf("%s: %v in %s (%v)", e.Op, ErrTimeout, e.Phase, e.Cause)
	case e.Op != "":
		return fmt.Sprintf("%s: %v (%v)", e.Op, ErrTimeout, e.Cause)
	}
	return fmt.Sprintf("%v (%v)", ErrTimeout, e.Cause)
}

// Unwrap exposes both the ErrTimeout sentinel and the context cause
// (context.Canceled or context.DeadlineExceeded).
func (e *TimeoutError) Unwrap() []error { return []error{ErrTimeout, e.Cause} }

// Checkpoint returns nil while ctx is live and a *TimeoutError once it is
// done. Iterative code calls it at loop heads; op names the loop for
// diagnostics.
func Checkpoint(ctx context.Context, op string) error {
	return CheckpointIn(ctx, op, "")
}

// CheckpointIn is Checkpoint with the currently-executing phase attached
// to the error, so a timeout names where the run died. The check itself
// allocates nothing while ctx is live.
func CheckpointIn(ctx context.Context, op, phase string) error {
	select {
	case <-ctx.Done():
		return &TimeoutError{Op: op, Phase: phase, Cause: context.Cause(ctx)}
	default:
		return nil
	}
}

// Run executes fn with panic isolation: a panic inside fn is recovered and
// returned as a *InternalError carrying the captured stack, and a done
// context is reported as *TimeoutError before fn even starts. Errors
// returned by fn pass through unchanged.
func Run(ctx context.Context, op string, fn func(context.Context) error) (err error) {
	if cerr := Checkpoint(ctx, op); cerr != nil {
		return cerr
	}
	defer func() {
		if r := recover(); r != nil {
			err = &InternalError{Op: op, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx)
}

// Do is Run for functions returning a value. On a recovered panic the
// zero value is returned alongside the *InternalError.
func Do[T any](ctx context.Context, op string, fn func(context.Context) (T, error)) (res T, err error) {
	if cerr := Checkpoint(ctx, op); cerr != nil {
		return res, cerr
	}
	defer func() {
		if r := recover(); r != nil {
			var zero T
			res, err = zero, &InternalError{Op: op, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx)
}

// Watchdog detects stalled minimization loops: it observes the objective
// once per iteration and fires after Limit consecutive observations
// without strict improvement (decrease). The zero Watchdog is disabled
// (but still tracks streaks, so Resets stays meaningful for telemetry).
type Watchdog struct {
	Op    string
	Limit int
	// Phase, when set by the caller before Observe, names the solver
	// phase a fired StallError is attributed to. Callers update it as
	// their loop moves between phases.
	Phase string

	best    int64
	hasBest bool
	streak  int
	resets  int
}

// NewWatchdog returns a watchdog firing after limit non-improving
// observations; limit <= 0 disables it.
func NewWatchdog(op string, limit int) *Watchdog {
	return &Watchdog{Op: op, Limit: limit}
}

// Observe feeds the current objective value. It returns a *StallError when
// the objective has not strictly decreased in Limit consecutive calls.
func (w *Watchdog) Observe(objective int64) error {
	if w == nil {
		return nil
	}
	if !w.hasBest || objective < w.best {
		if w.streak > 0 {
			w.resets++
		}
		w.best = objective
		w.hasBest = true
		w.streak = 0
		return nil
	}
	w.streak++
	if w.Limit > 0 && w.streak >= w.Limit {
		return &StallError{Op: w.Op, Phase: w.Phase, Steps: w.streak, Objective: w.best}
	}
	return nil
}

// Resets counts streak resets so far: improvements observed after at
// least one non-improving observation (telemetry's watchdog-resets
// counter reports the deltas).
func (w *Watchdog) Resets() int {
	if w == nil {
		return 0
	}
	return w.resets
}
