package guard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTaxonomyUnwrap(t *testing.T) {
	cases := []struct {
		err  error
		want error
	}{
		{&ParseError{Format: "bench", Line: 3, Msg: "bad gate"}, ErrParse},
		{&InternalError{Op: "core", Value: "boom"}, ErrInternal},
		{&InfeasibleError{Op: "retime", Reason: "period too tight"}, ErrInfeasible},
		{&StallError{Op: "core.Minimize", Steps: 10, Objective: 42}, ErrStalled},
		{&TimeoutError{Op: "core.Minimize", Cause: context.Canceled}, ErrTimeout},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Errorf("%T does not unwrap to %v", c.err, c.want)
		}
	}
	// The timeout error also exposes the context cause.
	te := &TimeoutError{Cause: context.DeadlineExceeded}
	if !errors.Is(te, context.DeadlineExceeded) {
		t.Error("TimeoutError lost the context cause")
	}
}

func TestParseErrorMessage(t *testing.T) {
	e := Parsef("blif", 7, 12, "unexpected %q", ".gate")
	if got := e.Error(); got != `blif: line 7, col 12: unexpected ".gate"` {
		t.Errorf("unexpected message %q", got)
	}
	e2 := &ParseError{Line: 1, Msg: "x"}
	if !strings.HasPrefix(e2.Error(), "parse: line 1") {
		t.Errorf("unexpected default-format message %q", e2.Error())
	}
}

func TestRunRecoversPanic(t *testing.T) {
	err := Run(context.Background(), "test", func(context.Context) error {
		panic("kaboom")
	})
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("expected InternalError, got %v", err)
	}
	if ie.Value != "kaboom" || len(ie.Stack) == 0 {
		t.Errorf("panic value/stack not captured: %+v", ie)
	}
	if !errors.Is(err, ErrInternal) {
		t.Error("InternalError does not unwrap to ErrInternal")
	}
}

func TestRunPassesErrorsThrough(t *testing.T) {
	want := errors.New("plain")
	if err := Run(context.Background(), "test", func(context.Context) error { return want }); err != want {
		t.Errorf("got %v, want %v", err, want)
	}
	if err := Run(context.Background(), "test", func(context.Context) error { return nil }); err != nil {
		t.Errorf("got %v, want nil", err)
	}
}

func TestRunObservesCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := Run(ctx, "test", func(context.Context) error { ran = true; return nil })
	if ran {
		t.Error("fn ran despite cancelled context")
	}
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, context.Canceled) {
		t.Errorf("expected ErrTimeout wrapping context.Canceled, got %v", err)
	}
}

func TestDoReturnsValue(t *testing.T) {
	v, err := Do(context.Background(), "test", func(context.Context) (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("got (%d, %v)", v, err)
	}
	v, err = Do(context.Background(), "test", func(context.Context) (int, error) { panic("x") })
	if v != 0 || !errors.Is(err, ErrInternal) {
		t.Fatalf("got (%d, %v), want zero value and ErrInternal", v, err)
	}
}

func TestCheckpoint(t *testing.T) {
	if err := Checkpoint(context.Background(), "op"); err != nil {
		t.Fatalf("live context: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	err := Checkpoint(ctx, "op")
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected timeout wrapping DeadlineExceeded, got %v", err)
	}
}

func TestWatchdog(t *testing.T) {
	w := NewWatchdog("opt", 3)
	// Improvements reset the streak.
	for _, obj := range []int64{100, 90, 80} {
		if err := w.Observe(obj); err != nil {
			t.Fatalf("fired on improving objective: %v", err)
		}
	}
	if err := w.Observe(80); err != nil {
		t.Fatalf("fired one step early: %v", err)
	}
	if err := w.Observe(85); err != nil {
		t.Fatalf("fired one step early: %v", err)
	}
	err := w.Observe(80)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("expected StallError after 3 flat observations, got %v", err)
	}
	if se.Objective != 80 {
		t.Errorf("stall objective = %d, want 80", se.Objective)
	}
	// Disabled watchdogs never fire; nil receivers are safe.
	var off *Watchdog
	for i := 0; i < 100; i++ {
		if err := off.Observe(1); err != nil {
			t.Fatal("nil watchdog fired")
		}
		if err := NewWatchdog("x", 0).Observe(1); err != nil {
			t.Fatal("disabled watchdog fired")
		}
	}
}

func TestFailpoint(t *testing.T) {
	Failpoint("guard.test") // disarmed: no-op
	ArmFailpoint("guard.test")
	defer DisarmFailpoint("guard.test")
	err := Run(context.Background(), "test", func(context.Context) error {
		Failpoint("guard.test")
		return nil
	})
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("armed failpoint did not surface as ErrInternal: %v", err)
	}
	DisarmFailpoint("guard.test")
	Failpoint("guard.test") // disarmed again: no-op
}

func TestStoreErrorClassification(t *testing.T) {
	cause := errors.New("no space left on device")
	err := Storef("wal.append", "/data/wal.log", cause)
	if !errors.Is(err, ErrStore) {
		t.Fatal("StoreError does not unwrap to ErrStore")
	}
	if !errors.Is(err, cause) {
		t.Fatal("StoreError does not unwrap to its cause")
	}
	if got := Classify(err); got != "store" {
		t.Fatalf("Classify(StoreError) = %q, want \"store\"", got)
	}
	// Wrapping an existing StoreError must not stack prefixes.
	double := Storef("outer", "", err)
	if double != err {
		t.Fatalf("Storef re-wrapped a StoreError: %v", double)
	}
	if Storef("op", "p", nil) != nil {
		t.Fatal("Storef(nil) != nil")
	}
	bare := &StoreError{Op: "recover"}
	if !errors.Is(bare, ErrStore) || Classify(bare) != "store" {
		t.Fatal("cause-less StoreError misclassified")
	}
}
