// Analytical propagation-probability observability engine (the
// accuracy=fast path, DESIGN.md §16).
//
// Instead of simulating K random vectors over the n-frame expansion and
// measuring ODC mask densities, this engine propagates *probabilities*:
// a forward topological pass computes each node's signal probability
// (the chance its output is 1 under random inputs), and a backward pass
// computes each node's observability as the probability that a flip of
// the node is sensitized to a primary output within the register
// horizon, following Asadi & Tahoori's propagation-probability SER
// estimation (PAPERS.md). Per-gate transfer is exact under the
// independence assumption: the closed forms below equal the full
// truth-table enumeration over the fanin probabilities for every Func in
// this package's gate library (all of which are symmetric; duplicate
// fanin pins are folded first, see ppPrep). What is *approximate* is the
// independence assumption itself — reconvergent fanout correlates
// signals and the product forms do not see it — which is why the engine
// is an estimate cross-validated against the signature simulator rather
// than a replacement for it.
//
// Cost is O(frames · |E|) time with no K factor and no signature planes,
// so circuits far beyond the Monte Carlo autocap finish in milliseconds.
// Parallelism shards each combinational level across workers: nodes in
// one level never read each other (a gate's fanins are strictly lower
// levels forward, its fanouts strictly higher levels backward), every
// node writes only its own slot, and per-node float products run
// sequentially in CSR order — so results are bit-identical for every
// worker count, the same contract as the exact engine (DESIGN.md §11).
package obs

import (
	"context"
	"fmt"

	"serretime/internal/circuit"
	"serretime/internal/par"
	"serretime/internal/sim"
)

// ComputeDesign runs the engine selected by opt.Accuracy over a circuit:
// for AccuracyExact it simulates cfg and runs the ODC backward pass (the
// trace is transient and released before returning); for AccuracyFast it
// skips simulation entirely — cfg contributes only its Frames horizon,
// and cfg.Words/cfg.Seed cannot influence the result. This is the seam
// the analysis cache (serretime.ensureObs) dispatches through.
func ComputeDesign(ctx context.Context, c *circuit.Circuit, cfg sim.Config, opt Options) (*Result, error) {
	if opt.Accuracy == AccuracyFast {
		return ComputeFastCtx(ctx, c, cfg.Frames, opt)
	}
	tr, err := sim.RunCtx(ctx, c, cfg)
	if err != nil {
		return nil, err
	}
	defer tr.Release()
	return ComputeCtx(ctx, tr, opt)
}

// Accuracy selects the observability engine.
type Accuracy uint8

const (
	// AccuracyExact is the signature-based ODC analysis over an n-frame
	// simulated trace (Compute): the ground-truth engine.
	AccuracyExact Accuracy = iota
	// AccuracyFast is the analytical propagation-probability estimate
	// (ComputeFast): no simulation, orders of magnitude cheaper, exact
	// per-gate transfer under an independence assumption.
	AccuracyFast
)

func (a Accuracy) String() string {
	switch a {
	case AccuracyExact:
		return "exact"
	case AccuracyFast:
		return "fast"
	}
	return fmt.Sprintf("Accuracy(%d)", uint8(a))
}

// Pools backing the fast engine's arenas: probability planes (float64),
// packed dedup/bucket node lists (NodeID) and offset/scratch arrays
// (int32). All arena allocations are zeroed, so pooling never changes a
// result.
var (
	ppFloatPool par.SlicePool[float64]
	ppIDPool    par.SlicePool[circuit.NodeID]
	ppIdxPool   par.SlicePool[int32]
)

// ppPrep is the per-call flat scratch of the fast engine: level buckets
// (the parallel axis) and per-node deduplicated fanins with multiplicity
// parity (the correctness axis for gates reading one net on several
// pins).
type ppPrep struct {
	// Gates of combinational level L occupy
	// levelNodes[levelStart[L]:levelStart[L+1]]; bucket 0 holds the
	// non-gate sources (PIs and DFFs). maxLevel is the highest level.
	levelStart []int32
	levelNodes []circuit.NodeID
	maxLevel   int

	// Node x reads the distinct nets dedup[dedupStart[x]:dedupStart[x+1]].
	// An entry e >= 0 is net e read an odd number of times; e < 0 is net
	// ^e read an even number of times (relevant to XOR/XNOR only: an
	// even-multiplicity input cancels out of the parity).
	dedupStart []int32
	dedup      []circuit.NodeID
}

// build fills the prep from the CSR using arena-backed scratch.
func (p *ppPrep) build(csr *circuit.CSR, ids *par.Arena[circuit.NodeID], idx *par.Arena[int32]) {
	n := csr.N
	p.maxLevel = 0
	for _, g := range csr.GateOrder {
		if l := int(csr.Level[g]); l > p.maxLevel {
			p.maxLevel = l
		}
	}

	// Level buckets by counting sort; non-gates land in bucket 0.
	p.levelStart = idx.Alloc(p.maxLevel + 2)
	for i := 0; i < n; i++ {
		p.levelStart[csr.Level[i]+1]++
	}
	for l := 0; l < p.maxLevel+1; l++ {
		p.levelStart[l+1] += p.levelStart[l]
	}
	p.levelNodes = ids.Alloc(n)
	fill := idx.Alloc(p.maxLevel + 1)
	copy(fill, p.levelStart)
	for i := 0; i < n; i++ {
		l := csr.Level[i]
		p.levelNodes[fill[l]] = circuit.NodeID(i)
		fill[l]++
	}

	// Dedup fanin pins per node. seen/slot are epoch-stamped by the
	// reading node (x+1 is never the zero value), so one zeroed pair of
	// N-sized arrays serves every node.
	p.dedupStart = idx.Alloc(n + 1)
	p.dedup = ids.Alloc(len(csr.Fanin))
	seen := idx.Alloc(n)
	slot := idx.Alloc(n)
	w := 0
	for x := 0; x < n; x++ {
		p.dedupStart[x] = int32(w)
		for _, f := range csr.FaninOf(circuit.NodeID(x)) {
			if seen[f] == int32(x)+1 {
				p.dedup[slot[f]] = ^p.dedup[slot[f]] // toggle parity
				continue
			}
			seen[f] = int32(x) + 1
			slot[f] = int32(w)
			p.dedup[w] = f
			w++
		}
	}
	p.dedupStart[n] = int32(w)
	p.dedup = p.dedup[:w]
}

// dedupOf returns node x's distinct-fanin entries.
func (p *ppPrep) dedupOf(x circuit.NodeID) []circuit.NodeID {
	return p.dedup[p.dedupStart[x]:p.dedupStart[x+1]]
}

// ppNet decodes a dedup entry into its net ID and multiplicity parity.
func ppNet(e circuit.NodeID) (id circuit.NodeID, odd bool) {
	if e < 0 {
		return ^e, false
	}
	return e, true
}

// ppSignalProb computes a gate's output probability from its distinct
// fanin probabilities — the truth-table-exact transfer for the symmetric
// gate library under the independence assumption.
func ppSignalProb(fn circuit.Func, ded []circuit.NodeID, p []float64) float64 {
	switch fn {
	case circuit.FnConst0:
		return 0
	case circuit.FnConst1:
		return 1
	case circuit.FnBuf:
		id, _ := ppNet(ded[0])
		return p[id]
	case circuit.FnNot:
		id, _ := ppNet(ded[0])
		return 1 - p[id]
	case circuit.FnAnd, circuit.FnNand:
		s := 1.0
		for _, e := range ded {
			id, _ := ppNet(e)
			s *= p[id]
		}
		if fn == circuit.FnNand {
			return 1 - s
		}
		return s
	case circuit.FnOr, circuit.FnNor:
		s := 1.0
		for _, e := range ded {
			id, _ := ppNet(e)
			s *= 1 - p[id]
		}
		if fn == circuit.FnOr {
			return 1 - s
		}
		return s
	case circuit.FnXor, circuit.FnXnor:
		// P(parity of independent odd-multiplicity bits is 1), folded
		// pairwise; even-multiplicity nets cancel out of the parity.
		a := 0.0
		for _, e := range ded {
			id, odd := ppNet(e)
			if !odd {
				continue
			}
			q := p[id]
			a = a*(1-q) + q*(1-a)
		}
		if fn == circuit.FnXnor {
			return 1 - a
		}
		return a
	}
	return 0
}

// ppSens computes the probability that gate y's output flips when net x
// (one of its fanins) flips — the Boolean-difference sensitization
// probability, with duplicate pins of x flipping together.
func ppSens(fn circuit.Func, ded []circuit.NodeID, x circuit.NodeID, p []float64) float64 {
	switch fn {
	case circuit.FnBuf, circuit.FnNot:
		return 1
	case circuit.FnAnd, circuit.FnNand:
		s := 1.0
		for _, e := range ded {
			id, _ := ppNet(e)
			if id != x {
				s *= p[id]
			}
		}
		return s
	case circuit.FnOr, circuit.FnNor:
		s := 1.0
		for _, e := range ded {
			id, _ := ppNet(e)
			if id != x {
				s *= 1 - p[id]
			}
		}
		return s
	case circuit.FnXor, circuit.FnXnor:
		// Parity is sensitized iff x feeds an odd number of pins.
		for _, e := range ded {
			id, odd := ppNet(e)
			if id == x {
				if odd {
					return 1
				}
				return 0
			}
		}
		return 0
	}
	return 0 // constants have no fanins
}

// ComputeFast estimates per-node observabilities analytically over a
// frames-deep register horizon, without simulating. See the package
// comment of this file for the model; frame and register semantics
// (Options.Frame, Options.DropFinalRegisters, the horizon) mirror
// Compute exactly, so fast and exact results are directly comparable.
// The returned Result has K == 0: no vectors were simulated, the
// estimate is analytical.
func ComputeFast(c *circuit.Circuit, frames int, opt Options) (*Result, error) {
	return ComputeFastCtx(context.Background(), c, frames, opt)
}

// ComputeFastCtx is ComputeFast with cancellation: a done ctx aborts
// between level shards with a guard.ErrTimeout-wrapped error.
func ComputeFastCtx(ctx context.Context, c *circuit.Circuit, frames int, opt Options) (*Result, error) {
	csr, err := c.CSR()
	if err != nil {
		return nil, err
	}
	if frames < 1 {
		return nil, fmt.Errorf("obs: fast engine needs frames >= 1, got %d", frames)
	}
	if opt.Frame < 0 || opt.Frame >= frames {
		return nil, fmt.Errorf("obs: frame %d outside horizon of %d frames", opt.Frame, frames)
	}
	n := csr.N

	floats := par.Arena[float64]{Pool: &ppFloatPool}
	ids := par.Arena[circuit.NodeID]{Pool: &ppIDPool}
	idx := par.Arena[int32]{Pool: &ppIdxPool}
	defer func() {
		floats.Release()
		ids.Release()
		idx.Release()
	}()

	var prep ppPrep
	prep.build(csr, &ids, &idx)

	// Forward: prob[f*n+x] = P(node x outputs 1 in frame f). PIs draw
	// fresh random vectors each frame (p = 1/2), registers start random
	// and then carry their data fanin's previous-frame probability —
	// exactly the source model of sim.Run.
	prob := floats.Alloc(frames * n)
	pool := par.New("obs.fast", opt.Workers, opt.Recorder)

	// The shard bodies are hoisted out of the frame × level loops and
	// parameterized through captured variables reassigned between Run
	// calls (never during one): a closure literal inside the loop would
	// cost one heap allocation per shard dispatch, O(frames·depth) per
	// analysis, which the alloc-regression guard forbids.
	var (
		plane, prev []float64
		bucket      []circuit.NodeID
	)
	forward := func(_, lo, hi int) error {
		for _, x := range bucket[lo:hi] {
			switch csr.Kind[x] {
			case circuit.KindPI:
				plane[x] = 0.5
			case circuit.KindDFF:
				if prev == nil {
					plane[x] = 0.5
				} else {
					plane[x] = prev[csr.Fanin[csr.FaninStart[x]]]
				}
			default:
				plane[x] = ppSignalProb(csr.Fn[x], prep.dedupOf(x), plane)
			}
		}
		return nil
	}
	for f := 0; f < frames; f++ {
		plane = prob[f*n : (f+1)*n]
		prev = nil
		if f > 0 {
			prev = prob[(f-1)*n : f*n]
		}
		for l := 0; l <= prep.maxLevel; l++ {
			bucket = prep.levelNodes[prep.levelStart[l]:prep.levelStart[l+1]]
			if err := pool.Run(ctx, len(bucket), forward); err != nil {
				return nil, err
			}
		}
	}

	// Backward: obsCur[x] = P(a flip of x in frame f reaches a PO within
	// the horizon). Contributions combine as 1 - Π(1 - c) under the same
	// independence assumption; a PO is its own certain observation. The
	// frame loop, DFF coupling through the next frame's plane and the
	// last-frame register policy mirror Compute verbatim.
	obsCur := floats.Alloc(n)
	obsNext := floats.Alloc(n)
	var lastFrame bool
	backward := func(_, lo, hi int) error {
		for _, x := range bucket[lo:hi] {
			miss := 1.0
			if csr.IsPO[x] {
				miss = 0
			}
			for _, y := range csr.FanoutOf(x) {
				var c float64
				switch csr.Kind[y] {
				case circuit.KindDFF:
					if lastFrame {
						if opt.DropFinalRegisters {
							continue
						}
						c = 1
					} else {
						c = obsNext[y]
					}
				case circuit.KindGate:
					c = ppSens(csr.Fn[y], prep.dedupOf(y), x, plane) * obsCur[y]
				}
				miss *= 1 - c
			}
			obsCur[x] = 1 - miss
		}
		return nil
	}
	var result *Result
	for f := frames - 1; f >= opt.Frame; f-- {
		plane = prob[f*n : (f+1)*n]
		lastFrame = f == frames-1
		for l := prep.maxLevel; l >= 0; l-- {
			bucket = prep.levelNodes[prep.levelStart[l]:prep.levelStart[l+1]]
			if err := pool.Run(ctx, len(bucket), backward); err != nil {
				return nil, err
			}
		}
		if f == opt.Frame {
			res := &Result{Obs: make([]float64, n), Frame: opt.Frame}
			copy(res.Obs, obsCur)
			result = res
			break
		}
		obsCur, obsNext = obsNext, obsCur
	}
	return result, nil
}
