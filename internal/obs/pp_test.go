package obs

import (
	"math"
	"math/rand"
	"testing"

	"serretime/internal/benchfmt"
	"serretime/internal/circuit"
	"serretime/internal/sim"
)

// oracleEval evaluates fn over a multiset of inputs: distinct net i with
// multiplicity mult[i] carries bit (a >> i) & 1.
func oracleEval(fn circuit.Func, mult []int, a int) bool {
	in := make([]uint64, 0, 8)
	for i, m := range mult {
		for j := 0; j < m; j++ {
			in = append(in, uint64(a>>i&1))
		}
	}
	return fn.Eval(in)&1 == 1
}

// oracle enumerates the full truth table of fn over independent distinct
// nets with probabilities p and pin multiplicities mult, returning the
// exact output probability and, per net, the exact probability that
// flipping the net (all its pins at once) flips the output.
func oracle(fn circuit.Func, mult []int, p []float64) (float64, []float64) {
	k := len(mult)
	var pOut float64
	sens := make([]float64, k)
	for a := 0; a < 1<<k; a++ {
		w := 1.0
		for i := 0; i < k; i++ {
			if a>>i&1 == 1 {
				w *= p[i]
			} else {
				w *= 1 - p[i]
			}
		}
		out := oracleEval(fn, mult, a)
		if out {
			pOut += w
		}
		for x := 0; x < k; x++ {
			if oracleEval(fn, mult, a^(1<<x)) != out {
				sens[x] += w
			}
		}
	}
	return pOut, sens
}

// dedupEntries encodes multiplicities the way ppPrep does: net i stored
// as i when read an odd number of times, ^i when even.
func dedupEntries(mult []int) []circuit.NodeID {
	ded := make([]circuit.NodeID, len(mult))
	for i, m := range mult {
		if m%2 == 1 {
			ded[i] = circuit.NodeID(i)
		} else {
			ded[i] = ^circuit.NodeID(i)
		}
	}
	return ded
}

// TestFastTransferMatchesTruthTable pins the engine's per-gate closed
// forms to the full truth-table enumeration they claim to equal, for
// every library function, fanin counts 1..4 and pin multiplicities 1..2,
// over random probability vectors.
func TestFastTransferMatchesTruthTable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	fns := []circuit.Func{
		circuit.FnAnd, circuit.FnNand, circuit.FnOr, circuit.FnNor,
		circuit.FnXor, circuit.FnXnor,
	}
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(4)
		mult := make([]int, k)
		p := make([]float64, k)
		for i := range mult {
			mult[i] = 1 + rng.Intn(2)
			p[i] = rng.Float64()
		}
		ded := dedupEntries(mult)
		for _, fn := range fns {
			wantP, wantS := oracle(fn, mult, p)
			if got := ppSignalProb(fn, ded, p); math.Abs(got-wantP) > 1e-12 {
				t.Fatalf("%v mult=%v p=%v: prob %g, truth table %g", fn, mult, p, got, wantP)
			}
			for x := 0; x < k; x++ {
				if got := ppSens(fn, ded, circuit.NodeID(x), p); math.Abs(got-wantS[x]) > 1e-12 {
					t.Fatalf("%v mult=%v p=%v: sens(%d) %g, truth table %g", fn, mult, p, x, got, wantS[x])
				}
			}
		}
	}
	// BUF/NOT over a single pin.
	for _, fn := range []circuit.Func{circuit.FnBuf, circuit.FnNot} {
		p := []float64{0.3}
		wantP, wantS := oracle(fn, []int{1}, p)
		ded := dedupEntries([]int{1})
		if got := ppSignalProb(fn, ded, p); math.Abs(got-wantP) > 1e-12 {
			t.Fatalf("%v: prob %g, want %g", fn, got, wantP)
		}
		if got := ppSens(fn, ded, 0, p); math.Abs(got-wantS[0]) > 1e-12 {
			t.Fatalf("%v: sens %g, want %g", fn, got, wantS[0])
		}
	}
}

func fastAnalyze(t testing.TB, c *circuit.Circuit, frames int, opt Options) *Result {
	t.Helper()
	r, err := ComputeFast(c, frames, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFastHandCircuits replays the exact engine's hand-built circuits:
// on fanout-free logic the analytical values are exact, so the fast
// engine must reproduce the same deterministic observabilities.
func TestFastHandCircuits(t *testing.T) {
	t.Run("inverter-chain", func(t *testing.T) {
		b := circuit.NewBuilder("chain")
		b.PI("a")
		b.Gate("n1", circuit.FnNot, "a")
		b.Gate("n2", circuit.FnNot, "n1")
		b.PO("n2")
		c := mustBuild(t, b)
		r := fastAnalyze(t, c, 1, Options{})
		for _, name := range []string{"a", "n1", "n2"} {
			id, _ := c.Lookup(name)
			if r.GateObs(id) != 1 {
				t.Errorf("obs(%s) = %g, want 1", name, r.GateObs(id))
			}
		}
		if r.K != 0 {
			t.Errorf("K = %d, want 0 (analytical, no vectors)", r.K)
		}
	})
	t.Run("and-masking", func(t *testing.T) {
		// y = AND(a, b): a is observable exactly when b = 1, p = 1/2.
		b := circuit.NewBuilder("and")
		b.PI("a")
		b.PI("b")
		b.Gate("y", circuit.FnAnd, "a", "b")
		b.PO("y")
		c := mustBuild(t, b)
		r := fastAnalyze(t, c, 1, Options{})
		a, _ := c.Lookup("a")
		if got := r.GateObs(a); got != 0.5 {
			t.Errorf("obs(a) = %g, want exactly 0.5", got)
		}
	})
	t.Run("constant-blocked", func(t *testing.T) {
		b := circuit.NewBuilder("blocked")
		b.PI("x")
		b.Gate("zero", circuit.FnConst0)
		b.Gate("y", circuit.FnAnd, "x", "zero")
		b.PO("y")
		c := mustBuild(t, b)
		r := fastAnalyze(t, c, 2, Options{})
		x, _ := c.Lookup("x")
		if r.GateObs(x) != 0 {
			t.Errorf("obs(x) = %g, want 0", r.GateObs(x))
		}
	})
	t.Run("repeated-fanin", func(t *testing.T) {
		// y = XOR(x, x) == 0: flipping x flips both pins and cancels.
		b := circuit.NewBuilder("rep")
		b.PI("x")
		b.PI("p")
		b.Gate("y", circuit.FnXor, "x", "x")
		b.Gate("z", circuit.FnOr, "y", "p")
		b.PO("z")
		c := mustBuild(t, b)
		r := fastAnalyze(t, c, 1, Options{})
		x, _ := c.Lookup("x")
		if r.GateObs(x) != 0 {
			t.Errorf("obs(x) = %g, want 0 (both-pin flip cancels)", r.GateObs(x))
		}
	})
	t.Run("registers", func(t *testing.T) {
		// a -> q1 -> q2 -> y(PO): surfaces two frames later; the frame
		// horizon and final-register policy must mirror the exact engine.
		b := circuit.NewBuilder("pipe")
		b.PI("a")
		b.DFF("q1", "a")
		b.DFF("q2", "q1")
		b.Gate("y", circuit.FnBuf, "q2")
		b.PO("y")
		c := mustBuild(t, b)
		a, _ := c.Lookup("a")
		if r := fastAnalyze(t, c, 4, Options{}); r.GateObs(a) != 1 {
			t.Errorf("obs(a) with 4 frames = %g, want 1", r.GateObs(a))
		}
		if r := fastAnalyze(t, c, 2, Options{DropFinalRegisters: true}); r.GateObs(a) != 0 {
			t.Errorf("obs(a) truncated = %g, want 0", r.GateObs(a))
		}
		if r := fastAnalyze(t, c, 2, Options{}); r.GateObs(a) != 1 {
			t.Errorf("obs(a) latched = %g, want 1", r.GateObs(a))
		}
	})
}

func TestFastFrameValidation(t *testing.T) {
	b := circuit.NewBuilder("t")
	b.PI("a")
	b.Gate("y", circuit.FnBuf, "a")
	b.PO("y")
	c := mustBuild(t, b)
	if _, err := ComputeFast(c, 0, Options{}); err == nil {
		t.Fatal("zero-frame horizon accepted")
	}
	if _, err := ComputeFast(c, 2, Options{Frame: 2}); err == nil {
		t.Fatal("out-of-range frame accepted")
	}
	if _, err := ComputeFast(c, 2, Options{Frame: -1}); err == nil {
		t.Fatal("negative frame accepted")
	}
}

// TestFastDeterministicAcrossWorkers pins the bit-identity contract: the
// level-sharded float passes write disjoint slots and each node's
// products run sequentially in CSR order, so every worker count yields
// the same bits.
func TestFastDeterministicAcrossWorkers(t *testing.T) {
	c, err := benchfmt.ParseFile("../../testdata/par2500.bench")
	if err != nil {
		t.Fatal(err)
	}
	base := fastAnalyze(t, c, 15, Options{Workers: 1})
	for _, w := range []int{2, 3, 0} {
		r := fastAnalyze(t, c, 15, Options{Workers: w})
		for i := range base.Obs {
			if math.Float64bits(r.Obs[i]) != math.Float64bits(base.Obs[i]) {
				t.Fatalf("workers=%d: obs[%d] = %x, want %x", w, i, math.Float64bits(r.Obs[i]), math.Float64bits(base.Obs[i]))
			}
		}
	}
}

// TestFastProbabilitiesInRange checks every estimate is a probability on
// a real netlist with reconvergent fanout.
func TestFastProbabilitiesInRange(t *testing.T) {
	c, err := benchfmt.ParseFile("../../testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	r := fastAnalyze(t, c, 15, Options{})
	for i, o := range r.Obs {
		if o < 0 || o > 1 || math.IsNaN(o) {
			t.Fatalf("obs[%d] = %g out of [0,1]", i, o)
		}
	}
	g17, _ := c.Lookup("G17")
	if r.GateObs(g17) != 1 {
		t.Errorf("obs(G17) = %g, want 1 (is a PO)", r.GateObs(g17))
	}
}

// TestComputeDesignDispatch checks the Accuracy seam: exact routes
// through simulation + Compute, fast routes through ComputeFast, and the
// two produce the respective engines' results bit for bit.
func TestComputeDesignDispatch(t *testing.T) {
	c, err := benchfmt.ParseFile("../../testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Words: 4, Frames: 8, Seed: 9, Workers: 1}

	exact, err := ComputeDesign(t.Context(), c, cfg, Options{Accuracy: AccuracyExact, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantExact := analyze(t, c, cfg, Options{})
	for i := range wantExact.Obs {
		if exact.Obs[i] != wantExact.Obs[i] {
			t.Fatalf("exact dispatch diverges at node %d: %g vs %g", i, exact.Obs[i], wantExact.Obs[i])
		}
	}
	if exact.K != wantExact.K {
		t.Fatalf("exact dispatch K = %d, want %d", exact.K, wantExact.K)
	}

	fast, err := ComputeDesign(t.Context(), c, cfg, Options{Accuracy: AccuracyFast, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantFast := fastAnalyze(t, c, cfg.Frames, Options{Workers: 1})
	for i := range wantFast.Obs {
		if fast.Obs[i] != wantFast.Obs[i] {
			t.Fatalf("fast dispatch diverges at node %d: %g vs %g", i, fast.Obs[i], wantFast.Obs[i])
		}
	}
	if fast.K != 0 {
		t.Fatalf("fast dispatch K = %d, want 0", fast.K)
	}
}

func TestAccuracyString(t *testing.T) {
	if AccuracyExact.String() != "exact" || AccuracyFast.String() != "fast" {
		t.Fatalf("accuracy strings: %q, %q", AccuracyExact, AccuracyFast)
	}
	if s := Accuracy(9).String(); s != "Accuracy(9)" {
		t.Fatalf("out-of-range accuracy string %q", s)
	}
}
