package obs

import (
	"math"
	"testing"

	"serretime/internal/benchfmt"
	"serretime/internal/circuit"
	"serretime/internal/sim"
)

func mustBuild(t testing.TB, b *circuit.Builder) *circuit.Circuit {
	t.Helper()
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func analyze(t testing.TB, c *circuit.Circuit, cfg sim.Config, opt Options) *Result {
	t.Helper()
	tr, err := sim.Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Compute(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestObsInverterChain(t *testing.T) {
	b := circuit.NewBuilder("chain")
	b.PI("a")
	b.Gate("n1", circuit.FnNot, "a")
	b.Gate("n2", circuit.FnNot, "n1")
	b.PO("n2")
	c := mustBuild(t, b)
	r := analyze(t, c, sim.Config{Words: 4, Frames: 1, Seed: 1}, Options{})
	for _, name := range []string{"a", "n1", "n2"} {
		id, _ := c.Lookup(name)
		if r.GateObs(id) != 1 {
			t.Errorf("obs(%s) = %g, want 1", name, r.GateObs(id))
		}
	}
	if r.K != 256 {
		t.Fatalf("K = %d", r.K)
	}
}

func TestObsAndMasking(t *testing.T) {
	// y = AND(a, b): a is observable only when b = 1 (density ~ 0.5).
	b := circuit.NewBuilder("and")
	b.PI("a")
	b.PI("b")
	b.Gate("y", circuit.FnAnd, "a", "b")
	b.PO("y")
	c := mustBuild(t, b)
	r := analyze(t, c, sim.Config{Words: 64, Frames: 1, Seed: 7}, Options{})
	a, _ := c.Lookup("a")
	if got := r.GateObs(a); math.Abs(got-0.5) > 0.05 {
		t.Errorf("obs(a) = %g, want ~0.5", got)
	}
	y, _ := c.Lookup("y")
	if r.GateObs(y) != 1 {
		t.Errorf("obs(y) = %g, want 1", r.GateObs(y))
	}
}

func TestObsConstantBlocked(t *testing.T) {
	b := circuit.NewBuilder("blocked")
	b.PI("x")
	b.Gate("zero", circuit.FnConst0)
	b.Gate("y", circuit.FnAnd, "x", "zero")
	b.PO("y")
	c := mustBuild(t, b)
	r := analyze(t, c, sim.Config{Words: 4, Frames: 2, Seed: 3}, Options{})
	x, _ := c.Lookup("x")
	if r.GateObs(x) != 0 {
		t.Errorf("obs(x) = %g, want 0", r.GateObs(x))
	}
}

func TestObsXorAlwaysSensitized(t *testing.T) {
	b := circuit.NewBuilder("xor")
	b.PI("a")
	b.PI("b")
	b.Gate("y", circuit.FnXor, "a", "b")
	b.PO("y")
	c := mustBuild(t, b)
	r := analyze(t, c, sim.Config{Words: 2, Frames: 1, Seed: 5}, Options{})
	for _, name := range []string{"a", "b", "y"} {
		id, _ := c.Lookup(name)
		if r.GateObs(id) != 1 {
			t.Errorf("obs(%s) = %g, want 1", name, r.GateObs(id))
		}
	}
}

func TestObsThroughRegisters(t *testing.T) {
	// a -> q1 -> q2 -> y(PO): the error surfaces two frames later.
	b := circuit.NewBuilder("pipe")
	b.PI("a")
	b.DFF("q1", "a")
	b.DFF("q2", "q1")
	b.Gate("y", circuit.FnBuf, "q2")
	b.PO("y")
	c := mustBuild(t, b)
	a, _ := c.Lookup("a")

	// Enough frames: fully observable.
	r := analyze(t, c, sim.Config{Words: 2, Frames: 4, Seed: 2}, Options{})
	if r.GateObs(a) != 1 {
		t.Errorf("obs(a) with 4 frames = %g, want 1", r.GateObs(a))
	}
	// Too few frames and final registers dropped: unobservable.
	r = analyze(t, c, sim.Config{Words: 2, Frames: 2, Seed: 2}, Options{DropFinalRegisters: true})
	if r.GateObs(a) != 0 {
		t.Errorf("obs(a) truncated = %g, want 0", r.GateObs(a))
	}
	// Too few frames but latched errors count: fully observable.
	r = analyze(t, c, sim.Config{Words: 2, Frames: 2, Seed: 2}, Options{})
	if r.GateObs(a) != 1 {
		t.Errorf("obs(a) latched = %g, want 1", r.GateObs(a))
	}
}

func TestObsRepeatedFanin(t *testing.T) {
	// y = XOR(x, x) == 0 regardless of x: flipping x flips both pins,
	// so x is unobservable.
	b := circuit.NewBuilder("rep")
	b.PI("x")
	b.PI("p")
	b.Gate("y", circuit.FnXor, "x", "x")
	b.Gate("z", circuit.FnOr, "y", "p")
	b.PO("z")
	c := mustBuild(t, b)
	r := analyze(t, c, sim.Config{Words: 4, Frames: 1, Seed: 11}, Options{})
	x, _ := c.Lookup("x")
	if r.GateObs(x) != 0 {
		t.Errorf("obs(x) = %g, want 0 (both-pin flip cancels)", r.GateObs(x))
	}
}

func TestObsFrameOutOfRange(t *testing.T) {
	b := circuit.NewBuilder("t")
	b.PI("a")
	b.Gate("y", circuit.FnBuf, "a")
	b.PO("y")
	c := mustBuild(t, b)
	tr, err := sim.Run(c, sim.Config{Words: 1, Frames: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(tr, Options{Frame: 2}); err == nil {
		t.Fatal("out-of-range frame accepted")
	}
	if _, err := Compute(tr, Options{Frame: -1}); err == nil {
		t.Fatal("negative frame accepted")
	}
}

func TestObsS27Sane(t *testing.T) {
	c, err := benchfmt.ParseFile("../../testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	r := analyze(t, c, sim.Config{Words: 16, Frames: 15, Seed: 1}, Options{})
	// Every observability is a valid probability, and the PO driver G17
	// is fully observable.
	for i := 0; i < c.NumNodes(); i++ {
		o := r.Obs[i]
		if o < 0 || o > 1 {
			t.Fatalf("obs out of range: %g", o)
		}
	}
	g17, _ := c.Lookup("G17")
	if r.GateObs(g17) != 1 {
		t.Errorf("obs(G17) = %g, want 1 (is a PO)", r.GateObs(g17))
	}
	// G11 feeds G17 = NOT(G11) and two other paths: fully observable.
	g11, _ := c.Lookup("G11")
	if r.GateObs(g11) != 1 {
		t.Errorf("obs(G11) = %g, want 1", r.GateObs(g11))
	}
}

func TestObsMonotoneInFrames(t *testing.T) {
	// With DropFinalRegisters, more frames can only increase any gate's
	// observability on identical vectors... the vectors differ per run,
	// so assert the weaker sanity property: the sequential circuit's
	// average observability with 10 frames is at least that with 1 frame
	// minus noise.
	c, err := benchfmt.ParseFile("../../testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	avg := func(frames int) float64 {
		r := analyze(t, c, sim.Config{Words: 32, Frames: frames, Seed: 4}, Options{DropFinalRegisters: true})
		var s float64
		var n int
		for _, id := range c.NodesOfKind(circuit.KindGate) {
			s += r.GateObs(id)
			n++
		}
		return s / float64(n)
	}
	if a1, a10 := avg(1), avg(10); a10 < a1-0.05 {
		t.Errorf("avg obs with 10 frames (%g) much lower than with 1 (%g)", a10, a1)
	}
}
