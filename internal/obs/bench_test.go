package obs

import (
	"testing"

	"serretime/internal/benchfmt"
	"serretime/internal/sim"
)

func BenchmarkComputeS27(b *testing.B) {
	c, err := benchfmt.ParseFile("../../testdata/s27.bench")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := sim.Run(c, sim.Config{Words: 4, Frames: 15, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(tr, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
