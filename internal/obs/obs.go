// Package obs computes signal observabilities of a sequential circuit by
// signature-based ODC (observability don't-care) analysis over an
// n-time-frame expanded simulation, following [17]/[21] of the paper:
//
//	obs(g) = num_ones(O(g)) / K
//
// where O(g) is the ODC mask of gate g's first-frame instance and K the
// number of simulated vectors. Registers act as wires in the expansion, so
// an error injected at g in frame 0 may surface at a primary output of any
// later frame; the mask is the union of all those observation events.
//
// The backward pass is sharded across signature words (DESIGN.md §11):
// within one word column the reverse topological order guarantees a node's
// fanouts are finished before the node itself, and word columns never read
// each other, so the masks are bit-identical for every worker count. The
// pass walks the circuit's CSR view (DESIGN.md §15): packed fanout arrays,
// the cached reverse order, and the trace's flat signature planes.
package obs

import (
	"context"
	"fmt"

	"serretime/internal/circuit"
	"serretime/internal/par"
	"serretime/internal/sim"
	"serretime/internal/telemetry"
)

// Options tunes the analysis.
type Options struct {
	// Accuracy selects the engine ComputeDesign dispatches to:
	// AccuracyExact (default) simulates and runs the ODC pass, AccuracyFast
	// runs the analytical propagation-probability estimate (pp.go). The
	// direct entry points Compute (exact) and ComputeFast (fast) ignore it.
	Accuracy Accuracy
	// Frame selects which frame's gate instances are reported (default 0,
	// giving errors the full n-frame horizon to propagate).
	Frame int
	// DropFinalRegisters, when set, treats an error still held in a
	// register after the last frame as unobserved. By default such errors
	// count as observable (they are latched and will eventually surface).
	DropFinalRegisters bool
	// Workers bounds the CPU workers sharding the ODC word columns.
	// 0 (or negative) means one worker per available CPU; 1 runs the
	// exact sequential code path. Results are identical for every value.
	Workers int
	// Recorder receives worker-pool utilization telemetry (nil: none).
	Recorder telemetry.Recorder
}

// Result holds per-node observabilities.
type Result struct {
	// Obs[node] is the observability of the node's output in [0, 1].
	Obs []float64
	// K is the number of simulated vectors (64 · words).
	K int
	// Frame is the reported frame instance.
	Frame int
}

// GateObs returns the observability of a node.
func (r *Result) GateObs(n circuit.NodeID) float64 { return r.Obs[n] }

// odcPool recycles the two ODC mask slabs (n·Words uint64 each). Both are
// cleared before use, so pooling cannot change a result.
var odcPool par.SlicePool[uint64]

// Compute runs the backward ODC propagation over the trace.
func Compute(tr *sim.Trace, opt Options) (*Result, error) {
	return ComputeCtx(context.Background(), tr, opt)
}

// ComputeCtx is Compute with cancellation: a done ctx aborts between
// shards with a guard.ErrTimeout-wrapped error.
func ComputeCtx(ctx context.Context, tr *sim.Trace, opt Options) (*Result, error) {
	csr := tr.CSR()
	if opt.Frame < 0 || opt.Frame >= tr.Frames {
		return nil, fmt.Errorf("obs: frame %d outside trace of %d frames", opt.Frame, tr.Frames)
	}
	n := csr.N
	w := tr.Words

	// odcNext[node] = ODC mask of the node in frame f+1 (register
	// coupling); odcCur[node] = mask being built for frame f.
	odcNext := odcPool.Get(n * w)
	odcCur := odcPool.Get(n * w)
	defer func() {
		odcPool.Put(odcNext)
		odcPool.Put(odcCur)
	}()

	pool := par.New("obs.compute", opt.Workers, opt.Recorder)
	var result *Result
	for f := tr.Frames - 1; f >= opt.Frame; f-- {
		clear(odcCur)
		// Shard the backward pass across word columns. For a fixed word,
		// when node x reads odcCur of a gate fanout y, y is later in topo
		// order, hence earlier in rev order, hence already final — the same
		// dependency argument as the sequential pass, per column.
		plane := tr.Plane(f)
		lastFrame := f == tr.Frames-1
		err := pool.Run(ctx, w, func(worker, lo, hi int) error {
			in := make([]uint64, 0, 8)
			// evalFlip recomputes gate y with fanin x complemented, reading
			// the clean values straight off the frame's signature plane.
			evalFlip := func(y circuit.NodeID, x circuit.NodeID, word int) uint64 {
				in = in[:0]
				for _, fid := range csr.FaninOf(y) {
					v := plane[int(fid)*w+word]
					if fid == x {
						v = ^v
					}
					in = append(in, v)
				}
				return csr.Fn[y].Eval(in)
			}
			for _, x := range csr.RevOrder {
				base := int(x) * w
				dst := odcCur[base : base+w]
				if csr.IsPO[x] {
					for i := lo; i < hi; i++ {
						dst[i] = ^uint64(0)
					}
				}
				for _, y := range csr.FanoutOf(x) {
					ybase := int(y) * w
					switch csr.Kind[y] {
					case circuit.KindDFF:
						// The flip is stored and surfaces at the DFF's
						// output in frame f+1.
						if lastFrame {
							if !opt.DropFinalRegisters {
								for i := lo; i < hi; i++ {
									dst[i] = ^uint64(0)
								}
							}
							continue
						}
						for i := lo; i < hi; i++ {
							dst[i] |= odcNext[ybase+i]
						}
					case circuit.KindGate:
						for i := lo; i < hi; i++ {
							local := evalFlip(y, x, i) ^ plane[ybase+i]
							dst[i] |= local & odcCur[ybase+i]
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if f == opt.Frame {
			res := &Result{Obs: make([]float64, n), K: 64 * w, Frame: opt.Frame}
			for i := 0; i < n; i++ {
				res.Obs[i] = sim.Density(odcCur[i*w : (i+1)*w])
			}
			result = res
			break
		}
		odcCur, odcNext = odcNext, odcCur
	}
	return result, nil
}
