// Package obs computes signal observabilities of a sequential circuit by
// signature-based ODC (observability don't-care) analysis over an
// n-time-frame expanded simulation, following [17]/[21] of the paper:
//
//	obs(g) = num_ones(O(g)) / K
//
// where O(g) is the ODC mask of gate g's first-frame instance and K the
// number of simulated vectors. Registers act as wires in the expansion, so
// an error injected at g in frame 0 may surface at a primary output of any
// later frame; the mask is the union of all those observation events.
package obs

import (
	"fmt"

	"serretime/internal/circuit"
	"serretime/internal/sim"
)

// Options tunes the analysis.
type Options struct {
	// Frame selects which frame's gate instances are reported (default 0,
	// giving errors the full n-frame horizon to propagate).
	Frame int
	// DropFinalRegisters, when set, treats an error still held in a
	// register after the last frame as unobserved. By default such errors
	// count as observable (they are latched and will eventually surface).
	DropFinalRegisters bool
}

// Result holds per-node observabilities.
type Result struct {
	// Obs[node] is the observability of the node's output in [0, 1].
	Obs []float64
	// K is the number of simulated vectors (64 · words).
	K int
	// Frame is the reported frame instance.
	Frame int
}

// GateObs returns the observability of a node.
func (r *Result) GateObs(n circuit.NodeID) float64 { return r.Obs[n] }

// Compute runs the backward ODC propagation over the trace.
func Compute(tr *sim.Trace, opt Options) (*Result, error) {
	c := tr.Circuit
	if opt.Frame < 0 || opt.Frame >= tr.Frames {
		return nil, fmt.Errorf("obs: frame %d outside trace of %d frames", opt.Frame, tr.Frames)
	}
	n := c.NumNodes()
	w := tr.Words

	// odcNext[node] = ODC mask of the node in frame f+1 (register
	// coupling); odcCur[node] = mask being built for frame f.
	odcNext := make([]uint64, n*w)
	odcCur := make([]uint64, n*w)
	isPO := make([]bool, n)
	for _, po := range c.POs() {
		isPO[po] = true
	}
	// Reverse topological order for intra-frame propagation.
	rev := make([]circuit.NodeID, len(tr.Order))
	for i, id := range tr.Order {
		rev[len(rev)-1-i] = id
	}

	in := make([]uint64, 0, 8)
	evalFlip := func(f int, y *circuit.Node, x circuit.NodeID, word int) uint64 {
		in = in[:0]
		for _, fid := range y.Fanin {
			v := tr.Value(f, fid)[word]
			if fid == x {
				v = ^v
			}
			in = append(in, v)
		}
		return y.Fn.Eval(in)
	}

	var result *Result
	for f := tr.Frames - 1; f >= opt.Frame; f-- {
		for i := range odcCur {
			odcCur[i] = 0
		}
		for _, x := range rev {
			nd := c.Node(x)
			base := int(x) * w
			dst := odcCur[base : base+w]
			if isPO[x] {
				for i := range dst {
					dst[i] = ^uint64(0)
				}
			}
			for _, y := range nd.Fanout {
				ynd := c.Node(y)
				ybase := int(y) * w
				switch ynd.Kind {
				case circuit.KindDFF:
					// The flip is stored and surfaces at the DFF's
					// output in frame f+1.
					if f == tr.Frames-1 {
						if !opt.DropFinalRegisters {
							for i := range dst {
								dst[i] = ^uint64(0)
							}
						}
						continue
					}
					for i := 0; i < w; i++ {
						dst[i] |= odcNext[ybase+i]
					}
				case circuit.KindGate:
					for i := 0; i < w; i++ {
						local := evalFlip(f, ynd, x, i) ^ tr.Value(f, y)[i]
						dst[i] |= local & odcCur[ybase+i]
					}
				}
			}
		}
		if f == opt.Frame {
			res := &Result{Obs: make([]float64, n), K: 64 * w, Frame: opt.Frame}
			for i := 0; i < n; i++ {
				res.Obs[i] = sim.Density(odcCur[i*w : (i+1)*w])
			}
			result = res
			break
		}
		odcCur, odcNext = odcNext, odcCur
	}
	return result, nil
}
