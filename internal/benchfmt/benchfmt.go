// Package benchfmt reads and writes the ISCAS89 ".bench" netlist format.
//
// The format is line-oriented:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G10 = DFF(G14)
//	G11 = NOT(G5)
//	G14 = NAND(G0, G10)
//
// Gate keywords are case-insensitive. Supported functions: AND, NAND, OR,
// NOR, XOR, XNOR, NOT, BUF/BUFF, DFF, plus CONST0/CONST1 ("GND"/"VDD" are
// accepted as aliases). Net names may contain any non-whitespace characters
// except '(', ')', ',' and '='.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"serretime/internal/circuit"
)

// ParseError describes a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("bench: line %d: %s", e.Line, e.Msg)
}

var funcByName = map[string]circuit.Func{
	"AND": circuit.FnAnd, "NAND": circuit.FnNand,
	"OR": circuit.FnOr, "NOR": circuit.FnNor,
	"XOR": circuit.FnXor, "XNOR": circuit.FnXnor,
	"NOT": circuit.FnNot, "INV": circuit.FnNot,
	"BUF": circuit.FnBuf, "BUFF": circuit.FnBuf,
	"CONST0": circuit.FnConst0, "GND": circuit.FnConst0,
	"CONST1": circuit.FnConst1, "VDD": circuit.FnConst1,
}

var nameByFunc = map[circuit.Func]string{
	circuit.FnAnd: "AND", circuit.FnNand: "NAND",
	circuit.FnOr: "OR", circuit.FnNor: "NOR",
	circuit.FnXor: "XOR", circuit.FnXnor: "XNOR",
	circuit.FnNot: "NOT", circuit.FnBuf: "BUFF",
	circuit.FnConst0: "CONST0", circuit.FnConst1: "CONST1",
}

// Parse reads a .bench netlist. The design name is taken from the first
// "# name" comment if present, else left as the given fallback.
func Parse(r io.Reader, fallbackName string) (*circuit.Circuit, error) {
	b := circuit.NewBuilder(fallbackName)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if err := parseLine(b, line); err != nil {
			return nil, &ParseError{Line: lineNo, Msg: err.Error()}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return c, nil
}

func parseLine(b *circuit.Builder, line string) error {
	upper := strings.ToUpper(line)
	switch {
	case strings.HasPrefix(upper, "INPUT"):
		name, err := parseDirectiveArg(line)
		if err != nil {
			return err
		}
		b.PI(name)
		return nil
	case strings.HasPrefix(upper, "OUTPUT"):
		name, err := parseDirectiveArg(line)
		if err != nil {
			return err
		}
		b.PO(name)
		return nil
	}
	// Assignment: name = FN(args...)
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return fmt.Errorf("unrecognized statement %q", line)
	}
	lhs := strings.TrimSpace(line[:eq])
	if lhs == "" || strings.ContainsAny(lhs, "(),") {
		return fmt.Errorf("bad net name %q", lhs)
	}
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	closeIdx := strings.LastIndexByte(rhs, ')')
	if open < 0 || closeIdx < open {
		return fmt.Errorf("bad gate expression %q", rhs)
	}
	fnName := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	var args []string
	for _, a := range strings.Split(rhs[open+1:closeIdx], ",") {
		a = strings.TrimSpace(a)
		if a != "" {
			args = append(args, a)
		}
	}
	if fnName == "DFF" || fnName == "FF" || fnName == "LATCH" {
		if len(args) != 1 {
			return fmt.Errorf("DFF %q needs exactly one input, got %d", lhs, len(args))
		}
		b.DFF(lhs, args[0])
		return nil
	}
	fn, ok := funcByName[fnName]
	if !ok {
		return fmt.Errorf("unknown gate function %q", fnName)
	}
	b.Gate(lhs, fn, args...)
	return nil
}

func parseDirectiveArg(line string) (string, error) {
	open := strings.IndexByte(line, '(')
	closeIdx := strings.LastIndexByte(line, ')')
	if open < 0 || closeIdx < open {
		return "", fmt.Errorf("bad directive %q", line)
	}
	name := strings.TrimSpace(line[open+1 : closeIdx])
	if name == "" {
		return "", fmt.Errorf("empty net name in %q", line)
	}
	return name, nil
}

// ParseFile reads a .bench file; the design name defaults to the file's
// base name without extension.
func ParseFile(path string) (*circuit.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(base, ".bench")
	return Parse(f, base)
}

// Write emits the circuit in .bench syntax: inputs, outputs, then DFFs and
// gates in node order.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	pis, pos, gates, dffs := c.Counts()
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates, %d flip-flops\n", pis, pos, gates, dffs)
	for _, id := range c.PIs() {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Node(id).Name)
	}
	for _, id := range c.POs() {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Node(id).Name)
	}
	for i := 0; i < c.NumNodes(); i++ {
		nd := c.Node(circuit.NodeID(i))
		switch nd.Kind {
		case circuit.KindPI:
			continue
		case circuit.KindDFF:
			fmt.Fprintf(bw, "%s = DFF(%s)\n", nd.Name, c.Node(nd.Fanin[0]).Name)
		case circuit.KindGate:
			names := make([]string, len(nd.Fanin))
			for j, f := range nd.Fanin {
				names[j] = c.Node(f).Name
			}
			fmt.Fprintf(bw, "%s = %s(%s)\n", nd.Name, nameByFunc[nd.Fn], strings.Join(names, ", "))
		}
	}
	return bw.Flush()
}

// WriteFile writes the circuit to the given path in .bench syntax.
func WriteFile(path string, c *circuit.Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
