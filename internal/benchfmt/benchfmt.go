// Package benchfmt reads and writes the ISCAS89 ".bench" netlist format.
//
// The format is line-oriented:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G10 = DFF(G14)
//	G11 = NOT(G5)
//	G14 = NAND(G0, G10)
//
// Gate keywords are case-insensitive. Supported functions: AND, NAND, OR,
// NOR, XOR, XNOR, NOT, BUF/BUFF, DFF, plus CONST0/CONST1 ("GND"/"VDD" are
// accepted as aliases). Net names may contain any non-whitespace characters
// except '(', ')', ',' and '='.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"serretime/internal/circuit"
	"serretime/internal/faultfs"
	"serretime/internal/guard"
)

// ParseError is the toolkit-wide typed parse error; it unwraps to
// guard.ErrParse and carries line (and, when known, column) info.
type ParseError = guard.ParseError

// perr is a position-annotated message produced inside a line; the
// caller adds the line number. col is 1-based, 0 = unknown.
type perr struct {
	col int
	msg string
}

func (e *perr) Error() string { return e.msg }

func errAt(col int, msgf string, args ...any) *perr {
	return &perr{col: col, msg: fmt.Sprintf(msgf, args...)}
}

var funcByName = map[string]circuit.Func{
	"AND": circuit.FnAnd, "NAND": circuit.FnNand,
	"OR": circuit.FnOr, "NOR": circuit.FnNor,
	"XOR": circuit.FnXor, "XNOR": circuit.FnXnor,
	"NOT": circuit.FnNot, "INV": circuit.FnNot,
	"BUF": circuit.FnBuf, "BUFF": circuit.FnBuf,
	"CONST0": circuit.FnConst0, "GND": circuit.FnConst0,
	"CONST1": circuit.FnConst1, "VDD": circuit.FnConst1,
}

var nameByFunc = map[circuit.Func]string{
	circuit.FnAnd: "AND", circuit.FnNand: "NAND",
	circuit.FnOr: "OR", circuit.FnNor: "NOR",
	circuit.FnXor: "XOR", circuit.FnXnor: "XNOR",
	circuit.FnNot: "NOT", circuit.FnBuf: "BUFF",
	circuit.FnConst0: "CONST0", circuit.FnConst1: "CONST1",
}

// Parse reads a .bench netlist. The design name is taken from the first
// "# name: x" comment if present, else left as the given fallback.
// Malformed input yields a *ParseError (guard.ErrParse), never a panic.
func Parse(r io.Reader, fallbackName string) (c *circuit.Circuit, err error) {
	b := circuit.NewBuilder(fallbackName)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	named := false
	defer guard.RecoverParse("bench", &lineNo, &err)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// A "# name: x" comment names the design (WriteBench emits
			// one), overriding the filename-derived fallback: round-
			// tripping must preserve names the filename cannot carry,
			// e.g. "s13207/100". Ordinary comments stay cosmetic so they
			// never fragment the service's content-addressed cache.
			if rest, ok := strings.CutPrefix(strings.TrimSpace(line[1:]), "name:"); ok && !named {
				if name := strings.TrimSpace(rest); name != "" {
					b.SetName(name)
					named = true
				}
			}
			continue
		}
		if perr := parseLine(b, line); perr != nil {
			return nil, guard.Parsef("bench", lineNo, perr.col, "%s", perr.msg)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, guard.Parsef("bench", lineNo, 0, "read: %v", err)
	}
	c, err = b.Build()
	if err != nil {
		return nil, guard.Parsef("bench", 0, 0, "%v", err)
	}
	return c, nil
}

func parseLine(b *circuit.Builder, line string) *perr {
	upper := strings.ToUpper(line)
	switch {
	case strings.HasPrefix(upper, "INPUT"):
		name, perr := parseDirectiveArg(line)
		if perr != nil {
			return perr
		}
		b.PI(name)
		return nil
	case strings.HasPrefix(upper, "OUTPUT"):
		name, perr := parseDirectiveArg(line)
		if perr != nil {
			return perr
		}
		b.PO(name)
		return nil
	}
	// Assignment: name = FN(args...)
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return errAt(1, "unrecognized statement %q", line)
	}
	lhs := strings.TrimSpace(line[:eq])
	if lhs == "" || strings.ContainsAny(lhs, "(),") {
		return errAt(1, "bad net name %q", lhs)
	}
	rhs := strings.TrimSpace(line[eq+1:])
	rhsCol := eq + 2 + (len(line[eq+1:]) - len(strings.TrimLeft(line[eq+1:], " \t")))
	open := strings.IndexByte(rhs, '(')
	closeIdx := strings.LastIndexByte(rhs, ')')
	if open < 0 || closeIdx < open {
		return errAt(rhsCol, "bad gate expression %q", rhs)
	}
	fnName := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	var args []string
	for _, a := range strings.Split(rhs[open+1:closeIdx], ",") {
		a = strings.TrimSpace(a)
		if a != "" {
			args = append(args, a)
		}
	}
	if fnName == "DFF" || fnName == "FF" || fnName == "LATCH" {
		if len(args) != 1 {
			return errAt(rhsCol, "DFF %q needs exactly one input, got %d", lhs, len(args))
		}
		b.DFF(lhs, args[0])
		return nil
	}
	fn, ok := funcByName[fnName]
	if !ok {
		return errAt(rhsCol, "unknown gate function %q", fnName)
	}
	b.Gate(lhs, fn, args...)
	return nil
}

func parseDirectiveArg(line string) (string, *perr) {
	open := strings.IndexByte(line, '(')
	closeIdx := strings.LastIndexByte(line, ')')
	if open < 0 || closeIdx < open {
		return "", errAt(1, "bad directive %q", line)
	}
	name := strings.TrimSpace(line[open+1 : closeIdx])
	if name == "" {
		return "", errAt(open+2, "empty net name in %q", line)
	}
	return name, nil
}

// ParseFile reads a .bench file; the design name defaults to the file's
// base name without extension.
func ParseFile(path string) (*circuit.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(base, ".bench")
	return Parse(f, base)
}

// Write emits the circuit in .bench syntax: inputs, outputs, then DFFs and
// gates in node order.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# name: %s\n", c.Name)
	pis, pos, gates, dffs := c.Counts()
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates, %d flip-flops\n", pis, pos, gates, dffs)
	for _, id := range c.PIs() {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Node(id).Name)
	}
	for _, id := range c.POs() {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Node(id).Name)
	}
	for i := 0; i < c.NumNodes(); i++ {
		nd := c.Node(circuit.NodeID(i))
		switch nd.Kind {
		case circuit.KindPI:
			continue
		case circuit.KindDFF:
			fmt.Fprintf(bw, "%s = DFF(%s)\n", nd.Name, c.Node(nd.Fanin[0]).Name)
		case circuit.KindGate:
			names := make([]string, len(nd.Fanin))
			for j, f := range nd.Fanin {
				names[j] = c.Node(f).Name
			}
			fmt.Fprintf(bw, "%s = %s(%s)\n", nd.Name, nameByFunc[nd.Fn], strings.Join(names, ", "))
		}
	}
	return bw.Flush()
}

// WriteFile writes the circuit to the given path in .bench syntax. The
// write is atomic — content streams into a temp file in the target
// directory which is renamed over the path — so a crash mid-write leaves
// the old netlist intact, never a torn one.
func WriteFile(path string, c *circuit.Circuit) error {
	return faultfs.WriteAtomic(faultfs.OS(), path, 0o644, false, func(w io.Writer) error {
		return Write(w, c)
	})
}
