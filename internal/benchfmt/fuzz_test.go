package benchfmt

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"serretime/internal/guard"
)

// FuzzParseBench checks the robustness contract of the .bench reader:
// any byte stream either parses into a circuit or yields an error
// unwrapping to guard.ErrParse — it must never panic or return
// (nil, nil).
func FuzzParseBench(f *testing.F) {
	for _, name := range []string{"s27.bench", "pipeline4.bench"} {
		data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
		if err != nil {
			f.Fatalf("seed %s: %v", name, err)
		}
		f.Add(string(data))
	}
	f.Add("INPUT(a)\nOUTPUT(b)\nb = DFF(a)\n")
	f.Add("x = AND(a, b)\n")
	f.Add("INPUT()\n")
	f.Add("x = ()\n")
	f.Add("= AND(a)\n")
	f.Add("x = DFF(a, b)\n")
	f.Fuzz(func(t *testing.T, input string) {
		c, err := Parse(strings.NewReader(input), "fuzz")
		if err != nil {
			if !errors.Is(err, guard.ErrParse) {
				t.Fatalf("error does not unwrap to guard.ErrParse: %v", err)
			}
			return
		}
		if c == nil {
			t.Fatal("nil circuit with nil error")
		}
		// A parsed circuit must survive re-serialization.
		var sb strings.Builder
		if werr := Write(&sb, c); werr != nil {
			t.Fatalf("round-trip write failed: %v", werr)
		}
		if _, rerr := Parse(strings.NewReader(sb.String()), "fuzz2"); rerr != nil {
			t.Fatalf("round-trip re-parse failed: %v\noutput:\n%s", rerr, sb.String())
		}
	})
}
