package benchfmt

import (
	"bytes"
	"strings"
	"testing"

	"serretime/internal/circuit"
)

func TestParseS27(t *testing.T) {
	c, err := ParseFile("../../testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "s27" {
		t.Fatalf("Name = %q", c.Name)
	}
	pis, pos, gates, dffs := c.Counts()
	if pis != 4 || pos != 1 || gates != 10 || dffs != 3 {
		t.Fatalf("Counts = %d %d %d %d", pis, pos, gates, dffs)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	g10, ok := c.Lookup("G10")
	if !ok || c.Node(g10).Fn != circuit.FnNor {
		t.Fatal("G10 wrong")
	}
	// G17 = NOT(G11) is the PO.
	po := c.POs()[0]
	if c.Node(po).Name != "G17" {
		t.Fatalf("PO = %q", c.Node(po).Name)
	}
}

func TestParsePipeline4(t *testing.T) {
	c, err := ParseFile("../../testdata/pipeline4.bench")
	if err != nil {
		t.Fatal(err)
	}
	pis, pos, gates, dffs := c.Counts()
	if pis != 3 || pos != 2 || gates != 8 || dffs != 5 {
		t.Fatalf("Counts = %d %d %d %d", pis, pos, gates, dffs)
	}
}

func TestRoundTrip(t *testing.T) {
	orig, err := ParseFile("../../testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf, "s27")
	if err != nil {
		t.Fatalf("reparse: %v\noutput was:\n%s", err, buf.String())
	}
	if back.NumNodes() != orig.NumNodes() {
		t.Fatalf("round trip node count %d != %d", back.NumNodes(), orig.NumNodes())
	}
	op, oo, og, od := orig.Counts()
	bp, bo, bg, bd := back.Counts()
	if op != bp || oo != bo || og != bg || od != bd {
		t.Fatal("round trip counts differ")
	}
	for _, name := range orig.SortedNames() {
		oid, _ := orig.Lookup(name)
		bid, ok := back.Lookup(name)
		if !ok {
			t.Fatalf("net %q lost in round trip", name)
		}
		on, bn := orig.Node(oid), back.Node(bid)
		if on.Kind != bn.Kind || on.Fn != bn.Fn || len(on.Fanin) != len(bn.Fanin) {
			t.Fatalf("net %q changed in round trip", name)
		}
		for i := range on.Fanin {
			if orig.Node(on.Fanin[i]).Name != back.Node(bn.Fanin[i]).Name {
				t.Fatalf("net %q fanin %d changed", name, i)
			}
		}
	}
}

func TestParseCaseInsensitiveAndAliases(t *testing.T) {
	src := `
input(a)
input(b)
output(y)
q = dff(y)
y = nand(a, n1)
n1 = inv(q)
n2 = buff(b)
n3 = vdd()
n4 = and(n2, n3)
`
	c, err := Parse(strings.NewReader(src), "t")
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := c.Lookup("n1")
	if c.Node(n1).Fn != circuit.FnNot {
		t.Fatal("inv alias not mapped to NOT")
	}
	n3, _ := c.Lookup("n3")
	if c.Node(n3).Fn != circuit.FnConst1 {
		t.Fatal("vdd alias not mapped to CONST1")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"garbage", "hello world"},
		{"unknownFn", "INPUT(a)\ny = FOO(a)"},
		{"dffArity", "INPUT(a)\nINPUT(b)\nq = DFF(a, b)"},
		{"undeclared", "y = NOT(missing)"},
		{"emptyDirective", "INPUT()"},
		{"badName", "a(b = NOT(c)"},
		{"duplicate", "INPUT(a)\nINPUT(a)"},
		{"outputUndeclared", "INPUT(a)\nOUTPUT(zz)"},
		{"combCycle", "INPUT(a)\nx = AND(a, y)\ny = AND(a, x)"},
		{"noParen", "y = NOTa"},
	}
	for _, tc := range cases {
		if _, err := Parse(strings.NewReader(tc.src), "t"); err == nil {
			t.Errorf("%s: error not detected", tc.name)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse(strings.NewReader("INPUT(a)\n\nbogus line"), "t")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 3 {
		t.Fatalf("Line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("/nonexistent/x.bench"); err == nil {
		t.Fatal("missing file not reported")
	}
}

func TestWriteHeaderComment(t *testing.T) {
	c, _ := ParseFile("../../testdata/s27.bench")
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# name: s27\n") {
		t.Fatalf("missing name header:\n%s", out)
	}
	if !strings.Contains(out, "INPUT(G0)") || !strings.Contains(out, "OUTPUT(G17)") {
		t.Fatal("missing I/O directives")
	}
}
