// Package sim provides bit-parallel logic simulation of sequential
// circuits, including the n-time-frame expansion used by signature-based
// soft-error analysis ([17], [21] in the paper).
//
// Signatures are []uint64 slices: every machine word carries 64 independent
// random simulation vectors, so one pass over the netlist simulates 64·W
// input patterns. Signature words are mutually independent columns, which
// makes them the safe parallel axis: Run and InjectFlip shard the per-frame
// evaluation across word ranges (DESIGN.md §11) and produce bit-identical
// traces for every worker count.
//
// The trace is a single flat plane: word (frame, node, w) lives at
// vals[(frame·N + node)·Words + w]. Evaluation walks the circuit's CSR
// view (circuit.CSR, DESIGN.md §15) — packed fanin arrays and a cached
// topological order — so a steady-state Run performs O(1) allocations,
// with the plane itself recycled through a pooled arena (Trace.Release).
package sim

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"

	"serretime/internal/circuit"
	"serretime/internal/par"
	"serretime/internal/telemetry"
)

// Config controls a simulation run.
type Config struct {
	// Words is the signature width in 64-bit words (K = 64·Words vectors).
	Words int
	// Frames is the number of time frames n for the expansion.
	Frames int
	// Seed makes the random vectors reproducible.
	Seed int64
	// Workers bounds the CPU workers sharding signature words during gate
	// evaluation. 0 (or negative) means one worker per available CPU;
	// 1 runs the exact sequential code path. The trace is bit-identical
	// for every value: random draws happen outside the parallel sections
	// and each shard writes a disjoint word range.
	Workers int
	// Recorder receives worker-pool utilization telemetry (nil: none).
	Recorder telemetry.Recorder
}

// DefaultConfig matches the paper's setup: 15 time frames; 256 random
// vectors is enough for observability estimates to stabilize (see the
// signature-width ablation bench).
func DefaultConfig() Config { return Config{Words: 4, Frames: 15, Seed: 1} }

func (cfg Config) validate() error {
	if cfg.Words <= 0 {
		return fmt.Errorf("sim: Words = %d, must be positive", cfg.Words)
	}
	if cfg.Frames <= 0 {
		return fmt.Errorf("sim: Frames = %d, must be positive", cfg.Frames)
	}
	return nil
}

// tracePool recycles the flat signature planes across Runs (via
// Trace.Release).
var tracePool par.SlicePool[uint64]

// Trace holds the signatures of every node in every frame of a time-frame
// expanded simulation.
type Trace struct {
	Circuit *circuit.Circuit
	Words   int
	Frames  int
	// Order is the combinational topological order used for evaluation.
	// It aliases the circuit's cached CSR order; callers must not modify.
	Order []circuit.NodeID

	csr    *circuit.CSR
	stride int      // words per frame: NumNodes · Words
	vals   []uint64 // flat plane: vals[(frame·N + node)·Words + w]
	arena  par.Arena[uint64]

	// Sharding configuration inherited by derived analyses (InjectFlip).
	workers int
	rec     telemetry.Recorder
}

// Value returns the signature of node n in the given frame. The returned
// slice aliases the trace; callers must not modify it. Out-of-range frames
// or nodes panic — the flat plane would otherwise alias a neighboring
// frame's words, so the bounds are checked explicitly.
func (t *Trace) Value(frame int, n circuit.NodeID) []uint64 {
	if frame < 0 || frame >= t.Frames {
		panic(fmt.Sprintf("sim: Trace.Value frame %d outside [0, %d)", frame, t.Frames))
	}
	if int(n) < 0 || int(n)*t.Words >= t.stride {
		panic(fmt.Sprintf("sim: Trace.Value node %d outside [0, %d)", n, t.stride/t.Words))
	}
	base := frame*t.stride + int(n)*t.Words
	return t.vals[base : base+t.Words : base+t.Words]
}

// Plane returns the node-major signature plane of one frame (the signature
// of node n occupies words [n·Words, (n+1)·Words)). The hot loops index it
// directly instead of paying Value's per-call bounds checks. Callers must
// not modify the plane.
func (t *Trace) Plane(frame int) []uint64 {
	return t.vals[frame*t.stride : (frame+1)*t.stride]
}

// CSR returns the flat view of the traced circuit.
func (t *Trace) CSR() *circuit.CSR { return t.csr }

// Release returns the trace's signature plane to the package pool. The
// trace and every slice obtained from Value or Plane are invalid
// afterwards. Callers that treat traces as transient (run, analyze,
// discard) should Release to keep steady-state allocation flat; letting
// the GC collect an unreleased trace is merely slower, never wrong.
func (t *Trace) Release() {
	t.vals = nil
	t.arena.Release()
}

// Run simulates cfg.Frames cycles of c with fresh random primary-input
// signatures every frame and random initial flip-flop contents.
func Run(c *circuit.Circuit, cfg Config) (*Trace, error) {
	return RunCtx(context.Background(), c, cfg)
}

// RunCtx is Run with cancellation: a done ctx aborts between shards with a
// guard.ErrTimeout-wrapped error.
func RunCtx(ctx context.Context, c *circuit.Circuit, cfg Config) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	csr, err := c.CSR()
	if err != nil {
		return nil, err
	}
	n := csr.N
	t := &Trace{
		Circuit: c,
		Words:   cfg.Words,
		Frames:  cfg.Frames,
		Order:   csr.Order,
		csr:     csr,
		stride:  n * cfg.Words,
		arena:   par.Arena[uint64]{Pool: &tracePool},
		workers: cfg.Workers,
		rec:     cfg.Recorder,
	}
	// One flat plane for all frames, recycled across Runs via the arena.
	t.vals = t.arena.Alloc(cfg.Frames * t.stride)
	rng := rand.New(rand.NewSource(cfg.Seed))
	pool := par.New("sim.run", cfg.Workers, cfg.Recorder)
	W := cfg.Words
	for f := 0; f < cfg.Frames; f++ {
		vals := t.Plane(f)
		// Sources first, sequentially: PIs and DFFs must hold their frame-f
		// values before any gate reads them (the topological order may place
		// a gate whose fanins are all sources ahead of some sources), and
		// the RNG draw order must not depend on the worker count.
		var prev []uint64
		if f > 0 {
			prev = t.Plane(f - 1)
		}
		for id := 0; id < n; id++ {
			base := id * W
			switch csr.Kind[id] {
			case circuit.KindPI:
				for w := base; w < base+W; w++ {
					vals[w] = rng.Uint64()
				}
			case circuit.KindDFF:
				if f == 0 {
					for w := base; w < base+W; w++ {
						vals[w] = rng.Uint64()
					}
				} else {
					d := int(csr.Fanin[csr.FaninStart[id]]) * W
					copy(vals[base:base+W], prev[d:d+W])
				}
			}
		}
		// Gate evaluation sharded across word columns: within one word the
		// topological order serializes data dependencies; across words there
		// are none.
		err := pool.Run(ctx, W, func(worker, lo, hi int) error {
			for _, id := range csr.GateOrder {
				fanin := csr.FaninOf(id)
				fn := csr.Fn[id]
				base := int(id) * W
				for w := lo; w < hi; w++ {
					vals[base+w] = fn.EvalFanin(vals, fanin, W, w)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// PopCount returns the number of set bits in a signature.
func PopCount(sig []uint64) int {
	n := 0
	for _, w := range sig {
		n += bits.OnesCount64(w)
	}
	return n
}

// Density returns the fraction of set bits in a signature.
func Density(sig []uint64) float64 {
	if len(sig) == 0 {
		return 0
	}
	return float64(PopCount(sig)) / float64(64*len(sig))
}
