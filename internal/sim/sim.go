// Package sim provides bit-parallel logic simulation of sequential
// circuits, including the n-time-frame expansion used by signature-based
// soft-error analysis ([17], [21] in the paper).
//
// Signatures are []uint64 slices: every machine word carries 64 independent
// random simulation vectors, so one pass over the netlist simulates 64·W
// input patterns. Signature words are mutually independent columns, which
// makes them the safe parallel axis: Run and InjectFlip shard the per-frame
// evaluation across word ranges (DESIGN.md §11) and produce bit-identical
// traces for every worker count.
package sim

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"

	"serretime/internal/circuit"
	"serretime/internal/par"
	"serretime/internal/telemetry"
)

// Config controls a simulation run.
type Config struct {
	// Words is the signature width in 64-bit words (K = 64·Words vectors).
	Words int
	// Frames is the number of time frames n for the expansion.
	Frames int
	// Seed makes the random vectors reproducible.
	Seed int64
	// Workers bounds the CPU workers sharding signature words during gate
	// evaluation. 0 (or negative) means one worker per available CPU;
	// 1 runs the exact sequential code path. The trace is bit-identical
	// for every value: random draws happen outside the parallel sections
	// and each shard writes a disjoint word range.
	Workers int
	// Recorder receives worker-pool utilization telemetry (nil: none).
	Recorder telemetry.Recorder
}

// DefaultConfig matches the paper's setup: 15 time frames; 256 random
// vectors is enough for observability estimates to stabilize (see the
// signature-width ablation bench).
func DefaultConfig() Config { return Config{Words: 4, Frames: 15, Seed: 1} }

func (cfg Config) validate() error {
	if cfg.Words <= 0 {
		return fmt.Errorf("sim: Words = %d, must be positive", cfg.Words)
	}
	if cfg.Frames <= 0 {
		return fmt.Errorf("sim: Frames = %d, must be positive", cfg.Frames)
	}
	return nil
}

// Trace holds the signatures of every node in every frame of a time-frame
// expanded simulation.
type Trace struct {
	Circuit *circuit.Circuit
	Words   int
	Frames  int
	// Order is the combinational topological order used for evaluation.
	Order []circuit.NodeID

	vals [][]uint64 // vals[frame][int(node)*Words+w]

	// Sharding configuration inherited by derived analyses (InjectFlip).
	workers int
	rec     telemetry.Recorder
}

// Value returns the signature of node n in the given frame. The returned
// slice aliases the trace; callers must not modify it.
func (t *Trace) Value(frame int, n circuit.NodeID) []uint64 {
	base := int(n) * t.Words
	return t.vals[frame][base : base+t.Words]
}

// Run simulates cfg.Frames cycles of c with fresh random primary-input
// signatures every frame and random initial flip-flop contents.
func Run(c *circuit.Circuit, cfg Config) (*Trace, error) {
	return RunCtx(context.Background(), c, cfg)
}

// RunCtx is Run with cancellation: a done ctx aborts between shards with a
// guard.ErrTimeout-wrapped error.
func RunCtx(ctx context.Context, c *circuit.Circuit, cfg Config) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Trace{
		Circuit: c,
		Words:   cfg.Words,
		Frames:  cfg.Frames,
		Order:   order,
		vals:    make([][]uint64, cfg.Frames),
		workers: cfg.Workers,
		rec:     cfg.Recorder,
	}
	n := c.NumNodes()
	// One slab for all frames: the trace is long-lived, so slicing a single
	// allocation beats per-frame slabs without changing any value.
	slab := make([]uint64, cfg.Frames*n*cfg.Words)
	pool := par.New("sim.run", cfg.Workers, cfg.Recorder)
	for f := 0; f < cfg.Frames; f++ {
		t.vals[f] = slab[f*n*cfg.Words : (f+1)*n*cfg.Words]
		// Sources first, sequentially: PIs and DFFs must hold their frame-f
		// values before any gate reads them (the topological order may place
		// a gate whose fanins are all sources ahead of some sources), and
		// the RNG draw order must not depend on the worker count.
		for id := 0; id < n; id++ {
			nd := c.Node(circuit.NodeID(id))
			base := id * cfg.Words
			dst := t.vals[f][base : base+cfg.Words]
			switch nd.Kind {
			case circuit.KindPI:
				for w := range dst {
					dst[w] = rng.Uint64()
				}
			case circuit.KindDFF:
				if f == 0 {
					for w := range dst {
						dst[w] = rng.Uint64()
					}
				} else {
					copy(dst, t.Value(f-1, nd.Fanin[0]))
				}
			}
		}
		// Gate evaluation sharded across word columns: within one word the
		// topological order serializes data dependencies; across words there
		// are none.
		vals := t.vals[f]
		err := pool.Run(ctx, cfg.Words, func(worker, lo, hi int) error {
			W := cfg.Words
			in := make([]uint64, 0, 8)
			for _, id := range order {
				nd := c.Node(id)
				if nd.Kind != circuit.KindGate {
					continue
				}
				base := int(id) * W
				dst := vals[base : base+W]
				for w := lo; w < hi; w++ {
					in = in[:0]
					for _, fid := range nd.Fanin {
						in = append(in, vals[int(fid)*W+w])
					}
					dst[w] = nd.Fn.Eval(in)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// PopCount returns the number of set bits in a signature.
func PopCount(sig []uint64) int {
	n := 0
	for _, w := range sig {
		n += bits.OnesCount64(w)
	}
	return n
}

// Density returns the fraction of set bits in a signature.
func Density(sig []uint64) float64 {
	if len(sig) == 0 {
		return 0
	}
	return float64(PopCount(sig)) / float64(64*len(sig))
}
