package sim

import (
	"fmt"

	"serretime/internal/circuit"
)

// InjectFlip re-simulates the trace with node target's output forced to
// its complement in frame 0 and returns, for every primary output and
// frame, the XOR of the faulty and clean signatures. A set bit means the
// injected error reached that output in that frame for that vector —
// ground truth for observability (the ODC analysis of package obs is the
// fast approximation of exactly this experiment).
func InjectFlip(tr *Trace, target circuit.NodeID) ([][][]uint64, error) {
	c := tr.Circuit
	if int(target) < 0 || int(target) >= c.NumNodes() {
		return nil, fmt.Errorf("sim: inject target %d out of range", target)
	}
	w := tr.Words
	n := c.NumNodes()
	// faulty[node*w+i] holds the faulty value of the current frame.
	cur := make([]uint64, n*w)
	prev := make([]uint64, n*w)
	in := make([]uint64, 0, 8)

	diffs := make([][][]uint64, tr.Frames)
	for f := 0; f < tr.Frames; f++ {
		// Sources: PIs always match the clean trace; DFFs carry the faulty
		// previous-frame value (frame 0 state matches the clean trace).
		for id := 0; id < n; id++ {
			nd := c.Node(circuit.NodeID(id))
			base := id * w
			switch nd.Kind {
			case circuit.KindPI:
				copy(cur[base:base+w], tr.Value(f, circuit.NodeID(id)))
			case circuit.KindDFF:
				if f == 0 {
					copy(cur[base:base+w], tr.Value(0, circuit.NodeID(id)))
				} else {
					copy(cur[base:base+w], prev[int(nd.Fanin[0])*w:int(nd.Fanin[0])*w+w])
				}
			}
		}
		for _, id := range tr.Order {
			nd := c.Node(id)
			if nd.Kind != circuit.KindGate {
				if id == target && f == 0 {
					base := int(id) * w
					for i := 0; i < w; i++ {
						cur[base+i] = ^cur[base+i]
					}
				}
				continue
			}
			base := int(id) * w
			for i := 0; i < w; i++ {
				in = in[:0]
				for _, fid := range nd.Fanin {
					in = append(in, cur[int(fid)*w+i])
				}
				cur[base+i] = nd.Fn.Eval(in)
			}
			if id == target && f == 0 {
				for i := 0; i < w; i++ {
					cur[base+i] = ^cur[base+i]
				}
			}
		}
		diffs[f] = make([][]uint64, len(c.POs()))
		for i, po := range c.POs() {
			d := make([]uint64, w)
			clean := tr.Value(f, po)
			for j := 0; j < w; j++ {
				d[j] = cur[int(po)*w+j] ^ clean[j]
			}
			diffs[f][i] = d
		}
		cur, prev = prev, cur
	}
	return diffs, nil
}

// EmpiricalObs runs InjectFlip and reduces the result to the fraction of
// vectors for which the flip at target reaches any primary output in any
// frame — the Monte-Carlo estimate of obs(target, n).
func EmpiricalObs(tr *Trace, target circuit.NodeID) (float64, error) {
	diffs, err := InjectFlip(tr, target)
	if err != nil {
		return 0, err
	}
	w := tr.Words
	any := make([]uint64, w)
	for _, frame := range diffs {
		for _, po := range frame {
			for j := 0; j < w; j++ {
				any[j] |= po[j]
			}
		}
	}
	return Density(any), nil
}
