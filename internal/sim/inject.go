package sim

import (
	"context"
	"fmt"

	"serretime/internal/circuit"
	"serretime/internal/par"
)

// faultPool recycles the per-call faulty-value slabs (two of n·Words
// uint64 each). The slabs are fully overwritten column-by-column before
// being read, and SlicePool zeroes on Get, so pooling cannot change a
// result.
var faultPool par.SlicePool[uint64]

// InjectFlip re-simulates the trace with node target's output forced to
// its complement in frame 0 and returns, for every primary output and
// frame, the XOR of the faulty and clean signatures. A set bit means the
// injected error reached that output in that frame for that vector —
// ground truth for observability (the ODC analysis of package obs is the
// fast approximation of exactly this experiment).
//
// The whole re-simulation is word-column independent — sources copy, gates
// evaluate and outputs diff one word at a time — so each frame is sharded
// across the trace's worker count with bit-identical results.
func InjectFlip(tr *Trace, target circuit.NodeID) ([][][]uint64, error) {
	return InjectFlipCtx(context.Background(), tr, target)
}

// InjectFlipCtx is InjectFlip with cancellation between shards.
func InjectFlipCtx(ctx context.Context, tr *Trace, target circuit.NodeID) ([][][]uint64, error) {
	c := tr.Circuit
	csr := tr.csr
	if int(target) < 0 || int(target) >= csr.N {
		return nil, fmt.Errorf("sim: inject target %d out of range", target)
	}
	w := tr.Words
	n := csr.N
	// faulty[node*w+i] holds the faulty value of the current frame.
	cur := faultPool.Get(n * w)
	prev := faultPool.Get(n * w)
	defer func() {
		faultPool.Put(cur)
		faultPool.Put(prev)
	}()
	pos := c.POs()
	pool := par.New("sim.inject", tr.workers, tr.rec)

	// All diffs share one value slab and one header slab: three allocations
	// for the whole experiment instead of two per frame.
	diffs := make([][][]uint64, tr.Frames)
	headers := make([][]uint64, tr.Frames*len(pos))
	slab := make([]uint64, tr.Frames*len(pos)*w)
	for f := 0; f < tr.Frames; f++ {
		diffs[f] = headers[f*len(pos) : (f+1)*len(pos)]
		for i := range pos {
			off := (f*len(pos) + i) * w
			diffs[f][i] = slab[off : off+w : off+w]
		}
	}
	for f := 0; f < tr.Frames; f++ {
		clean := tr.Plane(f)
		fdiffs := diffs[f]
		// pool.Run is synchronous, so the closure always sees the cur/prev
		// of this frame; the swap below happens after every shard returned.
		err := pool.Run(ctx, w, func(worker, lo, hi int) error {
			// Sources: PIs always match the clean trace; DFFs carry the
			// faulty previous-frame value (frame 0 state matches the clean
			// trace).
			for id := 0; id < n; id++ {
				base := id * w
				switch csr.Kind[id] {
				case circuit.KindPI:
					copy(cur[base+lo:base+hi], clean[base+lo:base+hi])
				case circuit.KindDFF:
					if f == 0 {
						copy(cur[base+lo:base+hi], clean[base+lo:base+hi])
					} else {
						src := int(csr.Fanin[csr.FaninStart[id]]) * w
						copy(cur[base+lo:base+hi], prev[src+lo:src+hi])
					}
				}
			}
			for _, id := range tr.Order {
				if csr.Kind[id] != circuit.KindGate {
					if id == target && f == 0 {
						base := int(id) * w
						for i := lo; i < hi; i++ {
							cur[base+i] = ^cur[base+i]
						}
					}
					continue
				}
				fanin := csr.FaninOf(id)
				fn := csr.Fn[id]
				base := int(id) * w
				for i := lo; i < hi; i++ {
					cur[base+i] = fn.EvalFanin(cur, fanin, w, i)
				}
				if id == target && f == 0 {
					for i := lo; i < hi; i++ {
						cur[base+i] = ^cur[base+i]
					}
				}
			}
			for i, po := range pos {
				d := fdiffs[i]
				pb := int(po) * w
				for j := lo; j < hi; j++ {
					d[j] = cur[pb+j] ^ clean[pb+j]
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		cur, prev = prev, cur
	}
	return diffs, nil
}

// EmpiricalObs runs InjectFlip and reduces the result to the fraction of
// vectors for which the flip at target reaches any primary output in any
// frame — the Monte-Carlo estimate of obs(target, n).
func EmpiricalObs(tr *Trace, target circuit.NodeID) (float64, error) {
	diffs, err := InjectFlip(tr, target)
	if err != nil {
		return 0, err
	}
	w := tr.Words
	any := make([]uint64, w)
	for _, frame := range diffs {
		for _, po := range frame {
			for j := 0; j < w; j++ {
				any[j] |= po[j]
			}
		}
	}
	return Density(any), nil
}
