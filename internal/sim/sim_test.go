package sim

import (
	"testing"
	"testing/quick"

	"serretime/internal/benchfmt"
	"serretime/internal/circuit"
)

func xorLoop(t testing.TB) *circuit.Circuit {
	t.Helper()
	// q toggles its state XOR input a: q' = a XOR q.
	b := circuit.NewBuilder("xorloop")
	b.PI("a")
	b.Gate("n", circuit.FnXor, "a", "q")
	b.DFF("q", "n")
	b.PO("n")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunShapes(t *testing.T) {
	c := xorLoop(t)
	tr, err := Run(c, Config{Words: 2, Frames: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Frames != 4 || tr.Words != 2 {
		t.Fatal("config not recorded")
	}
	n, _ := c.Lookup("n")
	if len(tr.Value(0, n)) != 2 {
		t.Fatal("signature width wrong")
	}
}

func TestRunSemantics(t *testing.T) {
	c := xorLoop(t)
	tr, err := Run(c, Config{Words: 1, Frames: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Lookup("a")
	n, _ := c.Lookup("n")
	q, _ := c.Lookup("q")
	for f := 0; f < 5; f++ {
		// n = a XOR q in every frame.
		if tr.Value(f, n)[0] != tr.Value(f, a)[0]^tr.Value(f, q)[0] {
			t.Fatalf("frame %d: gate equation violated", f)
		}
		// q(f) = n(f-1) for f > 0.
		if f > 0 && tr.Value(f, q)[0] != tr.Value(f-1, n)[0] {
			t.Fatalf("frame %d: register transport violated", f)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	c := xorLoop(t)
	t1, _ := Run(c, Config{Words: 2, Frames: 3, Seed: 9})
	t2, _ := Run(c, Config{Words: 2, Frames: 3, Seed: 9})
	n, _ := c.Lookup("n")
	for f := 0; f < 3; f++ {
		for w := 0; w < 2; w++ {
			if t1.Value(f, n)[w] != t2.Value(f, n)[w] {
				t.Fatal("same seed, different trace")
			}
		}
	}
	t3, _ := Run(c, Config{Words: 2, Frames: 3, Seed: 10})
	same := true
	for f := 0; f < 3; f++ {
		for w := 0; w < 2; w++ {
			if t1.Value(f, n)[w] != t3.Value(f, n)[w] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical trace")
	}
}

func TestRunConfigValidation(t *testing.T) {
	c := xorLoop(t)
	if _, err := Run(c, Config{Words: 0, Frames: 1}); err == nil {
		t.Fatal("Words=0 accepted")
	}
	if _, err := Run(c, Config{Words: 1, Frames: 0}); err == nil {
		t.Fatal("Frames=0 accepted")
	}
}

func TestPopCountAndDensity(t *testing.T) {
	if PopCount([]uint64{0, ^uint64(0), 0xF}) != 68 {
		t.Fatal("PopCount wrong")
	}
	if Density([]uint64{^uint64(0), 0}) != 0.5 {
		t.Fatal("Density wrong")
	}
	if Density(nil) != 0 {
		t.Fatal("Density(nil) wrong")
	}
}

func TestStepperMatchesRun(t *testing.T) {
	// Stepping a circuit with the same inputs and initial state as Run
	// must reproduce the trace.
	c, err := benchfmt.ParseFile("../../testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Words: 2, Frames: 6, Seed: 3}
	tr, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStepper(c, cfg.Words)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range c.NodesOfKind(circuit.KindDFF) {
		if err := st.SetState(q, tr.Value(0, q)); err != nil {
			t.Fatal(err)
		}
	}
	for f := 0; f < cfg.Frames; f++ {
		pi := make([][]uint64, len(c.PIs()))
		for i, id := range c.PIs() {
			pi[i] = tr.Value(f, id)
		}
		po, err := st.Step(pi)
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range c.POs() {
			want := tr.Value(f, id)
			for w := range want {
				if po[i][w] != want[w] {
					t.Fatalf("frame %d PO %d: stepper diverges from trace", f, i)
				}
			}
		}
	}
}

func TestStepperErrors(t *testing.T) {
	c := xorLoop(t)
	if _, err := NewStepper(c, 0); err == nil {
		t.Fatal("words=0 accepted")
	}
	st, _ := NewStepper(c, 1)
	a, _ := c.Lookup("a")
	if err := st.SetState(a, []uint64{0}); err == nil {
		t.Fatal("SetState on PI accepted")
	}
	q, _ := c.Lookup("q")
	if err := st.SetState(q, []uint64{0, 0}); err == nil {
		t.Fatal("wrong width accepted")
	}
	if _, err := st.Step(nil); err == nil {
		t.Fatal("missing PI signatures accepted")
	}
	if _, err := st.Step([][]uint64{{1, 2}}); err == nil {
		t.Fatal("wrong PI width accepted")
	}
}

func TestPropertyXorLoopIsAccumulator(t *testing.T) {
	// The xor loop integrates its input: q(t) = q(0) XOR a(0) ... XOR a(t-1).
	c := xorLoop(t)
	f := func(q0, a0, a1, a2 uint64) bool {
		st, _ := NewStepper(c, 1)
		q, _ := c.Lookup("q")
		st.SetState(q, []uint64{q0})
		acc := q0
		for _, a := range []uint64{a0, a1, a2} {
			po, err := st.Step([][]uint64{{a}})
			if err != nil {
				return false
			}
			acc ^= a
			if po[0][0] != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
