package sim

import (
	"fmt"

	"serretime/internal/circuit"
)

// Stepper is a cycle-accurate bit-parallel simulator with explicit state,
// used for sequential equivalence checking. Unlike Run, the caller supplies
// the primary-input signatures of every cycle and the initial flip-flop
// contents.
type Stepper struct {
	c     *circuit.Circuit
	csr   *circuit.CSR
	words int
	vals  []uint64 // current-cycle net values, node-major
	state []uint64 // DFF outputs for the current cycle, node-major
	dffs  []circuit.NodeID
}

// NewStepper builds a stepper with all-zero initial state.
func NewStepper(c *circuit.Circuit, words int) (*Stepper, error) {
	if words <= 0 {
		return nil, fmt.Errorf("sim: words = %d", words)
	}
	csr, err := c.CSR()
	if err != nil {
		return nil, err
	}
	return &Stepper{
		c:     c,
		csr:   csr,
		words: words,
		vals:  make([]uint64, csr.N*words),
		state: make([]uint64, csr.N*words),
		dffs:  c.NodesOfKind(circuit.KindDFF),
	}, nil
}

// Words returns the signature width in 64-bit words.
func (s *Stepper) Words() int { return s.words }

// Value returns a copy of the given net's signature from the most recent
// Step call (zero before the first Step).
func (s *Stepper) Value(id circuit.NodeID) []uint64 {
	out := make([]uint64, s.words)
	copy(out, s.vals[int(id)*s.words:int(id+1)*s.words])
	return out
}

// SetState sets the stored value of a flip-flop for the next Step call.
func (s *Stepper) SetState(dff circuit.NodeID, sig []uint64) error {
	if s.c.Node(dff).Kind != circuit.KindDFF {
		return fmt.Errorf("sim: SetState on non-DFF %q", s.c.Node(dff).Name)
	}
	if len(sig) != s.words {
		return fmt.Errorf("sim: SetState width %d, want %d", len(sig), s.words)
	}
	copy(s.state[int(dff)*s.words:], sig)
	return nil
}

// Step simulates one clock cycle: pi maps each primary input (by position
// in c.PIs()) to its signature; the returned slice holds the primary-output
// signatures by position in c.POs(). The returned signatures are copies.
func (s *Stepper) Step(pi [][]uint64) ([][]uint64, error) {
	pis := s.c.PIs()
	if len(pi) != len(pis) {
		return nil, fmt.Errorf("sim: %d PI signatures for %d inputs", len(pi), len(pis))
	}
	for i, id := range pis {
		if len(pi[i]) != s.words {
			return nil, fmt.Errorf("sim: PI %d width %d, want %d", i, len(pi[i]), s.words)
		}
		copy(s.vals[int(id)*s.words:int(id+1)*s.words], pi[i])
	}
	// Sources first: DFF outputs must be visible before any gate reads
	// them, regardless of their position in the topological order.
	for _, id := range s.dffs {
		base := int(id) * s.words
		copy(s.vals[base:base+s.words], s.state[base:base+s.words])
	}
	for _, id := range s.csr.GateOrder {
		fanin := s.csr.FaninOf(id)
		fn := s.csr.Fn[id]
		base := int(id) * s.words
		for w := 0; w < s.words; w++ {
			s.vals[base+w] = fn.EvalFanin(s.vals, fanin, s.words, w)
		}
	}
	out := make([][]uint64, len(s.c.POs()))
	for i, id := range s.c.POs() {
		sig := make([]uint64, s.words)
		copy(sig, s.vals[int(id)*s.words:int(id+1)*s.words])
		out[i] = sig
	}
	// Latch next state.
	for _, id := range s.dffs {
		d := s.c.Node(id).Fanin[0]
		copy(s.state[int(id)*s.words:int(id+1)*s.words], s.vals[int(d)*s.words:int(d+1)*s.words])
	}
	return out, nil
}
