package sim

import (
	"testing"

	"serretime/internal/benchfmt"
)

func BenchmarkRunS27x15Frames(b *testing.B) {
	c, err := benchfmt.ParseFile("../../testdata/s27.bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, Config{Words: 4, Frames: 15, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
