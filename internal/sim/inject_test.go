package sim_test

import (
	"math"
	"testing"

	"serretime/internal/benchfmt"
	"serretime/internal/circuit"
	"serretime/internal/obs"
	. "serretime/internal/sim"
)

func TestInjectFlipChain(t *testing.T) {
	// a -> NOT -> PO: every injected flip must surface immediately.
	b := circuit.NewBuilder("chain")
	b.PI("a")
	b.Gate("n", circuit.FnNot, "a")
	b.PO("n")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(c, Config{Words: 2, Frames: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := c.Lookup("n")
	o, err := EmpiricalObs(tr, id)
	if err != nil {
		t.Fatal(err)
	}
	if o != 1 {
		t.Fatalf("empirical obs = %g, want 1", o)
	}
	// The flip appears in frame 0 only (no state to carry it).
	diffs, _ := InjectFlip(tr, id)
	if Density(diffs[0][0]) != 1 {
		t.Fatal("frame 0 diff not full")
	}
	if Density(diffs[1][0]) != 0 {
		t.Fatal("frame 1 diff should be clean")
	}
}

func TestInjectFlipMasked(t *testing.T) {
	// y = AND(x, 0): flips at x never surface.
	b := circuit.NewBuilder("masked")
	b.PI("x")
	b.Gate("zero", circuit.FnConst0)
	b.Gate("y", circuit.FnAnd, "x", "zero")
	b.PO("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(c, Config{Words: 2, Frames: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := c.Lookup("x")
	o, err := EmpiricalObs(tr, x)
	if err != nil {
		t.Fatal(err)
	}
	if o != 0 {
		t.Fatalf("empirical obs = %g, want 0", o)
	}
}

func TestInjectFlipThroughState(t *testing.T) {
	// a -> q (DFF) -> PO buffer: the flip surfaces one frame later.
	b := circuit.NewBuilder("state")
	b.PI("a")
	b.DFF("q", "a")
	b.Gate("y", circuit.FnBuf, "q")
	b.PO("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(c, Config{Words: 2, Frames: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Lookup("a")
	diffs, err := InjectFlip(tr, a)
	if err != nil {
		t.Fatal(err)
	}
	if Density(diffs[0][0]) != 0 {
		t.Fatal("flip visible too early")
	}
	if Density(diffs[1][0]) != 1 {
		t.Fatal("flip not latched into frame 1")
	}
	if Density(diffs[2][0]) != 0 {
		t.Fatal("flip persisted too long")
	}
}

func TestInjectRejectsBadTarget(t *testing.T) {
	b := circuit.NewBuilder("xorloop")
	b.PI("a")
	b.Gate("n", circuit.FnXor, "a", "q")
	b.DFF("q", "n")
	b.PO("n")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := Run(c, Config{Words: 1, Frames: 2, Seed: 1})
	if _, err := InjectFlip(tr, circuit.NodeID(99)); err == nil {
		t.Fatal("bad target accepted")
	}
}

// TestODCMatchesInjectionOnTrees: on fanout-free circuits the ODC
// propagation is exact, so the analytical and empirical observabilities
// must agree bit for bit.
func TestODCMatchesInjectionOnTrees(t *testing.T) {
	b := circuit.NewBuilder("tree")
	b.PI("a")
	b.PI("b")
	b.PI("c")
	b.PI("d")
	b.Gate("n1", circuit.FnAnd, "a", "b")
	b.Gate("n2", circuit.FnOr, "c", "d")
	b.Gate("n3", circuit.FnNand, "n1", "n2")
	b.PO("n3")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(c, Config{Words: 8, Frames: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := obs.Compute(tr, obs.Options{DropFinalRegisters: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"n1", "n2", "n3", "a", "b", "c", "d"} {
		id, _ := c.Lookup(name)
		emp, err := EmpiricalObs(tr, id)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(emp-res.GateObs(id)) > 1e-12 {
			t.Errorf("%s: empirical %g vs ODC %g", name, emp, res.GateObs(id))
		}
	}
}

// TestODCCloseToInjectionOnS27 bounds the reconvergence error of the ODC
// approximation against exact fault injection on a real benchmark.
func TestODCCloseToInjectionOnS27(t *testing.T) {
	c, err := benchfmt.ParseFile("../../testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(c, Config{Words: 8, Frames: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := obs.Compute(tr, obs.Options{DropFinalRegisters: true})
	if err != nil {
		t.Fatal(err)
	}
	var sumErr float64
	var worst float64
	n := 0
	for _, id := range c.NodesOfKind(circuit.KindGate) {
		emp, err := EmpiricalObs(tr, id)
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(emp - res.GateObs(id))
		sumErr += e
		if e > worst {
			worst = e
		}
		n++
	}
	mean := sumErr / float64(n)
	t.Logf("ODC vs injection on s27: mean |err| = %.3f, worst = %.3f", mean, worst)
	if mean > 0.10 {
		t.Fatalf("ODC approximation drifts too far from ground truth: mean %.3f", mean)
	}
}
