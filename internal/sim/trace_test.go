package sim

import (
	"testing"

	"serretime/internal/circuit"
)

// mustPanic asserts that fn panics; the flat plane would silently alias a
// neighboring frame on a bad index, so Value must refuse loudly instead.
func mustPanic(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: want panic, got none", label)
		}
	}()
	fn()
}

func TestTraceValueBounds(t *testing.T) {
	c := xorLoop(t)
	tr, err := Run(c, Config{Words: 2, Frames: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := circuit.NodeID(c.NumNodes())
	mustPanic(t, "negative frame", func() { tr.Value(-1, 0) })
	mustPanic(t, "frame past end", func() { tr.Value(tr.Frames, 0) })
	mustPanic(t, "negative node", func() { tr.Value(0, -1) })
	mustPanic(t, "node past end", func() { tr.Value(0, n) })
	// In-range access still works, with the exact width.
	if got := tr.Value(tr.Frames-1, n-1); len(got) != tr.Words {
		t.Fatalf("value width %d, want %d", len(got), tr.Words)
	}
}

// TestTraceValueDisjoint: signatures of adjacent (frame, node) cells must
// occupy disjoint words of the flat plane — writing through one slice (the
// trace owns the memory, but the test may scribble on its own trace) never
// shows through another cell.
func TestTraceValueDisjoint(t *testing.T) {
	c := xorLoop(t)
	tr, err := Run(c, Config{Words: 2, Frames: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	last := circuit.NodeID(c.NumNodes() - 1)
	before := append([]uint64(nil), tr.Value(1, 0)...)
	v := tr.Value(0, last)
	for i := range v {
		v[i] = ^v[i]
	}
	after := tr.Value(1, 0)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("cells (0, last) and (1, 0) alias")
		}
	}
	// A full-width Value slice must not allow appends to spill into the
	// plane (the subslice is capacity-clamped).
	if cap(v) != len(v) {
		t.Fatalf("value cap %d, want %d", cap(v), len(v))
	}
}

// TestTracePlaneIndexing: Plane(f) is the same memory Value reads, at the
// documented node-major offsets.
func TestTracePlaneIndexing(t *testing.T) {
	c := xorLoop(t)
	tr, err := Run(c, Config{Words: 3, Frames: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < tr.Frames; f++ {
		plane := tr.Plane(f)
		for id := 0; id < c.NumNodes(); id++ {
			v := tr.Value(f, circuit.NodeID(id))
			for w := 0; w < tr.Words; w++ {
				if plane[id*tr.Words+w] != v[w] {
					t.Fatalf("frame %d node %d word %d: plane and Value disagree", f, id, w)
				}
			}
		}
	}
}
