// Package mcf solves integer linear programs of the difference-constraint
// form used by classic retiming formulations ([18], [22], and the LP of
// [17] the paper compares against):
//
//	maximize    Σ obj(v)·r(v)
//	subject to  r(u) − r(v) ≤ c(u,v)   for every constraint arc (u,v)
//
// The constraint matrix is totally unimodular, so the LP optimum is
// integral; by duality it is a min-cost flow, solved here with
// Bellman–Ford potential initialization and successive shortest paths.
// The solver exists as the *exact reference* against which the paper's
// incremental forest-based algorithms are validated.
package mcf

import (
	"container/heap"
	"fmt"
	"math"
)

// Arc is the constraint r(From) − r(To) ≤ Cost.
type Arc struct {
	From, To int
	Cost     int64
}

// ErrInfeasible is returned when the constraint system has no solution
// (a negative-cost cycle exists).
var ErrInfeasible = fmt.Errorf("mcf: constraints infeasible (negative cycle)")

// ErrUnbounded is returned when the objective is unbounded above.
var ErrUnbounded = fmt.Errorf("mcf: objective unbounded")

// Result of Maximize.
type Result struct {
	// R is an optimal integer assignment with R[fixed] = 0.
	R []int64
	// Objective is Σ obj(v)·R(v).
	Objective int64
}

type edge struct {
	to   int
	cost int64
	flow int64 // flow on forward edge; residual cap of backward = flow
	rev  int   // index of reverse edge in adj[to]
	fwd  bool
}

type solver struct {
	n   int
	adj [][]edge
	pot []int64
}

func (s *solver) addArc(u, v int, cost int64) {
	s.adj[u] = append(s.adj[u], edge{to: v, cost: cost, rev: len(s.adj[v]), fwd: true})
	s.adj[v] = append(s.adj[v], edge{to: u, cost: -cost, rev: len(s.adj[u]) - 1, fwd: false})
}

// Maximize solves the difference-constraint program. n is the number of
// variables; fixed is the index pinned to zero (the retiming host).
func Maximize(n int, arcs []Arc, obj []int64, fixed int) (*Result, error) {
	if len(obj) != n {
		return nil, fmt.Errorf("mcf: objective length %d, want %d", len(obj), n)
	}
	if fixed < 0 || fixed >= n {
		return nil, fmt.Errorf("mcf: fixed index %d out of range", fixed)
	}
	for _, a := range arcs {
		if a.From < 0 || a.From >= n || a.To < 0 || a.To >= n {
			return nil, fmt.Errorf("mcf: arc %+v out of range", a)
		}
	}
	s := &solver{n: n, adj: make([][]edge, n)}
	for _, a := range arcs {
		if a.From == a.To {
			if a.Cost < 0 {
				return nil, ErrInfeasible
			}
			continue
		}
		s.addArc(a.From, a.To, a.Cost)
	}
	// Supplies: the dual flow conservation is
	// outflow(x) − inflow(x) = obj(x); fold the gauge freedom into the
	// fixed vertex so the total supply is zero.
	excess := make([]int64, n)
	var total int64
	for v := 0; v < n; v++ {
		if v == fixed {
			continue
		}
		excess[v] = obj[v]
		total += obj[v]
	}
	excess[fixed] = -total

	if err := s.initPotentials(); err != nil {
		return nil, err
	}
	if err := s.run(excess); err != nil {
		return nil, err
	}
	res := &Result{R: make([]int64, n)}
	base := s.pot[fixed]
	for v := 0; v < n; v++ {
		res.R[v] = -(s.pot[v] - base)
		res.Objective += obj[v] * res.R[v]
	}
	return res, nil
}

// initPotentials runs Bellman–Ford from a virtual source connected to all
// vertices, producing potentials with non-negative reduced costs on all
// forward arcs; a relaxation persisting past n rounds means a negative
// cycle, i.e. infeasible constraints.
func (s *solver) initPotentials() error {
	s.pot = make([]int64, s.n)
	for round := 0; ; round++ {
		changed := false
		for u := 0; u < s.n; u++ {
			for _, e := range s.adj[u] {
				if !e.fwd {
					continue
				}
				if nd := s.pot[u] + e.cost; nd < s.pot[e.to] {
					s.pot[e.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			return nil
		}
		if round > s.n {
			return ErrInfeasible
		}
	}
}

type pqItem struct {
	v    int
	dist int64
}
type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}

// run routes all excess to deficits along successive shortest paths.
func (s *solver) run(excess []int64) error {
	const inf = math.MaxInt64 / 4
	dist := make([]int64, s.n)
	prevV := make([]int, s.n)
	prevE := make([]int, s.n)
	for {
		src := -1
		for v := 0; v < s.n; v++ {
			if excess[v] > 0 {
				src = v
				break
			}
		}
		if src < 0 {
			return nil
		}
		// Dijkstra with reduced costs over the residual graph.
		for i := range dist {
			dist[i] = inf
			prevV[i] = -1
		}
		dist[src] = 0
		h := pq{{src, 0}}
		for len(h) > 0 {
			it := heap.Pop(&h).(pqItem)
			if it.dist > dist[it.v] {
				continue
			}
			for ei, e := range s.adj[it.v] {
				// Backward entries carry residual equal to the paired
				// forward edge's flow; forward edges have infinite
				// capacity.
				if !e.fwd && s.adj[e.to][e.rev].flow == 0 {
					continue
				}
				rc := e.cost + s.pot[it.v] - s.pot[e.to]
				if rc < 0 {
					return fmt.Errorf("mcf: internal: negative reduced cost %d", rc)
				}
				if nd := it.dist + rc; nd < dist[e.to] {
					dist[e.to] = nd
					prevV[e.to] = it.v
					prevE[e.to] = ei
					heap.Push(&h, pqItem{e.to, nd})
				}
			}
		}
		// Nearest reachable deficit.
		sink := -1
		for v := 0; v < s.n; v++ {
			if excess[v] < 0 && dist[v] < inf {
				if sink < 0 || dist[v] < dist[sink] {
					sink = v
				}
			}
		}
		if sink < 0 {
			return ErrUnbounded
		}
		// Bottleneck: limited by excess, deficit, and backward residuals.
		amt := excess[src]
		if -excess[sink] < amt {
			amt = -excess[sink]
		}
		for v := sink; v != src; v = prevV[v] {
			e := &s.adj[prevV[v]][prevE[v]]
			if !e.fwd {
				if res := s.adj[e.to][e.rev].flow; res < amt {
					amt = res
				}
			}
		}
		// Apply.
		for v := sink; v != src; v = prevV[v] {
			e := &s.adj[prevV[v]][prevE[v]]
			if e.fwd {
				e.flow += amt
			} else {
				s.adj[e.to][e.rev].flow -= amt
			}
		}
		excess[src] -= amt
		excess[sink] += amt
		// Update potentials with the standard min(d(v), d(sink)) rule,
		// which keeps all residual reduced costs non-negative (unreached
		// vertices advance by d(sink)).
		dt := dist[sink]
		for v := 0; v < s.n; v++ {
			if dist[v] < dt {
				s.pot[v] += dist[v]
			} else {
				s.pot[v] += dt
			}
		}
	}
}
