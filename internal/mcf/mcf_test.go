package mcf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimpleMax(t *testing.T) {
	// max r1  s.t.  r1 − r0 ≤ 3, with r0 = 0.
	res, err := Maximize(2, []Arc{{1, 0, 3}}, []int64{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.R[0] != 0 || res.R[1] != 3 || res.Objective != 3 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSimpleMin(t *testing.T) {
	// max −r1  s.t.  r0 − r1 ≤ 2 (so r1 ≥ −2).
	res, err := Maximize(2, []Arc{{0, 1, 2}}, []int64{0, -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.R[1] != -2 || res.Objective != 2 {
		t.Fatalf("res = %+v", res)
	}
}

func TestChain(t *testing.T) {
	arcs := []Arc{{1, 0, 1}, {2, 1, 1}}
	res, err := Maximize(3, arcs, []int64{0, 0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.R[2] != 2 {
		t.Fatalf("r2 = %d", res.R[2])
	}
}

func TestCompetingObjectives(t *testing.T) {
	// max 2·r1 − r2 s.t. r1 − r2 ≤ 0 (r1 ≤ r2), r1 − r0 ≤ 5, r0 − r2 ≤ 0
	// (r2 ≥ 0). Optimum: r1 = r2 = 5 gives 10 − 5 = 5;
	// r1 = 5 forced ≤ r2, increasing r2 loses 1 per unit beyond 5.
	arcs := []Arc{{1, 2, 0}, {1, 0, 5}, {0, 2, 0}}
	res, err := Maximize(3, arcs, []int64{0, 2, -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 5 {
		t.Fatalf("objective = %d, want 5 (r=%v)", res.Objective, res.R)
	}
}

func TestInfeasible(t *testing.T) {
	arcs := []Arc{{0, 1, -1}, {1, 0, 0}}
	if _, err := Maximize(2, arcs, []int64{0, 0}, 0); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if _, err := Maximize(1, []Arc{{0, 0, -1}}, []int64{0}, 0); err != ErrInfeasible {
		t.Fatal("negative self-loop not rejected")
	}
}

func TestUnbounded(t *testing.T) {
	if _, err := Maximize(2, nil, []int64{0, 1}, 0); err != ErrUnbounded {
		t.Fatalf("unbounded not detected")
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Maximize(2, nil, []int64{0}, 0); err == nil {
		t.Fatal("short objective accepted")
	}
	if _, err := Maximize(2, nil, []int64{0, 0}, 5); err == nil {
		t.Fatal("bad fixed index accepted")
	}
	if _, err := Maximize(2, []Arc{{0, 7, 0}}, []int64{0, 0}, 0); err == nil {
		t.Fatal("out-of-range arc accepted")
	}
}

func TestZeroObjective(t *testing.T) {
	res, err := Maximize(3, []Arc{{1, 0, 2}, {2, 1, 2}}, []int64{0, 0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 0 {
		t.Fatal("zero objective must be zero")
	}
}

// bruteMax enumerates r over a box to find the exact optimum.
func bruteMax(n int, arcs []Arc, obj []int64, bound int64) (int64, bool) {
	r := make([]int64, n)
	var best int64
	found := false
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			for _, a := range arcs {
				if r[a.From]-r[a.To] > a.Cost {
					return
				}
			}
			var o int64
			for v := 0; v < n; v++ {
				o += obj[v] * r[v]
			}
			if !found || o > best {
				best = o
				found = true
			}
			return
		}
		if i == 0 {
			r[0] = 0 // fixed
			rec(1)
			return
		}
		for x := -bound; x <= bound; x++ {
			r[i] = x
			rec(i + 1)
		}
	}
	rec(0)
	return best, found
}

func TestPropertyMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(2) // 3 or 4 variables
		var arcs []Arc
		// A bounding ring keeps every variable within ±4 of r0.
		for v := 1; v < n; v++ {
			arcs = append(arcs, Arc{v, 0, int64(rng.Intn(4))})
			arcs = append(arcs, Arc{0, v, int64(rng.Intn(4))})
		}
		for k := 0; k < rng.Intn(5); k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			arcs = append(arcs, Arc{u, v, int64(rng.Intn(6) - 2)})
		}
		obj := make([]int64, n)
		for v := 1; v < n; v++ {
			obj[v] = int64(rng.Intn(7) - 3)
		}
		want, feasible := bruteMax(n, arcs, obj, 5)
		res, err := Maximize(n, arcs, obj, 0)
		if !feasible {
			return err == ErrInfeasible
		}
		if err != nil {
			return false
		}
		// Solution must be feasible and match the brute-force optimum.
		for _, a := range arcs {
			if res.R[a.From]-res.R[a.To] > a.Cost {
				return false
			}
		}
		return res.Objective == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSupplies(t *testing.T) {
	// Big objective coefficients exercise multi-unit pushes.
	arcs := []Arc{{1, 0, 3}, {0, 1, 0}, {2, 1, 1}, {1, 2, 2}}
	res, err := Maximize(3, arcs, []int64{0, 100000, -50000}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// r1 ≤ 3, r2 ≥ r1 − 2... max 100000·r1 − 50000·r2: r1 = 3,
	// r2 ∈ [r1−2, r1+1] → r2 = 1. Objective 300000 − 50000.
	if res.Objective != 250000 {
		t.Fatalf("objective = %d (r=%v)", res.Objective, res.R)
	}
}
