package store

import (
	"bytes"
	"os"
	"testing"
)

// TestTraceRoundTrip journals a done job with a trace payload and checks
// the recovered job carries it back byte-identically.
func TestTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, jobs, _ := openTest(t, dir, nil)
	if len(jobs) != 0 {
		t.Fatalf("fresh store recovered %d jobs", len(jobs))
	}
	trace := []byte(`{"trace_id":"0102030405060708090a0b0c0d0e0f10","root":{"name":"job"}}`)
	if err := d.JournalSubmitted("job-t", "ckt", []byte("netlist"), []byte(`{}`), "key-t"); err != nil {
		t.Fatal(err)
	}
	if err := d.JournalRunning("job-t"); err != nil {
		t.Fatal(err)
	}
	if err := d.JournalDone("job-t", ResultMeta{Tier: 1}, []byte("result"), trace); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, jobs, st := openTest(t, dir, nil)
	defer d2.Close()
	if len(jobs) != 1 || !jobs[0].Done {
		t.Fatalf("recovered %+v", jobs)
	}
	if !bytes.Equal(jobs[0].Trace, trace) {
		t.Fatalf("recovered trace = %q, want %q", jobs[0].Trace, trace)
	}
	if st.Quarantined != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDoneWithoutTrace checks a nil trace journals cleanly and recovers
// with no trace attached (jobs from a solver run without tracing, or a
// degraded trace write).
func TestDoneWithoutTrace(t *testing.T) {
	dir := t.TempDir()
	d, _, _ := openTest(t, dir, nil)
	if err := d.JournalSubmitted("job-n", "ckt", []byte("netlist"), []byte(`{}`), "key-n"); err != nil {
		t.Fatal(err)
	}
	if err := d.JournalDone("job-n", ResultMeta{}, []byte("result"), nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, jobs, _ := openTest(t, dir, nil)
	defer d2.Close()
	if len(jobs) != 1 || !jobs[0].Done || jobs[0].Trace != nil {
		t.Fatalf("recovered %+v", jobs)
	}
}

// TestCorruptTraceKeepsJob flips bytes in the persisted trace payload:
// the trace is advisory, so recovery must quarantine only the trace and
// still serve the job's result.
func TestCorruptTraceKeepsJob(t *testing.T) {
	dir := t.TempDir()
	d, _, _ := openTest(t, dir, nil)
	trace := []byte(`{"trace_id":"0102030405060708090a0b0c0d0e0f10","root":{"name":"job"}}`)
	if err := d.JournalSubmitted("job-t", "ckt", []byte("netlist"), []byte(`{}`), "key-t"); err != nil {
		t.Fatal(err)
	}
	if err := d.JournalDone("job-t", ResultMeta{Tier: 1}, []byte("result"), trace); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	p := d.tracePath("job-t")
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, jobs, st := openTest(t, dir, nil)
	defer d2.Close()
	if len(jobs) != 1 || !jobs[0].Done {
		t.Fatalf("corrupt trace lost the job: %+v (stats %+v)", jobs, st)
	}
	if !bytes.Equal(jobs[0].Result, []byte("result")) {
		t.Fatalf("result = %q", jobs[0].Result)
	}
	if jobs[0].Trace != nil {
		t.Fatalf("corrupt trace served anyway: %q", jobs[0].Trace)
	}
	if st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined trace", st)
	}
}

// TestMissingTraceFileKeepsJob deletes the trace payload outright; same
// advisory contract as corruption.
func TestMissingTraceFileKeepsJob(t *testing.T) {
	dir := t.TempDir()
	d, _, _ := openTest(t, dir, nil)
	trace := []byte(`{"trace_id":"0102030405060708090a0b0c0d0e0f10","root":{"name":"job"}}`)
	if err := d.JournalSubmitted("job-t", "ckt", []byte("netlist"), []byte(`{}`), "key-t"); err != nil {
		t.Fatal(err)
	}
	if err := d.JournalDone("job-t", ResultMeta{}, []byte("result"), trace); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(d.tracePath("job-t")); err != nil {
		t.Fatal(err)
	}
	d2, jobs, _ := openTest(t, dir, nil)
	defer d2.Close()
	if len(jobs) != 1 || !jobs[0].Done || jobs[0].Trace != nil {
		t.Fatalf("recovered %+v", jobs)
	}
	if !bytes.Equal(jobs[0].Result, []byte("result")) {
		t.Fatalf("result = %q", jobs[0].Result)
	}
}
