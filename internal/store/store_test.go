package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"serretime/internal/faultfs"
	"serretime/internal/guard"
)

func openTest(t *testing.T, dir string, fsys faultfs.FS) (*Disk, []RecoveredJob, Stats) {
	t.Helper()
	d, err := Open(Options{Dir: dir, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	jobs, st, err := d.Recover()
	if err != nil {
		t.Fatal(err)
	}
	return d, jobs, st
}

// lifecycle is the scripted workload of the crash-sweep property test:
// three jobs move through their lives — one finishes, one fails, one is
// still queued at the end — plus an eviction of a previously-finished
// job.
func lifecycle(d *Disk) error {
	steps := []func() error{
		func() error {
			return d.JournalSubmitted("job-a", "ckt_a", []byte("netlist-a"), []byte(`{"o":1}`), "key-a")
		},
		func() error { return d.JournalRunning("job-a") },
		func() error {
			return d.JournalDone("job-a", ResultMeta{Tier: 2, Degraded: true, DeltaSER: -12.5}, []byte("result-a"), []byte(`{"trace_id":"aa","root":{"name":"job"}}`))
		},
		func() error {
			return d.JournalSubmitted("job-b", "ckt_b", []byte("netlist-b"), []byte(`{"o":2}`), "key-b")
		},
		func() error { return d.JournalRunning("job-b") },
		func() error { return d.JournalFailed("job-b", "stalled", "no improvement") },
		func() error {
			return d.JournalSubmitted("job-c", "ckt_c", []byte("netlist-c"), []byte(`{"o":3}`), "key-c")
		},
		func() error {
			return d.JournalSubmitted("job-d", "ckt_d", []byte("netlist-d"), []byte(`{"o":4}`), "key-d")
		},
		func() error { return d.JournalRunning("job-d") },
		func() error { return d.JournalDone("job-d", ResultMeta{Tier: 0}, []byte("result-d"), nil) },
		func() error { return d.JournalEvicted("job-d") },
		func() error { return d.Close() },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

// checkInvariant asserts the recovery invariant on a reopened store:
// every job is either absent, pending with a verified netlist, or done
// with a verified result — never a half state.
func checkInvariant(t *testing.T, label string, jobs []RecoveredJob) map[string]RecoveredJob {
	t.Helper()
	byID := make(map[string]RecoveredJob, len(jobs))
	for _, j := range jobs {
		if _, dup := byID[j.ID]; dup {
			t.Fatalf("%s: job %s recovered twice", label, j.ID)
		}
		byID[j.ID] = j
		if j.Done {
			if len(j.Result) == 0 {
				t.Fatalf("%s: done job %s has no result", label, j.ID)
			}
			if len(j.Netlist) != 0 {
				t.Fatalf("%s: done job %s carries a netlist", label, j.ID)
			}
		} else {
			if len(j.Netlist) == 0 {
				t.Fatalf("%s: pending job %s has no netlist", label, j.ID)
			}
			if len(j.Result) != 0 {
				t.Fatalf("%s: pending job %s carries a result", label, j.ID)
			}
		}
	}
	// job-b failed. If the crash predates the durable "failed" record the
	// job legitimately comes back pending (it was running; re-solve it) —
	// but it must never surface as done: no result was ever journaled.
	if j, ok := byID["job-b"]; ok && j.Done {
		t.Fatalf("%s: failed job-b resurrected as done", label)
	}
	// A recovered done job must carry exactly the journaled payload.
	if j, ok := byID["job-a"]; ok && j.Done {
		if !bytes.Equal(j.Result, []byte("result-a")) {
			t.Fatalf("%s: job-a result corrupted: %q", label, j.Result)
		}
		if j.Meta.Tier != 2 || !j.Meta.Degraded || j.Meta.DeltaSER != -12.5 {
			t.Fatalf("%s: job-a meta lost: %+v", label, j.Meta)
		}
		if j.Name != "ckt_a" || j.OptKey != "key-a" || string(j.Opts) != `{"o":1}` {
			t.Fatalf("%s: job-a identity lost: %+v", label, j)
		}
	}
	if j, ok := byID["job-c"]; ok {
		if j.Done {
			t.Fatalf("%s: never-solved job-c recovered as done", label)
		}
		if !bytes.Equal(j.Netlist, []byte("netlist-c")) {
			t.Fatalf("%s: job-c netlist corrupted: %q", label, j.Netlist)
		}
	}
	return byID
}

// TestLifecycleRoundTrip runs the full scripted lifecycle with no
// faults and checks the final recovered state.
func TestLifecycleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, jobs, st := openTest(t, dir, faultfs.OS())
	if len(jobs) != 0 || st.Records != 0 {
		t.Fatalf("fresh store not empty: %d jobs, %+v", len(jobs), st)
	}
	if err := lifecycle(d); err != nil {
		t.Fatal(err)
	}

	_, jobs, st = openTest(t, dir, faultfs.OS())
	byID := checkInvariant(t, "clean", jobs)
	if j := byID["job-a"]; !j.Done {
		t.Fatalf("job-a not recovered as done: %+v", j)
	}
	if _, ok := byID["job-b"]; ok {
		t.Fatal("failed job-b resurrected")
	}
	if _, ok := byID["job-c"]; !ok {
		t.Fatal("queued job-c lost")
	}
	if _, ok := byID["job-d"]; ok {
		t.Fatal("evicted job-d resurrected")
	}
	if st.Finished != 1 || st.Requeued != 1 || st.Quarantined != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// The eviction must have removed job-d's payloads.
	if _, err := os.Stat(filepath.Join(dir, "results", "job-d")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("evicted job-d result still on disk: %v", err)
	}
}

// TestCrashSweepEveryOp is the WAL-replay property test: the scripted
// lifecycle is re-run with an injected crash (torn writes on) at every
// mutating filesystem operation; after each crash, a reopen must
// succeed and the recovery invariant must hold. Run under -race in CI.
func TestCrashSweepEveryOp(t *testing.T) {
	base := t.TempDir()

	probe := faultfs.NewFault(faultfs.OS())
	d, _, _ := openTest(t, filepath.Join(base, "probe"), probe)
	if err := lifecycle(d); err != nil {
		t.Fatal(err)
	}
	n := probe.Ops()
	if n < 20 {
		t.Fatalf("lifecycle performed only %d mutating ops — sweep too small", n)
	}

	for k := 1; k <= n; k++ {
		k := k
		t.Run(fmt.Sprintf("crash-at-%03d", k), func(t *testing.T) {
			dir := filepath.Join(base, fmt.Sprintf("k%d", k))
			fault := faultfs.NewFault(faultfs.OS())
			fault.TornWrites(true)
			fault.CrashAt(k)

			crashed := false
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := faultfs.AsCrash(r); !ok {
							panic(r)
						}
						crashed = true
					}
				}()
				d, err := Open(Options{Dir: dir, FS: fault})
				if err != nil {
					return // crash rules can surface as ErrCrashed too
				}
				if _, _, err := d.Recover(); err != nil {
					return
				}
				_ = lifecycle(d)
			}()
			if !crashed && !fault.Dead() {
				t.Fatalf("k=%d: crash never fired (schedule too long?)", k)
			}

			// The "process" is dead. Reopen the directory cold and
			// demand the invariant.
			_, jobs, _ := openTest(t, dir, faultfs.OS())
			byID := checkInvariant(t, fmt.Sprintf("k=%d", k), jobs)

			// Stronger: a job recovered as done must have the exact
			// journaled payload (checkInvariant), and a *second*
			// reopen (post-compaction) must agree with the first.
			_, jobs2, _ := openTest(t, dir, faultfs.OS())
			byID2 := checkInvariant(t, fmt.Sprintf("k=%d reopen", k), jobs2)
			if len(byID2) != len(byID) {
				t.Fatalf("k=%d: compaction changed the live set: %d -> %d", k, len(byID), len(byID2))
			}
			for id, j := range byID {
				j2, ok := byID2[id]
				if !ok {
					t.Fatalf("k=%d: job %s lost by compaction", k, id)
				}
				if j.Done != j2.Done || !bytes.Equal(j.Result, j2.Result) || !bytes.Equal(j.Netlist, j2.Netlist) {
					t.Fatalf("k=%d: job %s changed across compaction", k, id)
				}
			}
		})
	}
}

// TestCorruptResultQuarantined flips bytes in a finished job's payload:
// recovery must quarantine it (never serve it) and — because the intake
// payload survives — degrade the job to pending so it is re-solved.
func TestCorruptResultQuarantined(t *testing.T) {
	dir := t.TempDir()
	d, _, _ := openTest(t, dir, faultfs.OS())
	if err := d.JournalSubmitted("j1", "c1", []byte("netlist-1"), nil, "k1"); err != nil {
		t.Fatal(err)
	}
	if err := d.JournalDone("j1", ResultMeta{Tier: 1}, []byte("result-1"), nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	resPath := filepath.Join(dir, "results", "j1")
	if err := os.WriteFile(resPath, []byte("rEsult-1"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, jobs, st := openTest(t, dir, faultfs.OS())
	if st.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1 (%+v)", st.Quarantined, st)
	}
	if len(jobs) != 1 || jobs[0].Done || !bytes.Equal(jobs[0].Netlist, []byte("netlist-1")) {
		t.Fatalf("corrupt-result job not degraded to pending: %+v", jobs)
	}
	// The corrupt payload is preserved for diagnosis, outside the
	// servable set.
	if _, err := os.Stat(filepath.Join(dir, "quarantine", "j1")); err != nil {
		t.Fatalf("corrupt result not quarantined: %v", err)
	}
	if _, err := os.Stat(resPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt result still servable: %v", err)
	}
}

// TestCorruptEverythingDropsJob corrupts both payloads: the job must
// vanish entirely rather than surface half-recovered.
func TestCorruptEverythingDropsJob(t *testing.T) {
	dir := t.TempDir()
	d, _, _ := openTest(t, dir, faultfs.OS())
	if err := d.JournalSubmitted("j1", "c1", []byte("netlist-1"), nil, "k1"); err != nil {
		t.Fatal(err)
	}
	if err := d.JournalDone("j1", ResultMeta{}, []byte("result-1"), nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{filepath.Join(dir, "results", "j1"), filepath.Join(dir, "intake", "j1")} {
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, jobs, st := openTest(t, dir, faultfs.OS())
	if len(jobs) != 0 {
		t.Fatalf("doubly-corrupt job served: %+v", jobs)
	}
	if st.Quarantined != 2 {
		t.Fatalf("quarantined = %d, want 2", st.Quarantined)
	}
}

// TestTornWALTail appends garbage (a torn record) to the WAL: replay
// must absorb it as the crash artifact it models and keep every intact
// record.
func TestTornWALTail(t *testing.T) {
	dir := t.TempDir()
	d, _, _ := openTest(t, dir, faultfs.OS())
	if err := d.JournalSubmitted("j1", "c1", []byte("netlist-1"), nil, "k1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"op":"done","id":"j1` /* torn mid-record */); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, jobs, st := openTest(t, dir, faultfs.OS())
	if !st.TruncatedTail {
		t.Fatalf("torn tail not detected: %+v", st)
	}
	if len(jobs) != 1 || jobs[0].Done {
		t.Fatalf("intact records lost to a torn tail: %+v", jobs)
	}
}

// TestWriteErrorsSurfaceAsStoreErrors verifies every journal method
// wraps filesystem failures in guard.ErrStore — the class the service
// keys its degradation and metrics on.
func TestWriteErrorsSurfaceAsStoreErrors(t *testing.T) {
	fault := faultfs.NewFault(faultfs.OS())
	d, _, _ := openTest(t, t.TempDir(), fault)
	boom := errors.New("EIO")
	fault.FailOp(faultfs.OpWrite, "", boom, -1)
	fault.FailOp(faultfs.OpOpen, "", boom, -1)

	for name, call := range map[string]func() error{
		"submitted": func() error { return d.JournalSubmitted("x", "n", []byte("nl"), nil, "k") },
		"running":   func() error { return d.JournalRunning("x") },
		"done":      func() error { return d.JournalDone("x", ResultMeta{}, []byte("r"), nil) },
		"failed":    func() error { return d.JournalFailed("x", "internal", "m") },
		"evicted":   func() error { return d.JournalEvicted("x") },
	} {
		err := call()
		if err == nil {
			t.Fatalf("%s: injected write failure returned nil", name)
		}
		if !errors.Is(err, guard.ErrStore) || !errors.Is(err, boom) {
			t.Fatalf("%s: error does not unwrap to ErrStore+cause: %v", name, err)
		}
		if guard.Classify(err) != "store" {
			t.Fatalf("%s: Classify = %q", name, guard.Classify(err))
		}
	}
}

// TestJournalBeforeRecoverRefused pins the Open/Recover contract.
func TestJournalBeforeRecoverRefused(t *testing.T) {
	d, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.JournalRunning("x"); !errors.Is(err, guard.ErrStore) {
		t.Fatalf("journal before Recover: want ErrStore, got %v", err)
	}
	if _, _, err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Recover(); !errors.Is(err, guard.ErrStore) {
		t.Fatalf("second Recover: want ErrStore, got %v", err)
	}
}

// TestCompactionShrinksWAL: a long churn of evictions must not leave
// the WAL growing without bound across reopens.
func TestCompactionShrinksWAL(t *testing.T) {
	dir := t.TempDir()
	d, _, _ := openTest(t, dir, faultfs.OS())
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("job-%d", i)
		if err := d.JournalSubmitted(id, "c", []byte("netlist"), nil, "k"); err != nil {
			t.Fatal(err)
		}
		if err := d.JournalDone(id, ResultMeta{}, []byte("result"), nil); err != nil {
			t.Fatal(err)
		}
		if err := d.JournalEvicted(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.JournalSubmitted("live", "c", []byte("netlist"), nil, "k"); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	_, jobs, _ := openTest(t, dir, faultfs.OS())
	if len(jobs) != 1 || jobs[0].ID != "live" {
		t.Fatalf("live set after churn: %+v", jobs)
	}
	after, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the WAL: %d -> %d bytes", before.Size(), after.Size())
	}
	// No dead payloads left behind.
	entries, err := os.ReadDir(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d evicted results survived the sweep", len(entries))
	}
}

// TestSyncPolicies exercises the three policies end to end (semantics
// beyond "it syncs" are OS-level; this pins that every policy journals
// and recovers identically).
func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			d, err := Open(Options{Dir: dir, Sync: pol})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := d.Recover(); err != nil {
				t.Fatal(err)
			}
			if err := d.JournalSubmitted("j", "c", []byte("n"), nil, "k"); err != nil {
				t.Fatal(err)
			}
			if err := d.JournalDone("j", ResultMeta{}, []byte("r"), nil); err != nil {
				t.Fatal(err)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			_, jobs, _ := openTest(t, dir, faultfs.OS())
			if len(jobs) != 1 || !jobs[0].Done {
				t.Fatalf("policy %s: %+v", pol, jobs)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"": SyncAlways, "always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); !errors.Is(err, guard.ErrParse) {
		t.Errorf("bad policy: want ErrParse, got %v", err)
	}
}
