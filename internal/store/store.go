// Package store is the crash-safe persistent job store behind the
// batch-retiming service: an append-only write-ahead log journaling job
// lifecycle transitions (submitted → running → done/failed, plus
// evictions), with payloads — the submitted netlist and the solved
// result — written as checksummed files atomically renamed into
// content-addressed directories.
//
// Durability contract (see DESIGN.md §13):
//
//   - Every WAL record is one line: an IEEE CRC-32 of the JSON body,
//     a space, the JSON, a newline. A torn append corrupts only the
//     final line; replay treats a bad tail as the crash artifact it is
//     and truncates it, while a bad record *before* the tail (bit rot)
//     is skipped and counted.
//   - Payloads are written with faultfs.WriteAtomic: temp file in the
//     same directory, optional fsync, rename. A crash leaves the old
//     bytes or the new bytes, never a prefix. The payload's SHA-256 is
//     journaled with the transition; Recover re-hashes every payload it
//     intends to serve and quarantines (never serves) a mismatch.
//   - The fsync policy trades durability for throughput: SyncAlways
//     fsyncs the WAL after every append (a finished job survives an
//     immediate power cut), SyncInterval bounds the error-latching
//     window — the span of un-persisted state — to a configurable
//     duration, SyncNever leaves flushing to the OS.
//
// Recovery (Recover) replays the WAL into a final state per job:
// finished jobs come back as servable results, jobs that were queued or
// running at crash time come back as re-solvable submissions (their
// netlist payload re-read and verified), failed and evicted jobs come
// back as nothing. After replay the WAL is compacted — live jobs are
// rewritten into a fresh log, dead records and orphaned temp files are
// swept — so the log's size tracks the live job set, not service
// uptime.
//
// All I/O goes through an injectable faultfs.FS, so tests can return
// errors, tear writes short, and crash at every possible instant to
// prove each one recoverable. Every error returned by this package
// unwraps to guard.ErrStore.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"serretime/internal/faultfs"
	"serretime/internal/guard"
)

// SyncPolicy says when the WAL (and payload files) are fsynced.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs the WAL after every append and every payload
	// before its rename: any journaled transition survives a power cut.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncEvery: the
	// window of un-persisted transitions is bounded by that duration.
	SyncInterval
	// SyncNever never fsyncs; the OS flushes when it pleases. Replay
	// still recovers whatever made it to disk.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
}

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, guard.Optionf("store", "fsync", "unknown policy %q (want always, interval or never)", s)
}

// ResultMeta is the result metadata journaled with a done transition and
// restored on recovery.
type ResultMeta struct {
	// Tier is the degradation tier that answered (serretime.Tier as int).
	Tier int
	// Degraded reports whether a weaker tier than requested answered.
	Degraded bool
	// DeltaSER is the relative SER change in percent.
	DeltaSER float64
}

// RecoveredJob is one job reconstructed by Recover.
type RecoveredJob struct {
	ID   string
	Name string
	// OptKey is the canonical option key journaled at submission; the
	// service cross-checks it against the re-derived key before
	// re-enqueueing.
	OptKey string
	// Opts is the service's opaque serialized options blob.
	Opts []byte
	// Done reports a finished job: Result and Meta are set, Netlist is
	// nil. A pending job (queued or running at crash time) carries its
	// Netlist for re-solving instead.
	Done    bool
	Result  []byte
	Meta    ResultMeta
	Netlist []byte
	// Trace is the job's persisted span-tree document (telemetry
	// TraceDoc JSON), set for finished jobs that journaled one. Traces
	// are advisory: a corrupt trace is quarantined but the job itself is
	// still served.
	Trace []byte
}

// Stats summarizes one recovery replay.
type Stats struct {
	// Records is the number of intact WAL records replayed.
	Records int
	// CorruptRecords counts records that failed their CRC or JSON decode
	// before the tail.
	CorruptRecords int
	// TruncatedTail reports that the final record was torn — the normal
	// artifact of a crash mid-append.
	TruncatedTail bool
	// Finished and Requeued are the jobs handed back: servable results
	// and re-solvable submissions.
	Finished int
	Requeued int
	// Quarantined counts payloads whose checksum did not match the
	// journal (or that were missing); they are moved aside and never
	// served.
	Quarantined int
	// Evicted counts jobs dropped by replay (explicitly evicted, failed,
	// or unrecoverable).
	Evicted int
	// TempsSwept counts orphaned atomic-write temp files removed.
	TempsSwept int
}

// Options configures Open.
type Options struct {
	// Dir is the data directory; it is created if absent.
	Dir string
	// FS is the filesystem layer; nil means the real one.
	FS faultfs.FS
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery bounds the un-synced window under SyncInterval
	// (default 100ms).
	SyncEvery time.Duration
}

// WAL record operations.
const (
	opSubmitted = "submitted"
	opRunning   = "running"
	opDone      = "done"
	opFailed    = "failed"
	opEvicted   = "evicted"
)

// record is one WAL line. Payload bytes never live in the log — only
// their SHA-256, so the log stays small and a torn payload can be
// detected independently of a torn log.
type record struct {
	Op       string  `json:"op"`
	ID       string  `json:"id"`
	Name     string  `json:"name,omitempty"`
	OptKey   string  `json:"optkey,omitempty"`
	Opts     []byte  `json:"opts,omitempty"`
	NetSHA   string  `json:"netsha,omitempty"`
	ResSHA   string  `json:"ressha,omitempty"`
	TraceSHA string  `json:"trasha,omitempty"`
	Tier     int     `json:"tier,omitempty"`
	Degraded bool    `json:"degraded,omitempty"`
	DeltaSER float64 `json:"dser,omitempty"`
	Class    string  `json:"class,omitempty"`
	Msg      string  `json:"msg,omitempty"`
}

// Disk is the WAL-backed store. Create with Open, then call Recover
// exactly once before journaling. All methods are safe for concurrent
// use; appends are serialized, so WAL order is the order journal calls
// were made in.
type Disk struct {
	dir    string
	fs     faultfs.FS
	policy SyncPolicy
	every  time.Duration

	mu       sync.Mutex
	wal      faultfs.File
	lastSync time.Time
	closed   bool
}

// Layout helpers.
func (d *Disk) walPath() string             { return filepath.Join(d.dir, "wal.log") }
func (d *Disk) intakeDir() string           { return filepath.Join(d.dir, "intake") }
func (d *Disk) resultsDir() string          { return filepath.Join(d.dir, "results") }
func (d *Disk) quarantineDir() string       { return filepath.Join(d.dir, "quarantine") }
func (d *Disk) tracesDir() string           { return filepath.Join(d.dir, "traces") }
func (d *Disk) intakePath(id string) string { return filepath.Join(d.intakeDir(), id) }
func (d *Disk) resultPath(id string) string { return filepath.Join(d.resultsDir(), id) }
func (d *Disk) tracePath(id string) string  { return filepath.Join(d.tracesDir(), id) }

// TracesDir returns the directory of persisted per-job trace documents
// (one JSON file per finished job) — the input of seranalyze -tracedir.
func (d *Disk) TracesDir() string { return d.tracesDir() }

// Open prepares the data directory layout. Journaling requires a
// subsequent Recover (which also opens the appender), so a daemon can
// never silently skip replay.
func Open(o Options) (*Disk, error) {
	if o.Dir == "" {
		return nil, guard.Storef("open", "", fmt.Errorf("empty data dir"))
	}
	if o.FS == nil {
		o.FS = faultfs.OS()
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	d := &Disk{dir: o.Dir, fs: o.FS, policy: o.Sync, every: o.SyncEvery}
	for _, dir := range []string{o.Dir, d.intakeDir(), d.resultsDir(), d.quarantineDir(), d.tracesDir()} {
		if err := d.fs.MkdirAll(dir, 0o755); err != nil {
			return nil, guard.Storef("open", dir, err)
		}
	}
	return d, nil
}

// Dir returns the data directory.
func (d *Disk) Dir() string { return d.dir }

// Policy returns the fsync policy.
func (d *Disk) Policy() SyncPolicy { return d.policy }

func sha(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// append journals one record: CRC-framed JSON line, synced per policy.
func (d *Disk) append(r record) error {
	body, err := json.Marshal(r)
	if err != nil {
		return guard.Storef("wal.encode", d.walPath(), err)
	}
	line := make([]byte, 0, len(body)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(body))
	line = append(line, body...)
	line = append(line, '\n')

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return guard.Storef("wal.append", d.walPath(), fmt.Errorf("store closed"))
	}
	if d.wal == nil {
		return guard.Storef("wal.append", d.walPath(), fmt.Errorf("store not recovered"))
	}
	if _, err := d.wal.Write(line); err != nil {
		return guard.Storef("wal.append", d.walPath(), err)
	}
	d.fs.Crashpoint("store.wal.appended")
	switch d.policy {
	case SyncAlways:
		if err := d.wal.Sync(); err != nil {
			return guard.Storef("wal.sync", d.walPath(), err)
		}
	case SyncInterval:
		if now := time.Now(); now.Sub(d.lastSync) >= d.every {
			if err := d.wal.Sync(); err != nil {
				return guard.Storef("wal.sync", d.walPath(), err)
			}
			d.lastSync = now
		}
	}
	return nil
}

// putPayload writes a payload file atomically and returns its SHA-256.
func (d *Disk) putPayload(path string, payload []byte) (string, error) {
	err := faultfs.WriteAtomic(d.fs, path, 0o644, d.policy != SyncNever, func(w io.Writer) error {
		_, werr := w.Write(payload)
		return werr
	})
	if err != nil {
		return "", guard.Storef("payload.put", path, err)
	}
	return sha(payload), nil
}

// JournalSubmitted durably records an accepted job: the netlist payload
// (canonical .bench bytes) lands in intake/ first, then the submitted
// record — with the payload's checksum, the canonical option key and
// the service's opaque options blob — is appended. Ordering matters: a
// crash between the two leaves an orphaned payload (swept by the next
// recovery), never a journaled job without its input.
func (d *Disk) JournalSubmitted(id, name string, netlist, opts []byte, optKey string) error {
	netSHA, err := d.putPayload(d.intakePath(id), netlist)
	if err != nil {
		return err
	}
	d.fs.Crashpoint("store.intake.written")
	return d.append(record{
		Op: opSubmitted, ID: id, Name: name,
		OptKey: optKey, Opts: opts, NetSHA: netSHA,
	})
}

// JournalRunning records that a worker picked the job up. Purely
// informational for replay (running and queued jobs recover the same
// way: re-enqueued), but it makes the WAL a faithful lifecycle trace.
func (d *Disk) JournalRunning(id string) error {
	return d.append(record{Op: opRunning, ID: id})
}

// JournalDone persists a finished job: the result payload is written
// atomically into results/ (and the job's trace document, when present,
// into traces/), then the done record — carrying the payload checksums
// and the result metadata — is appended. A crash between the writes
// replays as a still-pending job (orphaned payloads are ignored and
// swept); after the append, the job is durably finished. The trace is
// advisory: a trace write failure downgrades to journaling the result
// without one rather than failing the job.
func (d *Disk) JournalDone(id string, meta ResultMeta, result, trace []byte) error {
	resSHA, err := d.putPayload(d.resultPath(id), result)
	if err != nil {
		return err
	}
	d.fs.Crashpoint("store.result.written")
	traceSHA := ""
	if len(trace) > 0 {
		if s, terr := d.putPayload(d.tracePath(id), trace); terr == nil {
			traceSHA = s
		}
	}
	return d.append(record{
		Op: opDone, ID: id, ResSHA: resSHA, TraceSHA: traceSHA,
		Tier: meta.Tier, Degraded: meta.Degraded, DeltaSER: meta.DeltaSER,
	})
}

// JournalFailed records a terminal failure. Failed jobs are not cache
// entries: replay drops them (and their intake payload), matching the
// service's drop-and-retry semantics for failed submissions.
func (d *Disk) JournalFailed(id, class, msg string) error {
	return d.append(record{Op: opFailed, ID: id, Class: class, Msg: msg})
}

// JournalEvicted records a cache eviction; replay forgets the job and
// the next compaction removes its payloads.
func (d *Disk) JournalEvicted(id string) error {
	return d.append(record{Op: opEvicted, ID: id})
}

// Close syncs and closes the WAL.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.wal == nil {
		return nil
	}
	var errs []error
	if d.policy != SyncNever {
		if err := d.wal.Sync(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := d.wal.Close(); err != nil {
		errs = append(errs, err)
	}
	d.wal = nil
	if len(errs) > 0 {
		return guard.Storef("close", d.walPath(), errs[0])
	}
	return nil
}

// jobState is the replay accumulator for one job.
type jobState struct {
	rec   record // latest submitted fields
	state string // last lifecycle op seen
	done  record // the done record, when state == done
}

// Recover replays the WAL, verifies every payload it intends to hand
// back, quarantines corruption, compacts the log, and opens the
// appender. It must be called exactly once, before any journaling.
//
// The returned jobs satisfy the recovery invariant: each is either Done
// with a checksum-verified result, or pending with a checksum-verified
// netlist. Anything else — failed, evicted, torn, corrupt — is counted
// in Stats and dropped.
func (d *Disk) Recover() ([]RecoveredJob, Stats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var st Stats
	if d.closed {
		return nil, st, guard.Storef("recover", d.walPath(), fmt.Errorf("store closed"))
	}
	if d.wal != nil {
		return nil, st, guard.Storef("recover", d.walPath(), fmt.Errorf("already recovered"))
	}

	jobs, order := d.replay(&st)

	var out []RecoveredJob
	live := make(map[string]bool, len(jobs))
	for _, id := range order {
		j := jobs[id]
		switch j.state {
		case opDone:
			rj, ok := d.recoverDone(id, j, &st)
			if ok {
				out = append(out, rj)
				live[id] = true
				if rj.Done {
					st.Finished++
				} else {
					st.Requeued++
				}
			} else {
				st.Evicted++
			}
		case opSubmitted, opRunning:
			rj, ok := d.recoverPending(id, j, &st)
			if ok {
				out = append(out, rj)
				live[id] = true
				st.Requeued++
			} else {
				st.Evicted++
			}
		default: // failed, evicted
			st.Evicted++
		}
	}

	// Compact: rewrite the live set into a fresh WAL and sweep
	// everything else. Compaction failures are not fatal — the old WAL
	// replays identically next boot — but an unopenable appender is.
	d.compact(out)
	d.sweep(live, &st)

	f, err := d.fs.OpenFile(d.walPath(), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, st, guard.Storef("recover.open-wal", d.walPath(), err)
	}
	d.wal = f
	d.lastSync = time.Now()
	return out, st, nil
}

// replay scans the WAL into per-job final states. Corrupt lines are
// counted; a corrupt *final* line is the expected torn-append artifact.
func (d *Disk) replay(st *Stats) (map[string]*jobState, []string) {
	jobs := make(map[string]*jobState)
	var order []string
	data, err := d.fs.ReadFile(d.walPath())
	if err != nil {
		return jobs, order // no WAL yet: empty store
	}
	lines := bytes.Split(data, []byte{'\n'})
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		r, ok := decodeLine(line)
		if !ok {
			// A bad final line is a torn append from the crash;
			// anything earlier is corruption worth counting.
			if i >= len(lines)-2 {
				st.TruncatedTail = true
			} else {
				st.CorruptRecords++
			}
			continue
		}
		st.Records++
		j := jobs[r.ID]
		if j == nil {
			j = &jobState{}
			jobs[r.ID] = j
			order = append(order, r.ID)
		}
		switch r.Op {
		case opSubmitted:
			j.rec = r
			j.state = opSubmitted
		case opRunning:
			if j.state == opSubmitted {
				j.state = opRunning
			}
		case opDone:
			j.done = r
			j.state = opDone
		case opFailed, opEvicted:
			j.state = r.Op
		default:
			st.CorruptRecords++
		}
	}
	return jobs, order
}

// decodeLine parses one CRC-framed record line.
func decodeLine(line []byte) (record, bool) {
	var r record
	if len(line) < 10 || line[8] != ' ' {
		return r, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return r, false
	}
	body := line[9:]
	if crc32.ChecksumIEEE(body) != want {
		return r, false
	}
	if err := json.Unmarshal(body, &r); err != nil || r.ID == "" || r.Op == "" {
		return r, false
	}
	return r, true
}

// verifyPayload reads a payload and checks its journaled checksum. A
// mismatch or a read failure quarantines the file.
func (d *Disk) verifyPayload(path, wantSHA string, st *Stats) ([]byte, bool) {
	data, err := d.fs.ReadFile(path)
	if err != nil || sha(data) != wantSHA {
		st.Quarantined++
		d.quarantine(path)
		return nil, false
	}
	return data, true
}

// quarantine moves a corrupt payload aside (best effort) so it is
// preserved for diagnosis but can never be served.
func (d *Disk) quarantine(path string) {
	dst := filepath.Join(d.quarantineDir(), filepath.Base(path))
	if err := d.fs.Rename(path, dst); err != nil {
		_ = d.fs.Remove(path)
	}
}

// recoverDone reconstructs a finished job: its result must re-hash to
// the journaled checksum; otherwise the result is quarantined and — if
// the intake payload is still intact — the job degrades to pending, so
// a corrupt result costs a re-solve, never a wrong answer or a loss.
func (d *Disk) recoverDone(id string, j *jobState, st *Stats) (RecoveredJob, bool) {
	result, ok := d.verifyPayload(d.resultPath(id), j.done.ResSHA, st)
	if ok {
		rj := RecoveredJob{
			ID:     id,
			Name:   j.rec.Name,
			OptKey: j.rec.OptKey,
			Opts:   j.rec.Opts,
			Done:   true,
			Result: result,
			Meta: ResultMeta{
				Tier:     j.done.Tier,
				Degraded: j.done.Degraded,
				DeltaSER: j.done.DeltaSER,
			},
		}
		// The trace is advisory: corruption quarantines the trace file
		// and is counted, but the verified result is still served.
		if j.done.TraceSHA != "" {
			rj.Trace, _ = d.verifyPayload(d.tracePath(id), j.done.TraceSHA, st)
		}
		return rj, true
	}
	return d.recoverPending(id, j, st)
}

// recoverPending reconstructs a queued/running job from its intake
// payload.
func (d *Disk) recoverPending(id string, j *jobState, st *Stats) (RecoveredJob, bool) {
	if j.rec.NetSHA == "" {
		// Lifecycle records without a surviving submitted record (lost
		// to corruption): nothing to re-solve.
		return RecoveredJob{}, false
	}
	netlist, ok := d.verifyPayload(d.intakePath(id), j.rec.NetSHA, st)
	if !ok {
		return RecoveredJob{}, false
	}
	return RecoveredJob{
		ID:      id,
		Name:    j.rec.Name,
		OptKey:  j.rec.OptKey,
		Opts:    j.rec.Opts,
		Netlist: netlist,
	}, true
}

// compact rewrites the WAL to exactly the live job set: a submitted
// record per job plus a done record for the finished ones. The rewrite
// is atomic (temp + rename), so a crash mid-compaction replays the old
// log.
func (d *Disk) compact(jobs []RecoveredJob) {
	err := faultfs.WriteAtomic(d.fs, d.walPath(), 0o644, d.policy != SyncNever, func(w io.Writer) error {
		for _, j := range jobs {
			sub := record{
				Op: opSubmitted, ID: j.ID, Name: j.Name,
				OptKey: j.OptKey, Opts: j.Opts,
			}
			if !j.Done {
				// Finished jobs replay from their result alone; only
				// pending jobs need a verifiable netlist checksum.
				sub.NetSHA = sha(j.Netlist)
			}
			if err := writeLine(w, sub); err != nil {
				return err
			}
			if j.Done {
				done := record{
					Op: opDone, ID: j.ID, ResSHA: sha(j.Result),
					Tier: j.Meta.Tier, Degraded: j.Meta.Degraded, DeltaSER: j.Meta.DeltaSER,
				}
				if len(j.Trace) > 0 {
					done.TraceSHA = sha(j.Trace)
				}
				if err := writeLine(w, done); err != nil {
					return err
				}
			}
		}
		return nil
	})
	_ = err // best effort: the uncompacted WAL replays identically
}

func writeLine(w io.Writer, r record) error {
	body, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%08x ", crc32.ChecksumIEEE(body)); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	_, err = w.Write([]byte{'\n'})
	return err
}

// sweep removes payloads of dead jobs and orphaned atomic-write temp
// files (best effort).
func (d *Disk) sweep(live map[string]bool, st *Stats) {
	for _, dir := range []string{d.dir, d.intakeDir(), d.resultsDir(), d.tracesDir()} {
		entries, err := d.fs.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			name := e.Name()
			switch {
			case faultfs.IsTemp(name):
				if d.fs.Remove(filepath.Join(dir, name)) == nil {
					st.TempsSwept++
				}
			case dir != d.dir && !e.IsDir() && !live[name]:
				_ = d.fs.Remove(filepath.Join(dir, name))
			}
		}
	}
}

// ReadResult re-reads a finished job's payload from disk, verifying it
// against the given checksum — used by tests and diagnostics; the
// service serves recovered results from memory.
func (d *Disk) ReadResult(id, wantSHA string) ([]byte, error) {
	data, err := d.fs.ReadFile(d.resultPath(id))
	if err != nil {
		return nil, guard.Storef("result.read", d.resultPath(id), err)
	}
	if got := sha(data); got != wantSHA {
		return nil, guard.Storef("result.read", d.resultPath(id),
			fmt.Errorf("checksum mismatch: want %.12s, got %.12s", wantSHA, got))
	}
	return data, nil
}
