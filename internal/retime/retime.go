// Package retime implements the classic retiming substrate the paper
// builds on: Leiserson–Saxe min-period retiming (the FEAS algorithm,
// ref. [24]), a setup+hold-aware min-period retiming in the spirit of Lin &
// Zhou (ref. [23]), and the Section V initialization that produces the
// (Φ, Rmin) parameters and initial feasible retiming for MinObsWin.
package retime

import (
	"context"
	"fmt"
	"math"

	"serretime/internal/elw"
	"serretime/internal/graph"
	"serretime/internal/guard"
	"serretime/internal/telemetry"
)

const eps = 1e-9

// grid is the delay quantum: all delays produced by graph.TypeDelays are
// multiples of 0.5, so achievable clock periods lie on this grid and the
// binary search over periods is exact.
const grid = 0.5

// Feasible reports whether retiming r meets clock period phi with setup
// time ts: every combinational arrival time is at most phi − ts.
func Feasible(g *graph.Graph, r graph.Retiming, phi, ts float64) bool {
	if g.CheckLegal(r) != nil {
		return false
	}
	_, crit, err := g.ArrivalTimes(r)
	if err != nil {
		return false
	}
	return crit <= phi-ts+eps
}

// FEAS runs the Leiserson–Saxe relaxation for the target period phi:
// it repeatedly increments r(v) (moving registers backward, from fanouts
// to fanins) for every vertex whose arrival time exceeds phi − ts.
//
// The host is never retimed (registers cannot move into the environment),
// so the relaxation reports failure when a violating vertex drives a
// primary output combinationally; FEASBackward covers the symmetric cases.
// Together they form a sound (always-legal) but possibly conservative
// min-period search; see MinPeriod.
// feasPassCap bounds the relaxation pass count. The exact Leiserson–Saxe
// bound is |V| passes, but convergence in practice tracks the logic depth;
// capping keeps infeasible probes cheap on very large graphs at the cost
// of conservatively rejecting some barely-feasible periods (the search
// then settles on a slightly larger, still-valid period).
func feasPassCap(g *graph.Graph) int {
	n := g.NumVertices() + 1
	if n > 512 {
		n = 512
	}
	return n
}

func FEAS(g *graph.Graph, phi, ts float64) (graph.Retiming, bool) {
	r, ok, _ := feasCtx(context.Background(), g, phi, ts)
	return r, ok
}

// feasCtx is FEAS with a cancellation checkpoint per relaxation pass. The
// error is non-nil only for cancellation (unwrapping to guard.ErrTimeout);
// plain infeasibility stays (nil, false, nil).
func feasCtx(ctx context.Context, g *graph.Graph, phi, ts float64) (graph.Retiming, bool, error) {
	r := graph.NewRetiming(g)
	limit := feasPassCap(g)
	for it := 0; it < limit; it++ {
		if cerr := guard.CheckpointIn(ctx, "retime.FEAS", telemetry.PhaseInit.String()); cerr != nil {
			return nil, false, cerr
		}
		arr, _, err := g.ArrivalTimes(r)
		if err != nil {
			return nil, false, nil
		}
		violated := false
		for v := 1; v < g.NumVertices(); v++ {
			if arr[v] <= phi-ts+eps {
				continue
			}
			// Incrementing v removes a register from each of its
			// out-edges; a zero-weight edge into the host blocks the move.
			for _, oe := range g.Out(graph.VertexID(v)) {
				if g.Edge(oe).To == graph.Host && g.WR(oe, r) == 0 {
					return nil, false, nil
				}
			}
			r[v]++
			violated = true
		}
		if !violated {
			return r, true, nil
		}
	}
	return nil, false, nil
}

// FEASBackward is the mirror image of FEAS: it computes required times
// from the sink side and decrements r(v) (moving registers forward) for
// every vertex whose backward path exceeds phi − ts. It covers circuits
// whose critical paths end at primary outputs (where FEAS is blocked).
func FEASBackward(g *graph.Graph, phi, ts float64) (graph.Retiming, bool) {
	r, ok, _ := feasBackwardCtx(context.Background(), g, phi, ts)
	return r, ok
}

func feasBackwardCtx(ctx context.Context, g *graph.Graph, phi, ts float64) (graph.Retiming, bool, error) {
	r := graph.NewRetiming(g)
	limit := feasPassCap(g)
	for it := 0; it < limit; it++ {
		if cerr := guard.CheckpointIn(ctx, "retime.FEASBackward", telemetry.PhaseInit.String()); cerr != nil {
			return nil, false, cerr
		}
		rarr, err := reverseArrivals(g, r)
		if err != nil {
			return nil, false, nil
		}
		violated := false
		for v := 1; v < g.NumVertices(); v++ {
			if rarr[v] <= phi-ts+eps {
				continue
			}
			// Decrementing v removes a register from each of its
			// in-edges; a zero-weight edge from the host blocks the move.
			for _, ie := range g.In(graph.VertexID(v)) {
				if g.Edge(ie).From == graph.Host && g.WR(ie, r) == 0 {
					return nil, false, nil
				}
			}
			r[v]--
			violated = true
		}
		if !violated {
			return r, true, nil
		}
	}
	return nil, false, nil
}

// reverseArrivals computes, for each vertex v, the maximum delay of a
// zero-weight path starting at v (inclusive of d(v)).
func reverseArrivals(g *graph.Graph, r graph.Retiming) ([]float64, error) {
	order, err := g.ZeroWeightTopo(r)
	if err != nil {
		return nil, err
	}
	rarr := make([]float64, g.NumVertices())
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		a := 0.0
		for _, eid := range g.Out(v) {
			e := g.Edge(eid)
			if e.To == graph.Host || g.WR(eid, r) != 0 {
				continue
			}
			if rarr[e.To] > a {
				a = rarr[e.To]
			}
		}
		rarr[v] = a + g.Delay(v)
	}
	return rarr, nil
}

// tryPeriod attempts phi with both relaxation directions. Forward moves
// (FEASBackward) are preferred: they never pull registers out of the
// environment and tend to reduce the register count.
func tryPeriod(ctx context.Context, g *graph.Graph, phi, ts float64) (graph.Retiming, bool, error) {
	if r, ok, err := feasBackwardCtx(ctx, g, phi, ts); ok || err != nil {
		return r, ok, err
	}
	return feasCtx(ctx, g, phi, ts)
}

// MinPeriod finds the smallest clock period (on the delay grid) reachable
// by the FEAS/FEASBackward relaxations and a retiming realizing it. This
// is an upper bound on the true minimum period: boundary registers pinned
// at the environment can make some periods unreachable by single-direction
// relaxation.
func MinPeriod(g *graph.Graph, ts float64) (graph.Retiming, float64, error) {
	return minPeriodCtx(context.Background(), g, ts)
}

func minPeriodCtx(ctx context.Context, g *graph.Graph, ts float64) (graph.Retiming, float64, error) {
	_, crit, err := g.ArrivalTimes(graph.NewRetiming(g))
	if err != nil {
		return nil, 0, err
	}
	hi := snapUp(crit + ts) // the unretimed circuit achieves this
	lo := snapUp(g.MaxDelay() + ts)
	if lo > hi {
		lo = hi
	}
	// Binary search on the 0.5 grid.
	for lo < hi-eps {
		mid := snapUp(lo + math.Floor((hi-lo)/(2*grid))*grid)
		ok, cerr := probe(ctx, g, mid, ts)
		if cerr != nil {
			return nil, 0, cerr
		}
		if ok {
			hi = mid
		} else {
			lo = mid + grid
		}
	}
	r, ok, cerr := tryPeriod(ctx, g, hi, ts)
	if cerr != nil {
		return nil, 0, cerr
	}
	if !ok {
		return graph.NewRetiming(g), snapUp(crit + ts), nil
	}
	return r, hi, nil
}

func probe(ctx context.Context, g *graph.Graph, phi, ts float64) (bool, error) {
	_, ok, err := tryPeriod(ctx, g, phi, ts)
	return ok, err
}

func snapUp(x float64) float64 { return math.Ceil(x/grid-eps) * grid }

// SetupHold attempts a retiming meeting period phi under both setup (ts)
// and hold (th) constraints: every register-launched longest path fits in
// phi − ts and every register-launched shortest path is at least th.
// It starts from a setup-feasible min-period solution and alternates hold
// repairs (moving a short-path register backward or forward across a
// gate) with FEAS-style setup re-repairs; it can fail on reconvergent
// structures, in which case ok is false (the caller falls back to
// MinPeriod, as the paper prescribes).
func SetupHold(g *graph.Graph, phi, ts, th float64) (graph.Retiming, bool) {
	r, ok, _ := setupHoldCtx(context.Background(), g, phi, ts, th, telemetry.Nop)
	return r, ok
}

func setupHoldCtx(ctx context.Context, g *graph.Graph, phi, ts, th float64, rec telemetry.Recorder) (graph.Retiming, bool, error) {
	r, ok, cerr := tryPeriod(ctx, g, phi, ts)
	if cerr != nil {
		return nil, false, cerr
	}
	if !ok {
		return nil, false, nil
	}
	p := elw.Params{Phi: phi, Ts: ts, Th: th}
	limit := 4*feasPassCap(g) + 16
	bestHold, stall := 1<<30, 0
	for it := 0; it < limit; it++ {
		if cerr := guard.CheckpointIn(ctx, "retime.SetupHold", telemetry.PhaseInit.String()); cerr != nil {
			return nil, false, cerr
		}
		arr, _, err := g.ArrivalTimes(r)
		if err != nil {
			return nil, false, nil
		}
		violated := false
		for v := 1; v < g.NumVertices(); v++ {
			if arr[v] > phi-ts+eps {
				// Hold repairs may have recreated a long path; splitting
				// it needs a register from v's out-edges (blocked at the
				// environment).
				for _, oe := range g.Out(graph.VertexID(v)) {
					if g.Edge(oe).To == graph.Host && g.WR(oe, r) == 0 {
						return nil, false, nil
					}
				}
				r[v]++
				violated = true
			}
		}
		if violated {
			continue
		}
		lab, err := elw.ComputeLabelsRec(g, r, p, rec)
		if err != nil {
			return nil, false, nil
		}
		// Batch: repair every currently-violated edge in one pass (labels
		// go stale as repairs move registers, but the loop re-verifies).
		repaired, holdV := 0, 0
		for i := 0; i < g.NumEdges(); i++ {
			eid := graph.EdgeID(i)
			e := g.Edge(eid)
			if e.To == graph.Host || g.WR(eid, r) <= 0 || !lab.HasWindow[e.To] {
				continue
			}
			if lab.HoldSlack(g, p, eid) >= th-eps {
				continue
			}
			holdV++
			if holdRepair(g, r, eid) {
				repaired++
			}
		}
		if holdV == 0 {
			if g.CheckLegal(r) != nil {
				return nil, false, nil
			}
			return r, true, nil
		}
		if repaired == 0 {
			return nil, false, nil
		}
		// Stall detection: repairs that never reduce the violation count
		// are cycling (clustered registers with nowhere to go).
		if holdV < bestHold {
			bestHold, stall = holdV, 0
		} else if stall++; stall > 50 {
			return nil, false, nil
		}
	}
	return nil, false, nil
}

// holdRepair lengthens the short register-launched path on edge eid by
// moving a register forward across the sink gate (spreading clustered
// registers into later logic), or, failing that, backward across the
// source. Reports whether a legal move was found.
func holdRepair(g *graph.Graph, r graph.Retiming, eid graph.EdgeID) bool {
	e := g.Edge(eid)
	// Forward across the sink: legal iff every in-edge of To keeps
	// w_r >= 0 after r(To)--.
	if e.To != graph.Host {
		ok := true
		for _, ie := range g.In(e.To) {
			if g.WR(ie, r) < 1 {
				ok = false
				break
			}
		}
		if ok {
			r[e.To]--
			return true
		}
	}
	// Backward across the source: legal iff every out-edge of From keeps
	// w_r >= 0 after r(From)++.
	if e.From != graph.Host {
		ok := true
		for _, oe := range g.Out(e.From) {
			if g.WR(oe, r) < 1 {
				ok = false
				break
			}
		}
		if ok {
			r[e.From]++
			return true
		}
	}
	return false
}

// MinPeriodSetupHold finds the smallest period (on the delay grid) for
// which SetupHold succeeds.
func MinPeriodSetupHold(g *graph.Graph, ts, th float64) (graph.Retiming, float64, bool) {
	r, phi, ok, _ := minPeriodSetupHoldCtx(context.Background(), g, ts, th, telemetry.Nop)
	return r, phi, ok
}

func minPeriodSetupHoldCtx(ctx context.Context, g *graph.Graph, ts, th float64, rec telemetry.Recorder) (graph.Retiming, float64, bool, error) {
	_, crit, err := g.ArrivalTimes(graph.NewRetiming(g))
	if err != nil {
		return nil, 0, false, nil
	}
	lo := snapUp(g.MaxDelay() + ts)
	hi := snapUp(crit + ts)
	if lo > hi {
		lo = hi
	}
	if _, ok, cerr := setupHoldCtx(ctx, g, hi, ts, th, rec); cerr != nil {
		return nil, 0, false, cerr
	} else if !ok {
		// Try some slack above the unretimed critical path before giving
		// up: hold repairs may need headroom.
		hi2 := snapUp(hi * 1.5)
		if _, ok, cerr := setupHoldCtx(ctx, g, hi2, ts, th, rec); cerr != nil {
			return nil, 0, false, cerr
		} else if !ok {
			return nil, 0, false, nil
		}
		lo, hi = hi+grid, hi2
	}
	for lo < hi-eps {
		mid := snapUp(lo + math.Floor((hi-lo)/(2*grid))*grid)
		_, ok, cerr := setupHoldCtx(ctx, g, mid, ts, th, rec)
		if cerr != nil {
			return nil, 0, false, cerr
		}
		if ok {
			hi = mid
		} else {
			lo = mid + grid
		}
	}
	r, ok, cerr := setupHoldCtx(ctx, g, hi, ts, th, rec)
	return r, hi, ok, cerr
}

// Options configures Initialize.
type Options struct {
	// Ts and Th are the setup and hold times (paper: 0 and 2).
	Ts, Th float64
	// Epsilon is the relaxation applied to the minimal period (paper: 0.10).
	Epsilon float64
	// Recorder receives the initialization's telemetry: one init span over
	// the whole Section V computation plus the elw-recompute spans of the
	// hold-repair loops. nil records nothing.
	Recorder telemetry.Recorder
	// Workers is threaded uniformly through the pipeline's option structs
	// (see serretime.RetimeOptions.Workers). The Section V initialization
	// has no parallel section today — its min-period binary search and
	// hold-repair loops are inherently sequential — so the field is
	// reserved: accepted, ignored, and guaranteed not to change results.
	Workers int
}

// DefaultOptions matches Section V / VI of the paper.
func DefaultOptions() Options { return Options{Ts: 0, Th: 2, Epsilon: 0.10} }

// Init is the starting point Section V hands to MinObsWin.
type Init struct {
	// R is the initial feasible retiming of the input graph.
	R graph.Retiming
	// Phi is the relaxed clock period (1+ε)·Φmin.
	Phi float64
	// PhiMin is the minimal period found before relaxation.
	PhiMin float64
	// Rmin is the shortest-path bound for P2'.
	Rmin float64
	// SetupHoldOK records whether the setup+hold retiming succeeded; when
	// false, the paper's fallback was used: plain min-period retiming and
	// Rmin equal to the minimal gate delay (P2' then never binds).
	SetupHoldOK bool
	// Labels are the L/R boundary labels of (g, R) at the relaxed period
	// Phi, computed as a by-product of the Rmin selection. Because
	// graph.Rebase preserves vertex/edge identities and w_r, they are
	// bit-valid for the rebased graph at the zero retiming, where they
	// seed the solver state (core.Options.SeedLabels) so the optimizer's
	// first tentative move patches instead of recomputing. nil when the
	// setup+hold initialization fell back (SetupHoldOK false).
	Labels *elw.Labels
}

// Initialize computes the initial retiming, relaxed clock period Φ and
// shortest-path bound Rmin per Section V of the paper.
func Initialize(g *graph.Graph, o Options) (*Init, error) {
	return InitializeCtx(context.Background(), g, o)
}

// InitializeCtx is Initialize under cooperative cancellation: the
// min-period searches and hold-repair loops check ctx and abort with an
// error unwrapping to guard.ErrTimeout once it is done.
func InitializeCtx(ctx context.Context, g *graph.Graph, o Options) (*Init, error) {
	rec := telemetry.OrNop(o.Recorder)
	rec.SpanStart(telemetry.PhaseInit)
	init, err := initializeCtx(ctx, g, o, rec)
	rec.SpanEnd(telemetry.PhaseInit, err)
	return init, err
}

func initializeCtx(ctx context.Context, g *graph.Graph, o Options, rec telemetry.Recorder) (*Init, error) {
	if o.Epsilon < 0 {
		return nil, fmt.Errorf("retime: negative epsilon %g", o.Epsilon)
	}
	init := &Init{}
	r, phi, ok, cerr := minPeriodSetupHoldCtx(ctx, g, o.Ts, o.Th, rec)
	if cerr != nil {
		return nil, cerr
	}
	if ok {
		init.R = r
		init.PhiMin = phi
		init.SetupHoldOK = true
		init.Phi = snapUp(phi * (1 + o.Epsilon))
		// Rmin: the minimal register-launched shortest path of the
		// initialized circuit (independent of Φ).
		p := elw.Params{Phi: init.Phi, Ts: o.Ts, Th: o.Th}
		lab, err := elw.ComputeLabelsRec(g, r, p, rec)
		if err != nil {
			return nil, err
		}
		if slack, found := lab.MinHoldSlack(g, r, p); found {
			init.Rmin = slack
		} else {
			init.Rmin = g.MinDelay()
		}
		init.Labels = lab
		return init, nil
	}
	r, phi, err := minPeriodCtx(ctx, g, o.Ts)
	if err != nil {
		return nil, err
	}
	init.R = r
	init.PhiMin = phi
	init.SetupHoldOK = false
	init.Phi = snapUp(phi * (1 + o.Epsilon))
	init.Rmin = g.MinDelay()
	return init, nil
}
