package retime

import (
	"math/rand"
	"testing"
	"testing/quick"

	"serretime/internal/benchfmt"
	"serretime/internal/elw"
	"serretime/internal/graph"
)

// pipelineGraph builds host -2-> A(1) -0-> B(1) -0-> C(1) -0-> host:
// two boundary registers that can be pushed in to split the 3-delay path.
func pipelineGraph() *graph.Graph {
	b := graph.NewBuilder()
	a := b.AddVertex("A", 1)
	bb := b.AddVertex("B", 1)
	c := b.AddVertex("C", 1)
	b.AddEdge(graph.Host, a, 2)
	b.AddEdge(a, bb, 0)
	b.AddEdge(bb, c, 0)
	b.AddEdge(c, graph.Host, 0)
	return b.Build()
}

func TestFeasible(t *testing.T) {
	g := pipelineGraph()
	r := graph.NewRetiming(g)
	if !Feasible(g, r, 3, 0) {
		t.Fatal("period 3 must be feasible unretimed")
	}
	if Feasible(g, r, 2.5, 0) {
		t.Fatal("period 2.5 must be infeasible unretimed")
	}
}

func TestFEASBackwardSplitsPipeline(t *testing.T) {
	g := pipelineGraph()
	// Period 1 requires both boundary registers inside: A|B|C each alone.
	r, ok := FEASBackward(g, 1, 0)
	if !ok {
		t.Fatal("FEASBackward failed at period 1")
	}
	if err := g.CheckLegal(r); err != nil {
		t.Fatal(err)
	}
	if !Feasible(g, r, 1, 0) {
		t.Fatal("result does not meet period 1")
	}
}

func TestFEASBlockedAtOutput(t *testing.T) {
	// Forward FEAS cannot push registers past the PO; it must report
	// failure rather than produce an illegal retiming.
	g := pipelineGraph()
	if _, ok := FEAS(g, 1, 0); ok {
		t.Fatal("FEAS claimed success where the PO blocks increments")
	}
}

func TestMinPeriodPipeline(t *testing.T) {
	g := pipelineGraph()
	r, phi, err := MinPeriod(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if phi != 1 {
		t.Fatalf("min period = %g, want 1", phi)
	}
	if !Feasible(g, r, phi, 0) {
		t.Fatal("returned retiming infeasible at returned period")
	}
}

func TestMinPeriodCombinationalBound(t *testing.T) {
	// A pure PI->PO combinational path bounds the period from below.
	b := graph.NewBuilder()
	a := b.AddVertex("A", 2)
	bb := b.AddVertex("B", 3)
	b.AddEdge(graph.Host, a, 0)
	b.AddEdge(a, bb, 0)
	b.AddEdge(bb, graph.Host, 0)
	g := b.Build()
	_, phi, err := MinPeriod(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if phi != 5 {
		t.Fatalf("min period = %g, want 5 (unsplittable)", phi)
	}
}

func TestMinPeriodWithSetup(t *testing.T) {
	g := pipelineGraph()
	_, phi, err := MinPeriod(g, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if phi != 2.5 {
		t.Fatalf("min period with Ts=1.5 = %g, want 2.5", phi)
	}
}

func TestSetupHoldSimple(t *testing.T) {
	// host -1-> A(3) -1-> B(3) -0-> host, hold th=2: every register-
	// launched shortest path is >= 3 already.
	b := graph.NewBuilder()
	a := b.AddVertex("A", 3)
	bb := b.AddVertex("B", 3)
	b.AddEdge(graph.Host, a, 1)
	b.AddEdge(a, bb, 1)
	b.AddEdge(bb, graph.Host, 0)
	g := b.Build()
	r, ok := SetupHold(g, 4, 0, 2)
	if !ok {
		t.Fatal("SetupHold failed on an already-feasible circuit")
	}
	if err := g.CheckLegal(r); err != nil {
		t.Fatal(err)
	}
}

func TestSetupHoldRepairsShortPath(t *testing.T) {
	// host -0-> A(5) -1-> B(1) -1-> C(5) -0-> host with th=2: the register
	// chain B sits between creates a 1-delay register-to-register path
	// (through B); repair must move a register.
	b := graph.NewBuilder()
	a := b.AddVertex("A", 5)
	bb := b.AddVertex("B", 1)
	c := b.AddVertex("C", 5)
	b.AddEdge(graph.Host, a, 0)
	b.AddEdge(a, bb, 1)
	b.AddEdge(bb, c, 1)
	b.AddEdge(c, graph.Host, 0)
	g := b.Build()
	p := elw.Params{Phi: 11, Ts: 0, Th: 2}
	lab, err := elw.ComputeLabels(g, graph.NewRetiming(g), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lab.CheckP2(g, graph.NewRetiming(g), p, 2); ok {
		t.Fatal("test premise broken: no hold violation unretimed")
	}
	r, ok := SetupHold(g, 11, 0, 2)
	if !ok {
		t.Skip("heuristic could not repair; acceptable fallback path")
	}
	lab, err = elw.ComputeLabels(g, r, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lab.CheckP2(g, r, p, 2); !ok {
		t.Fatal("hold violation survived successful SetupHold")
	}
}

func TestInitializePipeline(t *testing.T) {
	g := pipelineGraph()
	init, err := Initialize(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckLegal(init.R); err != nil {
		t.Fatal(err)
	}
	if init.Phi < init.PhiMin {
		t.Fatalf("relaxed phi %g < phiMin %g", init.Phi, init.PhiMin)
	}
	if !Feasible(g, init.R, init.Phi, 0) {
		t.Fatal("initialization infeasible at relaxed period")
	}
	if init.Rmin <= 0 {
		t.Fatalf("Rmin = %g", init.Rmin)
	}
	// P2' must hold at the initialization point.
	p := elw.Params{Phi: init.Phi, Ts: 0, Th: 2}
	lab, err := elw.ComputeLabels(g, init.R, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lab.CheckP2(g, init.R, p, init.Rmin); !ok {
		t.Fatal("P2' violated at initialization")
	}
}

func TestInitializeS27(t *testing.T) {
	c, err := benchfmt.ParseFile("../../testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromCircuit(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	init, err := Initialize(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckLegal(init.R); err != nil {
		t.Fatal(err)
	}
	if !Feasible(g, init.R, init.Phi, 0) {
		t.Fatal("s27 initialization infeasible")
	}
}

func TestInitializeRejectsNegativeEpsilon(t *testing.T) {
	g := pipelineGraph()
	if _, err := Initialize(g, Options{Epsilon: -1}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}

// randomGraph mirrors the elw test helper.
func randomGraph(r *rand.Rand, n int) *graph.Graph {
	b := graph.NewBuilder()
	vs := make([]graph.VertexID, n)
	for i := 0; i < n; i++ {
		vs[i] = b.AddVertex("v", 1+float64(r.Intn(5)))
	}
	b.AddEdge(graph.Host, vs[0], int32(r.Intn(2)))
	for i := 1; i < n; i++ {
		b.AddEdge(vs[r.Intn(i)], vs[i], int32(r.Intn(2)))
		if r.Intn(2) == 0 {
			b.AddEdge(vs[r.Intn(i)], vs[i], int32(r.Intn(3)))
		}
		if r.Intn(4) == 0 {
			b.AddEdge(vs[i], vs[r.Intn(i+1)], 1+int32(r.Intn(2)))
		}
	}
	b.AddEdge(vs[n-1], graph.Host, 0)
	return b.Build()
}

func TestPropertyMinPeriodSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(25))
		if g.Check() != nil {
			return true
		}
		r, phi, err := MinPeriod(g, 0)
		if err != nil {
			return false
		}
		if g.CheckLegal(r) != nil {
			return false
		}
		if !Feasible(g, r, phi, 0) {
			return false
		}
		// Never worse than the unretimed circuit.
		_, crit, err := g.ArrivalTimes(graph.NewRetiming(g))
		if err != nil {
			return false
		}
		return phi <= snapUp(crit)+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyInitializeFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(20))
		if g.Check() != nil {
			return true
		}
		init, err := Initialize(g, DefaultOptions())
		if err != nil {
			return false
		}
		if g.CheckLegal(init.R) != nil {
			return false
		}
		if !Feasible(g, init.R, init.Phi, 0) {
			return false
		}
		// When setup+hold succeeded, P2' must hold at Rmin.
		if init.SetupHoldOK {
			p := elw.Params{Phi: init.Phi, Ts: 0, Th: 2}
			lab, err := elw.ComputeLabels(g, init.R, p)
			if err != nil {
				return false
			}
			if _, ok := lab.CheckP2(g, init.R, p, init.Rmin); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
