package gen

import "fmt"

// TableISpec describes one row of the paper's Table I: the circuit
// statistics published for the ISCAS89/ITC99 benchmarks, used to
// parameterize the synthetic substitutes, plus the paper's reported
// numbers for EXPERIMENTS.md comparisons.
type TableISpec struct {
	Spec
	// PaperPhi is the clock period constraint Φ reported in Table I.
	PaperPhi float64
	// PaperSER is the original circuit's SER reported in Table I.
	PaperSER float64
	// PaperDSERRef / PaperDSERNew are the relative SER changes (%) of
	// Efficient MinObs and MinObsWin.
	PaperDSERRef, PaperDSERNew float64
	// PaperDFFRef / PaperDFFNew are the register count changes (%).
	PaperDFFRef, PaperDFFNew float64
	// PaperRatio is SER_ref/SER_new (%).
	PaperRatio float64
	// PaperJ is the reported iteration count of MinObsWin.
	PaperJ int
}

// TableI lists the 21 circuits of the paper's Table I. Depth is derived
// from the published Φ and the circuit's average fanin (see spec), so the
// synthetic substitute reproduces the clock-period regime.
var TableI = []TableISpec{
	{Spec: spec("s13207", 7952, 10896, 1508, 117), PaperPhi: 117, PaperSER: 7.72e-3, PaperDFFRef: -43.56, PaperDSERRef: -23.14, PaperDFFNew: -24.53, PaperDSERNew: -47.02, PaperRatio: 122, PaperJ: 2},
	{Spec: spec("s15850.1", 9773, 13566, 1567, 111), PaperPhi: 111, PaperSER: 9.77e-3, PaperDFFRef: -54.05, PaperDSERRef: -31.71, PaperDFFNew: -54.05, PaperDSERNew: -31.71, PaperRatio: 100, PaperJ: 9},
	{Spec: spec("s35932", 16066, 28588, 5814, 145), PaperPhi: 145, PaperSER: 2.42e-2, PaperDFFRef: -45.37, PaperDSERRef: -35.45, PaperDFFNew: -34.76, PaperDSERNew: -66.75, PaperRatio: 194, PaperJ: 4},
	{Spec: spec("s38417", 22180, 31127, 2806, 81), PaperPhi: 81, PaperSER: 1.59e-2, PaperDFFRef: 11.51, PaperDSERRef: 2.92, PaperDFFNew: 13.61, PaperDSERNew: -8.62, PaperRatio: 113, PaperJ: 4},
	{Spec: spec("s38584.1", 19254, 33060, 7371, 262), PaperPhi: 262, PaperSER: 2.48e-2, PaperDFFRef: -32.33, PaperDSERRef: -33.23, PaperDFFNew: -31.96, PaperDSERNew: -41.96, PaperRatio: 115, PaperJ: 3},
	{Spec: spec("b14_1_opt", 4049, 9036, 2382, 112), PaperPhi: 112, PaperSER: 9.15e-3, PaperDFFRef: -64.02, PaperDSERRef: -12.89, PaperDFFNew: -64.02, PaperDSERNew: -32.89, PaperRatio: 130, PaperJ: 5},
	{Spec: spec("b14_opt", 5348, 11849, 2041, 135), PaperPhi: 135, PaperSER: 9.75e-3, PaperDFFRef: -57.76, PaperDSERRef: -26.71, PaperDFFNew: -50.05, PaperDSERNew: -6.67, PaperRatio: 79, PaperJ: 2},
	{Spec: spec("b15_1_opt", 7421, 16946, 2798, 158), PaperPhi: 158, PaperSER: 1.25e-2, PaperDFFRef: -36.88, PaperDSERRef: -24.58, PaperDFFNew: -33.84, PaperDSERNew: -37.12, PaperRatio: 120, PaperJ: 5},
	{Spec: spec("b15_opt", 7023, 15856, 2415, 195), PaperPhi: 195, PaperSER: 1.35e-2, PaperDFFRef: -46.17, PaperDSERRef: -26.97, PaperDFFNew: -43.22, PaperDSERNew: -45.74, PaperRatio: 135, PaperJ: 4},
	{Spec: spec("b17_1_opt", 23026, 52376, 8791, 192), PaperPhi: 192, PaperSER: 3.92e-2, PaperDFFRef: -27.64, PaperDSERRef: -12.64, PaperDFFNew: -37.58, PaperDSERNew: -36.34, PaperRatio: 137, PaperJ: 5},
	{Spec: spec("b17_opt", 22758, 51622, 7787, 266), PaperPhi: 266, PaperSER: 3.42e-2, PaperDFFRef: -23.75, PaperDSERRef: -28.13, PaperDFFNew: -19.09, PaperDSERNew: -45.94, PaperRatio: 133, PaperJ: 6},
	{Spec: spec("b18_1_opt", 68282, 151746, 21027, 251), PaperPhi: 251, PaperSER: 9.42e-2, PaperDFFRef: -30.92, PaperDSERRef: -28.51, PaperDFFNew: -0.05, PaperDSERNew: 0.00, PaperRatio: 71, PaperJ: 1},
	{Spec: spec("b18_opt", 69914, 155355, 20907, 255), PaperPhi: 255, PaperSER: 9.56e-2, PaperDFFRef: -30.92, PaperDSERRef: -32.92, PaperDFFNew: 0.00, PaperDSERNew: 0.00, PaperRatio: 67, PaperJ: 1},
	{Spec: spec("b19_1", 212729, 410577, 59580, 317), PaperPhi: 317, PaperSER: 2.45e-1, PaperDFFRef: -48.35, PaperDSERRef: -30.40, PaperDFFNew: -48.35, PaperDSERNew: -30.40, PaperRatio: 100, PaperJ: 6},
	{Spec: spec("b19", 224625, 433583, 60801, 317), PaperPhi: 317, PaperSER: 2.50e-1, PaperDFFRef: -49.27, PaperDSERRef: -30.72, PaperDFFNew: -49.27, PaperDSERNew: -30.72, PaperRatio: 100, PaperJ: 6},
	{Spec: spec("b20_1_opt", 10166, 22456, 3462, 191), PaperPhi: 191, PaperSER: 1.63e-2, PaperDFFRef: -57.30, PaperDSERRef: -34.51, PaperDFFNew: -56.21, PaperDSERNew: -34.51, PaperRatio: 100, PaperJ: 4},
	{Spec: spec("b20_opt", 11958, 26479, 4761, 182), PaperPhi: 182, PaperSER: 2.15e-2, PaperDFFRef: -65.68, PaperDSERRef: -31.48, PaperDFFNew: -65.42, PaperDSERNew: -31.41, PaperRatio: 100, PaperJ: 4},
	{Spec: spec("b21_1_opt", 9663, 21246, 2451, 171), PaperPhi: 171, PaperSER: 1.22e-2, PaperDFFRef: -34.31, PaperDSERRef: -25.28, PaperDFFNew: -31.78, PaperDSERNew: -48.87, PaperRatio: 146, PaperJ: 4},
	{Spec: spec("b21_opt", 12135, 26686, 4186, 215), PaperPhi: 215, PaperSER: 1.90e-2, PaperDFFRef: -66.72, PaperDSERRef: -33.35, PaperDFFNew: -66.36, PaperDSERNew: -40.82, PaperRatio: 113, PaperJ: 4},
	{Spec: spec("b22_1_opt", 14957, 32663, 4398, 194), PaperPhi: 194, PaperSER: 2.19e-2, PaperDFFRef: -50.55, PaperDSERRef: -31.39, PaperDFFNew: -50.36, PaperDSERNew: -33.34, PaperRatio: 103, PaperJ: 4},
	{Spec: spec("b22_opt", 17330, 37941, 5556, 178), PaperPhi: 178, PaperSER: 2.67e-2, PaperDFFRef: -50.61, PaperDSERRef: -29.56, PaperDFFNew: -51.02, PaperDSERNew: -35.88, PaperRatio: 110, PaperJ: 3},
}

func spec(name string, gates, conns, ffs int, phi float64) Spec {
	// The average gate delay tracks the average fanin (sparse circuits are
	// inverter/buffer heavy); the spine chain then yields a critical path
	// near the published Φ.
	avgFanin := float64(conns) / float64(gates)
	est := 0.4 + 0.85*avgFanin
	depth := int(phi / est)
	if depth < 8 {
		depth = 8
	}
	return Spec{Name: name, Gates: gates, Conns: conns, FFs: ffs, Depth: depth}
}

// FindTableI returns the spec of a Table I circuit by name.
func FindTableI(name string) (TableISpec, error) {
	for _, s := range TableI {
		if s.Name == name {
			return s, nil
		}
	}
	return TableISpec{}, fmt.Errorf("gen: unknown Table I circuit %q", name)
}

// Scale returns a copy of the spec shrunk by factor k (>= 1): all counts
// divided by k, depth preserved. Useful for quick runs of the harness on
// the largest circuits.
func (s TableISpec) Scale(k int) TableISpec {
	if k <= 1 {
		return s
	}
	out := s
	out.Spec.Name = fmt.Sprintf("%s/%d", s.Name, k)
	out.Spec.Gates = maxInt(s.Gates/k, 16)
	out.Spec.Conns = maxInt(s.Conns/k, out.Spec.Gates)
	out.Spec.FFs = maxInt(s.FFs/k, 2)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
