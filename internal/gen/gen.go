// Package gen synthesizes sequential benchmark circuits with prescribed
// statistics.
//
// The paper evaluates on ISCAS89/ITC99 netlists "obtained from the authors
// of [20]", which are not redistributable here; this generator substitutes
// seeded synthetic circuits that reproduce each benchmark's published
// |V| (gates), |E| (connections), #FF and clock-period regime, with
// realistic layered structure, fanout distribution and register feedback.
// The retiming algorithms consume only this structural information, so the
// synthetic circuits exercise the same code paths at the same scale (see
// DESIGN.md §4 for the substitution rationale).
package gen

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"serretime/internal/circuit"
)

// Spec prescribes the statistics of a synthetic circuit.
type Spec struct {
	// Name identifies the circuit; it also seeds the generator (same name,
	// same circuit) unless Seed is nonzero.
	Name string
	// Gates is the combinational gate count |V|.
	Gates int
	// Conns is the target connection count |E| (gate input pins plus
	// primary-output nets of the retiming graph).
	Conns int
	// FFs is the flip-flop count.
	FFs int
	// Depth is the target logic depth (layers of gates); it controls the
	// clock-period regime. Zero picks a default from the gate count.
	Depth int
	// PIs/POs override the primary input/output counts (0 = derived).
	PIs, POs int
	// FanoutSkew is the fraction of gate-read pins that pick a random
	// earlier gate instead of consuming an unused one, creating fanout
	// hubs and capture paths of diverse lengths (the structure that makes
	// timing masking sensitive to retiming). Default 0.05; higher values
	// trade dead-logic coverage for diversity.
	FanoutSkew float64
	// Seed overrides the name-derived seed when nonzero.
	Seed int64
}

// Validate checks the spec for consistency.
func (s Spec) Validate() error {
	if s.Gates < 4 {
		return fmt.Errorf("gen: %q: need at least 4 gates, have %d", s.Name, s.Gates)
	}
	if s.FFs < 1 {
		return fmt.Errorf("gen: %q: need at least 1 flip-flop", s.Name)
	}
	if s.Conns < s.Gates {
		return fmt.Errorf("gen: %q: %d connections cannot cover %d gates", s.Name, s.Conns, s.Gates)
	}
	return nil
}

func (s Spec) seed() int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	h := fnv.New64a()
	h.Write([]byte(s.Name))
	return int64(h.Sum64())
}

// Generate builds the circuit.
func Generate(s Spec) (*circuit.Circuit, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.seed()))

	depth := s.Depth
	if depth <= 0 {
		depth = 20 + s.Gates/400
		if depth > 120 {
			depth = 120
		}
	}
	if depth > s.Gates {
		depth = s.Gates
	}
	nPI := s.PIs
	if nPI <= 0 {
		nPI = clamp(s.Gates/150, 8, 512)
	}
	nPO := s.POs
	if nPO <= 0 {
		nPO = clamp(s.Gates/200, 8, 512)
	}

	b := circuit.NewBuilder(s.Name)
	pis := make([]string, nPI)
	for i := range pis {
		pis[i] = fmt.Sprintf("pi%d", i)
		b.PI(pis[i])
	}
	// Flip-flop outputs are declared up front so early layers can read
	// them (feedback); their data inputs are wired to gates afterwards.
	ffs := make([]string, s.FFs)
	for i := range ffs {
		ffs[i] = fmt.Sprintf("ff%d", i)
	}

	// Distribute gates over layers. The first `depth` gates form a spine
	// (one per layer, chained below) guaranteeing the full logic depth;
	// the rest are biased toward shallow layers, giving realistic slack:
	// most paths are short, few are critical.
	layerOf := make([]int, s.Gates)
	for i := range layerOf {
		if i < depth {
			layerOf[i] = i
		} else {
			u := rng.Float64()
			layerOf[i] = int(float64(depth) * u * u)
			if layerOf[i] >= depth {
				layerOf[i] = depth - 1
			}
		}
	}
	// Gate i may read gates from earlier layers only (plus PIs and FFs),
	// so sort gates by layer and remember layer boundaries.
	byLayer := make([][]int, depth)
	for i, l := range layerOf {
		byLayer[l] = append(byLayer[l], i)
	}
	gateName := make([]string, s.Gates)
	var ordered []int // gates in layer order
	for l := 0; l < depth; l++ {
		for _, i := range byLayer[l] {
			gateName[i] = fmt.Sprintf("g%d", i)
			ordered = append(ordered, i)
		}
	}

	// Target pins: connections minus the PO nets.
	targetPins := s.Conns - nPO
	if targetPins < s.Gates {
		targetPins = s.Gates
	}
	fanout := make([]int, s.Gates) // uses of each gate's output
	ffRead := make([]bool, s.FFs)
	unread := make([]int, s.FFs) // queue of not-yet-consumed FFs
	for i := range unread {
		unread[i] = i
	}
	rng.Shuffle(len(unread), func(i, j int) { unread[i], unread[j] = unread[j], unread[i] })
	// Probability of a pin reading a flip-flop, tuned so that most FFs
	// get consumed by logic (leftovers become state-observation outputs).
	pFF := 1.05 * float64(s.FFs) / float64(targetPins)
	if pFF > 0.45 {
		pFF = 0.45
	}
	takeFF := func() string {
		if len(unread) > 0 {
			i := unread[len(unread)-1]
			unread = unread[:len(unread)-1]
			ffRead[i] = true
			return ffs[i]
		}
		return ffs[rng.Intn(s.FFs)]
	}
	// Strict layering: a gate reads only gates from earlier layers, so the
	// logic depth never exceeds the layer count. Coverage pools track
	// not-yet-consumed gates per layer; real netlists have essentially no
	// dead logic, so unused outputs must stay rare.
	earlier := make([]int, 0, s.Gates) // gates in layers < current
	unusedBy := make([][]int, depth)
	curLayer := 0
	layerStart := 0
	pickUnused := func(l int) int {
		// Nearest earlier layers first (locality), but scan all the way
		// down: coverage beats locality, dead logic is unrealistic.
		for back := 1; back <= l; back++ {
			pool := unusedBy[l-back]
			for len(pool) > 0 {
				i := rng.Intn(len(pool))
				cand := pool[i]
				pool[i] = pool[len(pool)-1]
				pool = pool[:len(pool)-1]
				unusedBy[l-back] = pool
				if fanout[cand] == 0 {
					return cand
				}
			}
		}
		return -1
	}
	skew := s.FanoutSkew
	if skew == 0 {
		skew = 0.05
	}
	pinsLeft := targetPins
	for idx, gi := range ordered {
		if l := layerOf[gi]; l != curLayer {
			for _, gj := range ordered[layerStart:idx] {
				earlier = append(earlier, gj)
			}
			layerStart = idx
			curLayer = l
		}
		gatesLeft := s.Gates - idx
		// Self-balancing fanin draw: track the remaining pin budget so the
		// realized connection count lands on the target.
		need := float64(pinsLeft) / float64(gatesLeft)
		want := int(need)
		if rng.Float64() < need-float64(want) {
			want++
		}
		if rng.Float64() > 0.95 && need > 1.4 {
			want += 1 + rng.Intn(2) // occasional wide gate
		}
		if max := pinsLeft - (gatesLeft - 1); want > max {
			want = max
		}
		if want < 1 {
			want = 1
		}
		pinsLeft -= want

		fanin := make([]string, want)
		for p := 0; p < want; p++ {
			// The spine: pin 0 of each layer's first gate reads the
			// previous layer, guaranteeing a critical chain of the full
			// depth.
			if p == 0 && gi < depth && layerOf[gi] > 0 {
				// Spine gate i sits at layer i and reads spine gate i-1:
				// the chain realizes the full target depth.
				fanin[p] = gateName[gi-1]
				fanout[gi-1]++
				continue
			}
			switch r := rng.Float64(); {
			case r < pFF:
				fanin[p] = takeFF()
			case layerOf[gi] == 0 || r < pFF+0.04 || len(earlier) == 0:
				// PIs feed the first layer and a slice of later pins.
				fanin[p] = pis[rng.Intn(nPI)]
			default:
				// Coverage first: consume a not-yet-used gate from a
				// recent earlier layer, falling back to a random earlier
				// gate (reconvergence / fanout > 1).
				src := -1
				if rng.Float64() >= skew {
					src = pickUnused(curLayer)
				}
				if src < 0 {
					if rng.Float64() < 0.8 {
						lo := len(earlier) * 3 / 4
						src = earlier[lo+rng.Intn(len(earlier)-lo)]
					} else {
						src = earlier[rng.Intn(len(earlier))]
					}
				}
				fanin[p] = gateName[src]
				fanout[src]++
			}
		}
		b.Gate(gateName[gi], pickFunc(rng, len(fanin)), fanin...)
		unusedBy[curLayer] = append(unusedBy[curLayer], gi)
	}

	// Wire flip-flop inputs to distinct gates across all layers, so every
	// region of the logic sits near an observation point (as in real
	// netlists, where state registers are interleaved with logic).
	// Unconsumed gates go first — registers are how logic cones terminate
	// — which also keeps the primary-output count realistic. Once drivers
	// run out, the remaining flip-flops chain (shift registers).
	drivers := make([]int, 0, len(ordered))
	var used []int
	for i := len(ordered) - 1; i >= 0; i-- {
		if fanout[ordered[i]] == 0 {
			drivers = append(drivers, ordered[i])
		} else {
			used = append(used, ordered[i])
		}
	}
	rng.Shuffle(len(drivers), func(i, j int) { drivers[i], drivers[j] = drivers[j], drivers[i] })
	rng.Shuffle(len(used), func(i, j int) { used[i], used[j] = used[j], used[i] })
	drivers = append(drivers, used...)
	for i := range ffs {
		if i < len(drivers) {
			b.DFF(ffs[i], gateName[drivers[i]])
			fanout[drivers[i]]++
		} else {
			b.DFF(ffs[i], ffs[i-len(drivers)])
			ffRead[i-len(drivers)] = true // consumed by the chain
		}
	}

	// Primary outputs: deep, otherwise-unused gates first; then random
	// deep gates until the PO budget is met; finally every remaining
	// unused output (no dangling logic). Order is kept deterministic.
	poSet := make(map[string]bool)
	var pos []string
	addPO := func(name string) {
		if !poSet[name] {
			poSet[name] = true
			pos = append(pos, name)
		}
	}
	for i := len(ordered) - 1; i >= 0 && len(pos) < nPO; i-- {
		if gi := ordered[i]; fanout[gi] == 0 {
			addPO(gateName[gi])
		}
	}
	for tries := 0; len(pos) < nPO && tries < 10*nPO; tries++ {
		addPO(gateName[ordered[len(ordered)-1-rng.Intn(len(ordered)/2+1)]])
	}
	for _, gi := range ordered {
		if fanout[gi] == 0 {
			addPO(gateName[gi])
		}
	}
	// Flip-flops nothing reads become state-observation outputs, keeping
	// their registers alive in the retiming graph.
	for i, read := range ffRead {
		if !read {
			addPO(ffs[i])
		}
	}
	for _, name := range pos {
		b.PO(name)
	}

	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("gen: %q: %w", s.Name, err)
	}
	return c, nil
}

func pickFunc(rng *rand.Rand, fanin int) circuit.Func {
	if fanin == 1 {
		if rng.Intn(3) == 0 {
			return circuit.FnBuf
		}
		return circuit.FnNot
	}
	switch rng.Intn(20) {
	case 0:
		return circuit.FnXor
	case 1:
		return circuit.FnXnor
	case 2, 3, 4:
		return circuit.FnAnd
	case 5, 6, 7:
		return circuit.FnOr
	case 8, 9, 10, 11, 12, 13:
		return circuit.FnNor
	default:
		return circuit.FnNand
	}
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
