package gen

import (
	"math"
	"testing"

	"serretime/internal/circuit"
	"serretime/internal/graph"
	"serretime/internal/retime"
)

func TestGenerateSmall(t *testing.T) {
	c, err := Generate(Spec{Name: "tiny", Gates: 50, Conns: 110, FFs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	_, _, gates, dffs := c.Counts()
	if gates != 50 || dffs != 10 {
		t.Fatalf("counts: %d gates, %d dffs", gates, dffs)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Spec{Name: "det", Gates: 80, Conns: 170, FFs: 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Spec{Name: "det", Gates: 80, Conns: 170, FFs: 12})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() {
		t.Fatal("nondeterministic node count")
	}
	for i := 0; i < a.NumNodes(); i++ {
		na, nb := a.Node(circuit.NodeID(i)), b.Node(circuit.NodeID(i))
		if na.Name != nb.Name || na.Fn != nb.Fn || len(na.Fanin) != len(nb.Fanin) {
			t.Fatalf("node %d differs", i)
		}
	}
	c, err := Generate(Spec{Name: "det2", Gates: 80, Conns: 170, FFs: 12})
	if err != nil {
		t.Fatal(err)
	}
	same := c.NumNodes() == a.NumNodes()
	if same {
		for i := 0; i < a.NumNodes() && same; i++ {
			na, nc := a.Node(circuit.NodeID(i)), c.Node(circuit.NodeID(i))
			same = na.Name == nc.Name && na.Fn == nc.Fn && len(na.Fanin) == len(nc.Fanin)
			if same {
				for j := range na.Fanin {
					if na.Fanin[j] != nc.Fanin[j] {
						same = false
					}
				}
			}
		}
	}
	if same {
		t.Fatal("different names produced identical circuits")
	}
}

func TestGenerateStatisticsAccuracy(t *testing.T) {
	s := Spec{Name: "stats", Gates: 2000, Conns: 4400, FFs: 600}
	c, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromCircuit(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGates() != s.Gates {
		t.Fatalf("|V| = %d, want %d", g.NumGates(), s.Gates)
	}
	// |E| within 15% of the target (PO padding adds slack).
	if dev := math.Abs(float64(g.NumEdges()-s.Conns)) / float64(s.Conns); dev > 0.15 {
		t.Fatalf("|E| = %d, target %d (dev %.0f%%)", g.NumEdges(), s.Conns, dev*100)
	}
	if got := g.SharedRegisters(graph.NewRetiming(g)); got < int64(s.FFs) {
		t.Fatalf("registers = %d, want >= %d", got, s.FFs)
	}
}

func TestGenerateNoDangling(t *testing.T) {
	c, err := Generate(Spec{Name: "dangle", Gates: 300, Conns: 700, FFs: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Every gate must have a fanout or be a primary output.
	isPO := make(map[circuit.NodeID]bool)
	for _, po := range c.POs() {
		isPO[po] = true
	}
	for _, id := range c.NodesOfKind(circuit.KindGate) {
		if len(c.Node(id).Fanout) == 0 && !isPO[id] {
			t.Fatalf("gate %q dangles", c.Node(id).Name)
		}
	}
}

func TestGenerateRetimable(t *testing.T) {
	c, err := Generate(Spec{Name: "retimable", Gates: 400, Conns: 900, FFs: 120, Depth: 25})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromCircuit(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	init, err := retime.Initialize(g, retime.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckLegal(init.R); err != nil {
		t.Fatal(err)
	}
	if init.Phi <= 0 || init.Rmin <= 0 {
		t.Fatalf("init: %+v", init)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Generate(Spec{Name: "x", Gates: 2, Conns: 4, FFs: 1}); err == nil {
		t.Fatal("tiny gate count accepted")
	}
	if _, err := Generate(Spec{Name: "x", Gates: 10, Conns: 20, FFs: 0}); err == nil {
		t.Fatal("zero FFs accepted")
	}
	if _, err := Generate(Spec{Name: "x", Gates: 10, Conns: 5, FFs: 1}); err == nil {
		t.Fatal("too few connections accepted")
	}
}

func TestTableISpecs(t *testing.T) {
	if len(TableI) != 21 {
		t.Fatalf("Table I has %d rows, want 21", len(TableI))
	}
	for _, s := range TableI {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.PaperPhi <= 0 || s.PaperSER <= 0 {
			t.Errorf("%s: missing paper numbers", s.Name)
		}
	}
	if _, err := FindTableI("s13207"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindTableI("nope"); err == nil {
		t.Fatal("unknown circuit found")
	}
}

func TestTableIGenerateSmallest(t *testing.T) {
	s, _ := FindTableI("b14_1_opt")
	c, err := Generate(s.Spec)
	if err != nil {
		t.Fatal(err)
	}
	_, _, gates, dffs := c.Counts()
	if gates != 4049 || dffs != 2382 {
		t.Fatalf("counts: %d %d", gates, dffs)
	}
	g, err := graph.FromCircuit(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestScale(t *testing.T) {
	s, _ := FindTableI("b19")
	sc := s.Scale(16)
	if sc.Gates != 224625/16 || sc.FFs != 60801/16 {
		t.Fatalf("scaled: %+v", sc.Spec)
	}
	if s.Scale(1).Gates != s.Gates {
		t.Fatal("scale 1 must be identity")
	}
	if _, err := Generate(sc.Spec); err != nil {
		t.Fatal(err)
	}
}
