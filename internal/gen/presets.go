package gen

import (
	"fmt"
	"sort"
)

// presets are the named benchmark circuits the repo's benchmarks and
// tools generate on demand instead of checking in: at these sizes a
// .bench file would be megabytes of noise in the tree, while the seeded
// generator reproduces the identical circuit in well under a second
// (the Name-derived seed makes "same name, same circuit" a contract).
//
// par50k is the front-end benchmark workhorse (bench_frontend_test.go);
// par100k exists to demonstrate the asymptotic advantage of the
// analytical fast observability engine — large enough that a full
// signature simulation is clearly superlinear pain, small enough to
// generate in CI.
var presets = map[string]Spec{
	"par50k":  {Name: "par50k", Gates: 50000, Conns: 110000, FFs: 8000, Depth: 60},
	"par100k": {Name: "par100k", Gates: 100000, Conns: 220000, FFs: 16000, Depth: 70},
}

// Preset returns the named benchmark spec.
func Preset(name string) (Spec, error) {
	s, ok := presets[name]
	if !ok {
		return Spec{}, fmt.Errorf("gen: unknown preset %q (have %v)", name, PresetNames())
	}
	return s, nil
}

// PresetNames lists the preset names in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
