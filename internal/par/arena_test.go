package par

import "testing"

func TestArenaAllocZeroedAndDisjoint(t *testing.T) {
	var pool SlicePool[uint64]
	a := Arena[uint64]{Pool: &pool}
	x := a.Alloc(8)
	y := a.Alloc(8)
	for i := range x {
		x[i] = ^uint64(0)
	}
	for i := range y {
		if y[i] != 0 {
			t.Fatal("second Alloc not zeroed")
		}
	}
	// Appending to a carved slice must not spill into the next one.
	if cap(x) != len(x) {
		t.Fatalf("carved slice cap %d, want %d", cap(x), len(x))
	}
	a.Release()
	// After a Release the same memory comes back zeroed.
	z := a.Alloc(8)
	for i := range z {
		if z[i] != 0 {
			t.Fatal("recycled Alloc not zeroed")
		}
	}
	a.Release()
}

func TestArenaNilPool(t *testing.T) {
	var a Arena[int]
	s := a.Alloc(5)
	if len(s) != 5 {
		t.Fatalf("len %d", len(s))
	}
	for _, v := range s {
		if v != 0 {
			t.Fatal("not zeroed")
		}
	}
	a.Release() // must not panic
}

func TestArenaManySmallAllocs(t *testing.T) {
	var pool SlicePool[uint64]
	a := Arena[uint64]{Pool: &pool}
	var got [][]uint64
	for i := 0; i < 100; i++ {
		s := a.Alloc(i % 7)
		for j := range s {
			s[j] = uint64(i)
		}
		got = append(got, s)
	}
	for i, s := range got {
		for _, v := range s {
			if v != uint64(i) {
				t.Fatalf("alloc %d corrupted: %d", i, v)
			}
		}
	}
	a.Release()
}
