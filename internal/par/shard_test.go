package par

import (
	"context"
	"errors"
	"testing"

	"serretime/internal/telemetry"
)

// shardSpans walks a trace for "par:" nodes of one op and returns them
// keyed by 1-based worker.
func shardSpans(tr *telemetry.Trace, op string) map[int]*telemetry.Span {
	out := make(map[int]*telemetry.Span)
	tr.Snapshot().Walk(func(_ int, sp *telemetry.Span) {
		if sp.Name == "par:"+op {
			out[sp.Worker] = sp
		}
	})
	return out
}

// TestShardSpanInline checks the w==1 sequential path still reports a
// worker-0 shard span when the recorder is a Trace — the default
// SolveWorkers=1 daemon config must produce par spans in job traces.
func TestShardSpanInline(t *testing.T) {
	tr := telemetry.NewTrace(telemetry.TraceID{})
	p := New("obs.compute", 1, tr)
	for i := 0; i < 3; i++ {
		if err := p.Run(context.Background(), 100, func(w, lo, hi int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	spans := shardSpans(tr, "obs.compute")
	sp := spans[1]
	if sp == nil || sp.Count != 3 || sp.Errs != 0 {
		t.Fatalf("inline shard span = %+v", sp)
	}
}

// TestShardSpanParallel checks worker attribution and error capture on
// the concurrent path.
func TestShardSpanParallel(t *testing.T) {
	tr := telemetry.NewTrace(telemetry.TraceID{})
	p := New("wd.sweep", 4, tr)
	boom := errors.New("boom")
	err := p.Run(context.Background(), 40, func(w, lo, hi int) error {
		if w == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v", err)
	}
	spans := shardSpans(tr, "wd.sweep")
	if len(spans) != 4 {
		t.Fatalf("%d shard spans, want 4: %v", len(spans), spans)
	}
	for w := 1; w <= 4; w++ {
		sp := spans[w]
		if sp == nil || sp.Count != 1 {
			t.Fatalf("worker %d span = %+v", w, sp)
		}
		if (w == 3) != (sp.Errs == 1) { // worker index 2 is 1-based 3
			t.Fatalf("worker %d errs = %d", w, sp.Errs)
		}
	}
}

// TestShardSpanThroughTee checks the production wiring: the pool sees
// Tee(collector, trace) and the shard spans reach the trace through the
// multi recorder's ShardRecorder forwarding.
func TestShardSpanThroughTee(t *testing.T) {
	col := telemetry.NewCollector()
	tr := telemetry.NewTrace(telemetry.TraceID{})
	p := New("obs.compute", 2, telemetry.Tee(col, tr))
	if err := p.Run(context.Background(), 10, func(w, lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	spans := shardSpans(tr, "obs.compute")
	if len(spans) != 2 {
		t.Fatalf("%d shard spans through Tee, want 2", len(spans))
	}
	if st := col.Stats(); st.Counters[telemetry.CounterParShards] != 2 {
		t.Fatalf("collector shard count = %d", st.Counters[telemetry.CounterParShards])
	}
}

// TestShardSpanAbsentWithoutRecorder checks the untraced fast paths stay
// untouched: a nil recorder leaves the pool shard-free.
func TestShardSpanAbsentWithoutRecorder(t *testing.T) {
	p := New("obs.compute", 1, nil)
	if p.shard != nil {
		t.Fatal("nil recorder grew a shard recorder")
	}
	pc := New("obs.compute", 1, telemetry.NewCollector())
	if pc.shard != nil {
		t.Fatal("plain Collector satisfied ShardRecorder; inline path would slow down")
	}
}
