// Package par is the deterministic parallel substrate of the analysis
// engine: a bounded fork-join worker pool used to shard the signature
// simulation, the ODC observability pass and the W/D matrix build across
// CPU cores (DESIGN.md §11).
//
// Determinism is the design constraint. A Pool never changes results, for
// any worker count, because the sharded code obeys two rules:
//
//   - every shard writes only into a pre-partitioned, disjoint region of
//     the output (signature words, ODC mask words, W/D matrix rows);
//   - nothing order-dependent (RNG draws, float accumulation across
//     shards) happens inside a parallel section.
//
// With Workers == 1 a Run executes inline on the calling goroutine with
// no forking, no panic recovery and no counter telemetry — the exact
// sequential code path, byte for byte (when the recorder is a
// telemetry.ShardRecorder the inline run is still reported as one shard
// span, so traced jobs see their parallel sections regardless of worker
// count). Parallel runs capture worker panics into
// guard.ErrInternal (a panic must not crash a server goroutine), observe
// context cancellation via guard checkpoints before each shard, and
// record utilization telemetry (par-runs / par-shards / par-busy-ns /
// par-wall-ns counters and the par-workers gauge).
package par

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"serretime/internal/guard"
	"serretime/internal/telemetry"
)

// Normalize maps a Workers option value to an effective worker count:
// positive values pass through, everything else means "one worker per
// available CPU" (runtime.GOMAXPROCS).
func Normalize(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// Pool is a bounded deterministic worker pool. The zero value is not
// usable; construct with New. A Pool is stateless between Runs and safe
// for concurrent use.
type Pool struct {
	op      string
	workers int
	rec     telemetry.Recorder
	shard   telemetry.ShardRecorder // nil unless rec wants shard spans
	nop     bool
}

// New returns a pool of Normalize(workers) workers. op names the pool in
// guard errors (timeouts, captured panics); rec receives the utilization
// telemetry (nil records nothing). If rec also implements
// telemetry.ShardRecorder (a Trace, or a Tee containing one), every
// shard execution — including the inline sequential path — is reported
// to it with worker attribution.
func New(op string, workers int, rec telemetry.Recorder) *Pool {
	r := telemetry.OrNop(rec)
	p := &Pool{op: op, workers: Normalize(workers), rec: r, nop: r == telemetry.Nop}
	if !p.nop {
		p.shard, _ = r.(telemetry.ShardRecorder)
	}
	return p
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Run partitions the index range [0, n) into one contiguous span per
// worker (at most Workers spans, never more than n) and executes
// fn(worker, lo, hi) for each span, concurrently. Span boundaries depend
// only on n and the worker count; every index is covered exactly once.
//
// All spans run to completion even when one fails; the error of the
// lowest-numbered failing span is returned, so the reported error does
// not depend on goroutine scheduling. A panic inside fn is captured as a
// *guard.InternalError (unwrapping to guard.ErrInternal); a done context
// is reported as a *guard.TimeoutError before a span starts. With one
// worker (or n <= 1) fn runs inline on the calling goroutine and panics
// propagate unchanged — the exact unsharded code path.
func (p *Pool) Run(ctx context.Context, n int, fn func(worker, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		if ctx != nil {
			if cerr := guard.Checkpoint(ctx, p.op); cerr != nil {
				return cerr
			}
		}
		if p.shard == nil {
			return fn(0, 0, n)
		}
		t0 := time.Now()
		err := fn(0, 0, n)
		p.shard.ShardSpan(p.op, 0, time.Since(t0), err)
		return err
	}

	var start time.Time
	if !p.nop {
		start = time.Now()
	}
	errs := make([]error, w)
	var busy atomic.Int64
	var wg sync.WaitGroup
	chunk, rem := n/w, n%w
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + chunk
		if i < rem {
			hi++
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			var t0 time.Time
			if !p.nop {
				t0 = time.Now()
			}
			defer func() {
				if r := recover(); r != nil {
					errs[i] = &guard.InternalError{Op: p.op, Value: r, Stack: debug.Stack()}
				}
				if !p.nop {
					d := time.Since(t0)
					busy.Add(int64(d))
					if p.shard != nil {
						p.shard.ShardSpan(p.op, i, d, errs[i])
					}
				}
			}()
			if ctx != nil {
				if cerr := guard.Checkpoint(ctx, p.op); cerr != nil {
					errs[i] = cerr
					return
				}
			}
			errs[i] = fn(i, lo, hi)
		}(i, lo, hi)
		lo = hi
	}
	wg.Wait()
	if !p.nop {
		p.rec.Count(telemetry.CounterParRuns, 1)
		p.rec.Count(telemetry.CounterParShards, int64(w))
		p.rec.Count(telemetry.CounterParBusyNanos, busy.Load())
		p.rec.Count(telemetry.CounterParWallNanos, int64(time.Since(start)))
		p.rec.Gauge(telemetry.GaugeParWorkers, int64(w))
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
