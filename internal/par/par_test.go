package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"serretime/internal/guard"
	"serretime/internal/telemetry"
)

// TestRunCoverage: every index in [0, n) is visited exactly once, for a
// grid of (n, workers) including degenerate shapes.
func TestRunCoverage(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 8, 64, 1000} {
		for _, w := range []int{1, 2, 3, 8, 17} {
			p := New("par.test", w, nil)
			seen := make([]int32, n)
			err := p.Run(context.Background(), n, func(worker, lo, hi int) error {
				if lo > hi || lo < 0 || hi > n {
					return fmt.Errorf("bad span [%d,%d) of %d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d w=%d: %v", n, w, err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, c)
				}
			}
		}
	}
}

// TestRunSpanCount: at most min(workers, n) spans, each non-empty.
func TestRunSpanCount(t *testing.T) {
	p := New("par.test", 8, nil)
	var spans atomic.Int32
	if err := p.Run(context.Background(), 3, func(worker, lo, hi int) error {
		if lo == hi {
			return errors.New("empty span")
		}
		spans.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := spans.Load(); got != 3 {
		t.Fatalf("spans = %d, want 3 (capped at n)", got)
	}
}

// TestRunInlineSequential: one worker runs fn on the calling goroutine —
// the test writes to a captured variable without synchronization, which
// the race detector would flag if a goroutine were forked.
func TestRunInlineSequential(t *testing.T) {
	p := New("par.test", 1, nil)
	ran := false
	if err := p.Run(context.Background(), 100, func(worker, lo, hi int) error {
		if worker != 0 || lo != 0 || hi != 100 {
			t.Errorf("inline span = (%d, %d, %d), want (0, 0, 100)", worker, lo, hi)
		}
		ran = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("fn did not run")
	}
}

// TestRunInlinePanicPropagates: the sequential path is byte-for-byte the
// unsharded code, so a panic must reach the caller unchanged.
func TestRunInlinePanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate on the inline path")
		}
	}()
	p := New("par.test", 1, nil)
	_ = p.Run(context.Background(), 4, func(worker, lo, hi int) error {
		panic("boom")
	})
}

// TestRunPanicCaptured: a worker panic in a parallel run becomes a
// guard.ErrInternal with the pool's op attached, not a crash.
func TestRunPanicCaptured(t *testing.T) {
	p := New("par.test", 4, nil)
	err := p.Run(context.Background(), 8, func(worker, lo, hi int) error {
		if lo <= 5 && 5 < hi {
			panic("shard 5 exploded")
		}
		return nil
	})
	if !errors.Is(err, guard.ErrInternal) {
		t.Fatalf("err = %v, want guard.ErrInternal", err)
	}
	var ie *guard.InternalError
	if !errors.As(err, &ie) || ie.Op != "par.test" || len(ie.Stack) == 0 {
		t.Fatalf("internal error not annotated: %+v", ie)
	}
}

// TestRunLowestShardErrorWins: with several failing shards the returned
// error is the lowest-numbered one — independent of scheduling.
func TestRunLowestShardErrorWins(t *testing.T) {
	p := New("par.test", 4, nil)
	for i := 0; i < 50; i++ {
		err := p.Run(context.Background(), 4, func(worker, lo, hi int) error {
			if worker >= 1 {
				return fmt.Errorf("shard %d failed", worker)
			}
			return nil
		})
		if err == nil || err.Error() != "shard 1 failed" {
			t.Fatalf("err = %v, want shard 1's error", err)
		}
	}
}

// TestRunCancellation: a done context surfaces as guard.ErrTimeout, on
// both the inline and the parallel path.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		p := New("par.test", w, nil)
		err := p.Run(ctx, 16, func(worker, lo, hi int) error { return nil })
		if !errors.Is(err, guard.ErrTimeout) {
			t.Fatalf("workers=%d: err = %v, want guard.ErrTimeout", w, err)
		}
	}
}

// TestRunNilContext: nil ctx means "not cancellable" and must not panic.
func TestRunNilContext(t *testing.T) {
	for _, w := range []int{1, 3} {
		p := New("par.test", w, nil)
		if err := p.Run(nil, 9, func(worker, lo, hi int) error { return nil }); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
	}
}

// TestRunBoundedWorkers: concurrently active shards never exceed the pool
// width (one span per worker makes this structural; the test guards the
// invariant against future chunked scheduling).
func TestRunBoundedWorkers(t *testing.T) {
	const width = 3
	p := New("par.test", width, nil)
	var active, peak atomic.Int32
	if err := p.Run(context.Background(), 64, func(worker, lo, hi int) error {
		a := active.Add(1)
		for {
			m := peak.Load()
			if a <= m || peak.CompareAndSwap(m, a) {
				break
			}
		}
		for i := 0; i < 1000; i++ { // widen the overlap window
			_ = i
		}
		active.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > width {
		t.Fatalf("peak active workers %d > width %d", peak.Load(), width)
	}
}

// TestUtilizationTelemetry: parallel runs record the par-* counters and
// the worker gauge; inline runs record nothing.
func TestUtilizationTelemetry(t *testing.T) {
	col := telemetry.NewCollector()
	p := New("par.test", 4, col)
	if err := p.Run(context.Background(), 8, func(worker, lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	s := col.Stats()
	if got := s.Counter(telemetry.CounterParRuns); got != 1 {
		t.Errorf("par-runs = %d, want 1", got)
	}
	if got := s.Counter(telemetry.CounterParShards); got != 4 {
		t.Errorf("par-shards = %d, want 4", got)
	}
	if s.Counter(telemetry.CounterParWallNanos) <= 0 {
		t.Error("par-wall-ns not recorded")
	}
	if s.Counter(telemetry.CounterParBusyNanos) < 0 {
		t.Error("par-busy-ns negative")
	}
	if got := s.Gauge(telemetry.GaugeParWorkers); got != 4 {
		t.Errorf("par-workers gauge = %d, want 4", got)
	}

	col2 := telemetry.NewCollector()
	seq := New("par.test", 1, col2)
	if err := seq.Run(context.Background(), 8, func(worker, lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := col2.Stats().Counter(telemetry.CounterParRuns); got != 0 {
		t.Errorf("inline run recorded par-runs = %d, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	if Normalize(3) != 3 {
		t.Error("positive workers must pass through")
	}
	if Normalize(0) < 1 || Normalize(-2) < 1 {
		t.Error("non-positive workers must normalize to >= 1")
	}
}

// TestSlicePool: recycled slabs come back zeroed at the requested length,
// so pooled and freshly-allocated runs are indistinguishable.
func TestSlicePool(t *testing.T) {
	var sp SlicePool[uint64]
	s := sp.Get(16)
	if len(s) != 16 {
		t.Fatalf("len = %d, want 16", len(s))
	}
	for i := range s {
		s[i] = ^uint64(0)
	}
	sp.Put(s)
	r := sp.Get(8)
	if len(r) != 8 {
		t.Fatalf("len = %d, want 8", len(r))
	}
	for i, v := range r {
		if v != 0 {
			t.Fatalf("recycled slab not zeroed at %d: %x", i, v)
		}
	}
	// Requesting more than the recycled capacity allocates fresh.
	sp.Put(r)
	big := sp.Get(1 << 12)
	if len(big) != 1<<12 {
		t.Fatalf("len = %d, want %d", len(big), 1<<12)
	}
	for i, v := range big {
		if v != 0 {
			t.Fatalf("fresh slab not zeroed at %d: %x", i, v)
		}
	}
}
