package par

// Arena is a slab-backed bump allocator over a SlicePool: Alloc carves
// zeroed scratch slices out of pooled slabs, and one Release returns every
// slab at once. It groups scratch buffers that live and die together (the
// signature planes of one simulation, the two ODC slabs of one
// observability pass) under a single lifetime, so the analysis engines
// recycle whole working sets instead of pairing an explicit Put with every
// Get.
//
// The zero value with a nil Pool is valid: Alloc falls back to plain make
// and Release only drops references. An Arena is not safe for concurrent
// use; the slices it returns follow the SlicePool contract (zeroed, so
// pooled and non-pooled runs are bit-identical).
type Arena[T any] struct {
	// Pool supplies and recycles the slabs. Arenas sharing one pool share
	// warm slabs across calls.
	Pool *SlicePool[T]

	slabs [][]T
	cur   []T
	off   int
}

// Alloc returns a zeroed slice of length n carved from the current slab,
// fetching a new slab when the remainder is too small. The slice is valid
// until Release.
func (a *Arena[T]) Alloc(n int) []T {
	if a.off+n > len(a.cur) {
		if a.Pool == nil {
			s := make([]T, n)
			a.slabs = append(a.slabs, s)
			return s
		}
		size := n
		if rem := len(a.cur) - a.off; size < 2*rem {
			// Growing demand: take at least double the wasted remainder so
			// pathological alternation cannot thrash tiny slabs.
			size = 2 * rem
		}
		a.cur = a.Pool.Get(size)
		a.off = 0
		a.slabs = append(a.slabs, a.cur)
	}
	s := a.cur[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// Release returns every slab to the pool and resets the arena for reuse.
// All slices obtained from Alloc are invalid afterwards.
func (a *Arena[T]) Release() {
	if a.Pool != nil {
		for _, s := range a.slabs {
			a.Pool.Put(s)
		}
	}
	for i := range a.slabs {
		a.slabs[i] = nil
	}
	a.slabs = a.slabs[:0]
	a.cur = nil
	a.off = 0
}
