package par

import "sync"

// SlicePool recycles equally-typed scratch slices across calls and
// workers, killing the per-call slab allocations of the sharded analysis
// paths (signature buffers, ODC mask slabs, per-source W/D scratch).
// The zero value is ready to use; a SlicePool is safe for concurrent use.
type SlicePool[T any] struct {
	p sync.Pool
}

// Get returns a zeroed slice of length n (a recycled slab when one of
// sufficient capacity is available, a fresh allocation otherwise).
// Zeroing keeps pooled and non-pooled runs bit-identical: `make` also
// returns zeroed memory, and the clear of a warm slab is a memclr, not a
// per-element loop.
func (sp *SlicePool[T]) Get(n int) []T {
	if v, ok := sp.p.Get().(*[]T); ok && cap(*v) >= n {
		s := (*v)[:n]
		clear(s)
		return s
	}
	return make([]T, n)
}

// Put returns a slice to the pool for reuse. The caller must not touch
// the slice afterwards.
func (sp *SlicePool[T]) Put(s []T) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	sp.p.Put(&s)
}
