package ser

import (
	"math"
	"testing"

	"serretime/internal/benchfmt"
	"serretime/internal/circuit"
	"serretime/internal/elw"
	"serretime/internal/graph"
	"serretime/internal/obs"
	"serretime/internal/sim"
)

func TestSyntheticRates(t *testing.T) {
	m := SyntheticRates{}
	if m.GateRate(circuit.FnConst1, 0) != 0 {
		t.Fatal("constants must have zero rate")
	}
	if m.GateRate(circuit.FnNot, 1) <= m.GateRate(circuit.FnNand, 2) {
		t.Fatal("inverter should out-rate a NAND")
	}
	// Wider gates have lower raw rates.
	if m.GateRate(circuit.FnNand, 4) >= m.GateRate(circuit.FnNand, 2) {
		t.Fatal("rate must fall with fanin")
	}
	if m.RegisterRate() <= 0 {
		t.Fatal("register rate must be positive")
	}
}

// handAnalysis builds host -1-> A(d=2) -0-> B(d=3) -0-> host and checks
// eq. (4) against hand arithmetic.
func TestComputeHand(t *testing.T) {
	b := graph.NewBuilder()
	a := b.AddVertex("A", 2)
	bb := b.AddVertex("B", 3)
	b.AddEdge(graph.Host, a, 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(bb, graph.Host, 0)
	g := b.Build()
	p := elw.DefaultParams(10) // windows: B [10,12], A [7,9], both measure 2

	gateObs := []float64{0, 0.5, 1.0}
	edgeObs := EdgeObsFromVertex(g, gateObs, 0.8)
	gateRate := []float64{0, 1e-5, 2e-5}
	in := Inputs{GateObs: gateObs, EdgeObs: edgeObs, GateRate: gateRate, RegRate: 3e-5, Params: p}
	an, err := Compute(g, graph.NewRetiming(g), in)
	if err != nil {
		t.Fatal(err)
	}
	// Gates: 0.5·1e-5·2/10 + 1.0·2e-5·2/10 = 1e-6 + 4e-6 = 5e-6.
	if math.Abs(an.Gates-5e-6) > 1e-12 {
		t.Fatalf("Gates = %g", an.Gates)
	}
	// One register on host->A: obs 0.8, adjacent window |ELW(A)| = 2.
	// 0.8·3e-5·2/10 = 4.8e-6.
	if math.Abs(an.Registers-4.8e-6) > 1e-12 {
		t.Fatalf("Registers = %g", an.Registers)
	}
	if an.NumRegisters != 1 || an.SharedRegisters != 1 {
		t.Fatalf("register counts: %d %d", an.NumRegisters, an.SharedRegisters)
	}
	if math.Abs(an.RegisterObs-0.8) > 1e-12 {
		t.Fatalf("RegisterObs = %g", an.RegisterObs)
	}
	if math.Abs(an.Total-an.Gates-an.Registers) > 1e-15 {
		t.Fatal("Total mismatch")
	}
}

func TestComputeDeepChain(t *testing.T) {
	// Edge with 3 registers: one adjacent window + two full windows.
	b := graph.NewBuilder()
	a := b.AddVertex("A", 1)
	bb := b.AddVertex("B", 4)
	b.AddEdge(graph.Host, a, 0)
	b.AddEdge(a, bb, 3)
	b.AddEdge(bb, graph.Host, 0)
	g := b.Build()
	p := elw.DefaultParams(10) // |ELW(B)| = 2, base window = 2

	gateObs := []float64{0, 0.6, 1}
	in := Inputs{
		GateObs:  gateObs,
		EdgeObs:  EdgeObsFromVertex(g, gateObs, 0),
		GateRate: []float64{0, 0, 0}, // isolate the register term
		RegRate:  1e-5,
		Params:   p,
	}
	an, err := Compute(g, graph.NewRetiming(g), in)
	if err != nil {
		t.Fatal(err)
	}
	// 0.6·1e-5·(2 + 2·2)/10 = 3.6e-6.
	if math.Abs(an.Registers-3.6e-6) > 1e-12 {
		t.Fatalf("Registers = %g", an.Registers)
	}
	if an.NumRegisters != 3 {
		t.Fatalf("NumRegisters = %d", an.NumRegisters)
	}
	if math.Abs(an.RegisterObs-1.8) > 1e-12 {
		t.Fatalf("RegisterObs = %g", an.RegisterObs)
	}
}

func TestComputeValidation(t *testing.T) {
	b := graph.NewBuilder()
	a := b.AddVertex("A", 1)
	b.AddEdge(graph.Host, a, 1)
	b.AddEdge(a, graph.Host, 0)
	g := b.Build()
	p := elw.DefaultParams(10)
	good := Inputs{GateObs: []float64{0, 1}, EdgeObs: []float64{0, 1}, GateRate: []float64{0, 1}, RegRate: 1, Params: p}
	if _, err := Compute(g, graph.NewRetiming(g), good); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.GateObs = []float64{0}
	if _, err := Compute(g, graph.NewRetiming(g), bad); err == nil {
		t.Fatal("short GateObs accepted")
	}
	bad = good
	bad.EdgeObs = []float64{0}
	if _, err := Compute(g, graph.NewRetiming(g), bad); err == nil {
		t.Fatal("short EdgeObs accepted")
	}
	r := graph.NewRetiming(g)
	r[a] = 1 // host->A weight becomes... w + r(to)... = 1+1 = 2, A->host = -1
	if _, err := Compute(g, r, good); err == nil {
		t.Fatal("illegal retiming accepted")
	}
}

// TestFullPipelineS27 wires sim + obs + elw + ser end to end on s27.
func TestFullPipelineS27(t *testing.T) {
	c, err := benchfmt.ParseFile("../../testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromCircuit(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(c, sim.Config{Words: 16, Frames: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := obs.Compute(tr, obs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gateObs, err := VertexObs(c, g, res)
	if err != nil {
		t.Fatal(err)
	}
	edgeObs, err := EdgeObs(c, g, gateObs, res)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := VertexRates(c, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, crit, err := g.ArrivalTimes(graph.NewRetiming(g))
	if err != nil {
		t.Fatal(err)
	}
	p := elw.DefaultParams(crit + 1)
	in := Inputs{GateObs: gateObs, EdgeObs: edgeObs, GateRate: rates,
		RegRate: SyntheticRates{}.RegisterRate(), Params: p}
	an, err := Compute(g, graph.NewRetiming(g), in)
	if err != nil {
		t.Fatal(err)
	}
	if an.Total <= 0 {
		t.Fatalf("SER = %g, want positive", an.Total)
	}
	if an.NumRegisters != 3 {
		t.Fatalf("NumRegisters = %d", an.NumRegisters)
	}
	if an.Gates <= 0 || an.Registers <= 0 {
		t.Fatalf("terms: %g %g", an.Gates, an.Registers)
	}
	// eq. (5) cross-check.
	if got := SumRegisterObs(g, graph.NewRetiming(g), edgeObs); math.Abs(got-an.RegisterObs) > 1e-12 {
		t.Fatalf("SumRegisterObs = %g, Analysis = %g", got, an.RegisterObs)
	}
}
