// Package ser evaluates the soft error rate of a sequential circuit per
// eq. (4) of the paper:
//
//	SER = Σ_gates obs(g)·err(g)·|ELW(g)|/Φ + Σ_regs obs(r)·err(r)·|ELW(r)|/Φ
//
// combining logic masking (observability, package obs), timing masking
// (error-latching windows, package elw) and a per-element raw upset rate
// err(·).
//
// The paper extracts err(g) from SPICE characterization [25]; this module
// substitutes a deterministic synthetic characterization table keyed by
// gate function and fanin that preserves the qualitative trend (bigger,
// higher-drive gates collect less charge per node and have lower raw upset
// rates). Only relative magnitudes shape the optimization.
package ser

import (
	"fmt"
	"math"

	"serretime/internal/circuit"
	"serretime/internal/elw"
	"serretime/internal/graph"
	"serretime/internal/obs"
)

// RateModel assigns raw soft-error rates (arbitrary FIT-like units).
type RateModel interface {
	// GateRate is err(g) for a combinational gate.
	GateRate(fn circuit.Func, fanin int) float64
	// RegisterRate is err(r) for a flip-flop.
	RegisterRate() float64
}

// SyntheticRates is the default characterization table (SPICE substitute).
type SyntheticRates struct{}

// GateRate implements RateModel.
func (SyntheticRates) GateRate(fn circuit.Func, fanin int) float64 {
	var base float64
	switch fn {
	case circuit.FnConst0, circuit.FnConst1:
		return 0
	case circuit.FnBuf, circuit.FnNot:
		base = 3.0e-5
	case circuit.FnNand, circuit.FnNor:
		base = 2.2e-5
	case circuit.FnAnd, circuit.FnOr:
		base = 2.0e-5
	case circuit.FnXor, circuit.FnXnor:
		base = 1.6e-5
	default:
		base = 2.0e-5
	}
	if fanin > 2 {
		base *= math.Pow(0.9, float64(fanin-2))
	}
	return base
}

// RegisterRate implements RateModel. Flip-flops dominate the raw upset
// rate of modern designs (exposed state nodes), so the synthetic rate sits
// roughly an order of magnitude above a gate's.
func (SyntheticRates) RegisterRate() float64 { return 2.0e-4 }

// Inputs bundles the per-element quantities eq. (4) consumes.
type Inputs struct {
	// GateObs[v] is the observability of vertex v (host entry ignored).
	GateObs []float64
	// EdgeObs[e] is the observability of the net driving edge e: obs of
	// the source gate, or of the originating primary input for host
	// out-edges. Registers on edge e inherit this observability (eq. 5).
	EdgeObs []float64
	// GateRate[v] is err(g) per vertex (host entry ignored).
	GateRate []float64
	// RegRate is err(r) for flip-flops.
	RegRate float64
	// Params are the ELW timing parameters.
	Params elw.Params
	// MaxIntervals caps ELW interval counts (0 = exact).
	MaxIntervals int
}

// VertexRates maps per-vertex err(g) rates for a circuit-extracted graph.
// Index 0 (the host) is zero.
func VertexRates(c *circuit.Circuit, g *graph.Graph, m RateModel) ([]float64, error) {
	if m == nil {
		m = SyntheticRates{}
	}
	rates := make([]float64, g.NumVertices())
	for v := 1; v < g.NumVertices(); v++ {
		n := g.NodeOf(graph.VertexID(v))
		if n == circuit.InvalidNode {
			return nil, fmt.Errorf("ser: vertex %d has no circuit node", v)
		}
		nd := c.Node(n)
		rates[v] = m.GateRate(nd.Fn, len(nd.Fanin))
	}
	return rates, nil
}

// VertexObs maps the observability analysis onto graph vertices. Index 0
// (the host) is zero.
func VertexObs(c *circuit.Circuit, g *graph.Graph, res *obs.Result) ([]float64, error) {
	o := make([]float64, g.NumVertices())
	for v := 1; v < g.NumVertices(); v++ {
		n := g.NodeOf(graph.VertexID(v))
		if n == circuit.InvalidNode {
			return nil, fmt.Errorf("ser: vertex %d has no circuit node", v)
		}
		o[v] = res.GateObs(n)
	}
	return o, nil
}

// EdgeObs computes the per-edge driver observability: obs of the source
// vertex for ordinary edges, obs of the originating primary input for host
// out-edges (the graph merges all PIs into the host, but boundary
// registers keep their own PI's observability).
func EdgeObs(c *circuit.Circuit, g *graph.Graph, gateObs []float64, res *obs.Result) ([]float64, error) {
	if len(gateObs) != g.NumVertices() {
		return nil, fmt.Errorf("ser: gateObs length mismatch")
	}
	eo := make([]float64, g.NumEdges())
	pis := c.PIs()
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(graph.EdgeID(i))
		if e.From == graph.Host {
			if int(e.SrcPort) < 0 || int(e.SrcPort) >= len(pis) {
				return nil, fmt.Errorf("ser: host edge %d has bad port %d", i, e.SrcPort)
			}
			eo[i] = res.GateObs(pis[e.SrcPort])
			continue
		}
		eo[i] = gateObs[e.From]
	}
	return eo, nil
}

// EdgeObsFromVertex derives per-edge observabilities from per-vertex ones
// for synthetic graphs, assigning hostObs to every host out-edge.
func EdgeObsFromVertex(g *graph.Graph, gateObs []float64, hostObs float64) []float64 {
	eo := make([]float64, g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(graph.EdgeID(i))
		if e.From == graph.Host {
			eo[i] = hostObs
		} else {
			eo[i] = gateObs[e.From]
		}
	}
	return eo
}

// Analysis is the SER breakdown of a circuit under a retiming.
type Analysis struct {
	// Total = Gates + Registers.
	Total float64
	// Gates is the combinational-gate term of eq. (4).
	Gates float64
	// Registers is the register term of eq. (4).
	Registers float64
	// NumRegisters is the per-edge register count (eq. 5 weighting).
	NumRegisters int64
	// SharedRegisters is the physical flip-flop count with max-sharing.
	SharedRegisters int64
	// RegisterObs is Σ obs over registers (eq. 5), the MinObs objective.
	RegisterObs float64
}

// Compute evaluates eq. (4) for graph g under retiming r.
//
// Register ELWs: the register adjacent to the consuming gate v sees
// ELW(v)−d(v), whose measure equals |ELW(v)|; deeper chain registers and
// registers driving primary outputs see the full latching window Ts+Th.
//
// A register whose launched shortest path is below the hold time Th races
// the downstream capture window: its data transition itself can land
// inside the hold interval, enlarging the susceptible window by the
// shortfall Th − slack. This is the timing-masking degradation the
// paper's P2' constraint exists to prevent (Section III-B); evaluating it
// makes the SER of hold-marginal placements honest.
func Compute(g *graph.Graph, r graph.Retiming, in Inputs) (*Analysis, error) {
	if len(in.GateObs) != g.NumVertices() || len(in.GateRate) != g.NumVertices() {
		return nil, fmt.Errorf("ser: obs/rate length mismatch")
	}
	if len(in.EdgeObs) != g.NumEdges() {
		return nil, fmt.Errorf("ser: edge obs length mismatch")
	}
	if err := g.CheckLegal(r); err != nil {
		return nil, err
	}
	elws, err := elw.Exact(g, r, in.Params, in.MaxIntervals)
	if err != nil {
		return nil, err
	}
	lab, err := elw.ComputeLabels(g, r, in.Params)
	if err != nil {
		return nil, err
	}
	a := &Analysis{}
	for v := 1; v < g.NumVertices(); v++ {
		a.Gates += in.GateObs[v] * in.GateRate[v] * elws[v].Measure() / in.Params.Phi
	}
	baseMeasure := in.Params.Ts + in.Params.Th
	for i := 0; i < g.NumEdges(); i++ {
		eid := graph.EdgeID(i)
		k := g.WR(eid, r)
		if k <= 0 {
			continue
		}
		e := g.Edge(eid)
		o := in.EdgeObs[i]
		a.NumRegisters += int64(k)
		a.RegisterObs += o * float64(k)
		var adjacent float64
		if e.To == graph.Host {
			adjacent = baseMeasure
		} else {
			adjacent = elws[e.To].Measure()
			if lab.HasWindow[e.To] {
				if shortfall := in.Params.Th - lab.HoldSlack(g, in.Params, eid); shortfall > 0 {
					adjacent += shortfall
				}
			}
		}
		win := adjacent + float64(k-1)*baseMeasure
		a.Registers += o * in.RegRate * win / in.Params.Phi
	}
	a.SharedRegisters = g.SharedRegisters(r)
	a.Total = a.Gates + a.Registers
	return a, nil
}

// SumRegisterObs evaluates eq. (5): Σ_(u,v) obs(u)·w_r(u,v), the quantity
// MinObs retiming minimizes, using per-edge driver observabilities.
func SumRegisterObs(g *graph.Graph, r graph.Retiming, edgeObs []float64) float64 {
	var s float64
	for i := 0; i < g.NumEdges(); i++ {
		eid := graph.EdgeID(i)
		if k := g.WR(eid, r); k > 0 {
			s += edgeObs[i] * float64(k)
		}
	}
	return s
}
