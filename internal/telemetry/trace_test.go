package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDParse(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID minted the zero ID")
	}
	got, ok := ParseTraceID(id.String())
	if !ok || got != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", id.String(), got, ok)
	}
	for _, bad := range []string{
		"",
		"abc",
		"00000000000000000000000000000000",           // all-zero is invalid
		"zz102030405060708090a0b0c0d0e0f0",           // not hex
		"0102030405060708090a0b0c0d0e0f0102",         // too long
	} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestParseTraceparent(t *testing.T) {
	id := NewTraceID()
	cases := []struct {
		in   string
		want TraceID
		ok   bool
	}{
		{"00-" + id.String() + "-00f067aa0ba902b7-01", id, true},
		{id.String(), id, true},               // bare ID accepted
		{"  " + id.String() + "  ", id, true}, // whitespace trimmed
		{"", TraceID{}, false},
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", TraceID{}, false},
		{"00-nothex-00f067aa0ba902b7-01", TraceID{}, false},
		{"banana", TraceID{}, false},
	}
	for _, c := range cases {
		got, ok := ParseTraceparent(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("ParseTraceparent(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// TestTraceTree drives a trace through the shape of a real job — queue
// wait, two tiers, pipeline stages, merged inner-loop spans, parallel
// shards — and checks the resulting tree node by node.
func TestTraceTree(t *testing.T) {
	tr := NewTrace(TraceID{})
	tr.Begin("queue-wait")
	tr.End("queue-wait", nil)
	tr.Begin("solve")

	// Tier 1 fails, tier 2 succeeds.
	tr.SpanStart(PhaseTierMinObsWin)
	tr.SpanStart(PhaseMinimize)
	for i := 0; i < 3; i++ { // level-2 spans merge into one node
		tr.SpanStart(PhaseFindViolations)
		tr.SpanEnd(PhaseFindViolations, nil)
	}
	tr.SpanEnd(PhaseMinimize, nil)
	tr.SpanEnd(PhaseTierMinObsWin, errors.New("guard: budget"))
	tr.SpanStart(PhaseTierMinObs)
	tr.ShardSpan("obs.compute", 0, time.Millisecond, nil)
	tr.ShardSpan("obs.compute", 0, time.Millisecond, nil)
	tr.ShardSpan("obs.compute", 1, 2*time.Millisecond, nil)
	tr.SpanEnd(PhaseTierMinObs, nil)

	tr.End("solve", nil)
	tr.Finish()
	root := tr.Snapshot()

	if root.Name != "job" || len(root.Children) != 2 {
		t.Fatalf("root = %q with %d children, want job with 2", root.Name, len(root.Children))
	}
	if root.Children[0].Name != "queue-wait" || root.Children[1].Name != "solve" {
		t.Fatalf("top spans = %q, %q", root.Children[0].Name, root.Children[1].Name)
	}
	// Tiers nest under solve because they opened while solve was open.
	solve := root.Children[1]
	if len(solve.Children) != 2 {
		t.Fatalf("solve has %d children, want 2 tiers", len(solve.Children))
	}
	t1 := solve.Children[0]
	if t1.Name != "tier:minobswin" || t1.Errs != 1 || !strings.Contains(t1.Err, "budget") {
		t.Fatalf("tier 1 = %+v", t1)
	}
	min := t1.Find("minimize")
	if min == nil || len(min.Children) != 1 {
		t.Fatalf("minimize missing or unmerged: %+v", min)
	}
	if fv := min.Children[0]; fv.Name != "find-violations" || fv.Count != 3 {
		t.Fatalf("find-violations merged node = %+v, want count 3", fv)
	}
	// Shards: one node per (op, worker), counts accumulated.
	t2 := solve.Children[1]
	if len(t2.Children) != 2 {
		t.Fatalf("tier 2 has %d shard nodes, want 2", len(t2.Children))
	}
	w1 := t2.Children[0]
	if w1.Name != "par:obs.compute" || w1.Worker != 1 || w1.Count != 2 {
		t.Fatalf("shard worker 1 = %+v", w1)
	}
	if w2 := t2.Children[1]; w2.Worker != 2 || w2.Count != 1 {
		t.Fatalf("shard worker 2 = %+v", w2)
	}
}

func TestTraceTreeTopLevelCount(t *testing.T) {
	tr := NewTrace(TraceID{})
	tr.Begin("queue-wait")
	tr.End("queue-wait", nil)
	tr.Begin("solve")
	tr.End("solve", nil)
	root := tr.Snapshot()
	if len(root.Children) != 2 {
		t.Fatalf("got %d top-level spans, want 2", len(root.Children))
	}
}

// TestTraceEndForceCloses checks that ending an outer span closes spans
// accidentally left open beneath it instead of corrupting the stack.
func TestTraceEndForceCloses(t *testing.T) {
	tr := NewTrace(TraceID{})
	tr.Begin("solve")
	tr.SpanStart(PhaseTierMinObsWin)
	tr.SpanStart(PhaseMinimize) // never explicitly ended
	tr.End("solve", nil)
	if got := tr.CurrentPath(); len(got) != 0 {
		t.Fatalf("open path after End(solve) = %v, want empty", got)
	}
	root := tr.Snapshot()
	min := root.Find("minimize")
	if min == nil || min.Count != 1 || min.Open {
		t.Fatalf("force-closed span = %+v", min)
	}
	// An unmatched End is a no-op.
	tr.End("nonexistent", nil)
}

func TestTraceSnapshotWhileOpen(t *testing.T) {
	tr := NewTrace(TraceID{})
	tr.Begin("solve")
	tr.SpanStart(PhaseTierMinObsWin)
	time.Sleep(5 * time.Millisecond)

	root := tr.Snapshot()
	solve := root.Find("solve")
	tier := root.Find("tier:minobswin")
	if solve == nil || !solve.Open || tier == nil || !tier.Open {
		t.Fatalf("open spans not marked: solve=%+v tier=%+v", solve, tier)
	}
	if solve.DurNS <= 0 || tier.DurNS <= 0 {
		t.Fatalf("open spans carry no elapsed time: %d, %d", solve.DurNS, tier.DurNS)
	}
	if got := tr.CurrentPath(); len(got) != 2 || got[0] != "solve" || got[1] != "tier:minobswin" {
		t.Fatalf("CurrentPath = %v", got)
	}
	s := tr.StackString()
	if !strings.Contains(s, "solve(") || !strings.Contains(s, " > tier:minobswin(") {
		t.Fatalf("StackString = %q", s)
	}
	// The snapshot is a deep copy: mutating it must not touch the trace.
	solve.Name = "mutated"
	if tr.Snapshot().Find("solve") == nil {
		t.Fatal("snapshot aliased the live tree")
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace(TraceID{})
	tr.Begin("solve")
	for i := 0; i < maxTraceSpans+10; i++ {
		tr.Begin("burst")
		tr.End("burst", nil)
	}
	tr.End("solve", nil)
	root := tr.Snapshot()
	var n int
	root.Walk(func(int, *Span) { n++ })
	if n > maxTraceSpans+2 { // root + solve + capped children
		t.Fatalf("tree grew to %d nodes past the %d cap", n, maxTraceSpans)
	}
	// Past the cap, same-named spans merge instead of appending.
	solve := root.Find("solve")
	var total int64
	for _, c := range solve.Children {
		if c.Name == "burst" {
			total += c.Count
		}
	}
	if total != maxTraceSpans+10 {
		t.Fatalf("merged burst count = %d, want %d", total, maxTraceSpans+10)
	}
}

// TestTraceConcurrentShards hammers one trace with shard completions
// from many goroutines while the owner opens and closes phases — the
// shape par.Pool produces. Run with -race.
func TestTraceConcurrentShards(t *testing.T) {
	tr := NewTrace(TraceID{})
	tr.Begin("solve")
	const workers, rounds = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tr.ShardSpan("obs.compute", w, time.Microsecond, nil)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			_ = tr.Snapshot()
			_ = tr.CurrentPath()
			_ = tr.StackString()
		}
	}()
	wg.Wait()
	<-done
	tr.End("solve", nil)
	tr.Finish()

	root := tr.Snapshot()
	var count int64
	root.Walk(func(_ int, sp *Span) {
		if strings.HasPrefix(sp.Name, "par:") {
			count += sp.Count
		}
	})
	if count != workers*rounds {
		t.Fatalf("shard completions recorded = %d, want %d", count, workers*rounds)
	}
}

func TestTraceDocRoundTrip(t *testing.T) {
	tr := NewTrace(TraceID{})
	tr.Begin("queue-wait")
	tr.End("queue-wait", nil)
	tr.Begin("solve")
	tr.SpanStart(PhaseTierMinObsWin)
	tr.SpanEnd(PhaseTierMinObsWin, nil)
	tr.End("solve", nil)
	tr.Finish()

	doc := tr.Doc("job-1", "s27", "done", "minobswin", true)
	b := doc.Encode()
	if len(b) == 0 || bytes.ContainsRune(b, '\n') {
		t.Fatalf("Encode = %q, want one non-empty line", b)
	}
	got, err := DecodeTraceDoc(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != tr.ID().String() || got.JobID != "job-1" || got.Name != "s27" ||
		got.Status != "done" || got.Tier != "minobswin" || !got.Degraded {
		t.Fatalf("decoded doc = %+v", got)
	}
	if got.Root.Find("tier:minobswin") == nil {
		t.Fatal("decoded tree lost the tier span")
	}
	if got.WallNS <= 0 || got.Root.DurNS != got.WallNS {
		t.Fatalf("wall = %d, root dur = %d", got.WallNS, got.Root.DurNS)
	}

	for _, bad := range [][]byte{
		nil,
		[]byte("{"),
		[]byte(`{}`),
		[]byte(`{"trace_id":"aa"}`),              // no root
		[]byte(`{"root":{"name":"job"}}`),        // no trace ID
	} {
		if _, err := DecodeTraceDoc(bad); err == nil {
			t.Errorf("DecodeTraceDoc(%q) accepted", bad)
		}
	}
}

func TestQuantile(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("Quantile(nil) = %v", got)
	}
	ds := []time.Duration{5, 1, 4, 2, 3} // unsorted on purpose
	cases := []struct {
		q    float64
		want time.Duration
	}{{0, 1}, {0.5, 3}, {0.95, 5}, {1, 5}}
	for _, c := range cases {
		if got := Quantile(ds, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// The input slice must not be reordered.
	if ds[0] != 5 {
		t.Fatalf("Quantile sorted the caller's slice: %v", ds)
	}
}

func TestAggregateTraces(t *testing.T) {
	mk := func(job, status, tier string, degraded bool, queue, solve time.Duration) *TraceDoc {
		tr := NewTrace(TraceID{})
		tr.Begin("queue-wait")
		tr.End("queue-wait", nil)
		tr.Begin("solve")
		tr.SpanStart(PhaseTierMinObsWin)
		tr.SpanEnd(PhaseTierMinObsWin, nil)
		tr.End("solve", nil)
		tr.Finish()
		doc := tr.Doc(job, job, status, tier, degraded)
		// Overwrite the measured durations with exact ones so the
		// aggregate is deterministic.
		doc.Root.Find("queue-wait").DurNS = int64(queue)
		doc.Root.Find("solve").DurNS = int64(solve)
		doc.WallNS = int64(queue + solve)
		return doc
	}
	docs := []*TraceDoc{
		mk("a", "done", "minobswin", false, 10*time.Millisecond, 100*time.Millisecond),
		mk("b", "done", "minobs", true, 20*time.Millisecond, 300*time.Millisecond),
		mk("c", "failed", "", false, 30*time.Millisecond, 50*time.Millisecond),
	}
	r := AggregateTraces(docs)
	if r.Jobs != 3 || r.ByStatus["done"] != 2 || r.ByStatus["failed"] != 1 {
		t.Fatalf("jobs/status = %d %v", r.Jobs, r.ByStatus)
	}
	if r.ByTier["minobs"] != 1 || r.Degraded != 1 {
		t.Fatalf("tier/degraded = %v %d", r.ByTier, r.Degraded)
	}
	if len(r.QueueWait) != 3 || len(r.Solve) != 3 {
		t.Fatalf("queue/solve samples = %d/%d", len(r.QueueWait), len(r.Solve))
	}
	if r.PhaseCount["tier:minobswin"] != 3 {
		t.Fatalf("phase counts = %v", r.PhaseCount)
	}
	if len(r.Slowest) == 0 || r.Slowest[0].JobID != "b" {
		t.Fatalf("slowest = %+v", r.Slowest)
	}
	var buf bytes.Buffer
	r.WriteReport(&buf, 0)
	out := buf.String()
	for _, want := range []string{"jobs", "queue-wait", "solve", "tier:minobswin", "slowest"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestExemplarHistogram(t *testing.T) {
	h := NewExemplarHistogram(LatencyBounds())
	id := NewTraceID()
	h.Observe(3*time.Millisecond, id)
	h.Observe(4*time.Millisecond, TraceID{}) // untraced: buckets only
	snap, ex := h.Snapshot()
	if snap.Count != 2 {
		t.Fatalf("count = %d", snap.Count)
	}
	var found bool
	for _, e := range ex {
		if e.TraceID == id.String() {
			found = true
			if e.Value != 3*time.Millisecond || e.When.IsZero() {
				t.Fatalf("exemplar = %+v", e)
			}
		}
	}
	if !found {
		t.Fatalf("no exemplar carries %s: %+v", id, ex)
	}
	// A later traced observation in the same bucket replaces the exemplar.
	id2 := NewTraceID()
	h.Observe(3500*time.Microsecond, id2)
	_, ex = h.Snapshot()
	var last string
	for _, e := range ex {
		if e.TraceID != "" {
			last = e.TraceID
		}
	}
	if last != id2.String() {
		t.Fatalf("bucket exemplar = %s, want %s", last, id2)
	}
}

// TestJSONLWriterInterleaving streams events from many goroutines into
// one writer and checks every emitted line is intact JSON with its run
// label — no torn or interleaved lines. Run with -race.
func TestJSONLWriterInterleaving(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	const writers, events = 8, 100
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			view := w.Run(fmt.Sprintf("run-%d", i))
			for j := 0; j < events; j++ {
				view.SpanStart(PhaseMinimize)
				view.Count(0, 1)
				view.SpanEnd(PhaseMinimize, nil)
			}
		}(i)
	}
	wg.Wait()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte{'\n'})
	if want := writers * events * 3; len(lines) != want {
		t.Fatalf("%d lines, want %d", len(lines), want)
	}
	perRun := make(map[string]int)
	for _, line := range lines {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("torn line %q: %v", line, err)
		}
		perRun[rec.Run]++
	}
	if len(perRun) != writers {
		t.Fatalf("run labels = %v", perRun)
	}
	for run, n := range perRun {
		if n != events*3 {
			t.Fatalf("run %s has %d events, want %d", run, n, events*3)
		}
	}
}

// TestCollectorMergeConcurrent drives one Collector from goroutines
// covering every event type at once, then checks totals merged exactly.
// Run with -race. (TestCollectorConcurrent covers counters; this one
// adds spans and gauges in the same interleaving.)
func TestCollectorMergeConcurrent(t *testing.T) {
	c := NewCollector()
	const gs, rounds = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < gs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				c.SpanStart(PhaseLabelPatch)
				c.SpanEnd(PhaseLabelPatch, nil)
				c.Count(Counter(0), 2)
				c.Gauge(Gauge(0), int64(i*rounds+j))
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if got := st.Phases[PhaseLabelPatch].Count; got != gs*rounds {
		t.Fatalf("span count = %d, want %d", got, gs*rounds)
	}
	if got := st.Counters[0]; got != gs*rounds*2 {
		t.Fatalf("counter = %d, want %d", got, gs*rounds*2)
	}
	if max := st.Gauges[0]; max != (gs-1)*rounds+rounds-1 {
		t.Fatalf("gauge max = %d, want %d", max, (gs-1)*rounds+rounds-1)
	}
}
