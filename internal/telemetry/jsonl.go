package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Record is one JSONL trace line. Timestamps are monotonic nanosecond
// offsets from the writer's creation, so traces are self-contained and
// replayable without wall-clock parsing.
type Record struct {
	// T is the event's offset in nanoseconds since the trace started
	// (monotonic clock).
	T int64 `json:"t"`
	// Kind is one of "span_start", "span_end", "count", "gauge".
	Kind string `json:"kind"`
	// Run scopes the event to a named run (e.g. a serbench circuit);
	// empty for single-run traces.
	Run string `json:"run,omitempty"`
	// Phase is the span's phase name (span events).
	Phase string `json:"phase,omitempty"`
	// Counter is the counter name (count events).
	Counter string `json:"counter,omitempty"`
	// Gauge is the gauge name (gauge events).
	Gauge string `json:"gauge,omitempty"`
	// Value is the count delta or gauge sample.
	Value int64 `json:"value,omitempty"`
	// Err is the span's error text (failed span_end events).
	Err string `json:"err,omitempty"`
}

// Record kinds.
const (
	KindSpanStart = "span_start"
	KindSpanEnd   = "span_end"
	KindCount     = "count"
	KindGauge     = "gauge"
)

// JSONLWriter streams telemetry events as JSON lines. It is safe for
// concurrent use (one encoder guarded by a mutex); events from parallel
// runs interleave but carry their run label. The zero-allocation budget
// of the Nop path does not apply here — a streaming trace trades
// allocation for visibility and is opt-in (serbench -trace).
type JSONLWriter struct {
	start time.Time

	mu  sync.Mutex
	buf *bufio.Writer
	err error
}

// NewJSONLWriter wraps w (typically a file). Call Flush before closing
// the underlying writer.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{start: time.Now(), buf: bufio.NewWriter(w)}
}

// Flush drains buffered lines and returns the first write error
// encountered over the writer's lifetime.
func (w *JSONLWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if ferr := w.buf.Flush(); w.err == nil {
		w.err = ferr
	}
	return w.err
}

func (w *JSONLWriter) emit(rec Record) {
	line, merr := json.Marshal(rec)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if merr != nil {
		w.err = merr
		return
	}
	if _, werr := w.buf.Write(append(line, '\n')); werr != nil {
		w.err = werr
	}
}

func (w *JSONLWriter) record(run string, p Phase, kind string, c Counter, g Gauge, v int64, err error) {
	rec := Record{T: int64(time.Since(w.start)), Kind: kind, Run: run, Value: v}
	switch kind {
	case KindSpanStart, KindSpanEnd:
		rec.Phase = p.String()
		if err != nil {
			rec.Err = err.Error()
		}
	case KindCount:
		rec.Counter = c.String()
	case KindGauge:
		rec.Gauge = g.String()
	}
	w.emit(rec)
}

// SpanStart implements Recorder (unscoped run).
func (w *JSONLWriter) SpanStart(p Phase) { w.record("", p, KindSpanStart, 0, 0, 0, nil) }

// SpanEnd implements Recorder (unscoped run).
func (w *JSONLWriter) SpanEnd(p Phase, err error) { w.record("", p, KindSpanEnd, 0, 0, 0, err) }

// Count implements Recorder (unscoped run).
func (w *JSONLWriter) Count(c Counter, n int64) { w.record("", 0, KindCount, c, 0, n, nil) }

// Gauge implements Recorder (unscoped run).
func (w *JSONLWriter) Gauge(g Gauge, v int64) { w.record("", 0, KindGauge, 0, g, v, nil) }

// Run returns a Recorder view that stamps every event with the run name,
// sharing this writer's stream and clock. Use one view per concurrent
// run so a multi-circuit sweep produces one trace file that Replay can
// split back apart.
func (w *JSONLWriter) Run(name string) Recorder { return &runView{w: w, run: name} }

type runView struct {
	w   *JSONLWriter
	run string
}

func (v *runView) SpanStart(p Phase)          { v.w.record(v.run, p, KindSpanStart, 0, 0, 0, nil) }
func (v *runView) SpanEnd(p Phase, err error) { v.w.record(v.run, p, KindSpanEnd, 0, 0, 0, err) }
func (v *runView) Count(c Counter, n int64)   { v.w.record(v.run, 0, KindCount, c, 0, n, nil) }
func (v *runView) Gauge(g Gauge, val int64)   { v.w.record(v.run, 0, KindGauge, 0, g, val, nil) }

// ReadJSONL parses a JSONL trace back into records. Blank lines are
// skipped; a malformed line fails with its 1-based line number.
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading trace: %w", err)
	}
	return out, nil
}

// Replay aggregates trace records into one RunStats per run label,
// reconstructing per-phase durations by LIFO span matching — the exact
// computation a live Collector performs, so a JSONL round trip and an
// in-memory collection of the same run agree. Wall is the first-to-last
// event distance within each run. Events with unknown phase/counter/gauge
// names (from a newer writer) are skipped.
func Replay(recs []Record) map[string]*RunStats {
	type runAgg struct {
		stats      *RunStats
		open       [NumPhases][]int64
		minT, maxT int64
		any        bool
	}
	runs := map[string]*runAgg{}
	get := func(name string) *runAgg {
		a, ok := runs[name]
		if !ok {
			a = &runAgg{stats: &RunStats{}}
			runs[name] = a
		}
		return a
	}
	for _, rec := range recs {
		a := get(rec.Run)
		if !a.any || rec.T < a.minT {
			a.minT = rec.T
		}
		if !a.any || rec.T > a.maxT {
			a.maxT = rec.T
		}
		a.any = true
		switch rec.Kind {
		case KindSpanStart:
			if p, ok := ParsePhase(rec.Phase); ok {
				a.open[p] = append(a.open[p], rec.T)
			}
		case KindSpanEnd:
			p, ok := ParsePhase(rec.Phase)
			if !ok {
				continue
			}
			if n := len(a.open[p]); n > 0 {
				ps := &a.stats.Phases[p]
				ps.Total += time.Duration(rec.T - a.open[p][n-1])
				a.open[p] = a.open[p][:n-1]
				ps.Count++
				if rec.Err != "" {
					ps.Errs++
				}
			}
		case KindCount:
			if c, ok := ParseCounter(rec.Counter); ok {
				a.stats.Counters[c] += rec.Value
			}
		case KindGauge:
			if g, ok := ParseGauge(rec.Gauge); ok && rec.Value > a.stats.Gauges[g] {
				a.stats.Gauges[g] = rec.Value
			}
		}
	}
	out := make(map[string]*RunStats, len(runs))
	for name, a := range runs {
		a.stats.Wall = time.Duration(a.maxT - a.minT)
		out[name] = a.stats
	}
	return out
}
