package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Quantile returns the q-quantile (0 <= q <= 1) of the durations using
// the nearest-rank method; ds is not modified. Zero durations return 0.
func Quantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// FleetReport aggregates many persisted trace documents into the
// fleet-level picture seranalyze prints: how jobs spent their time
// (queue wait vs. solve), which degradation tiers they landed on, and
// the per-phase cost breakdown across the whole corpus.
type FleetReport struct {
	Jobs     int
	ByStatus map[string]int
	ByTier   map[string]int
	Degraded int

	// Per-job duration collections (one entry per job that has the
	// corresponding span; Wall always has one per job).
	QueueWait []time.Duration
	Solve     []time.Duration
	Wall      []time.Duration

	// PhaseTotal/PhaseCount aggregate every span name in the corpus:
	// summed duration and instance count (merged spans contribute their
	// merge counts).
	PhaseTotal map[string]time.Duration
	PhaseCount map[string]int64

	// Slowest holds the highest-wall-clock documents, descending, so the
	// report can name the exact traces worth opening.
	Slowest []*TraceDoc
}

// AggregateTraces builds a FleetReport from trace documents; nil entries
// are skipped.
func AggregateTraces(docs []*TraceDoc) *FleetReport {
	r := &FleetReport{
		ByStatus:   map[string]int{},
		ByTier:     map[string]int{},
		PhaseTotal: map[string]time.Duration{},
		PhaseCount: map[string]int64{},
	}
	for _, d := range docs {
		if d == nil || d.Root == nil {
			continue
		}
		r.Jobs++
		if d.Status != "" {
			r.ByStatus[d.Status]++
		}
		if d.Tier != "" {
			r.ByTier[d.Tier]++
		}
		if d.Degraded {
			r.Degraded++
		}
		r.Wall = append(r.Wall, time.Duration(d.WallNS))
		if qw := d.Root.Find("queue-wait"); qw != nil {
			r.QueueWait = append(r.QueueWait, time.Duration(qw.DurNS))
		}
		if sv := d.Root.Find("solve"); sv != nil {
			r.Solve = append(r.Solve, time.Duration(sv.DurNS))
		}
		d.Root.Walk(func(depth int, sp *Span) {
			if depth == 0 { // the root "job" span is the wall clock
				return
			}
			r.PhaseTotal[sp.Name] += time.Duration(sp.DurNS)
			n := sp.Count
			if n == 0 {
				n = 1
			}
			r.PhaseCount[sp.Name] += n
		})
		r.Slowest = append(r.Slowest, d)
	}
	sort.Slice(r.Slowest, func(i, j int) bool { return r.Slowest[i].WallNS > r.Slowest[j].WallNS })
	return r
}

// WriteReport renders the fleet report; top bounds the slowest-job and
// phase tables (top <= 0 means 10).
func (r *FleetReport) WriteReport(w io.Writer, top int) {
	if top <= 0 {
		top = 10
	}
	fmt.Fprintf(w, "fleet trace report: %d job(s)\n", r.Jobs)
	if len(r.ByStatus) > 0 {
		fmt.Fprintf(w, "  by status: %s\n", countTable(r.ByStatus))
	}
	if len(r.ByTier) > 0 {
		fmt.Fprintf(w, "  by tier:   %s (degraded %d/%d)\n", countTable(r.ByTier), r.Degraded, r.Jobs)
	}
	fmt.Fprintf(w, "\n  latency          p50          p95          p99          max\n")
	writeQuantileRow(w, "wall", r.Wall)
	writeQuantileRow(w, "queue-wait", r.QueueWait)
	writeQuantileRow(w, "solve", r.Solve)

	if len(r.PhaseTotal) > 0 {
		type row struct {
			name  string
			total time.Duration
			count int64
		}
		rows := make([]row, 0, len(r.PhaseTotal))
		for name, total := range r.PhaseTotal {
			rows = append(rows, row{name, total, r.PhaseCount[name]})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].total > rows[j].total })
		if len(rows) > top {
			rows = rows[:top]
		}
		fmt.Fprintf(w, "\n  phase breakdown (total across jobs, top %d)\n", len(rows))
		for _, rw := range rows {
			fmt.Fprintf(w, "    %-24s %12v  ×%d\n", rw.name, rw.total.Round(time.Microsecond), rw.count)
		}
	}

	if len(r.Slowest) > 0 {
		n := len(r.Slowest)
		if n > top {
			n = top
		}
		fmt.Fprintf(w, "\n  slowest jobs (top %d)\n", n)
		for _, d := range r.Slowest[:n] {
			fmt.Fprintf(w, "    %12v  %-12s tier=%-22s trace=%s\n",
				time.Duration(d.WallNS).Round(time.Millisecond), d.Name, orDash(d.Tier), d.TraceID)
		}
	}
}

func writeQuantileRow(w io.Writer, name string, ds []time.Duration) {
	if len(ds) == 0 {
		fmt.Fprintf(w, "  %-12s %12s\n", name, "-")
		return
	}
	fmt.Fprintf(w, "  %-12s %12v %12v %12v %12v\n", name,
		Quantile(ds, 0.50).Round(time.Microsecond),
		Quantile(ds, 0.95).Round(time.Microsecond),
		Quantile(ds, 0.99).Round(time.Microsecond),
		Quantile(ds, 1.0).Round(time.Microsecond))
}

func countTable(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, " ")
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
