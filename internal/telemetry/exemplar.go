package telemetry

import (
	"sync"
	"time"
)

// Exemplar is the most recent traced observation that landed in one
// histogram bucket: the breadcrumb that lets an operator jump from a
// p99 bucket on /metrics straight to the job that caused it.
type Exemplar struct {
	TraceID string
	Value   time.Duration
	When    time.Time
}

// ExemplarHistogram pairs a lock-free Histogram with per-bucket
// exemplars. Observations without a trace ID update only the buckets,
// so untraced paths keep the histogram's one-atomic-add cost; traced
// observations additionally stamp their bucket's exemplar under a
// mutex (once per job completion, never on the solve hot path).
type ExemplarHistogram struct {
	h  *Histogram
	mu sync.Mutex
	ex []Exemplar // len(bounds)+1, parallel to the buckets
}

// NewExemplarHistogram returns an exemplared histogram over the given
// ascending upper bounds.
func NewExemplarHistogram(bounds []time.Duration) *ExemplarHistogram {
	h := NewHistogram(bounds)
	return &ExemplarHistogram{h: h, ex: make([]Exemplar, len(h.counts))}
}

// Observe records one duration; a non-zero trace ID becomes the bucket's
// exemplar.
func (e *ExemplarHistogram) Observe(d time.Duration, trace TraceID) {
	e.h.Observe(d)
	if trace.IsZero() {
		return
	}
	i := e.h.bucket(d)
	e.mu.Lock()
	e.ex[i] = Exemplar{TraceID: trace.String(), Value: d, When: time.Now()}
	e.mu.Unlock()
}

// Snapshot copies the histogram state and the per-bucket exemplars
// (zero-valued entries mean the bucket was never hit by a traced
// observation).
func (e *ExemplarHistogram) Snapshot() (HistogramSnapshot, []Exemplar) {
	s := e.h.Snapshot()
	e.mu.Lock()
	ex := make([]Exemplar, len(e.ex))
	copy(ex, e.ex)
	e.mu.Unlock()
	return s, ex
}
