// Package telemetry is the observability substrate of the toolkit: typed
// trace events (phase spans, counters, gauges) emitted by the solver core,
// the classic-retiming initialization, the ELW analysis, the forest
// machinery, and the RetimeRobust degradation chain.
//
// The package has no dependencies outside the standard library and is
// built around a single small interface, Recorder, with three
// implementations:
//
//	Nop         the default: every method is an empty body. The hot path
//	            of the optimizer runs against it with zero allocations
//	            and unmeasurable overhead, so instrumentation is always
//	            compiled in and always on.
//	Collector   in-memory aggregation: per-phase durations/counts,
//	            counter totals, gauge maxima — summarized as a RunStats.
//	JSONLWriter a streaming trace: one JSON object per event, replayable
//	            into RunStats with ReadJSONL + Replay (seranalyze -trace).
//
// Phases, counters and gauges are small integer enums — not strings — so
// that recording on the optimizer's inner loop never allocates.
package telemetry

import (
	"fmt"
	"time"
)

// Phase identifies a timed span. Phases form a static three-level
// hierarchy (see Level): degradation tiers at the top, pipeline stages
// below them, and the optimizer's inner-loop activities at the bottom.
// Durations of same-level spans are disjoint by construction, so each
// level's totals tile the run's wall-clock.
type Phase uint8

const (
	// PhaseSynthesize is circuit synthesis / netlist loading (level 0).
	PhaseSynthesize Phase = iota
	// PhaseTierMinObsWin .. PhaseTierIdentity are the RetimeRobust
	// degradation rungs (level 0); the span error carries the guard error
	// that made the chain step down.
	PhaseTierMinObsWin
	PhaseTierMinObsWinRelaxed
	PhaseTierMinObs
	PhaseTierIdentity
	// PhaseObs is the signature/ODC observability analysis (level 1).
	PhaseObs
	// PhaseInit is the Section V initialization: setup+hold min-period
	// retiming and Rmin selection (level 1).
	PhaseInit
	// PhaseGains is the b(v) gain computation (level 1).
	PhaseGains
	// PhaseMinimize is the whole Algorithm 1 iteration loop (level 1).
	PhaseMinimize
	// PhaseRebuild is circuit materialization of the result (level 1).
	PhaseRebuild
	// PhaseAnalysis is the before/after SER evaluation (level 1).
	PhaseAnalysis
	// PhaseVerify is the sequential-equivalence co-simulation (level 1).
	PhaseVerify
	// PhasePositiveSet is an exact closed-set (V_P(F)) computation
	// (level 2, inside PhaseMinimize).
	PhasePositiveSet
	// PhaseFindViolations is one tentative move's P0/P1'/P2' check
	// (level 2, inside PhaseMinimize).
	PhaseFindViolations
	// PhaseELWRecompute is one L/R timing-label computation (level 3,
	// inside PhaseFindViolations or PhaseInit).
	PhaseELWRecompute
	// PhaseRepair is the constraint integration of one iteration's
	// violations (level 2, inside PhaseMinimize).
	PhaseRepair
	// PhaseLabelPatch is one dirty-region incremental L/R label update of
	// the transactional solver state (level 3, inside PhaseFindViolations;
	// the incremental sibling of PhaseELWRecompute).
	PhaseLabelPatch

	// NumPhases bounds the enum; not a phase.
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseSynthesize:           "synthesize",
	PhaseTierMinObsWin:        "tier:minobswin",
	PhaseTierMinObsWinRelaxed: "tier:minobswin-relaxed",
	PhaseTierMinObs:           "tier:minobs",
	PhaseTierIdentity:         "tier:identity",
	PhaseObs:                  "obs-analysis",
	PhaseInit:                 "init",
	PhaseGains:                "gains",
	PhaseMinimize:             "minimize",
	PhaseRebuild:              "rebuild",
	PhaseAnalysis:             "analysis",
	PhaseVerify:               "verify",
	PhasePositiveSet:          "positive-set",
	PhaseFindViolations:       "find-violations",
	PhaseELWRecompute:         "elw-recompute",
	PhaseRepair:               "repair",
	PhaseLabelPatch:           "label-patch",
}

var phaseLevels = [NumPhases]int{
	PhaseSynthesize:           0,
	PhaseTierMinObsWin:        0,
	PhaseTierMinObsWinRelaxed: 0,
	PhaseTierMinObs:           0,
	PhaseTierIdentity:         0,
	PhaseObs:                  1,
	PhaseInit:                 1,
	PhaseGains:                1,
	PhaseMinimize:             1,
	PhaseRebuild:              1,
	PhaseAnalysis:             1,
	PhaseVerify:               1,
	PhasePositiveSet:          2,
	PhaseFindViolations:       2,
	PhaseELWRecompute:         3,
	PhaseRepair:               2,
	PhaseLabelPatch:           3,
}

// String returns the phase's trace name (constant; never allocates).
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// Level returns the phase's depth in the span hierarchy: 0 = top (tiers,
// synthesis), 1 = pipeline stages, 2+ = inner-loop activities. Spans of
// one level never overlap, so per-level totals are comparable to
// wall-clock.
func (p Phase) Level() int {
	if p < NumPhases {
		return phaseLevels[p]
	}
	return 0
}

// ParsePhase resolves a trace name back to its Phase.
func ParsePhase(name string) (Phase, bool) {
	for p := Phase(0); p < NumPhases; p++ {
		if phaseNames[p] == name {
			return p, true
		}
	}
	return 0, false
}

// Counter identifies a monotonically-increasing event count.
type Counter uint8

const (
	// CounterSteps counts tentative moves attempted (optimizer
	// iterations).
	CounterSteps Counter = iota
	// CounterCommits counts moves accepted (committed improvement
	// rounds, the paper's #J).
	CounterCommits
	// CounterViolationsP0/P1/P2 count repaired violations by kind.
	CounterViolationsP0
	CounterViolationsP1
	CounterViolationsP2
	// CounterELWRecomputes counts L/R timing-label computations — the
	// dominant cost of the P1'/P2' checks.
	CounterELWRecomputes
	// CounterExactClosures counts exact max-weight-closure cuts (cache
	// misses of the incremental closed-set maintenance).
	CounterExactClosures
	// CounterForestLinks / CounterForestBreaks count weighted-regular-
	// forest restructuring operations (Link and BreakTree).
	CounterForestLinks
	CounterForestBreaks
	// CounterWatchdogResets counts stall-watchdog streak resets: commits
	// that rescued at least one non-improving step.
	CounterWatchdogResets
	// CounterTierTransitions counts degradation-chain step-downs.
	CounterTierTransitions
	// CounterRetries counts same-tier retry attempts after transient
	// failures.
	CounterRetries
	// CounterLabelPatches counts dirty-region incremental L/R label
	// updates performed by the transactional solver state (the hits of
	// the incremental path).
	CounterLabelPatches
	// CounterLabelFulls counts full L/R recomputes performed by the
	// solver state: the initial seed-miss plus every fallback (dirty
	// region over threshold, or negative retimed weights in the dirty
	// region). incremental-hit ratio = patches / (patches + fulls).
	CounterLabelFulls
	// CounterLabelFallbacks counts the subset of CounterLabelFulls caused
	// by a mid-transaction fallback (threshold exceeded or negative
	// weights), excluding the initial committed-label computation.
	CounterLabelFallbacks
	// CounterParRuns counts parallel sections executed by internal/par
	// pools (Run calls that actually forked; inline sequential runs are
	// not counted).
	CounterParRuns
	// CounterParShards counts the shards (contiguous index spans)
	// executed across all parallel sections.
	CounterParShards
	// CounterParBusyNanos accumulates per-shard busy nanoseconds summed
	// over all workers; worker utilization of the parallel sections is
	// busy / (wall · workers).
	CounterParBusyNanos
	// CounterParWallNanos accumulates the wall-clock nanoseconds spent
	// inside parallel sections (fork to join).
	CounterParWallNanos

	// NumCounters bounds the enum; not a counter.
	NumCounters
)

var counterNames = [NumCounters]string{
	CounterSteps:           "steps",
	CounterCommits:         "commits",
	CounterViolationsP0:    "violations-p0",
	CounterViolationsP1:    "violations-p1",
	CounterViolationsP2:    "violations-p2",
	CounterELWRecomputes:   "elw-recomputes",
	CounterExactClosures:   "exact-closures",
	CounterForestLinks:     "forest-links",
	CounterForestBreaks:    "forest-breaks",
	CounterWatchdogResets:  "watchdog-resets",
	CounterTierTransitions: "tier-transitions",
	CounterRetries:         "retries",
	CounterLabelPatches:    "label-patches",
	CounterLabelFulls:      "label-fulls",
	CounterLabelFallbacks:  "label-fallbacks",
	CounterParRuns:         "par-runs",
	CounterParShards:       "par-shards",
	CounterParBusyNanos:    "par-busy-ns",
	CounterParWallNanos:    "par-wall-ns",
}

// String returns the counter's trace name (constant; never allocates).
func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("Counter(%d)", uint8(c))
}

// ParseCounter resolves a trace name back to its Counter.
func ParseCounter(name string) (Counter, bool) {
	for c := Counter(0); c < NumCounters; c++ {
		if counterNames[c] == name {
			return c, true
		}
	}
	return 0, false
}

// Gauge identifies a sampled value of which the maximum is kept.
type Gauge uint8

const (
	// GaugePeakRetimingSpan is the largest committed per-vertex move
	// |r(v)| seen during a run.
	GaugePeakRetimingSpan Gauge = iota
	// GaugeDirtyFraction is the largest dirty-region fraction seen by the
	// incremental label patcher, in permille of the gate count (values
	// above the fallback threshold mean a full recompute was taken).
	GaugeDirtyFraction
	// GaugeParWorkers is the widest internal/par pool that executed a
	// parallel section.
	GaugeParWorkers

	// NumGauges bounds the enum; not a gauge.
	NumGauges
)

var gaugeNames = [NumGauges]string{
	GaugePeakRetimingSpan: "peak-retiming-span",
	GaugeDirtyFraction:    "dirty-fraction",
	GaugeParWorkers:       "par-workers",
}

// String returns the gauge's trace name (constant; never allocates).
func (g Gauge) String() string {
	if g < NumGauges {
		return gaugeNames[g]
	}
	return fmt.Sprintf("Gauge(%d)", uint8(g))
}

// ParseGauge resolves a trace name back to its Gauge.
func ParseGauge(name string) (Gauge, bool) {
	for g := Gauge(0); g < NumGauges; g++ {
		if gaugeNames[g] == name {
			return g, true
		}
	}
	return 0, false
}

// Recorder receives telemetry events. Implementations must be safe for
// concurrent use; the solver calls Count and SpanStart/SpanEnd from its
// inner loop, so implementations should avoid per-call allocation (Nop
// and Collector counters allocate nothing).
//
// Spans of the same phase are matched LIFO per recorder; the instrumented
// code never nests a phase inside itself.
type Recorder interface {
	// SpanStart marks the beginning of a phase instance.
	SpanStart(p Phase)
	// SpanEnd marks the end of the innermost open instance of p. A
	// non-nil err annotates the span as failed (e.g. the guard error
	// that ended a degradation tier).
	SpanEnd(p Phase, err error)
	// Count adds n to counter c.
	Count(c Counter, n int64)
	// Gauge samples v for gauge g (the maximum is retained).
	Gauge(g Gauge, v int64)
}

// ShardRecorder is an optional Recorder extension for per-shard worker
// attribution: internal/par feeds one event per executed shard (op is
// the pool's operation name, worker the 0-based executing worker).
// Recorders that build span trees (Trace) implement it; the pool
// discovers it with a one-time type assertion, so recorders that don't
// care pay nothing.
type ShardRecorder interface {
	ShardSpan(op string, worker int, d time.Duration, err error)
}

// nopRecorder is the always-on default: empty bodies, zero allocations.
type nopRecorder struct{}

func (nopRecorder) SpanStart(Phase)      {}
func (nopRecorder) SpanEnd(Phase, error) {}
func (nopRecorder) Count(Counter, int64) {}
func (nopRecorder) Gauge(Gauge, int64)   {}

// Nop is the no-op Recorder used whenever no recorder is configured.
var Nop Recorder = nopRecorder{}

// OrNop returns r, or Nop when r is nil, so instrumented code never
// branches on a nil recorder.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return Nop
	}
	return r
}

// multi fans events out to several recorders.
type multi []Recorder

func (m multi) SpanStart(p Phase) {
	for _, r := range m {
		r.SpanStart(p)
	}
}

func (m multi) SpanEnd(p Phase, err error) {
	for _, r := range m {
		r.SpanEnd(p, err)
	}
}

func (m multi) Count(c Counter, n int64) {
	for _, r := range m {
		r.Count(c, n)
	}
}

func (m multi) Gauge(g Gauge, v int64) {
	for _, r := range m {
		r.Gauge(g, v)
	}
}

// ShardSpan forwards shard events to the members that understand them,
// so a Tee of Collector and Trace still delivers worker attribution to
// the Trace.
func (m multi) ShardSpan(op string, worker int, d time.Duration, err error) {
	for _, r := range m {
		if sr, ok := r.(ShardRecorder); ok {
			sr.ShardSpan(op, worker, d, err)
		}
	}
}

// Tee fans events out to every non-nil recorder. With zero or one live
// recorder it collapses to Nop or the recorder itself.
func Tee(rs ...Recorder) Recorder {
	var live multi
	for _, r := range rs {
		if r != nil && r != Nop {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return live
}
