package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEnumNamesRoundTrip(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		got, ok := ParsePhase(p.String())
		if !ok || got != p {
			t.Errorf("ParsePhase(%q) = %v, %v", p.String(), got, ok)
		}
		if strings.Contains(p.String(), "Phase(") {
			t.Errorf("phase %d has no name", p)
		}
	}
	for c := Counter(0); c < NumCounters; c++ {
		got, ok := ParseCounter(c.String())
		if !ok || got != c {
			t.Errorf("ParseCounter(%q) = %v, %v", c.String(), got, ok)
		}
	}
	for g := Gauge(0); g < NumGauges; g++ {
		got, ok := ParseGauge(g.String())
		if !ok || got != g {
			t.Errorf("ParseGauge(%q) = %v, %v", g.String(), got, ok)
		}
	}
	if _, ok := ParsePhase("no-such-phase"); ok {
		t.Error("ParsePhase accepted an unknown name")
	}
}

// TestCollectorConcurrent hammers one Collector from many goroutines; run
// under -race it proves the counter/gauge/span paths are safe for the
// parallel sweeps serbench runs.
func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Count(CounterSteps, 1)
				c.Gauge(GaugePeakRetimingSpan, int64(i))
				c.SpanStart(PhaseMinimize)
				c.SpanEnd(PhaseMinimize, nil)
			}
		}()
	}
	wg.Wait()
	s := c.Stats()
	if got := s.Counter(CounterSteps); got != workers*perWorker {
		t.Errorf("steps = %d, want %d", got, workers*perWorker)
	}
	if got := s.Gauge(GaugePeakRetimingSpan); got != perWorker-1 {
		t.Errorf("gauge max = %d, want %d", got, perWorker-1)
	}
	if got := s.Phases[PhaseMinimize].Count; got != workers*perWorker {
		t.Errorf("minimize spans = %d, want %d", got, workers*perWorker)
	}
}

func TestCollectorSpans(t *testing.T) {
	c := NewCollector()
	c.SpanStart(PhaseInit)
	time.Sleep(time.Millisecond)
	c.SpanEnd(PhaseInit, nil)
	c.SpanStart(PhaseMinimize)
	c.SpanEnd(PhaseMinimize, errors.New("boom"))
	c.SpanEnd(PhaseGains, nil) // unmatched: ignored
	s := c.Stats()
	if !s.Observed(PhaseInit) || s.Phases[PhaseInit].Total <= 0 {
		t.Errorf("init span not recorded: %+v", s.Phases[PhaseInit])
	}
	if s.Phases[PhaseMinimize].Errs != 1 {
		t.Errorf("minimize errs = %d, want 1", s.Phases[PhaseMinimize].Errs)
	}
	if s.Observed(PhaseGains) {
		t.Error("unmatched SpanEnd produced a span")
	}
	if s.Wall <= 0 {
		t.Error("wall-clock not tracked")
	}
}

// TestJSONLRoundTrip writes a synthetic run through JSONLWriter, reads it
// back, and checks Replay reconstructs the same aggregates the seranalyze
// -trace report path consumes.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	run := w.Run("s27")
	run.SpanStart(PhaseSynthesize)
	run.SpanEnd(PhaseSynthesize, nil)
	run.SpanStart(PhaseTierMinObsWin)
	run.SpanStart(PhaseMinimize)
	run.Count(CounterSteps, 3)
	run.Count(CounterSteps, 2)
	run.Gauge(GaugePeakRetimingSpan, 4)
	run.Gauge(GaugePeakRetimingSpan, 2) // below max: ignored by Replay
	run.SpanEnd(PhaseMinimize, nil)
	run.SpanEnd(PhaseTierMinObsWin, errors.New("stalled"))
	other := w.Run("s386")
	other.Count(CounterCommits, 1)
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	recs, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	runs := Replay(recs)
	if len(runs) != 2 {
		t.Fatalf("Replay found %d runs, want 2", len(runs))
	}
	s := runs["s27"]
	if s == nil {
		t.Fatal("run s27 missing")
	}
	if got := s.Counter(CounterSteps); got != 5 {
		t.Errorf("steps = %d, want 5", got)
	}
	if got := s.Gauge(GaugePeakRetimingSpan); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	if s.Phases[PhaseTierMinObsWin].Errs != 1 {
		t.Errorf("tier errs = %d, want 1", s.Phases[PhaseTierMinObsWin].Errs)
	}
	if s.Phases[PhaseMinimize].Count != 1 || s.Phases[PhaseMinimize].Total < 0 {
		t.Errorf("minimize span not reconstructed: %+v", s.Phases[PhaseMinimize])
	}
	if runs["s386"].Counter(CounterCommits) != 1 {
		t.Errorf("run s386 commits = %d, want 1", runs["s386"].Counter(CounterCommits))
	}

	var report strings.Builder
	if err := s.WriteReport(&report, "s27"); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	for _, want := range []string{"== run s27 ==", "tier:minobswin", "minimize", "steps", "peak-retiming-span"} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("report missing %q:\n%s", want, report.String())
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"t\":1}\nnot json\n")); err == nil {
		t.Error("malformed line accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error does not carry the line number: %v", err)
	}
	recs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Errorf("blank-only input: recs=%d err=%v", len(recs), err)
	}
}

func TestTeeAndOrNop(t *testing.T) {
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) != Nop")
	}
	if Tee() != Nop || Tee(nil, nil) != Nop {
		t.Error("empty Tee != Nop")
	}
	c := NewCollector()
	if Tee(nil, c) != Recorder(c) {
		t.Error("single-recorder Tee did not collapse")
	}
	c2 := NewCollector()
	both := Tee(c, c2)
	both.Count(CounterCommits, 2)
	if c.Stats().Counter(CounterCommits) != 2 || c2.Stats().Counter(CounterCommits) != 2 {
		t.Error("Tee did not fan out")
	}
}

// TestNopZeroAllocs pins the overhead budget: recording against the no-op
// recorder must not allocate, so always-on instrumentation is free when no
// recorder is configured.
func TestNopZeroAllocs(t *testing.T) {
	rec := OrNop(nil)
	if n := testing.AllocsPerRun(1000, func() {
		rec.SpanStart(PhaseMinimize)
		rec.Count(CounterSteps, 1)
		rec.Gauge(GaugePeakRetimingSpan, 7)
		rec.SpanEnd(PhaseMinimize, nil)
	}); n != 0 {
		t.Errorf("Nop recorder allocates %.1f allocs/op, want 0", n)
	}
}

// TestCollectorCountZeroAllocs keeps the live counter hot path
// allocation-free too (atomics only).
func TestCollectorCountZeroAllocs(t *testing.T) {
	c := NewCollector()
	if n := testing.AllocsPerRun(1000, func() {
		c.Count(CounterSteps, 1)
		c.Gauge(GaugePeakRetimingSpan, 3)
	}); n != 0 {
		t.Errorf("Collector counters allocate %.1f allocs/op, want 0", n)
	}
}
