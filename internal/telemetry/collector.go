package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Collector is an in-memory Recorder: counters are lock-free atomics,
// spans are aggregated per phase under a mutex (the span paths run once
// per optimizer iteration, not per inner operation, so the lock is cold).
// A Collector is safe for concurrent use; use one Collector per run when
// span durations must be attributed exactly (concurrent spans of the same
// phase are matched LIFO).
type Collector struct {
	start    time.Time
	counters [NumCounters]atomic.Int64
	gauges   [NumGauges]atomic.Int64

	mu     sync.Mutex
	phases [NumPhases]phaseAgg
}

type phaseAgg struct {
	open  []time.Time
	count int
	total time.Duration
	errs  int
}

// NewCollector returns an empty Collector; its wall-clock starts now.
func NewCollector() *Collector {
	return &Collector{start: time.Now()}
}

// SpanStart implements Recorder.
func (c *Collector) SpanStart(p Phase) {
	if p >= NumPhases {
		return
	}
	now := time.Now()
	c.mu.Lock()
	c.phases[p].open = append(c.phases[p].open, now)
	c.mu.Unlock()
}

// SpanEnd implements Recorder. An unmatched SpanEnd is ignored.
func (c *Collector) SpanEnd(p Phase, err error) {
	if p >= NumPhases {
		return
	}
	now := time.Now()
	c.mu.Lock()
	a := &c.phases[p]
	if n := len(a.open); n > 0 {
		a.total += now.Sub(a.open[n-1])
		a.open = a.open[:n-1]
		a.count++
		if err != nil {
			a.errs++
		}
	}
	c.mu.Unlock()
}

// Count implements Recorder (atomic, allocation-free).
func (c *Collector) Count(ctr Counter, n int64) {
	if ctr < NumCounters {
		c.counters[ctr].Add(n)
	}
}

// Gauge implements Recorder: the maximum sampled value is retained.
func (c *Collector) Gauge(g Gauge, v int64) {
	if g >= NumGauges {
		return
	}
	for {
		cur := c.gauges[g].Load()
		if v <= cur || c.gauges[g].CompareAndSwap(cur, v) {
			return
		}
	}
}

// Stats snapshots the collector into a RunStats. Open spans are not
// counted. Wall is the time since the collector was created.
func (c *Collector) Stats() *RunStats {
	s := &RunStats{Wall: time.Since(c.start)}
	c.mu.Lock()
	for p := Phase(0); p < NumPhases; p++ {
		a := &c.phases[p]
		s.Phases[p] = PhaseStats{Count: a.count, Total: a.total, Errs: a.errs}
	}
	c.mu.Unlock()
	for ctr := Counter(0); ctr < NumCounters; ctr++ {
		s.Counters[ctr] = c.counters[ctr].Load()
	}
	for g := Gauge(0); g < NumGauges; g++ {
		s.Gauges[g] = c.gauges[g].Load()
	}
	return s
}

// PhaseStats aggregates one phase's spans.
type PhaseStats struct {
	// Count is the number of completed spans.
	Count int
	// Total is the summed span duration.
	Total time.Duration
	// Errs is the number of spans that ended with a non-nil error.
	Errs int
}

// RunStats is the run-level telemetry summary: wall-clock, per-phase
// durations and counts, counter totals and gauge maxima.
type RunStats struct {
	// Wall is the run's wall-clock time (collector lifetime, or the
	// first-to-last event distance of a replayed trace).
	Wall time.Duration
	// Phases is indexed by Phase.
	Phases [NumPhases]PhaseStats
	// Counters is indexed by Counter.
	Counters [NumCounters]int64
	// Gauges is indexed by Gauge (maximum sampled value).
	Gauges [NumGauges]int64
}

// Observed reports whether at least one span of p completed.
func (s *RunStats) Observed(p Phase) bool { return s.Phases[p].Count > 0 }

// Counter returns the total of c.
func (s *RunStats) Counter(c Counter) int64 { return s.Counters[c] }

// Gauge returns the maximum sampled value of g.
func (s *RunStats) Gauge(g Gauge) int64 { return s.Gauges[g] }

// LevelTotal sums the durations of all phases at the given hierarchy
// level. Same-level spans are disjoint, so the sum is comparable to Wall.
func (s *RunStats) LevelTotal(level int) time.Duration {
	var t time.Duration
	for p := Phase(0); p < NumPhases; p++ {
		if p.Level() == level {
			t += s.Phases[p].Total
		}
	}
	return t
}

// Coverage returns the shallowest hierarchy level with completed spans
// and the fraction of Wall its summed durations account for. A healthy
// trace covers ≥ 90% of wall-clock at its top level.
func (s *RunStats) Coverage() (level int, frac float64) {
	for l := 0; l <= 3; l++ {
		for p := Phase(0); p < NumPhases; p++ {
			if p.Level() == l && s.Phases[p].Count > 0 {
				if s.Wall > 0 {
					frac = float64(s.LevelTotal(l)) / float64(s.Wall)
				}
				return l, frac
			}
		}
	}
	return 0, 0
}

// PhaseBreakdown renders the level-1 pipeline stages as a compact
// "phase pct" list ordered by descending share, e.g.
// "minimize 62% analysis 21% init 9%". top caps the number of entries
// (0 = all). It returns "-" when no level-1 span completed.
func (s *RunStats) PhaseBreakdown(top int) string {
	type pt struct {
		p Phase
		d time.Duration
	}
	var ps []pt
	var total time.Duration
	for p := Phase(0); p < NumPhases; p++ {
		if p.Level() == 1 && s.Phases[p].Count > 0 {
			ps = append(ps, pt{p, s.Phases[p].Total})
			total += s.Phases[p].Total
		}
	}
	if len(ps) == 0 || total == 0 {
		return "-"
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].d != ps[j].d {
			return ps[i].d > ps[j].d
		}
		return ps[i].p < ps[j].p
	})
	if top > 0 && len(ps) > top {
		ps = ps[:top]
	}
	out := ""
	for i, e := range ps {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s %.0f%%", e.p, 100*float64(e.d)/float64(total))
	}
	return out
}

// WriteReport prints the human-readable phase/counter report used by
// `seranalyze -trace` (and round-trip-tested against JSONL traces).
func (s *RunStats) WriteReport(w io.Writer, name string) error {
	if name == "" {
		name = "(unnamed)"
	}
	level, frac := s.Coverage()
	if _, err := fmt.Fprintf(w, "== run %s ==\nwall-clock %v; level-%d phase coverage %.1f%%\n\n",
		name, s.Wall.Round(time.Microsecond), level, 100*frac); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-26s %8s %14s %8s %6s\n", "phase", "calls", "total", "% wall", "errs")
	for p := Phase(0); p < NumPhases; p++ {
		ps := s.Phases[p]
		if ps.Count == 0 {
			continue
		}
		pct := 0.0
		if s.Wall > 0 {
			pct = 100 * float64(ps.Total) / float64(s.Wall)
		}
		indent := ""
		for i := 0; i < p.Level(); i++ {
			indent += "  "
		}
		fmt.Fprintf(w, "%-26s %8d %14v %7.1f%% %6d\n",
			indent+p.String(), ps.Count, ps.Total.Round(time.Microsecond), pct, ps.Errs)
	}
	any := false
	for c := Counter(0); c < NumCounters; c++ {
		if s.Counters[c] == 0 {
			continue
		}
		if !any {
			fmt.Fprintf(w, "\n%-26s %14s\n", "counter", "total")
			any = true
		}
		fmt.Fprintf(w, "%-26s %14d\n", c, s.Counters[c])
	}
	any = false
	for g := Gauge(0); g < NumGauges; g++ {
		if s.Gauges[g] == 0 {
			continue
		}
		if !any {
			fmt.Fprintf(w, "\n%-26s %14s\n", "gauge", "max")
			any = true
		}
		fmt.Fprintf(w, "%-26s %14d\n", g, s.Gauges[g])
	}
	_, err := fmt.Fprintln(w)
	return err
}
