package telemetry

import (
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bound duration histogram with lock-free atomic
// buckets, built for the service's solve-latency metric: Observe on the
// worker path costs one atomic add per call, Snapshot is taken only when
// /metrics is scraped. Bounds are upper bounds in ascending order; an
// observation lands in the first bucket whose bound it does not exceed,
// or in the implicit +Inf overflow bucket.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Int64   // total observed nanoseconds
	n      atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds. NewHistogram(nil) still works: everything lands in +Inf and
// only count/sum are meaningful.
func NewHistogram(bounds []time.Duration) *Histogram {
	b := make([]time.Duration, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// LatencyBounds is the default solve-latency bucket ladder: 1ms to ~8.5
// minutes, doubling per bucket (19 buckets + overflow).
func LatencyBounds() []time.Duration {
	bounds := make([]time.Duration, 0, 19)
	for d := time.Millisecond; d <= 512*time.Second; d *= 2 {
		bounds = append(bounds, d)
	}
	return bounds
}

// Observe records one duration (negative durations count as zero).
func (h *Histogram) Observe(d time.Duration) {
	h.counts[h.bucket(d)].Add(1)
	if d < 0 {
		d = 0
	}
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// bucket returns the index of the bucket d lands in (len(bounds) is the
// +Inf overflow bucket).
func (h *Histogram) bucket(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	return i
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Counts has
// one entry per bound plus the +Inf overflow bucket and is
// non-cumulative; renderers that need Prometheus-style cumulative
// buckets sum a running prefix.
type HistogramSnapshot struct {
	Bounds []time.Duration
	Counts []int64
	Sum    time.Duration
	Count  int64
}

// Snapshot copies the histogram's state. Concurrent Observes may or may
// not be included; the snapshot is internally consistent enough for
// monitoring (bucket sums can trail Count by in-flight observations).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    time.Duration(h.sum.Load()),
		Count:  h.n.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
