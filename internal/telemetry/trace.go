package telemetry

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// TraceID identifies one traced job end to end: minted at HTTP ingress
// (or accepted from a client's Traceparent header), threaded through the
// queue, the degradation chain and the parallel pools, persisted next to
// the job's result, and carried as the exemplar on /metrics histogram
// buckets. The zero value means "no trace".
type TraceID [16]byte

// IsZero reports whether the ID is unset. The all-zero ID is invalid by
// construction (as in W3C trace context), so zero unambiguously means
// "mint one".
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// NewTraceID mints a random, non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	if _, err := rand.Read(id[:]); err != nil || id.IsZero() {
		// Entropy exhaustion is not worth failing a trace over: fall
		// back to a timestamp-derived ID.
		binary.BigEndian.PutUint64(id[:8], uint64(time.Now().UnixNano()))
		id[15] = 1
	}
	return id
}

// ParseTraceID parses 32 hex digits; the all-zero ID is rejected.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// ParseTraceparent extracts the trace ID from a W3C Traceparent header
// ("00-<32 hex trace-id>-<16 hex span-id>-<flags>"); a bare 32-hex ID is
// also accepted. Malformed or all-zero values report false, so ingress
// falls back to minting.
func ParseTraceparent(h string) (TraceID, bool) {
	h = strings.TrimSpace(h)
	if h == "" {
		return TraceID{}, false
	}
	parts := strings.Split(h, "-")
	if len(parts) == 1 {
		return ParseTraceID(parts[0])
	}
	if len(parts) < 2 {
		return TraceID{}, false
	}
	return ParseTraceID(parts[1])
}

// Span is one node of a trace's span tree. Times are monotonic
// nanosecond offsets from the trace's start, so a persisted tree is
// self-contained. Inner-loop phases (Phase.Level() >= 2) and parallel
// shards are merged: repeated instances under one parent collapse into a
// single node whose Count and DurNS accumulate, keeping the tree bounded
// no matter how many optimizer iterations ran.
type Span struct {
	// Name is the phase name ("tier:minobswin", "minimize", ...), a
	// service-level span ("queue-wait", "solve"), or a parallel section
	// ("par:obs.compute").
	Name string `json:"name"`
	// StartNS is the offset of the span's (first) start.
	StartNS int64 `json:"start_ns"`
	// DurNS is the total duration; for merged spans, summed over all
	// instances. For a span open at snapshot time it includes the
	// elapsed time of the running instance.
	DurNS int64 `json:"dur_ns"`
	// Count is the number of completed instances merged into this node
	// (0 while the only instance is still open).
	Count int64 `json:"count"`
	// Worker is the 1-based worker attribution of a parallel-shard span
	// (0 = not a shard span).
	Worker int `json:"worker,omitempty"`
	// Errs counts instances that ended with an error; Err is the last
	// error text.
	Errs int   `json:"errs,omitempty"`
	Err  string `json:"err,omitempty"`
	// Open marks a span still running when the tree was snapshotted.
	Open     bool    `json:"open,omitempty"`
	Children []*Span `json:"children,omitempty"`
}

// Find returns the first span named name in a depth-first walk of the
// subtree rooted at s (including s), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if got := c.Find(name); got != nil {
			return got
		}
	}
	return nil
}

// Walk visits every span of the subtree in depth-first order; depth is 0
// at s.
func (s *Span) Walk(fn func(depth int, sp *Span)) {
	if s == nil {
		return
	}
	var rec func(d int, sp *Span)
	rec = func(d int, sp *Span) {
		fn(d, sp)
		for _, c := range sp.Children {
			rec(d+1, c)
		}
	}
	rec(0, s)
}

// maxTraceSpans soft-caps the number of distinct nodes a trace grows:
// past it, even normally-individual spans merge into a same-named
// sibling rather than appending, so a pathological run cannot balloon a
// persisted trace. Distinct names are bounded by the phase enum times
// the tree depth, so the cap is rarely approached.
const maxTraceSpans = 4096

// Trace is a Recorder that builds a per-job span tree: phase spans from
// the solver nest under the currently-open span, parallel shards are
// attributed to workers via ShardSpan, and service-level spans
// (queue-wait, solve) are opened with Begin/End. It is safe for
// concurrent use; span nesting follows the recording goroutine's
// open-span stack, which matches the solver's single-goroutine phase
// discipline (shards are leaves and may arrive from any goroutine).
//
// A Trace is always used alongside a Collector via Tee — the Collector
// aggregates, the Trace keeps the tree — so Count and Gauge events are
// deliberately ignored here.
type Trace struct {
	id    TraceID
	start time.Time

	mu    sync.Mutex
	root  *Span
	stack []traceFrame
	nodes int
}

type traceFrame struct {
	span   *Span
	t0     time.Time
	merged bool
}

// NewTrace starts a trace; a zero id mints a fresh one.
func NewTrace(id TraceID) *Trace {
	if id.IsZero() {
		id = NewTraceID()
	}
	return &Trace{id: id, start: time.Now(), root: &Span{Name: "job"}}
}

// ID returns the trace's identifier.
func (t *Trace) ID() TraceID { return t.id }

// Start returns the trace's wall-clock start time.
func (t *Trace) Start() time.Time { return t.start }

// SpanStart implements Recorder: phases at Level >= 2 (inner-loop
// activities) merge into one node per parent.
func (t *Trace) SpanStart(p Phase) { t.begin(p.String(), p.Level() >= 2, 0) }

// SpanEnd implements Recorder.
func (t *Trace) SpanEnd(p Phase, err error) { t.end(p.String(), err) }

// Count implements Recorder (ignored; the Collector aggregates counters).
func (t *Trace) Count(Counter, int64) {}

// Gauge implements Recorder (ignored).
func (t *Trace) Gauge(Gauge, int64) {}

// Begin opens a named service-level span (e.g. "queue-wait").
func (t *Trace) Begin(name string) { t.begin(name, false, 0) }

// End closes the innermost open span named name; spans left open above
// it are force-closed (mismatched instrumentation must not corrupt the
// tree). An unmatched End is ignored.
func (t *Trace) End(name string, err error) { t.end(name, err) }

// ShardSpan implements ShardRecorder: one parallel-shard execution,
// attributed to its worker, merged per (open parent, op, worker).
func (t *Trace) ShardSpan(op string, worker int, d time.Duration, err error) {
	now := time.Now()
	name := "par:" + op
	t.mu.Lock()
	defer t.mu.Unlock()
	parent := t.top()
	node := findChild(parent, name, worker+1)
	if node == nil {
		node = &Span{Name: name, Worker: worker + 1, StartNS: int64(now.Add(-d).Sub(t.start))}
		parent.Children = append(parent.Children, node)
		t.nodes++
	}
	node.Count++
	node.DurNS += int64(d)
	if err != nil {
		node.Errs++
		node.Err = err.Error()
	}
}

func (t *Trace) top() *Span {
	if n := len(t.stack); n > 0 {
		return t.stack[n-1].span
	}
	return t.root
}

func findChild(parent *Span, name string, worker int) *Span {
	for _, c := range parent.Children {
		if c.Name == name && c.Worker == worker {
			return c
		}
	}
	return nil
}

func (t *Trace) begin(name string, merged bool, worker int) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	parent := t.top()
	if !merged && t.nodes >= maxTraceSpans {
		merged = true
	}
	var node *Span
	if merged {
		node = findChild(parent, name, worker)
	}
	if node == nil {
		node = &Span{Name: name, Worker: worker, StartNS: int64(now.Sub(t.start))}
		parent.Children = append(parent.Children, node)
		t.nodes++
	}
	t.stack = append(t.stack, traceFrame{span: node, t0: now, merged: merged})
}

func (t *Trace) end(name string, err error) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	i := len(t.stack) - 1
	for i >= 0 && t.stack[i].span.Name != name {
		i--
	}
	if i < 0 {
		return
	}
	for k := len(t.stack) - 1; k > i; k-- {
		closeFrame(t.stack[k], now, nil)
	}
	closeFrame(t.stack[i], now, err)
	t.stack = t.stack[:i]
}

func closeFrame(f traceFrame, now time.Time, err error) {
	f.span.DurNS += int64(now.Sub(f.t0))
	f.span.Count++
	if err != nil {
		f.span.Errs++
		f.span.Err = err.Error()
	}
}

// Finish force-closes every open span. Call once when the job reaches a
// terminal state, before building the persisted document.
func (t *Trace) Finish() {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for k := len(t.stack) - 1; k >= 0; k-- {
		closeFrame(t.stack[k], now, nil)
	}
	t.stack = t.stack[:0]
}

// Snapshot deep-copies the span tree. Spans still open are marked Open
// and their DurNS includes the running instance's elapsed time, so a
// live snapshot of an in-flight job reads like a finished one.
func (t *Trace) Snapshot() *Span {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	open := make(map[*Span]time.Time, len(t.stack))
	for _, f := range t.stack {
		open[f.span] = f.t0
	}
	var cp func(s *Span) *Span
	cp = func(s *Span) *Span {
		out := *s
		out.Children = nil
		if t0, ok := open[s]; ok {
			out.Open = true
			out.DurNS += int64(now.Sub(t0))
		}
		for _, c := range s.Children {
			out.Children = append(out.Children, cp(c))
		}
		return &out
	}
	return cp(t.root)
}

// CurrentPath returns the names of the open spans, outermost first —
// the job's "where is it right now" for live introspection.
func (t *Trace) CurrentPath() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.stack))
	for i, f := range t.stack {
		out[i] = f.span.Name
	}
	return out
}

// StackString renders the open-span stack with per-span elapsed time,
// e.g. "solve(1m2s) > tier:minobswin(1m1s) > minimize(58s)" — the
// snapshot the slow-job watchdog logs.
func (t *Trace) StackString() string {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stack) == 0 {
		return "(no open spans)"
	}
	var b strings.Builder
	for i, f := range t.stack {
		if i > 0 {
			b.WriteString(" > ")
		}
		fmt.Fprintf(&b, "%s(%v)", f.span.Name, now.Sub(f.t0).Round(time.Millisecond))
	}
	return b.String()
}

// TraceDoc is the persisted form of one job's trace: the span tree plus
// enough job metadata to aggregate fleets of documents without the job
// table (seranalyze -tracedir).
type TraceDoc struct {
	TraceID  string    `json:"trace_id"`
	JobID    string    `json:"job_id,omitempty"`
	Name     string    `json:"name,omitempty"`
	Status   string    `json:"status,omitempty"`
	Tier     string    `json:"tier,omitempty"`
	Degraded bool      `json:"degraded,omitempty"`
	Start    time.Time `json:"start"`
	WallNS   int64     `json:"wall_ns"`
	Root     *Span     `json:"root"`
}

// Doc snapshots the trace into a document. It works on a live trace
// (open spans annotated) as well as a finished one; wall-clock is the
// time since the trace started.
func (t *Trace) Doc(jobID, name, status, tier string, degraded bool) *TraceDoc {
	root := t.Snapshot()
	wall := time.Since(t.start)
	root.DurNS = int64(wall)
	return &TraceDoc{
		TraceID:  t.id.String(),
		JobID:    jobID,
		Name:     name,
		Status:   status,
		Tier:     tier,
		Degraded: degraded,
		Start:    t.start,
		WallNS:   int64(wall),
		Root:     root,
	}
}

// Encode marshals the document as one compact JSON line.
func (d *TraceDoc) Encode() []byte {
	b, err := json.Marshal(d)
	if err != nil {
		return nil // unreachable: the tree is plain data
	}
	return b
}

// DecodeTraceDoc parses a persisted trace document.
func DecodeTraceDoc(b []byte) (*TraceDoc, error) {
	var d TraceDoc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("telemetry: bad trace document: %w", err)
	}
	if d.TraceID == "" || d.Root == nil {
		return nil, fmt.Errorf("telemetry: trace document missing trace_id or root")
	}
	return &d, nil
}
