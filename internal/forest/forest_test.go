package forest

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, gains []int64) *Forest {
	t.Helper()
	f, err := New(len(gains), gains)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewSingletons(t *testing.T) {
	f := mustNew(t, []int64{5, -3, 0})
	if f.Len() != 3 {
		t.Fatal("Len wrong")
	}
	members, mask := f.PositiveSet()
	if len(members) != 1 || members[0] != 0 || !mask[0] || mask[1] {
		t.Fatalf("positive set = %v", members)
	}
	if !f.IsSingleton(1) || f.Weight(1) != 1 || f.Gain(1) != -3 {
		t.Fatal("singleton state wrong")
	}
	if _, err := New(2, []int64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestLinkBaggage(t *testing.T) {
	// Positive vertex 0 must drag non-positive 1: tree gain 5-3 = 2 > 0.
	f := mustNew(t, []int64{5, -3})
	if err := f.Link(0, 1); err != nil {
		t.Fatal(err)
	}
	members, _ := f.PositiveSet()
	if len(members) != 2 {
		t.Fatalf("positive set = %v", members)
	}
	if !f.SameTree(0, 1) {
		t.Fatal("not same tree")
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkKillsTree(t *testing.T) {
	// 5 - 10 < 0: the merged tree is non-positive; nobody moves.
	f := mustNew(t, []int64{5, -10})
	if err := f.Link(0, 1); err != nil {
		t.Fatal(err)
	}
	members, _ := f.PositiveSet()
	if len(members) != 0 {
		t.Fatalf("positive set = %v", members)
	}
}

func TestEnforceCutsPositiveBaggage(t *testing.T) {
	// Linking a positive q as baggage is immediately cut by regularity:
	// q moves on its own, so the constraint is vacuous.
	f := mustNew(t, []int64{5, 7})
	if err := f.Link(0, 1); err != nil {
		t.Fatal(err)
	}
	if f.SameTree(0, 1) {
		t.Fatal("positive baggage not cut")
	}
	members, _ := f.PositiveSet()
	if len(members) != 2 {
		t.Fatalf("positive set = %v", members)
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeze(t *testing.T) {
	f := mustNew(t, []int64{5, 0})
	f.Freeze(1)
	if err := f.Link(0, 1); err != nil {
		t.Fatal(err)
	}
	members, _ := f.PositiveSet()
	if len(members) != 0 {
		t.Fatal("frozen tree still positive")
	}
	if !f.Frozen(1) || f.Frozen(0) {
		t.Fatal("frozen flags wrong")
	}
}

func TestSetWeight(t *testing.T) {
	f := mustNew(t, []int64{5, -2})
	if err := f.SetWeight(1, 3); err != nil {
		t.Fatal(err)
	}
	// Gain of 1's tree is now -6; linking drops 0's tree to -1.
	if err := f.Link(0, 1); err != nil {
		t.Fatal(err)
	}
	members, _ := f.PositiveSet()
	if len(members) != 0 {
		t.Fatalf("positive set = %v", members)
	}
	if err := f.SetWeight(1, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := f.SetWeight(1, 2); err == nil {
		t.Fatal("SetWeight on non-singleton accepted")
	}
}

// TestFigure3 reproduces the paper's Figure 3: x (positive) pulls y; later
// u (positive) needs y with a larger weight, forcing BreakTree(y) and a
// re-link with the updated weight.
func TestFigure3(t *testing.T) {
	// Gains: u=+4, x=+3, y=-1.
	const (
		u = 0
		x = 1
		y = 2
	)
	f := mustNew(t, []int64{4, 3, -1})
	// (a) x moves, violates P0, bundles y with weight 1.
	if err := f.Link(x, y); err != nil {
		t.Fatal(err)
	}
	if !f.SameTree(x, y) {
		t.Fatal("x-y not linked")
	}
	// (b) u's move causes a P2' violation requiring y to move by 2:
	// BreakTree(y), update weight, link under u.
	f.Break(y)
	if !f.IsSingleton(y) {
		t.Fatal("Break left y attached")
	}
	if err := f.SetWeight(y, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Link(u, y); err != nil {
		t.Fatal(err)
	}
	if !f.SameTree(u, y) || f.SameTree(x, y) {
		t.Fatal("relink wrong")
	}
	// u's tree gain: 4 + (-1)(2) = 2 > 0; x alone: 3 > 0. All move.
	members, _ := f.PositiveSet()
	if len(members) != 3 {
		t.Fatalf("positive set = %v", members)
	}
	if f.Weight(y) != 2 {
		t.Fatal("weight not updated")
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakSplitsComponents(t *testing.T) {
	// Chain 0 - 1 - 2 (1 in the middle); Break(1) must leave 0 and 2 in
	// separate trees.
	f := mustNew(t, []int64{5, -1, -1})
	if err := f.Link(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Link(1, 2); err != nil {
		t.Fatal(err)
	}
	if !f.SameTree(0, 2) {
		t.Fatal("chain not linked")
	}
	f.Break(1)
	if f.SameTree(0, 2) || f.SameTree(0, 1) || f.SameTree(1, 2) {
		t.Fatal("Break did not split components")
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfLinkRejected(t *testing.T) {
	f := mustNew(t, []int64{1})
	if err := f.Link(0, 0); err == nil {
		t.Fatal("self link accepted")
	}
}

func TestPropertyRandomOpsKeepInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		gains := make([]int64, n)
		for i := range gains {
			gains[i] = int64(rng.Intn(21) - 10)
		}
		fo, err := New(n, gains)
		if err != nil {
			return false
		}
		if rng.Intn(3) == 0 {
			fo.Freeze(int32(rng.Intn(n)))
		}
		for op := 0; op < 30; op++ {
			p := int32(rng.Intn(n))
			q := int32(rng.Intn(n))
			switch rng.Intn(4) {
			case 0, 1:
				if p != q {
					fo.Link(p, q)
				}
			case 2:
				fo.Break(q)
				fo.SetWeight(q, int32(1+rng.Intn(4)))
			case 3:
				members, mask := fo.PositiveSet()
				// Every member's tree must be positive and unfrozen.
				for _, m := range members {
					if !fo.TreePositive(m) || fo.Frozen(m) {
						return false
					}
					if !mask[m] {
						return false
					}
				}
			}
			if fo.Check() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
