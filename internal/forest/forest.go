// Package forest implements the weighted regular forest of Section IV of
// the paper (extending the regular forest of Wang & Zhou, DAC'08 [20]).
//
// The forest manages the set A of active constraints discovered by the
// retiming algorithm. A constraint (p, q) with weight w means: whenever p
// decreases its retiming label, q must decrease by w. Constraints form
// trees; each vertex carries a gain b(v) and a move weight w(v), and a
// tree's total gain is Σ b(v)·w(v) over its members. The candidate move
// set V_P(F) is the union of all positive trees (positive gain, no frozen
// member).
//
// Edges store the constraint direction with the label U(v) on the child:
// U(v) = true means (v, parent) is the constraint (the child's subtree
// pushes the parent); U(v) = false means (parent, v) (the child hangs as
// baggage the parent requires). Regularity — positive subtrees point up,
// non-positive subtrees hang down — is restored after every update by
// cutting edges that violate it; a cut constraint is not lost for good,
// because the algorithm re-discovers any still-binding constraint from the
// next tentative move's violations.
package forest

import (
	"fmt"

	"serretime/internal/telemetry"
)

// None marks the absence of a parent.
const None int32 = -1

// Forest is the weighted regular forest over vertices 0..n-1.
type Forest struct {
	b      []int64 // per-vertex gain (fixed)
	w      []int32 // per-vertex move weight (≥ 1)
	parent []int32
	up     []bool // U(v), meaningful when parent != None
	kids   [][]int32
	frozen []bool

	// Aggregates maintained incrementally per subtree.
	sumBW     []int64 // B(v): Σ b·w over the subtree rooted at v
	numFrozen []int32 // frozen vertices in the subtree

	rec telemetry.Recorder // restructuring counters; never nil
}

// New creates a forest of n singleton trees with unit weights.
func New(n int, gains []int64) (*Forest, error) {
	if len(gains) != n {
		return nil, fmt.Errorf("forest: %d gains for %d vertices", len(gains), n)
	}
	f := &Forest{
		rec:       telemetry.Nop,
		b:         append([]int64(nil), gains...),
		w:         make([]int32, n),
		parent:    make([]int32, n),
		up:        make([]bool, n),
		kids:      make([][]int32, n),
		frozen:    make([]bool, n),
		sumBW:     make([]int64, n),
		numFrozen: make([]int32, n),
	}
	for v := 0; v < n; v++ {
		f.w[v] = 1
		f.parent[v] = None
		f.sumBW[v] = gains[v]
	}
	return f, nil
}

// Instrument routes the forest's restructuring counters (forest-links,
// forest-breaks) to rec; nil restores the no-op recorder.
func (f *Forest) Instrument(rec telemetry.Recorder) { f.rec = telemetry.OrNop(rec) }

// Len returns the number of vertices.
func (f *Forest) Len() int { return len(f.b) }

// Weight returns w(v).
func (f *Forest) Weight(v int32) int32 { return f.w[v] }

// Gain returns b(v).
func (f *Forest) Gain(v int32) int64 { return f.b[v] }

// Freeze marks v immovable: any tree containing v is never positive.
func (f *Forest) Freeze(v int32) {
	if f.frozen[v] {
		return
	}
	f.frozen[v] = true
	for x := v; x != None; x = f.parent[x] {
		f.numFrozen[x]++
	}
}

// Frozen reports whether v is frozen.
func (f *Forest) Frozen(v int32) bool { return f.frozen[v] }

// Root returns the root of v's tree.
func (f *Forest) Root(v int32) int32 {
	for f.parent[v] != None {
		v = f.parent[v]
	}
	return v
}

// SameTree reports whether u and v belong to one tree.
func (f *Forest) SameTree(u, v int32) bool { return f.Root(u) == f.Root(v) }

// IsSingleton reports whether v is a tree by itself.
func (f *Forest) IsSingleton(v int32) bool {
	return f.parent[v] == None && len(f.kids[v]) == 0
}

// TreePositive reports whether v's tree is positive (gain > 0, no frozen
// member).
func (f *Forest) TreePositive(v int32) bool {
	r := f.Root(v)
	return f.sumBW[r] > 0 && f.numFrozen[r] == 0
}

// PositiveSet returns V_P(F): all members of positive trees, plus a
// membership mask.
func (f *Forest) PositiveSet() ([]int32, []bool) {
	n := len(f.b)
	mask := make([]bool, n)
	var out []int32
	for v := 0; v < n; v++ {
		if f.parent[int32(v)] == None && f.sumBW[v] > 0 && f.numFrozen[v] == 0 {
			out = f.collect(int32(v), out, mask)
		}
	}
	return out, mask
}

func (f *Forest) collect(v int32, out []int32, mask []bool) []int32 {
	out = append(out, v)
	mask[v] = true
	for _, c := range f.kids[v] {
		out = f.collect(c, out, mask)
	}
	return out
}

// SetWeight updates w(q). Per Section IV-C, the weight of a vertex may
// only change while it is a tree by itself (callers Break first).
func (f *Forest) SetWeight(q int32, w int32) error {
	if w < 1 {
		return fmt.Errorf("forest: weight %d < 1", w)
	}
	if !f.IsSingleton(q) {
		return fmt.Errorf("forest: SetWeight on non-singleton vertex %d", q)
	}
	f.w[q] = w
	f.sumBW[q] = f.b[q] * int64(w)
	return nil
}

// Break implements the BreakTree routine: it re-roots q's tree at q and
// deletes the edges from q to its children, leaving q a singleton and each
// former neighbor's component its own tree.
func (f *Forest) Break(q int32) {
	f.rec.Count(telemetry.CounterForestBreaks, 1)
	f.reroot(q)
	for _, c := range f.kids[q] {
		f.parent[c] = None
	}
	f.kids[q] = f.kids[q][:0]
	f.sumBW[q] = f.b[q] * int64(f.w[q])
	f.numFrozen[q] = btoi(f.frozen[q])
}

// reroot makes q the root of its tree, flipping the stored constraint
// directions along the path.
func (f *Forest) reroot(q int32) {
	// Collect the path q -> old root.
	var path []int32
	for x := q; x != None; x = f.parent[x] {
		path = append(path, x)
	}
	if len(path) == 1 {
		return
	}
	// Reverse parent pointers along the path. The old edge (child=path[i],
	// parent=path[i+1], up=U) becomes (child=path[i+1], parent=path[i],
	// up=!U): the constraint direction is physical, the tree orientation
	// is bookkeeping.
	for i := len(path) - 2; i >= 0; i-- {
		child, par := path[i], path[i+1]
		oldUp := f.up[child]
		// Remove child from par's kids.
		f.removeKid(par, child)
		// Attach par under child.
		f.parent[par] = child
		f.up[par] = !oldUp
		f.kids[child] = append(f.kids[child], par)
	}
	f.parent[q] = None
	// Recompute aggregates bottom-up along the reversed path.
	for i := len(path) - 1; i >= 0; i-- {
		f.recompute(path[i])
	}
}

func (f *Forest) removeKid(par, child int32) {
	ks := f.kids[par]
	for i, c := range ks {
		if c == child {
			ks[i] = ks[len(ks)-1]
			f.kids[par] = ks[:len(ks)-1]
			return
		}
	}
}

// recompute refreshes v's aggregates from its children (which must be
// current).
func (f *Forest) recompute(v int32) {
	f.sumBW[v] = f.b[v] * int64(f.w[v])
	f.numFrozen[v] = btoi(f.frozen[v])
	for _, c := range f.kids[v] {
		f.sumBW[v] += f.sumBW[c]
		f.numFrozen[v] += f.numFrozen[c]
	}
}

func btoi(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// Link adds the active constraint (p, q): p's decrease forces q's. q's
// tree is re-rooted at q and hung under p with U(q) = false. If p and q
// already share a tree the call is a no-op (the constraint is implied).
// After linking, regularity is restored along the affected path.
func (f *Forest) Link(p, q int32) error {
	if p == q {
		return fmt.Errorf("forest: self-link of %d", p)
	}
	if f.SameTree(p, q) {
		return nil
	}
	f.rec.Count(telemetry.CounterForestLinks, 1)
	f.reroot(q)
	f.parent[q] = p
	f.up[q] = false
	f.kids[p] = append(f.kids[p], q)
	// Refresh aggregates up the path from p.
	for x := p; x != None; x = f.parent[x] {
		f.recompute(x)
	}
	f.enforce(q)
	return nil
}

// LinkUp adds the constraint (q, p): q's decrease forces p — the child
// pushes the parent (U(q) = true). Used when a positive subtree drags its
// dependency chain upward.
func (f *Forest) LinkUp(p, q int32) error {
	if p == q {
		return fmt.Errorf("forest: self-link of %d", p)
	}
	if f.SameTree(p, q) {
		return nil
	}
	f.rec.Count(telemetry.CounterForestLinks, 1)
	f.reroot(q)
	f.parent[q] = p
	f.up[q] = true
	f.kids[p] = append(f.kids[p], q)
	for x := p; x != None; x = f.parent[x] {
		f.recompute(x)
	}
	f.enforce(q)
	return nil
}

// enforce restores regularity on the path from v to its root: a child
// with U=true must head a positive subtree (it pushes its parent); a child
// with U=false must head a non-positive subtree (it hangs as baggage).
// Violating edges are cut; the detached subtree becomes its own tree. A
// frozen subtree hanging below keeps its edge (it pins the tree at zero
// moves regardless).
func (f *Forest) enforce(v int32) {
	for v != None {
		par := f.parent[v]
		if par == None {
			return
		}
		bad := (f.up[v] && f.sumBW[v] <= 0) || (!f.up[v] && f.sumBW[v] > 0)
		if bad && f.numFrozen[v] == 0 {
			// Cut (v, par).
			f.removeKid(par, v)
			f.parent[v] = None
			for x := par; x != None; x = f.parent[x] {
				f.recompute(x)
			}
			v = par
			continue
		}
		v = par
	}
}

// Check validates internal invariants (for tests): aggregates match a
// recomputation and parent/child pointers are consistent.
func (f *Forest) Check() error {
	n := len(f.b)
	for v := 0; v < n; v++ {
		for _, c := range f.kids[v] {
			if f.parent[c] != int32(v) {
				return fmt.Errorf("forest: child %d of %d has parent %d", c, v, f.parent[c])
			}
		}
		var sum int64 = f.b[v] * int64(f.w[v])
		var fr int32 = btoi(f.frozen[v])
		for _, c := range f.kids[v] {
			sum += f.sumBW[c]
			fr += f.numFrozen[c]
		}
		if sum != f.sumBW[v] || fr != f.numFrozen[v] {
			return fmt.Errorf("forest: stale aggregates at %d", v)
		}
	}
	// Acyclicity: walking up from any vertex terminates.
	for v := 0; v < n; v++ {
		steps := 0
		for x := int32(v); x != None; x = f.parent[x] {
			steps++
			if steps > n {
				return fmt.Errorf("forest: parent cycle at %d", v)
			}
		}
	}
	return nil
}
