package interval

import (
	"math/rand"
	"testing"
)

func BenchmarkUnion(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomSet(rng)
	c := randomSet(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Union(c)
	}
}

func BenchmarkShiftMeasure(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := randomSet(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Shift(-1.5).Measure()
	}
}
