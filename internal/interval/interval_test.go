package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsInverted(t *testing.T) {
	if _, err := New(Interval{2, 1}); err == nil {
		t.Fatal("New accepted inverted interval")
	}
	if _, err := New(Interval{math.NaN(), 1}); err == nil {
		t.Fatal("New accepted NaN bound")
	}
}

func TestNormalizeMergesOverlaps(t *testing.T) {
	s := MustNew(Interval{0, 2}, Interval{1, 3}, Interval{5, 6})
	want := MustNew(Interval{0, 3}, Interval{5, 6})
	if !s.Equal(want) {
		t.Fatalf("got %v, want %v", s, want)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
}

func TestNormalizeMergesTouching(t *testing.T) {
	s := MustNew(Interval{0, 1}, Interval{1, 2})
	if s.Count() != 1 {
		t.Fatalf("touching intervals not merged: %v", s)
	}
	if s.Measure() != 2 {
		t.Fatalf("Measure = %g, want 2", s.Measure())
	}
}

func TestEmptySet(t *testing.T) {
	var s Set
	if !s.Empty() || s.Count() != 0 || s.Measure() != 0 {
		t.Fatalf("zero Set not empty: %v", s)
	}
	if s.Contains(0) {
		t.Fatal("empty set contains 0")
	}
	u := s.Union(Single(1, 2))
	if u.Measure() != 1 {
		t.Fatalf("union with empty wrong: %v", u)
	}
}

func TestMinMax(t *testing.T) {
	s := MustNew(Interval{3, 4}, Interval{-1, 0}, Interval{10, 12})
	if s.Min() != -1 {
		t.Fatalf("Min = %g", s.Min())
	}
	if s.Max() != 12 {
		t.Fatalf("Max = %g", s.Max())
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min on empty set did not panic")
		}
	}()
	var s Set
	_ = s.Min()
}

func TestShift(t *testing.T) {
	s := MustNew(Interval{1, 2}, Interval{4, 5})
	g := s.Shift(-1.5)
	want := MustNew(Interval{-0.5, 0.5}, Interval{2.5, 3.5})
	if !g.Equal(want) {
		t.Fatalf("Shift: got %v want %v", g, want)
	}
	if math.Abs(g.Measure()-s.Measure()) > 1e-12 {
		t.Fatal("Shift changed measure")
	}
}

func TestContains(t *testing.T) {
	s := MustNew(Interval{0, 1}, Interval{3, 4})
	cases := []struct {
		t    float64
		want bool
	}{
		{-0.1, false}, {0, true}, {0.5, true}, {1, true},
		{2, false}, {3, true}, {4, true}, {4.1, false},
	}
	for _, c := range cases {
		if got := s.Contains(c.t); got != c.want {
			t.Errorf("Contains(%g) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := MustNew(Interval{0, 5}, Interval{10, 15})
	b := MustNew(Interval{3, 12})
	got := a.Intersect(b)
	want := MustNew(Interval{3, 5}, Interval{10, 12})
	if !got.Equal(want) {
		t.Fatalf("Intersect: got %v want %v", got, want)
	}
}

func TestIntersectDisjoint(t *testing.T) {
	a := Single(0, 1)
	b := Single(2, 3)
	if !a.Intersect(b).Empty() {
		t.Fatal("disjoint intersection not empty")
	}
}

func TestClamp(t *testing.T) {
	s := MustNew(Interval{0, 10})
	got := s.Clamp(2, 4)
	if !got.Equal(Single(2, 4)) {
		t.Fatalf("Clamp: got %v", got)
	}
	if !s.Clamp(5, 3).Empty() {
		t.Fatal("Clamp with hi<lo not empty")
	}
}

func TestUnionInPlace(t *testing.T) {
	s := Single(0, 1)
	s.UnionInPlace(Single(0.5, 2))
	if !s.Equal(Single(0, 2)) {
		t.Fatalf("UnionInPlace: got %v", s)
	}
}

func TestStringer(t *testing.T) {
	if got := MustNew(Interval{0, 1}).String(); got != "[0, 1]" {
		t.Fatalf("String = %q", got)
	}
	var e Set
	if e.String() != "{}" {
		t.Fatalf("empty String = %q", e.String())
	}
}

// randomSet builds a small random interval set for property tests.
func randomSet(r *rand.Rand) Set {
	n := r.Intn(5)
	ivs := make([]Interval, n)
	for i := range ivs {
		l := r.Float64()*20 - 10
		ivs[i] = Interval{l, l + r.Float64()*5}
	}
	return MustNew(ivs...)
}

func TestPropertyUnionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnionMeasureSuperadditive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		u := a.Union(b)
		// |A ∪ B| <= |A| + |B| and >= max(|A|, |B|).
		const eps = 1e-9
		return u.Measure() <= a.Measure()+b.Measure()+eps &&
			u.Measure() >= math.Max(a.Measure(), b.Measure())-eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyInclusionExclusion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		u := a.Union(b)
		x := a.Intersect(b)
		const eps = 1e-9
		return math.Abs(u.Measure()+x.Measure()-a.Measure()-b.Measure()) < eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNormalizedDisjointSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r).Union(randomSet(r))
		ivs := s.Intervals()
		for i := 0; i+1 < len(ivs); i++ {
			if ivs[i].R >= ivs[i+1].L { // must be strictly separated
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyShiftRoundTrip(t *testing.T) {
	f := func(seed int64, delta float64) bool {
		if math.IsNaN(delta) || math.IsInf(delta, 0) {
			return true
		}
		delta = math.Mod(delta, 1e6)
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r)
		return s.Shift(delta).Shift(-delta).ApproxEqual(s, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
