// Package interval implements sets of disjoint closed real intervals.
//
// Error-latching windows (ELWs) in soft-error timing analysis are unions of
// disjoint intervals on the time axis (Lu & Zhou, DATE 2013, eq. 2). This
// package provides the set algebra the ELW computation of eq. (3) needs:
// union, scalar shift, total measure, and containment queries.
package interval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Interval is a closed interval [L, R] with L <= R.
type Interval struct {
	L, R float64
}

// Len returns the length R - L of the interval.
func (iv Interval) Len() float64 { return iv.R - iv.L }

// Contains reports whether t lies in [L, R].
func (iv Interval) Contains(t float64) bool { return iv.L <= t && t <= iv.R }

// Shift returns the interval translated by delta.
func (iv Interval) Shift(delta float64) Interval {
	return Interval{iv.L + delta, iv.R + delta}
}

// Overlaps reports whether the two closed intervals intersect
// (touching endpoints count as overlap, so their union is one interval).
func (iv Interval) Overlaps(o Interval) bool {
	return iv.L <= o.R && o.L <= iv.R
}

func (iv Interval) String() string {
	return fmt.Sprintf("[%g, %g]", iv.L, iv.R)
}

// Set is a union of disjoint, sorted, non-touching closed intervals.
// The zero value is the empty set and is ready to use.
type Set struct {
	ivs []Interval
}

// New builds a Set from arbitrary intervals, merging overlaps.
// Intervals with R < L are rejected with an error.
func New(ivs ...Interval) (Set, error) {
	for _, iv := range ivs {
		if iv.R < iv.L {
			return Set{}, fmt.Errorf("interval: inverted interval [%g, %g]", iv.L, iv.R)
		}
		if math.IsNaN(iv.L) || math.IsNaN(iv.R) {
			return Set{}, fmt.Errorf("interval: NaN bound in [%g, %g]", iv.L, iv.R)
		}
	}
	s := Set{ivs: append([]Interval(nil), ivs...)}
	s.normalize()
	return s, nil
}

// MustNew is New, panicking on invalid input. For tests and literals.
func MustNew(ivs ...Interval) Set {
	s, err := New(ivs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Single returns the set containing exactly [l, r].
func Single(l, r float64) Set {
	if r < l {
		panic(fmt.Sprintf("interval: inverted interval [%g, %g]", l, r))
	}
	return Set{ivs: []Interval{{l, r}}}
}

// normalize sorts and merges the interval list in place.
func (s *Set) normalize() {
	if len(s.ivs) <= 1 {
		return
	}
	sort.Slice(s.ivs, func(i, j int) bool { return s.ivs[i].L < s.ivs[j].L })
	out := s.ivs[:1]
	for _, iv := range s.ivs[1:] {
		last := &out[len(out)-1]
		if iv.L <= last.R {
			if iv.R > last.R {
				last.R = iv.R
			}
		} else {
			out = append(out, iv)
		}
	}
	s.ivs = out
}

// Empty reports whether the set contains no intervals.
func (s Set) Empty() bool { return len(s.ivs) == 0 }

// Count returns the number of disjoint intervals (the paper's l in ELW_l).
func (s Set) Count() int { return len(s.ivs) }

// Intervals returns a copy of the disjoint intervals in ascending order.
func (s Set) Intervals() []Interval {
	return append([]Interval(nil), s.ivs...)
}

// Measure returns the total length sum_i (R_i - L_i), i.e. |ELW| in eq. (4).
func (s Set) Measure() float64 {
	var m float64
	for _, iv := range s.ivs {
		m += iv.Len()
	}
	return m
}

// Min returns the smallest left endpoint L_1. Panics on the empty set.
func (s Set) Min() float64 {
	if s.Empty() {
		panic("interval: Min of empty set")
	}
	return s.ivs[0].L
}

// Max returns the largest right endpoint R_l. Panics on the empty set.
func (s Set) Max() float64 {
	if s.Empty() {
		panic("interval: Max of empty set")
	}
	return s.ivs[len(s.ivs)-1].R
}

// Contains reports whether t lies in some interval of the set.
func (s Set) Contains(t float64) bool {
	// Binary search for the first interval with L > t, then check its
	// predecessor.
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].L > t })
	return i > 0 && s.ivs[i-1].Contains(t)
}

// Union returns the union of s and o.
func (s Set) Union(o Set) Set {
	if s.Empty() {
		return o.clone()
	}
	if o.Empty() {
		return s.clone()
	}
	u := Set{ivs: make([]Interval, 0, len(s.ivs)+len(o.ivs))}
	u.ivs = append(u.ivs, s.ivs...)
	u.ivs = append(u.ivs, o.ivs...)
	u.normalize()
	return u
}

// UnionInPlace merges o into s, reusing s's storage where possible.
func (s *Set) UnionInPlace(o Set) {
	if o.Empty() {
		return
	}
	s.ivs = append(s.ivs, o.ivs...)
	s.normalize()
}

// Shift returns the set translated by delta (the ELW(f) - d(f) operation
// of eq. 3 uses delta = -d(f)).
func (s Set) Shift(delta float64) Set {
	out := Set{ivs: make([]Interval, len(s.ivs))}
	for i, iv := range s.ivs {
		out.ivs[i] = iv.Shift(delta)
	}
	return out
}

// Intersect returns the intersection of s and o.
func (s Set) Intersect(o Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s.ivs) && j < len(o.ivs) {
		a, b := s.ivs[i], o.ivs[j]
		lo := math.Max(a.L, b.L)
		hi := math.Min(a.R, b.R)
		if lo <= hi {
			out.ivs = append(out.ivs, Interval{lo, hi})
		}
		if a.R < b.R {
			i++
		} else {
			j++
		}
	}
	// Intersection of disjoint sorted sets is disjoint and sorted, but
	// touching endpoints can arise; normalize for canonical form.
	out.normalize()
	return out
}

// Equal reports whether the two sets contain exactly the same intervals.
func (s Set) Equal(o Set) bool {
	if len(s.ivs) != len(o.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != o.ivs[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether the two sets are equal within eps at every
// endpoint (useful after floating-point shifts).
func (s Set) ApproxEqual(o Set, eps float64) bool {
	if len(s.ivs) != len(o.ivs) {
		return false
	}
	for i := range s.ivs {
		if math.Abs(s.ivs[i].L-o.ivs[i].L) > eps || math.Abs(s.ivs[i].R-o.ivs[i].R) > eps {
			return false
		}
	}
	return true
}

// Clamp returns the subset of s lying within [lo, hi].
func (s Set) Clamp(lo, hi float64) Set {
	if hi < lo {
		return Set{}
	}
	return s.Intersect(Single(lo, hi))
}

func (s Set) clone() Set {
	return Set{ivs: append([]Interval(nil), s.ivs...)}
}

func (s Set) String() string {
	if s.Empty() {
		return "{}"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " ∪ ")
}
