package bliffmt

import (
	"bytes"
	"strings"
	"testing"

	"serretime/internal/benchfmt"
	"serretime/internal/circuit"
	"serretime/internal/gen"
	"serretime/internal/sim"
)

const sample = `
# a small sequential model
.model demo
.inputs a b \
        c
.outputs y z
.latch n2 q re clk 2
.names a b n1
11 1
.names n1 q n2
0- 1
-0 1
.names n2 c y
10 1
01 1
.names q z
1 1
.end
`

func TestParseSample(t *testing.T) {
	c, err := Parse(strings.NewReader(sample), "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "demo" {
		t.Fatalf("name = %q", c.Name)
	}
	pis, pos, gates, dffs := c.Counts()
	if pis != 3 || pos != 2 || gates != 4 || dffs != 1 {
		t.Fatalf("counts = %d %d %d %d", pis, pos, gates, dffs)
	}
	check := func(name string, fn circuit.Func) {
		t.Helper()
		id, ok := c.Lookup(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if got := c.Node(id).Fn; got != fn {
			t.Fatalf("%s = %v, want %v", name, got, fn)
		}
	}
	check("n1", circuit.FnAnd)
	check("n2", circuit.FnNand)
	check("y", circuit.FnXor)
	check("z", circuit.FnBuf)
}

func TestCoverMapping(t *testing.T) {
	cases := []struct {
		cover string
		fn    circuit.Func
	}{
		{".names a y\n1 1", circuit.FnBuf},
		{".names a y\n0 1", circuit.FnNot},
		{".names a b y\n11 1", circuit.FnAnd},
		{".names a b y\n00 1", circuit.FnNor},
		{".names a b y\n11 0", circuit.FnNand},
		{".names a b y\n00 0", circuit.FnOr},
		{".names a b y\n1- 1\n-1 1", circuit.FnOr},
		{".names a b y\n0- 1\n-0 1", circuit.FnNand},
		{".names a b y\n1- 0\n-1 0", circuit.FnNor},
		{".names a b y\n0- 0\n-0 0", circuit.FnAnd},
		{".names a b y\n10 1\n01 1", circuit.FnXor},
		{".names a b y\n11 1\n00 1", circuit.FnXnor},
		{".names a b c y\n111 1", circuit.FnAnd},
		{".names y\n1", circuit.FnConst1},
		{".names y", circuit.FnConst0},
	}
	for _, tc := range cases {
		src := ".model t\n.inputs a b c\n.outputs y\n" + tc.cover + "\n.end\n"
		c, err := Parse(strings.NewReader(src), "t")
		if err != nil {
			t.Errorf("%q: %v", tc.cover, err)
			continue
		}
		id, _ := c.Lookup("y")
		if got := c.Node(id).Fn; got != tc.fn {
			t.Errorf("%q: got %v, want %v", tc.cover, got, tc.fn)
		}
	}
}

func TestRejectedCovers(t *testing.T) {
	cases := []string{
		".names a b y\n11 1\n00 1\n10 1", // 3 rows, not a simple gate
		".names a b y\n1- 1\n11 0",       // mixed polarity
		".names a b y\n1 1",              // arity mismatch
		".names a b y\n12 1",             // bad literal treated as unmapped
		".names a b c y\n1-- 1\n-1- 1",   // incomplete one-hot
		"11 1",                           // stray cover row
		".names a b y\n11 2",             // bad output
		".subckt foo a=b",                // unsupported construct
	}
	for _, tc := range cases {
		src := ".model t\n.inputs a b c\n.outputs y\n" + tc + "\n.end\n"
		if _, err := Parse(strings.NewReader(src), "t"); err == nil {
			t.Errorf("%q: accepted", tc)
		}
	}
}

func TestRoundTripS27(t *testing.T) {
	orig, err := benchfmt.ParseFile("../../testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()), "s27")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	op, oo, og, od := orig.Counts()
	bp, bo, bg, bd := back.Counts()
	if op != bp || oo != bo || og != bg || od != bd {
		t.Fatalf("round trip counts differ: %v vs %v", []int{op, oo, og, od}, []int{bp, bo, bg, bd})
	}
	for _, name := range orig.SortedNames() {
		oid, _ := orig.Lookup(name)
		bid, ok := back.Lookup(name)
		if !ok {
			t.Fatalf("net %q lost", name)
		}
		on, bn := orig.Node(oid), back.Node(bid)
		if on.Kind != bn.Kind || on.Fn != bn.Fn {
			t.Fatalf("net %q changed: %v/%v vs %v/%v", name, on.Kind, on.Fn, bn.Kind, bn.Fn)
		}
	}
}

// TestRoundTripBehavioral checks functional equivalence of a BLIF round
// trip on a generated circuit by co-simulation.
func TestRoundTripBehavioral(t *testing.T) {
	c, err := gen.Generate(gen.Spec{Name: "bliftrip", Gates: 150, Conns: 330, FFs: 40, Depth: 12})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()), "bliftrip")
	if err != nil {
		t.Fatal(err)
	}
	// Same nodes, same wiring: identical traces under the same seed.
	ta, err := sim.Run(c, sim.Config{Words: 2, Frames: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := sim.Run(back, sim.Config{Words: 2, Frames: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 6; f++ {
		for i, po := range c.POs() {
			pb := back.POs()[i]
			if c.Node(po).Name != back.Node(pb).Name {
				t.Fatalf("PO order changed: %s vs %s", c.Node(po).Name, back.Node(pb).Name)
			}
			va, vb := ta.Value(f, po), tb.Value(f, pb)
			for w := range va {
				if va[w] != vb[w] {
					// Traces only match if node declaration order (and
					// thus RNG consumption) matches; verify names too.
					t.Fatalf("frame %d PO %s differs", f, c.Node(po).Name)
				}
			}
		}
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("/nonexistent.blif"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWriteHasModelAndEnd(t *testing.T) {
	c, _ := benchfmt.ParseFile("../../testdata/s27.bench")
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, ".model s27\n") || !strings.HasSuffix(out, ".end\n") {
		t.Fatalf("framing wrong:\n%s", out)
	}
	if !strings.Contains(out, ".latch G10 G5 re clk 2") {
		t.Fatalf("latch missing:\n%s", out)
	}
}
