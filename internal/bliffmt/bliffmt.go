// Package bliffmt reads and writes a structural subset of the Berkeley
// Logic Interchange Format (BLIF), the second lingua franca (next to
// .bench) for the ISCAS/ITC benchmark families.
//
// Supported constructs:
//
//	.model <name>
//	.inputs / .outputs  (with '\' line continuation)
//	.latch <in> <out> [<type> <control>] [<init>]
//	.names <in...> <out> followed by a PLA cover
//	.end
//
// Covers are mapped onto the gate library of package circuit. The mapping
// recognizes the standard single-output covers synthesis tools emit for
// simple gates (BUF, NOT, AND, OR, NAND, NOR, XOR, XNOR, constants);
// arbitrary two-level covers are rejected with a descriptive error rather
// than silently mis-read — this is a structural netlist reader, not a
// logic synthesizer.
package bliffmt

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"serretime/internal/circuit"
	"serretime/internal/faultfs"
	"serretime/internal/guard"
)

// ParseError is the toolkit-wide typed parse error; it unwraps to
// guard.ErrParse and carries line info.
type ParseError = guard.ParseError

type namesDecl struct {
	line   int
	inputs []string
	output string
	cover  []coverRow
}

type coverRow struct {
	in  string
	out byte
}

// Parse reads a BLIF netlist. Malformed input yields a *ParseError
// (guard.ErrParse), never a panic.
func Parse(r io.Reader, fallbackName string) (c *circuit.Circuit, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	name := fallbackName
	var inputs, outputs []string
	type latch struct {
		in, out string
		line    int
	}
	var latches []latch
	var names []*namesDecl
	var cur *namesDecl

	lineNo := 0
	defer guard.RecoverParse("blif", &lineNo, &err)
	pending := ""
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		// A comment starts at a '#' that begins the line or follows
		// whitespace (identifiers may legally contain '#').
		for i := 0; i < len(line); i++ {
			if line[i] == '#' && (i == 0 || line[i-1] == ' ' || line[i-1] == '\t') {
				line = line[:i]
				break
			}
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, "\\") {
			pending += strings.TrimSuffix(line, "\\") + " "
			continue
		}
		line = pending + line
		pending = ""

		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if len(fields) >= 2 {
				name = fields[1]
			}
			cur = nil
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
			cur = nil
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
			cur = nil
		case ".latch":
			if len(fields) < 3 {
				return nil, guard.Parsef("blif", lineNo, 0, "malformed .latch")
			}
			latches = append(latches, latch{in: fields[1], out: fields[2], line: lineNo})
			cur = nil
		case ".names":
			if len(fields) < 2 {
				return nil, guard.Parsef("blif", lineNo, 0, "malformed .names")
			}
			cur = &namesDecl{
				line:   lineNo,
				inputs: fields[1 : len(fields)-1],
				output: fields[len(fields)-1],
			}
			names = append(names, cur)
		case ".end":
			cur = nil
		case ".exdc", ".subckt", ".gate", ".mlatch", ".clock":
			return nil, guard.Parsef("blif", lineNo, 0, "unsupported construct %s", fields[0])
		default:
			if strings.HasPrefix(fields[0], ".") {
				// Unknown dot-directives are skipped (e.g. .default_input_arrival).
				cur = nil
				continue
			}
			// A cover row for the current .names.
			if cur == nil {
				return nil, guard.Parsef("blif", lineNo, 0, "stray cover row %q", line)
			}
			var in string
			var out byte
			switch len(fields) {
			case 1:
				if len(cur.inputs) != 0 {
					return nil, guard.Parsef("blif", lineNo, 0, "cover row arity mismatch")
				}
				in, out = "", fields[0][0]
			case 2:
				in, out = fields[0], fields[1][0]
			default:
				return nil, guard.Parsef("blif", lineNo, 0, "malformed cover row")
			}
			if len(in) != len(cur.inputs) {
				return nil, guard.Parsef("blif", lineNo, 0, "cover row width %d for %d inputs", len(in), len(cur.inputs))
			}
			if out != '0' && out != '1' {
				return nil, guard.Parsef("blif", lineNo, 0, "cover output must be 0 or 1")
			}
			cur.cover = append(cur.cover, coverRow{in, out})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, guard.Parsef("blif", lineNo, 0, "read: %v", err)
	}

	b := circuit.NewBuilder(name)
	for _, in := range inputs {
		b.PI(in)
	}
	for _, l := range latches {
		b.DFF(l.out, l.in)
	}
	for _, nd := range names {
		fn, perm, err := mapCover(nd)
		if err != nil {
			return nil, err
		}
		ins := make([]string, len(perm))
		for i, p := range perm {
			ins[i] = nd.inputs[p]
		}
		b.Gate(nd.output, fn, ins...)
	}
	for _, out := range outputs {
		b.PO(out)
	}
	c, err = b.Build()
	if err != nil {
		return nil, guard.Parsef("blif", 0, 0, "%v", err)
	}
	return c, nil
}

// mapCover recognizes the cover of a simple gate. It returns the gate
// function and the input order to use (identity except when irrelevant).
func mapCover(nd *namesDecl) (circuit.Func, []int, error) {
	n := len(nd.inputs)
	ident := make([]int, n)
	for i := range ident {
		ident[i] = i
	}
	fail := func(msg string) (circuit.Func, []int, error) {
		return 0, nil, guard.Parsef("blif", nd.line, 0, ".names %s: %s", nd.output, msg)
	}
	// Constants.
	if n == 0 {
		if len(nd.cover) == 0 {
			return circuit.FnConst0, nil, nil
		}
		if len(nd.cover) == 1 && nd.cover[0].out == '1' {
			return circuit.FnConst1, nil, nil
		}
		return fail("unrecognized constant cover")
	}
	// All rows must share the same output polarity (single-phase covers).
	onSet := nd.cover[0].out == '1'
	for _, row := range nd.cover {
		if (row.out == '1') != onSet {
			return fail("mixed-polarity cover")
		}
	}
	rows := make([]string, len(nd.cover))
	for i, r := range nd.cover {
		rows[i] = r.in
	}
	sort.Strings(rows)

	all := func(s string, c byte) bool {
		for i := 0; i < len(s); i++ {
			if s[i] != c {
				return false
			}
		}
		return true
	}
	// Single-row covers.
	if len(rows) == 1 {
		r := rows[0]
		switch {
		case n == 1 && r == "1" && onSet:
			return circuit.FnBuf, ident, nil
		case n == 1 && r == "0" && onSet:
			return circuit.FnNot, ident, nil
		case all(r, '1') && onSet:
			return circuit.FnAnd, ident, nil
		case all(r, '0') && onSet:
			return circuit.FnNor, ident, nil
		case all(r, '1') && !onSet:
			return circuit.FnNand, ident, nil
		case all(r, '0') && !onSet:
			return circuit.FnOr, ident, nil
		}
		return fail(fmt.Sprintf("unrecognized single-row cover %q", r))
	}
	// n rows, each with exactly one non-dash position: OR (on-set) /
	// NOR (off-set with 1s) etc.
	oneHot := func(c byte) bool {
		seen := make([]bool, n)
		for _, r := range rows {
			pos := -1
			for i := 0; i < n; i++ {
				switch r[i] {
				case '-':
				case c:
					if pos >= 0 {
						return false
					}
					pos = i
				default:
					return false
				}
			}
			if pos < 0 || seen[pos] {
				return false
			}
			seen[pos] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if len(rows) == n {
		switch {
		case oneHot('1') && onSet:
			return circuit.FnOr, ident, nil
		case oneHot('0') && onSet:
			return circuit.FnNand, ident, nil
		case oneHot('1') && !onSet:
			return circuit.FnNor, ident, nil
		case oneHot('0') && !onSet:
			return circuit.FnAnd, ident, nil
		}
	}
	// XOR/XNOR: all 2^(n-1) odd- or even-parity minterms.
	if parity, ok := parityCover(rows, n); ok {
		if parity == onSet {
			// odd parity on-set = XOR (for the convention parity=true odd)
			return circuit.FnXor, ident, nil
		}
		return circuit.FnXnor, ident, nil
	}
	return fail(fmt.Sprintf("unrecognized %d-row cover (not a simple gate)", len(rows)))
}

// parityCover reports whether rows enumerate exactly the odd-parity
// (true) or even-parity (false) minterms of n variables.
func parityCover(rows []string, n int) (bool, bool) {
	if n < 2 || len(rows) != 1<<(n-1) {
		return false, false
	}
	var odd, even int
	for _, r := range rows {
		ones := 0
		for i := 0; i < n; i++ {
			switch r[i] {
			case '1':
				ones++
			case '0':
			default:
				return false, false // dashes cannot appear in parity covers
			}
		}
		if ones%2 == 1 {
			odd++
		} else {
			even++
		}
	}
	if odd == len(rows) {
		return true, true
	}
	if even == len(rows) {
		return false, true
	}
	return false, false
}

// ParseFile reads a BLIF file; the model name defaults to the file's base
// name without extension.
func ParseFile(path string) (*circuit.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(base, ".blif")
	return Parse(f, base)
}

// Write emits the circuit as BLIF, using canonical covers for each gate
// function.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", c.Name)
	fmt.Fprint(bw, ".inputs")
	for _, id := range c.PIs() {
		fmt.Fprintf(bw, " %s", c.Node(id).Name)
	}
	fmt.Fprintln(bw)
	fmt.Fprint(bw, ".outputs")
	for _, id := range c.POs() {
		fmt.Fprintf(bw, " %s", c.Node(id).Name)
	}
	fmt.Fprintln(bw)
	for i := 0; i < c.NumNodes(); i++ {
		nd := c.Node(circuit.NodeID(i))
		switch nd.Kind {
		case circuit.KindDFF:
			fmt.Fprintf(bw, ".latch %s %s re clk 2\n", c.Node(nd.Fanin[0]).Name, nd.Name)
		case circuit.KindGate:
			fmt.Fprint(bw, ".names")
			for _, f := range nd.Fanin {
				fmt.Fprintf(bw, " %s", c.Node(f).Name)
			}
			fmt.Fprintf(bw, " %s\n", nd.Name)
			writeCover(bw, nd.Fn, len(nd.Fanin))
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func writeCover(w io.Writer, fn circuit.Func, n int) {
	rep := func(c byte) string { return strings.Repeat(string(c), n) }
	switch fn {
	case circuit.FnConst0:
		// empty cover
	case circuit.FnConst1:
		fmt.Fprintln(w, "1")
	case circuit.FnBuf:
		fmt.Fprintln(w, "1 1")
	case circuit.FnNot:
		fmt.Fprintln(w, "0 1")
	case circuit.FnAnd:
		fmt.Fprintf(w, "%s 1\n", rep('1'))
	case circuit.FnNor:
		fmt.Fprintf(w, "%s 1\n", rep('0'))
	case circuit.FnNand:
		fmt.Fprintf(w, "%s 0\n", rep('1'))
	case circuit.FnOr:
		fmt.Fprintf(w, "%s 0\n", rep('0'))
	case circuit.FnXor, circuit.FnXnor:
		// Enumerate the on-set minterms.
		want := 1
		if fn == circuit.FnXnor {
			want = 0
		}
		for m := 0; m < 1<<n; m++ {
			ones := 0
			row := make([]byte, n)
			for i := 0; i < n; i++ {
				if m&(1<<i) != 0 {
					row[i] = '1'
					ones++
				} else {
					row[i] = '0'
				}
			}
			if ones%2 == want {
				fmt.Fprintf(w, "%s 1\n", row)
			}
		}
	}
}

// WriteFile writes the circuit to a BLIF file. The write is atomic
// (temp file + rename), so a crash mid-write can't leave a torn netlist.
func WriteFile(path string, c *circuit.Circuit) error {
	return faultfs.WriteAtomic(faultfs.OS(), path, 0o644, false, func(w io.Writer) error {
		return Write(w, c)
	})
}
