package bliffmt

import (
	"errors"
	"strings"
	"testing"

	"serretime/internal/guard"
)

// FuzzParseBLIF checks the robustness contract of the BLIF reader: any
// byte stream either parses into a circuit or yields an error
// unwrapping to guard.ErrParse — it must never panic or return
// (nil, nil).
func FuzzParseBLIF(f *testing.F) {
	f.Add(".model s27\n.inputs a b\n.outputs y\n.latch d q re clk 2\n.names a b y\n11 1\n.end\n")
	f.Add(".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n")
	f.Add(".names a b y\n1- 1\n-1 1\n")
	f.Add(".names y\n1\n")
	f.Add(".latch\n")
	f.Add(".names a y\n11 1\n")
	f.Add("1 1\n")
	f.Add(".inputs a \\\nb c\n.outputs y\n.names a b c y\n111 1\n.end\n")
	f.Fuzz(func(t *testing.T, input string) {
		c, err := Parse(strings.NewReader(input), "fuzz")
		if err != nil {
			if !errors.Is(err, guard.ErrParse) {
				t.Fatalf("error does not unwrap to guard.ErrParse: %v", err)
			}
			return
		}
		if c == nil {
			t.Fatal("nil circuit with nil error")
		}
		var sb strings.Builder
		if werr := Write(&sb, c); werr != nil {
			t.Fatalf("round-trip write failed: %v", werr)
		}
		if _, rerr := Parse(strings.NewReader(sb.String()), "fuzz2"); rerr != nil {
			t.Fatalf("round-trip re-parse failed: %v\noutput:\n%s", rerr, sb.String())
		}
	})
}
