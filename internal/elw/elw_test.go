package elw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"serretime/internal/graph"
	"serretime/internal/interval"
)

// chain builds host -1-> A(d=2) -0-> B(d=3) -0-> host.
func chain() (*graph.Graph, graph.VertexID, graph.VertexID) {
	b := graph.NewBuilder()
	a := b.AddVertex("A", 2)
	bb := b.AddVertex("B", 3)
	b.AddEdge(graph.Host, a, 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(bb, graph.Host, 0)
	return b.Build(), a, bb
}

func TestExactChain(t *testing.T) {
	g, a, bb := chain()
	p := DefaultParams(10)
	elws, err := Exact(g, graph.NewRetiming(g), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !elws[bb].Equal(interval.Single(10, 12)) {
		t.Fatalf("ELW(B) = %v", elws[bb])
	}
	if !elws[a].Equal(interval.Single(7, 9)) {
		t.Fatalf("ELW(A) = %v", elws[a])
	}
	if !elws[graph.Host].Empty() {
		t.Fatal("host has a window")
	}
}

func TestLabelsChain(t *testing.T) {
	g, a, bb := chain()
	p := DefaultParams(10)
	lab, err := ComputeLabels(g, graph.NewRetiming(g), p)
	if err != nil {
		t.Fatal(err)
	}
	if lab.L[bb] != 10 || lab.R[bb] != 12 || lab.LT[bb] != bb || lab.RT[bb] != bb {
		t.Fatalf("labels(B) = L%g R%g lt%d rt%d", lab.L[bb], lab.R[bb], lab.LT[bb], lab.RT[bb])
	}
	if lab.L[a] != 7 || lab.R[a] != 9 || lab.LT[a] != bb || lab.RT[a] != bb {
		t.Fatalf("labels(A) = L%g R%g lt%d rt%d", lab.L[a], lab.R[a], lab.LT[a], lab.RT[a])
	}
	if v, ok := lab.CheckP1(g); !ok {
		t.Fatalf("P1 violated at %s", g.Name(v))
	}
}

// fanouts builds A feeding B (d=3) and C (d=5), both driving POs.
func fanouts() (*graph.Graph, graph.VertexID, graph.VertexID, graph.VertexID) {
	b := graph.NewBuilder()
	a := b.AddVertex("A", 1)
	bb := b.AddVertex("B", 3)
	c := b.AddVertex("C", 5)
	b.AddEdge(graph.Host, a, 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(a, c, 0)
	b.AddEdge(bb, graph.Host, 0)
	b.AddEdge(c, graph.Host, 0)
	return b.Build(), a, bb, c
}

func TestExactUnion(t *testing.T) {
	g, a, _, _ := fanouts()
	p := DefaultParams(10)
	elws, err := Exact(g, graph.NewRetiming(g), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// [7,9] ∪ [5,7] = [5,9].
	if !elws[a].Equal(interval.Single(5, 9)) {
		t.Fatalf("ELW(A) = %v", elws[a])
	}
	if elws[a].Measure() != 4 {
		t.Fatalf("|ELW(A)| = %g", elws[a].Measure())
	}
}

func TestExactDisjointUnion(t *testing.T) {
	// Delays far apart produce a two-interval window.
	b := graph.NewBuilder()
	a := b.AddVertex("A", 1)
	bb := b.AddVertex("B", 1)
	c := b.AddVertex("C", 8)
	b.AddEdge(graph.Host, a, 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(a, c, 0)
	b.AddEdge(bb, graph.Host, 0)
	b.AddEdge(c, graph.Host, 0)
	g := b.Build()
	p := DefaultParams(20)
	elws, err := Exact(g, graph.NewRetiming(g), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Via B: [19,21]; via C: [12,14].
	want := interval.MustNew(interval.Interval{L: 12, R: 14}, interval.Interval{L: 19, R: 21})
	if !elws[a].Equal(want) {
		t.Fatalf("ELW(A) = %v, want %v", elws[a], want)
	}
	// Coalescing to one interval over-approximates.
	elws1, err := Exact(g, graph.NewRetiming(g), p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if elws1[a].Count() != 1 {
		t.Fatalf("coalesced count = %d", elws1[a].Count())
	}
	if elws1[a].Measure() < elws[a].Measure() {
		t.Fatal("coalescing lost measure")
	}
	if !elws1[a].Intersect(elws[a]).Equal(elws[a]) {
		t.Fatal("coalesced set does not contain exact set")
	}
}

func TestLabelsCriticalEndpoints(t *testing.T) {
	g, a, bb, c := fanouts()
	p := DefaultParams(10)
	lab, err := ComputeLabels(g, graph.NewRetiming(g), p)
	if err != nil {
		t.Fatal(err)
	}
	if lab.LT[a] != c { // L via the longer path through C
		t.Fatalf("lt(A) = %s", g.Name(lab.LT[a]))
	}
	if lab.RT[a] != bb { // R via the shorter path through B
		t.Fatalf("rt(A) = %s", g.Name(lab.RT[a]))
	}
}

func TestRegisteredFanoutPins(t *testing.T) {
	// A with a registered fanout gets the base window, plus combinational
	// extension through B.
	b := graph.NewBuilder()
	a := b.AddVertex("A", 1)
	bb := b.AddVertex("B", 3)
	c := b.AddVertex("C", 1)
	b.AddEdge(graph.Host, a, 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(a, c, 1) // registered fanout
	b.AddEdge(bb, graph.Host, 0)
	b.AddEdge(c, graph.Host, 0)
	g := b.Build()
	p := DefaultParams(10)
	elws, err := Exact(g, graph.NewRetiming(g), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Base [10,12] ∪ via B [7,9].
	want := interval.MustNew(interval.Interval{L: 7, R: 9}, interval.Interval{L: 10, R: 12})
	if !elws[a].Equal(want) {
		t.Fatalf("ELW(A) = %v", elws[a])
	}
	lab, err := ComputeLabels(g, graph.NewRetiming(g), p)
	if err != nil {
		t.Fatal(err)
	}
	if lab.L[a] != 7 || lab.R[a] != 12 {
		t.Fatalf("L/R(A) = %g/%g", lab.L[a], lab.R[a])
	}
	if lab.LT[a] != bb || lab.RT[a] != a {
		t.Fatal("critical endpoints wrong")
	}
}

func TestP1Violation(t *testing.T) {
	// Path delay 9 > Φ−Ts = 8 at A.
	b := graph.NewBuilder()
	a := b.AddVertex("A", 4)
	bb := b.AddVertex("B", 5)
	b.AddEdge(graph.Host, a, 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(bb, graph.Host, 0)
	g := b.Build()
	p := DefaultParams(8)
	lab, err := ComputeLabels(g, graph.NewRetiming(g), p)
	if err != nil {
		t.Fatal(err)
	}
	// L(A) = 8 - 5 = 3 < d(A) = 4.
	v, ok := lab.CheckP1(g)
	if ok || v != a {
		t.Fatalf("P1 check: v=%d ok=%v", v, ok)
	}
}

func TestP2ViolationAndHoldSlack(t *testing.T) {
	// Registered edge into B with a very short path to the next register.
	b := graph.NewBuilder()
	a := b.AddVertex("A", 2)
	bb := b.AddVertex("B", 1)
	b.AddEdge(graph.Host, a, 0)
	b.AddEdge(a, bb, 1)
	b.AddEdge(bb, graph.Host, 1)
	g := b.Build()
	p := DefaultParams(10)
	r := graph.NewRetiming(g)
	lab, err := ComputeLabels(g, r, p)
	if err != nil {
		t.Fatal(err)
	}
	// R(B) = 12 (registered fanout to host), so the register on A->B
	// launches a path of length d(B) + Φ+Th − R(B) = 1.
	slack, found := lab.MinHoldSlack(g, r, p)
	if !found || slack != 1 {
		t.Fatalf("hold slack = %g found=%v", slack, found)
	}
	if _, ok := lab.CheckP2(g, r, p, 1); !ok {
		t.Fatal("P2 with rmin=1 must hold")
	}
	eid, ok := lab.CheckP2(g, r, p, 2.0)
	if ok {
		t.Fatal("P2 with rmin=2 must fail")
	}
	if g.Edge(eid).To != bb {
		t.Fatalf("violating edge = %v", g.Edge(eid))
	}
}

func TestParamValidation(t *testing.T) {
	g, _, _ := chain()
	if _, err := Exact(g, graph.NewRetiming(g), Params{Phi: -1}, 0); err == nil {
		t.Fatal("negative phi accepted")
	}
	if _, err := ComputeLabels(g, graph.NewRetiming(g), Params{Phi: 1, Ts: -1}); err == nil {
		t.Fatal("negative Ts accepted")
	}
}

func TestRegisterWindows(t *testing.T) {
	g, a, bb := chain()
	_ = a
	p := DefaultParams(10)
	r := graph.NewRetiming(g)
	elws, _ := Exact(g, r, p, 0)
	rw := RegisterWindows(g, r, p, elws)
	// Edge 0 = host->A with w=1: register feeds A (d=2), ELW(A)−d(A) = [5,7].
	if !rw[0].Equal(interval.Single(5, 7)) {
		t.Fatalf("register window = %v", rw[0])
	}
	// Unregistered edges have empty windows.
	if !rw[1].Empty() {
		t.Fatal("unregistered edge got a window")
	}
	if !DeepWindow(p).Equal(interval.Single(10, 12)) {
		t.Fatal("deep window wrong")
	}
	_ = bb
}

// randomGraph builds a random layered synchronous graph: forward edges may
// be combinational, feedback edges always carry registers.
func randomGraph(r *rand.Rand, n int) *graph.Graph {
	b := graph.NewBuilder()
	vs := make([]graph.VertexID, n)
	for i := 0; i < n; i++ {
		vs[i] = b.AddVertex("v", 1+float64(r.Intn(5)))
	}
	b.AddEdge(graph.Host, vs[0], int32(r.Intn(2)))
	for i := 1; i < n; i++ {
		// At least one in-edge from an earlier vertex.
		j := r.Intn(i)
		b.AddEdge(vs[j], vs[i], int32(r.Intn(2)))
		if r.Intn(2) == 0 {
			k := r.Intn(i)
			b.AddEdge(vs[k], vs[i], int32(r.Intn(3)))
		}
		if r.Intn(4) == 0 {
			b.AddEdge(vs[i], vs[r.Intn(i+1)], 1+int32(r.Intn(2))) // feedback
		}
	}
	b.AddEdge(vs[n-1], graph.Host, 0)
	b.AddEdge(vs[r.Intn(n)], graph.Host, int32(r.Intn(2)))
	return b.Build()
}

func TestPropertyTheorem1(t *testing.T) {
	// L(v) and R(v) are the extreme boundaries of the exact ELW, and the
	// window measure is bounded by R − L.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 3+r.Intn(20))
		if g.Check() != nil {
			return true // rare degenerate structure: skip
		}
		p := DefaultParams(50 + float64(r.Intn(50)))
		rt := graph.NewRetiming(g)
		elws, err := Exact(g, rt, p, 0)
		if err != nil {
			return false
		}
		lab, err := ComputeLabels(g, rt, p)
		if err != nil {
			return false
		}
		const eps = 1e-9
		for v := 1; v < g.NumVertices(); v++ {
			if elws[v].Empty() {
				if lab.HasWindow[v] {
					return false
				}
				continue
			}
			if !lab.HasWindow[v] {
				return false
			}
			if math.Abs(elws[v].Min()-lab.L[v]) > eps {
				return false
			}
			if math.Abs(elws[v].Max()-lab.R[v]) > eps {
				return false
			}
			if elws[v].Measure() > lab.R[v]-lab.L[v]+eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRetimingShiftsWindows(t *testing.T) {
	// Any legal retiming keeps all windows inside [−TotalDelay, Φ+Th].
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 3+r.Intn(15))
		if g.Check() != nil {
			return true
		}
		p := DefaultParams(100)
		rt := graph.NewRetiming(g)
		// Random legal forward moves.
		for tries := 0; tries < 5; tries++ {
			v := graph.VertexID(1 + r.Intn(g.NumGates()))
			rt[v]--
			if g.CheckLegal(rt) != nil {
				rt[v]++
			}
		}
		elws, err := Exact(g, rt, p, 0)
		if err != nil {
			return true // retiming may create zero-weight cycles; skip
		}
		for v := 1; v < g.NumVertices(); v++ {
			if elws[v].Empty() {
				continue
			}
			if elws[v].Max() > p.Phi+p.Th+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
