// Package elw computes error-latching windows (ELWs) for timing-masking
// analysis of soft errors (Section II-C of the paper).
//
// The ELW of a gate is the set of time points at which a transient glitch
// at the gate's output, if it propagates to a register input, arrives
// inside the register's latching window [Φ−Ts, Φ+Th]. Per eq. (3) it is
// computed by a backward traversal from register inputs and primary
// outputs, shifting each fanout's window left by the fanout's delay and
// taking the union. The package provides both the exact interval-union
// windows and the L/R boundary labels of eq. (6) that the retiming
// formulation constrains (Theorem 1: L and R bound the exact window).
package elw

import (
	"fmt"
	"math"

	"serretime/internal/graph"
	"serretime/internal/interval"
	"serretime/internal/telemetry"
)

// Params are the timing parameters of the analysis.
type Params struct {
	// Phi is the clock period Φ.
	Phi float64
	// Ts and Th are the register setup and hold times. The paper follows
	// [23] with Ts = 0, Th = 2.
	Ts, Th float64
}

// DefaultParams returns Ts=0, Th=2 with the given clock period.
func DefaultParams(phi float64) Params { return Params{Phi: phi, Ts: 0, Th: 2} }

func (p Params) validate() error {
	if p.Phi <= 0 || math.IsNaN(p.Phi) {
		return fmt.Errorf("elw: clock period %g", p.Phi)
	}
	if p.Ts < 0 || p.Th < 0 {
		return fmt.Errorf("elw: negative setup/hold (%g, %g)", p.Ts, p.Th)
	}
	return nil
}

// LatchWindow returns the base latching window [Φ−Ts, Φ+Th].
func (p Params) LatchWindow() interval.Set {
	return interval.Single(p.Phi-p.Ts, p.Phi+p.Th)
}

// Exact computes the exact interval-union ELW at the output of every
// vertex of g under retiming r, per eq. (3). Index 0 (the host) is the
// empty set. maxIntervals caps the interval count per set (0 = unlimited);
// when exceeded, the smallest gaps are coalesced, which soundly
// over-approximates the window.
func Exact(g *graph.Graph, r graph.Retiming, p Params, maxIntervals int) ([]interval.Set, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	order, err := g.ZeroWeightTopo(r)
	if err != nil {
		return nil, err
	}
	base := p.LatchWindow()
	out := make([]interval.Set, g.NumVertices())
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		var s interval.Set
		for _, eid := range g.Out(u) {
			to := g.EdgeTo(eid)
			if to == graph.Host || g.WR(eid, r) > 0 {
				// Latched by a register on this edge (or sampled by the
				// environment at a primary output).
				s.UnionInPlace(base)
				continue
			}
			s.UnionInPlace(out[to].Shift(-g.Delay(to)))
		}
		if maxIntervals > 0 && s.Count() > maxIntervals {
			s = coalesce(s, maxIntervals)
		}
		out[u] = s
	}
	return out, nil
}

// coalesce merges the smallest gaps of s until at most max intervals
// remain. The result contains s (sound over-approximation).
func coalesce(s interval.Set, max int) interval.Set {
	ivs := s.Intervals()
	for len(ivs) > max {
		// Find the smallest gap.
		best := 1
		bestGap := ivs[1].L - ivs[0].R
		for i := 2; i < len(ivs); i++ {
			if gap := ivs[i].L - ivs[i-1].R; gap < bestGap {
				bestGap = gap
				best = i
			}
		}
		ivs[best-1].R = ivs[best].R
		ivs = append(ivs[:best], ivs[best+1:]...)
	}
	return interval.MustNew(ivs...)
}

// RegisterWindows returns, for every edge with w_r > 0, the ELWs of the
// registers on it: the register adjacent to the consuming gate v sees
// ELW(v) − d(v) (its upset must still traverse v), while the remaining
// registers of the chain feed another register directly and see the full
// latching window. The slice is indexed by edge and holds the
// consumer-adjacent window; DeepWindow returns the chain window.
func RegisterWindows(g *graph.Graph, r graph.Retiming, p Params, exact []interval.Set) []interval.Set {
	out := make([]interval.Set, g.NumEdges())
	base := p.LatchWindow()
	for i := 0; i < g.NumEdges(); i++ {
		eid := graph.EdgeID(i)
		if g.WR(eid, r) <= 0 {
			continue
		}
		to := g.EdgeTo(eid)
		if to == graph.Host {
			out[i] = base
			continue
		}
		out[i] = exact[to].Shift(-g.Delay(to))
	}
	return out
}

// DeepWindow is the ELW of a register that feeds another register
// directly: the full latching window.
func DeepWindow(p Params) interval.Set { return p.LatchWindow() }

// Labels holds the L/R boundary labels of eq. (6) and the critical-path
// endpoint tracking needed by the MinObsWin active constraints.
type Labels struct {
	// L[v] and R[v] bound the exact ELW of v: L = leftmost boundary,
	// R = rightmost (Theorem 1). Vertices with no path to a register or
	// primary output have HasWindow[v] = false and meaningless L/R.
	L, R      []float64
	HasWindow []bool
	// LT[v] is the endpoint of the critical longest path from v: the
	// vertex whose registered fanout pins L along the binding chain.
	// RT[v] is the analogue for the critical shortest path and R.
	LT, RT []graph.VertexID
}

// ComputeLabels evaluates eq. (6) under retiming r.
func ComputeLabels(g *graph.Graph, r graph.Retiming, p Params) (*Labels, error) {
	return ComputeLabelsRec(g, r, p, nil)
}

// ComputeLabelsRec is ComputeLabels under telemetry: the computation is
// recorded as one elw-recompute span and counted, making the dominant
// cost of the P1'/P2' checks visible in traces. A nil recorder records
// nothing.
func ComputeLabelsRec(g *graph.Graph, r graph.Retiming, p Params, rec telemetry.Recorder) (*Labels, error) {
	rec = telemetry.OrNop(rec)
	rec.SpanStart(telemetry.PhaseELWRecompute)
	rec.Count(telemetry.CounterELWRecomputes, 1)
	lab, err := computeLabels(g, r, p)
	rec.SpanEnd(telemetry.PhaseELWRecompute, err)
	return lab, err
}

func computeLabels(g *graph.Graph, r graph.Retiming, p Params) (*Labels, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	order, err := g.ZeroWeightTopo(r)
	if err != nil {
		return nil, err
	}
	lab := NewLabels(g.NumVertices())
	wr := g.EdgeWeights(r)
	for i := len(order) - 1; i >= 0; i-- {
		lab.RelabelVertex(g, p, wr, order[i])
	}
	return lab, nil
}

// NewLabels returns empty labels for n vertices: no window, L = +Inf,
// R = -Inf, endpoints at the host. RelabelVertex fills one vertex.
func NewLabels(n int) *Labels {
	lab := &Labels{
		L:         make([]float64, n),
		R:         make([]float64, n),
		HasWindow: make([]bool, n),
		LT:        make([]graph.VertexID, n),
		RT:        make([]graph.VertexID, n),
	}
	for i := range lab.L {
		lab.L[i] = math.Inf(1)
		lab.R[i] = math.Inf(-1)
		lab.LT[i] = graph.Host
		lab.RT[i] = graph.Host
	}
	return lab
}

// RelabelVertex recomputes eq. (6) at u in place, reading the retimed
// weight of each out-edge from wr (indexed by EdgeID). Successors of u
// across zero-weight edges must already hold their final labels.
//
// This is the shared per-vertex kernel of the full recompute and the
// dirty-region patcher of internal/solverstate: both paths execute the
// same float operations in the same order, so incrementally patched
// labels are bit-identical to a recompute, ties in LT/RT included.
func (lab *Labels) RelabelVertex(g *graph.Graph, p Params, wr []int32, u graph.VertexID) {
	lab.L[u] = math.Inf(1)
	lab.R[u] = math.Inf(-1)
	lab.LT[u] = graph.Host
	lab.RT[u] = graph.Host
	lab.HasWindow[u] = false
	for _, eid := range g.Out(u) {
		to := g.EdgeTo(eid)
		if to == graph.Host || wr[eid] > 0 {
			if l := p.Phi - p.Ts; l < lab.L[u] {
				lab.L[u] = l
				lab.LT[u] = u
			}
			if rr := p.Phi + p.Th; rr > lab.R[u] {
				lab.R[u] = rr
				lab.RT[u] = u
			}
			lab.HasWindow[u] = true
			continue
		}
		v := to
		if !lab.HasWindow[v] {
			continue
		}
		if l := lab.L[v] - g.Delay(v); l < lab.L[u] {
			lab.L[u] = l
			lab.LT[u] = lab.LT[v]
		}
		if rr := lab.R[v] - g.Delay(v); rr > lab.R[u] {
			lab.R[u] = rr
			lab.RT[u] = lab.RT[v]
		}
		lab.HasWindow[u] = true
	}
}

// Clone deep-copies the labels.
func (lab *Labels) Clone() *Labels {
	return &Labels{
		L:         append([]float64(nil), lab.L...),
		R:         append([]float64(nil), lab.R...),
		HasWindow: append([]bool(nil), lab.HasWindow...),
		LT:        append([]graph.VertexID(nil), lab.LT...),
		RT:        append([]graph.VertexID(nil), lab.RT...),
	}
}

// FirstDiff returns the first vertex at which lab and other disagree on
// any field (exact float comparison; +Inf/-Inf compare equal to
// themselves), or (Host, false) when they are identical. It is the
// primitive behind the incremental-vs-oracle cross-check.
func (lab *Labels) FirstDiff(other *Labels) (graph.VertexID, bool) {
	if len(lab.L) != len(other.L) {
		return graph.Host, true
	}
	for v := range lab.L {
		if lab.HasWindow[v] != other.HasWindow[v] {
			return graph.VertexID(v), true
		}
		if lab.L[v] != other.L[v] || lab.R[v] != other.R[v] {
			return graph.VertexID(v), true
		}
		if lab.LT[v] != other.LT[v] || lab.RT[v] != other.RT[v] {
			return graph.VertexID(v), true
		}
	}
	return graph.Host, false
}

// CheckP1 verifies constraint P1: L(v) >= d(v) for every gate with a
// window (every register-launched longest path fits in Φ−Ts). It returns
// the first violating vertex, or (Host, true) if none.
func (lab *Labels) CheckP1(g *graph.Graph) (graph.VertexID, bool) {
	const eps = 1e-9
	for v := 1; v < g.NumVertices(); v++ {
		if lab.HasWindow[v] && lab.L[v] < g.Delay(graph.VertexID(v))-eps {
			return graph.VertexID(v), false
		}
	}
	return graph.Host, true
}

// HoldSlack returns the length of the shortest path launched by the last
// register on edge (u,v): through gate v (delay d(v)) and on to the
// nearest latch point, i.e. d(v) + Φ + Th − R(v). The quantity is
// independent of Φ (R is pinned at Φ+Th minus the downstream path).
func (lab *Labels) HoldSlack(g *graph.Graph, p Params, eid graph.EdgeID) float64 {
	v := g.EdgeTo(eid)
	return g.Delay(v) + p.Phi + p.Th - lab.R[v]
}

// CheckP2 verifies constraint P2': for every edge (u,v) with w_r > 0 and
// v != host, the register-launched shortest path d(v)+Φ+Th−R(v) is at
// least rmin. It returns the first violating edge, or (-1, true).
func (lab *Labels) CheckP2(g *graph.Graph, r graph.Retiming, p Params, rmin float64) (graph.EdgeID, bool) {
	const eps = 1e-9
	for i := 0; i < g.NumEdges(); i++ {
		eid := graph.EdgeID(i)
		to := g.EdgeTo(eid)
		if to == graph.Host || g.WR(eid, r) <= 0 {
			continue
		}
		if !lab.HasWindow[to] {
			continue
		}
		if lab.HoldSlack(g, p, eid) < rmin-eps {
			return eid, false
		}
	}
	return -1, true
}

// MinHoldSlack returns the minimum register-launched shortest-path length
// over registered edges (the quantity Section V uses to pick Rmin), and
// whether any registered edge exists.
func (lab *Labels) MinHoldSlack(g *graph.Graph, r graph.Retiming, p Params) (float64, bool) {
	mn := math.Inf(1)
	found := false
	for i := 0; i < g.NumEdges(); i++ {
		eid := graph.EdgeID(i)
		to := g.EdgeTo(eid)
		if to == graph.Host || g.WR(eid, r) <= 0 || !lab.HasWindow[to] {
			continue
		}
		if s := lab.HoldSlack(g, p, eid); s < mn {
			mn = s
			found = true
		}
	}
	return mn, found
}
