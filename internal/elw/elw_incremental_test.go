package elw

import (
	"math"
	"math/rand"
	"testing"

	"serretime/internal/graph"
)

// randomLabeled builds a random synchronous graph and its labels at a
// random legal-ish retiming state (zero retiming: FromCircuit-style
// weights are already non-negative).
func randomLabeled(t *testing.T, rng *rand.Rand) (*graph.Graph, graph.Retiming, Params, *Labels) {
	t.Helper()
	n := 4 + rng.Intn(20)
	b := graph.NewBuilder()
	vs := make([]graph.VertexID, n)
	for i := range vs {
		vs[i] = b.AddVertex("v", 1+float64(rng.Intn(4)))
	}
	b.AddEdge(graph.Host, vs[0], int32(rng.Intn(2)))
	for i := 1; i < n; i++ {
		b.AddEdge(vs[rng.Intn(i)], vs[i], int32(rng.Intn(3)))
		if rng.Intn(3) == 0 {
			b.AddEdge(vs[i], vs[rng.Intn(i+1)], 1+int32(rng.Intn(2)))
		}
	}
	b.AddEdge(vs[n-1], graph.Host, 0)
	g := b.Build()
	r := graph.NewRetiming(g)
	_, crit, err := g.ArrivalTimes(r)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Phi: crit * (1 + rng.Float64()), Ts: 0, Th: 2}
	lab, err := ComputeLabels(g, r, p)
	if err != nil {
		t.Fatal(err)
	}
	return g, r, p, lab
}

// TestRelabelVertexIdempotent re-runs the kernel on every vertex of an
// already-correct label vector: since successors hold final labels, each
// relabel must reproduce the vertex bit-exactly. This is the property the
// dirty-region patcher builds on (vertices outside the region keep the
// labels RelabelVertex would assign them).
func TestRelabelVertexIdempotent(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, r, p, lab := randomLabeled(t, rng)
		got := lab.Clone()
		wr := g.EdgeWeights(r)
		for v := 1; v < g.NumVertices(); v++ {
			got.RelabelVertex(g, p, wr, graph.VertexID(v))
		}
		if v, diff := got.FirstDiff(lab); diff {
			t.Fatalf("seed %d: relabel not idempotent at v%d", seed, v)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, _, _, lab := randomLabeled(t, rng)
	cl := lab.Clone()
	v := g.NumVertices() - 1
	cl.L[v] = -12345
	cl.HasWindow[v] = !cl.HasWindow[v]
	cl.LT[v] = graph.VertexID(v)
	if lab.L[v] == -12345 {
		t.Fatal("Clone shares L storage")
	}
	if _, diff := lab.FirstDiff(cl); !diff {
		t.Fatal("FirstDiff missed the divergence")
	}
}

func TestFirstDiffPerField(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	_, _, _, lab := randomLabeled(t, rng)
	if v, diff := lab.FirstDiff(lab.Clone()); diff {
		t.Fatalf("identical labels diff at v%d", v)
	}
	// Each field independently trips the comparison at the right vertex.
	target := graph.VertexID(len(lab.L) - 1)
	for name, mutate := range map[string]func(*Labels){
		"L":         func(l *Labels) { l.L[target] = -9999.5 },
		"R":         func(l *Labels) { l.R[target] = 9999.5 },
		"HasWindow": func(l *Labels) { l.HasWindow[target] = !l.HasWindow[target] },
		"LT":        func(l *Labels) { l.LT[target] = graph.VertexID(1 << 20) },
		"RT":        func(l *Labels) { l.RT[target] = graph.VertexID(1 << 20) },
	} {
		cl := lab.Clone()
		mutate(cl)
		if v, diff := lab.FirstDiff(cl); !diff || v != target {
			t.Errorf("%s mutation: diff=%v at v%d, want v%d", name, diff, v, target)
		}
	}
	short := NewLabels(1)
	if _, diff := lab.FirstDiff(short); !diff {
		t.Error("length mismatch not detected")
	}
}

func TestNewLabelsEmpty(t *testing.T) {
	lab := NewLabels(3)
	for v := 0; v < 3; v++ {
		if lab.HasWindow[v] || !math.IsInf(lab.L[v], 1) || !math.IsInf(lab.R[v], -1) {
			t.Fatalf("v%d not empty: %v %g %g", v, lab.HasWindow[v], lab.L[v], lab.R[v])
		}
		if lab.LT[v] != graph.Host || lab.RT[v] != graph.Host {
			t.Fatalf("v%d endpoints not host", v)
		}
	}
}
