package elw

import (
	"math/rand"
	"testing"

	"serretime/internal/graph"
)

func benchGraph(b *testing.B) *graph.Graph {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 500)
	if err := g.Check(); err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkExact500(b *testing.B) {
	g := benchGraph(b)
	p := DefaultParams(100)
	r := graph.NewRetiming(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exact(g, r, p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLabels500(b *testing.B) {
	g := benchGraph(b)
	p := DefaultParams(100)
	r := graph.NewRetiming(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeLabels(g, r, p); err != nil {
			b.Fatal(err)
		}
	}
}
