package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// writeWorkload is a tiny storage-like workload: an atomic write of a
// payload plus a journal append. It returns the number of mutating fs
// operations it performs when nothing is injected.
func writeWorkload(fsys FS, dir string) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := WriteAtomic(fsys, filepath.Join(dir, "payload"), 0o644, true, func(w io.Writer) error {
		_, err := w.Write([]byte("payload-bytes"))
		return err
	}); err != nil {
		return err
	}
	f, err := fsys.OpenFile(filepath.Join(dir, "journal"), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("record\n")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestWriteAtomicNeverTearsTarget(t *testing.T) {
	base := t.TempDir()

	// Learn the schedule length with no faults armed.
	probe := NewFault(OS())
	if err := writeWorkload(probe, filepath.Join(base, "probe")); err != nil {
		t.Fatal(err)
	}
	n := probe.Ops()
	if n < 5 {
		t.Fatalf("workload performed only %d mutating ops", n)
	}

	// Crash at every instant; the payload file must always be absent or
	// complete — never a prefix.
	for k := 1; k <= n; k++ {
		dir := filepath.Join(base, fmt.Sprintf("crash%d", k))
		fault := NewFault(OS())
		fault.TornWrites(true)
		fault.CrashAt(k)
		crashed := func() (crashed bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := AsCrash(r); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			if err := writeWorkload(fault, dir); err != nil {
				t.Fatalf("k=%d: unexpected error (crashes are panics): %v", k, err)
			}
			return false
		}()
		if !crashed {
			t.Fatalf("k=%d: crash did not fire", k)
		}
		if !fault.Dead() {
			t.Fatalf("k=%d: filesystem not dead after crash", k)
		}
		if data, err := os.ReadFile(filepath.Join(dir, "payload")); err == nil {
			if string(data) != "payload-bytes" {
				t.Fatalf("k=%d: torn payload %q survived the crash", k, data)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestFaultDeadAfterCrash(t *testing.T) {
	fault := NewFault(OS())
	fault.CrashAt(1)
	func() {
		defer func() { recover() }()
		_ = fault.MkdirAll(filepath.Join(t.TempDir(), "d"), 0o755)
	}()
	if err := fault.MkdirAll(filepath.Join(t.TempDir(), "e"), 0o755); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op: want ErrCrashed, got %v", err)
	}
	if _, err := fault.ReadFile("x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: want ErrCrashed, got %v", err)
	}
}

func TestFailOpInjectsErrors(t *testing.T) {
	dir := t.TempDir()
	fault := NewFault(OS())
	boom := errors.New("boom")
	fault.FailOp(OpWrite, "journal", boom, 1)

	f, err := fault.OpenFile(filepath.Join(dir, "journal"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, boom) {
		t.Fatalf("first write: want injected error, got %v", err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("second write (rule exhausted): %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Path filter: other files are untouched.
	fault.FailOp(OpOpen, "journal", boom, -1)
	if _, err := fault.OpenFile(filepath.Join(dir, "other"), os.O_WRONLY|os.O_CREATE, 0o644); err != nil {
		t.Fatalf("unmatched path failed: %v", err)
	}
	if _, err := fault.OpenFile(filepath.Join(dir, "journal"), os.O_WRONLY|os.O_CREATE, 0o644); !errors.Is(err, boom) {
		t.Fatalf("matched path: want injected error, got %v", err)
	}
}

func TestCrashpoint(t *testing.T) {
	fault := NewFault(OS())
	fault.Crashpoint("not-armed") // no-op
	fault.ArmCrashpoint("store.test.site")
	var got *Crash
	func() {
		defer func() {
			if r := recover(); r != nil {
				got, _ = AsCrash(r)
			}
		}()
		fault.Crashpoint("store.test.site")
	}()
	if got == nil || got.Point != "store.test.site" {
		t.Fatalf("crashpoint did not fire: %+v", got)
	}
	if !fault.Dead() {
		t.Fatal("filesystem alive after crashpoint")
	}
}

func TestWriteAtomicCleansTempOnError(t *testing.T) {
	dir := t.TempDir()
	fault := NewFault(OS())
	boom := errors.New("disk full")
	fault.FailOp(OpWrite, "target", boom, 1)
	err := WriteAtomic(fault, filepath.Join(dir, "target"), 0o644, false, func(w io.Writer) error {
		_, err := w.Write([]byte("data"))
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Fatalf("leftover file %q after failed atomic write", e.Name())
	}
}

func TestIsTemp(t *testing.T) {
	for name, want := range map[string]bool{
		".wal.log.tmp1":  true,
		".payload.tmp42": true,
		"wal.log":        false,
		"payload":        false,
		".hidden":        false,
	} {
		if IsTemp(name) != want {
			t.Errorf("IsTemp(%q) = %v, want %v", name, !want, want)
		}
	}
}
