// Package faultfs is an injectable filesystem layer for crash-safe
// storage code. Production code talks to the small FS interface; OS()
// passes straight through to the real filesystem, while Fault wraps any
// FS with fault injection for tests: operations can be made to return
// errors, writes can be torn short, and the whole filesystem can "crash"
// — panic with a recognizable value — either at a named crash point or
// after the Kth mutating operation, so a test can sweep every possible
// crash instant of a scripted workload and prove each one recoverable.
//
// A crash is modeled as a panic carrying *Crash: the storage code under
// test unwinds exactly as a SIGKILL would stop it mid-operation (no
// deferred cleanup can repair on-disk state, because the filesystem is
// dead afterwards — every later operation returns ErrCrashed). The test
// recovers the panic, reopens the directory with a fresh FS, and checks
// the recovery invariants.
package faultfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// File is the writable-file surface storage code needs: write, fsync,
// close. Reads go through FS.ReadFile.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface of the store. Every implementation must
// be safe for concurrent use.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	// OpenFile opens path with os.OpenFile semantics (flag is the usual
	// os.O_* mask).
	OpenFile(path string, flag int, perm fs.FileMode) (File, error)
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]fs.DirEntry, error)
	Stat(path string) (fs.FileInfo, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	// SyncDir fsyncs a directory, making renames within it durable.
	SyncDir(path string) error
	// Crashpoint marks a named crash site in storage code. The real
	// filesystem ignores it; a Fault with the name armed panics there.
	Crashpoint(name string)
}

// osFS is the passthrough implementation over the real filesystem.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

func (osFS) ReadFile(path string) ([]byte, error)       { return os.ReadFile(path) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }
func (osFS) Stat(path string) (fs.FileInfo, error)      { return os.Stat(path) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                   { return os.Remove(path) }
func (osFS) Crashpoint(string)                          {}

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

var tmpSeq atomic.Uint64

// WriteAtomic writes path all-or-nothing: fn streams the content into a
// hidden temp file in the same directory, which is then (optionally
// fsynced and) renamed over path. A crash at any instant leaves either
// the old content or the new content, never a torn file; on any error
// the temp file is removed and path is untouched. sync additionally
// fsyncs the file before the rename and the directory after it, making
// the replacement itself durable.
func WriteAtomic(fsys FS, path string, perm fs.FileMode, sync bool, fn func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp := filepath.Join(dir, fmt.Sprintf(".%s.tmp%d", filepath.Base(path), tmpSeq.Add(1)))
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, perm)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fn(f); err != nil {
		return fail(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	fsys.Crashpoint("faultfs.atomic.before-rename")
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if sync {
		return fsys.SyncDir(dir)
	}
	return nil
}

// IsTemp reports whether a file name is a WriteAtomic temp file, so
// recovery sweeps can delete orphans a crash left behind.
func IsTemp(name string) bool {
	return len(name) > 1 && name[0] == '.' && filepath.Ext(name) != "" &&
		len(filepath.Ext(name)) > 4 && filepath.Ext(name)[:4] == ".tmp"
}

// Op names a filesystem operation class for fault-injection rules.
type Op string

const (
	OpMkdir   Op = "mkdir"
	OpOpen    Op = "open"
	OpWrite   Op = "write"
	OpSync    Op = "sync"
	OpClose   Op = "close"
	OpRead    Op = "read"
	OpReadDir Op = "readdir"
	OpStat    Op = "stat"
	OpRename  Op = "rename"
	OpRemove  Op = "remove"
	OpSyncDir Op = "syncdir"
)

// mutating reports whether an operation can change on-disk state — only
// these count toward the crash-after-K schedule, because a crash between
// two reads is indistinguishable from a crash before the first.
func (o Op) mutating() bool {
	switch o {
	case OpMkdir, OpOpen, OpWrite, OpSync, OpClose, OpRename, OpRemove, OpSyncDir:
		return true
	}
	return false
}

// Crash is the panic value of an injected filesystem crash.
type Crash struct {
	// Point is the named crash site, or "op" for a scheduled crash.
	Point string
	// Op and Path locate the operation that was executing.
	Op   Op
	Path string
	// Seq is the index of the mutating operation that crashed.
	Seq int
}

func (c *Crash) String() string {
	return fmt.Sprintf("faultfs: injected crash at %s (op %d: %s %s)", c.Point, c.Seq, c.Op, c.Path)
}

// AsCrash extracts a *Crash from a recovered panic value, so tests can
// tell an injected crash from a genuine bug.
func AsCrash(r any) (*Crash, bool) {
	c, ok := r.(*Crash)
	return c, ok
}

// ErrCrashed is returned by every operation on a Fault filesystem after
// an injected crash: the "process" is dead; nothing can be repaired.
var ErrCrashed = fmt.Errorf("faultfs: filesystem crashed")

// rule is one armed failure: the next Times matching operations return
// Err (Times < 0 = forever).
type rule struct {
	op    Op
	path  string // substring match, "" = any
	err   error
	times int
}

// Fault wraps an FS with fault injection. The zero value is not usable;
// construct with NewFault. All methods are safe for concurrent use.
type Fault struct {
	inner FS

	mu          sync.Mutex
	ops         int // mutating operations performed so far
	crashAt     int // crash when the crashAt'th mutating op starts; 0 = off
	tornWrites  bool
	dead        bool
	rules       []rule
	crashpoints map[string]bool
}

// NewFault wraps inner with fault injection. No faults are armed yet.
func NewFault(inner FS) *Fault {
	return &Fault{inner: inner, crashpoints: make(map[string]bool)}
}

// FailOp arms an error: the next times operations of class op whose path
// contains pathSubstr return err instead of running. times < 0 keeps the
// rule armed forever.
func (f *Fault) FailOp(op Op, pathSubstr string, err error, times int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, rule{op: op, path: pathSubstr, err: err, times: times})
}

// CrashAt schedules a crash: the k'th mutating operation from now (1 =
// the very next one) panics with *Crash instead of completing. When torn
// writes are enabled and the k'th operation is a write, half the buffer
// reaches the file first. k <= 0 cancels the schedule.
func (f *Fault) CrashAt(k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if k <= 0 {
		f.crashAt = 0
		return
	}
	f.crashAt = f.ops + k
}

// TornWrites makes scheduled crashes that land on a write persist a
// prefix of the buffer first — the torn-write shape a real power cut
// produces.
func (f *Fault) TornWrites(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tornWrites = on
}

// ArmCrashpoint makes the named Crashpoint site panic with *Crash when
// next visited.
func (f *Fault) ArmCrashpoint(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashpoints[name] = true
}

// Ops returns the number of mutating operations performed so far —
// sweep tests run a workload once to learn the schedule length, then
// re-run it crashing at every k in [1, Ops()].
func (f *Fault) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Dead reports whether an injected crash has fired.
func (f *Fault) Dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

// begin gates one operation: it returns ErrCrashed on a dead filesystem,
// a matching armed error, or — for mutating ops that hit the crash
// schedule — a non-nil *Crash the caller must act on (tearing a write
// first if asked to).
func (f *Fault) begin(op Op, path string) (crash *Crash, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return nil, ErrCrashed
	}
	for i := range f.rules {
		r := &f.rules[i]
		if r.times == 0 || r.op != op {
			continue
		}
		if r.path != "" && !contains(path, r.path) {
			continue
		}
		if r.times > 0 {
			r.times--
		}
		return nil, r.err
	}
	if !op.mutating() {
		return nil, nil
	}
	f.ops++
	if f.crashAt > 0 && f.ops >= f.crashAt {
		f.dead = true
		return &Crash{Point: "op", Op: op, Path: path, Seq: f.ops}, nil
	}
	return nil, nil
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func (f *Fault) MkdirAll(path string, perm fs.FileMode) error {
	crash, err := f.begin(OpMkdir, path)
	if err != nil {
		return err
	}
	if crash != nil {
		panic(crash)
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Fault) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	crash, err := f.begin(OpOpen, path)
	if err != nil {
		return nil, err
	}
	if crash != nil {
		panic(crash)
	}
	inner, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fault: f, inner: inner, path: path}, nil
}

func (f *Fault) ReadFile(path string) ([]byte, error) {
	if _, err := f.begin(OpRead, path); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

func (f *Fault) ReadDir(path string) ([]fs.DirEntry, error) {
	if _, err := f.begin(OpReadDir, path); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(path)
}

func (f *Fault) Stat(path string) (fs.FileInfo, error) {
	if _, err := f.begin(OpStat, path); err != nil {
		return nil, err
	}
	return f.inner.Stat(path)
}

func (f *Fault) Rename(oldpath, newpath string) error {
	crash, err := f.begin(OpRename, oldpath)
	if err != nil {
		return err
	}
	if crash != nil {
		panic(crash)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Fault) Remove(path string) error {
	crash, err := f.begin(OpRemove, path)
	if err != nil {
		return err
	}
	if crash != nil {
		panic(crash)
	}
	return f.inner.Remove(path)
}

func (f *Fault) SyncDir(path string) error {
	crash, err := f.begin(OpSyncDir, path)
	if err != nil {
		return err
	}
	if crash != nil {
		panic(crash)
	}
	return f.inner.SyncDir(path)
}

func (f *Fault) Crashpoint(name string) {
	f.mu.Lock()
	armed := f.crashpoints[name]
	if armed {
		delete(f.crashpoints, name)
		f.dead = true
	}
	seq := f.ops
	f.mu.Unlock()
	if armed {
		panic(&Crash{Point: name, Seq: seq})
	}
	f.inner.Crashpoint(name)
}

// faultFile threads writes/sync/close of an open file back through the
// Fault's gate, so crashes and errors can strike mid-file.
type faultFile struct {
	fault *Fault
	inner File
	path  string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	crash, err := ff.fault.begin(OpWrite, ff.path)
	if err != nil {
		return 0, err
	}
	if crash != nil {
		ff.fault.mu.Lock()
		torn := ff.fault.tornWrites
		ff.fault.mu.Unlock()
		if torn && len(p) > 1 {
			// A power cut mid-write persists a prefix: write half,
			// then die. The recovery code must treat the tail as
			// garbage.
			_, _ = ff.inner.Write(p[:len(p)/2])
		}
		_ = ff.inner.Close()
		panic(crash)
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	crash, err := ff.fault.begin(OpSync, ff.path)
	if err != nil {
		return err
	}
	if crash != nil {
		_ = ff.inner.Close()
		panic(crash)
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	crash, err := ff.fault.begin(OpClose, ff.path)
	if err != nil {
		_ = ff.inner.Close() // the handle is still real; release it
		return err
	}
	if crash != nil {
		_ = ff.inner.Close()
		panic(crash)
	}
	return ff.inner.Close()
}
