// Package maxflow implements Dinic's maximum-flow algorithm, used by the
// retiming core to extract maximum-gain closed sets (the max-weight
// closure reduction) from the active-constraint digraph.
package maxflow

import "math"

// Inf is the capacity used for must-follow (closure) arcs.
const Inf int64 = math.MaxInt64 / 4

type edge struct {
	to   int32
	cap  int64
	rev  int32
}

// Graph is a flow network under construction.
type Graph struct {
	adj [][]edge
	// scratch
	level []int32
	iter  []int32
}

// New creates a network with n nodes (0..n-1).
func New(n int) *Graph {
	return &Graph{adj: make([][]edge, n)}
}

// AddEdge adds a directed edge with the given capacity.
func (g *Graph) AddEdge(from, to int32, cap int64) {
	g.adj[from] = append(g.adj[from], edge{to: to, cap: cap, rev: int32(len(g.adj[to]))})
	g.adj[to] = append(g.adj[to], edge{to: from, cap: 0, rev: int32(len(g.adj[from]) - 1)})
}

// MaxFlow computes the maximum s-t flow.
func (g *Graph) MaxFlow(s, t int32) int64 {
	var flow int64
	n := len(g.adj)
	g.level = make([]int32, n)
	g.iter = make([]int32, n)
	for g.bfs(s, t) {
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			f := g.dfs(s, t, Inf)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}

func (g *Graph) bfs(s, t int32) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	queue := []int32{s}
	g.level[s] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[v] {
			if e.cap > 0 && g.level[e.to] < 0 {
				g.level[e.to] = g.level[v] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return g.level[t] >= 0
}

func (g *Graph) dfs(v, t int32, f int64) int64 {
	if v == t {
		return f
	}
	for ; g.iter[v] < int32(len(g.adj[v])); g.iter[v]++ {
		e := &g.adj[v][g.iter[v]]
		if e.cap <= 0 || g.level[v] >= g.level[e.to] {
			continue
		}
		d := f
		if e.cap < d {
			d = e.cap
		}
		d = g.dfs(e.to, t, d)
		if d > 0 {
			e.cap -= d
			g.adj[e.to][e.rev].cap += d
			return d
		}
	}
	return 0
}

// MinCutSide returns the source side of a minimum cut after MaxFlow:
// the set of nodes reachable from s in the residual network.
func (g *Graph) MinCutSide(s int32) []bool {
	side := make([]bool, len(g.adj))
	stack := []int32{s}
	side[s] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if e.cap > 0 && !side[e.to] {
				side[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return side
}

// MaxClosure computes a maximum-weight closed set of a digraph: selecting
// a node forces selecting all of its must-follow successors. weights may
// be negative; frozen nodes can never be selected. It returns the selected
// mask and the total weight of the selection (0 with an empty selection
// when no positive-weight closure exists).
func MaxClosure(n int, weights []int64, frozen []bool, arcs [][2]int32) ([]bool, int64) {
	// Standard reduction: source s -> v with cap w(v) for positive
	// weights, v -> sink t with cap -w(v) for negative (Inf for frozen),
	// Inf arcs for the closure constraints. The source side of a min cut
	// is a maximum-weight closure.
	s, t := int32(n), int32(n+1)
	g := New(n + 2)
	var totalPos int64
	for v := 0; v < n; v++ {
		if frozen[v] {
			g.AddEdge(int32(v), t, Inf)
			continue
		}
		if weights[v] > 0 {
			g.AddEdge(s, int32(v), weights[v])
			totalPos += weights[v]
		} else if weights[v] < 0 {
			g.AddEdge(int32(v), t, -weights[v])
		}
	}
	for _, a := range arcs {
		g.AddEdge(a[0], a[1], Inf)
	}
	cut := g.MaxFlow(s, t)
	side := g.MinCutSide(s)
	sel := make([]bool, n)
	for v := 0; v < n; v++ {
		sel[v] = side[v]
	}
	return sel, totalPos - cut
}
