package maxflow

import (
	"math/rand"
	"testing"
)

func BenchmarkMaxClosure(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n = 1000
	weights := make([]int64, n)
	for i := range weights {
		weights[i] = int64(rng.Intn(201) - 100)
	}
	frozen := make([]bool, n)
	var arcs [][2]int32
	for k := 0; k < 3*n; k++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			arcs = append(arcs, [2]int32{u, v})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxClosure(n, weights, frozen, arcs)
	}
}
