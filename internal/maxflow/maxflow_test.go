package maxflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimpleFlow(t *testing.T) {
	// s=0, t=3: two disjoint paths of caps 3 and 2.
	g := New(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 3, 3)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 2)
	if f := g.MaxFlow(0, 3); f != 5 {
		t.Fatalf("flow = %d, want 5", f)
	}
}

func TestBottleneck(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 4)
	if f := g.MaxFlow(0, 2); f != 4 {
		t.Fatalf("flow = %d", f)
	}
	side := g.MinCutSide(0)
	if !side[0] || !side[1] || side[2] {
		t.Fatalf("cut side = %v", side)
	}
}

func TestAugmentingThroughResidual(t *testing.T) {
	// The classic diamond where the naive greedy path must be undone.
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	if f := g.MaxFlow(0, 3); f != 2 {
		t.Fatalf("flow = %d, want 2", f)
	}
}

func TestMaxClosureSimple(t *testing.T) {
	// 0 (+5) forces 1 (−3): worth it. 2 (+1) forces 3 (−9): not.
	sel, total := MaxClosure(4, []int64{5, -3, 1, -9}, make([]bool, 4),
		[][2]int32{{0, 1}, {2, 3}})
	if total != 2 {
		t.Fatalf("total = %d", total)
	}
	if !sel[0] || !sel[1] || sel[2] || sel[3] {
		t.Fatalf("sel = %v", sel)
	}
}

func TestMaxClosureFrozen(t *testing.T) {
	frozen := make([]bool, 2)
	frozen[1] = true
	sel, total := MaxClosure(2, []int64{5, 0}, frozen, [][2]int32{{0, 1}})
	if total != 0 || sel[0] || sel[1] {
		t.Fatalf("sel=%v total=%d", sel, total)
	}
}

func TestMaxClosureChain(t *testing.T) {
	// 0(+10) -> 1(-2) -> 2(-3): closure {0,1,2} = +5.
	sel, total := MaxClosure(3, []int64{10, -2, -3}, make([]bool, 3),
		[][2]int32{{0, 1}, {1, 2}})
	if total != 5 || !sel[0] || !sel[1] || !sel[2] {
		t.Fatalf("sel=%v total=%d", sel, total)
	}
}

func TestMaxClosureEmpty(t *testing.T) {
	sel, total := MaxClosure(2, []int64{-1, -2}, make([]bool, 2), nil)
	if total != 0 || sel[0] || sel[1] {
		t.Fatalf("sel=%v total=%d", sel, total)
	}
}

// bruteClosure enumerates all closed sets.
func bruteClosure(n int, weights []int64, frozen []bool, arcs [][2]int32) int64 {
	best := int64(0)
	for m := 0; m < 1<<n; m++ {
		ok := true
		for _, a := range arcs {
			if m&(1<<a[0]) != 0 && m&(1<<a[1]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var w int64
		for v := 0; v < n; v++ {
			if m&(1<<v) != 0 {
				if frozen[v] {
					ok = false
					break
				}
				w += weights[v]
			}
		}
		if ok && w > best {
			best = w
		}
	}
	return best
}

func TestPropertyClosureMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = int64(rng.Intn(21) - 10)
		}
		frozen := make([]bool, n)
		if rng.Intn(2) == 0 {
			frozen[rng.Intn(n)] = true
		}
		var arcs [][2]int32
		for k := 0; k < rng.Intn(2*n); k++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				arcs = append(arcs, [2]int32{u, v})
			}
		}
		want := bruteClosure(n, weights, frozen, arcs)
		sel, total := MaxClosure(n, weights, frozen, arcs)
		if total != want {
			return false
		}
		// Selection must be a closed set of the claimed weight.
		var w int64
		for v := 0; v < n; v++ {
			if sel[v] {
				if frozen[v] {
					return false
				}
				w += weights[v]
			}
		}
		for _, a := range arcs {
			if sel[a[0]] && !sel[a[1]] {
				return false
			}
		}
		return w == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
