package service

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"serretime"
)

// Warm-state ECO sessions (DESIGN.md §17). A session pins a parsed
// design plus its committed solver artifacts (WarmState: init memo,
// observability cache, last result) server-side, so a netlist delta
// re-solves incrementally instead of from scratch. Sessions are
// ephemeral by design: they live in memory only, never touch the job
// store, and do not survive a daemon restart — the session ID embeds a
// per-boot nonce so a client resuming after a crash gets 410 Gone
// instead of a silent cold re-solve under a stale identity.

// Session errors; writeError maps them to HTTP statuses.
var (
	// ErrSessionsFull: the table is at MaxSessions and every session is
	// mid-solve, so none can be evicted (HTTP 429).
	ErrSessionsFull = fmt.Errorf("service: session table full")
	// ErrSessionBusy: the addressed session is mid-solve (HTTP 409).
	ErrSessionBusy = fmt.Errorf("service: session busy")
	// ErrSolversBusy: every solve slot is taken (HTTP 429).
	ErrSolversBusy = fmt.Errorf("service: all solve slots busy")
)

// session is one warm ECO session. mu serializes solves and guards all
// mutable fields; it is held for the full duration of a delta solve, so
// the table lock (Server.sessMu) must never wait on it — eviction and
// sweeps use TryLock and skip busy sessions.
type session struct {
	id      string
	created time.Time

	mu       chan struct{} // 1-slot semaphore: TryLock without sync.Mutex caveats
	warm     *serretime.WarmState
	name     string
	lastUsed time.Time // guarded by Server.sessMu (LRU bookkeeping)

	deltas    int64
	warmHits  int64
	fallbacks int64
	lastStats serretime.DeltaStats
	lastMS    float64
	result    []byte // canonical .bench of the last committed solve
	resultSHA string
	tier      serretime.Tier
	degraded  bool
	deltaSER  float64
}

func (ss *session) tryLock() bool {
	select {
	case ss.mu <- struct{}{}:
		return true
	default:
		return false
	}
}

func (ss *session) unlock() { <-ss.mu }

// initSessions wires the session table into a new Server (called by New).
func (s *Server) initSessions() {
	var nonce [6]byte
	_, _ = rand.Read(nonce[:])
	s.sessNonce = hex.EncodeToString(nonce[:])
	s.sessions = make(map[string]*session)
	s.sessEvicted = make(map[string]int64)
	s.sessSolve = make(chan struct{}, s.cfg.Workers)
}

// acquireSolveSlot bounds concurrent session solves by the worker count,
// so a burst of deltas cannot oversubscribe the CPU the batch queue is
// budgeted for. Non-blocking: a full pool is backpressure (429), not a
// wait.
func (s *Server) acquireSolveSlot() bool {
	select {
	case s.sessSolve <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) releaseSolveSlot() { <-s.sessSolve }

// openSession registers a freshly solved warm state, evicting the
// least-recently-used idle session when the table is full. All-busy
// tables refuse the open instead of blocking.
func (s *Server) openSession(ss *session) (string, error) {
	now := time.Now()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	s.sweepSessionsLocked(now)
	for len(s.sessions) >= s.cfg.MaxSessions {
		if !s.evictOldestLocked("lru") {
			return "", ErrSessionsFull
		}
	}
	s.sessSeq++
	ss.id = fmt.Sprintf("%s.%d", s.sessNonce, s.sessSeq)
	ss.created = now
	ss.lastUsed = now
	s.sessions[ss.id] = ss
	s.sessOpened++
	return ss.id, nil
}

// lookupSession resolves a session ID, distinguishing "never existed"
// (404) from "existed but is gone" (410): a wrong boot nonce means the
// session did not survive a restart; a right nonce with an
// already-minted sequence number means it was closed, expired, or
// evicted.
func (s *Server) lookupSession(id string) (*session, int, string) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	now := time.Now()
	// Expire before resolving: a session idle past its TTL must answer
	// 410 on its next access, not get its lease renewed.
	s.sweepSessionsLocked(now)
	if ss, ok := s.sessions[id]; ok {
		ss.lastUsed = now
		return ss, http.StatusOK, ""
	}
	nonce, seqStr, ok := strings.Cut(id, ".")
	if !ok {
		return nil, http.StatusNotFound, "unknown session"
	}
	if nonce != s.sessNonce {
		return nil, http.StatusGone, "session did not survive a daemon restart (sessions are ephemeral; open a new one)"
	}
	if seq, err := strconv.ParseInt(seqStr, 10, 64); err == nil && seq >= 1 && seq <= s.sessSeq {
		return nil, http.StatusGone, "session closed, expired, or evicted"
	}
	return nil, http.StatusNotFound, "unknown session"
}

// sweepSessionsLocked evicts sessions idle past SessionTTL. Lazy: it
// runs on open and on the debug/metrics views, which is enough for a
// table this small. Callers hold s.sessMu.
func (s *Server) sweepSessionsLocked(now time.Time) {
	if s.cfg.SessionTTL <= 0 {
		return
	}
	for id, ss := range s.sessions {
		if now.Sub(ss.lastUsed) <= s.cfg.SessionTTL {
			continue
		}
		if !ss.tryLock() {
			continue // mid-solve: it is not idle, let it finish
		}
		ss.unlock()
		delete(s.sessions, id)
		s.sessEvicted["ttl"]++
	}
}

// evictOldestLocked drops the least-recently-used idle session. Callers
// hold s.sessMu. Returns false when every session is mid-solve.
func (s *Server) evictOldestLocked(reason string) bool {
	byAge := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		byAge = append(byAge, ss)
	}
	sort.Slice(byAge, func(i, j int) bool { return byAge[i].lastUsed.Before(byAge[j].lastUsed) })
	for _, victim := range byAge {
		if !victim.tryLock() {
			continue // mid-solve: try the next-oldest
		}
		victim.unlock()
		delete(s.sessions, victim.id)
		s.sessEvicted[reason]++
		return true
	}
	return false
}

// closeSession removes a session explicitly (DELETE).
func (s *Server) closeSession(id string) bool {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return false
	}
	delete(s.sessions, id)
	s.sessEvicted["closed"]++
	return true
}

// SessionView is a session snapshot for JSON responses and /debug/jobs.
type SessionView struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Age     string `json:"age"`
	IdleFor string `json:"idle_for"`
	Busy    bool   `json:"busy,omitempty"`
	// Deltas counts applied deltas; Warm/Fallbacks split them by path.
	Deltas    int64 `json:"deltas"`
	Warm      int64 `json:"warm"`
	Fallbacks int64 `json:"fallbacks"`
	// Last solve summary (the open solve until the first delta).
	Tier         string  `json:"tier"`
	Degraded     bool    `json:"degraded,omitempty"`
	DeltaSER     float64 `json:"delta_ser"`
	SolveMS      float64 `json:"solve_ms"`
	ResultSHA256 string  `json:"result_sha256"`
}

// viewLocked snapshots a session. Callers must hold the session lock or
// otherwise know no solve is mutating it.
func (s *Server) sessionView(ss *session, now time.Time, busy bool) SessionView {
	return SessionView{
		ID:           ss.id,
		Name:         ss.name,
		Age:          now.Sub(ss.created).Round(time.Millisecond).String(),
		IdleFor:      now.Sub(ss.lastUsed).Round(time.Millisecond).String(),
		Busy:         busy,
		Deltas:       ss.deltas,
		Warm:         ss.warmHits,
		Fallbacks:    ss.fallbacks,
		Tier:         ss.tier.String(),
		Degraded:     ss.degraded,
		DeltaSER:     ss.deltaSER,
		SolveMS:      ss.lastMS,
		ResultSHA256: ss.resultSHA,
	}
}

// Sessions snapshots the table for /debug/jobs, oldest first.
func (s *Server) Sessions() []SessionView {
	now := time.Now()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	s.sweepSessionsLocked(now)
	views := make([]SessionView, 0, len(s.sessions))
	for _, ss := range s.sessions {
		busy := !ss.tryLock()
		if !busy {
			ss.unlock()
		}
		views = append(views, s.sessionView(ss, now, busy))
	}
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
	return views
}

// sessionStats snapshots the counters for /metrics.
func (s *Server) sessionStats() (open int, opened, warm, fallback int64, evicted map[string]int64) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	s.sweepSessionsLocked(time.Now())
	evicted = make(map[string]int64, len(s.sessEvicted))
	for k, v := range s.sessEvicted {
		evicted[k] = v
	}
	return len(s.sessions), s.sessOpened, s.sessDeltaWarm, s.sessDeltaFallback, evicted
}

// commitSolve records a finished solve's artifacts on the session.
func (ss *session) commitSolve(res *serretime.RobustResult, ms float64) error {
	var buf bytes.Buffer
	if err := res.Retimed.WriteBench(&buf); err != nil {
		return err
	}
	sum := sha256.Sum256(buf.Bytes())
	ss.result = buf.Bytes()
	ss.resultSHA = hex.EncodeToString(sum[:])
	ss.tier = res.Tier
	ss.degraded = res.Degraded
	ss.deltaSER = res.DeltaSER()
	ss.lastMS = ms
	return nil
}

// ---- HTTP handlers ----

// openSessionResponse is the POST /v1/sessions reply.
type openSessionResponse struct {
	SessionView
	Disposition string `json:"disposition"`
}

// deltaRequest is the POST /v1/sessions/{id}/delta body.
type deltaRequest struct {
	Ops []serretime.DeltaOp `json:"ops"`
}

// deltaResponse is the reply: how the delta was solved plus the same
// result summary a session open returns.
type deltaResponse struct {
	Session string `json:"session"`
	Seq     int64  `json:"seq"`
	serretime.DeltaStats
	Tier         string  `json:"tier"`
	Degraded     bool    `json:"degraded,omitempty"`
	DeltaSER     float64 `json:"delta_ser"`
	SolveMS      float64 `json:"solve_ms"`
	ResultSHA256 string  `json:"result_sha256"`
}

// handleSessionOpen ingests a netlist exactly like POST /v1/retime
// (same body forms, same option query parameters), solves it
// synchronously, and keeps the warm state resident. The response
// carries the result digest; GET /v1/sessions/{id}/result downloads
// the retimed netlist itself.
func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeError(w, ErrDraining)
		return
	}
	opt, err := optionsFromQuery(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.applySolveDefaults(&opt)
	body, name, err := s.readNetlist(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	d, err := serretime.Parse(body, name)
	body.Close()
	if err != nil {
		s.writeError(w, err)
		return
	}
	if !s.acquireSolveSlot() {
		s.writeError(w, ErrSolversBusy)
		return
	}
	start := time.Now()
	warm, err := serretime.NewWarmState(s.baseCtx, d, opt)
	s.releaseSolveSlot()
	if err != nil {
		s.writeError(w, err)
		return
	}
	ss := &session{mu: make(chan struct{}, 1), warm: warm, name: d.Name()}
	if err := ss.commitSolve(warm.Result(), float64(time.Since(start).Microseconds())/1000); err != nil {
		s.writeError(w, err)
		return
	}
	if _, err := s.openSession(ss); err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, openSessionResponse{
		SessionView: s.sessionView(ss, time.Now(), false),
		Disposition: "opened",
	})
}

// handleSessionDelta applies a JSON delta to the warm netlist and
// re-solves — incrementally when the change is small and the options
// keep the warm caches valid, cold otherwise; the response says which.
// Option query parameters, when present, replace the session's options
// for this and later deltas; an empty query keeps the committed ones.
func (s *Server) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeError(w, ErrDraining)
		return
	}
	ss, code, msg := s.lookupSession(r.PathValue("id"))
	if ss == nil {
		writeJSON(w, code, errorResponse{Error: msg})
		return
	}
	var req deltaRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad delta body: %v", err)})
		return
	}
	if !ss.tryLock() {
		s.retryAfterHeader(w)
		writeJSON(w, http.StatusConflict, errorResponse{Error: ErrSessionBusy.Error()})
		return
	}
	defer ss.unlock()

	opt := ss.warm.Options()
	if len(r.URL.Query()) > 0 {
		var err error
		if opt, err = optionsFromQuery(r); err != nil {
			s.writeError(w, err)
			return
		}
	}
	s.applySolveDefaults(&opt)

	if !s.acquireSolveSlot() {
		s.writeError(w, ErrSolversBusy)
		return
	}
	start := time.Now()
	res, stats, err := ss.warm.RetimeDelta(s.baseCtx, req.Ops, opt)
	s.releaseSolveSlot()
	ss.deltas++
	if err != nil {
		s.writeError(w, err)
		return
	}
	if stats.Warm {
		ss.warmHits++
	} else {
		ss.fallbacks++
	}
	s.sessMu.Lock()
	if stats.Warm {
		s.sessDeltaWarm++
	} else {
		s.sessDeltaFallback++
	}
	s.sessMu.Unlock()
	ms := float64(time.Since(start).Microseconds()) / 1000
	if err := ss.commitSolve(res, ms); err != nil {
		s.writeError(w, err)
		return
	}
	ss.lastStats = stats
	writeJSON(w, http.StatusOK, deltaResponse{
		Session:      ss.id,
		Seq:          ss.deltas,
		DeltaStats:   stats,
		Tier:         res.Tier.String(),
		Degraded:     res.Degraded,
		DeltaSER:     res.DeltaSER(),
		SolveMS:      ms,
		ResultSHA256: ss.resultSHA,
	})
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	ss, code, msg := s.lookupSession(r.PathValue("id"))
	if ss == nil {
		writeJSON(w, code, errorResponse{Error: msg})
		return
	}
	busy := !ss.tryLock()
	if !busy {
		defer ss.unlock()
	}
	writeJSON(w, http.StatusOK, s.sessionView(ss, time.Now(), busy))
}

// handleSessionResult serves the committed retimed netlist verbatim, so
// clients can byte-compare a delta result against their own cold solve.
func (s *Server) handleSessionResult(w http.ResponseWriter, r *http.Request) {
	ss, code, msg := s.lookupSession(r.PathValue("id"))
	if ss == nil {
		writeJSON(w, code, errorResponse{Error: msg})
		return
	}
	if !ss.tryLock() {
		s.retryAfterHeader(w)
		writeJSON(w, http.StatusConflict, errorResponse{Error: ErrSessionBusy.Error()})
		return
	}
	res := ss.result
	ss.unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", ss.name+"_retimed.bench"))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(res)
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.closeSession(id) {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	_, code, msg := s.lookupSession(id)
	writeJSON(w, code, errorResponse{Error: msg})
}

// applySolveDefaults applies the server-side defaults and
// result-invariant fields exactly as Submit does for batch jobs.
func (s *Server) applySolveDefaults(opt *serretime.RobustOptions) {
	if opt.Timeout == 0 {
		opt.Timeout = s.cfg.Timeout
	}
	if opt.Retries == 0 {
		opt.Retries = s.cfg.Retries
	}
	if opt.Workers == 0 {
		opt.Workers = s.cfg.SolveWorkers
	}
	opt.Recorder = s.rec
}
