package service

import (
	"bytes"
	"encoding/json"
	"time"

	"serretime"
	"serretime/internal/guard"
	"serretime/internal/store"
	"serretime/internal/telemetry"
)

// Store is the persistence hook the server journals job lifecycle
// transitions through. *store.Disk implements it; tests substitute
// fakes. A nil Config.Store runs the server memory-only, exactly as
// before the store existed.
//
// Every journal call the server makes happens under its state mutex, so
// WAL record order always matches state-transition order: a "running"
// record can never precede its "submitted" record.
type Store interface {
	JournalSubmitted(id, name string, netlist, opts []byte, optKey string) error
	JournalRunning(id string) error
	JournalDone(id string, meta store.ResultMeta, result, trace []byte) error
	JournalFailed(id, class, msg string) error
	JournalEvicted(id string) error
	Close() error
}

// StoreMode names the persistence state for /healthz and /metrics.
type StoreMode uint8

const (
	// StoreMemory: no store configured; results die with the process.
	StoreMemory StoreMode = iota
	// StoreDisk: journaling to a disk store.
	StoreDisk
	// StoreDegraded: a store write failed; the server fell back to
	// memory-only operation rather than failing solves.
	StoreDegraded
)

func (m StoreMode) String() string {
	switch m {
	case StoreMemory:
		return "memory"
	case StoreDisk:
		return "disk"
	case StoreDegraded:
		return "memory-degraded"
	}
	return "unknown"
}

// journal runs one store call under s.mu, degrading to memory-only mode
// on the first failure: the error is counted and logged, the store is
// dropped (best-effort Close), and the solve that triggered the write
// proceeds untouched. A store fault must never fail a job.
func (s *Server) journal(fn func(st Store) error) {
	if s.store == nil {
		return
	}
	if err := fn(s.store); err != nil {
		s.storeErrs++
		s.logf("serretimed: store write failed, degrading to memory-only mode: %v", err)
		_ = s.store.Close()
		s.store = nil
		s.storeMode = StoreDegraded
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// optionsBlob is the serialized subset of RobustOptions a recovered job
// needs to be re-solved identically: every result-relevant knob (the
// fields CanonicalKey hashes). Result-invariant fields — Recorder,
// worker budgets, CheckLabels — are reapplied from the server's own
// config at recovery, exactly as Submit applies them to fresh jobs.
type optionsBlob struct {
	Algorithm       int     `json:"alg"`
	Engine          int     `json:"eng"`
	Epsilon         float64 `json:"eps,omitempty"`
	Ts              float64 `json:"ts,omitempty"`
	Th              float64 `json:"th,omitempty"`
	AreaWeight      float64 `json:"area,omitempty"`
	RminOverride    float64 `json:"rmin,omitempty"`
	KUnits          int     `json:"kunits,omitempty"`
	SingleViolation bool    `json:"single,omitempty"`
	LiteralGains    bool    `json:"literal,omitempty"`
	Verify          bool    `json:"verify,omitempty"`
	StallSteps      int     `json:"stall,omitempty"`
	Frames          int     `json:"frames,omitempty"`
	SignatureWords  int     `json:"words,omitempty"`
	MaxIntervals    int     `json:"maxiv,omitempty"`
	Seed            int64   `json:"seed,omitempty"`
	// Accuracy selects the observability engine tier. Old journals wrote
	// no "acc" field; absent decodes to 0 = AccuracyExact, which is what
	// those jobs ran with, so recovery keys stay stable across upgrades.
	Accuracy    int           `json:"acc,omitempty"`
	Timeout     time.Duration `json:"timeout,omitempty"`
	Retries     int           `json:"retries,omitempty"`
	RelaxFactor float64       `json:"relax,omitempty"`
}

func encodeOptions(opt serretime.RobustOptions) []byte {
	b, err := json.Marshal(optionsBlob{
		Algorithm:       int(opt.Algorithm),
		Engine:          int(opt.Engine),
		Epsilon:         opt.Epsilon,
		Ts:              opt.Ts,
		Th:              opt.Th,
		AreaWeight:      opt.AreaWeight,
		RminOverride:    opt.RminOverride,
		KUnits:          opt.KUnits,
		SingleViolation: opt.SingleViolation,
		LiteralGains:    opt.LiteralGains,
		Verify:          opt.Verify,
		StallSteps:      opt.StallSteps,
		Frames:          opt.Analysis.Frames,
		SignatureWords:  opt.Analysis.SignatureWords,
		MaxIntervals:    opt.Analysis.MaxIntervals,
		Seed:            opt.Analysis.Seed,
		Accuracy:        int(opt.Analysis.Accuracy),
		Timeout:         opt.Timeout,
		Retries:         opt.Retries,
		RelaxFactor:     opt.RelaxFactor,
	})
	if err != nil {
		return nil // unreachable: the blob is plain data
	}
	return b
}

func decodeOptions(blob []byte) (serretime.RobustOptions, error) {
	var b optionsBlob
	if err := json.Unmarshal(blob, &b); err != nil {
		return serretime.RobustOptions{}, guard.Storef("options.decode", "", err)
	}
	var opt serretime.RobustOptions
	opt.Algorithm = serretime.Algorithm(b.Algorithm)
	opt.Engine = serretime.EngineKind(b.Engine)
	opt.Epsilon = b.Epsilon
	opt.Ts = b.Ts
	opt.Th = b.Th
	opt.AreaWeight = b.AreaWeight
	opt.RminOverride = b.RminOverride
	opt.KUnits = b.KUnits
	opt.SingleViolation = b.SingleViolation
	opt.LiteralGains = b.LiteralGains
	opt.Verify = b.Verify
	opt.StallSteps = b.StallSteps
	opt.Analysis.Frames = b.Frames
	opt.Analysis.SignatureWords = b.SignatureWords
	opt.Analysis.MaxIntervals = b.MaxIntervals
	opt.Analysis.Seed = b.Seed
	opt.Analysis.Accuracy = serretime.Accuracy(b.Accuracy)
	opt.Timeout = b.Timeout
	opt.Retries = b.Retries
	opt.RelaxFactor = b.RelaxFactor
	return opt, nil
}

// RestoreSummary reports what Restore did with a recovery's jobs, for
// the daemon's boot log and /healthz.
type RestoreSummary struct {
	// Finished jobs were re-installed as cache entries: resubmitting the
	// identical circuit gets disposition "cached" without a solve.
	Finished int
	// Requeued jobs (queued or running at crash time) were re-enqueued
	// and will be solved again.
	Requeued int
	// Dropped jobs could not be restored: undecodable options, a job key
	// that no longer matches the journaled ID (foreign or tampered
	// record), or no queue capacity left.
	Dropped int
	// Quarantined is carried over from the store's replay: payloads
	// whose checksum did not match the journal.
	Quarantined int
	// Records, CorruptRecords and TruncatedTail echo the WAL replay.
	Records        int
	CorruptRecords int
	TruncatedTail  bool
}

// Restore installs the jobs a store.Recover handed back: finished jobs
// become servable cache entries, pending jobs are re-enqueued for a
// fresh solve. Call it once, after New and before serving HTTP.
//
// Trust chain: the store already re-hashed every payload against the
// journaled checksum. For pending jobs Restore additionally re-parses
// the netlist and re-derives the job key — a mismatch against the
// journaled ID means the record and payload don't belong together, and
// the job is dropped rather than solved under a wrong identity.
func (s *Server) Restore(jobs []store.RecoveredJob, st store.Stats) RestoreSummary {
	sum := RestoreSummary{
		Quarantined:    st.Quarantined,
		Records:        st.Records,
		CorruptRecords: st.CorruptRecords,
		TruncatedTail:  st.TruncatedTail,
	}
	now := time.Now()
	for _, rj := range jobs {
		if rj.Done {
			j := &Job{
				ID:        rj.ID,
				Name:      rj.Name,
				Done:      make(chan struct{}),
				state:     StateDone,
				submitted: now,
				started:   now,
				finished:  now,
				tier:      serretime.Tier(rj.Meta.Tier),
				degraded:  rj.Meta.Degraded,
				deltaSER:  rj.Meta.DeltaSER,
				result:    rj.Result,
				traceDoc:  rj.Trace,
			}
			if len(rj.Trace) > 0 {
				if doc, err := telemetry.DecodeTraceDoc(rj.Trace); err == nil {
					j.traceID = doc.TraceID
				}
			}
			close(j.Done)
			s.mu.Lock()
			s.jobs[j.ID] = j
			s.retainLocked(j.ID)
			s.mu.Unlock()
			sum.Finished++
			continue
		}

		opt, err := decodeOptions(rj.Opts)
		if err != nil {
			s.logf("serretimed: recovery: job %.12s dropped: %v", rj.ID, err)
			sum.Dropped++
			continue
		}
		// Reapply the server-side defaults and result-invariant fields
		// exactly as Submit does for a fresh submission.
		if opt.Timeout == 0 {
			opt.Timeout = s.cfg.Timeout
		}
		if opt.Retries == 0 {
			opt.Retries = s.cfg.Retries
		}
		if opt.Workers == 0 {
			opt.Workers = s.cfg.SolveWorkers
		}
		opt.Recorder = s.rec
		// The canonical .bench payload carries the design name in its
		// leading comment; the filename here is only a format selector.
		d, err := serretime.Parse(bytes.NewReader(rj.Netlist), "recovered.bench")
		if err != nil {
			s.logf("serretimed: recovery: job %.12s dropped: bad netlist: %v", rj.ID, err)
			sum.Dropped++
			continue
		}
		key, _, err := jobKey(d, opt)
		if err != nil || key != rj.ID {
			s.logf("serretimed: recovery: job %.12s dropped: key mismatch", rj.ID)
			sum.Dropped++
			continue
		}

		// A requeued job is a new solve: it gets a fresh trace, exactly
		// as Submit gives one to a fresh submission.
		tr := telemetry.NewTrace(telemetry.TraceID{})
		tr.Begin("queue-wait")
		opt.Recorder = telemetry.Tee(s.rec, tr)
		j := &Job{
			ID:        key,
			Name:      d.Name(),
			Done:      make(chan struct{}),
			design:    d,
			opts:      opt,
			state:     StateQueued,
			submitted: now,
			trace:     tr,
			traceID:   tr.ID().String(),
		}
		s.mu.Lock()
		if _, exists := s.jobs[key]; exists {
			s.mu.Unlock()
			sum.Dropped++
			continue
		}
		select {
		case s.queue <- j:
			s.jobs[key] = j
			s.accepted++
			sum.Requeued++
		default:
			sum.Dropped++
			s.logf("serretimed: recovery: job %.12s dropped: queue full", rj.ID)
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.restored = sum
	s.mu.Unlock()
	return sum
}

// StoreStatus snapshots the persistence state for /healthz and /metrics.
func (s *Server) StoreStatus() (mode StoreMode, errs int64, restored RestoreSummary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.storeMode, s.storeErrs, s.restored
}
