package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"serretime"
	"serretime/internal/benchfmt"
	"serretime/internal/eco"
)

func openSessionHTTP(t *testing.T, base string, body []byte, query string) (openSessionResponse, int) {
	t.Helper()
	resp, err := http.Post(base+"/v1/sessions"+query, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var msg openSessionResponse
	if err := json.Unmarshal(data, &msg); err != nil {
		t.Fatalf("bad session response (HTTP %d): %.300s", resp.StatusCode, data)
	}
	return msg, resp.StatusCode
}

func postDelta(t *testing.T, base, id string, ops []serretime.DeltaOp) (deltaResponse, int) {
	t.Helper()
	body, err := json.Marshal(deltaRequest{Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sessions/"+id+"/delta", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var msg deltaResponse
	if err := json.Unmarshal(data, &msg); err != nil {
		t.Fatalf("bad delta response (HTTP %d): %.300s", resp.StatusCode, data)
	}
	return msg, resp.StatusCode
}

// TestSessionEndToEnd is the warm-session contract over HTTP: open a
// session, stream generated ECO deltas into it, and cross-check every
// response against the oracle — a cold in-process solve of the client's
// own mirror of the mutated netlist. Result bytes must match exactly.
func TestSessionEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Timeout: time.Minute})
	d := tableIDesign(t, "b14_1_opt", 100)
	body := benchBytes(t, d)
	query := "?frames=2&words=1"

	msg, code := openSessionHTTP(t, ts.URL, body, query)
	if code != http.StatusCreated {
		t.Fatalf("open: want 201, got %d (%+v)", code, msg)
	}
	if msg.ID == "" || msg.Disposition != "opened" || msg.ResultSHA256 == "" {
		t.Fatalf("open response: %+v", msg)
	}

	// The session solves the same parse the oracle does: both sides start
	// from the canonical bytes the client uploaded.
	mirror, err := benchfmt.Parse(bytes.NewReader(body), "b14.bench")
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOpts()
	opt.Workers = 1
	opt.Timeout = time.Minute
	g := eco.NewGen(mirror, 7)
	warm := 0
	for i := 0; i < 6; i++ {
		ops, err := g.Next()
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		dmsg, dcode := postDelta(t, ts.URL, msg.ID, ops)
		if dcode != http.StatusOK {
			t.Fatalf("delta %d: HTTP %d (%+v)", i, dcode, dmsg)
		}
		if dmsg.Seq != int64(i+1) {
			t.Errorf("delta %d: seq %d", i, dmsg.Seq)
		}
		if dmsg.Warm {
			warm++
		}

		// Oracle: cold full solve of the mutated netlist, bit-for-bit.
		mb, err := g.Bench()
		if err != nil {
			t.Fatal(err)
		}
		cd, err := serretime.Parse(bytes.NewReader(mb), "oracle.bench")
		if err != nil {
			t.Fatal(err)
		}
		cres, err := cd.RetimeRobust(context.Background(), opt)
		if err != nil {
			t.Fatalf("delta %d: oracle solve: %v", i, err)
		}
		want := benchBytes(t, cres.Retimed)
		got, resp := fetchBody(t, ts.URL+"/v1/sessions/"+msg.ID+"/result")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delta %d: result: HTTP %d", i, resp.StatusCode)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("delta %d: session result differs from cold oracle solve", i)
		}
	}
	if warm == 0 {
		t.Error("no delta took the warm path")
	}

	// Session status and observability surfaces.
	sb, resp := fetchBody(t, ts.URL+"/v1/sessions/"+msg.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session get: HTTP %d", resp.StatusCode)
	}
	var sv SessionView
	if err := json.Unmarshal(sb, &sv); err != nil || sv.Deltas != 6 {
		t.Fatalf("session view: %.200s (%v)", sb, err)
	}
	mb, _ := fetchBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"serretimed_sessions_open 1",
		"serretimed_sessions_opened_total 1",
		`serretimed_session_deltas_total{path="warm"}`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	db, _ := fetchBody(t, ts.URL+"/debug/jobs")
	if !strings.Contains(string(db), `"sessions"`) || !strings.Contains(string(db), msg.ID) {
		t.Errorf("/debug/jobs does not list the session: %.400s", db)
	}

	// Close: DELETE, then the ID answers 410 — existed, gone.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+msg.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("close: HTTP %d", dresp.StatusCode)
	}
	if _, resp := fetchBody(t, ts.URL+"/v1/sessions/"+msg.ID); resp.StatusCode != http.StatusGone {
		t.Errorf("closed session: want 410, got %d", resp.StatusCode)
	}
}

// TestSessionGoneSemantics pins the 404-vs-410 split: garbage IDs are
// 404, IDs from a previous boot (wrong nonce) and evicted/closed IDs of
// this boot are 410.
func TestSessionGoneSemantics(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, Timeout: time.Minute})

	if _, resp := fetchBody(t, ts.URL+"/v1/sessions/garbage"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("garbage id: want 404, got %d", resp.StatusCode)
	}
	// A well-formed ID from "another boot": wrong nonce.
	if _, resp := fetchBody(t, ts.URL+"/v1/sessions/deadbeef0000.1"); resp.StatusCode != http.StatusGone {
		t.Errorf("previous-boot id: want 410, got %d", resp.StatusCode)
	}
	// Right nonce, never-minted sequence number: 404, not 410.
	if _, resp := fetchBody(t, ts.URL+"/v1/sessions/"+svc.sessNonce+".99"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("future seq: want 404, got %d", resp.StatusCode)
	}
}

// TestSessionEvictionLRUAndTTL drives the table bounds: at MaxSessions
// the oldest idle session is evicted for a new one (410 afterwards),
// and sessions idle past SessionTTL expire lazily.
func TestSessionEvictionLRUAndTTL(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, Timeout: time.Minute,
		MaxSessions: 2, SessionTTL: 150 * time.Millisecond,
	})
	body := benchBytes(t, tableIDesign(t, "b14_1_opt", 100))

	open := func() string {
		t.Helper()
		msg, code := openSessionHTTP(t, ts.URL, body, "?frames=2&words=1")
		if code != http.StatusCreated {
			t.Fatalf("open: HTTP %d (%+v)", code, msg)
		}
		return msg.ID
	}
	s1 := open()
	s2 := open()
	// Touch s1 so s2 becomes the LRU victim.
	if _, resp := fetchBody(t, ts.URL+"/v1/sessions/"+s1); resp.StatusCode != http.StatusOK {
		t.Fatalf("touch s1: HTTP %d", resp.StatusCode)
	}
	s3 := open()
	if _, resp := fetchBody(t, ts.URL+"/v1/sessions/"+s2); resp.StatusCode != http.StatusGone {
		t.Errorf("LRU victim: want 410, got %d", resp.StatusCode)
	}
	for _, id := range []string{s1, s3} {
		if _, resp := fetchBody(t, ts.URL+"/v1/sessions/"+id); resp.StatusCode != http.StatusOK {
			t.Errorf("survivor %s: HTTP %d", id, resp.StatusCode)
		}
	}

	// TTL: idle past the deadline, then any table access sweeps.
	time.Sleep(300 * time.Millisecond)
	if _, resp := fetchBody(t, ts.URL+"/v1/sessions/"+s1); resp.StatusCode != http.StatusGone {
		t.Errorf("expired session: want 410, got %d", resp.StatusCode)
	}
	mb, _ := fetchBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`serretimed_sessions_evicted_total{reason="lru"} 1`,
		`serretimed_sessions_evicted_total{reason="ttl"}`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSessionDeltaValidation: malformed bodies and bad ops are client
// errors; a failed delta leaves the session answering for its previous
// netlist.
func TestSessionDeltaValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Timeout: time.Minute})
	body := benchBytes(t, tableIDesign(t, "b14_1_opt", 100))
	msg, code := openSessionHTTP(t, ts.URL, body, "?frames=2&words=1")
	if code != http.StatusCreated {
		t.Fatalf("open: HTTP %d", code)
	}
	before, _ := fetchBody(t, ts.URL+"/v1/sessions/"+msg.ID+"/result")

	resp, err := http.Post(ts.URL+"/v1/sessions/"+msg.ID+"/delta", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken body: want 400, got %d", resp.StatusCode)
	}

	if dmsg, dcode := postDelta(t, ts.URL, msg.ID, []serretime.DeltaOp{{Op: "rm_node", Name: "no_such_net"}}); dcode != http.StatusBadRequest {
		t.Errorf("bad op: want 400, got %d (%+v)", dcode, dmsg)
	}
	after, resp2 := fetchBody(t, ts.URL+"/v1/sessions/"+msg.ID+"/result")
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(before, after) {
		t.Errorf("failed delta changed the committed result (HTTP %d)", resp2.StatusCode)
	}
}

// TestResultRetryAfterHonorsConfig is the regression test for the
// hardcoded hint: a not-yet-finished job's result poll must advertise
// the *configured* Retry-After, the same value 429 responses use.
func TestResultRetryAfterHonorsConfig(t *testing.T) {
	cfg := Config{QueueDepth: 4, RetryAfter: 7 * time.Second}.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *Job, cfg.QueueDepth),
		baseCtx: ctx,
		cancel:  cancel,
		start:   time.Now(),
		jobs:    make(map[string]*Job),
		byClass: make(map[string]int64),
	}
	s.initSessions()
	// No workers: the job stays queued, so the result poll must defer.
	j, _, err := s.Submit(tableIDesign(t, "s13207", 100), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_, resp := fetchBody(t, ts.URL+"/v1/jobs/"+j.ID+"/result")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("queued result: want 409, got %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want %q (the configured hint)", ra, "7")
	}
}

// TestSessionBackpressure: a manually built server with a zero-capacity
// solve-slot pool must refuse session work with 429 + Retry-After
// instead of queueing it behind the batch workers.
func TestSessionBackpressure(t *testing.T) {
	cfg := Config{RetryAfter: 3 * time.Second}.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *Job, cfg.QueueDepth),
		baseCtx: ctx,
		cancel:  cancel,
		start:   time.Now(),
		jobs:    make(map[string]*Job),
		byClass: make(map[string]int64),
	}
	s.initSessions()
	s.sessSolve = make(chan struct{}) // zero slots: always busy
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := benchBytes(t, tableIDesign(t, "s13207", 100))
	resp, err := http.Post(ts.URL+"/v1/sessions?frames=2&words=1", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("no solve slots: want 429, got %d: %.200s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want %q", ra, "3")
	}
}
