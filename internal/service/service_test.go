package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"serretime"
	"serretime/internal/guard"
)

// fastOpts keeps service tests quick: the queue/cache/drain contracts
// under test do not depend on analysis fidelity.
func fastOpts() serretime.RobustOptions {
	return serretime.RobustOptions{
		RetimeOptions: serretime.RetimeOptions{
			Algorithm: serretime.MinObsWin,
			Analysis:  serretime.AnalysisOptions{Frames: 2, SignatureWords: 1},
		},
	}
}

func tableIDesign(t *testing.T, name string, scale int) *serretime.Design {
	t.Helper()
	d, err := serretime.NewTableIDesign(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func benchBytes(t *testing.T, d *serretime.Design) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(context.Background(), cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Drain(dctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return svc, ts
}

func postNetlist(t *testing.T, url string, body []byte) (submitResponse, int) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var msg submitResponse
	if err := json.Unmarshal(data, &msg); err != nil {
		t.Fatalf("bad submit response (HTTP %d): %.300s", resp.StatusCode, data)
	}
	return msg, resp.StatusCode
}

func pollDone(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("bad status response (HTTP %d): %.300s", resp.StatusCode, data)
		}
		if v.Status == StateDone.String() || v.Status == StateFailed.String() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q at deadline", id, v.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func fetchBody(t *testing.T, url string) ([]byte, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data, resp
}

// TestServiceEndToEnd drives the whole pipeline over HTTP: submit a
// Table I synthetic circuit, poll it to completion, download the
// retimed netlist, re-parse it, and cross-check determinism against an
// identical in-process solve. The submission carries verify=true, so
// the solve itself co-simulates the retiming against the input
// (verify.ForwardEquivalent under the hood) and would have failed the
// job on any equivalence break. A resubmission of the same bytes must
// answer from the content-addressed cache with HTTP 200.
func TestServiceEndToEnd(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2, Timeout: time.Minute})
	d := tableIDesign(t, "b14_1_opt", 100)
	body := benchBytes(t, d)

	url := ts.URL + "/v1/retime?name=b14.bench&algorithm=minobswin&frames=2&words=1&verify=true"
	msg, code := postNetlist(t, url, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: want 202, got %d (%+v)", code, msg)
	}
	if msg.Disposition != Accepted.String() {
		t.Fatalf("submit disposition: want accepted, got %q", msg.Disposition)
	}
	// The uploaded canonical netlist carries its design name in the
	// leading comment, which overrides the filename-derived fallback —
	// the same rule that lets the recovery path round-trip names the
	// filename cannot carry.
	if msg.ID == "" || msg.Name != d.Name() {
		t.Fatalf("submit view: %+v", msg.JobView)
	}

	v := pollDone(t, ts.URL, msg.ID)
	if v.Status != StateDone.String() {
		t.Fatalf("job failed: %s (%s)", v.Error, v.ErrorClass)
	}
	if v.Tier == "" {
		t.Error("finished job reports no tier")
	}

	res, resp := fetchBody(t, ts.URL+"/v1/jobs/"+msg.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d: %.200s", resp.StatusCode, res)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "_retimed.bench") {
		t.Errorf("result Content-Disposition: %q", cd)
	}
	rd, err := serretime.Parse(bytes.NewReader(res), "retimed.bench")
	if err != nil {
		t.Fatalf("downloaded result does not re-parse: %v", err)
	}
	if rd.Name() == "" {
		t.Error("re-parsed result has no name")
	}

	// Determinism cross-check: an in-process solve of a fresh parse of
	// the same bytes, under the same effective options the server
	// applies, must serialize byte-identically to the download.
	local, err := serretime.Parse(bytes.NewReader(body), "b14.bench")
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOpts()
	opt.Verify = true
	opt.Workers = 1
	opt.Timeout = time.Minute
	lres, err := local.RetimeRobust(context.Background(), opt)
	if err != nil {
		t.Fatalf("local solve: %v", err)
	}
	lbytes := benchBytes(t, lres.Retimed)
	if !bytes.Equal(lbytes, res) {
		t.Error("service result differs from identical in-process solve")
	}

	// Resubmission: same bytes, same options → content-addressed cache
	// hit, answered terminally with 200.
	msg2, code2 := postNetlist(t, url, body)
	if code2 != http.StatusOK {
		t.Fatalf("resubmit: want 200, got %d (%+v)", code2, msg2)
	}
	if msg2.Disposition != Cached.String() {
		t.Fatalf("resubmit disposition: want cached, got %q", msg2.Disposition)
	}
	if msg2.ID != msg.ID {
		t.Error("resubmission produced a different job ID")
	}
	if msg2.Hits < 1 {
		t.Errorf("cached job reports %d hits", msg2.Hits)
	}

	// A cosmetically different netlist (extra comment) must hash to the
	// same content address: the key covers the *normalized* circuit.
	commented := append([]byte("# a comment\n"), body...)
	msg3, code3 := postNetlist(t, url, commented)
	if code3 != http.StatusOK || msg3.Disposition != Cached.String() {
		t.Errorf("commented resubmit: want cached/200, got %q/%d", msg3.Disposition, code3)
	}

	// The metrics endpoint must reflect the hits.
	metrics, mresp := fetchBody(t, ts.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", mresp.StatusCode)
	}
	for _, want := range []string{
		"serretimed_jobs_accepted_total 1",
		"serretimed_cache_hits_total 2",
		"serretimed_jobs_completed_total 1",
		"serretimed_solve_seconds_count 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(string(metrics), "serretimed_cache_hit_ratio 0.000000") {
		t.Error("cache hit ratio still zero after two hits")
	}

	// Healthz while live.
	hz, hresp := fetchBody(t, ts.URL+"/healthz")
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(hz), `"status": "ok"`) {
		t.Errorf("healthz: HTTP %d %.200s", hresp.StatusCode, hz)
	}
	_ = svc
}

// TestServiceConcurrentSubmissions hammers the server with a burst of
// identical-and-distinct submissions from many goroutines (run under
// -race): every submission must resolve to accepted, coalesced or
// cached — never dropped — all results of one payload must be
// byte-identical, and exactly one fresh job per distinct payload may
// be solved.
func TestServiceConcurrentSubmissions(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64, Timeout: time.Minute})
	payloads := [][]byte{
		benchBytes(t, tableIDesign(t, "b14_1_opt", 100)),
		benchBytes(t, tableIDesign(t, "s35932", 1000000)),
		benchBytes(t, tableIDesign(t, "s38417", 2000)),
	}
	url := ts.URL + "/v1/retime?frames=2&words=1"

	const burst = 24
	results := make([][]byte, burst)
	errs := make([]error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := payloads[i%len(payloads)]
			resp, err := http.Post(url, "text/plain", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("HTTP %d: %.200s", resp.StatusCode, data)
				return
			}
			var msg submitResponse
			if err := json.Unmarshal(data, &msg); err != nil {
				errs[i] = err
				return
			}
			j, ok := svc.Job(msg.ID)
			if !ok {
				errs[i] = fmt.Errorf("job %s not retained", msg.ID)
				return
			}
			select {
			case <-j.Done:
			case <-time.After(2 * time.Minute):
				errs[i] = fmt.Errorf("job %s not finished in time", msg.ID)
				return
			}
			results[i], errs[i] = svc.Result(j)
		}(i)
	}
	wg.Wait()

	ref := make([][]byte, len(payloads))
	for i := 0; i < burst; i++ {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		p := i % len(payloads)
		if ref[p] == nil {
			ref[p] = results[i]
		} else if !bytes.Equal(ref[p], results[i]) {
			t.Errorf("submission %d: nondeterministic result for payload %d", i, p)
		}
	}

	svc.mu.Lock()
	accepted, coalesced, hits, rejected := svc.accepted, svc.coalesced, svc.cacheHits, svc.rejected
	svc.mu.Unlock()
	if accepted != int64(len(payloads)) {
		t.Errorf("want %d fresh jobs, got %d (coalesced %d, cached %d)",
			len(payloads), accepted, coalesced, hits)
	}
	if rejected != 0 {
		t.Errorf("burst below the queue bound was rejected %d times", rejected)
	}
	if accepted+coalesced+hits != burst {
		t.Errorf("dispositions do not add up: %d+%d+%d != %d", accepted, coalesced, hits, burst)
	}
}

// TestServiceQueueFull exercises backpressure without workers: a
// Server whose queue is full must refuse fresh submissions with
// ErrQueueFull, and the HTTP layer must turn that into 429 with a
// Retry-After hint. Identical submissions still coalesce — the bound
// applies to fresh work, not to deduplicated work.
func TestServiceQueueFull(t *testing.T) {
	cfg := Config{QueueDepth: 1}.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *Job, cfg.QueueDepth),
		baseCtx: ctx,
		cancel:  cancel,
		start:   time.Now(),
		jobs:    make(map[string]*Job),
		byClass: make(map[string]int64),
	}
	// No workers: the queue can only fill.
	d1 := tableIDesign(t, "s35932", 1000000)
	d2 := tableIDesign(t, "b14_1_opt", 1000000)

	if _, disp, err := s.Submit(d1, fastOpts()); err != nil || disp != Accepted {
		t.Fatalf("first submit: disp %v err %v", disp, err)
	}
	if _, _, err := s.Submit(d2, fastOpts()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second submit on a full queue: want ErrQueueFull, got %v", err)
	}
	// An identical submission coalesces even when the queue is full.
	if _, disp, err := s.Submit(d1, fastOpts()); err != nil || disp != Coalesced {
		t.Fatalf("identical submit on a full queue: disp %v err %v", disp, err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := benchBytes(t, d2)
	resp, err := http.Post(ts.URL+"/v1/retime?frames=2&words=1", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue over HTTP: want 429, got %d: %.200s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After hint")
	}
}

// TestServiceDrain checks shutdown semantics: once Drain begins, new
// submissions fail with ErrDraining, still-queued jobs are failed with
// an error that unwraps to ErrDraining, and the worker pool exits
// (Drain returning nil is the wg.Wait proof).
func TestServiceDrain(t *testing.T) {
	cfg := Config{QueueDepth: 4}.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *Job, cfg.QueueDepth),
		baseCtx: ctx,
		cancel:  cancel,
		start:   time.Now(),
		jobs:    make(map[string]*Job),
		byClass: make(map[string]int64),
	}
	// No workers: submitted jobs stay queued until the drain fails them.
	j1, _, err := s.Submit(tableIDesign(t, "s35932", 1000000), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	j2, _, err := s.Submit(tableIDesign(t, "b14_1_opt", 1000000), fastOpts())
	if err != nil {
		t.Fatal(err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !s.Draining() {
		t.Error("Draining() false after Drain")
	}
	for _, j := range []*Job{j1, j2} {
		select {
		case <-j.Done:
		default:
			t.Fatalf("queued job %s not failed by drain", j.ID)
		}
		if _, err := s.Result(j); !errors.Is(err, ErrDraining) {
			t.Errorf("drained job error: want ErrDraining, got %v", err)
		}
	}
	if _, _, err := s.Submit(tableIDesign(t, "s13207", 1000000), fastOpts()); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: want ErrDraining, got %v", err)
	}
}

// TestJobKeyCanonicalization pins the cache-key contract: zero-valued
// options hash identically to spelled-out defaults, result-invariant
// fields (Workers, Verify, Recorder) do not fragment the key, and any
// result-relevant change does.
func TestJobKeyCanonicalization(t *testing.T) {
	d := tableIDesign(t, "s35932", 1000000)
	base := fastOpts()
	k0, err := JobKey(d, base)
	if err != nil {
		t.Fatal(err)
	}

	spelled := base
	spelled.Epsilon = 0.10
	spelled.Timeout = 0
	if k, _ := JobKey(d, spelled); k != k0 {
		t.Error("spelled-out defaults changed the job key")
	}
	invariant := base
	invariant.Workers = 8
	invariant.Verify = true
	if k, _ := JobKey(d, invariant); k != k0 {
		t.Error("result-invariant options (Workers, Verify) changed the job key")
	}
	relevant := base
	relevant.Epsilon = 0.25
	if k, _ := JobKey(d, relevant); k == k0 {
		t.Error("changing epsilon did not change the job key")
	}
	frames := base
	frames.Analysis.Frames = 4
	if k, _ := JobKey(d, frames); k == k0 {
		t.Error("changing frames did not change the job key")
	}

	other := tableIDesign(t, "b14_1_opt", 1000000)
	if k, _ := JobKey(other, base); k == k0 {
		t.Error("different circuits share a job key")
	}
}

// TestOptionsFromQueryRejectsGarbage drives hostile query strings
// through the option parser: every bad value must fail with an error
// unwrapping to guard.ErrParse (HTTP 400), and non-finite floats must
// never get through to the hashing layer.
func TestOptionsFromQueryRejectsGarbage(t *testing.T) {
	bad := []string{
		"algorithm=quantum",
		"engine=warp",
		"epsilon=NaN",
		"epsilon=+Inf",
		"epsilon=-Inf",
		"epsilon=banana",
		"frames=-1",
		"words=zero",
		"seed=1.5",
		"timeout=-3s",
		"timeout=fortnight",
		"verify=perhaps",
		"retries=-2",
		"accuracy=banana",
		// Unknown parameter names must 400, not silently no-op: the typo
		// acuracy=fast would otherwise run the expensive exact path the
		// caller was explicitly routing around.
		"acuracy=fast",
		"frames=3&wrods=2",
		"zzz=1&aaa=2",
	}
	for _, qs := range bad {
		r := httptest.NewRequest("POST", "/v1/retime?"+qs, nil)
		if _, err := optionsFromQuery(r); !errors.Is(err, guard.ErrParse) {
			t.Errorf("%s: want guard.ErrParse, got %v", qs, err)
		}
	}
	r := httptest.NewRequest("POST", "/v1/retime?epsilon=0.2&frames=3&words=2&seed=-7&verify=true&timeout=30s&accuracy=fast&name=c.bench", nil)
	opt, err := optionsFromQuery(r)
	if err != nil {
		t.Fatalf("good query rejected: %v", err)
	}
	if opt.Epsilon != 0.2 || opt.Analysis.Frames != 3 || opt.Analysis.SignatureWords != 2 ||
		opt.Analysis.Seed != -7 || !opt.Verify || opt.Timeout != 30*time.Second ||
		opt.Analysis.Accuracy != serretime.AccuracyFast {
		t.Errorf("good query mis-parsed: %+v", opt)
	}
	if opt, err := optionsFromQuery(httptest.NewRequest("POST", "/v1/retime?accuracy=exact", nil)); err != nil || opt.Analysis.Accuracy != serretime.AccuracyExact {
		t.Errorf("accuracy=exact mis-parsed: %+v, %v", opt, err)
	}
}

// TestJobKeySplitsOnAccuracy pins that fast and exact submissions of the
// same netlist never coalesce onto one cached job.
func TestJobKeySplitsOnAccuracy(t *testing.T) {
	d := tableIDesign(t, "s35932", 1000000)
	base := fastOpts()
	k0, err := JobKey(d, base)
	if err != nil {
		t.Fatal(err)
	}
	fast := base
	fast.Analysis.Accuracy = serretime.AccuracyFast
	if k, _ := JobKey(d, fast); k == k0 {
		t.Error("accuracy=fast did not change the job key")
	}
}
