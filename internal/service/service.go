// Package service is the batch-retiming daemon behind cmd/serretimed: a
// bounded job queue with backpressure, a content-addressed result cache,
// and an HTTP front end over the public serretime API.
//
// Jobs are content-addressed: a job's identity is the SHA-256 of the
// submitted circuit's *normalized* netlist (parsed, then re-serialized in
// canonical .bench form, so whitespace, comments, and even the source
// format don't fragment the key) concatenated with the canonical option
// key (RobustOptions.CanonicalKey, defaults applied, result-invariant
// fields excluded). The job table therefore IS the cache: resubmitting a
// finished circuit returns the finished job without re-solving, and
// resubmitting one that is still queued or running coalesces onto the
// in-flight job instead of solving it twice.
//
// Solves run through the existing robustness machinery: each worker calls
// Design.RetimeRobust under the server's base context, so the per-attempt
// timeout, the stall watchdog, panic isolation and the degradation chain
// all apply, and a SIGTERM drain cancels in-flight solves by cancelling
// that context. Telemetry from every solve lands in one shared
// telemetry.Collector (plus any extra recorder, e.g. a JSONL trace) and
// is rendered by /metrics together with the queue, cache, and latency
// counters.
package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"serretime"
	"serretime/internal/guard"
	"serretime/internal/store"
	"serretime/internal/telemetry"
)

// JobState is a job's position in its lifecycle.
type JobState uint8

const (
	// StateQueued means the job is accepted and waiting for a worker.
	StateQueued JobState = iota
	// StateRunning means a worker is solving the job.
	StateRunning
	// StateDone means the job finished and its result is downloadable.
	StateDone
	// StateFailed means every degradation tier failed (or the drain
	// cancelled the job); Err holds the typed cause.
	StateFailed
)

func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("JobState(%d)", uint8(s))
}

// Job is one batch-retiming request. All mutable fields are guarded by
// the owning Server's mutex; Done is closed exactly once when the job
// reaches StateDone or StateFailed.
type Job struct {
	// ID is the content address: hex SHA-256 of the normalized netlist
	// plus the canonical option key.
	ID string
	// Name is the circuit name from the submitted netlist.
	Name string
	// Done is closed when the job finishes (either terminal state).
	Done chan struct{}

	design *serretime.Design
	opts   serretime.RobustOptions

	state     JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	tier      serretime.Tier
	degraded  bool
	deltaSER  float64
	result    []byte // retimed netlist, canonical .bench
	err       error
	hits      int64 // cache hits + in-flight coalescings onto this job

	// trace is the live span tree (every accepted job gets one); traceID
	// is its hex ID, stable for the job's lifetime. traceDoc is the
	// marshaled telemetry.TraceDoc, set when the job reaches a terminal
	// state (or restored from the store after a restart). warned marks
	// that the slow-job watchdog already logged this job.
	trace    *telemetry.Trace
	traceID  string
	traceDoc []byte
	warned   bool
}

// JobView is an immutable snapshot of a Job for JSON responses.
type JobView struct {
	ID       string  `json:"id"`
	Name     string  `json:"name"`
	Status   string  `json:"status"`
	Tier     string  `json:"tier,omitempty"`
	Degraded bool    `json:"degraded,omitempty"`
	DeltaSER float64 `json:"delta_ser"`
	// Hits counts how many submissions this job absorbed beyond the
	// first (cache hits after completion, coalescings before it).
	Hits       int64  `json:"hits"`
	Error      string `json:"error,omitempty"`
	ErrorClass string `json:"error_class,omitempty"`
	QueuedFor  string `json:"queued_for,omitempty"`
	Runtime    string `json:"runtime,omitempty"`
	// TraceID is the job's trace identifier; GET /v1/jobs/{id}/trace
	// returns the span tree it names.
	TraceID string `json:"trace_id,omitempty"`
}

// Config tunes a Server. The zero value is usable: every field has a
// production-safe default applied by New.
type Config struct {
	// QueueDepth bounds the number of accepted-but-unfinished jobs; a
	// full queue answers 429 with a Retry-After hint. Default 64.
	QueueDepth int
	// Workers is the number of concurrent solves. Default GOMAXPROCS.
	Workers int
	// SolveWorkers is the per-solve analysis worker budget threaded to
	// RetimeOptions.Workers (the internal/par pools). Default 1: the
	// queue already provides inter-job parallelism, so intra-job
	// sharding would oversubscribe under load.
	SolveWorkers int
	// Timeout is the default per-attempt solve budget (RobustOptions.
	// Timeout) when a submission doesn't set its own. Default 5m.
	Timeout time.Duration
	// Retries is the default per-tier retry count. Default 0.
	Retries int
	// MaxJobs bounds the retained finished jobs (the cache size);
	// beyond it the oldest finished jobs are evicted. Default 4096.
	MaxJobs int
	// MaxBodyBytes bounds an uploaded netlist. Default 32 MiB.
	MaxBodyBytes int64
	// RetryAfter is the backpressure hint returned with 429 (and with
	// 409 on a not-yet-finished result poll or a busy session). Default 1s.
	RetryAfter time.Duration
	// MaxSessions bounds the warm ECO session table; at capacity the
	// least-recently-used idle session is evicted to admit a new one.
	// Default 32.
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this (lazily, on the
	// next table access). Default 15m; <0 disables expiry.
	SessionTTL time.Duration
	// SlowJob, when positive, arms the slow-job watchdog: any job
	// running longer than this gets its stack-of-spans snapshot logged
	// through Logf (once per job), so a wedged solve names the exact
	// phase it is stuck in. Default 0: off.
	SlowJob time.Duration
	// Recorder receives solver telemetry in addition to the server's own
	// collector (e.g. a telemetry.JSONLWriter for a persistent trace).
	Recorder telemetry.Recorder
	// Store, when set, journals every job lifecycle transition and its
	// payloads so a restarted daemon can restore its cache and re-solve
	// interrupted jobs (call Restore after New). nil runs memory-only.
	Store Store
	// Logf receives operational log lines (store degradation, recovery
	// drops). nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.SolveWorkers == 0 {
		c.SolveWorkers = 1
	}
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 32
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 15 * time.Minute
	}
	return c
}

// Server is the batch-retiming service. Create with New, serve its
// Handler, and call Drain on shutdown.
type Server struct {
	cfg   Config
	col   *telemetry.Collector
	rec   telemetry.Recorder
	lat   *telemetry.ExemplarHistogram
	queue chan *Job
	busy  atomic.Int64 // workers currently inside a solve

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	start   time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // finished-job eviction order (oldest first)
	draining bool
	// phaseLat aggregates per-phase latencies across finished jobs (one
	// exemplared histogram per span name), rendered by /metrics. Guarded
	// by mu; created lazily so zero-value servers in tests stay usable.
	phaseLat map[string]*telemetry.ExemplarHistogram

	// Persistence (guarded by mu). store is nilled on the first write
	// failure: the server degrades to memory-only rather than failing
	// solves.
	store     Store
	storeMode StoreMode
	storeErrs int64
	restored  RestoreSummary

	// Warm ECO sessions (DESIGN.md §17). sessMu guards the table and its
	// counters only — never held across a solve; per-session locks
	// serialize those. sessNonce prefixes every session ID so IDs from a
	// previous boot are answerable with 410 Gone.
	sessMu            sync.Mutex
	sessions          map[string]*session
	sessNonce         string
	sessSeq           int64
	sessOpened        int64
	sessDeltaWarm     int64
	sessDeltaFallback int64
	sessEvicted       map[string]int64
	sessSolve         chan struct{} // solve-slot semaphore (cap Workers)

	// counters (guarded by mu; scraped by /metrics)
	accepted  int64 // jobs enqueued (cache misses)
	rejected  int64 // 429s: queue full
	coalesced int64 // submissions attached to an in-flight identical job
	cacheHits int64 // submissions served from a finished identical job
	completed int64
	failed    int64
	byTier    [4]int64 // completed jobs by serretime.Tier
	byClass   map[string]int64
}

// New builds a Server and starts its worker pool. ctx bounds the whole
// service: cancelling it is equivalent to Drain's cancellation half.
func New(ctx context.Context, cfg Config) *Server {
	cfg = cfg.withDefaults()
	bctx, cancel := context.WithCancel(ctx)
	s := &Server{
		cfg:     cfg,
		col:     telemetry.NewCollector(),
		lat:     telemetry.NewExemplarHistogram(telemetry.LatencyBounds()),
		queue:   make(chan *Job, cfg.QueueDepth),
		baseCtx: bctx,
		cancel:  cancel,
		start:   time.Now(),
		jobs:    make(map[string]*Job),
		byClass: make(map[string]int64),
		store:   cfg.Store,
	}
	if cfg.Store != nil {
		s.storeMode = StoreDisk
	}
	s.initSessions()
	s.rec = telemetry.Tee(s.col, cfg.Recorder)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.SlowJob > 0 {
		s.wg.Add(1)
		go s.watchdog()
	}
	return s
}

// JobKey is the content address of (netlist, options): the hex SHA-256
// of the canonical .bench serialization of the parsed design, a NUL, and
// the canonical option key. Exported so clients (serbench -serve) and
// tests can predict cache behavior.
func JobKey(d *serretime.Design, opt serretime.RobustOptions) (string, error) {
	key, _, err := jobKey(d, opt)
	return key, err
}

// jobKey also returns the canonical .bench bytes the key hashes, so
// Submit can journal the exact payload its identity commits to without
// serializing the design twice.
func jobKey(d *serretime.Design, opt serretime.RobustOptions) (string, []byte, error) {
	var buf bytes.Buffer
	if err := d.WriteBench(&buf); err != nil {
		return "", nil, err
	}
	h := sha256.New()
	h.Write(buf.Bytes())
	h.Write([]byte{0})
	h.Write([]byte(opt.CanonicalKey()))
	return hex.EncodeToString(h.Sum(nil)), buf.Bytes(), nil
}

// Submit registers a parsed design for solving under the given options
// (server defaults are applied to zero Timeout/Retries). It returns the
// job — possibly an existing one — and how the submission was resolved:
//
//	accepted  a fresh job was enqueued
//	coalesced an identical job is already queued or running
//	cached    an identical job already finished; its result is served
//
// A full queue returns ErrQueueFull (HTTP 429 upstream); a draining
// server returns ErrDraining (HTTP 503).
func (s *Server) Submit(d *serretime.Design, opt serretime.RobustOptions) (*Job, Disposition, error) {
	return s.SubmitTrace(d, opt, telemetry.TraceID{})
}

// SubmitTrace is Submit with a caller-supplied trace ID (from a
// Traceparent header); a zero ID mints one. A coalesced or cached
// submission keeps the existing job's trace — the job's identity, and
// therefore its trace, belongs to the first submission.
func (s *Server) SubmitTrace(d *serretime.Design, opt serretime.RobustOptions, traceID telemetry.TraceID) (*Job, Disposition, error) {
	if opt.Timeout == 0 {
		opt.Timeout = s.cfg.Timeout
	}
	if opt.Retries == 0 {
		opt.Retries = s.cfg.Retries
	}
	if opt.Workers == 0 {
		opt.Workers = s.cfg.SolveWorkers
	}
	// The recorder is result-invariant (excluded from CanonicalKey), so
	// the per-job trace recorder set below never fragments the cache key.
	opt.Recorder = s.rec
	key, bench, err := jobKey(d, opt)
	if err != nil {
		return nil, 0, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, 0, ErrDraining
	}
	if j, ok := s.jobs[key]; ok {
		switch j.state {
		case StateQueued, StateRunning:
			j.hits++
			s.coalesced++
			return j, Coalesced, nil
		case StateDone:
			j.hits++
			s.cacheHits++
			return j, Cached, nil
		case StateFailed:
			// A failed job is not a result: drop it and retry below.
			delete(s.jobs, key)
			s.dropFromOrder(key)
		}
	}
	tr := telemetry.NewTrace(traceID)
	tr.Begin("queue-wait")
	opt.Recorder = telemetry.Tee(s.rec, tr)
	j := &Job{
		ID:        key,
		Name:      d.Name(),
		Done:      make(chan struct{}),
		design:    d,
		opts:      opt,
		state:     StateQueued,
		submitted: time.Now(),
		trace:     tr,
		traceID:   tr.ID().String(),
	}
	select {
	case s.queue <- j:
	default:
		s.rejected++
		return nil, 0, ErrQueueFull
	}
	s.jobs[key] = j
	s.accepted++
	s.journal(func(st Store) error {
		return st.JournalSubmitted(key, j.Name, bench, encodeOptions(j.opts), j.opts.CanonicalKey())
	})
	return j, Accepted, nil
}

// Disposition says how Submit resolved a submission.
type Disposition uint8

const (
	// Accepted: a fresh job was enqueued.
	Accepted Disposition = iota
	// Coalesced: attached to an identical in-flight job.
	Coalesced
	// Cached: served from an identical finished job.
	Cached
)

func (d Disposition) String() string {
	switch d {
	case Accepted:
		return "accepted"
	case Coalesced:
		return "coalesced"
	case Cached:
		return "cached"
	}
	return fmt.Sprintf("Disposition(%d)", uint8(d))
}

// Typed service errors; both unwrap to sentinels callers can errors.Is.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity (HTTP 429).
	ErrQueueFull = fmt.Errorf("service: queue full")
	// ErrDraining is returned by Submit once Drain has begun (HTTP 503).
	ErrDraining = fmt.Errorf("service: draining")
)

// Job returns the job with the given ID, if retained.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// View snapshots a job for JSON rendering.
func (s *Server) View(j *Job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := JobView{
		ID:       j.ID,
		Name:     j.Name,
		Status:   j.state.String(),
		DeltaSER: j.deltaSER,
		Hits:     j.hits,
		TraceID:  j.traceID,
	}
	switch j.state {
	case StateQueued:
		v.QueuedFor = time.Since(j.submitted).Round(time.Millisecond).String()
	case StateRunning:
		v.Runtime = time.Since(j.started).Round(time.Millisecond).String()
	case StateDone:
		v.Tier = j.tier.String()
		v.Degraded = j.degraded
		v.Runtime = j.finished.Sub(j.started).Round(time.Millisecond).String()
	case StateFailed:
		v.Error = j.err.Error()
		v.ErrorClass = guard.Classify(j.err)
	}
	return v
}

// Result returns a finished job's retimed netlist (canonical .bench).
func (s *Server) Result(j *Job) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.result, nil
	case StateFailed:
		return nil, j.err
	}
	return nil, fmt.Errorf("service: job %s not finished (%s)", j.ID, j.state)
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

func (s *Server) runJob(j *Job) {
	if err := guard.Checkpoint(s.baseCtx, "service.runJob"); err != nil {
		s.finishJob(j, err)
		return
	}
	s.busy.Add(1)
	defer s.busy.Add(-1)
	s.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	s.journal(func(st Store) error { return st.JournalRunning(j.ID) })
	s.mu.Unlock()
	if j.trace != nil {
		j.trace.End("queue-wait", nil)
		j.trace.Begin("solve")
	}

	res, err := j.design.RetimeRobust(s.baseCtx, j.opts)
	if j.trace != nil {
		j.trace.End("solve", err)
	}
	if err != nil {
		s.finishJob(j, err)
		return
	}
	var buf bytes.Buffer
	if werr := res.Retimed.WriteBench(&buf); werr != nil {
		s.finishJob(j, werr)
		return
	}
	doc := s.finalizeTrace(j, StateDone.String(), res.Tier.String(), res.Degraded)
	s.lat.Observe(time.Since(j.started), traceIDOf(j))
	s.mu.Lock()
	j.state = StateDone
	j.finished = time.Now()
	j.tier = res.Tier
	j.degraded = res.Degraded
	j.deltaSER = res.DeltaSER()
	j.result = buf.Bytes()
	s.completed++
	if int(res.Tier) < len(s.byTier) {
		s.byTier[res.Tier]++
	}
	s.observePhasesLocked(doc, traceIDOf(j))
	s.journal(func(st Store) error {
		return st.JournalDone(j.ID, store.ResultMeta{
			Tier:     int(res.Tier),
			Degraded: res.Degraded,
			DeltaSER: j.deltaSER,
		}, j.result, j.traceDoc)
	})
	s.retainLocked(j.ID)
	s.mu.Unlock()
	close(j.Done)
}

func (s *Server) finishJob(j *Job, err error) {
	doc := s.finalizeTrace(j, StateFailed.String(), "", false)
	s.mu.Lock()
	j.state = StateFailed
	j.finished = time.Now()
	j.err = err
	s.failed++
	s.byClass[guard.Classify(err)]++
	s.observePhasesLocked(doc, traceIDOf(j))
	s.journal(func(st Store) error {
		return st.JournalFailed(j.ID, guard.Classify(err), err.Error())
	})
	s.retainLocked(j.ID)
	s.mu.Unlock()
	close(j.Done)
}

// finalizeTrace force-closes the job's span tree, marshals the persisted
// document into j.traceDoc, and returns it for phase-histogram
// observation. Safe on trace-less jobs (returns nil).
func (s *Server) finalizeTrace(j *Job, status, tier string, degraded bool) *telemetry.TraceDoc {
	if j.trace == nil {
		return nil
	}
	j.trace.Finish()
	doc := j.trace.Doc(j.ID, j.Name, status, tier, degraded)
	j.traceDoc = doc.Encode()
	return doc
}

func traceIDOf(j *Job) telemetry.TraceID {
	if j.trace == nil {
		return telemetry.TraceID{}
	}
	return j.trace.ID()
}

// phaseDepth bounds which spans feed the per-phase /metrics histograms:
// depth 1 is queue-wait/solve, 2 the degradation tiers, 3 the pipeline
// stages. Deeper merged inner-loop spans stay in the trace only.
const phaseDepth = 3

// observePhasesLocked feeds one finished job's span durations into the
// per-phase exemplar histograms. Callers hold s.mu.
func (s *Server) observePhasesLocked(doc *telemetry.TraceDoc, id telemetry.TraceID) {
	if doc == nil || doc.Root == nil {
		return
	}
	if s.phaseLat == nil {
		s.phaseLat = make(map[string]*telemetry.ExemplarHistogram)
	}
	doc.Root.Walk(func(depth int, sp *telemetry.Span) {
		if depth == 0 || depth > phaseDepth {
			return
		}
		h := s.phaseLat[sp.Name]
		if h == nil {
			h = telemetry.NewExemplarHistogram(telemetry.LatencyBounds())
			s.phaseLat[sp.Name] = h
		}
		h.Observe(time.Duration(sp.DurNS), id)
	})
}

// watchdog periodically scans for running jobs older than Config.SlowJob
// and logs each one's open-span stack once, so a wedged solve is
// diagnosable from the daemon log alone.
func (s *Server) watchdog() {
	defer s.wg.Done()
	tick := s.cfg.SlowJob / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > 10*time.Second {
		tick = 10 * time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			var slow []*Job
			now := time.Now()
			s.mu.Lock()
			for _, j := range s.jobs {
				if j.state == StateRunning && !j.warned && now.Sub(j.started) > s.cfg.SlowJob {
					j.warned = true
					slow = append(slow, j)
				}
			}
			s.mu.Unlock()
			for _, j := range slow {
				stack := "(no trace)"
				if j.trace != nil {
					stack = j.trace.StackString()
				}
				s.logf("serretimed: slow job %.12s (%s, trace %s): running %v > %v; spans: %s",
					j.ID, j.Name, j.traceID,
					now.Sub(j.started).Round(time.Millisecond), s.cfg.SlowJob, stack)
			}
		}
	}
}

// retainLocked appends a finished job to the eviction order and evicts
// the oldest finished jobs beyond MaxJobs. Callers hold s.mu.
func (s *Server) retainLocked(id string) {
	s.order = append(s.order, id)
	for len(s.order) > s.cfg.MaxJobs {
		old := s.order[0]
		s.order = s.order[1:]
		delete(s.jobs, old)
		s.journal(func(st Store) error { return st.JournalEvicted(old) })
	}
}

func (s *Server) dropFromOrder(id string) {
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// Drain shuts the service down: new submissions are refused with
// ErrDraining, in-flight solves are cancelled through the base context
// (they fail with errors unwrapping to guard.ErrTimeout), workers exit,
// and every still-queued job is failed. ctx bounds the wait; on expiry
// the workers may still be unwinding. The caller owns flushing any trace
// recorder it passed in Config.Recorder.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// Workers are gone; fail whatever never started.
	for {
		select {
		case j := <-s.queue:
			s.finishJob(j, fmt.Errorf("service: job %s cancelled by drain: %w", j.ID, ErrDraining))
		default:
			s.mu.Lock()
			st := s.store
			s.store = nil
			s.mu.Unlock()
			if st != nil {
				return st.Close()
			}
			return nil
		}
	}
}

// TraceJSON returns a job's span tree as a marshaled telemetry.TraceDoc:
// the persisted document for a finished (or restored) job, or a live
// snapshot — open spans annotated with their elapsed time — for one
// still queued or running. nil means the job has no trace (restored
// from a store written before tracing existed).
func (s *Server) TraceJSON(j *Job) []byte {
	s.mu.Lock()
	doc := j.traceDoc
	tr := j.trace
	st := j.state
	tier := j.tier
	s.mu.Unlock()
	if len(doc) > 0 {
		return doc
	}
	if tr == nil {
		return nil
	}
	tierName := ""
	if st == StateDone {
		tierName = tier.String()
	}
	return tr.Doc(j.ID, j.Name, st.String(), tierName, false).Encode()
}

// InFlightJob is one row of the /debug/jobs live view.
type InFlightJob struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Status  string `json:"status"`
	TraceID string `json:"trace_id,omitempty"`
	// Age is the time since submission; QueueWait the time spent (or
	// being spent) waiting for a worker; Running the time inside the
	// solve so far (running jobs only).
	Age       string `json:"age"`
	QueueWait string `json:"queue_wait"`
	Running   string `json:"running,omitempty"`
	// Phase is the innermost open span ("minimize", "par:sim.run", ...);
	// Spans is the full open-span stack with per-span elapsed times.
	Phase string `json:"phase,omitempty"`
	Spans string `json:"spans,omitempty"`
	Hits  int64  `json:"hits"`
}

// InFlight snapshots every queued or running job, oldest first, plus the
// worker pool's instantaneous utilization — the data behind /debug/jobs.
func (s *Server) InFlight() (jobs []InFlightJob, busyWorkers, totalWorkers int) {
	now := time.Now()
	s.mu.Lock()
	live := make([]*Job, 0, 8)
	for _, j := range s.jobs {
		if j.state == StateQueued || j.state == StateRunning {
			live = append(live, j)
		}
	}
	sort.Slice(live, func(i, k int) bool { return live[i].submitted.Before(live[k].submitted) })
	rows := make([]InFlightJob, 0, len(live))
	for _, j := range live {
		row := InFlightJob{
			ID:      j.ID,
			Name:    j.Name,
			Status:  j.state.String(),
			TraceID: j.traceID,
			Age:     now.Sub(j.submitted).Round(time.Millisecond).String(),
			Hits:    j.hits,
		}
		switch j.state {
		case StateQueued:
			row.QueueWait = now.Sub(j.submitted).Round(time.Millisecond).String()
		case StateRunning:
			row.QueueWait = j.started.Sub(j.submitted).Round(time.Millisecond).String()
			row.Running = now.Sub(j.started).Round(time.Millisecond).String()
		}
		if j.trace != nil {
			if path := j.trace.CurrentPath(); len(path) > 0 {
				row.Phase = path[len(path)-1]
			}
			row.Spans = j.trace.StackString()
		}
		rows = append(rows, row)
	}
	s.mu.Unlock()
	return rows, int(s.busy.Load()), s.cfg.Workers
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth returns the number of queued-but-unstarted jobs and the
// queue capacity.
func (s *Server) QueueDepth() (depth, capacity int) {
	return len(s.queue), cap(s.queue)
}
