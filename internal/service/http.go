package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"mime/multipart"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"serretime"
	"serretime/internal/guard"
	"serretime/internal/telemetry"
)

// Handler returns the service's HTTP front end:
//
//	POST   /v1/retime                submit a netlist (raw or multipart body)
//	GET    /v1/jobs/{id}             job status
//	GET    /v1/jobs/{id}/result      retimed netlist download
//	GET    /v1/jobs/{id}/trace       the job's span tree (telemetry.TraceDoc)
//	POST   /v1/sessions              open a warm ECO session (netlist + options)
//	POST   /v1/sessions/{id}/delta   apply a netlist delta, re-solve incrementally
//	GET    /v1/sessions/{id}         session status
//	GET    /v1/sessions/{id}/result  the session's committed retimed netlist
//	DELETE /v1/sessions/{id}         close a session
//	GET    /debug/jobs               live view of in-flight jobs + sessions
//	GET    /healthz                  liveness + queue depth + build info
//	GET    /metrics                  Prometheus-style metrics (with exemplars)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/retime", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionOpen)
	mux.HandleFunc("POST /v1/sessions/{id}/delta", s.handleSessionDelta)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleSessionResult)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionClose)
	mux.HandleFunc("GET /debug/jobs", s.handleDebugJobs)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// submitResponse is the POST /v1/retime reply.
type submitResponse struct {
	JobView
	// Disposition is "accepted", "coalesced" or "cached".
	Disposition string `json:"disposition"`
}

type errorResponse struct {
	Error string `json:"error"`
	Class string `json:"class,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// retryAfterHeader sets the configured backpressure hint. Every
// "come back later" response goes through here, so the hint a client
// sees is always Config.RetryAfter — never a hardcoded constant.
func (s *Server) retryAfterHeader(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrSessionsFull), errors.Is(err, ErrSolversBusy):
		s.retryAfterHeader(w)
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrSessionBusy):
		s.retryAfterHeader(w)
		status = http.StatusConflict
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, guard.ErrParse):
		status = http.StatusBadRequest
	case errors.Is(err, guard.ErrInfeasible):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, guard.ErrTimeout):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), Class: guard.Classify(err)})
}

// handleSubmit accepts a netlist as a raw request body (the filename —
// which selects the format — comes from the "name" query parameter,
// default circuit.bench) or as the first file of a multipart form
// (preferred field "netlist"; the part's filename selects the format).
// Solve options come from query parameters; see optionsFromQuery. A
// Traceparent request header (W3C form, or a bare 32-hex trace ID)
// names the job's trace; without one the server mints an ID. The
// response echoes the job's trace ID in X-Trace-Id and the JSON body.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	opt, err := optionsFromQuery(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	traceID, _ := telemetry.ParseTraceparent(r.Header.Get("Traceparent"))
	body, name, err := s.readNetlist(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	d, err := serretime.Parse(body, name)
	body.Close()
	if err != nil {
		s.writeError(w, err)
		return
	}
	j, disp, err := s.SubmitTrace(d, opt, traceID)
	if err != nil {
		s.writeError(w, err)
		return
	}
	status := http.StatusAccepted
	if disp == Cached {
		status = http.StatusOK
	}
	view := s.View(j)
	if view.TraceID != "" {
		w.Header().Set("X-Trace-Id", view.TraceID)
	}
	writeJSON(w, status, submitResponse{JobView: view, Disposition: disp.String()})
}

// handleTrace serves a job's span tree: the persisted document for a
// finished job (identical across restarts), a live snapshot otherwise.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	doc := s.TraceJSON(j)
	if len(doc) == 0 {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "job has no trace"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(doc)
}

// debugJobsResponse is the GET /debug/jobs live view.
type debugJobsResponse struct {
	Now           string        `json:"now"`
	Uptime        string        `json:"uptime"`
	Workers       int           `json:"workers"`
	BusyWorkers   int           `json:"busy_workers"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	InFlight      []InFlightJob `json:"in_flight"`
	Completed     int64         `json:"completed"`
	Failed        int64         `json:"failed"`
	// Sessions lists the open warm ECO sessions, oldest ID first.
	Sessions []SessionView `json:"sessions"`
}

func (s *Server) handleDebugJobs(w http.ResponseWriter, _ *http.Request) {
	rows, busy, workers := s.InFlight()
	depth, capa := s.QueueDepth()
	s.mu.Lock()
	completed, failed := s.completed, s.failed
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, debugJobsResponse{
		Now:           time.Now().UTC().Format(time.RFC3339),
		Uptime:        time.Since(s.start).Round(time.Second).String(),
		Workers:       workers,
		BusyWorkers:   busy,
		QueueDepth:    depth,
		QueueCapacity: capa,
		InFlight:      rows,
		Completed:     completed,
		Failed:        failed,
		Sessions:      s.Sessions(),
	})
}

// readNetlist extracts the netlist stream and its format-carrying name
// from the request. The caller closes the returned reader.
func (s *Server) readNetlist(r *http.Request) (io.ReadCloser, string, error) {
	limited := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	mt, params, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mt != "multipart/form-data" {
		name := r.URL.Query().Get("name")
		if name == "" {
			name = "circuit.bench"
		}
		return limited, name, nil
	}
	boundary := params["boundary"]
	if boundary == "" {
		return nil, "", guard.Optionf("service.submit", "Content-Type", "multipart form without boundary")
	}
	mr := multipart.NewReader(limited, boundary)
	var first *multipart.Part
	for {
		p, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, "", guard.Optionf("service.submit", "body", "bad multipart form: %v", err)
		}
		if p.FileName() == "" {
			continue
		}
		if p.FormName() == "netlist" {
			return p, p.FileName(), nil
		}
		if first == nil {
			first = p
		}
	}
	if first != nil {
		return first, first.FileName(), nil
	}
	return nil, "", guard.Optionf("service.submit", "body", "multipart form has no file part")
}

// optionsFromQuery builds the solve options from query parameters:
//
//	algorithm    minobswin (default) | minobs | minarea
//	engine       closure (default) | forest
//	epsilon      clock-period relaxation ε (float)
//	frames       time-frame expansion depth n
//	words        signature width in 64-bit words
//	seed         simulation seed
//	maxintervals per-gate ELW interval cap
//	stallsteps   optimizer stall watchdog
//	timeout      per-attempt budget (Go duration; server default applies
//	             when absent)
//	retries      per-tier retry count
//	verify       co-simulate the retiming against the input (boolean);
//	             result-invariant, so it does not fragment the cache key
//	accuracy     exact (default) | fast — observability engine tier; fast
//	             is the analytical propagation-probability estimate
//
// Unknown values fail with typed errors unwrapping to guard.ErrParse;
// non-finite floats are rejected here so a NaN never reaches the hashing
// or caching layers. Unknown parameter NAMES are rejected too: a typo
// like acuracy=fast must not silently fall back to the expensive exact
// path the caller was trying to avoid.
func optionsFromQuery(r *http.Request) (serretime.RobustOptions, error) {
	q := r.URL.Query()
	var opt serretime.RobustOptions
	var unknown []string
	for k := range q {
		switch k {
		case "algorithm", "engine", "epsilon", "frames", "words", "seed",
			"maxintervals", "stallsteps", "timeout", "retries", "verify",
			"accuracy", "name":
		default:
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return opt, guard.Optionf("service.submit", unknown[0],
			"unknown query parameter %q (known: accuracy, algorithm, engine, epsilon, frames, maxintervals, name, retries, seed, stallsteps, timeout, verify, words)", unknown[0])
	}
	acc, err := serretime.ParseAccuracy("service.submit", q.Get("accuracy"))
	if err != nil {
		return opt, err
	}
	opt.Analysis.Accuracy = acc
	switch alg := q.Get("algorithm"); alg {
	case "", "minobswin":
		opt.Algorithm = serretime.MinObsWin
	case "minobs":
		opt.Algorithm = serretime.MinObs
	case "minarea":
		opt.Algorithm = serretime.MinArea
	default:
		return opt, guard.Optionf("service.submit", "algorithm", "unknown algorithm %q", alg)
	}
	switch eng := q.Get("engine"); eng {
	case "", "closure":
		opt.Engine = serretime.EngineClosure
	case "forest":
		opt.Engine = serretime.EngineForest
	default:
		return opt, guard.Optionf("service.submit", "engine", "unknown engine %q", eng)
	}
	for _, f := range []struct {
		name string
		dst  *float64
	}{
		{"epsilon", &opt.Epsilon},
	} {
		v := q.Get(f.name)
		if v == "" {
			continue
		}
		x, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(x) || math.IsInf(x, 0) {
			return opt, guard.Optionf("service.submit", f.name, "want a finite float, got %q", v)
		}
		*f.dst = x
	}
	for _, f := range []struct {
		name string
		dst  *int
	}{
		{"frames", &opt.Analysis.Frames},
		{"words", &opt.Analysis.SignatureWords},
		{"maxintervals", &opt.Analysis.MaxIntervals},
		{"stallsteps", &opt.StallSteps},
		{"retries", &opt.Retries},
	} {
		v := q.Get(f.name)
		if v == "" {
			continue
		}
		x, err := strconv.Atoi(v)
		if err != nil || x < 0 {
			return opt, guard.Optionf("service.submit", f.name, "want a non-negative integer, got %q", v)
		}
		*f.dst = x
	}
	if v := q.Get("seed"); v != "" {
		x, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return opt, guard.Optionf("service.submit", "seed", "want an integer, got %q", v)
		}
		opt.Analysis.Seed = x
	}
	if v := q.Get("verify"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return opt, guard.Optionf("service.submit", "verify", "want a boolean, got %q", v)
		}
		opt.Verify = b
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return opt, guard.Optionf("service.submit", "timeout", "want a non-negative duration, got %q", v)
		}
		opt.Timeout = d
	}
	return opt, nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, s.View(j))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	res, err := s.Result(j)
	if err != nil {
		if v := s.View(j); v.Status == StateQueued.String() || v.Status == StateRunning.String() {
			s.retryAfterHeader(w)
			writeJSON(w, http.StatusConflict, errorResponse{Error: fmt.Sprintf("job %s: %s", j.ID, v.Status)})
			return
		}
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", j.Name+"_retimed.bench"))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(res)
}

type healthResponse struct {
	Status        string `json:"status"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Workers       int    `json:"workers"`
	BusyWorkers   int    `json:"busy_workers"`
	Uptime        string `json:"uptime"`
	// Build identity, so fleet dashboards can tell nodes apart: the Go
	// toolchain, the module version, and the VCS revision when the
	// binary carries them (runtime/debug.ReadBuildInfo).
	GoVersion  string `json:"go_version,omitempty"`
	Version    string `json:"version,omitempty"`
	Revision   string `json:"revision,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// StoreMode is "memory" (no store configured), "disk" (journaling),
	// or "memory-degraded" (a store write failed; persistence is off but
	// the service keeps solving).
	StoreMode string `json:"store_mode"`
	// StoreErrors counts failed store writes (nonzero implies a past or
	// present degradation).
	StoreErrors int64 `json:"store_errors,omitempty"`
	// Recovery counters from the boot-time WAL replay.
	RecoveredFinished int  `json:"recovered_finished,omitempty"`
	RecoveredRequeued int  `json:"recovered_requeued,omitempty"`
	RecoveredDropped  int  `json:"recovered_dropped,omitempty"`
	Quarantined       int  `json:"quarantined,omitempty"`
	WALCorruptRecords int  `json:"wal_corrupt_records,omitempty"`
	WALTruncatedTail  bool `json:"wal_truncated_tail,omitempty"`
}

// buildIdentity reads the binary's build info once: go version, module
// version, and VCS revision (short). Absent fields stay empty (tests,
// stripped builds).
var buildIdentity = sync.OnceValues(func() (struct{ Go, Version, Revision string }, error) {
	var id struct{ Go, Version, Revision string }
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return id, nil
	}
	id.Go = info.GoVersion
	if info.Main.Version != "" && info.Main.Version != "(devel)" {
		id.Version = info.Main.Version
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" && len(kv.Value) >= 12 {
			id.Revision = kv.Value[:12]
		}
	}
	return id, nil
})

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	depth, capa := s.QueueDepth()
	mode, errs, restored := s.StoreStatus()
	build, _ := buildIdentity()
	writeJSON(w, code, healthResponse{
		Status:            status,
		QueueDepth:        depth,
		QueueCapacity:     capa,
		Workers:           s.cfg.Workers,
		BusyWorkers:       int(s.busy.Load()),
		GoVersion:         build.Go,
		Version:           build.Version,
		Revision:          build.Revision,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Uptime:            time.Since(s.start).Round(time.Second).String(),
		StoreMode:         mode.String(),
		StoreErrors:       errs,
		RecoveredFinished: restored.Finished,
		RecoveredRequeued: restored.Requeued,
		RecoveredDropped:  restored.Dropped,
		Quarantined:       restored.Quarantined,
		WALCorruptRecords: restored.CorruptRecords,
		WALTruncatedTail:  restored.TruncatedTail,
	})
}
