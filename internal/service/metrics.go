package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"serretime"
	"serretime/internal/telemetry"
)

// handleMetrics renders the service state in the Prometheus text
// exposition format: queue and cache gauges, job dispositions, per-tier
// and per-error-class outcome counts, the solve-latency histogram, and
// the shared telemetry.Collector's phase durations, counters and gauges
// (so the solver's own observability — label-patch hit ratios, worker
// pool utilization, violation counts — is scrapeable without a trace
// file).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder

	s.mu.Lock()
	accepted, rejected, coalesced, hits := s.accepted, s.rejected, s.coalesced, s.cacheHits
	completed, failed := s.completed, s.failed
	byTier := s.byTier
	byClass := make(map[string]int64, len(s.byClass))
	for k, v := range s.byClass {
		byClass[k] = v
	}
	entries := len(s.jobs)
	s.mu.Unlock()

	gauge := func(name string, v any, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name string, v any, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}

	depth, capa := s.QueueDepth()
	gauge("serretimed_uptime_seconds", int64(time.Since(s.start).Seconds()), "seconds since the service started")
	gauge("serretimed_queue_depth", depth, "jobs accepted but not yet picked up by a worker")
	gauge("serretimed_queue_capacity", capa, "bound of the job queue (submissions beyond it get 429)")
	gauge("serretimed_workers", s.cfg.Workers, "concurrent solve workers")

	counter("serretimed_jobs_accepted_total", accepted, "fresh jobs enqueued")
	counter("serretimed_jobs_rejected_total", rejected, "submissions refused with 429 (queue full)")
	counter("serretimed_jobs_coalesced_total", coalesced, "submissions attached to an identical in-flight job")
	counter("serretimed_jobs_completed_total", completed, "jobs finished with a result")
	counter("serretimed_jobs_failed_total", failed, "jobs finished with an error")

	fmt.Fprintf(&b, "# HELP serretimed_jobs_by_tier_total completed jobs by degradation tier\n# TYPE serretimed_jobs_by_tier_total counter\n")
	for t := serretime.TierMinObsWin; t <= serretime.TierIdentity; t++ {
		fmt.Fprintf(&b, "serretimed_jobs_by_tier_total{tier=%q} %d\n", t.String(), byTier[t])
	}
	if len(byClass) > 0 {
		fmt.Fprintf(&b, "# HELP serretimed_jobs_failed_by_class_total failed jobs by guard error class\n# TYPE serretimed_jobs_failed_by_class_total counter\n")
		classes := make([]string, 0, len(byClass))
		for c := range byClass {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			fmt.Fprintf(&b, "serretimed_jobs_failed_by_class_total{class=%q} %d\n", c, byClass[c])
		}
	}

	// Persistence state: mode as one-hot labeled gauge (Prometheus
	// convention for enums), plus recovery and degradation counters.
	mode, storeErrs, restored := s.StoreStatus()
	fmt.Fprintf(&b, "# HELP serretimed_store_mode persistence mode (one-hot: memory, disk, memory-degraded)\n# TYPE serretimed_store_mode gauge\n")
	for _, m := range []StoreMode{StoreMemory, StoreDisk, StoreDegraded} {
		v := 0
		if m == mode {
			v = 1
		}
		fmt.Fprintf(&b, "serretimed_store_mode{mode=%q} %d\n", m.String(), v)
	}
	counter("serretimed_store_errors_total", storeErrs, "failed store writes (first one degrades the service to memory-only)")
	fmt.Fprintf(&b, "# HELP serretimed_store_recovered_jobs_total jobs restored by the boot-time WAL replay\n# TYPE serretimed_store_recovered_jobs_total counter\n")
	fmt.Fprintf(&b, "serretimed_store_recovered_jobs_total{kind=\"finished\"} %d\n", restored.Finished)
	fmt.Fprintf(&b, "serretimed_store_recovered_jobs_total{kind=\"requeued\"} %d\n", restored.Requeued)
	fmt.Fprintf(&b, "serretimed_store_recovered_jobs_total{kind=\"dropped\"} %d\n", restored.Dropped)
	counter("serretimed_store_quarantined_total", restored.Quarantined, "payloads whose checksum did not match the journal (moved aside, never served)")
	counter("serretimed_store_wal_corrupt_records_total", restored.CorruptRecords, "WAL records before the tail that failed CRC or decode")

	// Warm ECO sessions.
	sessOpen, sessOpened, sessWarm, sessFallback, sessEvicted := s.sessionStats()
	gauge("serretimed_sessions_open", sessOpen, "warm ECO sessions currently resident")
	counter("serretimed_sessions_opened_total", sessOpened, "ECO sessions opened")
	if len(sessEvicted) > 0 {
		fmt.Fprintf(&b, "# HELP serretimed_sessions_evicted_total sessions removed, by reason (lru, ttl, closed)\n# TYPE serretimed_sessions_evicted_total counter\n")
		reasons := make([]string, 0, len(sessEvicted))
		for r := range sessEvicted {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Fprintf(&b, "serretimed_sessions_evicted_total{reason=%q} %d\n", r, sessEvicted[r])
		}
	}
	fmt.Fprintf(&b, "# HELP serretimed_session_deltas_total session deltas by solve path\n# TYPE serretimed_session_deltas_total counter\n")
	fmt.Fprintf(&b, "serretimed_session_deltas_total{path=\"warm\"} %d\n", sessWarm)
	fmt.Fprintf(&b, "serretimed_session_deltas_total{path=\"fallback\"} %d\n", sessFallback)

	counter("serretimed_cache_hits_total", hits, "submissions served from a finished identical job")
	counter("serretimed_cache_misses_total", accepted+rejected, "submissions that found no identical live job")
	gauge("serretimed_cache_entries", entries, "retained jobs (the content-addressed cache size)")
	ratio := 0.0
	if total := hits + coalesced + accepted + rejected; total > 0 {
		ratio = float64(hits+coalesced) / float64(total)
	}
	gauge("serretimed_cache_hit_ratio", fmt.Sprintf("%.6f", ratio), "fraction of submissions that avoided a fresh solve")

	// Solve latency histogram (successful solves only), cumulative
	// Prometheus buckets with OpenMetrics exemplars: each bucket carries
	// the trace ID of the latest job that landed in it, so an operator
	// can jump from a p99 bucket to `GET /v1/jobs/{id}/trace`.
	snap, exemplars := s.lat.Snapshot()
	fmt.Fprintf(&b, "# HELP serretimed_solve_seconds wall time of successful solves\n# TYPE serretimed_solve_seconds histogram\n")
	writeHistogram(&b, "serretimed_solve_seconds", "", snap, exemplars)

	// Per-phase latency histograms across finished jobs: queue-wait and
	// solve (depth 1), degradation tiers (depth 2), pipeline stages
	// (depth 3), each bucket with its exemplar trace ID.
	s.mu.Lock()
	phases := make([]string, 0, len(s.phaseLat))
	for name := range s.phaseLat {
		phases = append(phases, name)
	}
	sort.Strings(phases)
	phaseHists := make([]*telemetry.ExemplarHistogram, len(phases))
	for i, name := range phases {
		phaseHists[i] = s.phaseLat[name]
	}
	s.mu.Unlock()
	if len(phases) > 0 {
		fmt.Fprintf(&b, "# HELP serretimed_phase_seconds per-job span durations by phase (queue-wait, solve, tiers, pipeline stages)\n# TYPE serretimed_phase_seconds histogram\n")
		for i, name := range phases {
			psnap, pex := phaseHists[i].Snapshot()
			writeHistogram(&b, "serretimed_phase_seconds", fmt.Sprintf("phase=%q", name), psnap, pex)
		}
	}

	// Solver-internal telemetry from the shared collector.
	stats := s.col.Stats()
	fmt.Fprintf(&b, "# HELP serretimed_solver_phase_seconds_total summed span durations per solver phase\n# TYPE serretimed_solver_phase_seconds_total counter\n")
	for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
		if ps := stats.Phases[p]; ps.Count > 0 {
			fmt.Fprintf(&b, "serretimed_solver_phase_seconds_total{phase=%q} %.6f\n", p.String(), ps.Total.Seconds())
		}
	}
	fmt.Fprintf(&b, "# HELP serretimed_solver_phase_spans_total completed spans per solver phase\n# TYPE serretimed_solver_phase_spans_total counter\n")
	for p := telemetry.Phase(0); p < telemetry.NumPhases; p++ {
		if ps := stats.Phases[p]; ps.Count > 0 {
			fmt.Fprintf(&b, "serretimed_solver_phase_spans_total{phase=%q} %d\n", p.String(), ps.Count)
		}
	}
	fmt.Fprintf(&b, "# HELP serretimed_solver_events_total solver counters (see internal/telemetry)\n# TYPE serretimed_solver_events_total counter\n")
	for c := telemetry.Counter(0); c < telemetry.NumCounters; c++ {
		if v := stats.Counters[c]; v != 0 {
			fmt.Fprintf(&b, "serretimed_solver_events_total{counter=%q} %d\n", c.String(), v)
		}
	}
	for g := telemetry.Gauge(0); g < telemetry.NumGauges; g++ {
		if v := stats.Gauges[g]; v != 0 {
			fmt.Fprintf(&b, "serretimed_solver_gauge_max{gauge=%q} %d\n", g.String(), v)
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}

// writeHistogram renders one histogram family member: cumulative
// buckets (extra labels like `phase="solve"` merged into each line),
// each bucket annotated with its exemplar in OpenMetrics syntax
// (`# {trace_id="..."} value timestamp`) when a traced observation hit
// it.
func writeHistogram(b *strings.Builder, name, labels string, snap telemetry.HistogramSnapshot, exemplars []telemetry.Exemplar) {
	bucketLabels := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s,le=%q}", labels, le)
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	writeBucket := func(le string, cum int64, i int) {
		fmt.Fprintf(b, "%s_bucket%s %d", name, bucketLabels(le), cum)
		if i < len(exemplars) && exemplars[i].TraceID != "" {
			ex := exemplars[i]
			fmt.Fprintf(b, " # {trace_id=%q} %.6f %.3f",
				ex.TraceID, ex.Value.Seconds(), float64(ex.When.UnixMilli())/1000)
		}
		b.WriteByte('\n')
	}
	var cum int64
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		writeBucket(formatSeconds(bound), cum, i)
	}
	cum += snap.Counts[len(snap.Counts)-1]
	writeBucket("+Inf", cum, len(snap.Counts)-1)
	fmt.Fprintf(b, "%s_sum%s %.6f\n", name, suffix, snap.Sum.Seconds())
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, snap.Count)
}

// formatSeconds renders a bucket bound as seconds with no trailing
// zeros (Prometheus le label convention).
func formatSeconds(d time.Duration) string {
	s := fmt.Sprintf("%g", d.Seconds())
	return s
}
