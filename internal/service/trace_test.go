package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"serretime/internal/telemetry"
)

// TestTraceEndToEndHTTP submits a job with a client Traceparent header
// and checks the acceptance contract: the server adopts the client's
// trace ID, echoes it in X-Trace-Id, and GET /v1/jobs/{id}/trace returns
// a span tree covering queue wait, at least one robust tier, and at
// least one parallel shard phase — with the default SolveWorkers=1.
func TestTraceEndToEndHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Timeout: time.Minute})
	body := benchBytes(t, tableIDesign(t, "b14_1_opt", 100))

	want := telemetry.NewTraceID()
	req, err := http.NewRequest("POST", ts.URL+"/v1/retime", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Traceparent", "00-"+want.String()+"-0000000000000001-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var msg submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != want.String() {
		t.Fatalf("X-Trace-Id = %q, want adopted %q", got, want)
	}
	if msg.TraceID != want.String() {
		t.Fatalf("body trace_id = %q, want %q", msg.TraceID, want)
	}

	v := pollDone(t, ts.URL, msg.ID)
	if v.Status != StateDone.String() {
		t.Fatalf("job finished %q: %s", v.Status, v.Error)
	}

	data, r := fetchBody(t, ts.URL+"/v1/jobs/"+msg.ID+"/trace")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: HTTP %d: %.200s", r.StatusCode, data)
	}
	doc, err := telemetry.DecodeTraceDoc(data)
	if err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != want.String() || doc.JobID != msg.ID || doc.Status != "done" {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Root.Find("queue-wait") == nil || doc.Root.Find("solve") == nil {
		t.Fatalf("trace lacks queue-wait/solve spans: %s", data)
	}
	var tiers, shards int
	doc.Root.Walk(func(_ int, sp *telemetry.Span) {
		if strings.HasPrefix(sp.Name, "tier:") {
			tiers++
		}
		if strings.HasPrefix(sp.Name, "par:") {
			shards++
		}
		if sp.Open {
			t.Errorf("finished trace has open span %q", sp.Name)
		}
	})
	if tiers == 0 || shards == 0 {
		t.Fatalf("trace has %d tier and %d shard spans, want both > 0:\n%.600s", tiers, shards, data)
	}

	// Unknown job and a job without the trace suffix still behave.
	if _, r := fetchBody(t, ts.URL+"/v1/jobs/nope/trace"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace: HTTP %d", r.StatusCode)
	}
}

// TestTraceMintedWithoutTraceparent checks ingress mints an ID when the
// client sends none.
func TestTraceMintedWithoutTraceparent(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Timeout: time.Minute})
	body := benchBytes(t, tableIDesign(t, "b14_1_opt", 20))
	resp, err := http.Post(ts.URL+"/v1/retime", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	id := resp.Header.Get("X-Trace-Id")
	if _, ok := telemetry.ParseTraceID(id); !ok {
		t.Fatalf("minted X-Trace-Id = %q, want 32 hex", id)
	}
}

// TestTraceObservability checks the read-side surfaces after a finished
// job: /metrics carries the per-phase histogram family with exemplar
// trace IDs, /debug/jobs parses with worker/queue numbers, and /healthz
// reports build identity.
func TestTraceObservability(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Timeout: time.Minute})
	body := benchBytes(t, tableIDesign(t, "b14_1_opt", 30))
	msg, _ := postNetlist(t, ts.URL+"/v1/retime", body)
	pollDone(t, ts.URL, msg.ID)

	metrics, _ := fetchBody(t, ts.URL+"/metrics")
	m := string(metrics)
	for _, want := range []string{
		`serretimed_phase_seconds_bucket{phase="solve",`,
		`serretimed_phase_seconds_bucket{phase="queue-wait",`,
		`serretimed_phase_seconds_count{phase="solve"}`,
		"# {trace_id=\"" + msg.TraceID + "\"}",
		"serretimed_solve_seconds_bucket",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	data, r := fetchBody(t, ts.URL+"/debug/jobs")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/debug/jobs: HTTP %d", r.StatusCode)
	}
	var dbg debugJobsResponse
	if err := json.Unmarshal(data, &dbg); err != nil {
		t.Fatalf("/debug/jobs unparsable: %v\n%.300s", err, data)
	}
	if dbg.Workers != 1 || dbg.Completed != 1 || dbg.QueueCapacity == 0 {
		t.Fatalf("/debug/jobs = %+v", dbg)
	}
	if len(dbg.InFlight) != 0 {
		t.Fatalf("idle server reports in-flight jobs: %+v", dbg.InFlight)
	}

	data, _ = fetchBody(t, ts.URL+"/healthz")
	var h healthResponse
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.GoVersion == "" || h.GOMAXPROCS < 1 || h.Uptime == "" {
		t.Fatalf("/healthz build identity = %+v", h)
	}
}

// TestDebugJobsShowsRunning checks the live view's row contents and
// ordering. Real solves finish in milliseconds at test scales, so the
// test plants a queued and a running job directly (same package) and
// reads them back through the HTTP endpoint.
func TestDebugJobsShowsRunning(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Timeout: time.Minute})

	mkJob := func(id, name string, st JobState, age time.Duration) *Job {
		tr := telemetry.NewTrace(telemetry.TraceID{})
		tr.Begin("queue-wait")
		j := &Job{
			ID: id, Name: name, Done: make(chan struct{}),
			state: st, submitted: time.Now().Add(-age),
			trace: tr, traceID: tr.ID().String(),
		}
		if st == StateRunning {
			tr.End("queue-wait", nil)
			tr.Begin("solve")
			tr.SpanStart(telemetry.PhaseMinimize)
			j.started = time.Now().Add(-age / 2)
		}
		return j
	}
	older := mkJob("job-running", "r1", StateRunning, time.Minute)
	newer := mkJob("job-queued", "q1", StateQueued, time.Second)
	s.mu.Lock()
	s.jobs[older.ID] = older
	s.jobs[newer.ID] = newer
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.jobs, older.ID)
		delete(s.jobs, newer.ID)
		s.mu.Unlock()
	}()

	data, r := fetchBody(t, ts.URL+"/debug/jobs")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/debug/jobs: HTTP %d", r.StatusCode)
	}
	var dbg debugJobsResponse
	if err := json.Unmarshal(data, &dbg); err != nil {
		t.Fatalf("unparsable: %v\n%.300s", err, data)
	}
	if len(dbg.InFlight) != 2 {
		t.Fatalf("%d in-flight rows, want 2: %s", len(dbg.InFlight), data)
	}
	run, q := dbg.InFlight[0], dbg.InFlight[1]
	if run.ID != older.ID || q.ID != newer.ID {
		t.Fatalf("rows not oldest-first: %s then %s", run.ID, q.ID)
	}
	if run.Status != "running" || run.TraceID != older.traceID ||
		run.Phase != "minimize" || !strings.Contains(run.Spans, "solve(") ||
		run.Running == "" || run.QueueWait == "" {
		t.Fatalf("running row = %+v", run)
	}
	if q.Status != "queued" || q.Phase != "queue-wait" || q.QueueWait == "" {
		t.Fatalf("queued row = %+v", q)
	}
}

// TestTraceSurvivesRestart solves on a store-backed server, restarts it
// on the same directory, and demands the persisted span tree is still
// servable — with the original trace ID and its tier spans intact.
func TestTraceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	d := tableIDesign(t, "b14_1_opt", 100)
	want := telemetry.NewTraceID()

	diskA, jobs, st := openStore(t, dir)
	a := New(context.Background(), Config{Workers: 1, Timeout: time.Minute, Store: diskA})
	a.Restore(jobs, st)
	j, disp, err := a.SubmitTrace(d, fastOpts(), want)
	if err != nil || disp != Accepted {
		t.Fatalf("submit: %v, %v", disp, err)
	}
	<-j.Done
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.Drain(dctx); err != nil {
		t.Fatal(err)
	}

	diskB, jobs, st := openStore(t, dir)
	b := New(context.Background(), Config{Workers: 1, Timeout: time.Minute, Store: diskB})
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = b.Drain(dctx)
	}()
	if sum := b.Restore(jobs, st); sum.Finished != 1 {
		t.Fatalf("restore summary: %+v", sum)
	}

	j2, ok := b.Job(j.ID)
	if !ok {
		t.Fatal("restored server lost the job")
	}
	raw := b.TraceJSON(j2)
	if len(raw) == 0 {
		t.Fatal("restored job has no trace document")
	}
	doc, err := telemetry.DecodeTraceDoc(raw)
	if err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != want.String() {
		t.Fatalf("restored trace ID = %s, want %s", doc.TraceID, want)
	}
	if doc.Root.Find("solve") == nil {
		t.Fatalf("restored trace lost its solve span: %.300s", raw)
	}
	if v := b.View(j2); v.TraceID != want.String() {
		t.Fatalf("restored view trace ID = %q", v.TraceID)
	}
}

// TestWatchdogLogsSlowJob plants a long-running job and checks the
// watchdog logs its open-span stack exactly once.
func TestWatchdogLogsSlowJob(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	cfg := Config{
		Workers: 1,
		SlowJob: 20 * time.Millisecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	}
	s := New(context.Background(), cfg)
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(dctx)
	}()

	// Plant a running job old enough to trip the deadline, with a live
	// open-span stack — the shape a wedged solve leaves behind.
	tr := telemetry.NewTrace(telemetry.TraceID{})
	tr.Begin("solve")
	tr.SpanStart(telemetry.PhaseTierMinObsWin)
	j := &Job{
		ID:      "deadbeefdeadbeef",
		Name:    "wedged",
		Done:    make(chan struct{}),
		state:   StateRunning,
		started: time.Now().Add(-time.Minute),
		trace:   tr,
		traceID: tr.ID().String(),
	}
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.mu.Unlock()

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(lines)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdog never logged the slow job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	line := lines[0]
	mu.Unlock()
	for _, want := range []string{"slow job", "wedged", tr.ID().String(), "solve(", "tier:minobswin("} {
		if !strings.Contains(line, want) {
			t.Fatalf("watchdog line missing %q: %s", want, line)
		}
	}
	// One log per job: three more ticks must add nothing.
	time.Sleep(40 * time.Millisecond)
	mu.Lock()
	n := len(lines)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("watchdog logged %d times, want once: %v", n, lines)
	}
	// Unplant so Drain does not wait on the fake job.
	s.mu.Lock()
	delete(s.jobs, j.ID)
	s.mu.Unlock()
}
