package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"serretime"
	"serretime/internal/guard"
	"serretime/internal/store"
)

func openStore(t *testing.T, dir string) (*store.Disk, []store.RecoveredJob, store.Stats) {
	t.Helper()
	d, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	jobs, st, err := d.Recover()
	if err != nil {
		t.Fatal(err)
	}
	return d, jobs, st
}

// TestRecoveryRestoresFinishedJobAsCacheHit is the tentpole contract
// end to end, in-process: solve a job on a store-backed server, shut it
// down, boot a second server on the same data directory, and demand
// that resubmitting the identical circuit answers "cached" with the
// byte-identical result — the cache survived the restart.
func TestRecoveryRestoresFinishedJobAsCacheHit(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2, Timeout: time.Minute}
	d := tableIDesign(t, "b14_1_opt", 100)

	diskA, jobs, st := openStore(t, dir)
	if len(jobs) != 0 {
		t.Fatalf("fresh store recovered %d jobs", len(jobs))
	}
	cfgA := cfg
	cfgA.Store = diskA
	a := New(context.Background(), cfgA)
	a.Restore(jobs, st)
	j, disp, err := a.Submit(d, fastOpts())
	if err != nil || disp != Accepted {
		t.Fatalf("submit: %v, %v", disp, err)
	}
	<-j.Done
	want, err := a.Result(j)
	if err != nil {
		t.Fatal(err)
	}
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.Drain(dctx); err != nil {
		t.Fatal(err)
	}

	// Second life: same directory, fresh process state.
	diskB, jobs, st := openStore(t, dir)
	if st.Finished != 1 || st.Quarantined != 0 {
		t.Fatalf("recovery stats: %+v", st)
	}
	cfgB := cfg
	cfgB.Store = diskB
	b := New(context.Background(), cfgB)
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = b.Drain(dctx)
	}()
	sum := b.Restore(jobs, st)
	if sum.Finished != 1 || sum.Requeued != 0 || sum.Dropped != 0 {
		t.Fatalf("restore summary: %+v", sum)
	}

	j2, disp, err := b.Submit(d, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if disp != Cached {
		t.Fatalf("post-restart resubmission: disposition %v, want Cached", disp)
	}
	got, err := b.Result(j2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered result differs from the original solve:\n%.120s\nvs\n%.120s", got, want)
	}
	if mode, _, _ := b.StoreStatus(); mode != StoreDisk {
		t.Fatalf("store mode %v, want disk", mode)
	}
}

// TestRecoveryRequeuesInterruptedJob plays back a WAL whose job was
// running at "crash" time (journaled submitted+running, never done):
// Restore must re-enqueue it, a worker must solve it, and the result
// must then serve from cache.
func TestRecoveryRequeuesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	d := tableIDesign(t, "s13207", 100)
	opt := fastOpts()
	opt.Timeout = time.Minute // pin: the blob round-trip must not depend on server defaults
	key, err := JobKey(d, opt)
	if err != nil {
		t.Fatal(err)
	}

	// The crashed daemon's life, reduced to its WAL trace.
	diskA, _, _ := openStore(t, dir)
	if err := diskA.JournalSubmitted(key, d.Name(), benchBytes(t, d), encodeOptions(opt), opt.CanonicalKey()); err != nil {
		t.Fatal(err)
	}
	if err := diskA.JournalRunning(key); err != nil {
		t.Fatal(err)
	}
	if err := diskA.Close(); err != nil {
		t.Fatal(err)
	}

	diskB, jobs, st := openStore(t, dir)
	if st.Requeued != 1 {
		t.Fatalf("recovery stats: %+v", st)
	}
	s := New(context.Background(), Config{Workers: 2, Timeout: time.Minute, Store: diskB})
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(dctx)
	}()
	sum := s.Restore(jobs, st)
	if sum.Requeued != 1 || sum.Dropped != 0 {
		t.Fatalf("restore summary: %+v", sum)
	}

	j, ok := s.Job(key)
	if !ok {
		t.Fatalf("requeued job %.12s not registered", key)
	}
	select {
	case <-j.Done:
	case <-time.After(2 * time.Minute):
		t.Fatalf("requeued job never finished")
	}
	if _, err := s.Result(j); err != nil {
		t.Fatalf("re-solved job failed: %v", err)
	}
	if _, disp, err := s.Submit(d, opt); err != nil || disp != Cached {
		t.Fatalf("resubmission after re-solve: %v, %v", disp, err)
	}
}

// TestRecoveryRequeuesFastAccuracyJob is the regression test for the
// options blob dropping Analysis.Accuracy: a fast-mode job interrupted
// mid-solve must recover under its *fast* key. Before the fix the
// decoded options defaulted to exact, the re-derived key disagreed with
// the journaled ID, and the job was silently Dropped instead of
// re-solved.
func TestRecoveryRequeuesFastAccuracyJob(t *testing.T) {
	dir := t.TempDir()
	d := tableIDesign(t, "s13207", 100)
	opt := fastOpts()
	opt.Timeout = time.Minute
	opt.Analysis.Accuracy = serretime.AccuracyFast
	key, err := JobKey(d, opt)
	if err != nil {
		t.Fatal(err)
	}

	diskA, _, _ := openStore(t, dir)
	if err := diskA.JournalSubmitted(key, d.Name(), benchBytes(t, d), encodeOptions(opt), opt.CanonicalKey()); err != nil {
		t.Fatal(err)
	}
	if err := diskA.JournalRunning(key); err != nil {
		t.Fatal(err)
	}
	if err := diskA.Close(); err != nil {
		t.Fatal(err)
	}

	diskB, jobs, st := openStore(t, dir)
	s := New(context.Background(), Config{Workers: 2, Timeout: time.Minute, Store: diskB})
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(dctx)
	}()
	sum := s.Restore(jobs, st)
	if sum.Dropped != 0 || sum.Requeued != 1 {
		t.Fatalf("restore summary: %+v (fast-accuracy job must requeue, not drop)", sum)
	}
	j, ok := s.Job(key)
	if !ok {
		t.Fatalf("fast job %.12s not registered under its fast key", key)
	}
	select {
	case <-j.Done:
	case <-time.After(2 * time.Minute):
		t.Fatal("requeued fast job never finished")
	}
	if _, err := s.Result(j); err != nil {
		t.Fatalf("re-solved fast job failed: %v", err)
	}
	// The cache answers under the fast key only; the exact-mode twin is
	// still a fresh job.
	if _, disp, err := s.Submit(d, opt); err != nil || disp != Cached {
		t.Fatalf("fast resubmission: %v, %v", disp, err)
	}
	exact := opt
	exact.Analysis.Accuracy = serretime.AccuracyExact
	if _, disp, err := s.Submit(d, exact); err != nil || disp == Cached {
		t.Fatalf("exact twin must not hit the fast cache entry: %v, %v", disp, err)
	}
}

// TestRecoveryDropsKeyMismatch journals a record whose ID does not
// match the payload+options it claims: Restore must refuse to solve
// under a forged identity.
func TestRecoveryDropsKeyMismatch(t *testing.T) {
	dir := t.TempDir()
	d := tableIDesign(t, "s13207", 100)
	opt := fastOpts()
	opt.Timeout = time.Minute

	diskA, _, _ := openStore(t, dir)
	bogus := strings.Repeat("ab", 32)
	if err := diskA.JournalSubmitted(bogus, d.Name(), benchBytes(t, d), encodeOptions(opt), opt.CanonicalKey()); err != nil {
		t.Fatal(err)
	}
	if err := diskA.Close(); err != nil {
		t.Fatal(err)
	}

	diskB, jobs, st := openStore(t, dir)
	defer diskB.Close()
	s := New(context.Background(), Config{Workers: 1, Timeout: time.Minute})
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(dctx)
	}()
	sum := s.Restore(jobs, st)
	if sum.Dropped != 1 || sum.Requeued != 0 {
		t.Fatalf("restore summary: %+v", sum)
	}
	if _, ok := s.Job(bogus); ok {
		t.Fatal("forged job registered")
	}
}

// failingStore fails every journal call after the trip wire arms.
type failingStore struct {
	err    error
	closed bool
}

func (f *failingStore) JournalSubmitted(string, string, []byte, []byte, string) error { return f.err }
func (f *failingStore) JournalRunning(string) error                                   { return f.err }
func (f *failingStore) JournalDone(string, store.ResultMeta, []byte, []byte) error    { return f.err }
func (f *failingStore) JournalFailed(string, string, string) error                    { return f.err }
func (f *failingStore) JournalEvicted(string) error                                   { return f.err }
func (f *failingStore) Close() error                                                  { f.closed = true; return nil }

// TestStoreFailureDegradesToMemoryOnly: a store write failure must cost
// persistence, never the solve. The server flips to memory-degraded
// mode, counts the error, closes the store, and keeps serving.
func TestStoreFailureDegradesToMemoryOnly(t *testing.T) {
	fake := &failingStore{err: fmt.Errorf("disk on fire")}
	var logged []string
	svc, ts := newTestServer(t, Config{
		Workers: 2,
		Timeout: time.Minute,
		Store:   fake,
		Logf:    func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) },
	})
	d := tableIDesign(t, "s13207", 100)

	j, disp, err := svc.Submit(d, fastOpts())
	if err != nil || disp != Accepted {
		t.Fatalf("submit with a failing store must still accept: %v, %v", disp, err)
	}
	<-j.Done
	if _, err := svc.Result(j); err != nil {
		t.Fatalf("solve failed under store degradation: %v", err)
	}

	mode, errs, _ := svc.StoreStatus()
	if mode != StoreDegraded || errs != 1 {
		t.Fatalf("mode %v, errs %d; want memory-degraded, 1", mode, errs)
	}
	if !fake.closed {
		t.Fatal("degraded store not closed")
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "memory-only") {
		t.Fatalf("degradation not logged exactly once: %q", logged)
	}

	// The flag is visible to operators.
	body, resp := fetchBody(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"store_mode": "memory-degraded"`) {
		t.Fatalf("healthz (HTTP %d): %.400s", resp.StatusCode, body)
	}
	body, _ = fetchBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`serretimed_store_mode{mode="memory-degraded"} 1`,
		`serretimed_store_mode{mode="disk"} 0`,
		"serretimed_store_errors_total 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%.800s", want, body)
		}
	}
}

// TestOptionsBlobRoundTrip: the journaled options blob must reproduce
// the canonical key — otherwise recovered jobs would re-solve under a
// different identity than they were submitted with.
func TestOptionsBlobRoundTrip(t *testing.T) {
	opt := fastOpts()
	opt.Algorithm = serretime.MinArea
	opt.Engine = serretime.EngineForest
	opt.Epsilon = 0.25
	opt.AreaWeight = 0.5
	opt.Verify = true
	opt.StallSteps = 7
	opt.Analysis.Seed = 42
	opt.Timeout = 90 * time.Second
	opt.Retries = 2
	opt.RelaxFactor = 3

	got, err := decodeOptions(encodeOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	if got.CanonicalKey() != opt.CanonicalKey() {
		t.Fatalf("canonical key not preserved:\n%s\nvs\n%s", got.CanonicalKey(), opt.CanonicalKey())
	}
	if _, err := decodeOptions([]byte("{broken")); err == nil || !errors.Is(err, guard.ErrStore) {
		t.Fatalf("bad blob: %v", err)
	}
}
