package graph

import (
	"math"
	"math/rand"
	"testing"

	"serretime/internal/benchfmt"
	"serretime/internal/circuit"
)

// ringGraph builds: host -1-> A(d=1) -0-> B(d=2) -0-> C(d=3) -1-> host,
// plus feedback B -2-> A.
func ringGraph() (*Graph, VertexID, VertexID, VertexID) {
	b := NewBuilder()
	a := b.AddVertex("A", 1)
	bb := b.AddVertex("B", 2)
	c := b.AddVertex("C", 3)
	b.AddEdge(Host, a, 1)
	b.AddEdge(a, bb, 0)
	b.AddEdge(bb, c, 0)
	b.AddEdge(c, Host, 1)
	b.AddEdge(bb, a, 2)
	return b.Build(), a, bb, c
}

func TestBuilderAndAccessors(t *testing.T) {
	g, a, bb, c := ringGraph()
	if g.NumVertices() != 4 || g.NumGates() != 3 || g.NumEdges() != 5 {
		t.Fatalf("sizes: %d %d %d", g.NumVertices(), g.NumGates(), g.NumEdges())
	}
	if g.Name(Host) != "<host>" || g.Name(a) != "A" {
		t.Fatal("names wrong")
	}
	if g.Delay(c) != 3 {
		t.Fatal("delay wrong")
	}
	if len(g.Out(bb)) != 2 || len(g.In(a)) != 2 {
		t.Fatal("adjacency wrong")
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestWRAndLegal(t *testing.T) {
	g, a, bb, c := ringGraph()
	r := NewRetiming(g)
	if err := g.CheckLegal(r); err != nil {
		t.Fatal(err)
	}
	r[a] = -1
	// host->A: 1 + (-1) - 0 = 0; A->B: 0 + 0 - (-1) = 1; B->A: 2 - 1 = 1.
	if g.WR(0, r) != 0 || g.WR(1, r) != 1 || g.WR(4, r) != 1 {
		t.Fatalf("WR wrong: %d %d %d", g.WR(0, r), g.WR(1, r), g.WR(4, r))
	}
	if err := g.CheckLegal(r); err != nil {
		t.Fatal(err)
	}
	r[a] = -2 // host->A becomes -1
	if err := g.CheckLegal(r); err == nil {
		t.Fatal("illegal retiming accepted")
	}
	r[a] = 0
	r[Host] = 1
	if err := g.CheckLegal(r); err == nil {
		t.Fatal("host retiming accepted")
	}
	_, _ = bb, c
}

func TestRegisterCounts(t *testing.T) {
	g, a, _, _ := ringGraph()
	r := NewRetiming(g)
	if got := g.TotalEdgeRegisters(r); got != 4 {
		t.Fatalf("TotalEdgeRegisters = %d", got)
	}
	if got := g.SharedRegisters(r); got != 4 {
		t.Fatalf("SharedRegisters = %d", got)
	}
	r[a] = -1
	// Edges: host->A 0, A->B 1, B->C 0, C->host 1, B->A 1. Total 3.
	if got := g.TotalEdgeRegisters(r); got != 3 {
		t.Fatalf("TotalEdgeRegisters = %d", got)
	}
	// Shared: A's out max(1)=1, B max(0,1)=1, C 1, host group port -1: 0.
	if got := g.SharedRegisters(r); got != 3 {
		t.Fatalf("SharedRegisters = %d", got)
	}
}

func TestArrivalTimes(t *testing.T) {
	g, a, bb, c := ringGraph()
	arr, crit, err := g.ArrivalTimes(NewRetiming(g))
	if err != nil {
		t.Fatal(err)
	}
	if arr[a] != 1 || arr[bb] != 3 || arr[c] != 6 || crit != 6 {
		t.Fatalf("arrivals: %v crit %g", arr, crit)
	}
	// Retime A forward: register appears on A->B, splitting the path.
	r := NewRetiming(g)
	r[a] = -1
	arr, crit, err = g.ArrivalTimes(r)
	if err != nil {
		t.Fatal(err)
	}
	if arr[a] != 1 || arr[bb] != 2 || arr[c] != 5 || crit != 5 {
		t.Fatalf("arrivals after retime: %v crit %g", arr, crit)
	}
}

func TestZeroWeightCycleDetected(t *testing.T) {
	b := NewBuilder()
	a := b.AddVertex("a", 1)
	c := b.AddVertex("c", 1)
	b.AddEdge(a, c, 0)
	b.AddEdge(c, a, 0)
	g := b.Build()
	if err := g.Check(); err == nil {
		t.Fatal("zero-weight cycle not detected")
	}
}

func TestWD(t *testing.T) {
	g, a, bb, c := ringGraph()
	m := g.ComputeWD()
	cases := []struct {
		u, v VertexID
		w    int32
		d    float64
	}{
		{a, a, 0, 1},
		{a, bb, 0, 3},
		{a, c, 0, 6},
		{a, Host, 1, 6},
		{bb, a, 2, 3},
		{Host, a, 1, 1},
		{Host, bb, 1, 3},
		{Host, Host, 0, 0}, // empty path: W(u,u)=0, D(u,u)=d(u)
	}
	for _, tc := range cases {
		if got := m.W(tc.u, tc.v); got != tc.w {
			t.Errorf("W(%s,%s) = %d, want %d", g.Name(tc.u), g.Name(tc.v), got, tc.w)
		}
		if got := m.D(tc.u, tc.v); got != tc.d {
			t.Errorf("D(%s,%s) = %g, want %g", g.Name(tc.u), g.Name(tc.v), got, tc.d)
		}
	}
	// The environment is a barrier: C reaches only the host.
	if m.W(c, a) != NoPath {
		t.Errorf("W(C,A) = %d, want NoPath (through-host path)", m.W(c, a))
	}
}

func TestMinMaxDelay(t *testing.T) {
	g, _, _, _ := ringGraph()
	if g.MaxDelay() != 3 || g.MinDelay() != 1 {
		t.Fatalf("MaxDelay=%g MinDelay=%g", g.MaxDelay(), g.MinDelay())
	}
}

func loadS27(t testing.TB) (*circuit.Circuit, *Graph) {
	t.Helper()
	c, err := benchfmt.ParseFile("../../testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromCircuit(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, g
}

func TestFromCircuitS27(t *testing.T) {
	c, g := loadS27(t)
	if g.NumGates() != 10 {
		t.Fatalf("|V| = %d, want 10", g.NumGates())
	}
	// 18 gate input pins + 1 PO edge.
	if g.NumEdges() != 19 {
		t.Fatalf("|E| = %d, want 19", g.NumEdges())
	}
	r := NewRetiming(g)
	if got := g.TotalEdgeRegisters(r); got != 3 {
		t.Fatalf("registers = %d, want 3", got)
	}
	if got := g.SharedRegisters(r); got != 3 {
		t.Fatalf("shared registers = %d, want 3", got)
	}
	// Round-trip vertex mapping.
	n, _ := c.Lookup("G10")
	v, ok := g.VertexOf(n)
	if !ok || g.Name(v) != "G10" || g.NodeOf(v) != n {
		t.Fatal("vertex mapping broken")
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFromCircuitDFFChain(t *testing.T) {
	// a -> q1 -> q2 -> gate: edge weight 2.
	b := circuit.NewBuilder("chain")
	b.PI("a")
	b.DFF("q1", "a")
	b.DFF("q2", "q1")
	b.Gate("g", circuit.FnNot, "q2")
	b.PO("g")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromCircuit(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("|E| = %d", g.NumEdges())
	}
	e := g.Edge(0)
	if e.From != Host || e.W != 2 {
		t.Fatalf("chain edge = %+v", e)
	}
}

func TestFromCircuitPIPODropped(t *testing.T) {
	b := circuit.NewBuilder("direct")
	b.PI("a")
	b.DFF("q", "a")
	b.PO("q")
	b.PI("x")
	b.Gate("g", circuit.FnNot, "x")
	b.PO("g")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromCircuit(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only the x->g pin and the g->host PO edge remain.
	if g.NumEdges() != 2 {
		t.Fatalf("|E| = %d, want 2", g.NumEdges())
	}
}

func TestRebase(t *testing.T) {
	g, a, _, _ := ringGraph()
	r := NewRetiming(g)
	r[a] = -1
	g2, err := g.Rebase(r)
	if err != nil {
		t.Fatal(err)
	}
	z := NewRetiming(g2)
	if g2.TotalEdgeRegisters(z) != g.TotalEdgeRegisters(r) {
		t.Fatal("rebase changed register count")
	}
	if g2.Edge(0).W != 0 || g2.Edge(1).W != 1 {
		t.Fatalf("rebased weights wrong: %d %d", g2.Edge(0).W, g2.Edge(1).W)
	}
	r[a] = -5
	if _, err := g.Rebase(r); err == nil {
		t.Fatal("illegal rebase accepted")
	}
}

func TestRebuildIdentity(t *testing.T) {
	c, g := loadS27(t)
	rb, err := Rebuild(c, g, NewRetiming(g))
	if err != nil {
		t.Fatal(err)
	}
	pis, pos, gates, dffs := rb.C.Counts()
	if pis != 4 || pos != 1 || gates != 10 || dffs != 3 {
		t.Fatalf("identity rebuild counts = %d %d %d %d", pis, pos, gates, dffs)
	}
	if err := rb.C.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildForwardMove(t *testing.T) {
	c, g := loadS27(t)
	// Move registers forward across G11 (it reads G5=DFF(G10), so its
	// in-edge G10->G11 has w=1).
	n, _ := c.Lookup("G11")
	v, _ := g.VertexOf(n)
	r := NewRetiming(g)
	r[v] = -1
	if err := g.CheckLegal(r); err != nil {
		t.Skipf("retiming not legal on this structure: %v", err)
	}
	rb, err := Rebuild(c, g, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.C.Validate(); err != nil {
		t.Fatal(err)
	}
	_, _, gates, dffs := rb.C.Counts()
	if gates != 10 {
		t.Fatalf("gates = %d", gates)
	}
	if int64(dffs) != g.SharedRegisters(r) {
		t.Fatalf("dffs = %d, SharedRegisters = %d", dffs, g.SharedRegisters(r))
	}
	// Chain bookkeeping: every chain tap must exist and read its
	// predecessor.
	for drv, ids := range rb.Chains {
		prev, ok := rb.C.Lookup(drv)
		if !ok {
			t.Fatalf("chain driver %q missing", drv)
		}
		for _, id := range ids {
			nd := rb.C.Node(id)
			if nd.Kind != circuit.KindDFF || nd.Fanin[0] != prev {
				t.Fatalf("chain %q malformed", drv)
			}
			prev = id
		}
	}
}

func TestRebuildRequiresExtractedGraph(t *testing.T) {
	g, _, _, _ := ringGraph()
	if _, err := Rebuild(circuit.New("x"), g, NewRetiming(g)); err == nil {
		t.Fatal("Rebuild accepted synthetic graph")
	}
}

func TestWDUnreachable(t *testing.T) {
	b := NewBuilder()
	a := b.AddVertex("a", 1)
	c := b.AddVertex("c", 2)
	b.AddEdge(Host, a, 1)
	b.AddEdge(Host, c, 1)
	b.AddEdge(a, Host, 0)
	b.AddEdge(c, Host, 0)
	g := b.Build()
	m := g.ComputeWD()
	if m.W(a, c) != NoPath {
		t.Fatal("disconnected pair not NoPath")
	}
	if !math.IsInf(m.D(a, c), -1) {
		t.Fatal("D of unreachable pair not -Inf")
	}
}

// bruteWD enumerates all simple-ish paths (bounded length) to check W/D.
func bruteWD(g *Graph, maxLen int) (map[[2]VertexID]int32, map[[2]VertexID]float64) {
	w := make(map[[2]VertexID]int32)
	d := make(map[[2]VertexID]float64)
	type state struct {
		v     VertexID
		regs  int32
		delay float64
		steps int
	}
	for src := 0; src < g.NumVertices(); src++ {
		s := VertexID(src)
		stack := []state{{s, 0, g.Delay(s), 0}}
		for len(stack) > 0 {
			st := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			key := [2]VertexID{s, st.v}
			if cur, ok := w[key]; !ok || st.regs < cur || (st.regs == cur && st.delay > d[key]) {
				w[key] = st.regs
				if !ok || st.regs < cur {
					d[key] = st.delay
				} else if st.delay > d[key] {
					d[key] = st.delay
				}
			}
			if st.steps >= maxLen || (st.v == Host && st.v != s) {
				continue
			}
			for _, eid := range g.Out(st.v) {
				e := g.Edge(eid)
				stack = append(stack, state{e.To, st.regs + e.W, st.delay + g.Delay(e.To), st.steps + 1})
			}
		}
	}
	return w, d
}

func TestPropertyWDMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		n := 3 + rng.Intn(5)
		vs := make([]VertexID, n)
		for i := range vs {
			vs[i] = b.AddVertex("v", 1+float64(rng.Intn(4)))
		}
		b.AddEdge(Host, vs[0], 1)
		for i := 1; i < n; i++ {
			b.AddEdge(vs[rng.Intn(i)], vs[i], int32(rng.Intn(2)))
			if rng.Intn(3) == 0 {
				b.AddEdge(vs[i], vs[rng.Intn(i)], 1+int32(rng.Intn(2)))
			}
		}
		b.AddEdge(vs[n-1], Host, 0)
		g := b.Build()
		if g.Check() != nil {
			continue
		}
		m := g.ComputeWD()
		// Enumerate paths far longer than any min-register path needs.
		bw, bd := bruteWD(g, 3*n)
		for u := 0; u < g.NumVertices(); u++ {
			for v := 0; v < g.NumVertices(); v++ {
				key := [2]VertexID{VertexID(u), VertexID(v)}
				want, ok := bw[key]
				got := m.W(VertexID(u), VertexID(v))
				if !ok {
					if got != NoPath {
						t.Fatalf("seed %d: W(%d,%d) = %d, brute says unreachable", seed, u, v, got)
					}
					continue
				}
				if got != want {
					t.Fatalf("seed %d: W(%d,%d) = %d, want %d", seed, u, v, got, want)
				}
				if gd := m.D(VertexID(u), VertexID(v)); gd < bd[key]-1e-9 {
					// Brute force bounded-length search may miss longer
					// equal-register paths, so only check one direction.
					t.Fatalf("seed %d: D(%d,%d) = %g < brute %g", seed, u, v, gd, bd[key])
				}
			}
		}
	}
}
