package graph

import (
	"context"
	"math"
	"sync"

	"serretime/internal/par"
	"serretime/internal/telemetry"
)

// WD holds the classic Leiserson–Saxe path matrices:
//
//	W(u,v) = minimum register count over all u->v paths,
//	D(u,v) = maximum total vertex delay (endpoints included) over the
//	         u->v paths achieving W(u,v).
//
// Paths never route *through* the host (the environment is a timing
// barrier), though they may start or end there. Unreachable pairs have
// W = NoPath.
type WD struct {
	n int
	w []int32
	d []float64
}

// NoPath marks an unreachable vertex pair in W.
const NoPath int32 = math.MaxInt32

// W returns W(u,v), or NoPath if v is unreachable from u.
func (m *WD) W(u, v VertexID) int32 { return m.w[int(u)*m.n+int(v)] }

// D returns D(u,v); meaningful only when W(u,v) != NoPath.
func (m *WD) D(u, v VertexID) float64 { return m.d[int(u)*m.n+int(v)] }

type pqItem struct {
	v    VertexID
	dist int32
}

// heapPush and heapPop implement a binary min-heap on a plain slice.
// container/heap would box every pqItem through interface{} — measured at
// ~9M allocs for one 2500-vertex ComputeWD — so the heap is hand-rolled.
// Tie order among equal dists is irrelevant: Dijkstra's dist fixpoint is
// unique, which keeps the matrices deterministic.
func heapPush(h *[]pqItem, it pqItem) {
	s := append(*h, it)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].dist <= s[i].dist {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

func heapPop(h *[]pqItem) pqItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= len(s) {
			break
		}
		min := l
		if r := l + 1; r < len(s) && s[r].dist < s[l].dist {
			min = r
		}
		if s[i].dist <= s[min].dist {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	*h = s
	return top
}

// wdScratch is the per-worker working set of the row fill: Dijkstra dists
// and heap, Kahn indegrees and queue. One scratch serves every source a
// worker processes, and a sync.Pool recycles it across ComputeWD calls.
type wdScratch struct {
	dist  []int32
	indeg []int32
	queue []VertexID
	h     []pqItem
}

var wdScratchPool sync.Pool

func getWDScratch(n int) *wdScratch {
	if v, ok := wdScratchPool.Get().(*wdScratch); ok && cap(v.dist) >= n {
		v.dist = v.dist[:n]
		v.indeg = v.indeg[:n]
		v.queue = v.queue[:0]
		v.h = v.h[:0]
		return v
	}
	return &wdScratch{
		dist:  make([]int32, n),
		indeg: make([]int32, n),
		queue: make([]VertexID, 0, n),
		h:     make([]pqItem, 0, n),
	}
}

func putWDScratch(sc *wdScratch) { wdScratchPool.Put(sc) }

// ComputeWD builds the W/D matrices for the base weights of g. This costs
// Θ(|V|²) memory and O(|V| · |E| log |V|) time; it exists for the exact
// reference solver and for validation, not for the incremental algorithms.
func (g *Graph) ComputeWD() *WD {
	m, _ := g.ComputeWDPar(nil, 1, nil) // one worker + nil ctx cannot fail
	return m
}

// ComputeWDPar is ComputeWD with the per-source row fills fanned across
// workers. Each source writes only its own row of W and D, so the result
// is bit-identical for every worker count; a done ctx aborts between
// shards with a guard.ErrTimeout-wrapped error. workers <= 0 means one
// worker per available CPU; rec receives pool utilization telemetry.
func (g *Graph) ComputeWDPar(ctx context.Context, workers int, rec telemetry.Recorder) (*WD, error) {
	n := g.NumVertices()
	m := &WD{n: n, w: make([]int32, n*n), d: make([]float64, n*n)}
	// No matrix-wide init: wdFrom overwrites every entry of its row.
	pool := par.New("graph.wd", workers, rec)
	err := pool.Run(ctx, n, func(worker, lo, hi int) error {
		sc := getWDScratch(n)
		defer putWDScratch(sc)
		for src := lo; src < hi; src++ {
			g.wdFrom(VertexID(src), m, sc)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// wdFrom fills row src of the matrices.
func (g *Graph) wdFrom(src VertexID, m *WD, sc *wdScratch) {
	n := g.NumVertices()
	dist := sc.dist
	for i := range dist {
		dist[i] = NoPath
	}
	// Phase 1: Dijkstra on register counts (all weights >= 0).
	dist[src] = 0
	h := sc.h[:0]
	heapPush(&h, pqItem{src, 0})
	for len(h) > 0 {
		it := heapPop(&h)
		if it.dist > dist[it.v] {
			continue
		}
		if it.v == Host && src != Host {
			continue // do not route through the environment
		}
		for _, eid := range g.Out(it.v) {
			to := g.eTo[eid]
			if nd := it.dist + g.eW[eid]; nd < dist[to] {
				dist[to] = nd
				heapPush(&h, pqItem{to, nd})
			}
		}
	}
	sc.h = h
	// Phase 2: longest-delay DP over the tight subgraph (edges on some
	// min-register path). The tight subgraph is acyclic because a tight
	// cycle would be a zero-weight cycle, which Check() excludes.
	row := int(src) * n
	// dDP[v] = max delay of a min-register path src..v, *excluding* d(v)
	// accumulation handled by adding d at relaxation time; we store the
	// full path delay including both endpoints.
	dDP := m.d[row : row+n]
	wRow := m.w[row : row+n]
	for v := 0; v < n; v++ {
		wRow[v] = dist[v]
	}
	// Process vertices in ascending (dist, topo-within-level) order via
	// Kahn's algorithm restricted to tight edges.
	indeg := sc.indeg
	clear(indeg)
	for i := range g.eW {
		from := g.eFrom[i]
		if dist[from] == NoPath || (from == Host && src != Host) {
			continue
		}
		if dist[from]+g.eW[i] == dist[g.eTo[i]] {
			indeg[g.eTo[i]]++
		}
	}
	queue := sc.queue[:0]
	for v := 0; v < n; v++ {
		if dist[v] != NoPath && indeg[v] == 0 {
			queue = append(queue, VertexID(v))
		}
	}
	for v := range dDP {
		dDP[v] = math.Inf(-1)
	}
	dDP[src] = g.delay[src]
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if v == Host && v != src {
			continue
		}
		for _, eid := range g.Out(v) {
			to := g.eTo[eid]
			if dist[v]+g.eW[eid] != dist[to] {
				continue
			}
			if nd := dDP[v] + g.delay[to]; nd > dDP[to] {
				dDP[to] = nd
			}
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	sc.queue = queue
}
