package graph

import (
	"container/heap"
	"math"
)

// WD holds the classic Leiserson–Saxe path matrices:
//
//	W(u,v) = minimum register count over all u->v paths,
//	D(u,v) = maximum total vertex delay (endpoints included) over the
//	         u->v paths achieving W(u,v).
//
// Paths never route *through* the host (the environment is a timing
// barrier), though they may start or end there. Unreachable pairs have
// W = NoPath.
type WD struct {
	n int
	w []int32
	d []float64
}

// NoPath marks an unreachable vertex pair in W.
const NoPath int32 = math.MaxInt32

// W returns W(u,v), or NoPath if v is unreachable from u.
func (m *WD) W(u, v VertexID) int32 { return m.w[int(u)*m.n+int(v)] }

// D returns D(u,v); meaningful only when W(u,v) != NoPath.
func (m *WD) D(u, v VertexID) float64 { return m.d[int(u)*m.n+int(v)] }

type pqItem struct {
	v    VertexID
	dist int32
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// ComputeWD builds the W/D matrices for the base weights of g. This costs
// Θ(|V|²) memory and O(|V| · |E| log |V|) time; it exists for the exact
// reference solver and for validation, not for the incremental algorithms.
func (g *Graph) ComputeWD() *WD {
	n := g.NumVertices()
	m := &WD{n: n, w: make([]int32, n*n), d: make([]float64, n*n)}
	for i := range m.w {
		m.w[i] = NoPath
		m.d[i] = math.Inf(-1)
	}
	dist := make([]int32, n)
	for src := 0; src < n; src++ {
		g.wdFrom(VertexID(src), m, dist)
	}
	return m
}

// wdFrom fills row src of the matrices.
func (g *Graph) wdFrom(src VertexID, m *WD, dist []int32) {
	n := g.NumVertices()
	for i := range dist {
		dist[i] = NoPath
	}
	// Phase 1: Dijkstra on register counts (all weights >= 0).
	dist[src] = 0
	h := pq{{src, 0}}
	for len(h) > 0 {
		it := heap.Pop(&h).(pqItem)
		if it.dist > dist[it.v] {
			continue
		}
		if it.v == Host && src != Host {
			continue // do not route through the environment
		}
		for _, eid := range g.out[it.v] {
			e := &g.edges[eid]
			if nd := it.dist + e.W; nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(&h, pqItem{e.To, nd})
			}
		}
	}
	// Phase 2: longest-delay DP over the tight subgraph (edges on some
	// min-register path). The tight subgraph is acyclic because a tight
	// cycle would be a zero-weight cycle, which Check() excludes.
	row := int(src) * n
	// dDP[v] = max delay of a min-register path src..v, *excluding* d(v)
	// accumulation handled by adding d at relaxation time; we store the
	// full path delay including both endpoints.
	dDP := m.d[row : row+n]
	wRow := m.w[row : row+n]
	for v := 0; v < n; v++ {
		wRow[v] = dist[v]
	}
	// Process vertices in ascending (dist, topo-within-level) order via
	// Kahn's algorithm restricted to tight edges.
	indeg := make([]int32, n)
	for i := range g.edges {
		e := &g.edges[i]
		if dist[e.From] == NoPath || (e.From == Host && src != Host) {
			continue
		}
		if dist[e.From]+e.W == dist[e.To] {
			indeg[e.To]++
		}
	}
	queue := make([]VertexID, 0, n)
	for v := 0; v < n; v++ {
		if dist[v] != NoPath && indeg[v] == 0 {
			queue = append(queue, VertexID(v))
		}
	}
	for v := range dDP {
		dDP[v] = math.Inf(-1)
	}
	dDP[src] = g.delay[src]
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if v == Host && v != src {
			continue
		}
		for _, eid := range g.out[v] {
			e := &g.edges[eid]
			if dist[v]+e.W != dist[e.To] {
				continue
			}
			if nd := dDP[v] + g.delay[e.To]; nd > dDP[e.To] {
				dDP[e.To] = nd
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
}
