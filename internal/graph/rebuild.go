package graph

import (
	"fmt"
	"sort"

	"serretime/internal/circuit"
)

// Rebuilt is a circuit materialized from a retimed graph.
type Rebuilt struct {
	// C is the retimed circuit.
	C *circuit.Circuit
	// Chains maps a driver net name (gate output or primary input) to the
	// DFF node IDs of its register chain in C, ordered from the driver
	// outward: Chains[x][0] reads x directly.
	Chains map[string][]circuit.NodeID
	// POTaps lists, for each primary output of the original circuit (in
	// c.POs() order), the node of C now driving it. Two original outputs
	// may map to the same node (shared chain tap), in which case C's own
	// PO list is shorter than POTaps.
	POTaps []circuit.NodeID
}

// Rebuild materializes the retiming r of graph g (extracted from circuit c
// by FromCircuit) into a new circuit. Register chains are max-shared per
// driver net, so the resulting flip-flop count equals g.SharedRegisters(r).
//
// Primary-input-to-primary-output connections that never pass a gate are
// preserved verbatim (they are not represented in the graph).
func Rebuild(c *circuit.Circuit, g *Graph, r Retiming) (*Rebuilt, error) {
	if g.vertexOf == nil {
		return nil, fmt.Errorf("graph: Rebuild requires a circuit-extracted graph")
	}
	if err := g.CheckLegal(r); err != nil {
		return nil, err
	}

	// Pass 1: compute the retimed register count of every pin and PO net,
	// and the needed chain length per driver net.
	type pin struct {
		gate    circuit.NodeID // consuming gate (InvalidNode for a PO)
		pinIdx  int
		drvName string
		w       int32
	}
	var pins []pin
	need := make(map[string]int32) // driver net -> max chain length

	resolvePin := func(fin circuit.NodeID, toV VertexID) (string, int32, error) {
		drv, w, err := effectiveDriver(c, fin)
		if err != nil {
			return "", 0, err
		}
		dn := c.Node(drv)
		var fromV VertexID
		switch dn.Kind {
		case circuit.KindPI:
			fromV = Host
		case circuit.KindGate:
			fromV = g.vertexOf[drv]
		default:
			return "", 0, fmt.Errorf("graph: unresolvable driver %q", dn.Name)
		}
		var rTo int32
		if toV != Host {
			rTo = r[toV]
		}
		nw := w + rTo - r[fromV]
		if nw < 0 {
			return "", 0, fmt.Errorf("graph: pin of %q gets %d registers", dn.Name, nw)
		}
		return dn.Name, nw, nil
	}

	for _, n := range c.NodesOfKind(circuit.KindGate) {
		toV := g.vertexOf[n]
		for i, fin := range c.Node(n).Fanin {
			dname, nw, err := resolvePin(fin, toV)
			if err != nil {
				return nil, err
			}
			pins = append(pins, pin{gate: n, pinIdx: i, drvName: dname, w: nw})
			if nw > need[dname] {
				need[dname] = nw
			}
		}
	}
	type poPin struct {
		drvName string
		w       int32
	}
	var poPins []poPin
	for _, po := range c.POs() {
		drv, w, err := effectiveDriver(c, po)
		if err != nil {
			return nil, err
		}
		dn := c.Node(drv)
		var nw int32
		switch dn.Kind {
		case circuit.KindPI:
			nw = w // no graph edge: registers preserved verbatim
		case circuit.KindGate:
			nw = w - r[g.vertexOf[drv]]
		default:
			return nil, fmt.Errorf("graph: PO driven by %s", dn.Kind)
		}
		if nw < 0 {
			return nil, fmt.Errorf("graph: PO of %q gets %d registers", dn.Name, nw)
		}
		poPins = append(poPins, poPin{drvName: dn.Name, w: nw})
		if nw > need[dn.Name] {
			need[dn.Name] = nw
		}
	}

	// Pass 2: emit the retimed netlist.
	b := circuit.NewBuilder(c.Name + "_retimed")
	for _, pi := range c.PIs() {
		b.PI(c.Node(pi).Name)
	}
	tapName := func(drv string, j int32) string {
		if j == 0 {
			return drv
		}
		return fmt.Sprintf("%s$r%d", drv, j)
	}
	drivers := make([]string, 0, len(need))
	for drv := range need {
		drivers = append(drivers, drv)
	}
	sort.Strings(drivers) // deterministic node numbering
	for _, drv := range drivers {
		prev := drv
		for j := int32(1); j <= need[drv]; j++ {
			name := tapName(drv, j)
			b.DFF(name, prev)
			prev = name
		}
	}
	gateFanin := make(map[circuit.NodeID][]string)
	for _, n := range c.NodesOfKind(circuit.KindGate) {
		gateFanin[n] = make([]string, len(c.Node(n).Fanin))
	}
	for _, p := range pins {
		gateFanin[p.gate][p.pinIdx] = tapName(p.drvName, p.w)
	}
	for _, n := range c.NodesOfKind(circuit.KindGate) {
		nd := c.Node(n)
		b.Gate(nd.Name, nd.Fn, gateFanin[n]...)
	}
	for _, pp := range poPins {
		b.PO(tapName(pp.drvName, pp.w))
	}
	rc, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graph: rebuild: %w", err)
	}
	out := &Rebuilt{C: rc, Chains: make(map[string][]circuit.NodeID, len(need))}
	for _, pp := range poPins {
		id, ok := rc.Lookup(tapName(pp.drvName, pp.w))
		if !ok {
			return nil, fmt.Errorf("graph: rebuild lost PO tap %s", tapName(pp.drvName, pp.w))
		}
		out.POTaps = append(out.POTaps, id)
	}
	for drv, n := range need {
		ids := make([]circuit.NodeID, n)
		for j := int32(1); j <= n; j++ {
			id, ok := rc.Lookup(tapName(drv, j))
			if !ok {
				return nil, fmt.Errorf("graph: rebuild lost chain tap %s", tapName(drv, j))
			}
			ids[j-1] = id
		}
		if n > 0 {
			out.Chains[drv] = ids
		}
	}
	return out, nil
}
