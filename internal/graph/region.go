package graph

// RegionWalker computes dirty regions of the zero-weight subgraph: the set
// of vertices whose L/R labels (internal/elw, eq. 6) can change when the
// classification of some edges flips between "registered" (w_r > 0) and
// "combinational" (w_r = 0) under a tentative retiming move.
//
// Labels propagate backward — a vertex reads the labels of its zero-weight
// successors — so the region grown from the seed vertices (the sources of
// reclassified edges) is the closure under zero-weight *predecessor* edges:
// every vertex with a zero-weight path into a seed. Vertices outside the
// closure provably keep their labels: all their out-edge classifications
// are unchanged and, by induction on reverse topological depth, every
// successor they read is outside the region too.
//
// Host-incident edges never participate: the environment is a timing
// barrier (ZeroWeightTopo ignores them, and the label kernel treats edges
// into the host as registered regardless of weight).
//
// The walker's buffers are sized once for a graph and reused across calls;
// it is not safe for concurrent use.
type RegionWalker struct {
	g        *Graph
	inRegion []bool
	region   []VertexID

	// DFS scratch for TopoSuccFirst.
	state []uint8
	stack []VertexID
	order []VertexID
}

// NewRegionWalker allocates a walker for g.
func NewRegionWalker(g *Graph) *RegionWalker {
	n := g.NumVertices()
	return &RegionWalker{
		g:        g,
		inRegion: make([]bool, n),
		region:   make([]VertexID, 0, n),
		state:    make([]uint8, n),
		stack:    make([]VertexID, 0, n),
		order:    make([]VertexID, 0, n),
	}
}

// Reset clears the collected region for reuse.
func (rw *RegionWalker) Reset() {
	for _, v := range rw.region {
		rw.inRegion[v] = false
		rw.state[v] = 0
	}
	rw.region = rw.region[:0]
	rw.order = rw.order[:0]
}

// Collect grows the dirty region: the closure of seeds under edges with
// wr[e] == 0 whose endpoints are both non-host, walked from sink to
// source. wr is indexed by EdgeID and must describe the *tentative* edge
// weights. It reports false — leaving a partial region that the next call
// clears — when the region would exceed limit vertices (limit <= 0 means
// unbounded), the caller's cue to fall back to a full label recompute.
// Host and duplicate seeds are ignored.
func (rw *RegionWalker) Collect(wr []int32, seeds []VertexID, limit int) bool {
	rw.Reset()
	add := func(v VertexID) bool {
		if v == Host || rw.inRegion[v] {
			return true
		}
		rw.inRegion[v] = true
		rw.region = append(rw.region, v)
		return limit <= 0 || len(rw.region) <= limit
	}
	for _, s := range seeds {
		if !add(s) {
			return false
		}
	}
	for i := 0; i < len(rw.region); i++ {
		v := rw.region[i]
		for _, eid := range rw.g.In(v) {
			from := rw.g.eFrom[eid]
			if from == Host || wr[eid] != 0 {
				continue
			}
			if !add(from) {
				return false
			}
		}
	}
	return true
}

// Region returns the collected vertices in discovery order. The slice is
// owned by the walker and valid until the next Collect/Reset.
func (rw *RegionWalker) Region() []VertexID { return rw.region }

// InRegion reports whether v is in the collected region.
func (rw *RegionWalker) InRegion(v VertexID) bool { return rw.inRegion[v] }

// TopoSuccFirst returns the region ordered successors-first along the
// zero-weight out-edges that stay inside the region: every vertex appears
// after each zero-weight successor whose labels it reads, so relabeling in
// this order sees only finalized successors — the same dependency order as
// the reverse ZeroWeightTopo sweep of the full recompute. The zero-weight
// subgraph is acyclic under every retiming (each cycle keeps its total
// register count, which is >= 1), so the DFS needs no cycle handling; a
// zero-weight cycle would indicate a corrupted weight slice and panics.
// The slice is owned by the walker and valid until the next Collect/Reset.
func (rw *RegionWalker) TopoSuccFirst(wr []int32) []VertexID {
	const (
		unseen = 0
		active = 1
		done   = 2
	)
	rw.order = rw.order[:0]
	for _, root := range rw.region {
		if rw.state[root] != unseen {
			continue
		}
		// Iterative DFS with an explicit stack; a vertex is pushed once,
		// expanded when first popped, and emitted when popped done.
		rw.stack = append(rw.stack[:0], root)
		for len(rw.stack) > 0 {
			v := rw.stack[len(rw.stack)-1]
			switch rw.state[v] {
			case unseen:
				rw.state[v] = active
				for _, eid := range rw.g.Out(v) {
					to := rw.g.eTo[eid]
					if to == Host || wr[eid] != 0 || !rw.inRegion[to] {
						continue
					}
					switch rw.state[to] {
					case unseen:
						rw.stack = append(rw.stack, to)
					case active:
						panic("graph: zero-weight cycle in dirty region")
					}
				}
			case active:
				rw.state[v] = done
				rw.stack = rw.stack[:len(rw.stack)-1]
				rw.order = append(rw.order, v)
			default: // done: pushed twice before first expansion
				rw.stack = rw.stack[:len(rw.stack)-1]
			}
		}
	}
	return rw.order
}
