package graph

import (
	"strings"
	"testing"

	"serretime/internal/circuit"
)

// Degenerate FromCircuit inputs: extractions with no retimable logic must
// produce a consistent (if trivial) graph, and unresolvable structures must
// fail with an error, never a panic.

func TestFromCircuitZeroGates(t *testing.T) {
	b := circuit.NewBuilder("wire")
	b.PI("a")
	b.PO("a")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromCircuit(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Fatalf("wire circuit: got %d vertices, %d edges; want host only",
			g.NumVertices(), g.NumEdges())
	}
	// The empty graph must still pass its own invariants and support the
	// core queries without panicking.
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	if got := len(g.Out(Host)); got != 0 {
		t.Fatalf("host out-degree %d, want 0", got)
	}
	if _, err := g.ZeroWeightTopo(nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromCircuitRegisteredWire(t *testing.T) {
	// PI -> DFF -> PO: registers with no gate anywhere on the path carry no
	// retimable logic and are dropped entirely.
	b := circuit.NewBuilder("regwire")
	b.PI("a")
	b.DFF("q", "a")
	b.PO("q")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromCircuit(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Fatalf("registered wire: got %d vertices, %d edges; want host only",
			g.NumVertices(), g.NumEdges())
	}
}

func TestFromCircuitSelfLoopDFF(t *testing.T) {
	// A DFF feeding itself has no combinational driver: the effective-driver
	// walk cannot terminate and must surface as an error.
	b := circuit.NewBuilder("selfloop")
	b.DFF("x", "x")
	b.PO("x")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromCircuit(c, nil); err == nil {
		t.Fatal("self-loop DFF: want error, got nil")
	} else if !strings.Contains(err.Error(), "DFF cycle") {
		t.Fatalf("self-loop DFF: unexpected error %v", err)
	}
}

func TestFromCircuitDFFCycleChain(t *testing.T) {
	// Two DFFs in a pure cycle (no gate), read by real logic elsewhere.
	b := circuit.NewBuilder("dffcycle")
	b.DFF("p", "q")
	b.DFF("q", "p")
	b.PI("a")
	b.Gate("g", circuit.FnAnd, "a", "p")
	b.PO("g")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromCircuit(c, nil); err == nil {
		t.Fatal("gate-free DFF cycle: want error, got nil")
	}
}
