package graph

import (
	"fmt"

	"serretime/internal/circuit"
)

// DelayModel assigns a propagation delay to a combinational gate.
type DelayModel interface {
	Delay(fn circuit.Func, fanin int) float64
}

// TypeDelays is the default deterministic delay model: a base delay per
// gate function plus a loading penalty per input beyond two. The scale is
// unit-like (an inverter is 1.0), matching the regime the paper inherits
// from [23]: the hold time Th = 2 spans more than one fast gate, so
// setup+hold retiming must keep at least two gate delays between
// registers — which is exactly what makes the ELW constraint P2' bite.
type TypeDelays struct{}

// Delay implements DelayModel.
func (TypeDelays) Delay(fn circuit.Func, fanin int) float64 {
	var base float64
	switch fn {
	case circuit.FnConst0, circuit.FnConst1:
		base = 0
	case circuit.FnBuf, circuit.FnNot:
		base = 1
	case circuit.FnNand, circuit.FnNor:
		base = 2
	case circuit.FnAnd, circuit.FnOr:
		base = 3
	case circuit.FnXor, circuit.FnXnor:
		base = 4
	default:
		base = 2
	}
	if fanin > 2 {
		base += float64(fanin-2) * 0.5
	}
	return base
}

// effectiveDriver walks backward through a chain of DFFs from node n and
// returns the first non-DFF node together with the number of DFFs crossed.
func effectiveDriver(c *circuit.Circuit, n circuit.NodeID) (circuit.NodeID, int32, error) {
	var regs int32
	for c.Node(n).Kind == circuit.KindDFF {
		regs++
		n = c.Node(n).Fanin[0]
		if regs > int32(c.NumNodes()) {
			return circuit.InvalidNode, 0, fmt.Errorf("graph: DFF cycle with no gate at node %q", c.Node(n).Name)
		}
	}
	return n, regs, nil
}

// FromCircuit extracts the retiming graph of a sequential circuit:
// one vertex per combinational gate plus the host; one edge per gate input
// pin (and per primary-output net), weighted with the number of flip-flops
// on the connection. Pure DFF-to-DFF chains collapse into edge weights.
//
// Connections from a primary input directly to a primary output (with or
// without flip-flops) carry no retimable logic and are dropped.
func FromCircuit(c *circuit.Circuit, dm DelayModel) (*Graph, error) {
	if dm == nil {
		dm = TypeDelays{}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	b := NewBuilder()
	g := b.g
	g.vertexOf = make(map[circuit.NodeID]VertexID)

	// Port numbers for PIs (register-sharing groups on host out-edges).
	piPort := make(map[circuit.NodeID]int32, len(c.PIs()))
	for i, pi := range c.PIs() {
		piPort[pi] = int32(i)
	}

	// Vertices: all combinational gates.
	for _, n := range c.NodesOfKind(circuit.KindGate) {
		nd := c.Node(n)
		v := b.AddVertex(nd.Name, dm.Delay(nd.Fn, len(nd.Fanin)))
		g.vertexOf[n] = v
		g.nodeOf[v] = n
	}

	// resolve maps a driving net to (vertex, weight, port).
	resolve := func(n circuit.NodeID) (VertexID, int32, int32, error) {
		drv, w, err := effectiveDriver(c, n)
		if err != nil {
			return 0, 0, 0, err
		}
		switch c.Node(drv).Kind {
		case circuit.KindPI:
			return Host, w, piPort[drv], nil
		case circuit.KindGate:
			return g.vertexOf[drv], w, -1, nil
		}
		return 0, 0, 0, fmt.Errorf("graph: unresolvable driver %q", c.Node(drv).Name)
	}

	// Edges: one per gate input pin.
	for _, n := range c.NodesOfKind(circuit.KindGate) {
		to := g.vertexOf[n]
		for _, fin := range c.Node(n).Fanin {
			from, w, port, err := resolve(fin)
			if err != nil {
				return nil, err
			}
			b.addEdge(from, to, w, port)
		}
	}
	// Edges: one per primary output net into the host.
	for _, po := range c.POs() {
		from, w, port, err := resolve(po)
		if err != nil {
			return nil, err
		}
		if from == Host {
			continue // PI feeding a PO directly: nothing retimable
		}
		_ = port
		b.addEdge(from, Host, w, -1)
	}
	gr := b.Build()
	if err := gr.Check(); err != nil {
		return nil, err
	}
	return gr, nil
}

// Rebase returns a new graph identical to g but with base weights w_r
// (the given retiming applied permanently) so that the zero retiming of the
// result equals r on g. The retiming must be legal.
func (g *Graph) Rebase(r Retiming) (*Graph, error) {
	if err := g.CheckLegal(r); err != nil {
		return nil, err
	}
	// Everything but the base weights is shared: names, delays, the edge
	// endpoint arrays and the CSR adjacency are immutable.
	out := &Graph{
		names:    g.names,
		delay:    g.delay,
		eFrom:    g.eFrom,
		eTo:      g.eTo,
		eW:       make([]int32, len(g.eW)),
		ePort:    g.ePort,
		outStart: g.outStart,
		outList:  g.outList,
		inStart:  g.inStart,
		inList:   g.inList,
		vertexOf: g.vertexOf,
		nodeOf:   g.nodeOf,
	}
	for i := range g.eW {
		out.eW[i] = g.WR(EdgeID(i), r)
	}
	return out, nil
}
