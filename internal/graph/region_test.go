package graph

import (
	"math/rand"
	"testing"
)

// chainGraph builds host -w0-> v1 -w1-> v2 ... -> vn -wn-> host.
func chainGraph(ws ...int32) *Graph {
	b := NewBuilder()
	vs := make([]VertexID, len(ws)-1)
	for i := range vs {
		vs[i] = b.AddVertex("v", 1)
	}
	prev := Host
	for i, w := range ws {
		next := Host
		if i < len(vs) {
			next = vs[i]
		}
		b.AddEdge(prev, next, w)
		prev = next
	}
	return b.Build()
}

func TestRegionCollectClosure(t *testing.T) {
	// host -0-> 1 -0-> 2 -1-> 3 -0-> 4 -0-> host: seeding at 3 must pull
	// in nothing upstream of the register on (2,3); seeding at 2 pulls 1
	// (zero-weight predecessor) but not the host.
	g := chainGraph(0, 0, 1, 0, 0)
	wr := make([]int32, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		wr[e] = g.Edge(EdgeID(e)).W
	}
	rw := NewRegionWalker(g)
	if !rw.Collect(wr, []VertexID{3}, 0) {
		t.Fatal("unbounded Collect failed")
	}
	if len(rw.Region()) != 1 || !rw.InRegion(3) {
		t.Fatalf("region from 3 = %v, want [3]", rw.Region())
	}
	if !rw.Collect(wr, []VertexID{2}, 0) {
		t.Fatal("unbounded Collect failed")
	}
	if len(rw.Region()) != 2 || !rw.InRegion(2) || !rw.InRegion(1) {
		t.Fatalf("region from 2 = %v, want {1,2}", rw.Region())
	}
	if rw.InRegion(3) {
		t.Fatal("stale region survived Reset")
	}
}

func TestRegionCollectLimit(t *testing.T) {
	g := chainGraph(1, 0, 0, 0, 0)
	wr := make([]int32, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		wr[e] = g.Edge(EdgeID(e)).W
	}
	rw := NewRegionWalker(g)
	// Seeding the chain's tail reaches 4 vertices; a limit of 2 must fail
	// and the next call must see a clean walker.
	if rw.Collect(wr, []VertexID{4}, 2) {
		t.Fatal("limit 2 not enforced")
	}
	if !rw.Collect(wr, []VertexID{4}, 4) {
		t.Fatal("limit 4 rejected a 4-vertex region")
	}
	if len(rw.Region()) != 4 {
		t.Fatalf("region = %v, want 4 vertices", rw.Region())
	}
	// Host seeds are ignored.
	if !rw.Collect(wr, []VertexID{Host}, 1) || len(rw.Region()) != 0 {
		t.Fatal("host seed grew a region")
	}
}

func TestTopoSuccFirstOrder(t *testing.T) {
	// Random DAG-with-registers instances: collect a full-circuit region
	// and check every in-region zero-weight edge u->v has v ordered
	// before u (labels flow backward: v must be final before u reads it).
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		b := NewBuilder()
		vs := make([]VertexID, n)
		for i := range vs {
			vs[i] = b.AddVertex("v", 1)
		}
		b.AddEdge(Host, vs[0], int32(rng.Intn(2)))
		for i := 1; i < n; i++ {
			b.AddEdge(vs[rng.Intn(i)], vs[i], int32(rng.Intn(2)))
			if rng.Intn(3) == 0 {
				b.AddEdge(vs[i], vs[rng.Intn(i+1)], 1)
			}
		}
		b.AddEdge(vs[n-1], Host, 0)
		g := b.Build()
		wr := make([]int32, g.NumEdges())
		for e := 0; e < g.NumEdges(); e++ {
			wr[e] = g.Edge(EdgeID(e)).W
		}
		seeds := make([]VertexID, 0, n)
		for v := 1; v < g.NumVertices(); v++ {
			seeds = append(seeds, VertexID(v))
		}
		rw := NewRegionWalker(g)
		if !rw.Collect(wr, seeds, 0) {
			t.Fatal("unbounded Collect failed")
		}
		order := rw.TopoSuccFirst(wr)
		if len(order) != len(rw.Region()) {
			t.Fatalf("seed %d: ordered %d of %d region vertices", seed, len(order), len(rw.Region()))
		}
		pos := make(map[VertexID]int, len(order))
		for i, v := range order {
			pos[v] = i
		}
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edge(EdgeID(e))
			if ed.From == Host || ed.To == Host || wr[e] != 0 {
				continue
			}
			if pos[ed.To] >= pos[ed.From] {
				t.Fatalf("seed %d: edge %d->%d ordered wrong (pos %d >= %d)",
					seed, ed.From, ed.To, pos[ed.To], pos[ed.From])
			}
		}
	}
}

func TestTopoSuccFirstPanicsOnCycle(t *testing.T) {
	// A zero-weight cycle cannot arise from any retiming of a legal graph;
	// feeding corrupted weights must panic rather than mislabel.
	b := NewBuilder()
	a := b.AddVertex("a", 1)
	c := b.AddVertex("c", 1)
	b.AddEdge(Host, a, 0)
	b.AddEdge(a, c, 0)
	b.AddEdge(c, a, 1)
	b.AddEdge(c, Host, 0)
	g := b.Build()
	wr := make([]int32, g.NumEdges())
	// Zero every weight: a <-> c becomes a zero-weight cycle.
	rw := NewRegionWalker(g)
	if !rw.Collect(wr, []VertexID{a, c}, 0) {
		t.Fatal("Collect failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-weight cycle did not panic")
		}
	}()
	rw.TopoSuccFirst(wr)
}
