// Package graph implements the Leiserson–Saxe retiming graph G = (V, E)
// extracted from a sequential circuit.
//
// Vertices are the combinational gates plus a distinguished host vertex
// representing the environment; each edge carries a non-negative register
// count w(e), and each vertex a delay d(v). A retiming is an integer vertex
// labeling r with r(host) = 0; the retimed register count of an edge is
// w_r(u,v) = w(u,v) + r(v) - r(u).
//
// The representation is flat and index-based (DESIGN.md §15): edge
// attributes live in parallel slices indexed by EdgeID, and the adjacency
// is compressed-sparse-row — one contiguous EdgeID array per direction
// with an offset array beside it. Out(v) and In(v) return sub-slices of
// the packed arrays, so iteration touches consecutive memory and the
// whole graph costs O(1) allocations per direction regardless of |V|.
package graph

import (
	"fmt"
	"math"

	"serretime/internal/circuit"
)

// VertexID indexes a vertex. The host is always vertex 0.
type VertexID int32

// Host is the environment vertex: primary inputs are its out-edges and
// primary outputs its in-edges. It is never retimed (r(Host) = 0).
const Host VertexID = 0

// EdgeID indexes an edge within a Graph.
type EdgeID int32

// Edge is a directed connection carrying registers.
type Edge struct {
	From, To VertexID
	// W is the register count of the edge in the base (unretimed) circuit.
	W int32
	// SrcPort distinguishes host out-edges by primary input (register
	// sharing groups); -1 for edges leaving ordinary vertices.
	SrcPort int32
}

// Graph is an immutable retiming graph. Retimings are separate r vectors.
type Graph struct {
	names []string
	delay []float64

	// Edge attributes as parallel slices indexed by EdgeID (the hot paths
	// — WR, label sweeps, W/D row fills — read single fields, so keeping
	// the fields in separate dense arrays beats an array-of-struct layout).
	eFrom, eTo []VertexID
	eW         []int32
	ePort      []int32

	// CSR adjacency: the out-edges of v are outList[outStart[v]:
	// outStart[v+1]] in ascending EdgeID order; likewise for in-edges.
	outStart []int32
	outList  []EdgeID
	inStart  []int32
	inList   []EdgeID

	// vertexOf maps a circuit gate node to its vertex, if the graph was
	// extracted from a circuit (nil otherwise).
	vertexOf map[circuit.NodeID]VertexID
	// nodeOf maps a vertex back to the circuit gate (InvalidNode for Host
	// or synthetic graphs).
	nodeOf []circuit.NodeID
}

// Builder constructs a Graph directly (used by tests and the generator;
// circuits use FromCircuit).
type Builder struct {
	g *Graph
}

// NewBuilder returns a builder whose graph already contains the host
// vertex (delay 0).
func NewBuilder() *Builder {
	g := &Graph{
		names: []string{"<host>"},
		delay: []float64{0},
		nodeOf: []circuit.NodeID{
			circuit.InvalidNode,
		},
	}
	return &Builder{g: g}
}

// AddVertex appends a vertex with the given name and delay.
func (b *Builder) AddVertex(name string, delay float64) VertexID {
	id := VertexID(len(b.g.names))
	b.g.names = append(b.g.names, name)
	b.g.delay = append(b.g.delay, delay)
	b.g.nodeOf = append(b.g.nodeOf, circuit.InvalidNode)
	return id
}

// AddEdge appends an edge with w registers.
func (b *Builder) AddEdge(from, to VertexID, w int32) EdgeID {
	return b.addEdge(from, to, w, -1)
}

func (b *Builder) addEdge(from, to VertexID, w int32, port int32) EdgeID {
	if w < 0 {
		panic(fmt.Sprintf("graph: negative edge weight %d", w))
	}
	g := b.g
	id := EdgeID(len(g.eFrom))
	g.eFrom = append(g.eFrom, from)
	g.eTo = append(g.eTo, to)
	g.eW = append(g.eW, w)
	g.ePort = append(g.ePort, port)
	return id
}

// Build packs the CSR adjacency and returns the graph. No vertices or
// edges may be added afterwards.
func (b *Builder) Build() *Graph {
	g := b.g
	n := len(g.names)
	m := len(g.eFrom)
	g.outStart = make([]int32, n+1)
	g.inStart = make([]int32, n+1)
	for i := 0; i < m; i++ {
		g.outStart[g.eFrom[i]+1]++
		g.inStart[g.eTo[i]+1]++
	}
	for v := 0; v < n; v++ {
		g.outStart[v+1] += g.outStart[v]
		g.inStart[v+1] += g.inStart[v]
	}
	g.outList = make([]EdgeID, m)
	g.inList = make([]EdgeID, m)
	outNext := append([]int32(nil), g.outStart[:n]...)
	inNext := append([]int32(nil), g.inStart[:n]...)
	// Ascending EdgeID fill keeps every per-vertex list in ascending edge
	// order (the order incremental append used to produce).
	for i := 0; i < m; i++ {
		f, t := g.eFrom[i], g.eTo[i]
		g.outList[outNext[f]] = EdgeID(i)
		outNext[f]++
		g.inList[inNext[t]] = EdgeID(i)
		inNext[t]++
	}
	return g
}

// NumVertices returns the vertex count including the host.
func (g *Graph) NumVertices() int { return len(g.names) }

// NumGates returns |V|: the combinational gate count (vertices minus host).
func (g *Graph) NumGates() int { return len(g.names) - 1 }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.eFrom) }

// Name returns the vertex name.
func (g *Graph) Name(v VertexID) string { return g.names[v] }

// Delay returns d(v).
func (g *Graph) Delay(v VertexID) float64 { return g.delay[v] }

// Edge returns the edge record, assembled from the parallel attribute
// arrays. Hot paths that need a single field should use EdgeFrom, EdgeTo
// or EdgeW instead.
func (g *Graph) Edge(e EdgeID) Edge {
	return Edge{From: g.eFrom[e], To: g.eTo[e], W: g.eW[e], SrcPort: g.ePort[e]}
}

// EdgeFrom returns the source vertex of e.
func (g *Graph) EdgeFrom(e EdgeID) VertexID { return g.eFrom[e] }

// EdgeTo returns the target vertex of e.
func (g *Graph) EdgeTo(e EdgeID) VertexID { return g.eTo[e] }

// EdgeW returns the base (unretimed) register count of e.
func (g *Graph) EdgeW(e EdgeID) int32 { return g.eW[e] }

// Out returns the out-edge IDs of v, a sub-slice of the packed CSR
// adjacency in ascending EdgeID order. Callers must not modify it.
func (g *Graph) Out(v VertexID) []EdgeID { return g.outList[g.outStart[v]:g.outStart[v+1]] }

// In returns the in-edge IDs of v, a sub-slice of the packed CSR
// adjacency in ascending EdgeID order. Callers must not modify it.
func (g *Graph) In(v VertexID) []EdgeID { return g.inList[g.inStart[v]:g.inStart[v+1]] }

// VertexOf returns the vertex extracted for a circuit gate node.
func (g *Graph) VertexOf(n circuit.NodeID) (VertexID, bool) {
	v, ok := g.vertexOf[n]
	return v, ok
}

// NodeOf returns the circuit gate node a vertex was extracted from, or
// circuit.InvalidNode for the host or synthetic graphs.
func (g *Graph) NodeOf(v VertexID) circuit.NodeID { return g.nodeOf[v] }

// Retiming is a vertex labeling r: V -> Z with r[Host] fixed at 0.
type Retiming []int32

// NewRetiming returns the zero retiming for g.
func NewRetiming(g *Graph) Retiming { return make(Retiming, g.NumVertices()) }

// Clone copies the retiming.
func (r Retiming) Clone() Retiming { return append(Retiming(nil), r...) }

// WR returns the retimed register count w_r(e) = w(e) + r(to) - r(from).
func (g *Graph) WR(e EdgeID, r Retiming) int32 {
	return g.eW[e] + r[g.eTo[e]] - r[g.eFrom[e]]
}

// EdgeWeights materializes w_r for every edge under r, indexed by EdgeID.
// The slice is the representation the incremental solver state keeps
// current across tentative moves (see internal/solverstate).
func (g *Graph) EdgeWeights(r Retiming) []int32 {
	wr := make([]int32, len(g.eW))
	for i := range g.eW {
		wr[i] = g.eW[i] + r[g.eTo[i]] - r[g.eFrom[i]]
	}
	return wr
}

// CheckLegal verifies r(Host) = 0 and w_r(e) >= 0 on every edge (P0).
func (g *Graph) CheckLegal(r Retiming) error {
	if len(r) != g.NumVertices() {
		return fmt.Errorf("graph: retiming length %d, want %d", len(r), g.NumVertices())
	}
	if r[Host] != 0 {
		return fmt.Errorf("graph: host retimed (r=%d)", r[Host])
	}
	for i := range g.eW {
		if w := g.WR(EdgeID(i), r); w < 0 {
			return fmt.Errorf("graph: edge %s->%s has w_r=%d", g.names[g.eFrom[i]], g.names[g.eTo[i]], w)
		}
	}
	return nil
}

// TotalEdgeRegisters returns the summed per-edge register count under r
// (the register measure used by eq. 5 of the paper).
func (g *Graph) TotalEdgeRegisters(r Retiming) int64 {
	var n int64
	for i := range g.eW {
		n += int64(g.WR(EdgeID(i), r))
	}
	return n
}

// SharedRegisters returns the physical flip-flop count under r with
// max-sharing: registers on fanout edges of the same driver (and, for the
// host, the same primary input port) share a chain, costing the maximum
// w_r over the group.
func (g *Graph) SharedRegisters(r Retiming) int64 {
	var n int64
	for v := 0; v < g.NumVertices(); v++ {
		if VertexID(v) == Host {
			// Group host out-edges by source port.
			maxPort := make(map[int32]int32)
			for _, e := range g.Out(Host) {
				w := g.WR(e, r)
				p := g.ePort[e]
				if w > maxPort[p] {
					maxPort[p] = w
				}
			}
			for _, w := range maxPort {
				n += int64(w)
			}
			continue
		}
		var mx int32
		for _, e := range g.Out(VertexID(v)) {
			if w := g.WR(e, r); w > mx {
				mx = w
			}
		}
		n += int64(mx)
	}
	return n
}

// ZeroWeightTopo returns the vertices (excluding Host) in a topological
// order of the subgraph of edges with w_r = 0, ignoring edges incident to
// the host (the environment is a timing barrier). An error is returned if
// the zero-weight subgraph has a cycle, which means the retimed circuit is
// not a synchronous circuit.
func (g *Graph) ZeroWeightTopo(r Retiming) ([]VertexID, error) {
	n := g.NumVertices()
	indeg := make([]int32, n)
	for i := range g.eW {
		if g.eFrom[i] == Host || g.eTo[i] == Host {
			continue
		}
		if g.WR(EdgeID(i), r) == 0 {
			indeg[g.eTo[i]]++
		}
	}
	queue := make([]VertexID, 0, n)
	for v := 1; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, VertexID(v))
		}
	}
	order := make([]VertexID, 0, n-1)
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, eid := range g.Out(v) {
			to := g.eTo[eid]
			if to == Host || g.WR(eid, r) != 0 {
				continue
			}
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != n-1 {
		return nil, fmt.Errorf("graph: zero-weight cycle under retiming (%d of %d vertices ordered)", len(order), n-1)
	}
	return order, nil
}

// ArrivalTimes computes the combinational arrival time at each vertex
// under r: A(v) = d(v) + max over zero-weight in-edges (u,v) of A(u),
// with registered and host inputs arriving at time 0. The second return
// value is the maximum arrival (the combinational critical path delay).
func (g *Graph) ArrivalTimes(r Retiming) ([]float64, float64, error) {
	order, err := g.ZeroWeightTopo(r)
	if err != nil {
		return nil, 0, err
	}
	arr := make([]float64, g.NumVertices())
	var crit float64
	for _, v := range order {
		a := 0.0
		for _, eid := range g.In(v) {
			from := g.eFrom[eid]
			if from == Host || g.WR(eid, r) != 0 {
				continue
			}
			if arr[from] > a {
				a = arr[from]
			}
		}
		arr[v] = a + g.delay[v]
		if arr[v] > crit {
			crit = arr[v]
		}
	}
	return arr, crit, nil
}

// Check verifies structural invariants of the graph itself: consistent
// adjacency, non-negative base weights, and at least one register on every
// cycle (the zero retiming must be synchronous).
func (g *Graph) Check() error {
	for i := range g.eW {
		if g.eW[i] < 0 {
			return fmt.Errorf("graph: edge %d negative weight", i)
		}
		if int(g.eFrom[i]) >= g.NumVertices() || int(g.eTo[i]) >= g.NumVertices() {
			return fmt.Errorf("graph: edge %d endpoint out of range", i)
		}
	}
	_, err := g.ZeroWeightTopo(NewRetiming(g))
	return err
}

// MaxDelay returns the largest vertex delay.
func (g *Graph) MaxDelay() float64 {
	mx := 0.0
	for _, d := range g.delay {
		if d > mx {
			mx = d
		}
	}
	return mx
}

// MinDelay returns the smallest nonzero vertex delay (the fallback Rmin the
// paper uses for hold-infeasible circuits); 0 if the graph has no gates.
func (g *Graph) MinDelay() float64 {
	mn := math.Inf(1)
	for v := 1; v < len(g.delay); v++ {
		if g.delay[v] < mn {
			mn = g.delay[v]
		}
	}
	if math.IsInf(mn, 1) {
		return 0
	}
	return mn
}
