package core

import (
	"math/rand"
	"testing"
)

// TestForestEngineNearExact quantifies the paper's weighted-regular-forest
// engine against the exact LP optimum: the regularity rules reconstructed
// from the paper's sketch should match on the overwhelming majority of
// random instances (the closure engine matches on all, see
// TestPropertyMinObsMatchesExact).
func TestForestEngineNearExact(t *testing.T) {
	match, total := 0, 0
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, gains, obsInt, phi := randomInstance(rng, 3+rng.Intn(18))
		if g.Check() != nil {
			continue
		}
		fe, err := Minimize(g, gains, obsInt, Options{Phi: phi, Ts: 0, Th: 2, Engine: EngineForest})
		if err != nil {
			t.Fatalf("seed %d: forest engine error: %v", seed, err)
		}
		ex, err := MinObsExact(g, gains, obsInt, phi, 0, true, Options{})
		if err != nil {
			continue
		}
		total++
		if fe.Objective == ex.Objective {
			match++
		} else if fe.Objective < ex.Objective {
			t.Fatalf("seed %d: forest beat the exact optimum (%d < %d)", seed, fe.Objective, ex.Objective)
		}
	}
	if total == 0 {
		t.Fatal("no instances")
	}
	if rate := float64(match) / float64(total); rate < 0.95 {
		t.Fatalf("forest engine matched exact on only %d/%d instances", match, total)
	}
}

// TestEnginesAgreeOnMinObsWin cross-checks the two engines on the full
// MinObsWin problem: both must produce legal results satisfying the
// constraints, with the closure engine at least as good.
func TestEnginesAgreeOnMinObsWin(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, gains, obsInt, phi := randomInstance(rng, 3+rng.Intn(15))
		if g.Check() != nil {
			continue
		}
		opt := Options{Phi: phi, Ts: 0, Th: 2, Rmin: g.MinDelay(), ELWConstraints: true}
		cl, err := Minimize(g, gains, obsInt, opt)
		if err != nil {
			t.Fatalf("seed %d: closure: %v", seed, err)
		}
		opt.Engine = EngineForest
		fo, err := Minimize(g, gains, obsInt, opt)
		if err != nil {
			t.Fatalf("seed %d: forest: %v", seed, err)
		}
		if err := g.CheckLegal(cl.R); err != nil {
			t.Fatalf("seed %d: closure illegal: %v", seed, err)
		}
		if err := g.CheckLegal(fo.R); err != nil {
			t.Fatalf("seed %d: forest illegal: %v", seed, err)
		}
		if cl.Objective > fo.Objective {
			t.Errorf("seed %d: closure (%d) worse than forest (%d)", seed, cl.Objective, fo.Objective)
		}
	}
}

// TestBatchMatchesSingle verifies that batching violation repairs reaches
// the same objective as the verbatim one-repair-per-iteration Algorithm 1.
func TestBatchMatchesSingle(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, gains, obsInt, phi := randomInstance(rng, 3+rng.Intn(15))
		if g.Check() != nil {
			continue
		}
		opt := Options{Phi: phi, Ts: 0, Th: 2, Rmin: g.MinDelay(), ELWConstraints: true}
		batch, err := Minimize(g, gains, obsInt, opt)
		if err != nil {
			t.Fatalf("seed %d: batch: %v", seed, err)
		}
		opt.SingleViolation = true
		single, err := Minimize(g, gains, obsInt, opt)
		if err != nil {
			t.Fatalf("seed %d: single: %v", seed, err)
		}
		if batch.Objective != single.Objective {
			t.Errorf("seed %d: batch %d != single %d", seed, batch.Objective, single.Objective)
		}
		if single.Steps < batch.Steps {
			t.Errorf("seed %d: single took fewer steps (%d < %d)", seed, single.Steps, batch.Steps)
		}
	}
}

// TestCheckOrderInvariance: the violation check order changes the
// discovery path but not the fixpoint objective.
func TestCheckOrderInvariance(t *testing.T) {
	orders := [][]Kind{
		{KindP0, KindP2, KindP1},
		{KindP2, KindP0, KindP1}, // the paper's published order
		{KindP1, KindP2, KindP0},
	}
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, gains, obsInt, phi := randomInstance(rng, 3+rng.Intn(15))
		if g.Check() != nil {
			continue
		}
		var objs []int64
		for _, order := range orders {
			res, err := Minimize(g, gains, obsInt, Options{
				Phi: phi, Ts: 0, Th: 2, Rmin: g.MinDelay(),
				ELWConstraints: true, CheckOrder: order,
			})
			if err != nil {
				t.Fatalf("seed %d order %v: %v", seed, order, err)
			}
			objs = append(objs, res.Objective)
		}
		for i := 1; i < len(objs); i++ {
			if objs[i] != objs[0] {
				t.Errorf("seed %d: order %v objective %d != %d", seed, orders[i], objs[i], objs[0])
			}
		}
	}
}
