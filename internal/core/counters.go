package core

// ExactCalls is a test-only counter of exact closure computations.
var ExactCalls int
