package core

import (
	"serretime/internal/graph"
	"serretime/internal/solverstate"
)

// seedRequirementClosure pre-loads a fresh closure engine with the P0
// requirement closure of the committed state: the constraints the lazy
// cascade would discover, one negative-edge batch at a time, while
// whittling the gain-positive candidates down to a legal move.
//
// A P0 violation on edge e = (u → v) with tentative weight
// wr(e) − w(v) + w(u) < 0 repairs to the constraint "v's move forces u to
// move w(v) − wr(e)". That requirement depends only on the committed edge
// weights, so the whole closure is computable up front by a worklist
// relaxation rooted at the gain-positive vertices (exactly the first
// tentative set a fresh engine proposes each round). Around any cycle the
// register sum is ≥ 1 on a legal graph, so propagated requirements
// strictly decrease per lap and the relaxation terminates.
//
// The seeded engine state is a deterministic function of (g, committed
// wr, gains): the worklist is FIFO over ascending vertex IDs and fanin
// edges are scanned in g.In order, so arc insertion order — which the
// min-cut's tie-breaking can observe — is reproducible. Seeding adds only
// constraints that are true of the current problem; the loop's
// findViolations still verifies every tentative against the
// authoritative state before a commit, so the committed fixpoint is the
// lazy cascade's (TestWarmStartMatchesCold asserts bit-identity).
func seedRequirementClosure(e *closureEngine, g *graph.Graph, st *solverstate.State, gains []int64) {
	n := g.NumVertices()
	host := int32(graph.Host)
	inT := make([]bool, n)
	inQ := make([]bool, n)
	queue := make([]int32, 0, n)
	push := func(v int32) {
		if !inQ[v] {
			inQ[v] = true
			queue = append(queue, v)
		}
	}
	for v := 0; v < n; v++ {
		vid := int32(v)
		if vid != host && !e.frozen[v] && gains[v] > 0 {
			inT[v] = true
			push(vid)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		inQ[v] = false
		wv := e.w[v]
		for _, eid := range g.In(graph.VertexID(v)) {
			ed := g.Edge(eid)
			u := int32(ed.From)
			if u == v {
				// Both ends of a self-loop move together: its tentative
				// weight never changes, so it cannot violate P0.
				continue
			}
			need := wv - st.WR(eid)
			if need <= 0 {
				continue
			}
			e.seedArc(v, u)
			if u == host || e.frozen[u] {
				// u cannot absorb registers: the min-cut's frozen
				// handling excludes v (and its forcers) instead.
				continue
			}
			if need > e.w[u] {
				e.w[u] = need
				push(u)
			}
			if !inT[u] {
				inT[u] = true
				push(u)
			}
		}
		if head > 0 && head%n == 0 {
			// Compact the drained prefix so the queue cannot grow without
			// bound on long relaxations.
			queue = append(queue[:0], queue[head:]...)
			head = 0
		}
	}
	e.cacheValid = false
}
