package core

import (
	"fmt"

	"serretime/internal/forest"
	"serretime/internal/maxflow"
	"serretime/internal/telemetry"
)

// closureEngine keeps the active constraints as an explicit digraph and
// extracts the maximum-gain closed set with a min-cut. Between exact
// recomputations it maintains the current set incrementally: a new
// constraint out of a member drags the target's arc-closure in; weight
// updates adjust the running total; any doubt (a frozen vertex joins, or
// the total stops being positive) invalidates the cache, and the caller
// falls back to the exact cut.
type closureEngine struct {
	n      int
	gains  []int64
	w      []int32
	frozen []bool
	arcSet map[[2]int32]struct{}
	arcs   [][2]int32
	arcOut [][]int32
	arcIn  [][]int32

	cacheValid bool
	mask       []bool
	members    []int32
}

func newClosureEngine(n int, gains []int64) *closureEngine {
	e := &closureEngine{
		n:      n,
		gains:  gains,
		w:      make([]int32, n),
		frozen: make([]bool, n),
		arcSet: make(map[[2]int32]struct{}),
		arcOut: make([][]int32, n),
		arcIn:  make([][]int32, n),
	}
	for v := range e.w {
		e.w[v] = 1
	}
	return e
}

func (e *closureEngine) total() int64 {
	var t int64
	for _, v := range e.members {
		t += e.gains[v] * int64(e.w[v])
	}
	return t
}

// PositiveSetFast returns the cached incrementally-maintained set; exact
// reports whether it is known to be the maximum-gain closure.
func (e *closureEngine) PositiveSetFast() ([]int32, []bool, bool) {
	if !e.cacheValid {
		return nil, nil, false
	}
	if e.total() <= 0 {
		e.cacheValid = false
		return nil, nil, false
	}
	return e.members, e.mask, false
}

func (e *closureEngine) PositiveSet() ([]int32, []bool) {
	// Vertices untouched by any constraint are independent: a positive
	// one is always in the maximum closure, a non-positive one never.
	// Only the constraint-touching subgraph needs the min-cut, which
	// keeps the flow network proportional to the discovered constraints
	// rather than to |V|.
	touched := make(map[int32]int32, 2*len(e.arcs)) // vertex -> local id
	var local []int32                               // local id -> vertex
	idOf := func(v int32) int32 {
		if id, ok := touched[v]; ok {
			return id
		}
		id := int32(len(local))
		touched[v] = id
		local = append(local, v)
		return id
	}
	subArcs := make([][2]int32, len(e.arcs))
	for i, a := range e.arcs {
		subArcs[i] = [2]int32{idOf(a[0]), idOf(a[1])}
	}
	weights := make([]int64, len(local))
	frozen := make([]bool, len(local))
	for id, v := range local {
		weights[id] = e.gains[v] * int64(e.w[v])
		frozen[id] = e.frozen[v]
	}
	subSel, subTotal := maxflow.MaxClosure(len(local), weights, frozen, subArcs)

	mask := make([]bool, e.n)
	var members []int32
	var total int64
	for v := 0; v < e.n; v++ {
		vid := int32(v)
		if _, ok := touched[vid]; ok {
			continue
		}
		if !e.frozen[v] && e.gains[v]*int64(e.w[v]) > 0 {
			mask[v] = true
			members = append(members, vid)
			total += e.gains[v] * int64(e.w[v])
		}
	}
	if subTotal > 0 {
		for id, v := range local {
			if subSel[id] {
				mask[v] = true
				members = append(members, v)
			}
		}
		total += subTotal
	}
	if total <= 0 || len(members) == 0 {
		e.cacheValid = false
		return nil, make([]bool, e.n)
	}
	e.members = members
	e.mask = mask
	e.cacheValid = true
	return members, mask
}

func (e *closureEngine) Weight(v int32) int32 { return e.w[v] }

// seedArc records the constraint p → q without the incremental-cache
// maintenance of AddConstraint. Bulk loaders (seedRequirementClosure)
// use it and invalidate the cached set once, when done.
func (e *closureEngine) seedArc(p, q int32) {
	key := [2]int32{p, q}
	if _, dup := e.arcSet[key]; dup {
		return
	}
	e.arcSet[key] = struct{}{}
	e.arcs = append(e.arcs, key)
	e.arcOut[p] = append(e.arcOut[p], q)
	e.arcIn[q] = append(e.arcIn[q], p)
}

func (e *closureEngine) SetWeight(q int32, w int32) error {
	if w < 1 {
		return fmt.Errorf("core: weight %d < 1", w)
	}
	e.w[q] = w
	// The cached total shifts; PositiveSetFast re-sums and invalidates
	// itself if the set stops being positive.
	return nil
}

func (e *closureEngine) AddConstraint(p, q int32) error {
	if p == q {
		return fmt.Errorf("core: self-constraint at %d", p)
	}
	key := [2]int32{p, q}
	if _, dup := e.arcSet[key]; dup {
		return nil
	}
	e.arcSet[key] = struct{}{}
	e.arcs = append(e.arcs, key)
	e.arcOut[p] = append(e.arcOut[p], q)
	e.arcIn[q] = append(e.arcIn[q], p)
	if e.cacheValid && e.mask[p] && !e.mask[q] {
		// Phase 1: explore q's arc-closure without mutating; a frozen
		// vertex inside means the cached set cannot absorb q.
		closure := []int32{q}
		seen := map[int32]bool{q: true}
		frozenHit := e.frozen[q]
		for i := 0; i < len(closure) && !frozenHit; i++ {
			for _, nx := range e.arcOut[closure[i]] {
				if seen[nx] || e.mask[nx] {
					continue
				}
				if e.frozen[nx] {
					frozenHit = true
					break
				}
				seen[nx] = true
				closure = append(closure, nx)
			}
		}
		if frozenHit {
			// Drop every cached member that (transitively) forces q: the
			// remainder is still a closed set (anything pointing into the
			// dropped part would itself force q).
			e.dropForcing(q)
			return nil
		}
		for _, v := range closure {
			e.mask[v] = true
			e.members = append(e.members, v)
		}
	}
	return nil
}

// dropForcing removes from the cached set all members with an arc path to
// target.
func (e *closureEngine) dropForcing(target int32) {
	drop := make(map[int32]bool, 8)
	stack := []int32{target}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pr := range e.arcIn[v] {
			if e.mask[pr] && !drop[pr] {
				drop[pr] = true
				stack = append(stack, pr)
			}
		}
	}
	if len(drop) == 0 {
		return
	}
	kept := e.members[:0]
	for _, m := range e.members {
		if drop[m] {
			e.mask[m] = false
		} else {
			kept = append(kept, m)
		}
	}
	e.members = kept
}

func (e *closureEngine) Freeze(v int32) {
	e.frozen[v] = true
	if e.cacheValid && e.mask[v] {
		e.mask[v] = false
		for i, m := range e.members {
			if m == v {
				e.members = append(e.members[:i], e.members[i+1:]...)
				break
			}
		}
		e.dropForcing(v)
	}
}

func (e *closureEngine) Frozen(v int32) bool { return e.frozen[v] }

// forestEngine adapts the weighted regular forest to the engine interface.
type forestEngine struct {
	f *forest.Forest
}

func newForestEngine(n int, gains []int64, rec telemetry.Recorder) (*forestEngine, error) {
	f, err := forest.New(n, gains)
	if err != nil {
		return nil, err
	}
	f.Instrument(rec)
	return &forestEngine{f: f}, nil
}

func (e *forestEngine) PositiveSet() ([]int32, []bool) { return e.f.PositiveSet() }

// PositiveSetFast: the forest maintains its trees incrementally and its
// set is always authoritative.
func (e *forestEngine) PositiveSetFast() ([]int32, []bool, bool) {
	m, mask := e.f.PositiveSet()
	return m, mask, true
}

func (e *forestEngine) Weight(v int32) int32 { return e.f.Weight(v) }

func (e *forestEngine) SetWeight(q int32, w int32) error {
	if e.f.Weight(q) == w {
		return nil
	}
	if !e.f.IsSingleton(q) {
		e.f.Break(q) // Figure 3: BreakTree before the weight update
	}
	return e.f.SetWeight(q, w)
}

func (e *forestEngine) AddConstraint(p, q int32) error { return e.f.Link(p, q) }
func (e *forestEngine) Freeze(v int32)                 { e.f.Freeze(v) }
func (e *forestEngine) Frozen(v int32) bool            { return e.f.Frozen(v) }
