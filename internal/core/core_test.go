package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"serretime/internal/elw"
	"serretime/internal/graph"
)

// singleMove builds host -0-> A(d) -1-> B(d) -0-> host with high obs on A
// and low on B: the register wants to move forward across B.
func singleMove(dA, dB float64) (*graph.Graph, graph.VertexID, graph.VertexID, []float64, []float64) {
	b := graph.NewBuilder()
	a := b.AddVertex("A", dA)
	bb := b.AddVertex("B", dB)
	b.AddEdge(graph.Host, a, 0)
	b.AddEdge(a, bb, 1)
	b.AddEdge(bb, graph.Host, 0)
	g := b.Build()
	gateObs := []float64{0, 0.9, 0.1}
	edgeObs := []float64{0.5, 0.9, 0.1}
	return g, a, bb, gateObs, edgeObs
}

const kUnits = 1000

func TestGains(t *testing.T) {
	g, a, bb, gateObs, edgeObs := singleMove(1, 1)
	gains, obsInt, err := Gains(g, gateObs, edgeObs, kUnits)
	if err != nil {
		t.Fatal(err)
	}
	// b(A) = K(0.5 − 0.9) = −400; b(B) = K(0.9 − 0.1) = 800.
	if gains[a] != -400 || gains[bb] != 800 {
		t.Fatalf("gains = %v", gains)
	}
	if obsInt[1] != 900 {
		t.Fatalf("obsInt = %v", obsInt)
	}
	if Objective(g, graph.NewRetiming(g), obsInt) != 900 {
		t.Fatal("initial objective wrong")
	}
}

func TestMinimizeSingleMove(t *testing.T) {
	g, _, bb, gateObs, edgeObs := singleMove(1, 1)
	gains, obsInt, _ := Gains(g, gateObs, edgeObs, kUnits)
	res, err := Minimize(g, gains, obsInt, Options{Phi: 100, Ts: 0, Th: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.R[bb] != -1 {
		t.Fatalf("r(B) = %d, want -1 (r = %v)", res.R[bb], res.R)
	}
	if res.Objective != 100 { // register now on B->host with obs 0.1
		t.Fatalf("objective = %d, want 100", res.Objective)
	}
	if res.Rounds < 1 {
		t.Fatal("no committed rounds")
	}
}

func TestMinimizeBlockedByP1(t *testing.T) {
	// With Φ just fitting each gate alone, removing the register merges a
	// path of length dA+dB = 10 > Φ: P1' forbids the move and the chain of
	// constraints freezes at the host.
	g, _, _, gateObs, edgeObs := singleMove(5, 5)
	gains, obsInt, _ := Gains(g, gateObs, edgeObs, kUnits)
	res, err := Minimize(g, gains, obsInt, Options{Phi: 6, Ts: 0, Th: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != res.Initial {
		t.Fatalf("objective moved: %d -> %d (r=%v)", res.Initial, res.Objective, res.R)
	}
	if res.Violations[KindP1] == 0 && res.Violations[KindP0] == 0 {
		t.Fatalf("expected a repair, got %v", res.Violations)
	}
}

// p2Graph: host -0-> A(5) -1-> B(1) -0-> C(5) -0-> host.
// Moving the register forward across B shortens its launched path from
// d(B)+d(C)... the tentative register on (B,C) launches just d(C)=5,
// while the original on (A,B) launches d(B)+5−5 = 6 (through B then C).
func p2Graph() (*graph.Graph, graph.VertexID, []float64, []float64) {
	b := graph.NewBuilder()
	a := b.AddVertex("A", 5)
	bb := b.AddVertex("B", 1)
	c := b.AddVertex("C", 5)
	b.AddEdge(graph.Host, a, 0)
	b.AddEdge(a, bb, 1)
	b.AddEdge(bb, c, 0)
	b.AddEdge(c, graph.Host, 0)
	g := b.Build()
	gateObs := []float64{0, 0.9, 0.1, 0.5}
	edgeObs := []float64{0.5, 0.9, 0.1, 0.5}
	return g, bb, gateObs, edgeObs
}

func TestMinObsWinRespectsRmin(t *testing.T) {
	g, bb, gateObs, edgeObs := p2Graph()
	gains, obsInt, _ := Gains(g, gateObs, edgeObs, kUnits)

	// Baseline MinObs happily moves the register (obs 0.9 -> 0.1).
	base, err := Minimize(g, gains, obsInt, Options{Phi: 100, Ts: 0, Th: 2})
	if err != nil {
		t.Fatal(err)
	}
	if base.R[bb] != -1 {
		t.Fatalf("MinObs r(B) = %d, want -1", base.R[bb])
	}

	// MinObsWin with Rmin = 6 (the initial hold slack) must refuse: the
	// moved register would launch a 5-delay path.
	win, err := Minimize(g, gains, obsInt, Options{Phi: 100, Ts: 0, Th: 2, Rmin: 6, ELWConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	if win.R[bb] != 0 {
		t.Fatalf("MinObsWin r(B) = %d, want 0 (r=%v)", win.R[bb], win.R)
	}
	if win.Violations[KindP2] == 0 {
		t.Fatal("no P2' repair recorded")
	}

	// Relaxing Rmin to 5 allows the move again.
	rel, err := Minimize(g, gains, obsInt, Options{Phi: 100, Ts: 0, Th: 2, Rmin: 5, ELWConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	if rel.R[bb] != -1 {
		t.Fatalf("relaxed MinObsWin r(B) = %d, want -1", rel.R[bb])
	}
}

func TestMinimizeValidation(t *testing.T) {
	g, _, _, gateObs, edgeObs := singleMove(1, 1)
	gains, obsInt, _ := Gains(g, gateObs, edgeObs, kUnits)
	if _, err := Minimize(g, gains[:1], obsInt, Options{Phi: 10}); err == nil {
		t.Fatal("short gains accepted")
	}
	if _, err := Minimize(g, gains, obsInt[:1], Options{Phi: 10}); err == nil {
		t.Fatal("short obsInt accepted")
	}
	if _, err := Minimize(g, gains, obsInt, Options{Phi: 0}); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestMinObsExactSingleMove(t *testing.T) {
	g, _, bb, gateObs, edgeObs := singleMove(1, 1)
	gains, obsInt, _ := Gains(g, gateObs, edgeObs, kUnits)
	res, err := MinObsExact(g, gains, obsInt, 100, 0, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.R[bb] != -1 || res.Objective != 100 {
		t.Fatalf("exact: r=%v obj=%d", res.R, res.Objective)
	}
}

// randomInstance builds a random synchronous graph with random gate
// observabilities, plus a feasible clock period.
func randomInstance(rng *rand.Rand, n int) (*graph.Graph, []int64, []int64, float64) {
	b := graph.NewBuilder()
	vs := make([]graph.VertexID, n)
	for i := 0; i < n; i++ {
		vs[i] = b.AddVertex("v", 1+float64(rng.Intn(4)))
	}
	b.AddEdge(graph.Host, vs[0], int32(rng.Intn(2)))
	for i := 1; i < n; i++ {
		b.AddEdge(vs[rng.Intn(i)], vs[i], int32(rng.Intn(3)))
		if rng.Intn(2) == 0 {
			b.AddEdge(vs[rng.Intn(i)], vs[i], int32(rng.Intn(2)))
		}
		if rng.Intn(4) == 0 {
			b.AddEdge(vs[i], vs[rng.Intn(i+1)], 1+int32(rng.Intn(2)))
		}
	}
	b.AddEdge(vs[n-1], graph.Host, int32(rng.Intn(2)))
	b.AddEdge(vs[rng.Intn(n)], graph.Host, 0)
	g := b.Build()
	// No dangling cones: every gate must reach a latch point, as in a
	// real netlist (dead logic makes timing obligations retiming-
	// dependent and incomparable across solvers; see DESIGN.md).
	{
		bb := graph.NewBuilder()
		for v := 1; v < g.NumVertices(); v++ {
			bb.AddVertex(g.Name(graph.VertexID(v)), g.Delay(graph.VertexID(v)))
		}
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edge(graph.EdgeID(e))
			bb.AddEdge(ed.From, ed.To, ed.W)
		}
		for v := 1; v < g.NumVertices(); v++ {
			if len(g.Out(graph.VertexID(v))) == 0 {
				bb.AddEdge(graph.VertexID(v), graph.Host, 0)
			}
		}
		g = bb.Build()
	}
	gateObs := make([]float64, g.NumVertices())
	for v := 1; v < g.NumVertices(); v++ {
		gateObs[v] = float64(rng.Intn(kUnits)) / kUnits
	}
	edgeObs := make([]float64, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if ed.From == graph.Host {
			edgeObs[e] = float64(rng.Intn(kUnits)) / kUnits
		} else {
			edgeObs[e] = gateObs[ed.From]
		}
	}
	gains, obsInt, _ := Gains(g, gateObs, edgeObs, kUnits)
	// A generous but not infinite period.
	_, crit, _ := g.ArrivalTimes(graph.NewRetiming(g))
	phi := crit * (1 + rng.Float64())
	_ = obsInt
	return g, gains, obsInt, phi
}

func TestPropertyMinObsMatchesExact(t *testing.T) {
	// The incremental forest-based MinObs must reach the exact optimum of
	// the forward-restricted program on random instances.
	mismatches := 0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, gains, obsInt, phi := randomInstance(rng, 3+rng.Intn(18))
		if g.Check() != nil {
			return true
		}
		inc, err := Minimize(g, gains, obsInt, Options{Phi: phi, Ts: 0, Th: 2})
		if err != nil {
			t.Logf("seed %d: incremental error: %v", seed, err)
			return false
		}
		ex, err := MinObsExact(g, gains, obsInt, phi, 0, true, Options{})
		if err != nil {
			t.Logf("seed %d: exact error: %v", seed, err)
			return false
		}
		if inc.Objective != ex.Objective {
			mismatches++
			t.Logf("seed %d: incremental %d vs exact %d (initial %d)",
				seed, inc.Objective, ex.Objective, ex.Initial)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatalf("%v (%d mismatches)", err, mismatches)
	}
}

func TestPropertyMinObsWinInvariants(t *testing.T) {
	// MinObsWin results are legal forward retimings satisfying P1' and
	// P2', and never worsen the objective.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, gains, obsInt, phi := randomInstance(rng, 3+rng.Intn(18))
		if g.Check() != nil {
			return true
		}
		p := elw.Params{Phi: phi, Ts: 0, Th: 2}
		lab, err := elw.ComputeLabels(g, graph.NewRetiming(g), p)
		if err != nil {
			return true
		}
		rmin, found := lab.MinHoldSlack(g, graph.NewRetiming(g), p)
		if !found {
			rmin = g.MinDelay()
		}
		// The unretimed circuit must satisfy P1' for the run to be valid.
		if _, ok := lab.CheckP1(g); !ok {
			return true
		}
		res, err := Minimize(g, gains, obsInt, Options{Phi: phi, Ts: 0, Th: 2, Rmin: rmin, ELWConstraints: true})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if g.CheckLegal(res.R) != nil {
			return false
		}
		for v := 1; v < g.NumVertices(); v++ {
			if res.R[v] > 0 {
				return false
			}
		}
		if res.Objective > res.Initial {
			return false
		}
		lab, err = elw.ComputeLabels(g, res.R, p)
		if err != nil {
			return false
		}
		if _, ok := lab.CheckP1(g); !ok {
			t.Logf("seed %d: P1' violated in result", seed)
			return false
		}
		if _, ok := lab.CheckP2(g, res.R, p, rmin); !ok {
			t.Logf("seed %d: P2' violated in result", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWinNeverBeatsUnconstrained(t *testing.T) {
	// Adding P2' constraints can only reduce the achievable improvement.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, gains, obsInt, phi := randomInstance(rng, 3+rng.Intn(15))
		if g.Check() != nil {
			return true
		}
		p := elw.Params{Phi: phi, Ts: 0, Th: 2}
		lab, err := elw.ComputeLabels(g, graph.NewRetiming(g), p)
		if err != nil {
			return true
		}
		if _, ok := lab.CheckP1(g); !ok {
			return true
		}
		rmin, found := lab.MinHoldSlack(g, graph.NewRetiming(g), p)
		if !found {
			return true
		}
		base, err := Minimize(g, gains, obsInt, Options{Phi: phi, Ts: 0, Th: 2})
		if err != nil {
			return false
		}
		win, err := Minimize(g, gains, obsInt, Options{Phi: phi, Ts: 0, Th: 2, Rmin: rmin, ELWConstraints: true})
		if err != nil {
			return false
		}
		return win.Objective >= base.Objective
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMinAreaMatchesExact: with uniform observabilities the problem is
// classic min-area retiming; the incremental algorithm must still match
// the exact LP optimum.
func TestMinAreaMatchesExact(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, _, _, phi := randomInstance(rng, 3+rng.Intn(15))
		if g.Check() != nil {
			continue
		}
		ones := make([]float64, g.NumVertices())
		for v := range ones {
			ones[v] = 1
		}
		edgeOnes := make([]float64, g.NumEdges())
		for e := range edgeOnes {
			edgeOnes[e] = 1
		}
		gains, obsInt, err := Gains(g, ones, edgeOnes, 1)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := Minimize(g, gains, obsInt, Options{Phi: phi, Ts: 0, Th: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ex, err := MinObsExact(g, gains, obsInt, phi, 0, true, Options{})
		if err != nil {
			continue
		}
		if inc.Objective != ex.Objective {
			t.Errorf("seed %d: min-area incremental %d != exact %d", seed, inc.Objective, ex.Objective)
		}
	}
}
