package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"serretime/internal/elw"
	"serretime/internal/graph"
	"serretime/internal/telemetry"
)

// TestPropertyIncrementalMatchesFullRecompute runs the solver on random
// instances in three modes — dirty-region patching (the default), patching
// with the oracle cross-check armed, and the pre-refactor full recompute —
// and requires bit-identical results: same objective, same retiming, same
// iteration counts, same violation tallies. This is the refactor's
// behavior-preservation property at the solver level.
func TestPropertyIncrementalMatchesFullRecompute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, gains, obsInt, phi := randomInstance(rng, 3+rng.Intn(18))
		if g.Check() != nil {
			return true
		}
		p := elw.Params{Phi: phi, Ts: 0, Th: 2}
		seedLab, err := elw.ComputeLabels(g, graph.NewRetiming(g), p)
		if err != nil {
			return true
		}
		// A valid P2' budget: the initial state's own hold slack, as the
		// Section V initialization would pick (same as the MinObsWin
		// invariants property test).
		rmin, found := seedLab.MinHoldSlack(g, graph.NewRetiming(g), p)
		if !found {
			rmin = g.MinDelay()
		}
		if _, ok := seedLab.CheckP1(g); !ok {
			return true
		}
		for _, win := range []bool{false, true} {
			base := Options{Phi: phi, Ts: 0, Th: 2, Rmin: rmin, ELWConstraints: win}

			full := base
			full.FullLabelRecompute = true
			want, err := Minimize(g, gains, obsInt, full)
			if err != nil {
				t.Fatalf("seed %d win=%v full: %v", seed, win, err)
			}

			for _, mode := range []struct {
				name string
				mut  func(*Options)
			}{
				{"patch", func(o *Options) {}},
				{"patch-seeded", func(o *Options) { o.SeedLabels = seedLab }},
				{"checked", func(o *Options) { o.SeedLabels = seedLab; o.CheckLabels = true }},
			} {
				opt := base
				mode.mut(&opt)
				got, err := Minimize(g, gains, obsInt, opt)
				if err != nil {
					t.Fatalf("seed %d win=%v %s: %v", seed, win, mode.name, err)
				}
				sameViol := len(got.Violations) == len(want.Violations)
				for k, n := range want.Violations {
					sameViol = sameViol && got.Violations[k] == n
				}
				if got.Objective != want.Objective || got.Initial != want.Initial ||
					got.Rounds != want.Rounds || got.Steps != want.Steps || !sameViol {
					t.Fatalf("seed %d win=%v %s: got obj=%d rounds=%d steps=%d viol=%v, full recompute obj=%d rounds=%d steps=%d viol=%v",
						seed, win, mode.name, got.Objective, got.Rounds, got.Steps, got.Violations,
						want.Objective, want.Rounds, want.Steps, want.Violations)
				}
				for v := range want.R {
					if got.R[v] != want.R[v] {
						t.Fatalf("seed %d win=%v %s: r[%d] = %d, full recompute %d",
							seed, win, mode.name, v, got.R[v], want.R[v])
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalTelemetrySplit checks that the default mode actually
// patches (hit ratio > 0) and that the ablation mode never does.
func TestIncrementalTelemetrySplit(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var g *graph.Graph
	var gains, obsInt []int64
	var rmin, phi float64
	var patched bool
	for try := 0; try < 100 && !patched; try++ {
		g, gains, obsInt, phi = randomInstance(rng, 12+rng.Intn(10))
		if g.Check() != nil {
			continue
		}
		p := elw.Params{Phi: phi, Ts: 0, Th: 2}
		seedLab, err := elw.ComputeLabels(g, graph.NewRetiming(g), p)
		if err != nil {
			continue
		}
		var found bool
		rmin, found = seedLab.MinHoldSlack(g, graph.NewRetiming(g), p)
		if !found {
			rmin = g.MinDelay()
		}
		if _, ok := seedLab.CheckP1(g); !ok {
			continue
		}
		col := telemetry.NewCollector()
		if _, err := Minimize(g, gains, obsInt, Options{
			Phi: phi, Ts: 0, Th: 2, Rmin: rmin, ELWConstraints: true,
			SeedLabels: seedLab, Recorder: col,
		}); err != nil {
			t.Fatal(err)
		}
		patched = col.Stats().Counter(telemetry.CounterLabelPatches) > 0
	}
	if !patched {
		t.Fatal("no random instance ever took the patch path")
	}
	col := telemetry.NewCollector()
	if _, err := Minimize(g, gains, obsInt, Options{
		Phi: phi, Ts: 0, Th: 2, Rmin: rmin, ELWConstraints: true,
		FullLabelRecompute: true, Recorder: col,
	}); err != nil {
		t.Fatal(err)
	}
	if n := col.Stats().Counter(telemetry.CounterLabelPatches); n != 0 {
		t.Fatalf("ablation mode patched %d times", n)
	}
}
