// Package core implements the paper's contribution: MinObsWin (Algorithm
// 1), the minimum-observability retiming under error-latching window
// constraints, together with the Efficient MinObs baseline obtained by
// disabling the ELW (P2') handling — exactly the reduction Section VI uses
// for comparison.
//
// The algorithm starts from a feasible retiming (Section V initialization,
// applied by rebasing the graph) and iteratively improves the register
// observability objective: the weighted regular forest proposes the
// maximum-gain closed set I = V_P(F); the tentative move (decrease every
// v ∈ I by its weight w(v)) is checked against P0 (register counts), P1'
// (setup / clock period via the L labels) and P2' (shortest-path / ELW via
// the R labels); each violation adds an active constraint to the forest
// (possibly updating a vertex weight through BreakTree); a clean check
// commits the move. The algorithm terminates when V_P(F) is empty.
package core

import (
	"context"
	"fmt"
	"math"

	"serretime/internal/elw"
	"serretime/internal/guard"
	"serretime/internal/solverstate"
	"serretime/internal/telemetry"

	"serretime/internal/graph"
)

const eps = 1e-9

// Violation kinds, used both for diagnostics and for the configurable
// check order (ablation: the paper checks P2', then P0, then P1').
type Kind uint8

const (
	// KindP2 is an error-latching-window (shortest path) violation.
	KindP2 Kind = iota
	// KindP0 is a negative edge register count.
	KindP0
	// KindP1 is a clock period (longest path) violation.
	KindP1
)

func (k Kind) String() string {
	switch k {
	case KindP0:
		return "P0"
	case KindP1:
		return "P1'"
	case KindP2:
		return "P2'"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Engine selects the data structure maintaining the active constraints
// and proposing the candidate move set I.
type Engine uint8

const (
	// EngineClosure (default) computes the maximum-gain closed set of the
	// active-constraint digraph exactly every iteration, via the
	// max-weight-closure min-cut reduction. It matches the exact LP
	// optimum on the forward-restricted problem.
	EngineClosure Engine = iota
	// EngineForest uses the paper's weighted regular forest (Section IV).
	// Our reconstruction of the forest restructuring rules from the
	// paper's sketch can over-couple trees and terminate early on rare
	// structures, so it is kept for fidelity and ablation.
	EngineForest
)

// Options configures Minimize.
type Options struct {
	// Phi, Ts, Th are the timing parameters of P1'/P2'.
	Phi, Ts, Th float64
	// Rmin is the shortest-path bound of P2'.
	Rmin float64
	// ELWConstraints enables the P2' handling; disabling it yields the
	// Efficient MinObs baseline of [17] (Section VI: "commenting out
	// Line 9-12 and Line 19-21 in Algorithm 1").
	ELWConstraints bool
	// CheckOrder permutes the violation checks. The default is P0, P2',
	// P1' (structural first — see findViolations); the paper's published
	// order (P2', P0, P1') reaches the same fixpoint and is benchmarked
	// as an ablation.
	CheckOrder []Kind
	// MaxSteps caps the total number of algorithm steps (0 = automatic).
	MaxSteps int
	// Engine selects the closed-set machinery.
	Engine Engine
	// SingleViolation repairs one violation per iteration, exactly as
	// Algorithm 1 is written. By default all violations of one tentative
	// move are batched per iteration (at most one repair per target
	// vertex), which changes nothing about the fixpoint but avoids a full
	// timing recomputation per constraint on large circuits.
	SingleViolation bool
	// StallSteps arms a progress watchdog: when the committed objective
	// has not improved for this many consecutive steps, Minimize aborts
	// with guard.ErrStalled and returns the best retiming committed so
	// far. 0 disables the watchdog (the MaxSteps cap still bounds the
	// run).
	StallSteps int
	// SeedLabels primes the solver state with the L/R labels of the
	// starting retiming (the Section V initialization computes exactly
	// these when selecting Rmin), letting the first tentative move patch
	// instead of paying a full recompute. Must equal elw.ComputeLabels of
	// g at the zero retiming; nil bootstraps with one full computation.
	SeedLabels *elw.Labels
	// CheckLabels cross-checks every incremental label patch against the
	// elw.ComputeLabels oracle and aborts with an error unwrapping to
	// solverstate.ErrLabelMismatch (and guard.ErrInternal) on divergence.
	// Debug mode: roughly restores the recompute-per-move cost.
	CheckLabels bool
	// FullLabelRecompute disables dirty-region label patching, restoring
	// the pre-incremental recompute-per-move behavior (ablation).
	FullLabelRecompute bool
	// DirtyThreshold overrides the dirty-region fallback threshold
	// (fraction of the gate count; 0 = solverstate's default).
	DirtyThreshold float64
	// Recorder receives the run's telemetry: phase spans (positive-set,
	// find-violations, elw-recompute, repair), move/violation counters,
	// and the peak retiming span gauge. nil records nothing (the no-op
	// recorder adds zero allocations to the hot path).
	Recorder telemetry.Recorder
	// Workers bounds the CPU workers of parallelizable sub-analyses —
	// today the exact solver's W/D matrix build (MinObsExact). 0 (or
	// negative) means one worker per available CPU; 1 is the sequential
	// path. Results are bit-identical for every value (DESIGN.md §11).
	Workers int
	// WarmStart bulk-seeds every fresh closure engine with the P0
	// requirement closure of the committed state (seedRequirementClosure)
	// instead of letting the loop discover the same constraints one
	// violation batch at a time. The commit criterion is unchanged — a
	// set is only committed after findViolations verifies it against the
	// authoritative state — so the fixpoint is the one the lazy cascade
	// reaches (see TestWarmStartMatchesCold); only the discovery cost
	// changes. Ignored by EngineForest. Used by the ECO/session delta
	// path (DESIGN.md §17).
	WarmStart bool
}

// engine abstracts the closed-set machinery shared by Minimize.
type engine interface {
	// PositiveSet returns the candidate move set and a membership mask,
	// computed exactly (authoritative for termination and commits).
	PositiveSet() ([]int32, []bool)
	// PositiveSetFast returns a cheaply-maintained candidate set; the
	// third result reports whether it is authoritative. A false result
	// with an empty set only means the cache is invalid.
	PositiveSetFast() ([]int32, []bool, bool)
	// Weight returns the current move weight of v.
	Weight(v int32) int32
	// SetWeight updates the move weight of q.
	SetWeight(q int32, w int32) error
	// AddConstraint records that p's move forces q's.
	AddConstraint(p, q int32) error
	// Freeze marks v immovable.
	Freeze(v int32)
	// Frozen reports whether v is immovable.
	Frozen(v int32) bool
}

// Result reports the outcome of Minimize.
type Result struct {
	// R is the resulting retiming of the (rebased) graph; R <= 0
	// everywhere (forward moves only).
	R graph.Retiming
	// Rounds is the number of committed improvement rounds (#J).
	Rounds int
	// Steps is the total number of algorithm iterations (tentative moves
	// checked).
	Steps int
	// Objective is Σ_e obsInt(e)·w_r(e), the integer-scaled register
	// observability after retiming; Initial is its starting value.
	Objective, Initial int64
	// Violations counts repaired violations by kind.
	Violations map[Kind]int
}

// Gains computes the per-vertex gain b(v) of Section III-C in integer K
// units: the register-observability reduction obtained by moving one
// register from every fanin edge of v to every fanout edge.
//
//	b(v) = Σ_{e ∈ In(v)} round(K·edgeObs(e)) − outdeg(v)·round(K·obs(v))
//
// (The paper's formula sums obs of the fanout gates; eq. (5) makes clear a
// register on (v,x) carries obs(v), so we read that as a typo — see
// DESIGN.md. GainsLiteral implements the literal formula for ablation.)
func Gains(g *graph.Graph, gateObs, edgeObs []float64, k int) ([]int64, []int64, error) {
	if len(gateObs) != g.NumVertices() || len(edgeObs) != g.NumEdges() {
		return nil, nil, fmt.Errorf("core: obs length mismatch")
	}
	obsInt := make([]int64, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		obsInt[e] = int64(math.Round(float64(k) * edgeObs[e]))
	}
	gains := make([]int64, g.NumVertices())
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if ed.To != graph.Host {
			gains[ed.To] += obsInt[e]
		}
		if ed.From != graph.Host {
			gains[ed.From] -= obsInt[e]
		}
	}
	gains[graph.Host] = 0
	return gains, obsInt, nil
}

// GainsLiteral computes b(v) with the paper's literal formula
// K(Σ_in obs(u) − Σ_out obs(x)), crediting fanout-gate observabilities.
func GainsLiteral(g *graph.Graph, gateObs, edgeObs []float64, k int) ([]int64, []int64, error) {
	if len(gateObs) != g.NumVertices() || len(edgeObs) != g.NumEdges() {
		return nil, nil, fmt.Errorf("core: obs length mismatch")
	}
	obsInt := make([]int64, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		obsInt[e] = int64(math.Round(float64(k) * edgeObs[e]))
	}
	gains := make([]int64, g.NumVertices())
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if ed.To != graph.Host {
			gains[ed.To] += obsInt[e]
			if ed.From != graph.Host {
				gains[ed.From] -= int64(math.Round(float64(k) * gateObs[ed.To]))
			}
		} else if ed.From != graph.Host {
			// Fanout is the environment; charge the driver's own
			// observability (a boundary register still has obs(u)).
			gains[ed.From] -= obsInt[e]
		}
	}
	gains[graph.Host] = 0
	return gains, obsInt, nil
}

// Objective evaluates Σ_e obsInt(e)·w_r(e).
func Objective(g *graph.Graph, r graph.Retiming, obsInt []int64) int64 {
	var s int64
	for e := 0; e < g.NumEdges(); e++ {
		s += obsInt[e] * int64(g.WR(graph.EdgeID(e), r))
	}
	return s
}

type violation struct {
	kind Kind
	p, q graph.VertexID
	w    int32 // additional movement required of q
}

// Minimize runs Algorithm 1 on g (already rebased to the Section V
// initialization) with per-vertex gains (from Gains) and per-edge integer
// observabilities obsInt.
func Minimize(g *graph.Graph, gains []int64, obsInt []int64, opt Options) (*Result, error) {
	return MinimizeCtx(context.Background(), g, gains, obsInt, opt)
}

// MinimizeCtx is Minimize under cooperative cancellation: the iteration
// loop checks ctx at every step and aborts with an error unwrapping to
// guard.ErrTimeout once it is done. On cancellation (and on a watchdog
// stall, see Options.StallSteps) the returned Result is non-nil and holds
// the last *committed* retiming — a legal, verified-improving prefix of
// the full run that callers may still use — alongside the error.
func MinimizeCtx(ctx context.Context, g *graph.Graph, gains []int64, obsInt []int64, opt Options) (*Result, error) {
	// Fault-injection sites: tests arm these to exercise the callers'
	// panic-isolation and degradation paths (guard.Run turns the panic
	// into guard.ErrInternal).
	guard.Failpoint("core.Minimize")
	if opt.ELWConstraints {
		guard.Failpoint("core.Minimize.elw")
	}
	if len(gains) != g.NumVertices() {
		return nil, fmt.Errorf("core: gains length mismatch")
	}
	if len(obsInt) != g.NumEdges() {
		return nil, fmt.Errorf("core: obsInt length mismatch")
	}
	if opt.Phi <= 0 {
		return nil, fmt.Errorf("core: clock period %g", opt.Phi)
	}
	order := opt.CheckOrder
	if len(order) == 0 {
		// Default order puts the structural P0 check first: during long
		// constraint-discovery cascades this avoids recomputing the
		// timing labels entirely (checks stop at the first kind that
		// fires). Algorithm 1's published order (P2', P0, P1') is
		// available through CheckOrder and benchmarked as an ablation;
		// both reach the same fixpoint (see TestCheckOrderInvariance).
		order = []Kind{KindP0, KindP2, KindP1}
	}
	maxSteps := opt.MaxSteps
	if maxSteps == 0 {
		maxSteps = 80*g.NumVertices() + 2000
	}
	params := elw.Params{Phi: opt.Phi, Ts: opt.Ts, Th: opt.Th}
	rec := telemetry.OrNop(opt.Recorder)

	res := &Result{
		R:          graph.NewRetiming(g),
		Violations: map[Kind]int{},
	}
	// The transactional state owns the retiming vector, the retimed edge
	// weights, the L/R labels and the objective; tentative moves are
	// applied with Begin and then either committed or rolled back. It
	// replaces the recompute-per-move pattern: labels are patched over
	// the dirty region instead of rebuilt per tentative.
	st, err := solverstate.New(g, res.R, solverstate.Config{
		Params:         params,
		ObsInt:         obsInt,
		SeedLabels:     opt.SeedLabels,
		CheckLabels:    opt.CheckLabels,
		FullRecompute:  opt.FullLabelRecompute,
		DirtyThreshold: opt.DirtyThreshold,
		Recorder:       opt.Recorder,
	})
	if err != nil {
		return nil, err
	}
	res.Initial = st.Objective()

	newEngine := func() (engine, error) {
		var e engine
		switch opt.Engine {
		case EngineForest:
			fe, err := newForestEngine(g.NumVertices(), gains, rec)
			if err != nil {
				return nil, err
			}
			e = fe
		default:
			e = newClosureEngine(g.NumVertices(), gains)
		}
		e.Freeze(int32(graph.Host))
		if opt.WarmStart {
			if ce, ok := e.(*closureEngine); ok {
				seedRequirementClosure(ce, g, st, gains)
			}
		}
		return e, nil
	}
	eng, err := newEngine()
	if err != nil {
		return nil, err
	}

	// The watchdog observes the committed objective once per step; long
	// constraint-discovery cascades that never reach a clean commit are
	// the stall signature it exists to catch.
	wd := guard.NewWatchdog("core.Minimize", opt.StallSteps)
	committedObj := res.Initial

	maskSnap := make([]bool, g.NumVertices())
	needExact := true
	// curPhase tracks the last inner-loop activity so a timeout or stall
	// observed at the loop head is attributed to the phase the run
	// actually died in (error text and telemetry trace agree).
	curPhase := telemetry.PhaseMinimize.String()
	for res.Steps = 0; res.Steps < maxSteps; res.Steps++ {
		if cerr := guard.CheckpointIn(ctx, "core.Minimize", curPhase); cerr != nil {
			res.Objective = st.CommittedObjective()
			return res, cerr
		}
		wd.Phase = curPhase
		wdResets := wd.Resets()
		serr := wd.Observe(committedObj)
		if d := wd.Resets() - wdResets; d > 0 {
			rec.Count(telemetry.CounterWatchdogResets, int64(d))
		}
		if serr != nil {
			res.Objective = st.CommittedObjective()
			return res, serr
		}
		rec.Count(telemetry.CounterSteps, 1)
		var members []int32
		var mask []bool
		exact := false
		if needExact {
			ExactCalls++
			rec.Count(telemetry.CounterExactClosures, 1)
			rec.SpanStart(telemetry.PhasePositiveSet)
			members, mask = eng.PositiveSet()
			rec.SpanEnd(telemetry.PhasePositiveSet, nil)
			curPhase = telemetry.PhasePositiveSet.String()
			exact = true
			needExact = false
		} else {
			members, mask, exact = eng.PositiveSetFast()
			if mask == nil {
				needExact = true
				continue
			}
		}
		if len(members) == 0 {
			if exact {
				break // optimal: no positive closed set remains
			}
			needExact = true
			continue
		}
		// Tentative move. The mask is snapshotted: repairs may extend the
		// engine's cached set mid-batch, but the bookkeeping must reflect
		// what actually moved in THIS tentative.
		copy(maskSnap, mask)
		st.Begin(members, eng.Weight)
		limit := 0
		if opt.SingleViolation {
			limit = 1
		}
		rec.SpanStart(telemetry.PhaseFindViolations)
		viols, err := findViolations(g, st, maskSnap, params, opt, order, limit)
		rec.SpanEnd(telemetry.PhaseFindViolations, err)
		curPhase = telemetry.PhaseFindViolations.String()
		if err != nil {
			st.Rollback()
			return nil, err
		}
		if len(viols) == 0 {
			if !exact {
				// Clean, but the set may not be maximal: recompute the
				// exact closure before committing.
				st.Rollback()
				needExact = true
				continue
			}
			// Commit and start a fresh round.
			st.Commit()
			copy(res.R, st.R())
			res.Rounds++
			rec.Count(telemetry.CounterCommits, 1)
			rec.Gauge(telemetry.GaugePeakRetimingSpan, peakSpan(res.R))
			committedObj = st.CommittedObjective()
			if eng, err = newEngine(); err != nil {
				return nil, err
			}
			needExact = true
			continue
		}
		st.Rollback()
		rec.SpanStart(telemetry.PhaseRepair)
		for _, v := range viols {
			res.Violations[v.kind]++
			rec.Count(violationCounter(v.kind), 1)
			if err := repair(eng, v, maskSnap); err != nil {
				rec.SpanEnd(telemetry.PhaseRepair, err)
				return nil, err
			}
		}
		rec.SpanEnd(telemetry.PhaseRepair, nil)
		curPhase = telemetry.PhaseRepair.String()
	}
	if res.Steps >= maxSteps {
		res.Objective = st.CommittedObjective()
		return res, fmt.Errorf("core: step cap %d exceeded (possible oscillation): %w",
			maxSteps, &guard.StallError{Op: "core.Minimize", Phase: curPhase, Steps: maxSteps, Objective: committedObj})
	}
	res.Objective = st.CommittedObjective()
	if err := g.CheckLegal(res.R); err != nil {
		return nil, fmt.Errorf("core: result illegal: %w", err)
	}
	return res, nil
}

// repair integrates one violation into the engine: update q's required
// total movement if it changed (the forest engine runs BreakTree first,
// per Figure 3), then record the constraint (p, q) when p is moving.
func repair(eng engine, v *violation, inI []bool) error {
	q := int32(v.q)
	if eng.Frozen(q) {
		// q cannot move at all: freeze p's tree by linking.
		if !inI[v.p] {
			return fmt.Errorf("core: %v violation anchored at idle vertex %d", v.kind, v.p)
		}
		return eng.AddConstraint(int32(v.p), q)
	}
	cur := eng.Weight(q)
	required := v.w
	if inI[v.q] {
		required += cur
	}
	if required != cur {
		if err := eng.SetWeight(q, required); err != nil {
			return err
		}
	}
	if inI[v.p] && v.p != v.q {
		return eng.AddConstraint(int32(v.p), q)
	}
	if !inI[v.p] && !inI[v.q] && required == cur {
		return fmt.Errorf("core: %v violation with no moving endpoint (p=%d q=%d)", v.kind, v.p, v.q)
	}
	return nil
}

// findViolations checks the tentative state in the configured order and
// returns violations, at most one per target vertex q (repairs to the
// same vertex must be observed sequentially — see Figure 3's weight
// updates). limit > 0 caps the count (1 reproduces Algorithm 1 verbatim);
// an empty result means the move is clean.
//
// The labels come from the transaction itself (st.Labels), so every
// check kind of one pass observes labels consistent with the same edge
// weights by construction — the previous lazy recompute-per-pass closure
// could in principle be read against weights repaired since it was
// filled; owning both in one transaction closes that hazard.
func findViolations(g *graph.Graph, st *solverstate.State, inI []bool, params elw.Params, opt Options, order []Kind, limit int) ([]*violation, error) {
	wr := st.EdgeWeights()
	var out []*violation
	seenQ := make(map[graph.VertexID]bool)
	add := func(v *violation) bool {
		if seenQ[v.q] {
			return false
		}
		seenQ[v.q] = true
		out = append(out, v)
		return limit > 0 && len(out) >= limit
	}
	for _, k := range order {
		if len(out) > 0 {
			// Repair one kind of violation per iteration: later kinds are
			// checked once the earlier ones are clean (cheap structural
			// checks gate the expensive timing-label checks).
			break
		}
		switch k {
		case KindP0:
			// Negatives can only sit on edges the open move changed (the
			// committed state is legal); the state reports them sorted by
			// EdgeID — the same sequence a full ascending scan finds.
			for _, eid := range st.NegativeTentativeEdges() {
				w := wr[eid]
				ed := g.Edge(eid)
				if !inI[ed.To] {
					return nil, fmt.Errorf("core: P0 violation on edge %d without mover", eid)
				}
				if add(&violation{kind: KindP0, p: ed.To, q: ed.From, w: -w}) {
					return out, nil
				}
			}
		case KindP1:
			lb, err := st.Labels()
			if err != nil {
				return nil, err
			}
			for u := 1; u < g.NumVertices(); u++ {
				uid := graph.VertexID(u)
				if !lb.HasWindow[u] || lb.L[u] >= g.Delay(uid)-eps {
					continue
				}
				z := lb.LT[u]
				if z == uid || !inI[z] {
					return nil, fmt.Errorf("core: P1' violation at %s with endpoint %s outside I (Phi too tight?)",
						g.Name(uid), g.Name(z))
				}
				if add(&violation{kind: KindP1, p: z, q: uid, w: 1}) {
					return out, nil
				}
			}
		case KindP2:
			if !opt.ELWConstraints {
				continue
			}
			lb, err := st.Labels()
			if err != nil {
				return nil, err
			}
			for e := 0; e < g.NumEdges(); e++ {
				eid := graph.EdgeID(e)
				ed := g.Edge(eid)
				if ed.To == graph.Host || wr[eid] <= 0 || !lb.HasWindow[ed.To] {
					continue
				}
				if lb.HoldSlack(g, params, eid) >= opt.Rmin-eps {
					continue
				}
				// The critical shortest path from ed.To ends at z, whose
				// registered (or environment) fanout pins R. The anchor p
				// is whichever end of the shortened path actually moved:
				// the source that pushed the launching register forward
				// (the paper's Figure 2(c)), or z itself when its own move
				// created the pinning register.
				z := lb.RT[ed.To]
				q, w, err := drainTarget(g, wr, z)
				if err != nil {
					return nil, err
				}
				p := ed.From
				if !inI[p] && inI[z] {
					p = z
				}
				if add(&violation{kind: KindP2, p: p, q: q, w: w}) {
					return out, nil
				}
			}
		}
	}
	return out, nil
}

// violationCounter maps a violation kind to its telemetry counter.
func violationCounter(k Kind) telemetry.Counter {
	switch k {
	case KindP0:
		return telemetry.CounterViolationsP0
	case KindP1:
		return telemetry.CounterViolationsP1
	default:
		return telemetry.CounterViolationsP2
	}
}

// peakSpan is the largest backward move |r(v)| committed so far (R is
// non-positive under the Section V rebase), reported through the
// peak-retiming-span gauge.
func peakSpan(r graph.Retiming) int64 {
	var peak int64
	for _, rv := range r {
		if s := -int64(rv); s > peak {
			peak = s
		}
	}
	return peak
}

// drainTarget picks the fanout edge of z that pins its R label and returns
// the vertex that must absorb its registers (the host if the pin is a
// primary output, which freezes the tree — the paper's b18 behavior).
func drainTarget(g *graph.Graph, wr []int32, z graph.VertexID) (graph.VertexID, int32, error) {
	var hostPin bool
	for _, eid := range g.Out(z) {
		e := g.Edge(eid)
		if e.To == graph.Host {
			hostPin = true
			continue
		}
		if w := wr[eid]; w > 0 {
			return e.To, w, nil
		}
	}
	if hostPin {
		return graph.Host, 0, nil
	}
	return 0, 0, fmt.Errorf("core: P2' endpoint %s has no pinning fanout", g.Name(z))
}
