package core

import (
	"fmt"

	"serretime/internal/graph"
	"serretime/internal/mcf"
)

// MinObsExact solves the MinObs retiming (register observability
// minimization under P0 and the clock period constraint P1', without ELW
// constraints) exactly, via the classic W/D-matrix difference-constraint
// program and the min-cost-flow dual — the formulation [17] hands to an LP
// solver. It costs Θ(|V|²) memory and exists to validate the incremental
// algorithm; use Minimize for real work.
// canCapture marks vertices whose glitches can ever be latched: those
// reaching the host (a register boundary or primary output lies on the
// way) or reaching a cycle (every cycle permanently carries registers).
// Dangling acyclic cones carry no timing obligation.
func canCapture(g *graph.Graph) []bool {
	n := g.NumVertices()
	cap := make([]bool, n)
	// Reverse reachability from the host.
	stack := []graph.VertexID{graph.Host}
	cap[graph.Host] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range g.In(v) {
			u := g.Edge(eid).From
			if !cap[u] {
				cap[u] = true
				stack = append(stack, u)
			}
		}
	}
	// Vertices that can reach a cycle (host excluded as an intermediate):
	// trim vertices whose every out-edge leads to a trimmed vertex or the
	// host; survivors reach a cycle.
	outdeg := make([]int32, n)
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if ed.From != graph.Host && ed.To != graph.Host {
			outdeg[ed.From]++
		}
	}
	queue := make([]graph.VertexID, 0, n)
	trimmed := make([]bool, n)
	for v := 1; v < n; v++ {
		if outdeg[v] == 0 {
			queue = append(queue, graph.VertexID(v))
			trimmed[v] = true
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, eid := range g.In(v) {
			u := g.Edge(eid).From
			if u == graph.Host || trimmed[u] {
				continue
			}
			outdeg[u]--
			if outdeg[u] == 0 {
				trimmed[u] = true
				queue = append(queue, graph.VertexID(u))
			}
		}
	}
	for v := 1; v < n; v++ {
		if !trimmed[v] {
			cap[v] = true // reaches a cycle
		}
	}
	return cap
}

// forwardOnly restricts the program to r <= 0 (forward moves), the
// direction Algorithm 1 explores; pass false for the unrestricted optimum
// (the gap, if any, measures what a backward phase could add — see
// DESIGN.md). Of opt only Workers and Recorder are consumed: they shard
// the Θ(|V|²) W/D matrix build across CPUs without changing the result.
func MinObsExact(g *graph.Graph, gains []int64, obsInt []int64, phi, ts float64, forwardOnly bool, opt Options) (*Result, error) {
	if len(gains) != g.NumVertices() {
		return nil, fmt.Errorf("core: gains length mismatch")
	}
	n := g.NumVertices()
	var arcs []mcf.Arc
	if forwardOnly {
		for v := 1; v < n; v++ {
			arcs = append(arcs, mcf.Arc{From: v, To: int(graph.Host), Cost: 0})
		}
	}
	// P0: w(e) + r(v) − r(u) ≥ 0  ⟺  r(u) − r(v) ≤ w(e).
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		arcs = append(arcs, mcf.Arc{From: int(ed.From), To: int(ed.To), Cost: int64(ed.W)})
	}
	// P1': for pairs with D(u,v) > phi − ts, at least one register:
	// r(u) − r(v) ≤ W(u,v) − 1. Pairs ending at a vertex that can never
	// reach a register or primary output (a dangling cone) carry no
	// timing obligation — the label-based check skips them too.
	capture := canCapture(g)
	wd, err := g.ComputeWDPar(nil, opt.Workers, opt.Recorder)
	if err != nil {
		return nil, fmt.Errorf("core: exact MinObs: %w", err)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if !capture[v] {
				continue
			}
			w := wd.W(graph.VertexID(u), graph.VertexID(v))
			if w == graph.NoPath || (u == v && w == 0) {
				// A self-pair with W=0 is the empty path; a genuine cycle
				// through u is covered by its pairs.
				continue
			}
			if wd.D(graph.VertexID(u), graph.VertexID(v)) > phi-ts+eps {
				arcs = append(arcs, mcf.Arc{From: u, To: v, Cost: int64(w) - 1})
			}
		}
	}
	obj := make([]int64, n)
	for v := 0; v < n; v++ {
		obj[v] = -gains[v]
	}
	sol, err := mcf.Maximize(n, arcs, obj, int(graph.Host))
	if err != nil {
		return nil, fmt.Errorf("core: exact MinObs: %w", err)
	}
	res := &Result{R: graph.NewRetiming(g), Violations: map[Kind]int{}}
	for v := 0; v < n; v++ {
		res.R[v] = int32(sol.R[v])
	}
	res.Initial = Objective(g, graph.NewRetiming(g), obsInt)
	res.Objective = Objective(g, res.R, obsInt)
	if err := g.CheckLegal(res.R); err != nil {
		return nil, fmt.Errorf("core: exact result illegal: %w", err)
	}
	return res, nil
}
