// Package eco generates deterministic netlist perturbations for the
// warm-state session workload: small engineering-change-order edits of a
// base circuit (pin rewires, dead-logic additions and removals, primary
// output changes) that the session API replays as deltas and the bench
// and CI cross-check against cold full solves (DESIGN.md §17).
package eco

import (
	"bytes"
	"fmt"
	"math/rand"

	"serretime"
	"serretime/internal/benchfmt"
	"serretime/internal/circuit"
)

// Gen produces a deterministic stream of single-change deltas for one
// base circuit. It keeps a private mirror of the evolving netlist, so
// consecutive deltas are consistent (a rewire can target a gate added
// two deltas ago). The stream depends only on the base circuit and the
// seed.
type Gen struct {
	c       *circuit.Circuit
	rng     *rand.Rand
	added   []string // live eco-added gates, oldest first
	counter int
}

// NewGen clones base; the generator owns the clone.
func NewGen(base *circuit.Circuit, seed int64) *Gen {
	return &Gen{c: base.Clone(), rng: rand.New(rand.NewSource(seed))}
}

// Circuit exposes the generator's mirror of the evolving netlist (for
// oracle cross-checks: encode it and solve cold). Callers must not
// mutate it.
func (g *Gen) Circuit() *circuit.Circuit { return g.c }

// Bench encodes the mirror in canonical .bench syntax. Because mutated
// circuits keep primary inputs in the low ID block and everything else
// in ID order, parsing these bytes reproduces the mirror node for node —
// a cold solve of them is the exact oracle for a warm delta solve.
func (g *Gen) Bench() ([]byte, error) {
	var buf bytes.Buffer
	if err := benchfmt.Write(&buf, g.c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Next generates one delta, applies it to the mirror, and returns its
// ops. The mix is dominated by single-pin rewires — the acceptance
// workload — with periodic gate additions, removals, and PO changes.
func (g *Gen) Next() ([]serretime.DeltaOp, error) {
	i := g.counter
	g.counter++
	var ops []serretime.DeltaOp
	switch {
	case i%4 == 2:
		ops = g.addGate()
	case i%4 == 3 && len(g.added) > 1:
		ops = g.removeGate()
	case i%8 == 5:
		ops = g.togglePO()
	default:
		ops = g.rewire()
	}
	if ops == nil {
		ops = g.rewire()
	}
	if ops == nil {
		return nil, fmt.Errorf("eco: no applicable perturbation for %s (delta %d)", g.c.Name, i)
	}
	if _, err := serretime.ApplyDeltaOps(g.c, ops); err != nil {
		return nil, fmt.Errorf("eco: delta %d does not apply to the mirror: %w", i, err)
	}
	return ops, nil
}

// rewire retargets one pin of a random gate to a cycle-safe driver: a
// PI, a DFF, or a combinationally earlier gate.
func (g *Gen) rewire() []serretime.DeltaOp {
	gates := g.c.NodesOfKind(circuit.KindGate)
	if len(gates) == 0 {
		return nil
	}
	order, err := g.c.TopoOrder()
	if err != nil {
		return nil
	}
	rank := make([]int, g.c.NumNodes())
	for i, id := range order {
		rank[id] = i
	}
	for attempt := 0; attempt < 64; attempt++ {
		id := gates[g.rng.Intn(len(gates))]
		n := g.c.Node(id)
		if len(n.Fanin) == 0 {
			continue // constant
		}
		pin := g.rng.Intn(len(n.Fanin))
		cand := circuit.NodeID(g.rng.Intn(g.c.NumNodes()))
		cn := g.c.Node(cand)
		if cand == id || cand == n.Fanin[pin] {
			continue
		}
		if cn.Kind == circuit.KindGate && rank[cand] >= rank[id] {
			continue // could close a combinational cycle
		}
		dup := false
		for _, f := range n.Fanin {
			if f == cand {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		fanin := make([]string, len(n.Fanin))
		for j, f := range n.Fanin {
			fanin[j] = g.c.Node(f).Name
		}
		fanin[pin] = cn.Name
		return []serretime.DeltaOp{{Op: "rewire", Name: n.Name, Fanin: fanin}}
	}
	return nil
}

// addGate drops in a fresh observable gate: a 2-input gate over random
// existing nets, declared a primary output so it participates in the
// objective.
func (g *Gen) addGate() []serretime.DeltaOp {
	n := g.c.NumNodes()
	if n < 2 {
		return nil
	}
	a := circuit.NodeID(g.rng.Intn(n))
	b := circuit.NodeID(g.rng.Intn(n))
	if a == b {
		b = circuit.NodeID((int(b) + 1) % n)
	}
	fn := "AND"
	if g.counter%2 == 0 {
		fn = "OR"
	}
	name := fmt.Sprintf("eco_add_%d", g.counter)
	g.added = append(g.added, name)
	return []serretime.DeltaOp{
		{Op: "add_gate", Name: name, Fn: fn, Fanin: []string{g.c.Node(a).Name, g.c.Node(b).Name}},
		{Op: "mark_po", Name: name},
	}
}

// removeGate retires the oldest eco-added gate nothing reads. Added
// gates start as leaves (marked PO), but a later rewire may have picked
// one up as a driver; such gates are live logic now and stay.
func (g *Gen) removeGate() []serretime.DeltaOp {
	for i, name := range g.added {
		id, ok := g.c.Lookup(name)
		if !ok || len(g.c.Node(id).Fanout) != 0 {
			continue
		}
		g.added = append(g.added[:i], g.added[i+1:]...)
		return []serretime.DeltaOp{
			{Op: "unmark_po", Name: name},
			{Op: "rm_node", Name: name},
		}
	}
	return nil
}

// togglePO declares a random non-PO gate a primary output.
func (g *Gen) togglePO() []serretime.DeltaOp {
	gates := g.c.NodesOfKind(circuit.KindGate)
	isPO := make(map[circuit.NodeID]bool)
	for _, p := range g.c.POs() {
		isPO[p] = true
	}
	for attempt := 0; attempt < 32; attempt++ {
		id := gates[g.rng.Intn(len(gates))]
		if isPO[id] {
			continue
		}
		return []serretime.DeltaOp{{Op: "mark_po", Name: g.c.Node(id).Name}}
	}
	return nil
}
