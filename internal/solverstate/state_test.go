package solverstate_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"serretime/internal/elw"
	"serretime/internal/graph"
	"serretime/internal/guard"
	"serretime/internal/solverstate"
	"serretime/internal/telemetry"
)

// randomProblem builds a random synchronous graph (same shape as the core
// package's property-test instances: layered DAG plus feedback registers,
// no dangling cones) with random integer edge observabilities and label
// parameters wide enough that windows exist.
func randomProblem(rng *rand.Rand, n int) (*graph.Graph, []int64, elw.Params) {
	b := graph.NewBuilder()
	vs := make([]graph.VertexID, n)
	for i := 0; i < n; i++ {
		vs[i] = b.AddVertex("v", 1+float64(rng.Intn(4)))
	}
	b.AddEdge(graph.Host, vs[0], int32(rng.Intn(2)))
	for i := 1; i < n; i++ {
		b.AddEdge(vs[rng.Intn(i)], vs[i], int32(rng.Intn(3)))
		if rng.Intn(2) == 0 {
			b.AddEdge(vs[rng.Intn(i)], vs[i], int32(rng.Intn(2)))
		}
		if rng.Intn(4) == 0 {
			b.AddEdge(vs[i], vs[rng.Intn(i+1)], 1+int32(rng.Intn(2)))
		}
	}
	b.AddEdge(vs[n-1], graph.Host, int32(rng.Intn(2)))
	b.AddEdge(vs[rng.Intn(n)], graph.Host, 0)
	g := b.Build()
	// No dangling cones: every gate must reach a latch point.
	bb := graph.NewBuilder()
	for v := 1; v < g.NumVertices(); v++ {
		bb.AddVertex(g.Name(graph.VertexID(v)), g.Delay(graph.VertexID(v)))
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		bb.AddEdge(ed.From, ed.To, ed.W)
	}
	for v := 1; v < g.NumVertices(); v++ {
		if len(g.Out(graph.VertexID(v))) == 0 {
			bb.AddEdge(graph.VertexID(v), graph.Host, 0)
		}
	}
	g = bb.Build()
	obsInt := make([]int64, g.NumEdges())
	for e := range obsInt {
		obsInt[e] = int64(rng.Intn(1000))
	}
	_, crit, _ := g.ArrivalTimes(graph.NewRetiming(g))
	return g, obsInt, elw.Params{Phi: crit * (1 + rng.Float64()), Ts: 0, Th: 2}
}

// objectiveScan recomputes Σ obsInt·w_r from scratch.
func objectiveScan(g *graph.Graph, r graph.Retiming, obsInt []int64) int64 {
	var obj int64
	for e := 0; e < g.NumEdges(); e++ {
		obj += obsInt[e] * int64(g.WR(graph.EdgeID(e), r))
	}
	return obj
}

// randomMove picks a random subset of gates to move forward by one
// register (the shape of every Algorithm 1 tentative move).
func randomMove(rng *rand.Rand, g *graph.Graph) []int32 {
	var members []int32
	for v := 1; v < g.NumVertices(); v++ {
		if rng.Intn(3) == 0 {
			members = append(members, int32(v))
		}
	}
	if len(members) == 0 {
		members = append(members, int32(1+rng.Intn(g.NumVertices()-1)))
	}
	return members
}

func one(int32) int32 { return 1 }

// TestStateMatchesOracles drives random move sequences and checks, after
// every Begin, that the incremental objective, negative-edge list and L/R
// labels all agree with from-scratch recomputations, and that rollbacks
// restore the committed state bit-exactly.
func TestStateMatchesOracles(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, obsInt, params := randomProblem(rng, 4+rng.Intn(20))
		r0 := graph.NewRetiming(g)
		seedLab, err := elw.ComputeLabels(g, r0, params)
		if err != nil {
			t.Fatal(err)
		}
		st, err := solverstate.New(g, r0, solverstate.Config{
			Params: params, ObsInt: obsInt, SeedLabels: seedLab,
		})
		if err != nil {
			t.Fatal(err)
		}
		shadow := r0.Clone() // committed retiming maintained independently
		for step := 0; step < 40; step++ {
			members := randomMove(rng, g)
			st.Begin(members, one)
			tent := shadow.Clone()
			for _, v := range members {
				tent[v]--
			}
			if got, want := st.Objective(), objectiveScan(g, tent, obsInt); got != want {
				t.Fatalf("seed %d step %d: tentative objective %d, scan %d", seed, step, got, want)
			}
			// Negative-edge list vs a full scan in EdgeID order.
			var wantNeg []graph.EdgeID
			for e := 0; e < g.NumEdges(); e++ {
				if g.WR(graph.EdgeID(e), tent) < 0 {
					wantNeg = append(wantNeg, graph.EdgeID(e))
				}
			}
			gotNeg := st.NegativeTentativeEdges()
			if len(gotNeg) != len(wantNeg) {
				t.Fatalf("seed %d step %d: negatives %v, scan %v", seed, step, gotNeg, wantNeg)
			}
			for i := range gotNeg {
				if gotNeg[i] != wantNeg[i] {
					t.Fatalf("seed %d step %d: negatives %v, scan %v", seed, step, gotNeg, wantNeg)
				}
			}
			legal := len(gotNeg) == 0
			if legal || rng.Intn(2) == 0 {
				// The P1'/P2' path: labels of the tentative state.
				lab, err := st.Labels()
				if err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				want, err := elw.ComputeLabels(g, tent, params)
				if err != nil {
					t.Fatalf("seed %d step %d: oracle: %v", seed, step, err)
				}
				if v, diff := lab.FirstDiff(want); diff {
					t.Fatalf("seed %d step %d: labels diverge at v%d", seed, step, v)
				}
			}
			// Only commit legal states (New's contract; the solver checks
			// P0 before committing for the same reason).
			if legal && rng.Intn(2) == 0 {
				st.Commit()
				shadow = tent
			} else {
				st.Rollback()
			}
			if got, want := st.CommittedObjective(), objectiveScan(g, shadow, obsInt); got != want {
				t.Fatalf("seed %d step %d: committed objective %d, scan %d", seed, step, got, want)
			}
			for v := range shadow {
				if st.R()[v] != shadow[v] {
					t.Fatalf("seed %d step %d: r[%d] = %d, want %d", seed, step, v, st.R()[v], shadow[v])
				}
			}
			for e := 0; e < g.NumEdges(); e++ {
				if st.WR(graph.EdgeID(e)) != g.WR(graph.EdgeID(e), shadow) {
					t.Fatalf("seed %d step %d: wr[%d] stale after close", seed, step, e)
				}
			}
			// Closed-state labels must equal the committed oracle.
			lab, err := st.Labels()
			if err != nil {
				t.Fatal(err)
			}
			want, err := elw.ComputeLabels(g, shadow, params)
			if err != nil {
				t.Fatal(err)
			}
			if v, diff := lab.FirstDiff(want); diff {
				t.Fatalf("seed %d step %d: committed labels diverge at v%d", seed, step, v)
			}
		}
	}
}

// TestCrossCheckAgreesOnRandomMoves runs the same random walks with the
// oracle cross-check armed: any divergence of the patch machinery turns
// into a MismatchError, so a clean pass is the satellite's shadow-oracle
// property.
func TestCrossCheckAgreesOnRandomMoves(t *testing.T) {
	col := telemetry.NewCollector()
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, obsInt, params := randomProblem(rng, 4+rng.Intn(24))
		r0 := graph.NewRetiming(g)
		seedLab, err := elw.ComputeLabels(g, r0, params)
		if err != nil {
			t.Fatal(err)
		}
		st, err := solverstate.New(g, r0, solverstate.Config{
			Params: params, ObsInt: obsInt, SeedLabels: seedLab,
			CheckLabels: true, Recorder: col,
		})
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 25; step++ {
			st.Begin(randomMove(rng, g), one)
			if _, err := st.Labels(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if len(st.NegativeTentativeEdges()) == 0 && rng.Intn(2) == 0 {
				st.Commit()
			} else {
				st.Rollback()
			}
		}
	}
	if col.Stats().Counter(telemetry.CounterLabelPatches) == 0 {
		t.Fatal("random walks never exercised the patch path")
	}
}

// TestRollbackRestoresLabelsBitwise snapshots the committed labels, runs a
// patched transaction, rolls back, and compares every field.
func TestRollbackRestoresLabelsBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, obsInt, params := randomProblem(rng, 16)
	r0 := graph.NewRetiming(g)
	seedLab, _ := elw.ComputeLabels(g, r0, params)
	st, err := solverstate.New(g, r0, solverstate.Config{Params: params, ObsInt: obsInt, SeedLabels: seedLab})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 20; step++ {
		before, err := st.Labels()
		if err != nil {
			t.Fatal(err)
		}
		snap := before.Clone()
		st.Begin(randomMove(rng, g), one)
		if _, err := st.Labels(); err != nil {
			t.Fatal(err)
		}
		st.Rollback()
		after, err := st.Labels()
		if err != nil {
			t.Fatal(err)
		}
		if v, diff := after.FirstDiff(snap); diff {
			t.Fatalf("step %d: rollback lost labels at v%d", step, v)
		}
	}
}

// TestFallbackPaths checks the three full-recompute triggers: a forced
// Config.FullRecompute, a dirty region above the threshold, and no seed
// labels to patch from.
func TestFallbackPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, obsInt, params := randomProblem(rng, 20)
	r0 := graph.NewRetiming(g)
	seedLab, _ := elw.ComputeLabels(g, r0, params)

	t.Run("forced", func(t *testing.T) {
		col := telemetry.NewCollector()
		st, err := solverstate.New(g, r0, solverstate.Config{
			Params: params, ObsInt: obsInt, SeedLabels: seedLab,
			FullRecompute: true, Recorder: col,
		})
		if err != nil {
			t.Fatal(err)
		}
		st.Begin([]int32{1}, one)
		if _, err := st.Labels(); err != nil {
			t.Fatal(err)
		}
		st.Rollback()
		s := col.Stats()
		if s.Counter(telemetry.CounterLabelPatches) != 0 || s.Counter(telemetry.CounterLabelFallbacks) != 1 {
			t.Fatalf("patches=%d fallbacks=%d, want 0/1",
				s.Counter(telemetry.CounterLabelPatches), s.Counter(telemetry.CounterLabelFallbacks))
		}
	})

	t.Run("threshold", func(t *testing.T) {
		// An explicit threshold disables the small-circuit floor, so any
		// non-empty region exceeds a sub-one-vertex limit.
		col := telemetry.NewCollector()
		st, err := solverstate.New(g, r0, solverstate.Config{
			Params: params, ObsInt: obsInt, SeedLabels: seedLab,
			DirtyThreshold: 1e-9, Recorder: col,
		})
		if err != nil {
			t.Fatal(err)
		}
		moved := false
		for v := 1; v < g.NumVertices() && !moved; v++ {
			st.Begin([]int32{int32(v)}, one)
			if len(st.NegativeTentativeEdges()) > 0 {
				st.Rollback()
				continue
			}
			if _, err := st.Labels(); err != nil {
				t.Fatal(err)
			}
			moved = true
			st.Rollback()
		}
		if !moved {
			t.Skip("no single legal move in this instance")
		}
		s := col.Stats()
		if s.Counter(telemetry.CounterLabelFallbacks) == 0 {
			t.Fatal("sub-vertex threshold did not trigger the fallback")
		}
		if s.Counter(telemetry.CounterLabelPatches) != 0 {
			t.Fatal("patched despite sub-vertex threshold")
		}
	})

	t.Run("no-seed", func(t *testing.T) {
		col := telemetry.NewCollector()
		st, err := solverstate.New(g, r0, solverstate.Config{
			Params: params, ObsInt: obsInt, Recorder: col,
		})
		if err != nil {
			t.Fatal(err)
		}
		st.Begin([]int32{1}, one)
		lab, err := st.Labels()
		if err != nil {
			t.Fatal(err)
		}
		tent := r0.Clone()
		tent[1]--
		want, _ := elw.ComputeLabels(g, tent, params)
		if v, diff := lab.FirstDiff(want); diff {
			t.Fatalf("bootstrap labels diverge at v%d", v)
		}
		st.Rollback()
		if s := col.Stats(); s.Counter(telemetry.CounterLabelFulls) == 0 {
			t.Fatal("bootstrap did not run a full recompute")
		}
	})
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, obsInt, params := randomProblem(rng, 8)
	if _, err := solverstate.New(g, graph.NewRetiming(g), solverstate.Config{
		Params: params, ObsInt: obsInt[:1],
	}); err == nil {
		t.Fatal("short ObsInt accepted")
	}
	bad := graph.NewRetiming(g)
	bad[1] = -100 // drives some weight negative
	if _, err := solverstate.New(g, bad, solverstate.Config{
		Params: params, ObsInt: obsInt,
	}); err == nil {
		t.Fatal("illegal initial retiming accepted")
	}
}

func TestMismatchErrorUnwraps(t *testing.T) {
	err := error(&solverstate.MismatchError{Vertex: 3, Name: "g3"})
	if !errors.Is(err, solverstate.ErrLabelMismatch) {
		t.Error("does not unwrap to ErrLabelMismatch")
	}
	if !errors.Is(err, guard.ErrInternal) {
		t.Error("does not unwrap to guard.ErrInternal")
	}
	if err.Error() == "" {
		t.Error("empty message")
	}
}

// TestLabelsFailpoint arms the solverstate.Labels failpoint and checks the
// panic surfaces as guard.ErrInternal through the guard harness — the
// path the degradation chain relies on.
func TestLabelsFailpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, obsInt, params := randomProblem(rng, 8)
	st, err := solverstate.New(g, graph.NewRetiming(g), solverstate.Config{Params: params, ObsInt: obsInt})
	if err != nil {
		t.Fatal(err)
	}
	guard.ArmFailpoint("solverstate.Labels")
	defer guard.DisarmFailpoint("solverstate.Labels")
	_, err = guard.Do(context.Background(), "test", func(context.Context) (*elw.Labels, error) {
		return st.Labels()
	})
	if !errors.Is(err, guard.ErrInternal) {
		t.Fatalf("got %v, want guard.ErrInternal", err)
	}
}

// TestCommitDropsStaleLabels commits a weight-changing move without ever
// requesting labels; the cached pre-move labels must not survive.
func TestCommitDropsStaleLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, obsInt, params := randomProblem(rng, 12)
	r0 := graph.NewRetiming(g)
	seedLab, _ := elw.ComputeLabels(g, r0, params)
	st, err := solverstate.New(g, r0, solverstate.Config{Params: params, ObsInt: obsInt, SeedLabels: seedLab})
	if err != nil {
		t.Fatal(err)
	}
	shadow := r0.Clone()
	rng2 := rand.New(rand.NewSource(10))
	for step := 0; step < 30; step++ {
		members := randomMove(rng2, g)
		st.Begin(members, one) // P0-only path: no Labels call
		if len(st.NegativeTentativeEdges()) > 0 {
			st.Rollback()
			continue
		}
		st.Commit()
		for _, v := range members {
			shadow[v]--
		}
		lab, err := st.Labels()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := elw.ComputeLabels(g, shadow, params)
		if v, diff := lab.FirstDiff(want); diff {
			t.Fatalf("step %d: stale labels survived a blind commit (v%d)", step, v)
		}
	}
}

// TestTxnStateMachine checks the protocol panics.
func TestTxnStateMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g, obsInt, params := randomProblem(rng, 6)
	st, err := solverstate.New(g, graph.NewRetiming(g), solverstate.Config{Params: params, ObsInt: obsInt})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Commit-closed", st.Commit)
	mustPanic("Rollback-closed", st.Rollback)
	st.Begin([]int32{1}, one)
	mustPanic("Begin-open", func() { st.Begin([]int32{1}, one) })
	mustPanic("R-open", func() { st.R() })
	st.Rollback()
}
