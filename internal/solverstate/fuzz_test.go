package solverstate_test

import (
	"math/rand"
	"testing"

	"serretime/internal/elw"
	"serretime/internal/gen"
	"serretime/internal/graph"
	"serretime/internal/solverstate"
)

// FuzzStateMoves drives randomized move sequences over synthetic gen
// circuits and asserts, after every commit and rollback, that the
// transactional labels and objective equal from-scratch recomputations.
// The fuzzer owns the circuit shape (gate/FF/connection counts) and the
// move randomness, so it explores region shapes the fixed-seed property
// tests do not.
func FuzzStateMoves(f *testing.F) {
	f.Add(int64(1), int64(1))
	f.Add(int64(42), int64(7))
	f.Add(int64(-3), int64(999))
	f.Fuzz(func(t *testing.T, shapeSeed, moveSeed int64) {
		shape := rand.New(rand.NewSource(shapeSeed))
		spec := gen.Spec{
			Name:  "fuzz",
			Gates: 8 + shape.Intn(60),
			FFs:   1 + shape.Intn(20),
			Seed:  shapeSeed,
		}
		spec.Conns = spec.Gates + shape.Intn(2*spec.Gates)
		c, err := gen.Generate(spec)
		if err != nil {
			t.Skip(err) // inconsistent shape draw
		}
		g, err := graph.FromCircuit(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		r0 := graph.NewRetiming(g)
		_, crit, err := g.ArrivalTimes(r0)
		if err != nil {
			t.Fatal(err)
		}
		params := elw.Params{Phi: crit * 1.2, Ts: 0, Th: 2}
		obsInt := make([]int64, g.NumEdges())
		for e := range obsInt {
			obsInt[e] = int64(shape.Intn(256))
		}
		seedLab, err := elw.ComputeLabels(g, r0, params)
		if err != nil {
			t.Fatal(err)
		}
		st, err := solverstate.New(g, r0, solverstate.Config{
			Params: params, ObsInt: obsInt, SeedLabels: seedLab,
			CheckLabels: true, // every patch is oracle-audited
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(moveSeed))
		shadow := r0.Clone()
		for step := 0; step < 15; step++ {
			members := randomMove(rng, g)
			st.Begin(members, one)
			tent := shadow.Clone()
			for _, v := range members {
				tent[v]--
			}
			if got, want := st.Objective(), objectiveScan(g, tent, obsInt); got != want {
				t.Fatalf("step %d: tentative objective %d, scan %d", step, got, want)
			}
			if _, err := st.Labels(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if len(st.NegativeTentativeEdges()) == 0 && rng.Intn(2) == 0 {
				st.Commit()
				shadow = tent
			} else {
				st.Rollback()
			}
			lab, err := st.Labels()
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			want, err := elw.ComputeLabels(g, shadow, params)
			if err != nil {
				t.Fatalf("step %d: oracle: %v", step, err)
			}
			if v, diff := lab.FirstDiff(want); diff {
				t.Fatalf("step %d: labels diverge at v%d after close", step, v)
			}
			if got, want := st.CommittedObjective(), objectiveScan(g, shadow, obsInt); got != want {
				t.Fatalf("step %d: committed objective %d, scan %d", step, got, want)
			}
		}
	})
}
