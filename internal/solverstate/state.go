// Package solverstate maintains the transactional incremental state of
// the MinObsWin solver loop (Algorithm 1): the retiming vector, the
// retimed edge weights w_r, the L/R boundary labels of eq. (6), and the
// register-observability objective, all kept consistent under a tentative
// move set I with commit/rollback semantics.
//
// The paper's algorithm is explicitly incremental — every iteration moves
// one closed set and re-checks P0/P1'/P2' — but a naive implementation
// rebuilds the full label vectors per tentative move. State instead
// patches only the dirty region: the vertices whose zero-weight fanout
// cones intersect the reclassified edges of the move. The patch runs the
// same per-vertex kernel as the full recompute (elw.RelabelVertex) over
// the region in successors-first order, so patched labels are
// bit-identical to a from-scratch computation; elw.ComputeLabels remains
// the oracle and can be cross-checked after every patch (Config.
// CheckLabels) for a debug mode that turns any divergence into an error.
//
// Exactness of the dirty region: a vertex u outside the region has (a)
// every out-edge classification (registered vs combinational) unchanged,
// and (b) by induction on reverse topological depth of the tentative
// zero-weight DAG, every successor it reads labels from outside the
// region as well — so RelabelVertex at u would reproduce u's old labels
// exactly. The zero-weight subgraph is a DAG under *any* retiming, legal
// or not (cycle register counts telescope), so the induction is sound
// even mid-move. The only hazard is an edge with w_r < 0: the oracle
// treats it like a combinational edge but ZeroWeightTopo does not order
// it, making the oracle's result depend on its traversal order. State
// therefore falls back to the oracle itself (a full recompute) whenever a
// changed non-host edge goes negative, and similarly when the dirty
// region exceeds Config.DirtyThreshold of the gates — both fallbacks are
// counted and the dirty fraction is gauged through telemetry.
package solverstate

import (
	"errors"
	"fmt"
	"sort"

	"serretime/internal/elw"
	"serretime/internal/graph"
	"serretime/internal/guard"
	"serretime/internal/telemetry"
)

// DefaultDirtyThreshold is the dirty-region fraction (of the gate count)
// above which patching falls back to a full recompute. A patch at
// fraction f does ~f of the sweep's relabel work plus region collection
// and undo logging, but skips the sweep's allocation and global Kahn
// ordering, so it stays profitable well past f = 1/4; past half the
// circuit the bookkeeping overtakes the savings.
const DefaultDirtyThreshold = 0.5

// dirtyFloor is the region size (in vertices) below which patching is
// always worthwhile regardless of the fraction it represents: on tiny
// circuits every region is a large fraction, yet the absolute work is
// negligible next to a full sweep's allocation. The floor applies only
// with the default threshold, so tests can still force the threshold
// fallback on small graphs via Config.DirtyThreshold.
const dirtyFloor = 64

// ErrLabelMismatch is the sentinel behind MismatchError: the incremental
// labels diverged from the elw.ComputeLabels oracle. It indicates a bug
// in the dirty-region machinery, never a property of the input.
var ErrLabelMismatch = errors.New("solverstate: incremental labels diverge from oracle")

// MismatchError reports the first vertex at which the incremental labels
// and the oracle disagree. It unwraps to both ErrLabelMismatch and
// guard.ErrInternal, so the degradation chain treats it as an internal
// fault while callers (serbench -checklabels) can still identify it.
type MismatchError struct {
	Vertex        graph.VertexID
	Name          string
	GotL, WantL   float64
	GotR, WantR   float64
	GotHW, WantHW bool
	GotLT, WantLT graph.VertexID
	GotRT, WantRT graph.VertexID
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("solverstate: label mismatch at %s (v%d): got L=%g R=%g hw=%v LT=%d RT=%d, oracle L=%g R=%g hw=%v LT=%d RT=%d",
		e.Name, e.Vertex, e.GotL, e.GotR, e.GotHW, e.GotLT, e.GotRT,
		e.WantL, e.WantR, e.WantHW, e.WantLT, e.WantRT)
}

// Unwrap exposes both sentinels.
func (e *MismatchError) Unwrap() []error { return []error{ErrLabelMismatch, guard.ErrInternal} }

// Config parameterizes New.
type Config struct {
	// Params are the timing parameters of the L/R labels.
	Params elw.Params
	// ObsInt is the per-edge integer observability (the objective weight
	// of each register), as produced by core.Gains.
	ObsInt []int64
	// SeedLabels, when non-nil, primes the committed labels so the first
	// transaction can patch instead of paying a full recompute. They must
	// equal elw.ComputeLabels of the initial state (State clones them; the
	// caller's copy is never written). The Section V initialization
	// already computes exactly these labels when selecting Rmin.
	SeedLabels *elw.Labels
	// CheckLabels cross-checks every incremental patch against the oracle
	// and fails the transaction with a MismatchError on divergence.
	CheckLabels bool
	// FullRecompute disables dirty-region patching: every label request
	// inside a transaction recomputes from scratch (the pre-refactor
	// behavior, kept for ablation benchmarks).
	FullRecompute bool
	// DirtyThreshold overrides DefaultDirtyThreshold when > 0: the dirty
	// fraction of the gate count above which patching falls back to a
	// full recompute.
	DirtyThreshold float64
	// Recorder receives label-patch spans, patch/full/fallback counters
	// and the dirty-fraction gauge. nil records nothing.
	Recorder telemetry.Recorder
}

// labUndo snapshots one vertex's labels before a patch overwrites them.
type labUndo struct {
	v      graph.VertexID
	l, r   float64
	lt, rt graph.VertexID
	has    bool
}

// edgeUndo snapshots one edge weight before a move changes it.
type edgeUndo struct {
	e  graph.EdgeID
	wr int32
}

// labState says what the current transaction did to the labels.
type labState uint8

const (
	labNone    labState = iota // untouched this transaction
	labPatched                 // dirty-region patch, reversible via undo
	labFull                    // full recompute, previous labels in labPrev
)

// State is the transactional solver state. All methods must be called
// from one goroutine.
type State struct {
	g   *graph.Graph
	cfg Config
	rec telemetry.Recorder

	r   graph.Retiming // current retiming (tentative while open)
	wr  []int32        // current w_r per edge (tentative while open)
	obj int64          // committed objective Σ obsInt·w_r

	// vertexObsDelta[v] = Σ_in obsInt − Σ_out obsInt: moving v forward by
	// one register changes the objective by −vertexObsDelta[v], so a move
	// delta(v) (negative) contributes delta(v)·vertexObsDelta[v].
	vertexObsDelta []int64

	open    bool
	objTent int64
	moved   []graph.VertexID
	delta   []int32 // tentative per-vertex move, 0 outside I

	edgeMark  []uint32 // epoch stamps deduplicating incident edges
	epoch     uint32
	edgeUndos []edgeUndo

	seeds    []graph.VertexID // sources of reclassified label-relevant edges
	negEdges []graph.EdgeID   // changed edges with tentative w_r < 0, sorted
	labelNeg bool             // some non-host changed edge went negative

	lab      *elw.Labels
	labMode  labState
	labPrev  *elw.Labels // committed labels saved across an in-txn full recompute
	labUndos []labUndo
	walker   *graph.RegionWalker

	// defaultThreshold records that cfg.DirtyThreshold was defaulted, which
	// enables the dirtyFloor on tiny circuits.
	defaultThreshold bool
}

// New builds a State for g at retiming r0 (cloned). r0 must be P0-legal:
// the incremental P0 check relies on every committed state having
// non-negative weights, so tentative negatives can only sit on edges the
// move changed.
func New(g *graph.Graph, r0 graph.Retiming, cfg Config) (*State, error) {
	if len(cfg.ObsInt) != g.NumEdges() {
		return nil, fmt.Errorf("solverstate: obsInt length %d, want %d", len(cfg.ObsInt), g.NumEdges())
	}
	if err := g.CheckLegal(r0); err != nil {
		return nil, fmt.Errorf("solverstate: illegal initial retiming: %w", err)
	}
	defaultThreshold := cfg.DirtyThreshold <= 0
	if defaultThreshold {
		cfg.DirtyThreshold = DefaultDirtyThreshold
	}
	s := &State{
		g:              g,
		cfg:            cfg,
		rec:            telemetry.OrNop(cfg.Recorder),
		r:              r0.Clone(),
		wr:             g.EdgeWeights(r0),
		vertexObsDelta: make([]int64, g.NumVertices()),
		delta:          make([]int32, g.NumVertices()),
		edgeMark:       make([]uint32, g.NumEdges()),
		walker:         graph.NewRegionWalker(g),

		defaultThreshold: defaultThreshold,
	}
	for e := 0; e < g.NumEdges(); e++ {
		eid := graph.EdgeID(e)
		s.obj += cfg.ObsInt[e] * int64(s.wr[e])
		s.vertexObsDelta[g.EdgeTo(eid)] += cfg.ObsInt[e]
		s.vertexObsDelta[g.EdgeFrom(eid)] -= cfg.ObsInt[e]
	}
	s.objTent = s.obj
	if cfg.SeedLabels != nil {
		s.lab = cfg.SeedLabels.Clone()
	}
	return s, nil
}

// Graph returns the underlying graph.
func (s *State) Graph() *graph.Graph { return s.g }

// Open reports whether a transaction is in progress.
func (s *State) Open() bool { return s.open }

// R returns the committed retiming. The transaction must be closed; the
// caller must not modify the slice (copy it to keep it).
func (s *State) R() graph.Retiming {
	if s.open {
		panic("solverstate: R with open transaction")
	}
	return s.r
}

// WR returns the current (tentative while open) retimed weight of e.
func (s *State) WR(e graph.EdgeID) int32 { return s.wr[e] }

// EdgeWeights returns the current per-edge weights, indexed by EdgeID.
// The slice is live — it changes with Begin/Commit/Rollback — and must
// not be modified.
func (s *State) EdgeWeights() []int32 { return s.wr }

// Objective returns Σ obsInt·w_r of the current (tentative) state.
func (s *State) Objective() int64 { return s.objTent }

// CommittedObjective returns the objective of the last committed state.
func (s *State) CommittedObjective() int64 { return s.obj }

// NegativeTentativeEdges returns the edges with tentative w_r < 0, in
// ascending EdgeID order — the same sequence a full P0 scan would report,
// since the committed state is legal and negatives can only appear on
// edges the open move changed. Empty when no transaction is open.
func (s *State) NegativeTentativeEdges() []graph.EdgeID { return s.negEdges }

// Begin opens a transaction moving each vertex of members forward by
// weight(v) registers: r(v) -= weight(v). It updates the edge weights and
// objective immediately and analyzes the changed edges for the later
// label patch (Labels is lazy: the P0-only path never touches labels).
func (s *State) Begin(members []int32, weight func(v int32) int32) {
	if s.open {
		panic("solverstate: Begin with open transaction")
	}
	s.open = true
	s.labMode = labNone
	for _, v := range members {
		d := weight(v)
		if d == 0 || graph.VertexID(v) == graph.Host {
			continue
		}
		s.delta[v] = -d
		s.r[v] -= d
		s.moved = append(s.moved, graph.VertexID(v))
		s.objTent -= int64(d) * s.vertexObsDelta[v]
	}
	s.epoch++
	for _, v := range s.moved {
		for _, dir := range [2][]graph.EdgeID{s.g.Out(v), s.g.In(v)} {
			for _, eid := range dir {
				if s.edgeMark[eid] == s.epoch {
					continue
				}
				s.edgeMark[eid] = s.epoch
				eFrom, eTo := s.g.EdgeFrom(eid), s.g.EdgeTo(eid)
				dw := s.delta[eTo] - s.delta[eFrom]
				if dw == 0 {
					continue
				}
				wrOld := s.wr[eid]
				wrNew := wrOld + dw
				s.edgeUndos = append(s.edgeUndos, edgeUndo{e: eid, wr: wrOld})
				s.wr[eid] = wrNew
				if wrNew < 0 {
					s.negEdges = append(s.negEdges, eid)
				}
				if eFrom == graph.Host || eTo == graph.Host {
					// Host-incident edges never affect labels: edges into
					// the host are registered regardless of weight, edges
					// out of it are never read (the host has no labels).
					continue
				}
				if wrNew < 0 {
					s.labelNeg = true
				}
				if (wrOld > 0) != (wrNew > 0) {
					// Classification flip: the source vertex now sees a
					// different kind of fanout.
					s.seeds = append(s.seeds, eFrom)
				}
			}
		}
	}
	sort.Slice(s.negEdges, func(i, j int) bool { return s.negEdges[i] < s.negEdges[j] })
}

// Labels returns the L/R labels of the current (tentative) state,
// patching the dirty region incrementally when possible and falling back
// to a full recompute when the region is too large, a changed edge went
// negative, or Config.FullRecompute is set. With Config.CheckLabels the
// patched labels are verified against the oracle before being returned.
func (s *State) Labels() (*elw.Labels, error) {
	guard.Failpoint("solverstate.Labels")
	if !s.open {
		if s.lab == nil {
			lab, err := s.fullRecompute()
			if err != nil {
				return nil, err
			}
			s.lab = lab
		}
		return s.lab, nil
	}
	if s.labMode != labNone {
		return s.lab, nil
	}
	if s.lab == nil {
		// No committed labels to patch from: the full computation on the
		// tentative state is the oracle itself.
		lab, err := s.fullRecompute()
		if err != nil {
			return nil, err
		}
		s.lab, s.labMode = lab, labFull
		return s.lab, nil
	}
	if s.cfg.FullRecompute || s.labelNeg {
		return s.fallbackFull()
	}
	gates := s.g.NumGates()
	limit := int(s.cfg.DirtyThreshold * float64(gates))
	if s.defaultThreshold && limit < dirtyFloor {
		limit = dirtyFloor
	}
	if limit < 1 {
		limit = 1
	}
	if !s.walker.Collect(s.wr, s.seeds, limit) {
		s.rec.Gauge(telemetry.GaugeDirtyFraction, permille(limit+1, gates))
		return s.fallbackFull()
	}
	s.rec.SpanStart(telemetry.PhaseLabelPatch)
	s.rec.Count(telemetry.CounterLabelPatches, 1)
	s.rec.Gauge(telemetry.GaugeDirtyFraction, permille(len(s.walker.Region()), gates))
	for _, u := range s.walker.TopoSuccFirst(s.wr) {
		s.labUndos = append(s.labUndos, labUndo{
			v: u, l: s.lab.L[u], r: s.lab.R[u],
			lt: s.lab.LT[u], rt: s.lab.RT[u], has: s.lab.HasWindow[u],
		})
		s.lab.RelabelVertex(s.g, s.cfg.Params, s.wr, u)
	}
	s.labMode = labPatched
	var err error
	if s.cfg.CheckLabels {
		err = s.crossCheck()
	}
	s.rec.SpanEnd(telemetry.PhaseLabelPatch, err)
	if err != nil {
		return nil, err
	}
	return s.lab, nil
}

// fullRecompute runs the oracle on the current retiming, with the same
// telemetry signature the pre-refactor loop had (an elw-recompute span).
func (s *State) fullRecompute() (*elw.Labels, error) {
	s.rec.Count(telemetry.CounterLabelFulls, 1)
	return elw.ComputeLabelsRec(s.g, s.r, s.cfg.Params, s.rec)
}

// fallbackFull replaces the labels by a full recompute of the tentative
// state, keeping the committed labels aside for rollback.
func (s *State) fallbackFull() (*elw.Labels, error) {
	s.rec.Count(telemetry.CounterLabelFallbacks, 1)
	lab, err := s.fullRecompute()
	if err != nil {
		return nil, err
	}
	s.labPrev, s.lab, s.labMode = s.lab, lab, labFull
	return s.lab, nil
}

// crossCheck compares the patched labels against a fresh oracle run. The
// oracle call is deliberately unrecorded so the debug mode does not
// disturb the elw-recompute statistics it is auditing.
func (s *State) crossCheck() error {
	want, err := elw.ComputeLabels(s.g, s.r, s.cfg.Params)
	if err != nil {
		return err
	}
	v, diff := s.lab.FirstDiff(want)
	if !diff {
		return nil
	}
	return &MismatchError{
		Vertex: v, Name: s.g.Name(v),
		GotL: s.lab.L[v], WantL: want.L[v],
		GotR: s.lab.R[v], WantR: want.R[v],
		GotHW: s.lab.HasWindow[v], WantHW: want.HasWindow[v],
		GotLT: s.lab.LT[v], WantLT: want.LT[v],
		GotRT: s.lab.RT[v], WantRT: want.RT[v],
	}
}

// Commit makes the tentative state the committed one.
func (s *State) Commit() {
	if !s.open {
		panic("solverstate: Commit without transaction")
	}
	s.obj = s.objTent
	if s.labMode == labNone && len(s.edgeUndos) > 0 && s.lab != nil {
		// The move changed weights but the labels were never requested:
		// the cached labels describe the pre-move state and must go.
		s.lab = nil
	}
	s.labPrev = nil
	s.closeTxn()
}

// Rollback restores the committed state.
func (s *State) Rollback() {
	if !s.open {
		panic("solverstate: Rollback without transaction")
	}
	for i := len(s.edgeUndos) - 1; i >= 0; i-- {
		s.wr[s.edgeUndos[i].e] = s.edgeUndos[i].wr
	}
	for _, v := range s.moved {
		s.r[v] -= s.delta[v]
	}
	s.objTent = s.obj
	switch s.labMode {
	case labPatched:
		for i := len(s.labUndos) - 1; i >= 0; i-- {
			u := &s.labUndos[i]
			s.lab.L[u.v], s.lab.R[u.v] = u.l, u.r
			s.lab.LT[u.v], s.lab.RT[u.v] = u.lt, u.rt
			s.lab.HasWindow[u.v] = u.has
		}
	case labFull:
		s.lab, s.labPrev = s.labPrev, nil
	}
	s.closeTxn()
}

func (s *State) closeTxn() {
	for _, v := range s.moved {
		s.delta[v] = 0
	}
	s.moved = s.moved[:0]
	s.edgeUndos = s.edgeUndos[:0]
	s.labUndos = s.labUndos[:0]
	s.seeds = s.seeds[:0]
	s.negEdges = s.negEdges[:0]
	s.labelNeg = false
	s.labMode = labNone
	s.open = false
}

// permille scales part/whole to 0..1000 for the dirty-fraction gauge.
func permille(part, whole int) int64 {
	if whole <= 0 {
		return 0
	}
	p := int64(part) * 1000 / int64(whole)
	if p > 1000 {
		p = 1000
	}
	return p
}
