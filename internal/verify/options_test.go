package verify

import "testing"

// TestDefaultsCentralized is the regression test for the inline-default
// drift bug: ForwardEquivalent used to apply Words/Cycles fallbacks
// inline and forgot Seed, so a zero-valued Options simulated a
// different stream than the documented defaults. DefaultOptions and
// normalized must now agree field by field.
func TestDefaultsCentralized(t *testing.T) {
	def := DefaultOptions()
	if def.Words != 2 || def.Cycles != 32 || def.Seed != 1 {
		t.Fatalf("DefaultOptions() = %+v; want Words=2 Cycles=32 Seed=1", def)
	}
	if norm := (Options{}).normalized(); norm != def {
		t.Errorf("zero Options normalize to %+v, DefaultOptions is %+v", norm, def)
	}
	// Explicit values survive normalization untouched.
	set := Options{Words: 5, Cycles: 7, Seed: -3}
	if got := set.normalized(); got != set {
		t.Errorf("explicit options mangled by normalization: %+v -> %+v", set, got)
	}
	// Negative sizes fold to the defaults rather than poisoning the sim.
	if got := (Options{Words: -1, Cycles: -1}).normalized(); got != def {
		t.Errorf("negative sizes normalize to %+v, want %+v", got, def)
	}
}
