package verify

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"serretime/internal/benchfmt"
	"serretime/internal/circuit"
	"serretime/internal/graph"
)

func load(t testing.TB, name string) (*circuit.Circuit, *graph.Graph) {
	t.Helper()
	c, err := benchfmt.ParseFile("../../testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromCircuit(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, g
}

func TestIdentityRetimingEquivalent(t *testing.T) {
	c, g := load(t, "s27.bench")
	if err := ForwardEquivalent(c, g, graph.NewRetiming(g), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestSingleForwardMoveEquivalent(t *testing.T) {
	c, g := load(t, "s27.bench")
	// G11 reads G5 = DFF(G10): moving that register forward across G11 is
	// legal iff all of G11's in-edges carry a register... find any vertex
	// with a legal single decrement.
	found := false
	for v := 1; v < g.NumVertices(); v++ {
		r := graph.NewRetiming(g)
		r[v]--
		if g.CheckLegal(r) != nil {
			continue
		}
		found = true
		if err := ForwardEquivalent(c, g, r, DefaultOptions()); err != nil {
			t.Fatalf("vertex %s: %v", g.Name(graph.VertexID(v)), err)
		}
	}
	if !found {
		t.Skip("no single legal forward move in s27")
	}
}

func TestPipeline4ForwardMoves(t *testing.T) {
	c, g := load(t, "pipeline4.bench")
	rng := rand.New(rand.NewSource(11))
	r := graph.NewRetiming(g)
	moves := 0
	for tries := 0; tries < 100 && moves < 5; tries++ {
		v := graph.VertexID(1 + rng.Intn(g.NumGates()))
		r[v]--
		if g.CheckLegal(r) != nil {
			r[v]++
			continue
		}
		moves++
	}
	if moves == 0 {
		t.Skip("no legal forward moves found")
	}
	if err := ForwardEquivalent(c, g, r, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardRetimingRejected(t *testing.T) {
	c, g := load(t, "s27.bench")
	r := graph.NewRetiming(g)
	// Find a vertex where an increment is legal.
	for v := 1; v < g.NumVertices(); v++ {
		r[v]++
		if g.CheckLegal(r) == nil {
			break
		}
		r[v]--
	}
	err := ForwardEquivalent(c, g, r, DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "forward") {
		t.Fatalf("backward retiming not rejected: %v", err)
	}
}

func TestIllegalRetimingRejected(t *testing.T) {
	c, g := load(t, "s27.bench")
	r := graph.NewRetiming(g)
	r[1] = -100
	if err := ForwardEquivalent(c, g, r, DefaultOptions()); err == nil {
		t.Fatal("illegal retiming accepted")
	}
}

// randomSeqCircuit builds a random sequential circuit with enough
// registers to admit forward moves.
func randomSeqCircuit(rng *rand.Rand, nGates int) (*circuit.Circuit, error) {
	b := circuit.NewBuilder("rnd")
	names := []string{"pi0", "pi1", "pi2"}
	for _, n := range names {
		b.PI(n)
	}
	fns := []circuit.Func{circuit.FnAnd, circuit.FnOr, circuit.FnNand, circuit.FnNor, circuit.FnXor}
	avail := append([]string(nil), names...)
	gi, qi := 0, 0
	for i := 0; i < nGates; i++ {
		src := avail[rng.Intn(len(avail))]
		if rng.Intn(3) == 0 {
			q := "q" + itoa(qi)
			qi++
			b.DFF(q, src)
			avail = append(avail, q)
			continue
		}
		src2 := avail[rng.Intn(len(avail))]
		gname := "g" + itoa(gi)
		gi++
		b.Gate(gname, fns[rng.Intn(len(fns))], src, src2)
		avail = append(avail, gname)
	}
	b.PO(avail[len(avail)-1])
	b.PO(avail[len(avail)/2])
	return b.Build()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var bs []byte
	for i > 0 {
		bs = append([]byte{byte('0' + i%10)}, bs...)
		i /= 10
	}
	return string(bs)
}

func TestPropertyRandomForwardRetimingsEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := randomSeqCircuit(rng, 12+rng.Intn(20))
		if err != nil {
			return true // degenerate build (e.g. PO of a PI): skip
		}
		g, err := graph.FromCircuit(c, nil)
		if err != nil {
			return true
		}
		r := graph.NewRetiming(g)
		for tries := 0; tries < 30; tries++ {
			v := graph.VertexID(1 + rng.Intn(g.NumGates()))
			r[v]--
			if g.CheckLegal(r) != nil {
				r[v]++
			}
		}
		opt := DefaultOptions()
		opt.Seed = seed
		opt.Cycles = 16
		return ForwardEquivalent(c, g, r, opt) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMultiStepForwardMoves(t *testing.T) {
	// Repeated decrements of the same vertex (multi-register moves).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := randomSeqCircuit(rng, 20)
		if err != nil {
			return true
		}
		g, err := graph.FromCircuit(c, nil)
		if err != nil {
			return true
		}
		r := graph.NewRetiming(g)
		for v := 1; v < g.NumVertices(); v++ {
			for k := 0; k < 3; k++ {
				r[v]--
				if g.CheckLegal(r) != nil {
					r[v]++
					break
				}
			}
		}
		opt := DefaultOptions()
		opt.Seed = seed
		opt.Cycles = 12
		return ForwardEquivalent(c, g, r, opt) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
