package verify

import (
	"testing"

	"serretime/internal/core"
	"serretime/internal/gen"
	"serretime/internal/graph"
	"serretime/internal/retime"
)

// TestOptimizerMovesEquivalentOnGenerated runs the full optimization on
// synthetic circuits and proves the optimizer's forward move sequentially
// equivalent by exact state transport and co-simulation — the end-to-end
// correctness property of the whole pipeline.
func TestOptimizerMovesEquivalentOnGenerated(t *testing.T) {
	for _, spec := range []gen.Spec{
		{Name: "veq-sparse", Gates: 300, Conns: 450, FFs: 80, Depth: 20},
		{Name: "veq-dense", Gates: 300, Conns: 700, FFs: 90, Depth: 15},
		{Name: "veq-shallow", Gates: 200, Conns: 460, FFs: 60, Depth: 9},
	} {
		c, err := gen.Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		g, err := graph.FromCircuit(c, nil)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		init, err := retime.Initialize(g, retime.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		base, err := g.Rebase(init.R)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		// Synthetic observabilities keyed by vertex id (deterministic).
		gateObs := make([]float64, base.NumVertices())
		for v := 1; v < base.NumVertices(); v++ {
			gateObs[v] = float64((v*7919)%100) / 100
		}
		edgeObs := make([]float64, base.NumEdges())
		for e := 0; e < base.NumEdges(); e++ {
			ed := base.Edge(graph.EdgeID(e))
			if ed.From == graph.Host {
				edgeObs[e] = 0.5
			} else {
				edgeObs[e] = gateObs[ed.From]
			}
		}
		gains, obsInt, err := core.Gains(base, gateObs, edgeObs, 256)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		res, err := core.Minimize(base, gains, obsInt, core.Options{
			Phi: init.Phi, Ts: 0, Th: 2, Rmin: init.Rmin, ELWConstraints: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		// Materialize the initialized circuit and transfer the move.
		rb, err := graph.Rebuild(c, g, init.R)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		g1, err := graph.FromCircuit(rb.C, nil)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		r1 := graph.NewRetiming(g1)
		moved := 0
		for v := 1; v < base.NumVertices(); v++ {
			if res.R[v] == 0 {
				continue
			}
			n1, ok := rb.C.Lookup(base.Name(graph.VertexID(v)))
			if !ok {
				t.Fatalf("%s: gate %q lost", spec.Name, base.Name(graph.VertexID(v)))
			}
			v1, ok := g1.VertexOf(n1)
			if !ok {
				t.Fatalf("%s: gate %q not a vertex", spec.Name, base.Name(graph.VertexID(v)))
			}
			r1[v1] = res.R[v]
			moved++
		}
		if err := ForwardEquivalent(rb.C, g1, r1, DefaultOptions()); err != nil {
			t.Fatalf("%s: equivalence: %v", spec.Name, err)
		}
		t.Logf("%s: %d gates moved, equivalence verified", spec.Name, moved)
	}
}
