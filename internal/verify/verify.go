// Package verify checks that a retimed circuit is sequentially equivalent
// to the original.
//
// MinObs/MinObsWin only ever decrease r, i.e. they perform *forward*
// retimings (registers move from gate fanins to fanouts). A forward move
// across gate v replaces the registers at v's inputs by a register at its
// output whose initial value is v's function applied to the consumed
// initial values — so the retimed initial state is computable, and exact
// cycle-by-cycle equivalence can be established by simulation from
// corresponding states.
//
// The state transport is implemented as marked-graph token firing: each
// original pin connection holds a queue of register values (driver side
// first); firing vertex v once (one unit of r decrease) pops the
// consumer-adjacent value of every in-pin queue, applies v's gate function
// bit-parallel, and pushes the result at the driver side of every
// out-queue. Any legal forward retiming admits a complete firing schedule
// (marked-graph realizability).
package verify

import (
	"fmt"
	"math/rand"

	"serretime/internal/circuit"
	"serretime/internal/graph"
	"serretime/internal/sim"
)

// Options controls the equivalence check.
type Options struct {
	// Words is the signature width (64·Words parallel initial states and
	// input vectors). Default 2.
	Words int
	// Cycles is the number of clock cycles co-simulated. Default 32.
	Cycles int
	// Seed drives the random initial state and input streams. Default 1.
	Seed int64
}

// DefaultOptions returns the default check configuration.
func DefaultOptions() Options { return Options{}.normalized() }

// normalized is the single source of truth for option defaults:
// ForwardEquivalent and DefaultOptions both go through it, so the
// documented defaults cannot drift from the ones actually applied (a
// zero Seed really means seed 1, not a silently different stream).
func (o Options) normalized() Options {
	if o.Words <= 0 {
		o.Words = 2
	}
	if o.Cycles <= 0 {
		o.Cycles = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

type pinQueue struct {
	driver   circuit.NodeID // PI or gate node driving the connection
	consumer graph.VertexID // consuming gate vertex, or graph.Host for POs
	vals     [][]uint64     // driver side first
}

// ForwardEquivalent verifies that applying retiming r to circuit c (with
// retiming graph g extracted by graph.FromCircuit) yields a circuit
// cycle-for-cycle equivalent to c from a corresponding initial state.
// The retiming must be a forward retiming: r(v) <= 0 for all v.
func ForwardEquivalent(c *circuit.Circuit, g *graph.Graph, r graph.Retiming, opt Options) error {
	opt = opt.normalized()
	if err := g.CheckLegal(r); err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	for v := 1; v < g.NumVertices(); v++ {
		if r[v] > 0 {
			return fmt.Errorf("verify: r(%s) = %d > 0: not a forward retiming", g.Name(graph.VertexID(v)), r[v])
		}
	}
	rb, err := graph.Rebuild(c, g, r)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Random initial signatures for the original flip-flops, drawn per
	// (effective driver, chain depth): the original circuit may contain
	// parallel unshared registers reading the same net (e.g. two DFFs on
	// one gate output); the max-shared rebuilt circuit can only represent
	// states where such registers agree. All states reachable after the
	// chains flush are of this form, so equivalence is checked over the
	// reachable state space.
	type slot struct {
		driver circuit.NodeID
		depth  int
	}
	slotSig := make(map[slot][]uint64)
	dffInit := make(map[circuit.NodeID][]uint64)
	var depthOf func(q circuit.NodeID) (circuit.NodeID, int)
	depthOf = func(q circuit.NodeID) (circuit.NodeID, int) {
		d := c.Node(q).Fanin[0]
		if c.Node(d).Kind != circuit.KindDFF {
			return d, 1
		}
		drv, k := depthOf(d)
		return drv, k + 1
	}
	for _, q := range c.NodesOfKind(circuit.KindDFF) {
		drv, k := depthOf(q)
		s := slot{drv, k}
		sig, ok := slotSig[s]
		if !ok {
			sig = randomSig(rng, opt.Words)
			slotSig[s] = sig
		}
		dffInit[q] = sig
	}

	queues, err := buildQueues(c, g, dffInit)
	if err != nil {
		return err
	}
	if err := fire(c, g, r, queues, opt.Words); err != nil {
		return err
	}
	chainInit, err := mapChains(c, g, r, rb, queues)
	if err != nil {
		return err
	}

	// Co-simulate.
	sa, err := sim.NewStepper(c, opt.Words)
	if err != nil {
		return err
	}
	for q, sig := range dffInit {
		if err := sa.SetState(q, sig); err != nil {
			return err
		}
	}
	sb, err := sim.NewStepper(rb.C, opt.Words)
	if err != nil {
		return err
	}
	for q, sig := range chainInit {
		if err := sb.SetState(q, sig); err != nil {
			return err
		}
	}
	nPI := len(c.PIs())
	for cyc := 0; cyc < opt.Cycles; cyc++ {
		pi := make([][]uint64, nPI)
		for i := range pi {
			pi[i] = randomSig(rng, opt.Words)
		}
		poA, err := sa.Step(pi)
		if err != nil {
			return err
		}
		if _, err := sb.Step(pi); err != nil {
			return err
		}
		// Compare by original PO index via the rebuilt circuit's tap map:
		// distinct original outputs may share one rebuilt net.
		for i := range poA {
			got := sb.Value(rb.POTaps[i])
			for w := range poA[i] {
				if poA[i][w] != got[w] {
					return fmt.Errorf("verify: output %q diverges at cycle %d (word %d: %x != %x)",
						c.Node(c.POs()[i]).Name, cyc, w, poA[i][w], got[w])
				}
			}
		}
	}
	return nil
}

func randomSig(rng *rand.Rand, words int) []uint64 {
	s := make([]uint64, words)
	for i := range s {
		s[i] = rng.Uint64()
	}
	return s
}

// buildQueues creates one value queue per gate input pin and per PO net of
// the original circuit, initialized from the flip-flop chain contents.
func buildQueues(c *circuit.Circuit, g *graph.Graph, dffInit map[circuit.NodeID][]uint64) ([]*pinQueue, error) {
	var queues []*pinQueue
	mk := func(fin circuit.NodeID, consumer graph.VertexID) (*pinQueue, error) {
		var chain []circuit.NodeID // consumer side first while walking back
		n := fin
		for c.Node(n).Kind == circuit.KindDFF {
			chain = append(chain, n)
			n = c.Node(n).Fanin[0]
			if len(chain) > c.NumNodes() {
				return nil, fmt.Errorf("verify: DFF-only cycle at %q", c.Node(n).Name)
			}
		}
		q := &pinQueue{driver: n, consumer: consumer}
		// Reverse to driver-side-first order.
		for i := len(chain) - 1; i >= 0; i-- {
			q.vals = append(q.vals, dffInit[chain[i]])
		}
		return q, nil
	}
	for _, n := range c.NodesOfKind(circuit.KindGate) {
		v, ok := g.VertexOf(n)
		if !ok {
			return nil, fmt.Errorf("verify: gate %q missing from graph", c.Node(n).Name)
		}
		for _, fin := range c.Node(n).Fanin {
			q, err := mk(fin, v)
			if err != nil {
				return nil, err
			}
			queues = append(queues, q)
		}
	}
	for _, po := range c.POs() {
		q, err := mk(po, graph.Host)
		if err != nil {
			return nil, err
		}
		queues = append(queues, q)
	}
	return queues, nil
}

// fire executes -r(v) firings of every vertex in a realizable order.
func fire(c *circuit.Circuit, g *graph.Graph, r graph.Retiming, queues []*pinQueue, words int) error {
	// In/out queue indices per vertex. In-queues are kept in pin order.
	inQ := make(map[graph.VertexID][]*pinQueue)
	outQ := make(map[graph.VertexID][]*pinQueue)
	for _, q := range queues {
		if q.consumer != graph.Host {
			inQ[q.consumer] = append(inQ[q.consumer], q)
		}
		if c.Node(q.driver).Kind == circuit.KindGate {
			v, _ := g.VertexOf(q.driver)
			outQ[v] = append(outQ[v], q)
		}
	}
	remaining := make([]int32, g.NumVertices())
	var total int64
	for v := 1; v < g.NumVertices(); v++ {
		remaining[v] = -r[v]
		total += int64(remaining[v])
	}
	in := make([]uint64, 0, 8)
	for total > 0 {
		progress := false
		for v := 1; v < g.NumVertices(); v++ {
			vid := graph.VertexID(v)
			for remaining[v] > 0 {
				ready := true
				for _, q := range inQ[vid] {
					if len(q.vals) == 0 {
						ready = false
						break
					}
				}
				if !ready {
					break
				}
				// Pop the consumer-adjacent value of each in-pin.
				nd := c.Node(g.NodeOf(vid))
				out := make([]uint64, words)
				for w := 0; w < words; w++ {
					in = in[:0]
					for _, q := range inQ[vid] {
						in = append(in, q.vals[len(q.vals)-1][w])
					}
					out[w] = nd.Fn.Eval(in)
				}
				for _, q := range inQ[vid] {
					q.vals = q.vals[:len(q.vals)-1]
				}
				// Push at the driver side of each out-queue.
				for _, q := range outQ[vid] {
					q.vals = append([][]uint64{out}, q.vals...)
				}
				remaining[v]--
				total--
				progress = true
			}
		}
		if !progress {
			return fmt.Errorf("verify: firing schedule stuck with %d moves remaining", total)
		}
	}
	return nil
}

// mapChains verifies queue lengths against w_r, checks prefix consistency
// across queues sharing a driver, and produces the initial signatures of
// the rebuilt circuit's chain flip-flops.
func mapChains(c *circuit.Circuit, g *graph.Graph, r graph.Retiming, rb *graph.Rebuilt, queues []*pinQueue) (map[circuit.NodeID][]uint64, error) {
	longest := make(map[string]*pinQueue) // driver net name -> longest queue
	for _, q := range queues {
		name := c.Node(q.driver).Name
		if cur, ok := longest[name]; !ok || len(q.vals) > len(cur.vals) {
			longest[name] = q
		}
	}
	// Prefix consistency: each queue must equal the driver-side prefix of
	// the longest queue of its driver.
	for _, q := range queues {
		ref := longest[c.Node(q.driver).Name]
		for i := range q.vals {
			for w := range q.vals[i] {
				if q.vals[i][w] != ref.vals[i][w] {
					return nil, fmt.Errorf("verify: inconsistent register values on shared chain of %q", c.Node(q.driver).Name)
				}
			}
		}
	}
	init := make(map[circuit.NodeID][]uint64)
	for drv, ids := range rb.Chains {
		q, ok := longest[drv]
		if !ok || len(q.vals) < len(ids) {
			return nil, fmt.Errorf("verify: chain of %q needs %d values, have %d", drv, len(ids), lenOf(q))
		}
		for j, id := range ids {
			init[id] = q.vals[j]
		}
	}
	return init, nil
}

func lenOf(q *pinQueue) int {
	if q == nil {
		return 0
	}
	return len(q.vals)
}
