// Package vlogfmt reads and writes gate-level structural Verilog in the
// classic primitive-instantiation dialect used by the ISCAS/ITC benchmark
// distributions:
//
//	module s27 (G0, G1, G17);
//	  input G0, G1;
//	  output G17;
//	  wire n1;
//	  nand NAND2_1 (n1, G0, G1);
//	  not  NOT1_1  (G17, n1);
//	  dff  DFF_1   (q, d);     // non-standard but conventional in netlists
//	endmodule
//
// Primitive gates follow Verilog's convention: output first, then inputs.
// Supported primitives: and, nand, or, nor, xor, xnor, not, buf, plus the
// netlist convention dff(q, d). Behavioural constructs are rejected.
package vlogfmt

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"serretime/internal/circuit"
	"serretime/internal/faultfs"
	"serretime/internal/guard"
)

// ParseError is the toolkit-wide typed parse error; it unwraps to
// guard.ErrParse and carries the statement-start line.
type ParseError = guard.ParseError

var primOf = map[string]circuit.Func{
	"and": circuit.FnAnd, "nand": circuit.FnNand,
	"or": circuit.FnOr, "nor": circuit.FnNor,
	"xor": circuit.FnXor, "xnor": circuit.FnXnor,
	"not": circuit.FnNot, "buf": circuit.FnBuf,
}

var nameOfFn = map[circuit.Func]string{
	circuit.FnAnd: "and", circuit.FnNand: "nand",
	circuit.FnOr: "or", circuit.FnNor: "nor",
	circuit.FnXor: "xor", circuit.FnXnor: "xnor",
	circuit.FnNot: "not", circuit.FnBuf: "buf",
}

// Parse reads a structural Verilog netlist (one module). Malformed
// input yields a *ParseError (guard.ErrParse), never a panic.
func Parse(r io.Reader, fallbackName string) (c *circuit.Circuit, err error) {
	// Tokenize into ';'-terminated statements, tracking line numbers.
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	type stmt struct {
		text string
		line int
	}
	var stmts []stmt
	var cur strings.Builder
	curLine := 0
	lineNo := 0
	defer guard.RecoverParse("verilog", &lineNo, &err)
	inBlockComment := false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if inBlockComment {
			if i := strings.Index(line, "*/"); i >= 0 {
				line = line[i+2:]
				inBlockComment = false
			} else {
				continue
			}
		}
		for {
			i := strings.Index(line, "/*")
			if i < 0 {
				break
			}
			j := strings.Index(line[i+2:], "*/")
			if j < 0 {
				line = line[:i]
				inBlockComment = true
				break
			}
			line = line[:i] + " " + line[i+2+j+2:]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		for {
			line = strings.TrimSpace(line)
			if line == "" {
				break
			}
			if cur.Len() == 0 {
				curLine = lineNo
			}
			if i := strings.IndexByte(line, ';'); i >= 0 {
				cur.WriteString(line[:i])
				stmts = append(stmts, stmt{cur.String(), curLine})
				cur.Reset()
				line = line[i+1:]
				continue
			}
			// "endmodule" has no semicolon.
			if strings.TrimSpace(line) == "endmodule" && cur.Len() == 0 {
				stmts = append(stmts, stmt{"endmodule", lineNo})
				line = ""
				continue
			}
			cur.WriteString(line)
			cur.WriteByte(' ')
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, guard.Parsef("verilog", lineNo, 0, "read: %v", err)
	}
	if strings.TrimSpace(cur.String()) != "" {
		stmts = append(stmts, stmt{cur.String(), curLine})
	}

	b := circuit.NewBuilder(fallbackName)
	name := fallbackName
	declared := false
	var outputs []string
	for _, st := range stmts {
		fields := strings.FieldsFunc(st.text, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ',' || r == '(' || r == ')'
		})
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "module":
			if len(fields) < 2 {
				return nil, guard.Parsef("verilog", st.line, 0, "module without a name")
			}
			name = fields[1]
			declared = true
		case "endmodule":
		case "input":
			for _, n := range fields[1:] {
				b.PI(n)
			}
		case "output":
			outputs = append(outputs, fields[1:]...)
		case "wire", "reg", "tri":
			// Net declarations carry no structure here.
		case "dff", "DFF":
			if len(fields) < 4 {
				return nil, guard.Parsef("verilog", st.line, 0, "dff needs (q, d)")
			}
			// fields[1] is the instance name.
			b.DFF(fields[2], fields[3])
		case "assign":
			return nil, guard.Parsef("verilog", st.line, 0, "behavioural assign not supported (structural netlists only)")
		default:
			fn, ok := primOf[fields[0]]
			if !ok {
				return nil, guard.Parsef("verilog", st.line, 0, "unknown construct %q", fields[0])
			}
			if len(fields) < 4 {
				return nil, guard.Parsef("verilog", st.line, 0, "%s needs an instance name, an output and inputs", fields[0])
			}
			out := fields[2]
			ins := fields[3:]
			b.Gate(out, fn, ins...)
		}
	}
	if !declared {
		return nil, guard.Parsef("verilog", 1, 0, "no module declaration")
	}
	for _, o := range outputs {
		b.PO(o)
	}
	c, err = b.Build()
	if err != nil {
		return nil, guard.Parsef("verilog", 0, 0, "%v", err)
	}
	c.Name = name
	return c, nil
}

// ParseFile reads a structural Verilog file.
func ParseFile(path string) (*circuit.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(base, ".v")
	return Parse(f, base)
}

// sanitize maps a net name onto a legal Verilog identifier (the generator
// and the rebuilder use '$' and '.' freely). Verilog escapes would also
// work but read terribly.
func sanitize(name string) string {
	var sb strings.Builder
	for _, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	s := sb.String()
	if s == "" || (s[0] >= '0' && s[0] <= '9') {
		s = "n" + s
	}
	return s
}

// Write emits the circuit as structural Verilog. Net names are sanitized
// to legal identifiers; collisions after sanitizing get numeric suffixes.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	names := make(map[circuit.NodeID]string, c.NumNodes())
	used := make(map[string]bool, c.NumNodes())
	for i := 0; i < c.NumNodes(); i++ {
		id := circuit.NodeID(i)
		n := sanitize(c.Node(id).Name)
		for used[n] {
			n += "_"
		}
		used[n] = true
		names[id] = n
	}

	var ports []string
	for _, pi := range c.PIs() {
		ports = append(ports, names[pi])
	}
	for _, po := range c.POs() {
		ports = append(ports, names[po])
	}
	fmt.Fprintf(bw, "module %s (%s);\n", sanitize(c.Name), strings.Join(ports, ", "))
	for _, pi := range c.PIs() {
		fmt.Fprintf(bw, "  input %s;\n", names[pi])
	}
	for _, po := range c.POs() {
		fmt.Fprintf(bw, "  output %s;\n", names[po])
	}
	isPort := make(map[circuit.NodeID]bool)
	for _, pi := range c.PIs() {
		isPort[pi] = true
	}
	for _, po := range c.POs() {
		isPort[po] = true
	}
	for i := 0; i < c.NumNodes(); i++ {
		id := circuit.NodeID(i)
		if c.Node(id).Kind != circuit.KindPI && !isPort[id] {
			fmt.Fprintf(bw, "  wire %s;\n", names[id])
		}
	}
	inst := 0
	for i := 0; i < c.NumNodes(); i++ {
		id := circuit.NodeID(i)
		nd := c.Node(id)
		switch nd.Kind {
		case circuit.KindDFF:
			inst++
			fmt.Fprintf(bw, "  dff DFF_%d (%s, %s);\n", inst, names[id], names[nd.Fanin[0]])
		case circuit.KindGate:
			inst++
			prim, ok := nameOfFn[nd.Fn]
			if !ok {
				// Constants become tied buffers via supply nets; keep it
				// simple with 1'b0/1'b1 continuous drivers is behavioural,
				// so emit a primitive-compatible trick: buf of itself is
				// illegal — reject instead.
				return fmt.Errorf("verilog: cannot emit %s gate %q structurally", nd.Fn, nd.Name)
			}
			args := make([]string, 0, len(nd.Fanin)+1)
			args = append(args, names[id])
			for _, f := range nd.Fanin {
				args = append(args, names[f])
			}
			fmt.Fprintf(bw, "  %s %s_%d (%s);\n", prim, strings.ToUpper(prim), inst, strings.Join(args, ", "))
		}
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// WriteFile writes the circuit to a Verilog file. The write is atomic
// (temp file + rename), so a crash mid-write can't leave a torn netlist.
func WriteFile(path string, c *circuit.Circuit) error {
	return faultfs.WriteAtomic(faultfs.OS(), path, 0o644, false, func(w io.Writer) error {
		return Write(w, c)
	})
}
