package vlogfmt

import (
	"errors"
	"strings"
	"testing"

	"serretime/internal/guard"
)

// FuzzParseVerilog checks the robustness contract of the structural
// Verilog reader: any byte stream either parses into a circuit or
// yields an error unwrapping to guard.ErrParse — it must never panic
// or return (nil, nil).
func FuzzParseVerilog(f *testing.F) {
	f.Add("module m(a, y);\ninput a;\noutput y;\nnot n1(y, a);\nendmodule\n")
	f.Add("module m(a, b, y);\ninput a, b;\noutput y;\nwire w;\nand g1(w, a, b);\ndff r1(y, w);\nendmodule\n")
	f.Add("module m;\n/* block\ncomment */ endmodule\n")
	f.Add("module ;\n")
	f.Add("assign y = a;\n")
	f.Add("module m(y);\noutput y;\nand g1(y);\nendmodule\n")
	f.Add("not n1(y, a);\n")
	f.Fuzz(func(t *testing.T, input string) {
		c, err := Parse(strings.NewReader(input), "fuzz")
		if err != nil {
			if !errors.Is(err, guard.ErrParse) {
				t.Fatalf("error does not unwrap to guard.ErrParse: %v", err)
			}
			return
		}
		if c == nil {
			t.Fatal("nil circuit with nil error")
		}
	})
}
