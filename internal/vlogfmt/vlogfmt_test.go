package vlogfmt

import (
	"bytes"
	"strings"
	"testing"

	"serretime/internal/benchfmt"
	"serretime/internal/circuit"
)

const sample = `
// classic gate-level netlist
module demo (a, b, c, y, z);
  input a, b,
        c;           // multi-line declaration
  output y, z;
  wire n1, n2, q;
  nand NAND2_1 (n1, a, b);
  /* a block
     comment */
  xor  XOR2_1  (n2, n1, q);
  dff  DFF_1   (q, n2);
  not  NOT1_1  (y, n2);
  buf  BUF1_1  (z, q);
endmodule
`

func TestParseSample(t *testing.T) {
	c, err := Parse(strings.NewReader(sample), "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "demo" {
		t.Fatalf("name = %q", c.Name)
	}
	pis, pos, gates, dffs := c.Counts()
	if pis != 3 || pos != 2 || gates != 4 || dffs != 1 {
		t.Fatalf("counts = %d %d %d %d", pis, pos, gates, dffs)
	}
	n1, _ := c.Lookup("n1")
	if c.Node(n1).Fn != circuit.FnNand {
		t.Fatal("n1 not a NAND")
	}
	q, ok := c.Lookup("q")
	if !ok || c.Node(q).Kind != circuit.KindDFF {
		t.Fatal("q not a DFF")
	}
	if drv := c.Node(q).Fanin[0]; c.Node(drv).Name != "n2" {
		t.Fatal("dff input wrong (output-first convention)")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"noModule", "input a;"},
		{"assign", "module m (a); input a; assign y = a; endmodule"},
		{"unknownPrim", "module m (a); input a; foo F1 (y, a); endmodule"},
		{"dffArity", "module m (a); input a; dff D1 (q); endmodule"},
		{"gateArity", "module m (a); input a; nand N (y); endmodule"},
		{"moduleNoName", "module ; endmodule"},
	}
	for _, tc := range cases {
		if _, err := Parse(strings.NewReader(tc.src), "t"); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRoundTripS27(t *testing.T) {
	orig, err := benchfmt.ParseFile("../../testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()), "s27")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	op, oo, og, od := orig.Counts()
	bp, bo, bg, bd := back.Counts()
	if op != bp || oo != bo || og != bg || od != bd {
		t.Fatalf("round trip counts: %v vs %v", []int{op, oo, og, od}, []int{bp, bo, bg, bd})
	}
	for _, name := range orig.SortedNames() {
		oid, _ := orig.Lookup(name)
		bid, ok := back.Lookup(name)
		if !ok {
			t.Fatalf("net %q lost", name)
		}
		if orig.Node(oid).Fn != back.Node(bid).Fn || orig.Node(oid).Kind != back.Node(bid).Kind {
			t.Fatalf("net %q changed", name)
		}
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"G10":    "G10",
		"G10$r1": "G10_r1",
		"9lives": "n9lives",
		"a.b[3]": "a_b_3_",
		"":       "n",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteSanitizesAndDisambiguates(t *testing.T) {
	b := circuit.NewBuilder("t")
	b.PI("a$x")
	b.PI("a_x") // collides with the sanitized form of a$x
	b.Gate("y", circuit.FnAnd, "a$x", "a_x")
	b.PO("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a_x_") {
		t.Fatalf("collision not disambiguated:\n%s", out)
	}
	if _, err := Parse(strings.NewReader(out), "t"); err != nil {
		t.Fatalf("emitted verilog does not reparse: %v\n%s", err, out)
	}
}

func TestWriteRejectsConstants(t *testing.T) {
	b := circuit.NewBuilder("t")
	b.PI("a")
	b.Gate("one", circuit.FnConst1)
	b.Gate("y", circuit.FnAnd, "a", "one")
	b.PO("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err == nil {
		t.Fatal("constant gate emitted structurally")
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("/nonexistent.v"); err == nil {
		t.Fatal("missing file accepted")
	}
}
