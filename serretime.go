// Package serretime is a soft-error-aware retiming toolkit for gate-level
// sequential circuits, reproducing and extending:
//
//	Yinghai Lu and Hai Zhou. "Retiming for Soft Error Minimization Under
//	Error-Latching Window Constraints." DATE 2013.
//
// The package wraps the full pipeline: netlist loading (.bench) or
// synthesis, signature-based observability analysis with n-time-frame
// expansion (logic masking), error-latching-window analysis (timing
// masking), SER evaluation per eq. (4) of the paper, and the retiming
// optimizers — the Efficient MinObs baseline of Krishnaswamy et al. and
// the paper's MinObsWin algorithm, plus a min-area mode and the
// area-weighted objective sketched in the paper's conclusion.
//
// Typical use:
//
//	d, _ := serretime.LoadBench("s27.bench")
//	res, _ := d.Retime(serretime.RetimeOptions{Algorithm: serretime.MinObsWin})
//	fmt.Printf("SER %.3g -> %.3g\n", res.Before.SER, res.After.SER)
package serretime

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"serretime/internal/benchfmt"
	"serretime/internal/bliffmt"
	"serretime/internal/circuit"
	"serretime/internal/gen"
	"serretime/internal/graph"
	"serretime/internal/guard"
	"serretime/internal/obs"
	"serretime/internal/ser"
	"serretime/internal/sim"
	"serretime/internal/telemetry"
	"serretime/internal/vlogfmt"
)

// Design bundles a circuit with its retiming graph and cached analyses.
type Design struct {
	c *circuit.Circuit
	g *graph.Graph

	// cached observability analysis, keyed by the options that built it
	obsOpt  AnalysisOptions
	gateObs []float64
	edgeObs []float64
	rates   []float64
	regRate float64
}

// newDesign extracts the retiming graph and validates the circuit. Graph
// extraction runs under guard so that a degenerate netlist which trips an
// internal invariant surfaces as guard.ErrInternal, never as a crash.
func newDesign(c *circuit.Circuit) (*Design, error) {
	return guard.Do(context.Background(), "serretime.newDesign", func(context.Context) (*Design, error) {
		g, err := graph.FromCircuit(c, nil)
		if err != nil {
			return nil, err
		}
		return &Design{c: c, g: g}, nil
	})
}

// LoadBench reads an ISCAS89 .bench netlist from a file.
func LoadBench(path string) (*Design, error) {
	c, err := benchfmt.ParseFile(path)
	if err != nil {
		return nil, err
	}
	return newDesign(c)
}

// ParseBench reads a .bench netlist from a reader.
func ParseBench(r io.Reader, name string) (*Design, error) {
	c, err := benchfmt.Parse(r, name)
	if err != nil {
		return nil, err
	}
	return newDesign(c)
}

// WriteBench writes the design's netlist in .bench syntax.
func (d *Design) WriteBench(w io.Writer) error {
	return guard.Run(context.Background(), "serretime.WriteBench", func(context.Context) error {
		return benchfmt.Write(w, d.c)
	})
}

// LoadBLIF reads a structural BLIF netlist from a file.
func LoadBLIF(path string) (*Design, error) {
	c, err := bliffmt.ParseFile(path)
	if err != nil {
		return nil, err
	}
	return newDesign(c)
}

// ParseBLIF reads a structural BLIF netlist from a reader.
func ParseBLIF(r io.Reader, name string) (*Design, error) {
	c, err := bliffmt.Parse(r, name)
	if err != nil {
		return nil, err
	}
	return newDesign(c)
}

// WriteBLIF writes the design's netlist in BLIF syntax.
func (d *Design) WriteBLIF(w io.Writer) error {
	return guard.Run(context.Background(), "serretime.WriteBLIF", func(context.Context) error {
		return bliffmt.Write(w, d.c)
	})
}

// LoadVerilog reads a gate-level structural Verilog netlist from a file.
func LoadVerilog(path string) (*Design, error) {
	c, err := vlogfmt.ParseFile(path)
	if err != nil {
		return nil, err
	}
	return newDesign(c)
}

// ParseVerilog reads a gate-level structural Verilog netlist from a reader.
func ParseVerilog(r io.Reader, name string) (*Design, error) {
	c, err := vlogfmt.Parse(r, name)
	if err != nil {
		return nil, err
	}
	return newDesign(c)
}

// WriteVerilog writes the design as gate-level structural Verilog (net
// names are sanitized to legal identifiers).
func (d *Design) WriteVerilog(w io.Writer) error {
	return guard.Run(context.Background(), "serretime.WriteVerilog", func(context.Context) error {
		return vlogfmt.Write(w, d.c)
	})
}

// Format identifies a netlist syntax.
type Format uint8

const (
	// FormatBench is the ISCAS89 .bench syntax.
	FormatBench Format = iota
	// FormatBLIF is structural BLIF.
	FormatBLIF
	// FormatVerilog is gate-level structural Verilog.
	FormatVerilog
)

func (f Format) String() string {
	switch f {
	case FormatBench:
		return "bench"
	case FormatBLIF:
		return "blif"
	case FormatVerilog:
		return "verilog"
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// UnknownFormatError reports a netlist path whose extension names no
// supported format. It unwraps to guard.ErrParse: an unrecognized
// extension is malformed input, not a reason to feed Verilog to the
// bench parser and report its confusion instead.
type UnknownFormatError struct {
	Path string
}

func (e *UnknownFormatError) Error() string {
	return fmt.Sprintf("serretime: unknown netlist format %q (want .bench, .blif or .v)", e.Path)
}

func (e *UnknownFormatError) Unwrap() error { return guard.ErrParse }

// FormatOf sniffs the netlist format from a path's extension,
// case-insensitively (DESIGN.BLIF and top.V are their lowercase
// siblings). Unrecognized extensions return a *UnknownFormatError; the
// caller decides whether to fall back, the sniffer never guesses.
func FormatOf(path string) (Format, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".bench":
		return FormatBench, nil
	case ".blif":
		return FormatBLIF, nil
	case ".v":
		return FormatVerilog, nil
	}
	return 0, &UnknownFormatError{Path: path}
}

// Load reads a netlist, picking the format from the file extension via
// FormatOf (.bench, .blif, .v, any case). It routes through Parse so
// the design's name is derived uniformly: the base name with its
// extension stripped, whatever the extension's case.
func Load(path string) (*Design, error) {
	if _, err := FormatOf(path); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f, path)
}

// Parse reads a netlist from r, picking the format from name's extension
// via FormatOf; the design is named after name's base without the
// extension. This is the reader-side Load — the service's content
// sniffing goes through it.
func Parse(r io.Reader, name string) (*Design, error) {
	f, err := FormatOf(name)
	if err != nil {
		return nil, err
	}
	base := strings.TrimSuffix(filepath.Base(name), filepath.Ext(name))
	switch f {
	case FormatBLIF:
		return ParseBLIF(r, base)
	case FormatVerilog:
		return ParseVerilog(r, base)
	}
	return ParseBench(r, base)
}

// CircuitSpec prescribes a synthetic benchmark circuit (see the paper's
// Table I for the regimes it evaluates).
type CircuitSpec struct {
	// Name identifies and seeds the circuit.
	Name string
	// Gates, Conns, FFs are the gate, connection and flip-flop counts.
	Gates, Conns, FFs int
	// Depth is the target logic depth (0 = derived from Gates).
	Depth int
	// FanoutSkew trades dead-logic coverage for fanout/length diversity
	// (see internal/gen); default 0.05.
	FanoutSkew float64
	// Seed overrides the name-derived seed when nonzero.
	Seed int64
}

// Synthesize generates a seeded synthetic circuit with the prescribed
// statistics.
func Synthesize(spec CircuitSpec) (*Design, error) {
	return guard.Do(context.Background(), "serretime.Synthesize", func(context.Context) (*Design, error) {
		c, err := gen.Generate(gen.Spec{
			Name: spec.Name, Gates: spec.Gates, Conns: spec.Conns,
			FFs: spec.FFs, Depth: spec.Depth, Seed: spec.Seed,
			FanoutSkew: spec.FanoutSkew,
		})
		if err != nil {
			return nil, err
		}
		return newDesign(c)
	})
}

// TableICircuits lists the benchmark names of the paper's Table I.
func TableICircuits() []string {
	names := make([]string, len(gen.TableI))
	for i, s := range gen.TableI {
		names[i] = s.Name
	}
	return names
}

// NewTableIDesign synthesizes the substitute for a Table I benchmark.
// scale > 1 shrinks all counts by that factor (the structure and
// clock-period regime are preserved), which keeps the largest circuits
// tractable on small machines.
func NewTableIDesign(name string, scale int) (*Design, error) {
	s, err := gen.FindTableI(name)
	if err != nil {
		return nil, err
	}
	c, err := gen.Generate(s.Scale(scale).Spec)
	if err != nil {
		return nil, err
	}
	return newDesign(c)
}

// Name returns the design name.
func (d *Design) Name() string { return d.c.Name }

// Stats summarizes the design.
type Stats struct {
	PIs, POs, Gates, FFs int
	// Vertices and Edges are the retiming-graph sizes (|V| counts
	// combinational gates; |E| counts pin connections plus output nets).
	Vertices, Edges int
	// Depth is the maximum combinational gate depth.
	Depth int
}

// Stats computes the design's summary statistics.
func (d *Design) Stats() (Stats, error) {
	cs, err := d.c.Stats()
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		PIs: cs.PIs, POs: cs.POs, Gates: cs.Gates, FFs: cs.DFFs,
		Vertices: d.g.NumGates(), Edges: d.g.NumEdges(), Depth: cs.Depth,
	}, nil
}

// Accuracy selects the observability engine (DESIGN.md §16).
type Accuracy uint8

const (
	// AccuracyExact (default) measures observabilities with the
	// signature-based ODC analysis over an n-frame simulated trace — the
	// ground-truth engine, bounded in practice by the simulation cost.
	AccuracyExact Accuracy = iota
	// AccuracyFast estimates observabilities with the analytical
	// propagation-probability engine: no simulation, orders of magnitude
	// cheaper, exact per-gate transfer under an independence assumption
	// that reconvergent fanout violates. Cross-validated against exact on
	// the testdata circuits (rank correlation >= 0.9).
	AccuracyFast
)

func (a Accuracy) String() string {
	switch a {
	case AccuracyExact:
		return "exact"
	case AccuracyFast:
		return "fast"
	}
	return fmt.Sprintf("Accuracy(%d)", uint8(a))
}

// ParseAccuracy maps the wire/CLI spelling of an accuracy ("exact",
// "fast", or empty for the default) to the enum. Unknown spellings fail
// with a typed error unwrapping to guard.ErrParse; op names the entry
// point for the error text.
func ParseAccuracy(op, s string) (Accuracy, error) {
	switch s {
	case "", "exact":
		return AccuracyExact, nil
	case "fast":
		return AccuracyFast, nil
	}
	return 0, guard.Optionf(op, "accuracy", "unknown accuracy %q (want exact or fast)", s)
}

// AnalysisOptions tunes the observability/SER analysis.
type AnalysisOptions struct {
	// Accuracy selects the observability engine: AccuracyExact (default)
	// simulates, AccuracyFast estimates analytically. The two engines
	// return different numbers for the same circuit, so Accuracy is part
	// of every cache key (ensureObs, CanonicalKey) — fast and exact
	// results never alias.
	Accuracy Accuracy
	// Frames is the time-frame expansion depth n (default 15, as in the
	// paper).
	Frames int
	// SignatureWords is the random-vector width in 64-bit words
	// (default 4 = 256 vectors).
	SignatureWords int
	// Seed drives the random simulation vectors (default 1).
	Seed int64
	// MaxIntervals caps per-gate ELW interval counts; 0 keeps windows
	// exact.
	MaxIntervals int
	// Workers bounds the CPU workers sharding the simulation and ODC
	// passes across signature words. 0 (or negative) means one worker per
	// available CPU; 1 runs the exact sequential code path. Results are
	// bit-identical for every value (DESIGN.md §11), so the worker count
	// never invalidates a cached analysis.
	Workers int
}

func (o AnalysisOptions) normalized() AnalysisOptions {
	if o.Frames == 0 {
		o.Frames = 15
	}
	if o.SignatureWords == 0 {
		o.SignatureWords = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// CanonicalKey returns a deterministic textual encoding of the analysis
// options that affect results, with defaults applied — two values with
// equal keys request the same analysis. Workers is excluded: results are
// bit-identical for every worker count (DESIGN.md §11).
func (o AnalysisOptions) CanonicalKey() string {
	n := o.normalized()
	return fmt.Sprintf("acc=%s frames=%d words=%d seed=%d maxint=%d",
		n.Accuracy, n.Frames, n.SignatureWords, n.Seed, n.MaxIntervals)
}

// ensureObs computes (or reuses) the observability analysis of the
// original circuit; gate observabilities are invariant under retiming
// (Section III-B), so one analysis serves every retimed variant.
func (d *Design) ensureObs(opt AnalysisOptions) error {
	return d.ensureObsRec(opt, nil)
}

// ensureObsRec is ensureObs with worker-pool telemetry routed to rec.
// The cache key drops Workers: the analysis is bit-identical for every
// worker count, so a cached result stays valid when only the parallelism
// changes.
func (d *Design) ensureObsRec(opt AnalysisOptions, rec telemetry.Recorder) error {
	opt = opt.normalized()
	key := opt
	key.Workers = 0
	if d.gateObs != nil && d.obsOpt == key {
		return nil
	}
	acc := obs.AccuracyExact
	if opt.Accuracy == AccuracyFast {
		acc = obs.AccuracyFast
	}
	// ComputeDesign dispatches on the accuracy: exact simulates a
	// transient trace (released inside, its signature plane goes back to
	// the pool for the next job) and runs the ODC pass; fast runs the
	// analytical propagation-probability estimate with no simulation.
	res, err := obs.ComputeDesign(context.Background(), d.c, sim.Config{
		Words: opt.SignatureWords, Frames: opt.Frames, Seed: opt.Seed,
		Workers: opt.Workers, Recorder: rec,
	}, obs.Options{Accuracy: acc, Workers: opt.Workers, Recorder: rec})
	if err != nil {
		return err
	}
	gateObs, err := ser.VertexObs(d.c, d.g, res)
	if err != nil {
		return err
	}
	edgeObs, err := ser.EdgeObs(d.c, d.g, gateObs, res)
	if err != nil {
		return err
	}
	rates, err := ser.VertexRates(d.c, d.g, nil)
	if err != nil {
		return err
	}
	d.obsOpt = key
	d.gateObs = gateObs
	d.edgeObs = edgeObs
	d.rates = rates
	d.regRate = ser.SyntheticRates{}.RegisterRate()
	return nil
}

// Analysis is a SER evaluation of the design under a clock period.
type Analysis struct {
	// SER is the total soft error rate per eq. (4); GateSER and
	// RegisterSER are its two terms.
	SER, GateSER, RegisterSER float64
	// Registers counts per-edge registers; SharedFFs counts physical
	// flip-flops under max sharing.
	Registers, SharedFFs int64
	// RegisterObs is the summed register observability (eq. 5), the
	// MinObs objective.
	RegisterObs float64
	// Phi is the clock period used.
	Phi float64
}

// Analyze evaluates the SER of the unretimed design at clock period phi
// (0 = the design's combinational critical path, unrelaxed).
func (d *Design) Analyze(phi float64, opt AnalysisOptions) (*Analysis, error) {
	return guard.Do(context.Background(), "serretime.Analyze", func(context.Context) (*Analysis, error) {
		if err := d.ensureObs(opt); err != nil {
			return nil, err
		}
		return d.analyzeAt(d.g, graph.NewRetiming(d.g), phi, opt)
	})
}

func (d *Design) analyzeAt(g *graph.Graph, r graph.Retiming, phi float64, opt AnalysisOptions) (*Analysis, error) {
	opt = opt.normalized()
	if phi <= 0 {
		_, crit, err := g.ArrivalTimes(r)
		if err != nil {
			return nil, err
		}
		phi = crit
	}
	in := ser.Inputs{
		GateObs: d.gateObs, EdgeObs: d.edgeObs, GateRate: d.rates,
		RegRate: d.regRate, Params: elwParams(phi), MaxIntervals: opt.MaxIntervals,
	}
	an, err := ser.Compute(g, r, in)
	if err != nil {
		return nil, err
	}
	return &Analysis{
		SER: an.Total, GateSER: an.Gates, RegisterSER: an.Registers,
		Registers: an.NumRegisters, SharedFFs: an.SharedRegisters,
		RegisterObs: an.RegisterObs, Phi: phi,
	}, nil
}
