package serretime

// Property tests of the worker-count invariance claimed by DESIGN.md §11:
// sim.Run, sim.InjectFlip, obs.Compute and graph.ComputeWDPar must produce
// bit-identical results for Workers ∈ {1, 2, GOMAXPROCS} on generated
// circuits. Workers = 1 is the sequential reference path, so these tests
// pin the sharded implementations to the legacy behavior bit for bit.

import (
	"fmt"
	"runtime"
	"testing"

	"serretime/internal/circuit"
	"serretime/internal/gen"
	"serretime/internal/graph"
	"serretime/internal/obs"
	"serretime/internal/sim"
)

// determinismWorkers returns the worker counts under test: the sequential
// reference, a forced 2-way split (exercises sharding even on one CPU),
// and the machine width when it differs.
func determinismWorkers() []int {
	ws := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 {
		ws = append(ws, n)
	}
	return ws
}

// determinismCircuits generates a few structurally diverse circuits: small
// and dense, wide with fanout hubs, and one whose word count exceeds any
// tested worker count so spans hold multiple words.
func determinismCircuits(t testing.TB) map[string]*circuit.Circuit {
	t.Helper()
	specs := []gen.Spec{
		{Name: "det-small", Gates: 60, Conns: 130, FFs: 9, Depth: 6},
		{Name: "det-wide", Gates: 420, Conns: 980, FFs: 48, Depth: 9, FanoutSkew: 0.25},
		{Name: "det-deep", Gates: 300, Conns: 640, FFs: 30, Depth: 24},
	}
	out := make(map[string]*circuit.Circuit, len(specs))
	for _, s := range specs {
		c, err := gen.Generate(s)
		if err != nil {
			t.Fatalf("generate %s: %v", s.Name, err)
		}
		out[s.Name] = c
	}
	return out
}

func traceEqual(t *testing.T, want, got *sim.Trace, label string) {
	t.Helper()
	if want.Words != got.Words || want.Frames != got.Frames {
		t.Fatalf("%s: shape mismatch", label)
	}
	n := want.Circuit.NumNodes()
	for f := 0; f < want.Frames; f++ {
		for id := 0; id < n; id++ {
			a := want.Value(f, circuit.NodeID(id))
			b := got.Value(f, circuit.NodeID(id))
			for w := range a {
				if a[w] != b[w] {
					t.Fatalf("%s: frame %d node %d word %d: %x != %x",
						label, f, id, w, a[w], b[w])
				}
			}
		}
	}
}

// TestFrontEndDeterminismSim: identical traces for every worker count,
// across signature widths that divide unevenly into the span counts.
func TestFrontEndDeterminismSim(t *testing.T) {
	for name, c := range determinismCircuits(t) {
		for _, words := range []int{1, 3, 8} {
			ref, err := sim.Run(c, sim.Config{Words: words, Frames: 11, Seed: 7, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range determinismWorkers()[1:] {
				tr, err := sim.Run(c, sim.Config{Words: words, Frames: 11, Seed: 7, Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				traceEqual(t, ref, tr, fmt.Sprintf("%s words=%d workers=%d", name, words, w))
				// Release and re-run: a trace built on a recycled plane from
				// the pool must be bit-identical to one on fresh memory.
				tr.Release()
				tr, err = sim.Run(c, sim.Config{Words: words, Frames: 11, Seed: 7, Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				traceEqual(t, ref, tr, fmt.Sprintf("%s words=%d workers=%d pooled", name, words, w))
				tr.Release()
			}
		}
	}
}

// TestFrontEndDeterminismInject: identical fault-difference signatures for
// every worker count, at several injection sites including a DFF.
func TestFrontEndDeterminismInject(t *testing.T) {
	for name, c := range determinismCircuits(t) {
		targets := []circuit.NodeID{}
		var dff circuit.NodeID = -1
		for id := 0; id < c.NumNodes() && len(targets) < 3; id++ {
			if c.Node(circuit.NodeID(id)).Kind == circuit.KindGate {
				targets = append(targets, circuit.NodeID(id))
			}
			if dff < 0 && c.Node(circuit.NodeID(id)).Kind == circuit.KindDFF {
				dff = circuit.NodeID(id)
			}
		}
		if dff >= 0 {
			targets = append(targets, dff)
		}
		for _, w := range determinismWorkers() {
			tr, err := sim.Run(c, sim.Config{Words: 4, Frames: 9, Seed: 3, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			for _, target := range targets {
				diffs, err := sim.InjectFlip(tr, target)
				if err != nil {
					t.Fatal(err)
				}
				if w == 1 {
					continue
				}
				refTr, err := sim.Run(c, sim.Config{Words: 4, Frames: 9, Seed: 3, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				ref, err := sim.InjectFlip(refTr, target)
				if err != nil {
					t.Fatal(err)
				}
				for f := range ref {
					for p := range ref[f] {
						for j := range ref[f][p] {
							if ref[f][p][j] != diffs[f][p][j] {
								t.Fatalf("%s target=%d workers=%d: frame %d PO %d word %d differs",
									name, target, w, f, p, j)
							}
						}
					}
				}
			}
		}
	}
}

// TestFrontEndDeterminismObs: identical observability vectors for every
// worker count, with and without the final-register drop.
func TestFrontEndDeterminismObs(t *testing.T) {
	for name, c := range determinismCircuits(t) {
		tr, err := sim.Run(c, sim.Config{Words: 5, Frames: 10, Seed: 11, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, drop := range []bool{false, true} {
			ref, err := obs.Compute(tr, obs.Options{DropFinalRegisters: drop, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range determinismWorkers()[1:] {
				res, err := obs.Compute(tr, obs.Options{DropFinalRegisters: drop, Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				if res.K != ref.K || len(res.Obs) != len(ref.Obs) {
					t.Fatalf("%s: shape mismatch", name)
				}
				for i := range ref.Obs {
					if res.Obs[i] != ref.Obs[i] {
						t.Fatalf("%s drop=%v workers=%d: obs[%d] = %v != %v",
							name, drop, w, i, res.Obs[i], ref.Obs[i])
					}
				}
			}
		}
	}
}

// TestFrontEndDeterminismWD: identical W/D matrices for every worker
// count, including against the sequential ComputeWD wrapper.
func TestFrontEndDeterminismWD(t *testing.T) {
	for name, c := range determinismCircuits(t) {
		g, err := graph.FromCircuit(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref := g.ComputeWD()
		n := g.NumVertices()
		for _, w := range determinismWorkers() {
			m, err := g.ComputeWDPar(nil, w, nil)
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					uu, vv := graph.VertexID(u), graph.VertexID(v)
					if m.W(uu, vv) != ref.W(uu, vv) {
						t.Fatalf("%s workers=%d: W(%d,%d) = %d != %d",
							name, w, u, v, m.W(uu, vv), ref.W(uu, vv))
					}
					if ref.W(uu, vv) != graph.NoPath && m.D(uu, vv) != ref.D(uu, vv) {
						t.Fatalf("%s workers=%d: D(%d,%d) = %v != %v",
							name, w, u, v, m.D(uu, vv), ref.D(uu, vv))
					}
				}
			}
		}
	}
}
