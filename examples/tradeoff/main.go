// Tradeoff: sweeps the two knobs the paper discusses around MinObsWin —
// the shortest-path bound Rmin (via synthetic overrides of the clock
// relaxation ε) and the area weight λ of the Section VII extension — and
// prints the resulting SER / register-count frontier.
//
// Run from the repository root:
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"serretime"
)

func main() {
	d, err := serretime.Synthesize(serretime.CircuitSpec{
		Name:  "tradeoff-demo",
		Gates: 1500, Conns: 3300, FFs: 450, Depth: 35,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ε sweep (clock relaxation over the minimal period): more slack,")
	fmt.Println("more freedom for the optimizer, larger windows per eq. (4).")
	fmt.Printf("%8s %8s %12s %9s %8s\n", "epsilon", "phi", "SER after", "dSER", "dFF")
	for _, eps := range []float64{0.02, 0.05, 0.10, 0.20, 0.40} {
		res, err := d.Retime(serretime.RetimeOptions{
			Algorithm: serretime.MinObsWin,
			Epsilon:   eps,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7.0f%% %8.4g %12.4e %+8.2f%% %+7.2f%%\n",
			eps*100, res.Phi, res.After.SER, res.DeltaSER(), res.DeltaFF())
	}

	fmt.Println()
	fmt.Println("λ sweep (area-weighted objective, the paper's Section VII")
	fmt.Println("extension): trading observability against register count.")
	fmt.Printf("%8s %12s %9s %10s %8s\n", "lambda", "SER after", "dSER", "reg-obs", "dFF")
	for _, lambda := range []float64{0, 0.25, 1, 4, 16} {
		res, err := d.Retime(serretime.RetimeOptions{
			Algorithm:  serretime.MinObsWin,
			AreaWeight: lambda,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.2f %12.4e %+8.2f%% %10.4g %+7.2f%%\n",
			lambda, res.After.SER, res.DeltaSER(), res.After.RegisterObs, res.DeltaFF())
	}
}
