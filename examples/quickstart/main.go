// Quickstart: load a netlist, analyze its soft error rate, retime it with
// MinObsWin and compare. Run from the repository root:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"serretime"
)

func main() {
	// Load the classic ISCAS89 s27 benchmark.
	d, err := serretime.LoadBench("testdata/s27.bench")
	if err != nil {
		log.Fatal(err)
	}
	st, err := d.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d gates, %d flip-flops, depth %d\n",
		d.Name(), st.Gates, st.FFs, st.Depth)

	// SER of the unretimed circuit at its natural clock period.
	before, err := d.Analyze(0, serretime.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original SER %.3e (gates %.2e + registers %.2e) at phi=%.3g\n",
		before.SER, before.GateSER, before.RegisterSER, before.Phi)

	// Retime for minimum register observability under ELW constraints
	// (the paper's MinObsWin), verifying sequential equivalence of the
	// optimizer's move.
	res, err := d.Retime(serretime.RetimeOptions{
		Algorithm: serretime.MinObsWin,
		Verify:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retimed at phi=%.3g (Rmin=%.3g, setup+hold ok: %v)\n",
		res.Phi, res.Rmin, res.SetupHoldOK)
	fmt.Printf("SER %.3e -> %.3e (%+.1f%%), flip-flops %d -> %d\n",
		res.Before.SER, res.After.SER, res.DeltaSER(),
		res.Before.SharedFFs, res.After.SharedFFs)

	// The retimed circuit is a plain netlist again.
	rst, _ := res.Retimed.Stats()
	fmt.Printf("retimed netlist: %d gates, %d flip-flops\n", rst.Gates, rst.FFs)
}
