// Pipeline: a domain scenario from the paper's motivation — a synthetic
// pipelined datapath whose registers sit where a performance-driven tool
// left them; soft-error-aware retiming relocates them to less observable
// nets without touching the clock period, and the three objectives
// (MinObs, MinObsWin, MinArea) are compared head to head.
//
// Run from the repository root:
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"serretime"
)

func main() {
	// A mid-size synthetic design in the regime of the paper's b14:
	// ~2000 gates, deep pipeline, plenty of state.
	d, err := serretime.Synthesize(serretime.CircuitSpec{
		Name:  "pipeline-demo",
		Gates: 2000, Conns: 4400, FFs: 600, Depth: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	st, _ := d.Stats()
	fmt.Printf("design %s: %d gates, %d FFs, depth %d, |E|=%d\n\n",
		d.Name(), st.Gates, st.FFs, st.Depth, st.Edges)

	type outcome struct {
		name string
		res  *serretime.RetimeResult
	}
	var outs []outcome
	for _, alg := range []serretime.Algorithm{serretime.MinObs, serretime.MinObsWin, serretime.MinArea} {
		res, err := d.Retime(serretime.RetimeOptions{Algorithm: alg, Verify: true})
		if err != nil {
			log.Fatal(err)
		}
		outs = append(outs, outcome{alg.String(), res})
	}

	fmt.Printf("%-10s %12s %12s %9s %8s %8s %7s\n",
		"objective", "SER before", "SER after", "dSER", "FFs", "dFF", "rounds")
	for _, o := range outs {
		fmt.Printf("%-10s %12.4e %12.4e %+8.2f%% %8d %+7.2f%% %7d\n",
			o.name, o.res.Before.SER, o.res.After.SER, o.res.DeltaSER(),
			o.res.After.SharedFFs, o.res.DeltaFF(), o.res.Rounds)
	}
	fmt.Println()
	fmt.Printf("clock period %.4g (minimum %.4g, setup+hold init: %v), Rmin %.4g\n",
		outs[0].res.Phi, outs[0].res.PhiMin, outs[0].res.SetupHoldOK, outs[0].res.Rmin)
	fmt.Println("every optimizer move was verified sequentially equivalent")
}
