// ELW demo: reproduces the scenario of Figure 1 in the paper — a register
// relocation that reduces register observability yet *worsens* the overall
// SER, because it enlarges the error-latching windows of the gates in its
// fanin cone. This is the effect MinObsWin's P2' constraint exists to
// prevent.
//
// The circuit: gates A and B feed F and also drive primary outputs of
// their own; F drives a register whose output reaches a primary output
// through G:
//
//	A(d=2) ─┬────────────────────────── PO
//	        ├─ F(d=1) ─[FF]─ G(d=2) ─── PO
//	B(d=2) ─┴────────────────────────── PO
//
// F is highly observable (obs 0.6), G less so (0.4): moving the register
// forward across G lowers the register's observability — but A's and B's
// error-latching windows are the union of their direct latching window and
// the one propagated through F, and the longer F→G path pushes the latter
// further out, growing |ELW(A)| and |ELW(B)| by 1 each (the paper's
// Figure 1 annotation).
//
// Run from the repository root:
//
//	go run ./examples/elwdemo
package main

import (
	"fmt"
	"log"

	"serretime/internal/elw"
	"serretime/internal/graph"
	"serretime/internal/ser"
)

func main() {
	b := graph.NewBuilder()
	a := b.AddVertex("A", 2)
	bb := b.AddVertex("B", 2)
	f := b.AddVertex("F", 1)
	gg := b.AddVertex("G", 2)
	b.AddEdge(graph.Host, a, 0)
	b.AddEdge(graph.Host, bb, 0)
	b.AddEdge(a, f, 0)
	b.AddEdge(bb, f, 0)
	b.AddEdge(f, gg, 1) // the register under discussion
	b.AddEdge(gg, graph.Host, 0)
	b.AddEdge(a, graph.Host, 0) // A and B are also observed directly
	b.AddEdge(bb, graph.Host, 0)
	g := b.Build()

	// Annotated observabilities in the spirit of Figure 1.
	gateObs := []float64{0, 0.7, 0.7, 0.6, 0.4}
	edgeObs := ser.EdgeObsFromVertex(g, gateObs, 0.5)
	gateRate := []float64{0, 1e-4, 1e-4, 1e-4, 1e-4}
	p := elw.Params{Phi: 8, Ts: 0, Th: 2}

	show := func(title string, r graph.Retiming) *ser.Analysis {
		elws, err := elw.Exact(g, r, p, 0)
		if err != nil {
			log.Fatal(err)
		}
		an, err := ser.Compute(g, r, ser.Inputs{
			GateObs: gateObs, EdgeObs: edgeObs, GateRate: gateRate,
			RegRate: 2e-4, Params: p,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", title)
		for v := 1; v < g.NumVertices(); v++ {
			fmt.Printf("  ELW(%s) = %v  (|ELW| = %g)\n",
				g.Name(graph.VertexID(v)), elws[v], elws[v].Measure())
		}
		fmt.Printf("  register obs = %.2f, SER = %.4e (gates %.2e + regs %.2e)\n\n",
			an.RegisterObs, an.Total, an.Gates, an.Registers)
		return an
	}

	before := show("Before: register between F and G (obs 0.6)", graph.NewRetiming(g))

	// Move the register forward across G (r(G) = -1): it now sits at the
	// primary output with observability 0.4.
	r := graph.NewRetiming(g)
	r[gg] = -1
	if err := g.CheckLegal(r); err != nil {
		log.Fatal(err)
	}
	after := show("After: register moved past G (obs 0.4)", r)

	fmt.Printf("register observability fell %.2f -> %.2f, ", before.RegisterObs, after.RegisterObs)
	if after.Total > before.Total {
		fmt.Printf("yet SER rose %.3e -> %.3e (+%.1f%%):\n",
			before.Total, after.Total, 100*(after.Total-before.Total)/before.Total)
		fmt.Println("the larger error-latching windows of A, B and F outweigh the")
		fmt.Println("logic-masking gain — exactly the trade-off Figure 1 illustrates")
		fmt.Println("and the ELW constraint P2' of MinObsWin guards against.")
	} else {
		fmt.Println("and SER also fell — adjust the parameters to see the trade-off.")
	}
}
