package serretime

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"serretime/internal/graph"
	"serretime/internal/guard"
	"serretime/internal/retime"
	"serretime/internal/telemetry"
)

// initCache memoizes the Section V initialization (and the graph rebased
// onto it) per (Ts, Th, Epsilon) for one design, so the rungs of a
// degradation chain share one initialization instead of re-running the
// min-period searches: TierMinObsWin and TierMinObs use the same key and
// reuse the entry — including Init.Labels, which each tier's solver state
// clones as its seed — while TierMinObsWinRelaxed (different Epsilon)
// computes its own. A cache belongs to one RetimeRobust call and must not
// be shared across designs.
type initCache struct {
	mu      sync.Mutex
	entries map[initKey]initEntry
}

type initKey struct{ ts, th, epsilon float64 }

type initEntry struct {
	init *retime.Init
	base *graph.Graph
}

func (c *initCache) get(ts, th, epsilon float64) (*retime.Init, *graph.Graph, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[initKey{ts, th, epsilon}]
	return e.init, e.base, ok
}

func (c *initCache) put(ts, th, epsilon float64, init *retime.Init, base *graph.Graph) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = map[initKey]initEntry{}
	}
	c.entries[initKey{ts, th, epsilon}] = initEntry{init, base}
}

// Tier identifies which rung of the graceful-degradation ladder produced
// a RobustResult. Lower values are stronger answers.
type Tier uint8

const (
	// TierMinObsWin is the full algorithm: MinObsWin under ELW (P2')
	// constraints, exactly as requested.
	TierMinObsWin Tier = iota
	// TierMinObsWinRelaxed is MinObsWin re-run with a relaxed ELW budget
	// (the clock-period relaxation ε is multiplied by RelaxFactor, and
	// any Rmin override is shrunk by it), trading some timing-masking
	// fidelity for feasibility.
	TierMinObsWinRelaxed
	// TierMinObs is the Efficient MinObs baseline: P2' disabled, logic
	// masking only — the Krishnaswamy-style fallback.
	TierMinObs
	// TierIdentity is the identity retiming: the input circuit analyzed
	// as-is. Always succeeds unless the design cannot even be analyzed.
	TierIdentity
)

func (t Tier) String() string {
	switch t {
	case TierMinObsWin:
		return "minobswin"
	case TierMinObsWinRelaxed:
		return "minobswin-relaxed"
	case TierMinObs:
		return "minobs"
	case TierIdentity:
		return "identity"
	}
	return fmt.Sprintf("Tier(%d)", uint8(t))
}

// tierPhase maps a degradation rung to its telemetry phase, so each
// attempt of the chain appears as one top-level span with the guard error
// that ended it attached.
func tierPhase(t Tier) telemetry.Phase {
	switch t {
	case TierMinObsWin:
		return telemetry.PhaseTierMinObsWin
	case TierMinObsWinRelaxed:
		return telemetry.PhaseTierMinObsWinRelaxed
	case TierMinObs:
		return telemetry.PhaseTierMinObs
	default:
		return telemetry.PhaseTierIdentity
	}
}

// RobustOptions configures RetimeRobust.
type RobustOptions struct {
	// RetimeOptions configures the strongest tier; weaker tiers derive
	// their configuration from it.
	RetimeOptions
	// Timeout bounds each attempt (0 = only the caller's ctx applies).
	Timeout time.Duration
	// Retries is the number of extra attempts per tier after a transient
	// failure (internal fault or stall). Timeouts are never retried at
	// the same tier — a second identical run would time out identically.
	Retries int
	// RelaxFactor scales the period relaxation ε for the relaxed tier
	// (default 2).
	RelaxFactor float64
}

// Attempt records one run of the degradation chain.
type Attempt struct {
	// Tier is the rung that ran.
	Tier Tier
	// Err is nil for the attempt that produced the final result.
	Err error
	// Runtime is the attempt's wall time.
	Runtime time.Duration
}

// RobustResult is a RetimeResult annotated with how it was obtained.
type RobustResult struct {
	*RetimeResult
	// Tier is the rung that produced the result.
	Tier Tier
	// Degraded reports whether the answer comes from a weaker tier than
	// the one requested.
	Degraded bool
	// Attempts lists every run in order, including the failed ones.
	Attempts []Attempt
}

// RetimeRobust runs the graceful-degradation chain: MinObsWin with ELW
// constraints, then MinObsWin with a relaxed ELW budget, then Efficient
// MinObs (P2' disabled), then the identity retiming. Each tier runs under
// panic isolation, the per-attempt Timeout, and the StallSteps watchdog;
// on failure the chain records the attempt and steps down. The result
// says which tier answered, so callers can distinguish a full-strength
// answer from a degraded one without parsing errors.
//
// If opt.Algorithm is not MinObsWin, the chain starts at the equivalent
// rung (MinObs and MinArea start at TierMinObs) and only degrades from
// there. An error is returned only when every tier failed — including
// identity — or when the caller's ctx is done (errors unwrapping to
// guard.ErrTimeout are not degraded past: the caller's deadline is
// global).
// CanonicalKey extends RetimeOptions.CanonicalKey with the chain-level
// knobs that can change which tier answers (timeout, retries, relax
// factor), with defaults applied. Two RobustOptions with equal keys
// request the same computation.
func (o RobustOptions) CanonicalKey() string {
	relax := o.RelaxFactor
	if !(relax > 1) {
		relax = 2
	}
	return fmt.Sprintf("%s timeout=%s retries=%d relax=%s",
		o.RetimeOptions.CanonicalKey(), o.Timeout, o.Retries, canonFloat(relax))
}

// validate extends RetimeOptions.validate to the chain-level floats.
func (o *RobustOptions) validate(op string) error {
	if err := o.RetimeOptions.validate(op); err != nil {
		return err
	}
	if math.IsNaN(o.RelaxFactor) || math.IsInf(o.RelaxFactor, 0) {
		return guard.Optionf(op, "RelaxFactor", "must be finite, got %v", o.RelaxFactor)
	}
	return nil
}

func (d *Design) RetimeRobust(ctx context.Context, opt RobustOptions) (*RobustResult, error) {
	// Validate and normalize parameters before anything is derived from
	// them: the init memo below keys on raw (Ts, Th, Epsilon) floats, so a
	// NaN (never equal to itself under map lookup) or a -0 (hashes apart
	// from +0 in the canonical key) would silently defeat the memo and the
	// service cache rather than fail.
	if err := opt.validate("serretime.RetimeRobust"); err != nil {
		return nil, err
	}
	if opt.RelaxFactor <= 1 {
		opt.RelaxFactor = 2
	}
	// Tiers built from this options value share one initialization memo
	// (the chain construction below copies RetimeOptions by value, so the
	// pointer is what carries across rungs). The ECO session path
	// (WarmState) pre-sets a memo that outlives one call, so option-only
	// deltas re-enter the Section V initialization for free; batch
	// callers always start fresh.
	if opt.RetimeOptions.initMemo == nil {
		opt.RetimeOptions.initMemo = &initCache{}
	}
	type rung struct {
		tier Tier
		opts RetimeOptions
	}
	var chain []rung
	switch opt.Algorithm {
	case MinObsWin:
		relaxed := opt.RetimeOptions
		if relaxed.Epsilon == 0 {
			relaxed.Epsilon = 0.10
		}
		relaxed.Epsilon *= opt.RelaxFactor
		if relaxed.RminOverride != 0 {
			relaxed.RminOverride /= opt.RelaxFactor
		}
		minobs := opt.RetimeOptions
		minobs.Algorithm = MinObs
		minobs.RminOverride = 0
		chain = []rung{
			{TierMinObsWin, opt.RetimeOptions},
			{TierMinObsWinRelaxed, relaxed},
			{TierMinObs, minobs},
		}
	default:
		chain = []rung{{TierMinObs, opt.RetimeOptions}}
	}

	rec := telemetry.OrNop(opt.RetimeOptions.Recorder)
	out := &RobustResult{}
	attempt := func(tier Tier, fn func(context.Context) (*RetimeResult, error)) (*RetimeResult, error) {
		actx := ctx
		cancel := context.CancelFunc(func() {})
		if opt.Timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, opt.Timeout)
		}
		defer cancel()
		start := time.Now()
		rec.SpanStart(tierPhase(tier))
		res, err := fn(actx)
		rec.SpanEnd(tierPhase(tier), err)
		out.Attempts = append(out.Attempts, Attempt{Tier: tier, Err: err, Runtime: time.Since(start)})
		return res, err
	}

	var lastErr error
	for i, r := range chain {
		for try := 0; try <= opt.Retries; try++ {
			if try > 0 {
				rec.Count(telemetry.CounterRetries, 1)
			}
			if i > 0 && try == 0 {
				rec.Count(telemetry.CounterTierTransitions, 1)
			}
			res, err := attempt(r.tier, func(actx context.Context) (*RetimeResult, error) {
				return d.RetimeCtx(actx, r.opts)
			})
			if err == nil {
				out.RetimeResult = res
				out.Tier = r.tier
				out.Degraded = r.tier != chain[0].tier
				return out, nil
			}
			lastErr = err
			if cerr := guard.Checkpoint(ctx, "serretime.RetimeRobust"); cerr != nil {
				// The caller's own deadline expired: degrading further
				// would just burn it again.
				return nil, cerr
			}
			if errors.Is(err, guard.ErrTimeout) {
				// Per-attempt timeout: deterministic, skip the retries.
				break
			}
		}
	}

	// Identity tier: no optimization, analyze the circuit as-is.
	if len(chain) > 0 {
		rec.Count(telemetry.CounterTierTransitions, 1)
	}
	res, err := attempt(TierIdentity, func(actx context.Context) (*RetimeResult, error) {
		return d.identityResult(actx, opt.RetimeOptions)
	})
	if err != nil {
		return nil, fmt.Errorf("serretime: every degradation tier failed (last optimizer error: %v): %w", lastErr, err)
	}
	out.RetimeResult = res
	out.Tier = TierIdentity
	out.Degraded = true
	return out, nil
}

// identityResult evaluates the design unretimed, as the last rung of the
// degradation chain: Before and After coincide and the "retimed" design
// is the input itself.
func (d *Design) identityResult(ctx context.Context, opt RetimeOptions) (*RetimeResult, error) {
	return guard.Do(ctx, "serretime.identity", func(context.Context) (*RetimeResult, error) {
		if opt.Analysis.Workers == 0 {
			opt.Analysis.Workers = opt.Workers
		}
		if err := d.ensureObsRec(opt.Analysis, opt.Recorder); err != nil {
			return nil, err
		}
		an, err := d.analyzeAt(d.g, graph.NewRetiming(d.g), 0, opt.Analysis)
		if err != nil {
			return nil, err
		}
		return &RetimeResult{
			Algorithm: opt.Algorithm,
			Phi:       an.Phi, PhiMin: an.Phi,
			Before: *an, After: *an,
			Retimed: d,
		}, nil
	})
}
