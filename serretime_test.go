package serretime

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadBenchAndStats(t *testing.T) {
	d, err := LoadBench("testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Gates != 10 || st.FFs != 3 || st.PIs != 4 || st.POs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Vertices != 10 || st.Edges != 19 {
		t.Fatalf("graph sizes = %d/%d", st.Vertices, st.Edges)
	}
	if d.Name() != "s27" {
		t.Fatalf("name = %q", d.Name())
	}
}

func TestParseBenchRoundTrip(t *testing.T) {
	d, err := LoadBench("testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseBench(&buf, "s27")
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := d.Stats()
	s2, _ := d2.Stats()
	if s1 != s2 {
		t.Fatalf("round trip stats: %+v vs %+v", s1, s2)
	}
	if !strings.Contains(d.String(), "INPUT(G0)") {
		t.Fatal("String() not bench syntax")
	}
}

func TestAnalyze(t *testing.T) {
	d, err := LoadBench("testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	an, err := d.Analyze(0, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if an.SER <= 0 || an.GateSER <= 0 || an.RegisterSER < 0 {
		t.Fatalf("analysis = %+v", an)
	}
	if an.SharedFFs != 3 {
		t.Fatalf("FFs = %d", an.SharedFFs)
	}
	if an.Phi <= 0 {
		t.Fatal("no default phi")
	}
	// Larger phi widens relative timing masking: SER falls.
	an2, err := d.Analyze(10*an.Phi, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if an2.SER >= an.SER {
		t.Fatalf("SER did not fall with slower clock: %g vs %g", an2.SER, an.SER)
	}
}

func TestSynthesize(t *testing.T) {
	d, err := Synthesize(CircuitSpec{Name: "t1", Gates: 200, Conns: 450, FFs: 40})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := d.Stats()
	if st.Gates != 200 {
		t.Fatalf("gates = %d", st.Gates)
	}
	if _, err := Synthesize(CircuitSpec{Name: "bad", Gates: 1, Conns: 1, FFs: 0}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestTableIList(t *testing.T) {
	names := TableICircuits()
	if len(names) != 21 {
		t.Fatalf("%d circuits", len(names))
	}
	if _, err := NewTableIDesign("nope", 1); err == nil {
		t.Fatal("unknown circuit accepted")
	}
	d, err := NewTableIDesign("b14_1_opt", 8)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := d.Stats()
	if st.Gates != 4049/8 {
		t.Fatalf("scaled gates = %d", st.Gates)
	}
}

func TestRetimeMinObsWinOnS27(t *testing.T) {
	d, err := LoadBench("testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Retime(RetimeOptions{Algorithm: MinObsWin, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phi <= 0 || res.Phi < res.PhiMin {
		t.Fatalf("phi %g / phimin %g", res.Phi, res.PhiMin)
	}
	if res.After.SER <= 0 {
		t.Fatalf("after = %+v", res.After)
	}
	if res.Retimed == nil {
		t.Fatal("no retimed design")
	}
	if err := res.Retimed.c.Validate(); err != nil {
		t.Fatal(err)
	}
	// The retimed netlist has the same combinational gates.
	st, _ := res.Retimed.Stats()
	if st.Gates != 10 {
		t.Fatalf("retimed gates = %d", st.Gates)
	}
}

func TestRetimeAlgorithmsOnSynthetic(t *testing.T) {
	d, err := Synthesize(CircuitSpec{Name: "algos", Gates: 400, Conns: 900, FFs: 120, Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	base, err := d.Retime(RetimeOptions{Algorithm: MinObs})
	if err != nil {
		t.Fatal(err)
	}
	win, err := d.Retime(RetimeOptions{Algorithm: MinObsWin})
	if err != nil {
		t.Fatal(err)
	}
	area, err := d.Retime(RetimeOptions{Algorithm: MinArea})
	if err != nil {
		t.Fatal(err)
	}
	// MinObs minimizes register observability at least as well as
	// MinObsWin (which carries extra constraints).
	if base.After.RegisterObs > win.After.RegisterObs+1e-9 {
		t.Fatalf("MinObs obs %g > MinObsWin %g", base.After.RegisterObs, win.After.RegisterObs)
	}
	// MinArea minimizes per-edge registers at least as well as either.
	if area.After.Registers > base.After.Registers || area.After.Registers > win.After.Registers {
		t.Fatalf("MinArea regs %d vs MinObs %d / Win %d",
			area.After.Registers, base.After.Registers, win.After.Registers)
	}
	for _, r := range []*RetimeResult{base, win, area} {
		if r.DeltaSER() > 60 {
			t.Fatalf("%v worsened SER by %.1f%%", r.Algorithm, r.DeltaSER())
		}
	}
}

func TestRetimeVerifiedMoveOnSynthetic(t *testing.T) {
	d, err := Synthesize(CircuitSpec{Name: "verif", Gates: 150, Conns: 340, FFs: 45, Depth: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Retime(RetimeOptions{Algorithm: MinObsWin, Verify: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Retime(RetimeOptions{Algorithm: MinObs, Verify: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRetimeEnginesAgree(t *testing.T) {
	d, err := Synthesize(CircuitSpec{Name: "eng", Gates: 250, Conns: 560, FFs: 70, Depth: 15})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := d.Retime(RetimeOptions{Algorithm: MinObsWin})
	if err != nil {
		t.Fatal(err)
	}
	fo, err := d.Retime(RetimeOptions{Algorithm: MinObsWin, Engine: EngineForest})
	if err != nil {
		t.Fatal(err)
	}
	if cl.After.RegisterObs > fo.After.RegisterObs+1e-9 {
		t.Fatalf("closure engine (%g) worse than forest (%g)",
			cl.After.RegisterObs, fo.After.RegisterObs)
	}
}

func TestRetimeAreaWeight(t *testing.T) {
	d, err := Synthesize(CircuitSpec{Name: "aw", Gates: 300, Conns: 680, FFs: 90, Depth: 15})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := d.Retime(RetimeOptions{Algorithm: MinObsWin})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := d.Retime(RetimeOptions{Algorithm: MinObsWin, AreaWeight: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	// The weighted objective trades observability for registers: it must
	// not use more registers than the plain run... it may tie.
	if weighted.After.Registers > plain.After.Registers {
		t.Fatalf("area weight increased registers: %d > %d",
			weighted.After.Registers, plain.After.Registers)
	}
}

func TestBLIFRoundTripAPI(t *testing.T) {
	d, err := LoadBench("testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteBLIF(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseBLIF(&buf, "s27")
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := d.Stats()
	s2, _ := d2.Stats()
	if s1 != s2 {
		t.Fatalf("BLIF round trip stats: %+v vs %+v", s1, s2)
	}
}

func TestCriticalElements(t *testing.T) {
	d, err := LoadBench("testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	crit, err := d.CriticalElements(0, 5, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(crit) != 5 {
		t.Fatalf("got %d contributors", len(crit))
	}
	var share float64
	for i, c := range crit {
		if c.SER <= 0 || c.Share <= 0 || c.Share > 1 {
			t.Fatalf("contributor %d: %+v", i, c)
		}
		if i > 0 && c.SER > crit[i-1].SER {
			t.Fatal("not sorted by SER")
		}
		if c.Kind != "gate" && c.Kind != "register" {
			t.Fatalf("bad kind %q", c.Kind)
		}
		share += c.Share
	}
	if share > 1+1e-9 {
		t.Fatalf("shares sum to %g", share)
	}
	// Unlimited listing covers every positive contributor.
	all, err := d.CriticalElements(0, 0, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < len(crit) {
		t.Fatal("unlimited listing shorter than top-5")
	}
}

func TestVerilogRoundTripAPI(t *testing.T) {
	d, err := LoadBench("testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseVerilog(&buf, "s27")
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := d.Stats()
	s2, _ := d2.Stats()
	if s1 != s2 {
		t.Fatalf("Verilog round trip stats: %+v vs %+v", s1, s2)
	}
}
