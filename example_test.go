package serretime_test

import (
	"fmt"
	"log"

	"serretime"
	"serretime/internal/telemetry"
)

// ExampleLoadBench loads a netlist and prints its statistics.
func ExampleLoadBench() {
	d, err := serretime.LoadBench("testdata/s27.bench")
	if err != nil {
		log.Fatal(err)
	}
	st, err := d.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d gates, %d flip-flops, %d inputs, %d outputs\n",
		d.Name(), st.Gates, st.FFs, st.PIs, st.POs)
	// Output:
	// s27: 10 gates, 3 flip-flops, 4 inputs, 1 outputs
}

// ExampleDesign_Analyze evaluates eq. (4) of the paper on a netlist.
func ExampleDesign_Analyze() {
	d, err := serretime.LoadBench("testdata/s27.bench")
	if err != nil {
		log.Fatal(err)
	}
	an, err := d.Analyze(20, serretime.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phi=%g registers=%d\n", an.Phi, an.SharedFFs)
	fmt.Printf("SER positive: %v, register term positive: %v\n",
		an.SER > 0, an.RegisterSER > 0)
	// Output:
	// phi=20 registers=3
	// SER positive: true, register term positive: true
}

// ExampleDesign_Retime runs the paper's MinObsWin pipeline end to end and
// verifies the optimizer move's sequential equivalence.
func ExampleDesign_Retime() {
	d, err := serretime.LoadBench("testdata/pipeline4.bench")
	if err != nil {
		log.Fatal(err)
	}
	res, err := d.Retime(serretime.RetimeOptions{
		Algorithm: serretime.MinObsWin,
		Verify:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	st, _ := res.Retimed.Stats()
	fmt.Printf("algorithm: %v\n", res.Algorithm)
	fmt.Printf("retimed gates: %d\n", st.Gates)
	fmt.Printf("objective never worsens: %v\n",
		res.After.RegisterObs <= res.Before.RegisterObs+1e-9)
	// Output:
	// algorithm: MinObsWin
	// retimed gates: 8
	// objective never worsens: true
}

// ExampleDesign_Retime_telemetry attaches an in-memory telemetry collector
// to a retiming run and inspects the resulting phase/counter summary.
func ExampleDesign_Retime_telemetry() {
	d, err := serretime.LoadBench("testdata/pipeline4.bench")
	if err != nil {
		log.Fatal(err)
	}
	col := telemetry.NewCollector()
	res, err := d.Retime(serretime.RetimeOptions{
		Algorithm: serretime.MinObsWin,
		Recorder:  col,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := col.Stats()
	fmt.Printf("init observed: %v\n", stats.Observed(telemetry.PhaseInit))
	fmt.Printf("minimize observed: %v\n", stats.Observed(telemetry.PhaseMinimize))
	fmt.Printf("steps counted: %v\n", stats.Counter(telemetry.CounterSteps) >= int64(res.Steps))
	fmt.Printf("commits == rounds: %v\n", stats.Counter(telemetry.CounterCommits) == int64(res.Rounds))
	// Output:
	// init observed: true
	// minimize observed: true
	// steps counted: true
	// commits == rounds: true
}

// ExampleSynthesize generates a seeded benchmark-like circuit.
func ExampleSynthesize() {
	d, err := serretime.Synthesize(serretime.CircuitSpec{
		Name:  "example",
		Gates: 100, Conns: 220, FFs: 25,
	})
	if err != nil {
		log.Fatal(err)
	}
	st, _ := d.Stats()
	fmt.Printf("gates=%d ffs=%d\n", st.Gates, st.FFs)
	// Output:
	// gates=100 ffs=25
}
