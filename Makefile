# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); EXPERIMENTS.md records the results.

GO ?= go
# Benchmarks of the parallel analysis front-end (ISSUE 4): signature
# simulation, fault injection, ODC observability, W/D build.
FRONTEND_BENCH = BenchmarkFrontEnd
BENCHTIME ?= 1s

.PHONY: test race bench bench-baseline bench-append bench-fastser bench-eco serve

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# Human-readable front-end benchmark run (benchstat-ready: pipe two runs
# into benchstat to compare worker counts or revisions).
bench:
	$(GO) test -run=NONE -bench '$(FRONTEND_BENCH)' -benchmem -benchtime $(BENCHTIME) .

# Record a fresh trajectory file (destroys history; normally you want
# bench-append).
bench-baseline:
	$(GO) test -run=NONE -bench '$(FRONTEND_BENCH)' -benchmem -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -label baseline > BENCH_baseline.json

# Append a labelled series to the committed trajectory file.
# Usage: make bench-append LABEL=parallel
LABEL ?= parallel
bench-append:
	$(GO) test -run=NONE -bench '$(FRONTEND_BENCH)' -benchmem -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -label $(LABEL) -merge BENCH_baseline.json > BENCH_baseline.json.tmp
	mv BENCH_baseline.json.tmp BENCH_baseline.json

# Record the analytical fast-observability series (ISSUE 9): the
# accuracy=fast engine on par2500/par6000 and the on-demand par100k
# preset. Workers=1 keeps the headline number the honest sequential one;
# the committed BENCH_fastser.json is the asymptotic-win record cited by
# EXPERIMENTS.md.
bench-fastser:
	SERRETIME_BENCH_WORKERS=1 $(GO) test -run=NONE -bench 'BenchmarkFrontEndFast' \
		-benchmem -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -label fastser > BENCH_fastser.json.tmp
	mv BENCH_fastser.json.tmp BENCH_fastser.json

# Record the warm-session ECO series (ISSUE 10): stream generated
# single-gate perturbations through a serretime.WarmState and compare
# the incremental re-solve against the cold full solve it must match
# bit-for-bit (-ecomin 3 fails the run if the speedup falls under 3x).
# The two-step pipe keeps serbench's exit code observable to make.
ECO_DELTAS ?= 16
bench-eco:
	$(GO) run ./cmd/serbench -eco testdata/par6000.bench -deltas $(ECO_DELTAS) \
		-frames 3 -words 1 -ecomin 3 > BENCH_eco.lines.tmp
	$(GO) run ./cmd/benchjson -label eco < BENCH_eco.lines.tmp > BENCH_eco.json.tmp
	mv BENCH_eco.json.tmp BENCH_eco.json
	rm -f BENCH_eco.lines.tmp

# Run the batch-retiming daemon (DESIGN.md §12). Override the listen
# address with ADDR, e.g. make serve ADDR=:9090.
ADDR ?= :8080
serve:
	$(GO) run ./cmd/serretimed -addr $(ADDR)
