package serretime

import (
	"fmt"
	"sort"

	"serretime/internal/elw"
	"serretime/internal/graph"
)

// Contributor is one element's share of the design's SER.
type Contributor struct {
	// Name is the gate output net (for kind "gate") or the driving net of
	// the register chain (for kind "register").
	Name string
	// Kind is "gate" or "register".
	Kind string
	// SER is the element's eq. (4) contribution; Share is its fraction of
	// the total.
	SER, Share float64
	// Obs is the element's observability, Window its |ELW|.
	Obs, Window float64
}

// CriticalElements ranks the top-n SER contributors of the unretimed
// design at clock period phi (0 = critical path), splitting eq. (4) into
// its per-gate and per-register-chain terms. This is the view a designer
// uses to decide where hardening or retiming will pay off.
func (d *Design) CriticalElements(phi float64, n int, opt AnalysisOptions) ([]Contributor, error) {
	if err := d.ensureObs(opt); err != nil {
		return nil, err
	}
	opt = opt.normalized()
	g := d.g
	r := graph.NewRetiming(g)
	if phi <= 0 {
		_, crit, err := g.ArrivalTimes(r)
		if err != nil {
			return nil, err
		}
		phi = crit
	}
	p := elwParams(phi)
	elws, err := elw.Exact(g, r, p, opt.MaxIntervals)
	if err != nil {
		return nil, err
	}
	lab, err := elw.ComputeLabels(g, r, p)
	if err != nil {
		return nil, err
	}
	var out []Contributor
	var total float64
	for v := 1; v < g.NumVertices(); v++ {
		w := elws[v].Measure()
		ser := d.gateObs[v] * d.rates[v] * w / phi
		total += ser
		if ser > 0 {
			out = append(out, Contributor{
				Name: g.Name(graph.VertexID(v)), Kind: "gate",
				SER: ser, Obs: d.gateObs[v], Window: w,
			})
		}
	}
	base := p.Ts + p.Th
	for i := 0; i < g.NumEdges(); i++ {
		eid := graph.EdgeID(i)
		k := g.WR(eid, r)
		if k <= 0 {
			continue
		}
		e := g.Edge(eid)
		var adjacent float64
		if e.To == graph.Host {
			adjacent = base
		} else {
			adjacent = elws[e.To].Measure()
			if lab.HasWindow[e.To] {
				if shortfall := p.Th - lab.HoldSlack(g, p, eid); shortfall > 0 {
					adjacent += shortfall
				}
			}
		}
		win := adjacent + float64(k-1)*base
		ser := d.edgeObs[i] * d.regRate * win / phi
		total += ser
		if ser > 0 {
			name := "<input>"
			if e.From != graph.Host {
				name = g.Name(e.From)
			} else if int(e.SrcPort) >= 0 && int(e.SrcPort) < len(d.c.PIs()) {
				name = d.c.Node(d.c.PIs()[e.SrcPort]).Name
			}
			out = append(out, Contributor{
				Name: fmt.Sprintf("%s (x%d)", name, k), Kind: "register",
				SER: ser, Obs: d.edgeObs[i], Window: win,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SER > out[j].SER })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	if total > 0 {
		for i := range out {
			out[i].Share = out[i].SER / total
		}
	}
	return out, nil
}
