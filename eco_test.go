package serretime_test

// External test package: internal/eco imports serretime, so this file
// cannot live in package serretime without a cycle.

import (
	"bytes"
	"context"
	"testing"

	"serretime"
	"serretime/internal/benchfmt"
	"serretime/internal/eco"
)

func robustOpts() serretime.RobustOptions {
	return serretime.RobustOptions{
		RetimeOptions: serretime.RetimeOptions{
			Algorithm: serretime.MinObsWin,
			Analysis:  serretime.AnalysisOptions{Frames: 3, SignatureWords: 1},
		},
	}
}

func coldBytes(t *testing.T, bench []byte, opt serretime.RobustOptions) []byte {
	t.Helper()
	d, err := serretime.ParseBench(bytes.NewReader(bench), "eco")
	if err != nil {
		t.Fatalf("parse mutated netlist: %v", err)
	}
	res, err := d.RetimeRobust(context.Background(), opt)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	var buf bytes.Buffer
	if err := res.Retimed.WriteBench(&buf); err != nil {
		t.Fatalf("encode cold result: %v", err)
	}
	return buf.Bytes()
}

// TestRetimeDeltaMatchesCold is the delta-path identity contract: every
// RetimeDelta answer — warm or fallback — must be byte-identical to a
// from-scratch RetimeRobust of the same mutated netlist (DESIGN.md §17).
func TestRetimeDeltaMatchesCold(t *testing.T) {
	d0, err := serretime.Synthesize(serretime.CircuitSpec{
		Gates: 220, Conns: 520, FFs: 30, Depth: 7, FanoutSkew: 0.25,
	})
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	// Round-trip the base through .bench — the session server and the ECO
	// client both start from the same parsed bytes, keeping their node IDs
	// aligned as the same deltas apply on both sides.
	var base bytes.Buffer
	if err := d0.WriteBench(&base); err != nil {
		t.Fatalf("encode base: %v", err)
	}
	d, err := serretime.ParseBench(bytes.NewReader(base.Bytes()), "eco")
	if err != nil {
		t.Fatalf("reparse base: %v", err)
	}
	c, err := benchfmt.Parse(bytes.NewReader(base.Bytes()), "eco")
	if err != nil {
		t.Fatalf("reparse base circuit: %v", err)
	}
	opt := robustOpts()
	ctx := context.Background()

	w, err := serretime.NewWarmState(ctx, d, opt)
	if err != nil {
		t.Fatalf("NewWarmState: %v", err)
	}

	// The warm-started initial solve must already match a plain cold solve.
	var warm0 bytes.Buffer
	if err := w.Result().Retimed.WriteBench(&warm0); err != nil {
		t.Fatalf("encode warm base result: %v", err)
	}
	if cold := coldBytes(t, base.Bytes(), opt); !bytes.Equal(warm0.Bytes(), cold) {
		t.Fatalf("initial warm-started solve differs from cold solve")
	}

	g := eco.NewGen(c, 1)
	warmCount := 0
	for i := 0; i < 8; i++ {
		ops, err := g.Next()
		if err != nil {
			t.Fatalf("delta %d: generate: %v", i, err)
		}
		res, stats, err := w.RetimeDelta(ctx, ops, opt)
		if err != nil {
			t.Fatalf("delta %d (%+v): %v", i, ops, err)
		}
		if stats.Warm {
			warmCount++
		} else {
			t.Logf("delta %d fell back: %s", i, stats.FallbackReason)
		}
		var got bytes.Buffer
		if err := res.Retimed.WriteBench(&got); err != nil {
			t.Fatalf("delta %d: encode: %v", i, err)
		}
		bench, err := g.Bench()
		if err != nil {
			t.Fatalf("delta %d: encode mirror: %v", i, err)
		}
		if want := coldBytes(t, bench, opt); !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("delta %d: warm result differs from cold solve of the mutated netlist", i)
		}
	}
	if warmCount == 0 {
		t.Fatalf("no delta took the warm path")
	}
}

// TestRetimeDeltaFallbacks pins the fallback triggers: option changes
// that re-key the observability cache, non-closure engines, and deltas
// larger than the dirty threshold must run cold — and still advance the
// state so the next delta answers for the new netlist.
func TestRetimeDeltaFallbacks(t *testing.T) {
	d, err := serretime.Synthesize(serretime.CircuitSpec{
		Gates: 60, Conns: 140, FFs: 10, Depth: 5,
	})
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	opt := robustOpts()
	ctx := context.Background()
	w, err := serretime.NewWarmState(ctx, d, opt)
	if err != nil {
		t.Fatalf("NewWarmState: %v", err)
	}

	aopt := opt
	aopt.Analysis.Frames = 4
	if _, stats, err := w.RetimeDelta(ctx, nil, aopt); err != nil {
		t.Fatalf("analysis-change delta: %v", err)
	} else if stats.Warm || stats.FallbackReason != "analysis-options-changed" {
		t.Fatalf("analysis-change delta: got %+v, want analysis-options-changed fallback", stats)
	}

	eopt := aopt
	eopt.Engine = serretime.EngineForest
	if _, stats, err := w.RetimeDelta(ctx, nil, eopt); err != nil {
		t.Fatalf("engine delta: %v", err)
	} else if stats.Warm || stats.FallbackReason != "engine-not-closure" {
		t.Fatalf("engine delta: got %+v, want engine-not-closure fallback", stats)
	}

	// An option-only delta under the committed options is warm again.
	if _, stats, err := w.RetimeDelta(ctx, nil, aopt); err != nil {
		t.Fatalf("warm-again delta: %v", err)
	} else if !stats.Warm {
		t.Fatalf("warm-again delta fell back: %s", stats.FallbackReason)
	}

	if _, stats, err := w.RetimeDelta(ctx, []serretime.DeltaOp{{Op: "rm_node", Name: "no_such_net"}}, aopt); err == nil {
		t.Fatalf("bad delta did not fail")
	} else if stats.Warm {
		t.Fatalf("bad delta claimed the warm path")
	}
	// Failed deltas must not advance the state.
	if _, stats, err := w.RetimeDelta(ctx, nil, aopt); err != nil {
		t.Fatalf("post-failure delta: %v", err)
	} else if !stats.Warm {
		t.Fatalf("post-failure delta fell back: %s", stats.FallbackReason)
	}
}
