package serretime

// Allocation-regression guards for the flat CSR front end. The point of the
// CSR refactor is that a steady-state analysis pass performs O(1)
// allocations: the circuit's CSR view is cached, the signature planes and
// fault slabs are pooled, and the per-gate dedup maps of the old TopoOrder
// are gone. These tests pin that property with testing.AllocsPerRun so a
// future change cannot quietly reintroduce per-node or per-gate allocation
// (the pre-CSR baseline was ~1 alloc per gate in sim.Run: see
// BENCH_pre_csr.txt). Run as part of the normal test suite and as an
// explicit CI step.

import (
	"testing"

	"serretime/internal/circuit"
	"serretime/internal/gen"
	"serretime/internal/graph"
	"serretime/internal/obs"
	"serretime/internal/sim"
)

func allocCircuit(t *testing.T) (*circuit.Circuit, *graph.Graph) {
	t.Helper()
	cc, err := gen.Generate(gen.Spec{Name: "alloc", Gates: 800, Conns: 1800, FFs: 90, Depth: 12})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := graph.FromCircuit(cc, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cc, gg
}

func TestAllocRegressionSimRun(t *testing.T) {
	c, _ := allocCircuit(t)
	cfg := sim.Config{Words: 4, Frames: 10, Seed: 3, Workers: 1}
	run := func() {
		tr, err := sim.Run(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr.Release()
	}
	run() // warm the CSR cache and the trace pool
	// Steady state: the Trace header, the RNG, the worker pool and a few
	// slice headers — far below one allocation per gate (800 gates here).
	const maxAllocs = 24
	if got := testing.AllocsPerRun(20, run); got > maxAllocs {
		t.Fatalf("sim.Run steady state: %.0f allocs/run, want <= %d", got, maxAllocs)
	}
}

func TestAllocRegressionObsCompute(t *testing.T) {
	c, _ := allocCircuit(t)
	tr, err := sim.Run(c, sim.Config{Words: 4, Frames: 10, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Release()
	run := func() {
		if _, err := obs.Compute(tr, obs.Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	}
	run()
	// The Result (Obs slice) is returned to the caller, so the floor is the
	// result itself plus pool/closure headers — still independent of the
	// node count beyond the single Obs slice.
	const maxAllocs = 30
	if got := testing.AllocsPerRun(20, run); got > maxAllocs {
		t.Fatalf("obs.Compute steady state: %.0f allocs/run, want <= %d", got, maxAllocs)
	}
}

func TestAllocRegressionObsComputeFast(t *testing.T) {
	c, _ := allocCircuit(t)
	run := func() {
		if _, err := obs.ComputeFast(c, 10, obs.Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the CSR cache, the level/dedup prep and the float planes
	// Steady state: the returned Result (one Obs slice), the arena
	// headers, the worker pool and the two hoisted shard closures —
	// a constant ~31 regardless of circuit size. The probability planes,
	// level buckets and dedup tables are all arena-backed and pooled; at
	// 800 gates anything scaling with gates × frames blows this cap
	// immediately.
	const maxAllocs = 36
	if got := testing.AllocsPerRun(20, run); got > maxAllocs {
		t.Fatalf("obs.ComputeFast steady state: %.0f allocs/run, want <= %d", got, maxAllocs)
	}
}

func TestAllocRegressionComputeWD(t *testing.T) {
	_, g := allocCircuit(t)
	run := func() {
		if _, err := g.ComputeWDPar(nil, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch pool
	// The W/D matrices themselves (2 slices + struct) dominate; scratch is
	// pooled. Anything growing with |V| beyond the matrices is a regression.
	const maxAllocs = 16
	if got := testing.AllocsPerRun(10, run); got > maxAllocs {
		t.Fatalf("ComputeWDPar steady state: %.0f allocs/run, want <= %d", got, maxAllocs)
	}
}
