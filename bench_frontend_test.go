package serretime

// Front-end benchmarks of the analysis engine: the n-time-frame signature
// simulation, the fault-injection ground truth, the backward ODC
// observability pass, and the Leiserson–Saxe W/D matrix build — the phases
// that dominate wall-clock before the optimizer starts (ISSUE 4).
//
// Sub-benchmark names are structured key=value segments
// (circuit=X/phase=Y/workers=N) so that `cmd/benchjson` can turn the
// output into BENCH_baseline.json entries and `benchstat` can diff
// sequential against sharded runs of the same phase (the CI
// benchmark-compare job). workers=1 is the exact sequential code path;
// outputs are bit-identical for every worker count (see
// TestFrontEndDeterminism* and DESIGN.md §11).

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"serretime/internal/benchfmt"
	"serretime/internal/circuit"
	"serretime/internal/gen"
	"serretime/internal/graph"
	"serretime/internal/obs"
	"serretime/internal/sim"
)

// frontEndWorkers lists the worker counts benchmarked per phase: the
// sequential baseline, a fixed 2-way split, and the machine width (when it
// differs). SERRETIME_BENCH_WORKERS overrides the list with explicit
// comma-separated counts (e.g. "1,2,4,8" for the EXPERIMENTS.md scaling
// table and the CI benchmark-compare job).
func frontEndWorkers() []int {
	if s := os.Getenv("SERRETIME_BENCH_WORKERS"); s != "" {
		var ws []int
		for _, part := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				panic("SERRETIME_BENCH_WORKERS: bad worker count " + part)
			}
			ws = append(ws, n)
		}
		return ws
	}
	ws := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 {
		ws = append(ws, n)
	}
	return ws
}

func benchCircuit(b *testing.B, name string) *circuit.Circuit {
	b.Helper()
	c, err := benchfmt.ParseFile("testdata/" + name + ".bench")
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// firstGate returns a mid-circuit gate to fault-inject.
func firstGate(b *testing.B, c *circuit.Circuit) circuit.NodeID {
	b.Helper()
	for id := c.NumNodes() / 2; id < c.NumNodes(); id++ {
		if c.Node(circuit.NodeID(id)).Kind == circuit.KindGate {
			return circuit.NodeID(id)
		}
	}
	b.Fatal("no gate found")
	return 0
}

func BenchmarkFrontEnd(b *testing.B) {
	for _, name := range []string{"par2500", "par6000"} {
		c := benchCircuit(b, name)
		for _, w := range frontEndWorkers() {
			cfg := sim.Config{Words: 8, Frames: 15, Seed: 1, Workers: w}
			b.Run(fmt.Sprintf("circuit=%s/phase=sim/workers=%d", name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					tr, err := sim.Run(c, cfg)
					if err != nil {
						b.Fatal(err)
					}
					tr.Release()
				}
			})
			tr, err := sim.Run(c, cfg)
			if err != nil {
				b.Fatal(err)
			}
			target := firstGate(b, c)
			b.Run(fmt.Sprintf("circuit=%s/phase=inject/workers=%d", name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sim.InjectFlip(tr, target); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("circuit=%s/phase=obs/workers=%d", name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := obs.Compute(tr, obs.Options{Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	// W/D is Θ(|V|²) memory; benchmark it on the mid-size circuit only.
	c := benchCircuit(b, "par2500")
	g, err := graph.FromCircuit(c, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range frontEndWorkers() {
		b.Run(fmt.Sprintf("circuit=par2500/phase=wd/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.ComputeWDPar(nil, w, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Preset circuits (par50k, par100k) are generated on demand rather than
// checked in: at these sizes the .bench text would be multiple megabytes
// of noise in the repository, and gen.Generate is deterministic, so
// every run benchmarks the same netlist. The specs live in
// internal/gen/presets.go, shared with `sergen -preset`.
var (
	presetMu      sync.Mutex
	presetCircuit = map[string]*circuit.Circuit{}
)

func presetBench(b *testing.B, name string) *circuit.Circuit {
	b.Helper()
	presetMu.Lock()
	defer presetMu.Unlock()
	if c, ok := presetCircuit[name]; ok {
		return c
	}
	spec, err := gen.Preset(name)
	if err != nil {
		b.Fatal(err)
	}
	c, err := gen.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	presetCircuit[name] = c
	return c
}

func par50k(b *testing.B) *circuit.Circuit {
	return presetBench(b, "par50k")
}

// BenchmarkFrontEndLarge exercises the CSR front end at a scale where the
// flat layout matters: ~50k gates, where per-node allocation and pointer
// chasing dominated the pre-CSR representation. Reduced signature width and
// frame count keep the CI bench-smoke (-benchtime=1x) run fast.
func BenchmarkFrontEndLarge(b *testing.B) {
	c := par50k(b)
	for _, w := range frontEndWorkers() {
		cfg := sim.Config{Words: 4, Frames: 8, Seed: 1, Workers: w}
		b.Run(fmt.Sprintf("circuit=par50k/phase=sim/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr, err := sim.Run(c, cfg)
				if err != nil {
					b.Fatal(err)
				}
				tr.Release()
			}
		})
		tr, err := sim.Run(c, cfg)
		if err != nil {
			b.Fatal(err)
		}
		target := firstGate(b, c)
		b.Run(fmt.Sprintf("circuit=par50k/phase=inject/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.InjectFlip(tr, target); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("circuit=par50k/phase=obs/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := obs.Compute(tr, obs.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
		tr.Release()
	}
}

// BenchmarkFrontEndFast measures the analytical propagation-probability
// engine (accuracy=fast) against the same horizon the exact benchmarks
// use. The fastobs phase replaces sim+inject+obs wholesale — one number
// per circuit per worker count is the honest comparison. par100k is the
// asymptotic leg: at 100k gates the fast engine must finish well under a
// second single-worker (tracked in BENCH_fastser.json via `make
// bench-fastser`), a regime where signature simulation at useful widths
// is tens of seconds.
func BenchmarkFrontEndFast(b *testing.B) {
	run := func(name string, c *circuit.Circuit, frames int) {
		for _, w := range frontEndWorkers() {
			b.Run(fmt.Sprintf("circuit=%s/phase=fastobs/workers=%d", name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := obs.ComputeFast(c, frames, obs.Options{Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	for _, name := range []string{"par2500", "par6000"} {
		run(name, benchCircuit(b, name), 15)
	}
	run("par100k", presetBench(b, "par100k"), 15)
}
