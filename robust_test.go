package serretime

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"serretime/internal/core"
	"serretime/internal/guard"
	"serretime/internal/retime"
)

// fastAnalysis keeps the robustness tests quick: the contracts under
// test do not depend on analysis fidelity.
var fastAnalysis = AnalysisOptions{Frames: 2, SignatureWords: 1}

func smallDesign(t *testing.T) *Design {
	t.Helper()
	d, err := NewTableIDesign("s35932", 1000000)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func midDesign(t *testing.T) *Design {
	t.Helper()
	d, err := Synthesize(CircuitSpec{Name: "robust-mid", Gates: 220, Conns: 500, FFs: 40})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// countdownCtx cancels itself on its n-th Done() call, which is the
// n-th guard.Checkpoint visit: a deterministic way to cancel exactly
// mid-optimization, independent of wall-clock speed.
type countdownCtx struct {
	context.Context
	mu   sync.Mutex
	n    int
	done chan struct{}
}

func newCountdownCtx(parent context.Context, n int) *countdownCtx {
	return &countdownCtx{Context: parent, n: n, done: make(chan struct{})}
}

func (c *countdownCtx) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
	if c.n <= 0 {
		select {
		case <-c.done:
		default:
			close(c.done)
		}
	}
	return c.done
}

func (c *countdownCtx) Err() error {
	select {
	case <-c.done:
		return context.Canceled
	default:
		return nil
	}
}

// TestCorruptNetlistsReturnParseError drives malformed input through
// every parsing entry point: each must return an error unwrapping to
// guard.ErrParse (with position info as a *guard.ParseError) and must
// never panic.
func TestCorruptNetlistsReturnParseError(t *testing.T) {
	cases := []struct {
		name  string
		parse func(string) (*Design, error)
		input string
	}{
		{"bench/garbage", func(s string) (*Design, error) { return ParseBench(strings.NewReader(s), "x") }, "INPUT(a)\nwhat is this\n"},
		{"bench/badgate", func(s string) (*Design, error) { return ParseBench(strings.NewReader(s), "x") }, "x = FROB(a, b)\n"},
		{"bench/undriven", func(s string) (*Design, error) { return ParseBench(strings.NewReader(s), "x") }, "OUTPUT(y)\nx = AND(a, b)\n"},
		{"bench/dupe", func(s string) (*Design, error) { return ParseBench(strings.NewReader(s), "x") }, "INPUT(a)\nx = NOT(a)\nx = NOT(a)\n"},
		{"blif/latch", func(s string) (*Design, error) { return ParseBLIF(strings.NewReader(s), "x") }, ".model m\n.latch\n.end\n"},
		{"blif/cover", func(s string) (*Design, error) { return ParseBLIF(strings.NewReader(s), "x") }, ".model m\n.inputs a b\n.names a b y\n10 1\n01 0\n.end\n"},
		{"blif/stray", func(s string) (*Design, error) { return ParseBLIF(strings.NewReader(s), "x") }, ".model m\n11 1\n.end\n"},
		{"verilog/nomodule", func(s string) (*Design, error) { return ParseVerilog(strings.NewReader(s), "x") }, "not n1(y, a);\n"},
		{"verilog/assign", func(s string) (*Design, error) { return ParseVerilog(strings.NewReader(s), "x") }, "module m(y);\nassign y = 1;\nendmodule\n"},
		{"verilog/arity", func(s string) (*Design, error) { return ParseVerilog(strings.NewReader(s), "x") }, "module m(y);\noutput y;\nand g1(y);\nendmodule\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := tc.parse(tc.input)
			if err == nil {
				t.Fatalf("corrupt input parsed without error (design %v)", d)
			}
			if !errors.Is(err, guard.ErrParse) {
				t.Fatalf("error does not unwrap to guard.ErrParse: %v", err)
			}
			var pe *guard.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is not a *guard.ParseError: %T %v", err, err)
			}
		})
	}
}

// TestCorruptNetlistFiles covers the file-based entry points.
func TestCorruptNetlistFiles(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"bad.bench": "x = FROB(a)\n",
		"bad.blif":  ".model m\n.latch\n.end\n",
		"bad.v":     "module m(y);\nassign y = 1;\nendmodule\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"bad.bench", "bad.blif", "bad.v"} {
		if _, err := Load(filepath.Join(dir, name)); !errors.Is(err, guard.ErrParse) {
			t.Errorf("Load(%s): want guard.ErrParse, got %v", name, err)
		}
	}
	if _, err := Load(filepath.Join(dir, "missing.bench")); err == nil {
		t.Error("Load of missing file succeeded")
	}
}

// TestWedgedELWBudget wedges the P2' shortest-path bound to an absurd
// value so every ELW constraint is infeasible. Every entry point must
// come back with either a clean (unimproved) result or a taxonomy
// error — never a panic — and RetimeRobust must still produce an
// answer by degrading.
func TestWedgedELWBudget(t *testing.T) {
	d := smallDesign(t)
	opt := RetimeOptions{
		Algorithm:    MinObsWin,
		Analysis:     fastAnalysis,
		RminOverride: 1e12,
		StallSteps:   50,
	}
	res, err := d.Retime(opt)
	if err != nil {
		for _, sentinel := range []error{guard.ErrParse, guard.ErrInfeasible, guard.ErrTimeout, guard.ErrStalled, guard.ErrInternal} {
			if errors.Is(err, sentinel) {
				err = nil
				break
			}
		}
		if err != nil {
			t.Fatalf("wedged budget returned an untyped error: %v", err)
		}
	} else if res == nil {
		t.Fatal("nil result with nil error")
	}

	rres, rerr := d.RetimeRobust(context.Background(), RobustOptions{
		RetimeOptions: opt,
	})
	if rerr != nil {
		t.Fatalf("RetimeRobust under wedged budget: %v", rerr)
	}
	if rres.RetimeResult == nil {
		t.Fatal("RetimeRobust returned no result")
	}
	t.Logf("wedged budget answered at tier %s (degraded=%v, %d attempts)",
		rres.Tier, rres.Degraded, len(rres.Attempts))
}

// TestCancelMidRetime cancels the context partway through a retiming
// run: the call must fail with guard.ErrTimeout (cause preserved) and
// the receiver's circuit must be byte-identical to before the run.
func TestCancelMidRetime(t *testing.T) {
	d := midDesign(t)
	before := d.String()
	cctx := newCountdownCtx(context.Background(), 6)
	res, err := d.RetimeCtx(cctx, RetimeOptions{Algorithm: MinObsWin, Analysis: fastAnalysis})
	if err == nil {
		t.Fatalf("cancelled run succeeded (result %+v)", res)
	}
	if !errors.Is(err, guard.ErrTimeout) {
		t.Fatalf("cancelled run error does not unwrap to guard.ErrTimeout: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation cause lost: %v", err)
	}
	if got := d.String(); got != before {
		t.Error("input design modified by a cancelled run")
	}
}

// TestCancelMidMinimizePartialResult cancels the optimizer loop itself
// halfway and checks the contract of core.MinimizeCtx: a non-nil
// partial result carrying the last *committed* (hence legal) retiming,
// which must pass sequential-equivalence verification.
func TestCancelMidMinimizePartialResult(t *testing.T) {
	d := midDesign(t)
	if err := d.ensureObs(fastAnalysis); err != nil {
		t.Fatal(err)
	}
	init, err := retime.InitializeCtx(context.Background(), d.g, retime.Options{Ts: DefaultTs, Th: DefaultTh, Epsilon: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	base, err := d.g.Rebase(init.R)
	if err != nil {
		t.Fatal(err)
	}
	gains, obsInt, err := core.Gains(base, d.gateObs, d.edgeObs, 64)
	if err != nil {
		t.Fatal(err)
	}
	copt := core.Options{Phi: init.Phi, Ts: DefaultTs, Th: DefaultTh, Rmin: init.Rmin, ELWConstraints: true}

	full, err := core.MinimizeCtx(context.Background(), base, gains, obsInt, copt)
	if err != nil {
		t.Fatal(err)
	}
	n := full.Steps/2 + 1
	cctx := newCountdownCtx(context.Background(), n)
	part, err := core.MinimizeCtx(cctx, base, gains, obsInt, copt)
	if !errors.Is(err, guard.ErrTimeout) {
		t.Fatalf("want guard.ErrTimeout after %d checkpoints (full run: %d steps), got %v", n, full.Steps, err)
	}
	if part == nil {
		t.Fatal("no partial result alongside the timeout")
	}
	if part.Objective > part.Initial {
		t.Errorf("partial objective %d worse than initial %d", part.Objective, part.Initial)
	}
	if verr := d.verifyMove(init.R, part.R); verr != nil {
		t.Errorf("partial retiming failed sequential-equivalence verification: %v", verr)
	}
}

// TestRobustDegradesToMinObs injects a fault that only fires when ELW
// constraints are enabled: both MinObsWin tiers must fail with
// guard.ErrInternal and the chain must answer at TierMinObs.
func TestRobustDegradesToMinObs(t *testing.T) {
	guard.ArmFailpoint("core.Minimize.elw")
	defer guard.DisarmFailpoint("core.Minimize.elw")
	d := smallDesign(t)
	res, err := d.RetimeRobust(context.Background(), RobustOptions{
		RetimeOptions: RetimeOptions{Algorithm: MinObsWin, Analysis: fastAnalysis},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != TierMinObs || !res.Degraded {
		t.Fatalf("want degraded TierMinObs answer, got tier %s degraded=%v", res.Tier, res.Degraded)
	}
	if len(res.Attempts) != 3 {
		t.Fatalf("want 3 attempts, got %d: %+v", len(res.Attempts), res.Attempts)
	}
	for _, a := range res.Attempts[:2] {
		if !errors.Is(a.Err, guard.ErrInternal) {
			t.Errorf("tier %s error does not unwrap to guard.ErrInternal: %v", a.Tier, a.Err)
		}
	}
	if res.Attempts[2].Err != nil {
		t.Errorf("TierMinObs attempt failed: %v", res.Attempts[2].Err)
	}
}

// TestRobustIdentityFallback injects a fault into every optimizer run:
// the chain must fall all the way to the identity tier, whose analysis
// reports the unretimed circuit (Before == After).
func TestRobustIdentityFallback(t *testing.T) {
	guard.ArmFailpoint("core.Minimize")
	defer guard.DisarmFailpoint("core.Minimize")
	d := smallDesign(t)
	res, err := d.RetimeRobust(context.Background(), RobustOptions{
		RetimeOptions: RetimeOptions{Algorithm: MinObsWin, Analysis: fastAnalysis},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != TierIdentity || !res.Degraded {
		t.Fatalf("want TierIdentity answer, got tier %s degraded=%v", res.Tier, res.Degraded)
	}
	if res.Before.SER != res.After.SER {
		t.Errorf("identity tier changed the SER: %g -> %g", res.Before.SER, res.After.SER)
	}
	if res.Retimed == nil || res.Retimed.String() != d.String() {
		t.Error("identity tier did not hand back the input circuit")
	}
}

// TestRobustRetriesTransientFault arms a one-shot fault: the first
// attempt trips it, and the bounded retry at the same tier must then
// succeed at full strength — no degradation.
func TestRobustRetriesTransientFault(t *testing.T) {
	guard.ArmFailpointCount("core.Minimize", 1)
	defer guard.DisarmFailpoint("core.Minimize")
	d := smallDesign(t)
	res, err := d.RetimeRobust(context.Background(), RobustOptions{
		RetimeOptions: RetimeOptions{Algorithm: MinObsWin, Analysis: fastAnalysis},
		Retries:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != TierMinObsWin || res.Degraded {
		t.Fatalf("want full-strength answer after retry, got tier %s degraded=%v", res.Tier, res.Degraded)
	}
	if len(res.Attempts) != 2 {
		t.Fatalf("want 2 attempts (fault, retry), got %d: %+v", len(res.Attempts), res.Attempts)
	}
	if !errors.Is(res.Attempts[0].Err, guard.ErrInternal) {
		t.Errorf("first attempt error does not unwrap to guard.ErrInternal: %v", res.Attempts[0].Err)
	}
}

// TestRobustPerAttemptTimeout gives every attempt an already-expired
// budget: the whole chain, identity included, must time out and the
// error must unwrap to guard.ErrTimeout.
func TestRobustPerAttemptTimeout(t *testing.T) {
	d := smallDesign(t)
	_, err := d.RetimeRobust(context.Background(), RobustOptions{
		RetimeOptions: RetimeOptions{Algorithm: MinObsWin, Analysis: fastAnalysis},
		Timeout:       time.Nanosecond,
	})
	if err == nil {
		t.Fatal("chain succeeded under an expired per-attempt budget")
	}
	if !errors.Is(err, guard.ErrTimeout) {
		t.Fatalf("error does not unwrap to guard.ErrTimeout: %v", err)
	}
}

// TestRobustParentCancellation cancels the caller's own context: the
// chain must stop degrading immediately instead of burning the
// remaining tiers.
func TestRobustParentCancellation(t *testing.T) {
	guard.ArmFailpoint("core.Minimize")
	defer guard.DisarmFailpoint("core.Minimize")
	d := smallDesign(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := d.RetimeRobust(ctx, RobustOptions{
		RetimeOptions: RetimeOptions{Algorithm: MinObsWin, Analysis: fastAnalysis},
	})
	if !errors.Is(err, guard.ErrTimeout) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want guard.ErrTimeout with context.Canceled cause, got %v", err)
	}
}

// TestStallWatchdog wedges the ELW budget so the optimizer can find
// candidates but never commit one, and arms a tight watchdog: the run
// must abort with guard.ErrStalled rather than grind to the step cap.
func TestStallWatchdog(t *testing.T) {
	d := midDesign(t)
	res, err := d.Retime(RetimeOptions{
		Algorithm:    MinObsWin,
		Analysis:     fastAnalysis,
		RminOverride: 1e12,
		StallSteps:   3,
	})
	if err == nil {
		// The wedged run converged before finding any candidate: that
		// is a legal outcome, but then it must report zero steps.
		if res.Steps > 3 {
			t.Fatalf("run took %d steps without commits yet no stall fired", res.Steps)
		}
		t.Skipf("optimizer found no candidate under the wedged budget (steps=%d)", res.Steps)
	}
	if !errors.Is(err, guard.ErrStalled) {
		t.Fatalf("error does not unwrap to guard.ErrStalled: %v", err)
	}
}
