package serretime

// Property tests of the warm-start invariance claimed by DESIGN.md §17:
// bulk-seeding the optimizer's constraint engine with the P0 requirement
// closure (core.Options.WarmStart, the ECO session path) must reach the
// same committed fixpoint as the lazy violation-discovery cascade — the
// retimed netlist, objective, and SER analyses are bit-identical; only
// the step count (discovery cost) may change.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

)

// warmStartCases pairs circuits with option sets covering both
// algorithms, both gains formulations, and the fast analysis engine.
func warmStartCases(t *testing.T) []struct {
	name string
	d    func() *Design
	opt  RetimeOptions
} {
	t.Helper()
	fromFile := func(path string) func() *Design {
		return func() *Design {
			d, err := Load(path)
			if err != nil {
				t.Fatalf("load %s: %v", path, err)
			}
			return d
		}
	}
	fromSpec := func(s CircuitSpec) func() *Design {
		return func() *Design {
			d, err := Synthesize(s)
			if err != nil {
				t.Fatalf("generate %s: %v", s.Name, err)
			}
			return d
		}
	}
	small := AnalysisOptions{Frames: 3, SignatureWords: 1}
	return []struct {
		name string
		d    func() *Design
		opt  RetimeOptions
	}{
		{"s27-minobswin", fromFile(filepath.Join("testdata", "s27.bench")),
			RetimeOptions{Algorithm: MinObsWin, Analysis: small}},
		{"pipeline4-minobs", fromFile(filepath.Join("testdata", "pipeline4.bench")),
			RetimeOptions{Algorithm: MinObs, Analysis: small}},
		{"gen-wide-minobswin", fromSpec(CircuitSpec{Name: "warm-wide", Gates: 420, Conns: 980, FFs: 48, Depth: 9, FanoutSkew: 0.25}),
			RetimeOptions{Algorithm: MinObsWin, Analysis: small}},
		{"gen-deep-literal", fromSpec(CircuitSpec{Name: "warm-deep", Gates: 300, Conns: 640, FFs: 30, Depth: 24}),
			RetimeOptions{Algorithm: MinObsWin, LiteralGains: true, Analysis: small}},
		{"gen-deep-fast", fromSpec(CircuitSpec{Name: "warm-deep-fast", Gates: 300, Conns: 640, FFs: 30, Depth: 24}),
			RetimeOptions{Algorithm: MinObs, Analysis: AnalysisOptions{Accuracy: AccuracyFast, Frames: 3, SignatureWords: 1}}},
		{"par2500-minobswin", fromFile(filepath.Join("testdata", "par2500.bench")),
			RetimeOptions{Algorithm: MinObsWin, Analysis: small}},
	}
}

// retimedBytes renders the result the service serves for a job: the
// retimed circuit in canonical .bench form.
func retimedBytes(t *testing.T, res *RetimeResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Retimed.WriteBench(&buf); err != nil {
		t.Fatalf("encode retimed: %v", err)
	}
	return buf.Bytes()
}

func TestWarmStartMatchesCold(t *testing.T) {
	for _, tc := range warmStartCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			cold, err := tc.d().Retime(tc.opt)
			if err != nil {
				t.Fatalf("cold retime: %v", err)
			}
			warm := tc.opt
			warm.WarmStart = true
			got, err := tc.d().Retime(warm)
			if err != nil {
				t.Fatalf("warm retime: %v", err)
			}
			if cold.Rounds != got.Rounds {
				t.Errorf("rounds: cold %d warm %d", cold.Rounds, got.Rounds)
			}
			if cold.After.SER != got.After.SER || cold.After.SharedFFs != got.After.SharedFFs {
				t.Errorf("analysis: cold SER=%v FFs=%d, warm SER=%v FFs=%d",
					cold.After.SER, cold.After.SharedFFs, got.After.SER, got.After.SharedFFs)
			}
			cb, wb := retimedBytes(t, cold), retimedBytes(t, got)
			if !bytes.Equal(cb, wb) {
				t.Fatalf("retimed netlist differs (cold %d bytes, warm %d bytes)", len(cb), len(wb))
			}
			if testing.Verbose() {
				fmt.Printf("%s: steps cold=%d warm=%d\n", tc.name, cold.Steps, got.Steps)
			}
		})
	}
}
