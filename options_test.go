package serretime

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"serretime/internal/guard"
)

// TestRetimeRejectsNonFiniteOptions is the regression test for the
// initCache float-key hazard: a NaN smuggled into the options used to
// reach the memo map, where NaN != NaN makes every lookup miss (and
// ±Inf poisons the Section V initialization itself). Both entry points
// must now refuse non-finite floats at the boundary with a typed error
// unwrapping to guard.ErrParse, before any solving or caching happens.
func TestRetimeRejectsNonFiniteOptions(t *testing.T) {
	d := smallDesign(t)
	bad := []struct {
		name string
		mut  func(*RetimeOptions)
	}{
		{"epsilon/nan", func(o *RetimeOptions) { o.Epsilon = math.NaN() }},
		{"epsilon/+inf", func(o *RetimeOptions) { o.Epsilon = math.Inf(1) }},
		{"ts/nan", func(o *RetimeOptions) { o.Ts = math.NaN() }},
		{"th/-inf", func(o *RetimeOptions) { o.Th = math.Inf(-1) }},
		{"area/nan", func(o *RetimeOptions) { o.AreaWeight = math.NaN() }},
		{"rmin/nan", func(o *RetimeOptions) { o.RminOverride = math.NaN() }},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			opt := RetimeOptions{Algorithm: MinObsWin, Analysis: fastAnalysis}
			tc.mut(&opt)
			if _, err := d.Retime(opt); !errors.Is(err, guard.ErrParse) {
				t.Errorf("Retime: want guard.ErrParse, got %v", err)
			}
			var oe *guard.OptionError
			_, err := d.RetimeRobust(context.Background(), RobustOptions{RetimeOptions: opt})
			if !errors.Is(err, guard.ErrParse) || !errors.As(err, &oe) {
				t.Errorf("RetimeRobust: want *guard.OptionError (ErrParse), got %v", err)
			}
		})
	}
	t.Run("relaxfactor/nan", func(t *testing.T) {
		_, err := d.RetimeRobust(context.Background(), RobustOptions{
			RetimeOptions: RetimeOptions{Algorithm: MinObsWin, Analysis: fastAnalysis},
			RelaxFactor:   math.NaN(),
		})
		if !errors.Is(err, guard.ErrParse) {
			t.Errorf("RelaxFactor NaN: want guard.ErrParse, got %v", err)
		}
	})
}

// TestNegativeZeroFolded checks the other half of the float-key hazard:
// -0.0 and +0.0 compare equal but format differently, so they must fold
// to one canonical key (and one memo entry).
func TestNegativeZeroFolded(t *testing.T) {
	zero := RetimeOptions{Algorithm: MinObsWin, Analysis: fastAnalysis}
	neg := zero
	neg.AreaWeight = math.Copysign(0, -1)
	if zero.CanonicalKey() != neg.CanonicalKey() {
		t.Errorf("-0 and +0 produce different canonical keys:\n  %s\n  %s",
			zero.CanonicalKey(), neg.CanonicalKey())
	}
	if strings.Contains(neg.CanonicalKey(), "-0") {
		t.Errorf("canonical key leaks a negative zero: %s", neg.CanonicalKey())
	}
	d := smallDesign(t)
	if _, err := d.RetimeRobust(context.Background(), RobustOptions{RetimeOptions: neg}); err != nil {
		t.Errorf("-0 option rejected: %v", err)
	}
}

// TestCanonicalKeyNormalization pins the canonical-key contract used by
// the service cache: zero values and spelled-out defaults are one key;
// result-relevant fields split it; result-invariant fields don't.
func TestCanonicalKeyNormalization(t *testing.T) {
	var zero RetimeOptions
	spelled := RetimeOptions{Epsilon: 0.10, Ts: DefaultTs, Th: DefaultTh}
	if zero.CanonicalKey() != spelled.CanonicalKey() {
		t.Errorf("defaults fragment the key:\n  %s\n  %s", zero.CanonicalKey(), spelled.CanonicalKey())
	}
	invariant := zero
	invariant.Workers = 16
	invariant.Verify = true
	invariant.CheckLabels = true
	if zero.CanonicalKey() != invariant.CanonicalKey() {
		t.Error("result-invariant fields (Workers, Verify, CheckLabels) fragment the key")
	}
	changed := zero
	changed.Epsilon = 0.2
	if zero.CanonicalKey() == changed.CanonicalKey() {
		t.Error("epsilon change does not split the key")
	}

	var rzero RobustOptions
	rspelled := RobustOptions{RelaxFactor: 2}
	if rzero.CanonicalKey() != rspelled.CanonicalKey() {
		t.Errorf("robust defaults fragment the key:\n  %s\n  %s",
			rzero.CanonicalKey(), rspelled.CanonicalKey())
	}
	rchanged := rzero
	rchanged.Retries = 3
	if rzero.CanonicalKey() == rchanged.CanonicalKey() {
		t.Error("retry change does not split the robust key")
	}
}

// TestFormatSniffing covers the case-sensitivity bug in Load: extension
// sniffing must be case-insensitive (".BENCH" files from DOS-era
// benchmark archives are real), .bench must be recognized explicitly,
// and an unknown extension must fail with a typed error unwrapping to
// guard.ErrParse instead of being parsed as something arbitrary.
func TestFormatSniffing(t *testing.T) {
	cases := []struct {
		path string
		want Format
		ok   bool
	}{
		{"a.bench", FormatBench, true},
		{"a.BENCH", FormatBench, true},
		{"a.Bench", FormatBench, true},
		{"dir.v/a.blif", FormatBLIF, true},
		{"a.BLIF", FormatBLIF, true},
		{"a.v", FormatVerilog, true},
		{"a.V", FormatVerilog, true},
		{"a.verilog", 0, false},
		{"a.txt", 0, false},
		{"bench", 0, false},
		{"", 0, false},
	}
	for _, tc := range cases {
		f, err := FormatOf(tc.path)
		if tc.ok {
			if err != nil || f != tc.want {
				t.Errorf("FormatOf(%q) = %v, %v; want %v", tc.path, f, err, tc.want)
			}
			continue
		}
		if err == nil {
			t.Errorf("FormatOf(%q) accepted an unknown extension (%v)", tc.path, f)
			continue
		}
		var ue *UnknownFormatError
		if !errors.Is(err, guard.ErrParse) || !errors.As(err, &ue) {
			t.Errorf("FormatOf(%q): want *UnknownFormatError (ErrParse), got %v", tc.path, err)
		}
	}
}

// TestLoadCaseInsensitive writes one valid netlist under upper- and
// mixed-case extensions and loads each through the sniffing path.
func TestLoadCaseInsensitive(t *testing.T) {
	dir := t.TempDir()
	bench := "INPUT(a)\nOUTPUT(y)\nf = DFF(a)\ny = NOT(f)\n"
	for _, name := range []string{"c.BENCH", "c.Bench", "c.bench"} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(bench), 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := Load(p)
		if err != nil {
			t.Errorf("Load(%s): %v", name, err)
			continue
		}
		if d.Name() != "c" {
			t.Errorf("Load(%s) named the design %q", name, d.Name())
		}
	}
	p := filepath.Join(dir, "c.netlist")
	if err := os.WriteFile(p, []byte(bench), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(p)
	var ue *UnknownFormatError
	if !errors.Is(err, guard.ErrParse) || !errors.As(err, &ue) {
		t.Errorf("Load of unknown extension: want *UnknownFormatError (ErrParse), got %v", err)
	}
	if ue != nil && ue.Path != p {
		t.Errorf("UnknownFormatError.Path = %q, want %q", ue.Path, p)
	}
}

// TestParseByName checks the reader-based entry point used by the
// service: the name selects the format (case-insensitively) and the
// design is named after the base without its extension.
func TestParseByName(t *testing.T) {
	bench := "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"
	d, err := Parse(strings.NewReader(bench), "Circuit.BENCH")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "Circuit" {
		t.Errorf("Parse named the design %q", d.Name())
	}
	if _, err := Parse(strings.NewReader(bench), "circuit.json"); !errors.Is(err, guard.ErrParse) {
		t.Errorf("Parse of unknown extension: want guard.ErrParse, got %v", err)
	}
}
