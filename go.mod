module serretime

go 1.22
