package serretime

// Warm-state ECO sessions (DESIGN.md §17). A WarmState keeps a parsed
// design, the Section V initialization memo, and the last committed
// result alive between solves, so a small netlist delta re-solves
// incrementally: the constraint engine is bulk-seeded with the P0
// requirement closure (RetimeOptions.WarmStart), the init memo re-enters
// the min-period searches for free when the structure is unchanged, and
// the Design's observability cache survives option-only deltas. The
// committed result of a delta solve is bit-identical to a from-scratch
// RetimeRobust of the mutated netlist — WarmStart changes constraint
// discovery cost, never the fixpoint — so the warm path needs no
// cross-validation against the batch path (TestRetimeDeltaMatchesCold
// asserts the identity; serbench -eco re-checks it on every delta).

import (
	"context"
	"fmt"

	"serretime/internal/circuit"
	"serretime/internal/guard"
	"serretime/internal/solverstate"
)

// DeltaOp is one netlist edit of an ECO delta. Ops apply in order; names
// are net names, resolved against the session circuit as it stands when
// the op runs.
type DeltaOp struct {
	// Op is one of add_gate, add_dff, rm_node, rewire, mark_po,
	// unmark_po.
	Op string `json:"op"`
	// Name is the target net.
	Name string `json:"name"`
	// Fn names the gate function for add_gate (AND, NAND, OR, NOR, XOR,
	// XNOR, NOT, BUF, CONST0, CONST1).
	Fn string `json:"fn,omitempty"`
	// Fanin lists driver nets for add_gate, add_dff and rewire.
	Fanin []string `json:"fanin,omitempty"`
}

// ApplyDeltaOps applies ops to c in place and returns the number of
// structurally touched nodes. On error the circuit may be partially
// edited — apply to a Clone when the original must survive a bad delta.
// Acyclicity is not checked here; building a Design from the result
// (newDesign → graph extraction) rejects combinational cycles.
func ApplyDeltaOps(c *circuit.Circuit, ops []DeltaOp) (int, error) {
	changed := 0
	resolve := func(op, name string) (circuit.NodeID, error) {
		id, ok := c.Lookup(name)
		if !ok {
			return 0, guard.Optionf("serretime.ApplyDeltaOps", op, "unknown net %q", name)
		}
		return id, nil
	}
	resolveAll := func(op string, names []string) ([]circuit.NodeID, error) {
		out := make([]circuit.NodeID, len(names))
		for i, n := range names {
			id, err := resolve(op, n)
			if err != nil {
				return nil, err
			}
			out[i] = id
		}
		return out, nil
	}
	for i, op := range ops {
		var err error
		switch op.Op {
		case "add_gate":
			fn, ok := circuit.ParseFunc(op.Fn)
			if !ok {
				err = guard.Optionf("serretime.ApplyDeltaOps", "add_gate", "unknown function %q", op.Fn)
				break
			}
			var fanin []circuit.NodeID
			if fanin, err = resolveAll("add_gate", op.Fanin); err == nil {
				_, err = c.AddGate(op.Name, fn, fanin...)
			}
		case "add_dff":
			if len(op.Fanin) != 1 {
				err = guard.Optionf("serretime.ApplyDeltaOps", "add_dff", "needs exactly 1 fanin, got %d", len(op.Fanin))
				break
			}
			var d circuit.NodeID
			if d, err = resolve("add_dff", op.Fanin[0]); err == nil {
				_, err = c.AddDFF(op.Name, d)
			}
		case "rm_node":
			var id circuit.NodeID
			if id, err = resolve("rm_node", op.Name); err == nil {
				err = c.RemoveNode(id)
			}
		case "rewire":
			var id circuit.NodeID
			var fanin []circuit.NodeID
			if id, err = resolve("rewire", op.Name); err == nil {
				if fanin, err = resolveAll("rewire", op.Fanin); err == nil {
					err = c.Rewire(id, fanin)
				}
			}
		case "mark_po":
			var id circuit.NodeID
			if id, err = resolve("mark_po", op.Name); err == nil {
				err = c.MarkPO(id)
			}
		case "unmark_po":
			var id circuit.NodeID
			if id, err = resolve("unmark_po", op.Name); err == nil {
				err = c.UnmarkPO(id)
			}
		default:
			err = guard.Optionf("serretime.ApplyDeltaOps", "op", "unknown op %q", op.Op)
		}
		if err != nil {
			return changed, fmt.Errorf("delta op %d: %w", i, err)
		}
		changed++
	}
	return changed, nil
}

// DeltaStats describes how a delta was solved.
type DeltaStats struct {
	// Structural reports whether the delta edited the netlist (as
	// opposed to changing only options).
	Structural bool `json:"structural"`
	// ChangedNodes counts the applied netlist edits.
	ChangedNodes int `json:"changed_nodes"`
	// DirtyFrac is ChangedNodes over the gate count.
	DirtyFrac float64 `json:"dirty_frac"`
	// Warm reports whether the incremental path ran; when false,
	// FallbackReason says why the delta fell back to a cold full solve.
	Warm           bool   `json:"warm"`
	FallbackReason string `json:"fallback_reason,omitempty"`
}

// WarmState is the solver state an ECO session keeps alive between
// deltas. It is not safe for concurrent use; the service serializes
// access with a per-session mutex. Failed deltas do not advance the
// state: the session still answers for the last successfully solved
// netlist.
type WarmState struct {
	d    *Design
	opts RobustOptions
	memo *initCache
	res  *RobustResult
}

// NewWarmState solves d from scratch (warm-started — same bytes, fewer
// discovery steps) and wraps the results as session state.
func NewWarmState(ctx context.Context, d *Design, opt RobustOptions) (*WarmState, error) {
	w := &WarmState{memo: &initCache{}}
	o := opt
	o.RetimeOptions.WarmStart = true
	o.RetimeOptions.initMemo = w.memo
	res, err := d.RetimeRobust(ctx, o)
	if err != nil {
		return nil, err
	}
	w.d, w.opts, w.res = d, opt, res
	return w, nil
}

// Design returns the design of the last successfully solved state.
func (w *WarmState) Design() *Design { return w.d }

// Result returns the last committed solve result.
func (w *WarmState) Result() *RobustResult { return w.res }

// Options returns the options of the last committed solve.
func (w *WarmState) Options() RobustOptions { return w.opts }

// RetimeDelta applies ops to the warm netlist and re-solves under opt.
// The warm path runs when the structural change stays under the
// solverstate dirty threshold and the analysis options (which key the
// observability cache) are unchanged; otherwise the delta falls back to
// a cold full solve — either way the answer is bit-identical to
// RetimeRobust of the mutated netlist, and on success the warm state
// advances to it.
func (w *WarmState) RetimeDelta(ctx context.Context, ops []DeltaOp, opt RobustOptions) (*RobustResult, DeltaStats, error) {
	stats := DeltaStats{Structural: len(ops) > 0, ChangedNodes: len(ops)}
	if err := opt.validate("serretime.RetimeDelta"); err != nil {
		return nil, stats, err
	}
	d := w.d
	if len(ops) > 0 {
		c := w.d.c.Clone()
		n, err := ApplyDeltaOps(c, ops)
		stats.ChangedNodes = n
		if err != nil {
			return nil, stats, err
		}
		if d, err = newDesign(c); err != nil {
			return nil, stats, err
		}
	}
	_, _, gates, _ := d.c.Counts()
	if gates > 0 {
		stats.DirtyFrac = float64(stats.ChangedNodes) / float64(gates)
	}

	threshold := solverstate.DefaultDirtyThreshold
	switch {
	case opt.Analysis.normalized() != w.opts.Analysis.normalized():
		stats.FallbackReason = "analysis-options-changed"
	case opt.RetimeOptions.Engine != EngineClosure:
		stats.FallbackReason = "engine-not-closure"
	case stats.DirtyFrac > threshold:
		stats.FallbackReason = fmt.Sprintf("dirty-frac %.2f > %.2f", stats.DirtyFrac, threshold)
	default:
		stats.Warm = true
	}

	memo := w.memo
	if stats.Structural {
		// The init memo holds min-period retimings of the old graph.
		memo = &initCache{}
	}
	o := opt
	o.RetimeOptions.WarmStart = stats.Warm
	o.RetimeOptions.initMemo = memo
	res, err := d.RetimeRobust(ctx, o)
	if err != nil {
		return nil, stats, err
	}
	w.d, w.opts, w.memo, w.res = d, opt, memo, res
	return res, stats, nil
}
