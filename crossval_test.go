package serretime

// Cross-validation of the analytical fast observability engine against
// the signature-based exact engine (ISSUE 9): on every testdata netlist
// the two engines must agree in *ranking* (Spearman rank correlation
// >= 0.9) — the retiming objectives consume observabilities through
// comparisons and weighted sums, so preserved ordering is what makes a
// fast estimate a usable routing tier — and stay close in absolute terms
// (MAE, reported in EXPERIMENTS.md). The determinism test pins the
// bit-identity contract of the level-sharded passes at the public
// options surface.
//
// Protocol. The rank comparison runs over the gates whose reference
// observability is nonzero, against an exact reference at 64 signature
// words (K = 4096 sampled trajectories):
//
//   - Gates, because that is the population the optimizer consumes:
//     ser.VertexObs forwards only gate observabilities into the retiming
//     objective; PIs/DFFs/POs never enter a comparison.
//   - Reference > 0, because a sampled reference cannot rank what it
//     cannot resolve: every gate below 1/K collapses into one huge tie
//     at the bottom and average-rank Spearman then scores the fast
//     engine's ordering of that tail against coin flips. Zero-estimate
//     gates also carry zero weight in the SER objective, so their
//     internal order is irrelevant downstream. The unrestricted rho is
//     still logged, and MAE is asserted over ALL nodes, so the known
//     failure mode — correlated masking the independence model cannot
//     see (DESIGN.md §16) — stays measured rather than hidden.
//
// Measured seed-to-seed reproducibility of the exact engine itself
// (words=64, gates): 0.990 on par2500, 0.981 on par6000 — the ceiling
// any estimator can reach against this reference.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"testing"

	"serretime/internal/benchfmt"
	"serretime/internal/circuit"
	"serretime/internal/obs"
	"serretime/internal/sim"
)

var crossvalCircuits = []string{"s27", "pipeline4", "par2500", "par6000"}

// ranks assigns average ranks (ties share the mean of their positions),
// the standard Spearman treatment for the heavily tied obs values near
// 0 and 1.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			r[idx[k]] = avg
		}
		i = j
	}
	return r
}

// spearman is the Pearson correlation of the two rank vectors.
func spearman(a, b []float64) float64 {
	ra, rb := ranks(a), ranks(b)
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= float64(len(ra))
	mb /= float64(len(rb))
	var num, da, db float64
	for i := range ra {
		x, y := ra[i]-ma, rb[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

func TestFastCrossValidation(t *testing.T) {
	for _, name := range crossvalCircuits {
		t.Run(name, func(t *testing.T) {
			c, err := benchfmt.ParseFile("testdata/" + name + ".bench")
			if err != nil {
				t.Fatal(err)
			}
			csr, err := c.CSR()
			if err != nil {
				t.Fatal(err)
			}
			tr, err := sim.Run(c, sim.Config{Words: 64, Frames: 15, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			exact, err := obs.Compute(tr, obs.Options{})
			tr.Release()
			if err != nil {
				t.Fatal(err)
			}
			fast, err := obs.ComputeFast(c, 15, obs.Options{})
			if err != nil {
				t.Fatal(err)
			}
			var mae, worst float64
			for i := range exact.Obs {
				d := math.Abs(exact.Obs[i] - fast.Obs[i])
				mae += d
				if d > worst {
					worst = d
				}
			}
			mae /= float64(len(exact.Obs))
			var gE, gF, rE, rF []float64
			for i := 0; i < csr.N; i++ {
				if csr.Kind[i] != circuit.KindGate {
					continue
				}
				gE = append(gE, exact.Obs[i])
				gF = append(gF, fast.Obs[i])
				if exact.Obs[i] > 0 {
					rE = append(rE, exact.Obs[i])
					rF = append(rF, fast.Obs[i])
				}
			}
			rho := spearman(rE, rF)
			t.Logf("%s: gates=%d resolved=%d spearman=%.4f spearman(all gates)=%.4f mae=%.4f max|err|=%.4f",
				name, len(gE), len(rE), rho, spearman(gE, gF), mae, worst)
			if rho < 0.9 {
				t.Errorf("%s: spearman %.4f < 0.9", name, rho)
			}
			if mae > 0.15 {
				t.Errorf("%s: MAE %.4f > 0.15", name, mae)
			}
		})
	}
}

// TestFastDeterminismAcrossWorkers drives the fast engine through the
// public analysis surface (ensureObs via Analyze) and checks the derived
// per-vertex observabilities are bit-identical for every worker count.
func TestFastDeterminismAcrossWorkers(t *testing.T) {
	d, err := LoadBench("testdata/par2500.bench")
	if err != nil {
		t.Fatal(err)
	}
	obsFor := func(workers int) []float64 {
		if err := d.ensureObs(AnalysisOptions{Accuracy: AccuracyFast, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(d.gateObs))
		copy(out, d.gateObs)
		// Invalidate the cache so the next worker count recomputes.
		d.obsOpt = AnalysisOptions{}
		d.gateObs = nil
		return out
	}
	base := obsFor(1)
	counts := []int{2, 3}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 3 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		got := obsFor(w)
		for i := range base {
			if math.Float64bits(got[i]) != math.Float64bits(base[i]) {
				t.Fatalf("workers=%d: gateObs[%d] = %x, want %x", w, i, math.Float64bits(got[i]), math.Float64bits(base[i]))
			}
		}
	}
}

// TestAccuracyJoinsObsCache pins the aliasing guarantee: switching only
// the accuracy must invalidate the in-process analysis cache and
// recompute, never reuse the other engine's numbers.
func TestAccuracyJoinsObsCache(t *testing.T) {
	d, err := LoadBench("testdata/s27.bench")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ensureObs(AnalysisOptions{Accuracy: AccuracyExact}); err != nil {
		t.Fatal(err)
	}
	exact := make([]float64, len(d.gateObs))
	copy(exact, d.gateObs)
	if err := d.ensureObs(AnalysisOptions{Accuracy: AccuracyFast}); err != nil {
		t.Fatal(err)
	}
	if d.obsOpt.Accuracy != AccuracyFast {
		t.Fatalf("cache key accuracy = %v, want fast", d.obsOpt.Accuracy)
	}
	same := true
	for i := range exact {
		if d.gateObs[i] != exact[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("fast request returned the cached exact analysis verbatim")
	}
	// And back: exact must not see fast's numbers either.
	if err := d.ensureObs(AnalysisOptions{Accuracy: AccuracyExact}); err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if d.gateObs[i] != exact[i] {
			t.Fatalf("exact recompute diverged at %d", i)
		}
	}
}

func TestAccuracyCanonicalKeys(t *testing.T) {
	ke := AnalysisOptions{}.CanonicalKey()
	kf := AnalysisOptions{Accuracy: AccuracyFast}.CanonicalKey()
	if ke == kf {
		t.Fatalf("fast and exact analyses share a canonical key %q", ke)
	}
	if kx := (AnalysisOptions{Accuracy: AccuracyExact}).CanonicalKey(); kx != ke {
		t.Fatalf("explicit exact key %q differs from default %q", kx, ke)
	}
	// The split must reach the service-level key so cached jobs never
	// alias across engines.
	re := RobustOptions{}.CanonicalKey()
	rf := RobustOptions{RetimeOptions: RetimeOptions{Analysis: AnalysisOptions{Accuracy: AccuracyFast}}}.CanonicalKey()
	if re == rf {
		t.Fatalf("fast and exact jobs share a service canonical key %q", re)
	}
	// Workers stays result-invariant in fast mode too.
	if a, b := (AnalysisOptions{Accuracy: AccuracyFast}).CanonicalKey(), (AnalysisOptions{Accuracy: AccuracyFast, Workers: 7}).CanonicalKey(); a != b {
		t.Fatalf("workers fragments the fast key: %q vs %q", a, b)
	}
}

func TestParseAccuracy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Accuracy
	}{{"", AccuracyExact}, {"exact", AccuracyExact}, {"fast", AccuracyFast}} {
		got, err := ParseAccuracy("test", tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseAccuracy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseAccuracy("test", "acurate"); err == nil {
		t.Fatal("bad accuracy accepted")
	}
	_ = fmt.Sprintf("%s", AccuracyFast) // Stringer is part of the wire contract
}
