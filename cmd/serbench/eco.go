// ECO mode (-eco netlist.bench): measure the warm-session delta
// re-solve against the cold full solve it must match.
//
// In-process (default): load the netlist, open a serretime.WarmState,
// stream -deltas generated single-gate perturbations through
// RetimeDelta, and for every delta also solve the mutated netlist from
// scratch. The two results must be byte-identical — the cold solve is
// the oracle, not a baseline estimate — and the timing ratio is the
// headline number. Results print as `go test -bench` style lines so
// `cmd/benchjson` can append them to a trajectory file
// (`make bench-eco` → BENCH_eco.json).
//
// With -serve URL the same stream drives a running serretimed over the
// session API instead: POST /v1/sessions, then one
// POST /v1/sessions/{id}/delta per perturbation, downloading the result
// each time and comparing it against a local cold solve of the
// client-side mirror netlist. This is the CI eco-smoke driver: it
// proves the daemon's incremental path returns exactly what a
// from-scratch solve of the delivered netlist returns.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"serretime"
	"serretime/internal/benchfmt"
	"serretime/internal/circuit"
	"serretime/internal/eco"
)

// ecoOptions builds the solve options both sides of the comparison use.
func ecoOptions(cfg config, eng serretime.EngineKind) serretime.RobustOptions {
	return serretime.RobustOptions{
		RetimeOptions: serretime.RetimeOptions{
			Algorithm: serretime.MinObsWin,
			Analysis:  serretime.AnalysisOptions{Accuracy: cfg.acc, Frames: cfg.frames, SignatureWords: cfg.words},
			Engine:    eng,
			Workers:   cfg.workers,
		},
		Timeout: cfg.timeout,
		Retries: cfg.retries,
	}
}

// loadECOBase reads the base netlist once and parses it twice: into the
// Design the solver side works on and into the circuit the delta
// generator mutates. Starting both from the same canonical bytes keeps
// the two node-for-node aligned, which is what makes the cold solve of
// the generator's netlist an exact oracle (see internal/eco).
func loadECOBase(path string) ([]byte, *serretime.Design, *circuit.Circuit, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	// Canonicalize first: node IDs follow declaration order, and the
	// alignment argument needs both sides to parse the *canonical* form
	// (inputs first, then gates in ID order) — the original file may
	// declare in any order.
	c0, err := benchfmt.Parse(bytes.NewReader(raw), filepath.Base(path))
	if err != nil {
		return nil, nil, nil, err
	}
	var canon bytes.Buffer
	if err := benchfmt.Write(&canon, c0); err != nil {
		return nil, nil, nil, err
	}
	d, err := serretime.Parse(bytes.NewReader(canon.Bytes()), filepath.Base(path))
	if err != nil {
		return nil, nil, nil, err
	}
	mirror, err := benchfmt.Parse(bytes.NewReader(canon.Bytes()), filepath.Base(path))
	if err != nil {
		return nil, nil, nil, err
	}
	return canon.Bytes(), d, mirror, nil
}

func retimedECO(res *serretime.RobustResult) ([]byte, error) {
	var buf bytes.Buffer
	if err := res.Retimed.WriteBench(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// coldSolve is the oracle: a from-scratch solve of the mutated netlist.
func coldSolve(ctx context.Context, bench []byte, opt serretime.RobustOptions) ([]byte, error) {
	d, err := serretime.Parse(bytes.NewReader(bench), "eco-oracle.bench")
	if err != nil {
		return nil, err
	}
	res, err := d.RetimeRobust(ctx, opt)
	if err != nil {
		return nil, err
	}
	return retimedECO(res)
}

func runECO(cfg config, eng serretime.EngineKind, stdout, stderr io.Writer) int {
	if cfg.serveURL != "" {
		return runECOServe(cfg, eng, stdout, stderr)
	}
	ctx := context.Background()
	_, d, mirror, err := loadECOBase(cfg.ecoPath)
	if err != nil {
		fmt.Fprintf(stderr, "serbench: eco: %v\n", err)
		return 1
	}
	name := strings.TrimSuffix(filepath.Base(cfg.ecoPath), filepath.Ext(cfg.ecoPath))
	opt := ecoOptions(cfg, eng)

	openStart := time.Now()
	w, err := serretime.NewWarmState(ctx, d, opt)
	if err != nil {
		fmt.Fprintf(stderr, "serbench: eco: open: %v\n", err)
		return 1
	}
	openTime := time.Since(openStart)

	g := eco.NewGen(mirror, cfg.ecoSeed)
	var coldTotal, warmTotal time.Duration
	warmCount := 0
	for i := 0; i < cfg.ecoDeltas; i++ {
		ops, err := g.Next()
		if err != nil {
			fmt.Fprintf(stderr, "serbench: eco: delta %d: %v\n", i, err)
			return 1
		}
		start := time.Now()
		res, stats, err := w.RetimeDelta(ctx, ops, opt)
		warmTotal += time.Since(start)
		if err != nil {
			fmt.Fprintf(stderr, "serbench: eco: delta %d: %v\n", i, err)
			return 1
		}
		got, err := retimedECO(res)
		if err != nil {
			fmt.Fprintf(stderr, "serbench: eco: delta %d: %v\n", i, err)
			return 1
		}
		if stats.Warm {
			warmCount++
		} else {
			fmt.Fprintf(stderr, "serbench: eco: delta %d fell back to a full solve: %s\n", i, stats.FallbackReason)
		}

		mut, err := g.Bench()
		if err != nil {
			fmt.Fprintf(stderr, "serbench: eco: delta %d: %v\n", i, err)
			return 1
		}
		start = time.Now()
		want, err := coldSolve(ctx, mut, opt)
		coldTotal += time.Since(start)
		if err != nil {
			fmt.Fprintf(stderr, "serbench: eco: delta %d: oracle: %v\n", i, err)
			return 1
		}
		if !bytes.Equal(got, want) {
			fmt.Fprintf(stderr, "serbench: eco: delta %d: MISMATCH: incremental result differs from the cold solve of the same netlist\n", i)
			return 1
		}
	}

	n := cfg.ecoDeltas
	fmt.Fprintf(stdout, "BenchmarkECO/circuit=%s/phase=open 1 %d ns/op\n", name, openTime.Nanoseconds())
	fmt.Fprintf(stdout, "BenchmarkECO/circuit=%s/phase=cold %d %d ns/op\n", name, n, coldTotal.Nanoseconds()/int64(n))
	fmt.Fprintf(stdout, "BenchmarkECO/circuit=%s/phase=delta %d %d ns/op\n", name, n, warmTotal.Nanoseconds()/int64(n))
	speedup := float64(coldTotal) / float64(warmTotal)
	fmt.Fprintf(stderr, "serbench: eco: %s: %d deltas, %d warm, all bit-identical to cold solves; delta re-solve %.2fx faster than cold (%.0fms vs %.0fms per delta)\n",
		name, n, warmCount, speedup,
		float64(warmTotal.Milliseconds())/float64(n), float64(coldTotal.Milliseconds())/float64(n))
	if warmCount == 0 {
		fmt.Fprintln(stderr, "serbench: eco: no delta took the warm path")
		return 1
	}
	if cfg.ecoMin > 0 && speedup < cfg.ecoMin {
		fmt.Fprintf(stderr, "serbench: eco: speedup %.2fx below the -ecomin %.1fx floor\n", speedup, cfg.ecoMin)
		return 2
	}
	return 0
}

// ecoOpenMsg and ecoDeltaMsg are the subsets of the daemon's session
// responses the client needs. They are separate types because "warm" is
// a per-session counter on the open/status view but a per-delta boolean
// on the delta reply.
type ecoOpenMsg struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

type ecoDeltaMsg struct {
	Warm           bool   `json:"warm"`
	FallbackReason string `json:"fallback_reason"`
	Error          string `json:"error"`
}

// runECOServe drives a running serretimed's session API with the same
// delta stream and oracle: every delta response's netlist must be
// byte-identical to a local cold solve of the client-side mirror.
func runECOServe(cfg config, eng serretime.EngineKind, stdout, stderr io.Writer) int {
	ctx := context.Background()
	raw, _, mirror, err := loadECOBase(cfg.ecoPath)
	if err != nil {
		fmt.Fprintf(stderr, "serbench: eco: %v\n", err)
		return 1
	}
	name := strings.TrimSuffix(filepath.Base(cfg.ecoPath), filepath.Ext(cfg.ecoPath))
	opt := ecoOptions(cfg, eng)
	base := strings.TrimRight(cfg.serveURL, "/")
	client := &http.Client{Timeout: cfg.serveWait}
	query := fmt.Sprintf("?algorithm=minobswin&frames=%d&words=%d", cfg.frames, cfg.words)
	if cfg.acc == serretime.AccuracyFast {
		query += "&accuracy=fast"
	}

	post := func(url, ctype string, body []byte, out any) (int, error) {
		resp, err := client.Post(url, ctype, bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, err
		}
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("bad response: %.200s", data)
		}
		return resp.StatusCode, nil
	}

	var open ecoOpenMsg
	code, err := post(base+"/v1/sessions"+query+"&name="+filepath.Base(cfg.ecoPath), "text/plain", raw, &open)
	if err != nil || code != http.StatusCreated {
		fmt.Fprintf(stderr, "serbench: eco: open session: HTTP %d: %v %s\n", code, err, open.Error)
		return 1
	}
	fmt.Fprintf(stdout, "serbench: eco: session %s open on %s\n", open.ID, base)

	g := eco.NewGen(mirror, cfg.ecoSeed)
	warmCount := 0
	var deltaTotal time.Duration
	for i := 0; i < cfg.ecoDeltas; i++ {
		ops, err := g.Next()
		if err != nil {
			fmt.Fprintf(stderr, "serbench: eco: delta %d: %v\n", i, err)
			return 1
		}
		body, err := json.Marshal(struct {
			Ops []serretime.DeltaOp `json:"ops"`
		}{ops})
		if err != nil {
			fmt.Fprintf(stderr, "serbench: eco: delta %d: %v\n", i, err)
			return 1
		}
		var dmsg ecoDeltaMsg
		start := time.Now()
		code, err := post(base+"/v1/sessions/"+open.ID+"/delta", "application/json", body, &dmsg)
		deltaTotal += time.Since(start)
		if err != nil || code != http.StatusOK {
			fmt.Fprintf(stderr, "serbench: eco: delta %d: HTTP %d: %v %s\n", i, code, err, dmsg.Error)
			return 1
		}
		if dmsg.Warm {
			warmCount++
		} else {
			fmt.Fprintf(stderr, "serbench: eco: delta %d fell back: %s\n", i, dmsg.FallbackReason)
		}

		resp, err := client.Get(base + "/v1/sessions/" + open.ID + "/result")
		if err != nil {
			fmt.Fprintf(stderr, "serbench: eco: delta %d: result: %v\n", i, err)
			return 1
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			fmt.Fprintf(stderr, "serbench: eco: delta %d: result: HTTP %d: %v\n", i, resp.StatusCode, err)
			return 1
		}
		mut, err := g.Bench()
		if err != nil {
			fmt.Fprintf(stderr, "serbench: eco: delta %d: %v\n", i, err)
			return 1
		}
		want, err := coldSolve(ctx, mut, opt)
		if err != nil {
			fmt.Fprintf(stderr, "serbench: eco: delta %d: oracle: %v\n", i, err)
			return 1
		}
		if !bytes.Equal(got, want) {
			fmt.Fprintf(stderr, "serbench: eco: delta %d: MISMATCH: daemon session result differs from the cold solve of the same netlist\n", i)
			return 1
		}
	}
	fmt.Fprintf(stdout, "serbench: eco: %s over %s: %d deltas (%d warm), every result byte-identical to a cold full solve; mean delta round-trip %.0fms\n",
		name, base, cfg.ecoDeltas, warmCount, float64(deltaTotal.Milliseconds())/float64(cfg.ecoDeltas))
	if warmCount == 0 {
		fmt.Fprintln(stderr, "serbench: eco: no delta took the warm path")
		return 1
	}
	return 0
}
