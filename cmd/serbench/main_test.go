package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"serretime"
	"serretime/internal/telemetry"
)

// sweepArgs shrinks every circuit to the 16-gate floor and uses a
// minimal analysis so the full 21-circuit sweep stays fast.
var sweepArgs = []string{"-scale", "100000", "-frames", "2", "-words", "1", "-timeout", "60s"}

// TestFullSweep runs all 21 Table I circuits end to end and requires a
// clean exit: every row ok, none degraded, none failed.
func TestFullSweep(t *testing.T) {
	var out, errOut strings.Builder
	code := run(sweepArgs, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstderr:\n%s\nstdout:\n%s", code, errOut.String(), out.String())
	}
	for _, name := range tableINames(t) {
		if !strings.Contains(out.String(), name) {
			t.Errorf("row for %s missing from output", name)
		}
	}
	if strings.Contains(out.String(), "ERROR") {
		t.Fatalf("unexpected ERROR row:\n%s", out.String())
	}
}

// TestFaultInjectedSweep arms a failpoint for one circuit: its row must
// report failed, every other circuit must still complete, and the exit
// code must be non-zero.
func TestFaultInjectedSweep(t *testing.T) {
	const victim = "s35932"
	args := append([]string{"-faultinject", victim}, sweepArgs...)
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstderr:\n%s\nstdout:\n%s", code, errOut.String(), out.String())
	}
	if !strings.Contains(errOut.String(), "FAILED: "+victim) {
		t.Errorf("stderr summary does not name the failed circuit:\n%s", errOut.String())
	}
	sawVictim := false
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.HasPrefix(line, victim+" ") {
			continue
		}
		sawVictim = true
		if !strings.Contains(line, "failed") || !strings.Contains(line, "ERROR") {
			t.Errorf("victim row not reported as failed: %q", line)
		}
		if !strings.Contains(line, "injected fault") {
			t.Errorf("victim row does not carry the injected-fault cause: %q", line)
		}
	}
	if !sawVictim {
		t.Fatalf("no row for fault-injected circuit %s:\n%s", victim, out.String())
	}
	// Every other circuit still produced a full-strength row.
	for _, name := range tableINames(t) {
		if name == victim {
			continue
		}
		found := false
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, name+" ") && strings.Contains(line, " ok ") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("circuit %s did not complete ok alongside the injected fault", name)
		}
	}
}

// TestTraceRoundTrip drives the acceptance path of the telemetry layer:
// a -trace sweep of a real netlist must emit JSONL that replays into a
// RunStats whose top-level phase durations cover at least 90% of the
// run's wall-clock, and whose report renders.
func TestTraceRoundTrip(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	args := []string{"-in", "../../testdata/s27.bench", "-frames", "2", "-words", "1",
		"-trace", trace, "-metrics"}
	var out, errOut strings.Builder
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, want 0\nstderr:\n%s\nstdout:\n%s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "phases") {
		t.Errorf("-metrics did not add the phase-breakdown column:\n%s", out.String())
	}

	f, err := os.Open(trace)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	defer f.Close()
	recs, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
	runs := telemetry.Replay(recs)
	s := runs["s27"]
	if s == nil {
		t.Fatalf("no run labelled s27 in trace (%d runs)", len(runs))
	}
	if !s.Observed(telemetry.PhaseSynthesize) || !s.Observed(telemetry.PhaseMinimize) {
		t.Errorf("expected phases missing: synthesize=%v minimize=%v",
			s.Observed(telemetry.PhaseSynthesize), s.Observed(telemetry.PhaseMinimize))
	}
	if s.Counter(telemetry.CounterSteps) == 0 {
		t.Error("steps counter is zero")
	}
	level, frac := s.Coverage()
	if level != 0 || frac < 0.9 {
		t.Errorf("level-%d coverage %.1f%%, want level 0 >= 90%%", level, 100*frac)
	}
	var report strings.Builder
	if err := s.WriteReport(&report, "s27"); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	if !strings.Contains(report.String(), "== run s27 ==") {
		t.Errorf("report malformed:\n%s", report.String())
	}
}

// TestBadFlags checks that configuration errors exit 2 without running.
func TestBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-engine", "quantum"}, &out, &errOut); code != 2 {
		t.Fatalf("bad engine: exit %d, want 2", code)
	}
	if code := run([]string{"-scale", "zero", "-circuits", "s27", "-frames", "2", "-words", "1"}, &out, &errOut); code != 1 {
		t.Fatalf("bad scale: exit %d, want 1 (failed row)", code)
	}
}

func tableINames(t *testing.T) []string {
	t.Helper()
	names := serretime.TableICircuits()
	if len(names) != 21 {
		t.Fatalf("Table I has %d circuits, want 21", len(names))
	}
	return names
}
