package main

// serbench -crashbin: a kill-recover chaos harness for the serretimed
// daemon's persistent store. The harness runs the daemon through two
// lives on one data directory:
//
//	life 1: boot a child serretimed on -crashdir, burst the sweep's
//	        payloads at it, download every confirmed result, then
//	        SIGKILL the child mid-burst — no drain, no WAL close.
//	life 2: reboot on the same directory, resubmit every payload, and
//	        demand each confirmed pre-crash job answers disposition
//	        "cached" with the byte-identical retimed netlist. The
//	        recovery counters from /healthz are printed, and /metrics
//	        is snapshotted to -crashmetrics for CI artifacts.
//
// Exit status: 0 = every pre-crash result survived the crash verbatim,
// 1 = a lost, re-solved or differing result, 2 = harness/usage error.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"

	"serretime/internal/telemetry"
)

// child is one serretimed process the harness controls.
type child struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startChild boots the daemon on a kernel-chosen port and waits for its
// "listening on" line. The child's stderr (recovery and degradation
// logs) streams through to the harness's stderr.
func startChild(ctx context.Context, cfg config, stderr io.Writer) (*child, error) {
	cmd := exec.Command(cfg.crashBin, "-addr", "127.0.0.1:0", "-data-dir", cfg.crashDir)
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}

	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(stderr, line)
			if rest, ok := strings.CutPrefix(line, "serretimed: listening on "); ok {
				addr <- strings.TrimSpace(rest)
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
			fmt.Fprintln(stderr, sc.Text())
		}
		close(addr)
	}()
	select {
	case a, ok := <-addr:
		if !ok || a == "" {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
			return nil, fmt.Errorf("daemon exited before listening")
		}
		return &child{cmd: cmd, base: "http://" + a}, nil
	case <-ctx.Done():
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		return nil, fmt.Errorf("daemon never announced its address: %w", ctx.Err())
	}
}

// kill SIGKILLs the child: the crash under test. No drain, no close —
// whatever the WAL holds is all the next life gets.
func (c *child) kill() {
	_ = c.cmd.Process.Signal(syscall.SIGKILL)
	_, _ = c.cmd.Process.Wait()
}

// runCrash is the -crashbin entry point.
func runCrash(cfg config, stdout, stderr io.Writer) int {
	payloads, err := servePayloads(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "serbench: crash: %v\n", err)
		return 2
	}
	if cfg.crashDir == "" {
		dir, err := os.MkdirTemp("", "serbench-crash-*")
		if err != nil {
			fmt.Fprintf(stderr, "serbench: crash: %v\n", err)
			return 2
		}
		defer os.RemoveAll(dir)
		cfg.crashDir = dir
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.serveWait)
	defer cancel()
	client := &http.Client{Timeout: 60 * time.Second}

	// Life 1: confirm one result per payload, with the rest of the burst
	// in flight around the kill.
	c1, err := startChild(ctx, cfg, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "serbench: crash: life 1: %v\n", err)
		return 2
	}
	defer c1.kill()
	fmt.Fprintf(stdout, "crash harness: life 1 on %s (data dir %s)\n", c1.base, cfg.crashDir)

	want := make([][]byte, len(payloads))
	errs := make([]error, len(payloads))
	var wg sync.WaitGroup
	for i, p := range payloads {
		wg.Add(1)
		go func(i int, p payload) {
			defer wg.Done()
			msg, _, err := submitOne(ctx, client, submitURLAt(cfg, c1.base, p.name), p.body, telemetry.NewTraceID())
			if err == nil && msg.Status != "done" && msg.Status != "failed" {
				msg, err = pollJob(ctx, client, c1.base, msg.ID, cfg.pollInterval)
			}
			if err == nil && msg.Status == "failed" {
				err = fmt.Errorf("job failed (%s): %s", msg.ErrorClass, msg.Error)
			}
			if err == nil {
				want[i], err = fetchResult(ctx, client, c1.base, msg.ID)
			}
			errs[i] = err
		}(i, p)
	}
	// Extra burst pressure: fire-and-forget resubmissions that are still
	// in flight when the SIGKILL lands.
	extraCtx, extraCancel := context.WithCancel(ctx)
	var extra sync.WaitGroup
	for i := len(payloads); i < cfg.burst; i++ {
		extra.Add(1)
		go func(p payload) {
			defer extra.Done()
			_, _, _ = submitOne(extraCtx, client, submitURLAt(cfg, c1.base, p.name), p.body, telemetry.NewTraceID())
		}(payloads[i%len(payloads)])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			extraCancel()
			fmt.Fprintf(stderr, "serbench: crash: life 1: %s: %v\n", payloads[i].name, err)
			return 2
		}
	}
	fmt.Fprintf(stdout, "crash harness: %d payload(s) confirmed done, sending SIGKILL\n", len(payloads))
	c1.kill()
	extraCancel()
	extra.Wait()

	// Life 2: same directory. Every confirmed job must come back as a
	// cache hit with identical bytes — a re-solve would also be a bug,
	// because it means the store lost a journaled result.
	c2, err := startChild(ctx, cfg, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "serbench: crash: life 2: %v\n", err)
		return 2
	}
	defer c2.kill()
	fmt.Fprintf(stdout, "crash harness: life 2 on %s\n", c2.base)

	var cached, lost, differ int
	for i, p := range payloads {
		msg, _, err := submitOne(ctx, client, submitURLAt(cfg, c2.base, p.name), p.body, telemetry.NewTraceID())
		if err != nil {
			fmt.Fprintf(stderr, "serbench: crash: life 2: %s: %v\n", p.name, err)
			return 2
		}
		if msg.Disposition != "cached" {
			lost++
			fmt.Fprintf(stderr, "serbench: crash: %s: disposition %q after recovery, want cached\n", p.name, msg.Disposition)
			continue
		}
		got, err := fetchResult(ctx, client, c2.base, msg.ID)
		if err != nil {
			fmt.Fprintf(stderr, "serbench: crash: life 2: %s: %v\n", p.name, err)
			return 2
		}
		if !bytes.Equal(got, want[i]) {
			differ++
			fmt.Fprintf(stderr, "serbench: crash: %s: recovered result differs from pre-crash bytes\n", p.name)
			continue
		}
		cached++
	}

	health := crashHealth(ctx, client, c2.base, stderr)
	if cfg.crashMetrics != "" {
		if err := snapshotMetrics(ctx, client, c2.base, cfg.crashMetrics); err != nil {
			fmt.Fprintf(stderr, "serbench: crash: metrics snapshot: %v\n", err)
			return 2
		}
	}

	fmt.Fprintf(stdout, "crash harness summary\n")
	fmt.Fprintf(stdout, "  payloads           %d (%s)\n", len(payloads), payloadNames(payloads))
	fmt.Fprintf(stdout, "  cached after crash %d\n", cached)
	fmt.Fprintf(stdout, "  lost (re-solved)   %d\n", lost)
	fmt.Fprintf(stdout, "  byte mismatches    %d\n", differ)
	fmt.Fprintf(stdout, "  recovered finished %d\n", health.RecoveredFinished)
	fmt.Fprintf(stdout, "  recovered requeued %d\n", health.RecoveredRequeued)
	fmt.Fprintf(stdout, "  quarantined        %d\n", health.Quarantined)
	if lost > 0 || differ > 0 {
		return 1
	}
	fmt.Fprintf(stdout, "crash harness: all %d pre-crash result(s) survived the kill byte-identically\n", cached)
	return 0
}

// submitURLAt is submitURL against an explicit base URL (the harness
// talks to children on kernel-chosen ports, not cfg.serveURL).
func submitURLAt(cfg config, base, name string) string {
	cfg.serveURL = base
	return submitURL(cfg, name)
}

// crashHealthMsg is the slice of /healthz the harness reports.
type crashHealthMsg struct {
	StoreMode         string `json:"store_mode"`
	RecoveredFinished int    `json:"recovered_finished"`
	RecoveredRequeued int    `json:"recovered_requeued"`
	Quarantined       int    `json:"quarantined"`
}

func crashHealth(ctx context.Context, client *http.Client, base string, stderr io.Writer) crashHealthMsg {
	var h crashHealthMsg
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return h
	}
	resp, err := client.Do(req)
	if err != nil {
		fmt.Fprintf(stderr, "serbench: crash: healthz: %v\n", err)
		return h
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &h)
	return h
}

// snapshotMetrics downloads /metrics into a file, for CI artifacts.
func snapshotMetrics(ctx context.Context, client *http.Client, base, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	return os.WriteFile(path, data, 0o644)
}
