// Command serbench regenerates Table I of Lu & Zhou, DATE 2013: for every
// benchmark it runs the Efficient MinObs baseline and the MinObsWin
// algorithm from the Section V initialization and reports circuit
// statistics, SER changes, register changes, iteration counts and run
// times, next to the paper's published numbers.
//
// The ISCAS89/ITC99 netlists the paper used are not redistributable;
// seeded synthetic substitutes reproduce each circuit's published |V|,
// |E|, #FF and clock-period regime (see DESIGN.md §4). Absolute SER values
// therefore differ; the comparison targets the shape: who wins, by what
// factor, and where the two algorithms coincide.
//
// Usage:
//
//	serbench [-scale auto|N] [-circuits name,name,...] [-parallel N]
//	         [-frames N] [-words N] [-engine closure|forest] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"serretime"
	"serretime/internal/gen"
)

type row struct {
	name             string
	scale            int
	stats            serretime.Stats
	phi              float64
	shOK             bool
	serOrig          float64
	ref, win         *serretime.RetimeResult
	refTime, winTime time.Duration
	err              error
	paper            gen.TableISpec
}

func main() {
	var (
		scaleFlag = flag.String("scale", "auto", "shrink factor: auto, or an integer >= 1 applied to every circuit")
		circuits  = flag.String("circuits", "", "comma-separated circuit names (default: all 21 of Table I)")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "circuits processed concurrently")
		frames    = flag.Int("frames", 15, "time-frame expansion depth n")
		words     = flag.Int("words", 4, "signature width in 64-bit words")
		engine    = flag.String("engine", "closure", "optimizer engine: closure or forest")
		verify    = flag.Bool("verify", false, "co-simulate every optimizer move for sequential equivalence")
		autoCap   = flag.Int("autocap", 12000, "with -scale auto, target gate count per circuit")
	)
	flag.Parse()

	names := serretime.TableICircuits()
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}
	eng := serretime.EngineClosure
	if *engine == "forest" {
		eng = serretime.EngineForest
	} else if *engine != "closure" {
		fmt.Fprintf(os.Stderr, "serbench: unknown engine %q\n", *engine)
		os.Exit(2)
	}

	rows := make([]*row, len(names))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxInt(*parallel, 1))
	for i, name := range names {
		i, name := i, name
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i] = runOne(name, *scaleFlag, *autoCap, *frames, *words, eng, *verify)
		}()
	}
	wg.Wait()
	printTable(rows)
}

func runOne(name, scaleFlag string, autoCap, frames, words int, eng serretime.EngineKind, verify bool) *row {
	r := &row{name: name}
	spec, err := gen.FindTableI(name)
	if err != nil {
		r.err = err
		return r
	}
	r.paper = spec
	r.scale = 1
	switch scaleFlag {
	case "auto":
		r.scale = (spec.Gates + autoCap - 1) / autoCap
	default:
		n, err := strconv.Atoi(scaleFlag)
		if err != nil || n < 1 {
			r.err = fmt.Errorf("bad -scale %q", scaleFlag)
			return r
		}
		r.scale = n
	}
	d, err := serretime.NewTableIDesign(name, r.scale)
	if err != nil {
		r.err = err
		return r
	}
	r.stats, err = d.Stats()
	if err != nil {
		r.err = err
		return r
	}
	opts := serretime.RetimeOptions{
		Algorithm: serretime.MinObs,
		Analysis:  serretime.AnalysisOptions{Frames: frames, SignatureWords: words},
		Engine:    eng,
		Verify:    verify,
	}
	start := time.Now()
	r.ref, err = d.Retime(opts)
	r.refTime = time.Since(start)
	if err != nil {
		r.err = err
		return r
	}
	opts.Algorithm = serretime.MinObsWin
	start = time.Now()
	r.win, err = d.Retime(opts)
	r.winTime = time.Since(start)
	if err != nil {
		r.err = err
		return r
	}
	r.phi = r.win.Phi
	r.shOK = r.win.SetupHoldOK
	r.serOrig = r.win.Before.SER
	return r
}

func printTable(rows []*row) {
	fmt.Println("Reproduction of Table I (Lu & Zhou, DATE 2013) on synthetic substitutes")
	fmt.Println("paper columns in [brackets]; ratio = SER_ref / SER_new")
	fmt.Println()
	fmt.Printf("%-12s %5s %7s %8s %7s %6s %3s %9s | %8s %8s %7s | %8s %8s %7s %3s | %7s %7s\n",
		"circuit", "scale", "|V|", "|E|", "#FF", "phi", "sh", "SER",
		"dSERref", "[paper]", "t_ref", "dSERnew", "[paper]", "t_new", "#J", "ratio", "[paper]")
	var sumRef, sumWin, sumRatio float64
	var n int
	for _, r := range rows {
		if r == nil {
			continue
		}
		if r.err != nil {
			fmt.Printf("%-12s ERROR: %v\n", r.name, r.err)
			continue
		}
		ratio := 100.0
		if r.win.After.SER > 0 {
			ratio = 100 * r.ref.After.SER / r.win.After.SER
		}
		sh := "no"
		if r.shOK {
			sh = "yes"
		}
		fmt.Printf("%-12s %5d %7d %8d %7d %6.1f %3s %9.2e | %7.2f%% %7.2f%% %6.2fs | %7.2f%% %7.2f%% %6.2fs %3d | %6.1f%% %6.0f%%\n",
			r.name, r.scale, r.stats.Vertices, r.stats.Edges, int64(r.win.Before.SharedFFs),
			r.phi, sh, r.serOrig,
			r.ref.DeltaSER(), r.paper.PaperDSERRef, r.refTime.Seconds(),
			r.win.DeltaSER(), r.paper.PaperDSERNew, r.winTime.Seconds(), r.win.Rounds,
			ratio, r.paper.PaperRatio)
		sumRef += r.ref.DeltaSER()
		sumWin += r.win.DeltaSER()
		sumRatio += ratio
		n++
	}
	if n > 0 {
		fmt.Printf("%-12s %s\n", "AVG.", strings.Repeat("-", 40))
		fmt.Printf("%-12s mean dSER: MinObs %.2f%% [paper -26.70%%]   MinObsWin %.2f%% [paper -32.70%%]   mean ratio %.1f%% [paper 115%%]\n",
			"", sumRef/float64(n), sumWin/float64(n), sumRatio/float64(n))
	}
	// Register deltas, compactly.
	fmt.Println()
	fmt.Printf("%-12s %9s %9s | %9s %9s\n", "circuit", "dFFref", "[paper]", "dFFnew", "[paper]")
	for _, r := range rows {
		if r == nil || r.err != nil {
			continue
		}
		fmt.Printf("%-12s %8.2f%% %8.2f%% | %8.2f%% %8.2f%%\n",
			r.name, r.ref.DeltaFF(), r.paper.PaperDFFRef, r.win.DeltaFF(), r.paper.PaperDFFNew)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
