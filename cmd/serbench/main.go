// Command serbench regenerates Table I of Lu & Zhou, DATE 2013: for every
// benchmark it runs the Efficient MinObs baseline and the MinObsWin
// algorithm from the Section V initialization and reports circuit
// statistics, SER changes, register changes, iteration counts and run
// times, next to the paper's published numbers.
//
// The ISCAS89/ITC99 netlists the paper used are not redistributable;
// seeded synthetic substitutes reproduce each circuit's published |V|,
// |E|, #FF and clock-period regime (see DESIGN.md §4). Absolute SER values
// therefore differ; the comparison targets the shape: who wins, by what
// factor, and where the two algorithms coincide. Real netlists can be
// swept instead of the Table I set with -in file.bench,file2.blif,...
//
// Every circuit runs under panic isolation and the graceful-degradation
// chain of serretime.RetimeRobust: a crash, stall, or timeout in one
// circuit is reported as a failed (or degraded) row while the rest of
// the sweep completes. The exit status is 0 only when every row is a
// full-strength result; 2 when some rows degraded; 1 when any failed.
//
// Observability: -trace streams every solver phase span and counter as
// JSONL (one run label per circuit; read back with seranalyze -trace),
// -metrics adds a per-row phase-breakdown column from an in-memory
// collector — including the optimizer's incremental-hit ratio inc=P/T
// (P label patches out of T label updates; T−P were full recomputes) and,
// with -workers > 1, the sharded analyses' pool utilization util=U% w=K —
// and -cpuprofile/-memprofile write standard runtime/pprof profiles of
// the sweep. -checklabels cross-checks every incremental label patch
// against the full elw.ComputeLabels oracle; a divergence fails the row
// (and the sweep exits non-zero) even when the degradation chain found a
// weaker-tier answer, because a mismatch proves a solver-state bug.
//
// Usage:
//
//	serbench [-scale auto|N] [-circuits name,name,...] [-in files] [-parallel N]
//	         [-workers N] [-frames N] [-words N] [-engine closure|forest] [-verify]
//	         [-timeout D] [-retries N] [-stallsteps N] [-faultinject names]
//	         [-trace out.jsonl] [-metrics] [-checklabels]
//	         [-cpuprofile f] [-memprofile f]
//
// ECO mode (-eco netlist.bench) replaces the sweep with a warm-session
// delta stream: generated single-gate perturbations are re-solved
// incrementally through a serretime.WarmState and every result is
// byte-compared against a cold full solve of the same mutated netlist
// (the oracle). Alone it benchmarks in-process and prints
// benchjson-compatible lines (`make bench-eco` → BENCH_eco.json); with
// -serve it drives a running serretimed's /v1/sessions API instead
// (eco.go).
//
// Two further client modes replace the in-process sweep: -serve bursts the
// payload set at a running serretimed and verifies its caching and
// determinism promises (serve.go) — it mints a trace ID per submission,
// propagates it via the Traceparent header, prints client-side
// submit→result latency percentiles, and with -trace downloads every
// job's persisted span tree to a JSONL file (exit 1 if any accepted
// job's trace is missing; aggregate with seranalyze -tracedir) — and
// -crashbin runs a kill-recover
// chaos harness — boot a child daemon on a data directory, burst,
// SIGKILL it mid-burst, reboot on the same directory, and demand every
// confirmed pre-crash result is served as a byte-identical cache hit
// (crash.go).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"serretime"
	"serretime/internal/gen"
	"serretime/internal/guard"
	"serretime/internal/solverstate"
	"serretime/internal/telemetry"
)

type row struct {
	name             string
	scale            int
	stats            serretime.Stats
	phi              float64
	shOK             bool
	serOrig          float64
	ref, win         *serretime.RetimeResult
	refTier, winTier serretime.Tier
	degraded         bool
	refTime, winTime time.Duration
	err              error
	paper            gen.TableISpec
	phases           string // -metrics: level-1 phase breakdown of the row's run
}

// status renders the row's outcome for the table's status column.
func (r *row) status() string {
	switch {
	case r.err != nil:
		return "failed"
	case r.degraded:
		return "degraded:" + r.winTier.String()
	}
	return "ok"
}

type config struct {
	scaleFlag   string
	circuits    string
	inFiles     string
	parallel    int
	workers     int
	frames      int
	words       int
	engine      string
	accuracy    string
	acc         serretime.Accuracy
	verify      bool
	autoCap     int
	timeout     time.Duration
	retries     int
	stallSteps  int
	faultInject string
	tracePath   string
	metrics     bool
	checkLabels bool
	cpuProfile  string
	memProfile  string

	// -serve client mode (see serve.go)
	serveURL     string
	burst        int
	pollInterval time.Duration
	serveWait    time.Duration

	// -crashbin chaos-harness mode (see crash.go)
	crashBin     string
	crashDir     string
	crashMetrics string

	// -eco warm-session mode (see eco.go)
	ecoPath   string
	ecoDeltas int
	ecoSeed   int64
	ecoMin    float64
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// job is one sweep entry: a Table I circuit by name, or (with -in) a
// netlist file to load.
type job struct {
	name string
	path string // empty for Table I synthetic circuits
}

// run is the testable entry point: it parses args, sweeps the circuits,
// prints the table to stdout, and returns the process exit code
// (0 = all rows full strength, 2 = some degraded, 1 = some failed).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("serbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.scaleFlag, "scale", "auto", "shrink factor: auto, or an integer >= 1 applied to every circuit")
	fs.StringVar(&cfg.circuits, "circuits", "", "comma-separated circuit names (default: all 21 of Table I)")
	fs.StringVar(&cfg.inFiles, "in", "", "comma-separated netlist files (.bench/.blif/.v) swept instead of the Table I set")
	fs.IntVar(&cfg.parallel, "parallel", runtime.GOMAXPROCS(0), "circuits processed concurrently")
	fs.IntVar(&cfg.workers, "workers", 1, "CPU workers sharding each circuit's analysis phases (0 = one per CPU, 1 = sequential); results are identical for every value")
	fs.IntVar(&cfg.frames, "frames", 15, "time-frame expansion depth n")
	fs.IntVar(&cfg.words, "words", 4, "signature width in 64-bit words")
	fs.StringVar(&cfg.engine, "engine", "closure", "optimizer engine: closure or forest")
	fs.StringVar(&cfg.accuracy, "accuracy", "exact", "observability engine: exact (signature simulation) or fast (analytical propagation probabilities); fast raises the -autocap default to 120000 unless -autocap is given")
	fs.BoolVar(&cfg.verify, "verify", false, "co-simulate every optimizer move for sequential equivalence")
	fs.IntVar(&cfg.autoCap, "autocap", 12000, "with -scale auto, target gate count per circuit; 12000 assumes the flat CSR engine (README \"Benchmark scaling\"), lower it on memory-constrained hosts")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "per-attempt wall-clock budget per circuit (0 = unbounded)")
	fs.IntVar(&cfg.retries, "retries", 0, "extra attempts per degradation tier after a transient failure")
	fs.IntVar(&cfg.stallSteps, "stallsteps", 0, "abort an optimizer run after this many steps without improvement (0 = off)")
	fs.StringVar(&cfg.faultInject, "faultinject", "", "comma-separated circuit names whose runs are fault-injected (testing)")
	fs.StringVar(&cfg.tracePath, "trace", "", "write a JSONL telemetry trace of every run (read with seranalyze -trace); with -serve, collect every job's span tree as JSONL trace docs (read with seranalyze -tracedir)")
	fs.BoolVar(&cfg.metrics, "metrics", false, "collect per-circuit phase metrics and add a phase-breakdown column")
	fs.BoolVar(&cfg.checkLabels, "checklabels", false, "cross-check every incremental label patch against the full-recompute oracle; mismatches fail the row")
	fs.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile of the sweep")
	fs.StringVar(&cfg.memProfile, "memprofile", "", "write a heap profile at the end of the sweep")
	fs.StringVar(&cfg.serveURL, "serve", "", "load-generator client mode: hammer a running serretimed at this base URL instead of solving in-process")
	fs.IntVar(&cfg.burst, "burst", 64, "with -serve, concurrent submissions in the burst")
	fs.DurationVar(&cfg.pollInterval, "poll", 200*time.Millisecond, "with -serve, job status poll interval")
	fs.DurationVar(&cfg.serveWait, "servewait", 10*time.Minute, "with -serve, overall client deadline for the burst")
	fs.StringVar(&cfg.crashBin, "crashbin", "", "chaos-harness mode: kill-recover test this serretimed binary instead of sweeping in-process")
	fs.StringVar(&cfg.crashDir, "crashdir", "", "with -crashbin, the child daemon's -data-dir (default: a temp dir, removed afterwards)")
	fs.StringVar(&cfg.crashMetrics, "crashmetrics", "", "with -crashbin, snapshot the post-recovery /metrics page to this file")
	fs.StringVar(&cfg.ecoPath, "eco", "", "ECO mode: stream generated deltas against this base netlist, oracle-checking every incremental result against a cold full solve; alone it benchmarks in-process (pipe to cmd/benchjson), with -serve it drives a running serretimed's session API")
	fs.IntVar(&cfg.ecoDeltas, "deltas", 16, "with -eco, perturbations to apply")
	fs.Int64Var(&cfg.ecoSeed, "ecoseed", 1, "with -eco, delta-generator seed")
	fs.Float64Var(&cfg.ecoMin, "ecomin", 0, "with -eco, fail (exit 2) when the warm/cold speedup is below this factor (0 = report only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	acc, err := serretime.ParseAccuracy("serbench", cfg.accuracy)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	cfg.acc = acc
	if acc == serretime.AccuracyFast {
		// The analytical engine is linear in circuit size, so auto-scale
		// can afford an order of magnitude more gates per circuit.
		explicit := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "autocap" {
				explicit = true
			}
		})
		if !explicit {
			cfg.autoCap = 120000
		}
	}
	eng := serretime.EngineClosure
	if cfg.engine == "forest" {
		eng = serretime.EngineForest
	} else if cfg.engine != "closure" {
		fmt.Fprintf(stderr, "serbench: unknown engine %q\n", cfg.engine)
		return 2
	}
	if cfg.crashBin != "" {
		return runCrash(cfg, stdout, stderr)
	}
	if cfg.ecoPath != "" {
		return runECO(cfg, eng, stdout, stderr)
	}
	if cfg.serveURL != "" {
		return runServe(cfg, stdout, stderr)
	}

	var jobs []job
	if cfg.inFiles != "" {
		for _, p := range strings.Split(cfg.inFiles, ",") {
			base := filepath.Base(p)
			jobs = append(jobs, job{name: strings.TrimSuffix(base, filepath.Ext(base)), path: p})
		}
	} else {
		names := serretime.TableICircuits()
		if cfg.circuits != "" {
			names = strings.Split(cfg.circuits, ",")
		}
		for _, n := range names {
			jobs = append(jobs, job{name: n})
		}
	}
	if cfg.faultInject != "" {
		for _, n := range strings.Split(cfg.faultInject, ",") {
			guard.ArmFailpoint("serbench.circuit:" + n)
			defer guard.DisarmFailpoint("serbench.circuit:" + n)
		}
	}

	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "serbench: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "serbench: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	var tw *telemetry.JSONLWriter
	if cfg.tracePath != "" {
		f, err := os.Create(cfg.tracePath)
		if err != nil {
			fmt.Fprintf(stderr, "serbench: %v\n", err)
			return 2
		}
		tw = telemetry.NewJSONLWriter(f)
		defer func() {
			if err := tw.Flush(); err != nil {
				fmt.Fprintf(stderr, "serbench: trace: %v\n", err)
			}
			f.Close()
		}()
	}

	rows := make([]*row, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(cfg.parallel, 1))
	for i, j := range jobs {
		// Acquire before spawning: with -parallel N only N goroutines exist
		// at a time, instead of one (mostly blocked) goroutine per job.
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			defer func() { <-sem }()
			rows[i] = runOne(j, cfg, eng, tw)
		}(i, j)
	}
	wg.Wait()
	printTable(stdout, rows, cfg.metrics)

	if cfg.memProfile != "" {
		f, err := os.Create(cfg.memProfile)
		if err != nil {
			fmt.Fprintf(stderr, "serbench: %v\n", err)
		} else {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "serbench: %v\n", err)
			}
			f.Close()
		}
	}

	var failed, degraded []string
	for _, r := range rows {
		switch {
		case r == nil:
		case r.err != nil:
			failed = append(failed, r.name)
		case r.degraded:
			degraded = append(degraded, r.name)
		}
	}
	switch {
	case len(failed) > 0:
		fmt.Fprintf(stderr, "serbench: %d circuit(s) FAILED: %s", len(failed), strings.Join(failed, ", "))
		if len(degraded) > 0 {
			fmt.Fprintf(stderr, "; %d degraded: %s", len(degraded), strings.Join(degraded, ", "))
		}
		fmt.Fprintln(stderr)
		return 1
	case len(degraded) > 0:
		fmt.Fprintf(stderr, "serbench: %d circuit(s) degraded: %s\n", len(degraded), strings.Join(degraded, ", "))
		return 2
	}
	return 0
}

func runOne(j job, cfg config, eng serretime.EngineKind, tw *telemetry.JSONLWriter) *row {
	r := &row{name: j.name}
	ctx := context.Background()

	// Per-circuit recorders: a run-labelled view of the shared trace, an
	// in-memory collector for the -metrics column, or both.
	var col *telemetry.Collector
	var recs []telemetry.Recorder
	if cfg.metrics {
		col = telemetry.NewCollector()
		recs = append(recs, col)
	}
	if tw != nil {
		recs = append(recs, tw.Run(j.name))
	}
	rec := telemetry.Tee(recs...)
	defer func() {
		if col != nil {
			s := col.Stats()
			r.phases = s.PhaseBreakdown(3)
			// Incremental-hit ratio of the solver state: patched label
			// updates out of all label updates (the rest were full
			// recomputes — seed misses and fallbacks).
			patched := s.Counter(telemetry.CounterLabelPatches)
			total := patched + s.Counter(telemetry.CounterLabelFulls)
			if total > 0 {
				r.phases += fmt.Sprintf(" inc=%d/%d", patched, total)
			}
			// Worker-pool utilization of the sharded analyses: busy time
			// summed over workers against wall time scaled by the pool
			// width. Absent when every pool ran inline (-workers 1).
			if wall, w := s.Counter(telemetry.CounterParWallNanos), s.Gauge(telemetry.GaugeParWorkers); wall > 0 && w > 0 {
				util := 100 * float64(s.Counter(telemetry.CounterParBusyNanos)) / (float64(wall) * float64(w))
				r.phases += fmt.Sprintf(" util=%.0f%% w=%d", util, w)
			}
		}
	}()

	// Test hook: a fault armed for this circuit panics here; guard.Run
	// turns it into a failed row instead of a crashed sweep.
	if err := guard.Run(ctx, "serbench."+j.name, func(context.Context) error {
		guard.Failpoint("serbench.circuit:" + j.name)
		return nil
	}); err != nil {
		r.err = err
		return r
	}

	rec.SpanStart(telemetry.PhaseSynthesize)
	d, err := synthesize(j, cfg, r)
	rec.SpanEnd(telemetry.PhaseSynthesize, err)
	if err != nil {
		r.err = err
		return r
	}
	ropt := serretime.RobustOptions{
		RetimeOptions: serretime.RetimeOptions{
			Algorithm:   serretime.MinObs,
			Analysis:    serretime.AnalysisOptions{Accuracy: cfg.acc, Frames: cfg.frames, SignatureWords: cfg.words},
			Engine:      eng,
			Verify:      cfg.verify,
			StallSteps:  cfg.stallSteps,
			CheckLabels: cfg.checkLabels,
			Recorder:    rec,
			Workers:     cfg.workers,
		},
		Timeout: cfg.timeout,
		Retries: cfg.retries,
	}
	start := time.Now()
	refRes, err := d.RetimeRobust(ctx, ropt)
	r.refTime = time.Since(start)
	if err != nil {
		r.err = err
		return r
	}
	if err := labelMismatch(refRes.Attempts); err != nil {
		r.err = err
		return r
	}
	r.ref, r.refTier = refRes.RetimeResult, refRes.Tier
	r.degraded = r.degraded || refRes.Degraded

	ropt.Algorithm = serretime.MinObsWin
	start = time.Now()
	winRes, err := d.RetimeRobust(ctx, ropt)
	r.winTime = time.Since(start)
	if err != nil {
		r.err = err
		return r
	}
	if err := labelMismatch(winRes.Attempts); err != nil {
		r.err = err
		return r
	}
	r.win, r.winTier = winRes.RetimeResult, winRes.Tier
	r.degraded = r.degraded || winRes.Degraded

	r.phi = r.win.Phi
	r.shOK = r.win.SetupHoldOK
	r.serOrig = r.win.Before.SER
	return r
}

// labelMismatch surfaces an oracle cross-check failure buried in the
// degradation chain: a mismatch proves a solver-state bug, so the row
// must fail loudly even when a weaker tier produced an answer.
func labelMismatch(attempts []serretime.Attempt) error {
	for _, a := range attempts {
		if a.Err != nil && errors.Is(a.Err, solverstate.ErrLabelMismatch) {
			return a.Err
		}
	}
	return nil
}

// synthesize produces the row's design: a scaled Table I synthetic, or a
// netlist loaded from disk (-in). It fills r.scale, r.paper and r.stats.
func synthesize(j job, cfg config, r *row) (*serretime.Design, error) {
	var d *serretime.Design
	r.scale = 1
	if j.path != "" {
		var err error
		if d, err = serretime.Load(j.path); err != nil {
			return nil, err
		}
	} else {
		spec, err := gen.FindTableI(j.name)
		if err != nil {
			return nil, err
		}
		r.paper = spec
		switch cfg.scaleFlag {
		case "auto":
			r.scale = (spec.Gates + cfg.autoCap - 1) / cfg.autoCap
		default:
			n, err := strconv.Atoi(cfg.scaleFlag)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad -scale %q", cfg.scaleFlag)
			}
			r.scale = n
		}
		if d, err = serretime.NewTableIDesign(j.name, r.scale); err != nil {
			return nil, err
		}
	}
	var err error
	r.stats, err = d.Stats()
	if err != nil {
		return nil, err
	}
	return d, nil
}

// tableRow is one line of a column-aligned table: either a full set of
// cells, or a short prefix followed by free-form text (error rows).
type tableRow struct {
	cells []string
	tail  string // printed verbatim after the cells when non-empty
}

// writeAligned prints rows with each column as wide as its widest cell.
// left marks left-aligned columns (default right); the last column is
// never padded.
func writeAligned(w io.Writer, rows []tableRow, left map[int]bool) {
	var width []int
	for _, r := range rows {
		for i, c := range r.cells {
			if i >= len(width) {
				width = append(width, 0)
			}
			width[i] = max(width[i], len(c))
		}
	}
	for _, r := range rows {
		var b strings.Builder
		for i, c := range r.cells {
			if i > 0 {
				b.WriteByte(' ')
			}
			last := i == len(r.cells)-1 && r.tail == ""
			switch {
			case last && left[i]:
				b.WriteString(c)
			case left[i]:
				b.WriteString(c + strings.Repeat(" ", width[i]-len(c)))
			default:
				b.WriteString(strings.Repeat(" ", width[i]-len(c)) + c)
			}
		}
		if r.tail != "" {
			b.WriteByte(' ')
			b.WriteString(r.tail)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

func printTable(w io.Writer, rows []*row, metrics bool) {
	fmt.Fprintln(w, "Reproduction of Table I (Lu & Zhou, DATE 2013) on synthetic substitutes")
	fmt.Fprintln(w, "paper columns in [brackets]; ratio = SER_ref / SER_new")
	fmt.Fprintln(w)

	header := []string{"circuit", "status", "scale", "|V|", "|E|", "#FF", "phi", "sh", "SER", "|",
		"dSERref", "[paper]", "t_ref", "|", "dSERnew", "[paper]", "t_new", "#J", "|", "ratio", "[paper]"}
	if metrics {
		header = append(header, "|", "phases")
	}
	left := map[int]bool{0: true, 1: true}
	if metrics {
		left[len(header)-1] = true
	}
	out := []tableRow{{cells: header}}
	var sumRef, sumWin, sumRatio float64
	var n int
	for _, r := range rows {
		if r == nil {
			continue
		}
		if r.err != nil {
			out = append(out, tableRow{
				cells: []string{r.name, r.status()},
				tail:  fmt.Sprintf("ERROR: %v", r.err),
			})
			continue
		}
		ratio := 100.0
		if r.win.After.SER > 0 {
			ratio = 100 * r.ref.After.SER / r.win.After.SER
		}
		sh := "no"
		if r.shOK {
			sh = "yes"
		}
		cells := []string{
			r.name, r.status(),
			strconv.Itoa(r.scale),
			strconv.Itoa(r.stats.Vertices),
			strconv.Itoa(r.stats.Edges),
			strconv.FormatInt(int64(r.win.Before.SharedFFs), 10),
			fmt.Sprintf("%.1f", r.phi),
			sh,
			fmt.Sprintf("%.2e", r.serOrig),
			"|",
			fmt.Sprintf("%.2f%%", r.ref.DeltaSER()),
			fmt.Sprintf("%.2f%%", r.paper.PaperDSERRef),
			fmt.Sprintf("%.2fs", r.refTime.Seconds()),
			"|",
			fmt.Sprintf("%.2f%%", r.win.DeltaSER()),
			fmt.Sprintf("%.2f%%", r.paper.PaperDSERNew),
			fmt.Sprintf("%.2fs", r.winTime.Seconds()),
			strconv.Itoa(r.win.Rounds),
			"|",
			fmt.Sprintf("%.1f%%", ratio),
			fmt.Sprintf("%.0f%%", r.paper.PaperRatio),
		}
		if metrics {
			cells = append(cells, "|", r.phases)
		}
		out = append(out, tableRow{cells: cells})
		sumRef += r.ref.DeltaSER()
		sumWin += r.win.DeltaSER()
		sumRatio += ratio
		n++
	}
	writeAligned(w, out, left)
	if n > 0 {
		fmt.Fprintf(w, "%s %s\n", "AVG.", strings.Repeat("-", 40))
		fmt.Fprintf(w, "mean dSER: MinObs %.2f%% [paper -26.70%%]   MinObsWin %.2f%% [paper -32.70%%]   mean ratio %.1f%% [paper 115%%]\n",
			sumRef/float64(n), sumWin/float64(n), sumRatio/float64(n))
	}
	// Register deltas, compactly.
	fmt.Fprintln(w)
	ffRows := []tableRow{{cells: []string{"circuit", "dFFref", "[paper]", "|", "dFFnew", "[paper]"}}}
	for _, r := range rows {
		if r == nil || r.err != nil {
			continue
		}
		ffRows = append(ffRows, tableRow{cells: []string{
			r.name,
			fmt.Sprintf("%.2f%%", r.ref.DeltaFF()),
			fmt.Sprintf("%.2f%%", r.paper.PaperDFFRef),
			"|",
			fmt.Sprintf("%.2f%%", r.win.DeltaFF()),
			fmt.Sprintf("%.2f%%", r.paper.PaperDFFNew),
		}})
	}
	writeAligned(w, ffRows, map[int]bool{0: true})
}
