// Command serbench regenerates Table I of Lu & Zhou, DATE 2013: for every
// benchmark it runs the Efficient MinObs baseline and the MinObsWin
// algorithm from the Section V initialization and reports circuit
// statistics, SER changes, register changes, iteration counts and run
// times, next to the paper's published numbers.
//
// The ISCAS89/ITC99 netlists the paper used are not redistributable;
// seeded synthetic substitutes reproduce each circuit's published |V|,
// |E|, #FF and clock-period regime (see DESIGN.md §4). Absolute SER values
// therefore differ; the comparison targets the shape: who wins, by what
// factor, and where the two algorithms coincide.
//
// Every circuit runs under panic isolation and the graceful-degradation
// chain of serretime.RetimeRobust: a crash, stall, or timeout in one
// circuit is reported as a failed (or degraded) row while the rest of
// the sweep completes. The exit status is 0 only when every row is a
// full-strength result; 2 when some rows degraded; 1 when any failed.
//
// Usage:
//
//	serbench [-scale auto|N] [-circuits name,name,...] [-parallel N]
//	         [-frames N] [-words N] [-engine closure|forest] [-verify]
//	         [-timeout D] [-retries N] [-stallsteps N] [-faultinject names]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"serretime"
	"serretime/internal/gen"
	"serretime/internal/guard"
)

type row struct {
	name             string
	scale            int
	stats            serretime.Stats
	phi              float64
	shOK             bool
	serOrig          float64
	ref, win         *serretime.RetimeResult
	refTier, winTier serretime.Tier
	degraded         bool
	refTime, winTime time.Duration
	err              error
	paper            gen.TableISpec
}

// status renders the row's outcome for the table's status column.
func (r *row) status() string {
	switch {
	case r.err != nil:
		return "failed"
	case r.degraded:
		return "degraded:" + r.winTier.String()
	}
	return "ok"
}

type config struct {
	scaleFlag   string
	circuits    string
	parallel    int
	frames      int
	words       int
	engine      string
	verify      bool
	autoCap     int
	timeout     time.Duration
	retries     int
	stallSteps  int
	faultInject string
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, sweeps the circuits,
// prints the table to stdout, and returns the process exit code
// (0 = all rows full strength, 2 = some degraded, 1 = some failed).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("serbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.scaleFlag, "scale", "auto", "shrink factor: auto, or an integer >= 1 applied to every circuit")
	fs.StringVar(&cfg.circuits, "circuits", "", "comma-separated circuit names (default: all 21 of Table I)")
	fs.IntVar(&cfg.parallel, "parallel", runtime.GOMAXPROCS(0), "circuits processed concurrently")
	fs.IntVar(&cfg.frames, "frames", 15, "time-frame expansion depth n")
	fs.IntVar(&cfg.words, "words", 4, "signature width in 64-bit words")
	fs.StringVar(&cfg.engine, "engine", "closure", "optimizer engine: closure or forest")
	fs.BoolVar(&cfg.verify, "verify", false, "co-simulate every optimizer move for sequential equivalence")
	fs.IntVar(&cfg.autoCap, "autocap", 12000, "with -scale auto, target gate count per circuit")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "per-attempt wall-clock budget per circuit (0 = unbounded)")
	fs.IntVar(&cfg.retries, "retries", 0, "extra attempts per degradation tier after a transient failure")
	fs.IntVar(&cfg.stallSteps, "stallsteps", 0, "abort an optimizer run after this many steps without improvement (0 = off)")
	fs.StringVar(&cfg.faultInject, "faultinject", "", "comma-separated circuit names whose runs are fault-injected (testing)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	names := serretime.TableICircuits()
	if cfg.circuits != "" {
		names = strings.Split(cfg.circuits, ",")
	}
	eng := serretime.EngineClosure
	if cfg.engine == "forest" {
		eng = serretime.EngineForest
	} else if cfg.engine != "closure" {
		fmt.Fprintf(stderr, "serbench: unknown engine %q\n", cfg.engine)
		return 2
	}
	if cfg.faultInject != "" {
		for _, n := range strings.Split(cfg.faultInject, ",") {
			guard.ArmFailpoint("serbench.circuit:" + n)
			defer guard.DisarmFailpoint("serbench.circuit:" + n)
		}
	}

	rows := make([]*row, len(names))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxInt(cfg.parallel, 1))
	for i, name := range names {
		i, name := i, name
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i] = runOne(name, cfg, eng)
		}()
	}
	wg.Wait()
	printTable(stdout, rows)

	var failed, degraded []string
	for _, r := range rows {
		switch {
		case r == nil:
		case r.err != nil:
			failed = append(failed, r.name)
		case r.degraded:
			degraded = append(degraded, r.name)
		}
	}
	switch {
	case len(failed) > 0:
		fmt.Fprintf(stderr, "serbench: %d circuit(s) FAILED: %s", len(failed), strings.Join(failed, ", "))
		if len(degraded) > 0 {
			fmt.Fprintf(stderr, "; %d degraded: %s", len(degraded), strings.Join(degraded, ", "))
		}
		fmt.Fprintln(stderr)
		return 1
	case len(degraded) > 0:
		fmt.Fprintf(stderr, "serbench: %d circuit(s) degraded: %s\n", len(degraded), strings.Join(degraded, ", "))
		return 2
	}
	return 0
}

func runOne(name string, cfg config, eng serretime.EngineKind) *row {
	r := &row{name: name}
	ctx := context.Background()

	// Test hook: a fault armed for this circuit panics here; guard.Run
	// turns it into a failed row instead of a crashed sweep.
	if err := guard.Run(ctx, "serbench."+name, func(context.Context) error {
		guard.Failpoint("serbench.circuit:" + name)
		return nil
	}); err != nil {
		r.err = err
		return r
	}

	spec, err := gen.FindTableI(name)
	if err != nil {
		r.err = err
		return r
	}
	r.paper = spec
	r.scale = 1
	switch cfg.scaleFlag {
	case "auto":
		r.scale = (spec.Gates + cfg.autoCap - 1) / cfg.autoCap
	default:
		n, err := strconv.Atoi(cfg.scaleFlag)
		if err != nil || n < 1 {
			r.err = fmt.Errorf("bad -scale %q", cfg.scaleFlag)
			return r
		}
		r.scale = n
	}
	d, err := serretime.NewTableIDesign(name, r.scale)
	if err != nil {
		r.err = err
		return r
	}
	r.stats, err = d.Stats()
	if err != nil {
		r.err = err
		return r
	}
	ropt := serretime.RobustOptions{
		RetimeOptions: serretime.RetimeOptions{
			Algorithm:  serretime.MinObs,
			Analysis:   serretime.AnalysisOptions{Frames: cfg.frames, SignatureWords: cfg.words},
			Engine:     eng,
			Verify:     cfg.verify,
			StallSteps: cfg.stallSteps,
		},
		Timeout: cfg.timeout,
		Retries: cfg.retries,
	}
	start := time.Now()
	refRes, err := d.RetimeRobust(ctx, ropt)
	r.refTime = time.Since(start)
	if err != nil {
		r.err = err
		return r
	}
	r.ref, r.refTier = refRes.RetimeResult, refRes.Tier
	r.degraded = r.degraded || refRes.Degraded

	ropt.Algorithm = serretime.MinObsWin
	start = time.Now()
	winRes, err := d.RetimeRobust(ctx, ropt)
	r.winTime = time.Since(start)
	if err != nil {
		r.err = err
		return r
	}
	r.win, r.winTier = winRes.RetimeResult, winRes.Tier
	r.degraded = r.degraded || winRes.Degraded

	r.phi = r.win.Phi
	r.shOK = r.win.SetupHoldOK
	r.serOrig = r.win.Before.SER
	return r
}

func printTable(w io.Writer, rows []*row) {
	fmt.Fprintln(w, "Reproduction of Table I (Lu & Zhou, DATE 2013) on synthetic substitutes")
	fmt.Fprintln(w, "paper columns in [brackets]; ratio = SER_ref / SER_new")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %-10s %5s %7s %8s %7s %6s %3s %9s | %8s %8s %7s | %8s %8s %7s %3s | %7s %7s\n",
		"circuit", "status", "scale", "|V|", "|E|", "#FF", "phi", "sh", "SER",
		"dSERref", "[paper]", "t_ref", "dSERnew", "[paper]", "t_new", "#J", "ratio", "[paper]")
	var sumRef, sumWin, sumRatio float64
	var n int
	for _, r := range rows {
		if r == nil {
			continue
		}
		if r.err != nil {
			fmt.Fprintf(w, "%-12s %-10s ERROR: %v\n", r.name, r.status(), r.err)
			continue
		}
		ratio := 100.0
		if r.win.After.SER > 0 {
			ratio = 100 * r.ref.After.SER / r.win.After.SER
		}
		sh := "no"
		if r.shOK {
			sh = "yes"
		}
		fmt.Fprintf(w, "%-12s %-10s %5d %7d %8d %7d %6.1f %3s %9.2e | %7.2f%% %7.2f%% %6.2fs | %7.2f%% %7.2f%% %6.2fs %3d | %6.1f%% %6.0f%%\n",
			r.name, r.status(), r.scale, r.stats.Vertices, r.stats.Edges, int64(r.win.Before.SharedFFs),
			r.phi, sh, r.serOrig,
			r.ref.DeltaSER(), r.paper.PaperDSERRef, r.refTime.Seconds(),
			r.win.DeltaSER(), r.paper.PaperDSERNew, r.winTime.Seconds(), r.win.Rounds,
			ratio, r.paper.PaperRatio)
		sumRef += r.ref.DeltaSER()
		sumWin += r.win.DeltaSER()
		sumRatio += ratio
		n++
	}
	if n > 0 {
		fmt.Fprintf(w, "%-12s %s\n", "AVG.", strings.Repeat("-", 40))
		fmt.Fprintf(w, "%-12s mean dSER: MinObs %.2f%% [paper -26.70%%]   MinObsWin %.2f%% [paper -32.70%%]   mean ratio %.1f%% [paper 115%%]\n",
			"", sumRef/float64(n), sumWin/float64(n), sumRatio/float64(n))
	}
	// Register deltas, compactly.
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %9s %9s | %9s %9s\n", "circuit", "dFFref", "[paper]", "dFFnew", "[paper]")
	for _, r := range rows {
		if r == nil || r.err != nil {
			continue
		}
		fmt.Fprintf(w, "%-12s %8.2f%% %8.2f%% | %8.2f%% %8.2f%%\n",
			r.name, r.ref.DeltaFF(), r.paper.PaperDFFRef, r.win.DeltaFF(), r.paper.PaperDFFNew)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
