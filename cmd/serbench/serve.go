package main

// serbench -serve: a load-generator client for the serretimed daemon.
// Instead of solving circuits in-process, the sweep's netlists are
// POSTed to a running service in a concurrent burst; every job is polled
// to completion and its result downloaded. The client verifies what the
// service promises: no accepted job is dropped, repeated submissions of
// one payload return byte-identical retimed netlists, and resubmissions
// hit the content-addressed cache (disposition "coalesced" or "cached").
// Exit status: 0 = every job solved and deterministic, 1 = any failure,
// 2 = client/usage error.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"serretime"
	"serretime/internal/gen"
	"serretime/internal/telemetry"
)

// backoff yields capped, jittered exponential waits for retry loops with
// no explicit Retry-After hint: 100ms doubling to a 2s cap, each wait
// drawn from [d/2, 3d/2) so a burst of blocked clients doesn't retry in
// lockstep against a server that just shed them all at once.
type backoff struct {
	d time.Duration
}

func (b *backoff) next() time.Duration {
	switch {
	case b.d == 0:
		b.d = 100 * time.Millisecond
	case b.d < 2*time.Second:
		b.d = min(b.d*2, 2*time.Second)
	}
	return b.d/2 + time.Duration(rand.Int63n(int64(b.d)))
}

// sleepCtx waits d or until the context ends, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// findTableIScale mirrors the -scale auto policy of the in-process
// sweep: shrink each circuit to at most autoCap gates.
func findTableIScale(name string, autoCap int) (int, error) {
	spec, err := gen.FindTableI(name)
	if err != nil {
		return 0, err
	}
	return (spec.Gates + autoCap - 1) / autoCap, nil
}

// jobMsg mirrors the service's submit/status JSON responses.
type jobMsg struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Status      string `json:"status"`
	Tier        string `json:"tier"`
	Disposition string `json:"disposition"`
	Error       string `json:"error"`
	ErrorClass  string `json:"error_class"`
	TraceID     string `json:"trace_id"`
}

// payload is one submittable netlist.
type payload struct {
	name string // filename carrying the format, e.g. par2500.bench
	body []byte
}

// servePayloads builds the burst's netlists: the -in files read from
// disk, or Table I synthetics rendered to canonical .bench.
func servePayloads(cfg config) ([]payload, error) {
	var out []payload
	if cfg.inFiles != "" {
		for _, p := range strings.Split(cfg.inFiles, ",") {
			d, err := serretime.Load(p)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := d.WriteBench(&buf); err != nil {
				return nil, err
			}
			base := filepath.Base(p)
			out = append(out, payload{name: strings.TrimSuffix(base, filepath.Ext(base)) + ".bench", body: buf.Bytes()})
		}
		return out, nil
	}
	names := serretime.TableICircuits()
	if cfg.circuits != "" {
		names = strings.Split(cfg.circuits, ",")
	}
	for _, n := range names {
		scale := 1
		if cfg.scaleFlag != "auto" {
			s, err := strconv.Atoi(cfg.scaleFlag)
			if err != nil || s < 1 {
				return nil, fmt.Errorf("bad -scale %q", cfg.scaleFlag)
			}
			scale = s
		} else {
			spec, err := findTableIScale(n, cfg.autoCap)
			if err != nil {
				return nil, err
			}
			scale = spec
		}
		d, err := serretime.NewTableIDesign(n, scale)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := d.WriteBench(&buf); err != nil {
			return nil, err
		}
		out = append(out, payload{name: n + ".bench", body: buf.Bytes()})
	}
	return out, nil
}

// submitURL renders the POST endpoint with the sweep's solve options as
// query parameters.
func submitURL(cfg config, name string) string {
	q := url.Values{}
	q.Set("name", name)
	q.Set("algorithm", "minobswin")
	if cfg.acc == serretime.AccuracyFast {
		q.Set("accuracy", "fast")
	}
	q.Set("frames", strconv.Itoa(cfg.frames))
	q.Set("words", strconv.Itoa(cfg.words))
	if cfg.engine == "forest" {
		q.Set("engine", "forest")
	}
	if cfg.timeout > 0 {
		q.Set("timeout", cfg.timeout.String())
	}
	if cfg.stallSteps > 0 {
		q.Set("stallsteps", strconv.Itoa(cfg.stallSteps))
	}
	if cfg.retries > 0 {
		q.Set("retries", strconv.Itoa(cfg.retries))
	}
	return strings.TrimRight(cfg.serveURL, "/") + "/v1/retime?" + q.Encode()
}

// submitOne POSTs a payload, retrying 429 backpressure responses until
// the context ends. A 429 is not a dropped job — it is the queue bound
// working; the client's job is to keep offering the work. The server's
// Retry-After hint is honored when present; otherwise the retry waits
// back off exponentially with jitter. Every wait aborts promptly on
// context cancellation instead of sleeping past the deadline.
func submitOne(ctx context.Context, client *http.Client, u string, body []byte, traceID telemetry.TraceID) (jobMsg, int, error) {
	var retried429 int
	var bo backoff
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
		if err != nil {
			return jobMsg{}, retried429, err
		}
		req.Header.Set("Content-Type", "text/plain")
		// W3C trace context: the minted ID joins the client's view of
		// this submission with the server's span tree for the job.
		req.Header.Set("Traceparent", "00-"+traceID.String()+"-0000000000000001-01")
		resp, err := client.Do(req)
		if err != nil {
			return jobMsg{}, retried429, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return jobMsg{}, retried429, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			retried429++
			wait := bo.next()
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			if err := sleepCtx(ctx, wait); err != nil {
				return jobMsg{}, retried429, fmt.Errorf("queue full until deadline: %w", err)
			}
			continue
		}
		var msg jobMsg
		if err := json.Unmarshal(data, &msg); err != nil {
			return jobMsg{}, retried429, fmt.Errorf("bad response (HTTP %d): %.200s", resp.StatusCode, data)
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			return jobMsg{}, retried429, fmt.Errorf("HTTP %d: %s", resp.StatusCode, msg.Error)
		}
		return msg, retried429, nil
	}
}

// pollJob polls a job's status until it reaches a terminal state or the
// context ends.
func pollJob(ctx context.Context, client *http.Client, base, id string, interval time.Duration) (jobMsg, error) {
	u := strings.TrimRight(base, "/") + "/v1/jobs/" + id
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return jobMsg{}, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return jobMsg{}, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return jobMsg{}, err
		}
		var msg jobMsg
		if err := json.Unmarshal(data, &msg); err != nil {
			return jobMsg{}, fmt.Errorf("bad status response (HTTP %d): %.200s", resp.StatusCode, data)
		}
		switch msg.Status {
		case "done", "failed":
			return msg, nil
		}
		if err := sleepCtx(ctx, interval); err != nil {
			return msg, fmt.Errorf("job %s still %q at deadline", id, msg.Status)
		}
	}
}

// fetchResult downloads a finished job's retimed netlist.
func fetchResult(ctx context.Context, client *http.Client, base, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result: HTTP %d: %.200s", resp.StatusCode, data)
	}
	return data, nil
}

// runServe is the -serve entry point: submit a burst of cfg.burst
// submissions (cycling through the payload set), poll every job to
// completion, download and cross-check results, and print a summary
// with client-observed submit→result latency percentiles. With -trace
// set, every submission carries a minted Traceparent, every job's span
// tree is fetched from /v1/jobs/{id}/trace and written as JSONL to the
// trace path, and a missing or empty trace fails the run.
func runServe(cfg config, stdout, stderr io.Writer) int {
	payloads, err := servePayloads(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "serbench: -serve: %v\n", err)
		return 2
	}
	if cfg.burst < len(payloads) {
		cfg.burst = len(payloads)
	}
	client := &http.Client{Timeout: 60 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.serveWait)
	defer cancel()

	type outcome struct {
		payload    int
		msg        jobMsg
		result     []byte
		retried429 int
		minted     telemetry.TraceID // trace ID sent in Traceparent
		latency    time.Duration     // submit → result downloaded
		err        error
	}
	outcomes := make([]outcome, cfg.burst)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := payloads[i%len(payloads)]
			o := &outcomes[i]
			o.payload = i % len(payloads)
			o.minted = telemetry.NewTraceID()
			t0 := time.Now()
			msg, retried, err := submitOne(ctx, client, submitURL(cfg, p.name), p.body, o.minted)
			o.retried429 = retried
			if err != nil {
				o.err = err
				return
			}
			// The status endpoint doesn't echo the disposition — only the
			// submit response carries it, so hold on to it across polling.
			disp := msg.Disposition
			traceID := msg.TraceID
			if msg.Status != "done" && msg.Status != "failed" {
				msg, err = pollJob(ctx, client, cfg.serveURL, msg.ID, cfg.pollInterval)
				if err != nil {
					o.err = err
					return
				}
				msg.Disposition = disp
				msg.TraceID = traceID
			}
			o.msg = msg
			if msg.Status == "failed" {
				o.err = fmt.Errorf("job failed (%s): %s", msg.ErrorClass, msg.Error)
				return
			}
			o.result, o.err = fetchResult(ctx, client, cfg.serveURL, msg.ID)
			o.latency = time.Since(t0)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	// Tally and verify determinism: all results of one payload must be
	// byte-identical. Accepted submissions must also carry the trace ID
	// the client minted — the propagation contract.
	ref := make([][]byte, len(payloads))
	var accepted, coalesced, cached, retried429, failures, mismatches, traceMismatches int
	var latencies []time.Duration
	for i := range outcomes {
		o := &outcomes[i]
		retried429 += o.retried429
		if o.err != nil {
			failures++
			fmt.Fprintf(stderr, "serbench: -serve: submission %d (%s): %v\n", i, payloads[o.payload].name, o.err)
			continue
		}
		latencies = append(latencies, o.latency)
		switch o.msg.Disposition {
		case "coalesced":
			coalesced++
		case "cached":
			cached++
		default:
			accepted++
			if o.msg.TraceID != o.minted.String() {
				traceMismatches++
				fmt.Fprintf(stderr, "serbench: -serve: submission %d: sent trace %s, server answered %s\n",
					i, o.minted, o.msg.TraceID)
			}
		}
		if ref[o.payload] == nil {
			ref[o.payload] = o.result
		} else if !bytes.Equal(ref[o.payload], o.result) {
			mismatches++
			fmt.Fprintf(stderr, "serbench: -serve: nondeterministic result for %s\n", payloads[o.payload].name)
		}
	}

	fmt.Fprintf(stdout, "serve burst against %s\n", cfg.serveURL)
	fmt.Fprintf(stdout, "  payloads        %d (%s)\n", len(payloads), payloadNames(payloads))
	fmt.Fprintf(stdout, "  submissions     %d in %v (%.1f/s)\n", cfg.burst, wall.Round(time.Millisecond), float64(cfg.burst)/wall.Seconds())
	fmt.Fprintf(stdout, "  accepted        %d\n", accepted)
	fmt.Fprintf(stdout, "  coalesced       %d\n", coalesced)
	fmt.Fprintf(stdout, "  cached          %d\n", cached)
	fmt.Fprintf(stdout, "  429 retries     %d\n", retried429)
	fmt.Fprintf(stdout, "  failures        %d\n", failures)
	fmt.Fprintf(stdout, "  nondeterminism  %d\n", mismatches)
	if len(latencies) > 0 {
		fmt.Fprintf(stdout, "  latency (submit→result) p50 %v  p95 %v  p99 %v  max %v\n",
			telemetry.Quantile(latencies, 0.50).Round(time.Millisecond),
			telemetry.Quantile(latencies, 0.95).Round(time.Millisecond),
			telemetry.Quantile(latencies, 0.99).Round(time.Millisecond),
			telemetry.Quantile(latencies, 1.0).Round(time.Millisecond))
	}

	traceFailures := 0
	if cfg.tracePath != "" {
		jobIDs := make([]string, 0, len(outcomes))
		seen := make(map[string]bool)
		for i := range outcomes {
			if o := &outcomes[i]; o.err == nil && o.msg.ID != "" && !seen[o.msg.ID] {
				seen[o.msg.ID] = true
				jobIDs = append(jobIDs, o.msg.ID)
			}
		}
		traceFailures = collectTraces(ctx, client, cfg, jobIDs, stdout, stderr)
	}

	if failures > 0 || mismatches > 0 || traceMismatches > 0 || traceFailures > 0 {
		return 1
	}
	return 0
}

// collectTraces fetches each job's persisted span tree, writes the
// documents as JSONL to cfg.tracePath, prints the joined client/server
// latency picture (queue wait vs. solve time from the server's spans),
// and returns the number of jobs whose trace was missing or empty.
func collectTraces(ctx context.Context, client *http.Client, cfg config, jobIDs []string, stdout, stderr io.Writer) int {
	f, err := os.Create(cfg.tracePath)
	if err != nil {
		fmt.Fprintf(stderr, "serbench: -serve: %v\n", err)
		return len(jobIDs)
	}
	defer f.Close()
	missing := 0
	var queueWait, solve []time.Duration
	for _, id := range jobIDs {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			strings.TrimRight(cfg.serveURL, "/")+"/v1/jobs/"+id+"/trace", nil)
		if err != nil {
			missing++
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			fmt.Fprintf(stderr, "serbench: -serve: trace %.12s: %v\n", id, err)
			missing++
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			fmt.Fprintf(stderr, "serbench: -serve: trace %.12s: HTTP %d\n", id, resp.StatusCode)
			missing++
			continue
		}
		doc, err := telemetry.DecodeTraceDoc(data)
		if err != nil || doc.Root == nil || len(doc.Root.Children) == 0 {
			fmt.Fprintf(stderr, "serbench: -serve: trace %.12s: empty or undecodable span tree\n", id)
			missing++
			continue
		}
		if qw := doc.Root.Find("queue-wait"); qw != nil {
			queueWait = append(queueWait, time.Duration(qw.DurNS))
		}
		if sv := doc.Root.Find("solve"); sv != nil {
			solve = append(solve, time.Duration(sv.DurNS))
		}
		f.Write(append(bytes.TrimRight(data, "\n"), '\n'))
	}
	fmt.Fprintf(stdout, "  traces          %d collected, %d missing -> %s\n", len(jobIDs)-missing, missing, cfg.tracePath)
	if len(queueWait) > 0 || len(solve) > 0 {
		fmt.Fprintf(stdout, "  server spans    queue-wait p50 %v p95 %v   solve p50 %v p95 %v\n",
			telemetry.Quantile(queueWait, 0.50).Round(time.Millisecond),
			telemetry.Quantile(queueWait, 0.95).Round(time.Millisecond),
			telemetry.Quantile(solve, 0.50).Round(time.Millisecond),
			telemetry.Quantile(solve, 0.95).Round(time.Millisecond))
	}
	return missing
}

func payloadNames(ps []payload) string {
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = strings.TrimSuffix(p.name, ".bench")
	}
	return strings.Join(names, ",")
}
