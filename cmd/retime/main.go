// Command retime reads a netlist (ISCAS89 .bench, or BLIF when the file
// ends in .blif), retimes it for soft error minimization (or register
// count), and writes the retimed netlist in the format implied by the
// output extension.
//
// Usage:
//
//	retime -in s27.bench -out s27_retimed.bench [-algo minobswin|minobs|minarea]
//	       [-epsilon 0.10] [-area-weight 0] [-engine closure|forest] [-verify]
//	       [-workers N]
//
// A summary of the run (clock period, Rmin, SER before/after, register
// counts, iterations) is printed to standard output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"serretime"
)

func main() {
	var (
		in         = flag.String("in", "", "input .bench netlist (required)")
		out        = flag.String("out", "", "output .bench netlist (default: stdout)")
		algo       = flag.String("algo", "minobswin", "objective: minobswin, minobs or minarea")
		epsilon    = flag.Float64("epsilon", 0.10, "clock period relaxation over the minimum")
		areaWeight = flag.Float64("area-weight", 0, "lambda for the area-weighted objective (Section VII extension)")
		engine     = flag.String("engine", "closure", "optimizer engine: closure or forest")
		verify     = flag.Bool("verify", false, "co-simulate the optimizer move for sequential equivalence")
		frames     = flag.Int("frames", 15, "time-frame expansion depth")
		words      = flag.Int("words", 4, "signature width in 64-bit words")
		seed       = flag.Int64("seed", 1, "simulation seed")
		workers    = flag.Int("workers", 0, "CPU workers for the parallel analyses (0 = one per CPU, 1 = sequential); results are identical for every value")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "retime: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	d, err := serretime.Load(*in)
	if err != nil {
		fatal(err)
	}
	opt := serretime.RetimeOptions{
		Epsilon:    *epsilon,
		AreaWeight: *areaWeight,
		Verify:     *verify,
		Analysis:   serretime.AnalysisOptions{Frames: *frames, SignatureWords: *words, Seed: *seed},
		Workers:    *workers,
	}
	switch *algo {
	case "minobswin":
		opt.Algorithm = serretime.MinObsWin
	case "minobs":
		opt.Algorithm = serretime.MinObs
	case "minarea":
		opt.Algorithm = serretime.MinArea
	default:
		fatal(fmt.Errorf("unknown -algo %q", *algo))
	}
	switch *engine {
	case "closure":
	case "forest":
		opt.Engine = serretime.EngineForest
	default:
		fatal(fmt.Errorf("unknown -engine %q", *engine))
	}

	res, err := d.Retime(opt)
	if err != nil {
		fatal(err)
	}
	st, _ := d.Stats()
	fmt.Printf("circuit      %s (|V|=%d |E|=%d #FF=%d depth=%d)\n",
		d.Name(), st.Vertices, st.Edges, st.FFs, st.Depth)
	fmt.Printf("algorithm    %v (engine %s)\n", res.Algorithm, *engine)
	fmt.Printf("clock        phi=%.3g (min %.3g, epsilon %.0f%%), Rmin=%.3g, setup+hold init: %v\n",
		res.Phi, res.PhiMin, *epsilon*100, res.Rmin, res.SetupHoldOK)
	fmt.Printf("SER          %.4e -> %.4e  (%+.2f%%)\n", res.Before.SER, res.After.SER, res.DeltaSER())
	fmt.Printf("             gates %.3e -> %.3e, registers %.3e -> %.3e\n",
		res.Before.GateSER, res.After.GateSER, res.Before.RegisterSER, res.After.RegisterSER)
	fmt.Printf("register obs %.4g -> %.4g\n", res.Before.RegisterObs, res.After.RegisterObs)
	fmt.Printf("flip-flops   %d -> %d  (%+.2f%%)\n", res.Before.SharedFFs, res.After.SharedFFs, res.DeltaFF())
	fmt.Printf("optimizer    %d rounds, %d steps, %v\n", res.Rounds, res.Steps, res.Runtime)
	if *verify {
		fmt.Println("equivalence  verified (exact state transport + co-simulation)")
	}

	if *out == "" {
		fmt.Print(res.Retimed.String())
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	write := res.Retimed.WriteBench
	switch {
	case strings.HasSuffix(*out, ".blif"):
		write = res.Retimed.WriteBLIF
	case strings.HasSuffix(*out, ".v"):
		write = res.Retimed.WriteVerilog
	}
	if err := write(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote        %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "retime:", err)
	os.Exit(1)
}
