// Command benchjson converts `go test -bench -benchmem` output into the
// repository's benchmark-trajectory format: a JSON array of entries, one
// per benchmark result, each carrying the structured sub-benchmark labels
// (circuit, phase, workers) next to ns/op, B/op and allocs/op. It is the
// producer of BENCH_baseline.json (see `make bench-baseline`).
//
// Usage:
//
//	go test -run=NONE -bench BenchmarkFrontEnd -benchmem . |
//	    go run ./cmd/benchjson -label parallel -merge BENCH_baseline.json
//
// The output (stdout) is the merged array: existing entries of the -merge
// file first, then the newly parsed ones, so successive runs append a
// trajectory instead of overwriting it. Lines that are not benchmark
// results are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement of the trajectory file.
type Entry struct {
	// Label tags the measurement series ("baseline", "parallel", ...).
	Label string `json:"label"`
	// Bench is the full benchmark name as reported by go test, with the
	// trailing -GOMAXPROCS suffix stripped.
	Bench string `json:"bench"`
	// Circuit, Phase and Workers are parsed from key=value path segments
	// of the benchmark name ("" / 0 when absent).
	Circuit string `json:"circuit,omitempty"`
	Phase   string `json:"phase,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// Iters is the b.N the measurement settled on.
	Iters int64 `json:"iters"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard testing metrics
	// (the latter two require -benchmem and are -1 when absent).
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	label := flag.String("label", "", "series label recorded on every entry (required)")
	merge := flag.String("merge", "", "existing trajectory file whose entries are kept ahead of the new ones")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}

	var entries []Entry
	if *merge != "" {
		data, err := os.ReadFile(*merge)
		switch {
		case err == nil:
			if err := json.Unmarshal(data, &entries); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *merge, err)
				os.Exit(1)
			}
		case os.IsNotExist(err):
			// First run: nothing to merge.
		default:
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	parsed := 0
	for sc.Scan() {
		e, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		e.Label = *label
		entries = append(entries, e)
		parsed++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if parsed == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFrontEnd/circuit=par2500/phase=sim/workers=2-8  50  23456 ns/op  1024 B/op  3 allocs/op
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix from the last path segment.
	if i := strings.LastIndexByte(name, '-'); i > strings.LastIndexByte(name, '/') {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Bench: name, Iters: iters, BytesPerOp: -1, AllocsPerOp: -1}
	for _, seg := range strings.Split(name, "/") {
		k, v, ok := strings.Cut(seg, "=")
		if !ok {
			continue
		}
		switch k {
		case "circuit":
			e.Circuit = v
		case "phase":
			e.Phase = v
		case "workers":
			if n, err := strconv.Atoi(v); err == nil {
				e.Workers = n
			}
		}
	}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if e.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Entry{}, false
			}
			seenNs = true
		case "B/op":
			e.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			e.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return e, seenNs
}
