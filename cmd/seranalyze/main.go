// Command seranalyze evaluates the soft error rate of a netlist (ISCAS89
// .bench, or BLIF when the file ends in .blif) per
// eq. (4) of Lu & Zhou (DATE 2013): signature-based observability with
// n-time-frame expansion (logic masking) combined with error-latching
// window analysis (timing masking) and a synthetic per-gate raw upset
// characterization.
//
// Usage:
//
//	seranalyze -in s27.bench [-phi 0] [-frames 15] [-words 4] [-seed 1]
//	seranalyze -trace run.jsonl
//	seranalyze -tracedir data/traces [-top 10]
//
// With -phi 0 the combinational critical path is used as the clock period.
// With -trace, a JSONL telemetry trace (serbench -trace) is replayed into
// a per-run phase/counter report instead of analyzing a netlist.
// With -tracedir, persisted per-job trace documents — the serretimed
// data-dir's traces/ directory, or a JSONL file of trace docs collected
// by serbench -serve -trace — are aggregated into a fleet report:
// queue-wait vs. solve-time percentiles, tier-fallback frequency, the
// cross-job phase-time breakdown, and the slowest jobs by trace ID.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"serretime"
	"serretime/internal/telemetry"
)

func main() {
	var (
		in     = flag.String("in", "", "input .bench netlist (required unless -trace)")
		phi    = flag.Float64("phi", 0, "clock period (0 = critical path)")
		frames = flag.Int("frames", 15, "time-frame expansion depth n")
		words  = flag.Int("words", 4, "signature width in 64-bit words")
		seed   = flag.Int64("seed", 1, "simulation seed")
		top    = flag.Int("top", 0, "also list the top-N SER contributors")
		trace    = flag.String("trace", "", "replay a JSONL telemetry trace into a phase/counter report")
		tracedir = flag.String("tracedir", "", "aggregate persisted per-job trace docs (a serretimed traces/ dir or a JSONL file) into a fleet report")
	)
	flag.Parse()
	if *trace != "" {
		if err := traceReport(os.Stdout, *trace); err != nil {
			fatal(err)
		}
		return
	}
	if *tracedir != "" {
		if err := fleetReport(os.Stdout, *tracedir, *top); err != nil {
			fatal(err)
		}
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "seranalyze: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	d, err := serretime.Load(*in)
	if err != nil {
		fatal(err)
	}
	st, err := d.Stats()
	if err != nil {
		fatal(err)
	}
	an, err := d.Analyze(*phi, serretime.AnalysisOptions{
		Frames: *frames, SignatureWords: *words, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("circuit        %s\n", d.Name())
	fmt.Printf("inputs/outputs %d / %d\n", st.PIs, st.POs)
	fmt.Printf("gates          %d (depth %d)\n", st.Gates, st.Depth)
	fmt.Printf("flip-flops     %d\n", st.FFs)
	fmt.Printf("graph          |V|=%d |E|=%d\n", st.Vertices, st.Edges)
	fmt.Printf("clock period   %.4g\n", an.Phi)
	fmt.Printf("SER            %.4e\n", an.SER)
	fmt.Printf("  gate term    %.4e (%.1f%%)\n", an.GateSER, pct(an.GateSER, an.SER))
	fmt.Printf("  register term %.4e (%.1f%%)\n", an.RegisterSER, pct(an.RegisterSER, an.SER))
	fmt.Printf("register obs   %.4g over %d registers\n", an.RegisterObs, an.Registers)
	if *top > 0 {
		crit, err := d.CriticalElements(*phi, *top, serretime.AnalysisOptions{
			Frames: *frames, SignatureWords: *words, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ntop %d contributors:\n", len(crit))
		fmt.Printf("%-24s %-9s %10s %7s %7s %8s\n", "element", "kind", "SER", "share", "obs", "|ELW|")
		for _, c := range crit {
			fmt.Printf("%-24s %-9s %10.3e %6.1f%% %7.3f %8.3g\n",
				c.Name, c.Kind, c.SER, 100*c.Share, c.Obs, c.Window)
		}
	}
}

// traceReport reads a JSONL telemetry trace and prints one phase/counter
// report per run label, in sorted order.
func traceReport(w *os.File, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := telemetry.ReadJSONL(f)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s: empty trace", path)
	}
	runs := telemetry.Replay(recs)
	names := make([]string, 0, len(runs))
	for name := range runs {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "trace %s: %d events, %d run(s)\n\n", path, len(recs), len(runs))
	for _, name := range names {
		if err := runs[name].WriteReport(w, name); err != nil {
			return err
		}
	}
	return nil
}

// fleetReport aggregates persisted telemetry.TraceDoc documents — one
// file per job (a serretimed traces/ directory) or one JSON line per
// job (serbench -serve -trace output) — into a fleet-level report.
func fleetReport(w *os.File, path string, top int) error {
	docs, skipped, err := loadTraceDocs(path)
	if err != nil {
		return err
	}
	if len(docs) == 0 {
		return fmt.Errorf("%s: no trace documents", path)
	}
	if skipped > 0 {
		fmt.Fprintf(w, "seranalyze: %d undecodable trace document(s) skipped\n", skipped)
	}
	telemetry.AggregateTraces(docs).WriteReport(w, top)
	return nil
}

// loadTraceDocs reads trace documents from a directory (one JSON doc
// per file, subdirectories ignored) or a file (one JSON doc per line).
func loadTraceDocs(path string) ([]*telemetry.TraceDoc, int, error) {
	var blobs [][]byte
	fi, err := os.Stat(path)
	if err != nil {
		return nil, 0, err
	}
	if fi.IsDir() {
		entries, err := os.ReadDir(path)
		if err != nil {
			return nil, 0, err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			b, err := os.ReadFile(filepath.Join(path, e.Name()))
			if err != nil {
				return nil, 0, err
			}
			blobs = append(blobs, b)
		}
	} else {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, 0, err
		}
		for _, line := range bytes.Split(data, []byte{'\n'}) {
			if len(bytes.TrimSpace(line)) > 0 {
				blobs = append(blobs, line)
			}
		}
	}
	var docs []*telemetry.TraceDoc
	skipped := 0
	for _, b := range blobs {
		doc, err := telemetry.DecodeTraceDoc(b)
		if err != nil {
			skipped++
			continue
		}
		docs = append(docs, doc)
	}
	return docs, skipped, nil
}

func pct(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * part / whole
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seranalyze:", err)
	os.Exit(1)
}
